// Figure 7: PDF of normalised packet size pooled over all data sets
// (each clip's sizes divided by that clip's mean).
// Paper shape: MediaPlayer concentrated at 1.0; RealPlayer spread 0.6-1.8.
#include "bench_common.hpp"

#include "analysis/stats.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 7", "PDF of Normalized Packet Size (All Data Sets)",
               "MediaPlayer concentrated at 1.0; RealPlayer spread 0.6-1.8");

  const StudyResults study = run_study();

  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    const auto sizes = figures::normalized_packet_sizes(study, player);
    Histogram h(0.1);
    h.add_all(sizes);
    std::printf("--- %s (%zu packets) ---\n", to_string(player).c_str(), sizes.size());
    std::printf("%s\n", render::pdf_listing(h, "size/mean").c_str());
    std::printf("p01=%.2f  p50=%.2f  p99=%.2f  mass in [0.9,1.1)=%.1f%%\n\n",
                quantile(sizes, 0.01), quantile(sizes, 0.5), quantile(sizes, 0.99),
                100.0 * h.mass_in(0.9, 1.1));
  }
  std::printf("paper: MediaPlayer piles at 1.0; RealPlayer covers ~0.6 to ~1.8\n");
  return 0;
}
