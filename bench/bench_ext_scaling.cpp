// Extension (Section VI): media scaling under a constrained bottleneck.
// Runs the same overloaded stream with adaptation off and on, and shows the
// scaling controller trading frame rate for delivery quality.
#include "bench_common.hpp"

#include "congestion/experiment.hpp"
#include "players/server.hpp"

using namespace streamlab;
using namespace streamlab::bench;

namespace {

struct AdaptiveRun {
  double keep_fraction = 1.0;
  std::size_t level_changes = 0;
  std::uint32_t frames_thinned = 0;
  std::uint32_t frames_rendered = 0;
  std::uint32_t frames_total = 0;
  std::uint64_t reports = 0;
  double quality_of_sent = 0.0;
};

AdaptiveRun run_adaptive(const ClipInfo& clip, BitRate bottleneck, std::uint64_t seed) {
  PathConfig path;
  path.hop_count = 10;
  path.one_way_propagation = Duration::millis(20);
  path.bottleneck_bandwidth = bottleneck;
  path.queue_limit_bytes = 16 * 1024;
  path.loss_probability = 0.0;
  path.seed = seed;

  Network net(path);
  Host& server_host = net.add_server("server");
  const EncodedClip encoded = encode_clip(clip, seed);
  WmServer server(server_host, encoded, WmBehavior{}, kMediaServerPort);

  MediaScalingPolicy policy;
  policy.enabled = true;
  server.enable_scaling(policy);

  StreamClient::Config cc;
  cc.kind = clip.player;
  cc.scaling = policy;
  StreamClient client(net.client(), server.clip(),
                      Endpoint{server_host.address(), kMediaServerPort}, cc);
  client.start();
  net.loop().run_until(net.loop().now() + clip.length * 2 + Duration::seconds(60));

  AdaptiveRun out;
  out.keep_fraction = server.scaling_keep_fraction();
  out.level_changes = server.scaling_level_changes();
  out.frames_thinned = server.frames_thinned();
  out.frames_rendered = client.frames_rendered();
  out.frames_total = static_cast<std::uint32_t>(encoded.frames().size());
  out.reports = client.receiver_reports_sent();
  const double sent = static_cast<double>(out.frames_total) - out.frames_thinned;
  out.quality_of_sent = sent > 0 ? 100.0 * out.frames_rendered / sent : 0.0;
  return out;
}

}  // namespace

int main() {
  print_header("Extension: media scaling",
               "Frame thinning under an overloaded bottleneck (set1/M-h)",
               "Section VI: both players can reduce data rates under loss");

  const auto clip = *find_clip("set1/M-h");  // 323.1 Kbps
  const BitRate bottleneck = BitRate::kbps(220);

  CongestionConfig config;
  config.bottleneck = bottleneck;
  config.seed = 3;
  const auto baseline = run_congestion_experiment(clip, config);

  std::printf("clip %s (%.1f Kbps) through a %.0f Kbps bottleneck (load %.2f)\n\n",
              clip.id().c_str(), clip.encoded_rate.to_kbps(), bottleneck.to_kbps(),
              baseline.offered_load);

  std::printf("--- adaptation OFF ---\n");
  std::printf("  packet loss:          %.1f%%\n", 100.0 * baseline.packet_loss);
  std::printf("  goodput:              %.1f Kbps (efficiency %.1f%%)\n",
              baseline.goodput_kbps, 100.0 * baseline.goodput_efficiency());
  std::printf("  frames on time:       %.1f%%\n\n", baseline.reception_quality);

  const auto adaptive = run_adaptive(clip, bottleneck, config.seed);
  std::printf("--- adaptation ON (media scaling) ---\n");
  std::printf("  receiver reports:     %llu\n",
              static_cast<unsigned long long>(adaptive.reports));
  std::printf("  level changes:        %zu (final keep fraction %.2f)\n",
              adaptive.level_changes, adaptive.keep_fraction);
  std::printf("  frames thinned:       %u of %u\n", adaptive.frames_thinned,
              adaptive.frames_total);
  std::printf("  frames rendered:      %u\n", adaptive.frames_rendered);
  std::printf("  quality of sent:      %.1f%%\n\n", adaptive.quality_of_sent);

  std::printf("shape to check: scaling trades frame count for delivery quality —\n"
              "the thinned stream fits the bottleneck and its sent frames arrive.\n");
  return 0;
}
