// Figure 10: bandwidth vs time for data set 1 (all four clips).
// Paper shape: RealPlayer opens with a burst above the playout rate until
// its delay buffer fills, then settles; its streaming ends earlier.
// MediaPlayer holds one constant rate for the whole clip.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 10", "Bandwidth vs Time for Single Clip Set (Data Set 1)",
               "RealPlayer startup burst then steady; MediaPlayer flat CBR");

  const StudyResults study = run_study({1});
  const Duration window = Duration::seconds(5);

  const std::vector<std::pair<std::string, char>> clips = {
      {"set1/R-h", 'A'}, {"set1/R-l", 'B'}, {"set1/M-h", 'C'}, {"set1/M-l", 'D'}};

  std::vector<render::Series> series;
  for (const auto& [id, glyph] : clips) {
    const auto& run = find_run(study, id);
    const auto timeline = figures::bandwidth_timeline(run, window);
    std::printf("--- %s (%s) ---\n", id.c_str(),
                to_string(run.clip.encoded_rate).c_str());
    std::printf("  t(s)    Kbps\n");
    for (std::size_t i = 0; i < timeline.size(); i += 4) {
      std::printf("  %-7.0f %-8.1f %s\n", timeline[i].first, timeline[i].second,
                  ascii_bar(timeline[i].second / 700.0, 35).c_str());
    }
    std::printf("  buffering ratio=%.2f  burst=%.0fs  streaming duration=%.1fs\n\n",
                run.buffering.ratio(), run.buffering.buffering_duration.to_seconds(),
                run.server_streaming_duration.to_seconds());

    render::Series s{id, glyph, {}};
    for (const auto& [t, kbps] : timeline) s.points.emplace_back(t, kbps);
    series.push_back(std::move(s));
  }

  std::printf("%s", render::xy_plot(series, 76, 20).c_str());
  std::printf("\npaper: R-284K bursts to ~430K then ~300K; R-36K bursts ~3x then "
              "~40K;\n       M-323K and M-49.8K flat for the full clip; R streams end "
              "sooner\n");
  return 0;
}
