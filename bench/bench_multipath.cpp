// Multipath striping benchmark — the proof artifact for BENCH_MULTIPATH.json
// (see scripts/bench.sh). Measures the subflow scheduler + join buffer the
// way the paper measures the players: end-to-end sessions, striped vs
// single-path, under
//
//  * a calm detour path (what does the striping machinery itself cost to
//    simulate, and how does the 2:1 stripe split goodput), and
//  * the flap chaos scenario from the acceptance suite (primary-span router
//    dies twice mid-stream; the striped session rides it out on the
//    surviving subflow while NACK repair backfills the detection window).
//
// Counters record path switches, per-path goodput, join-buffer reorder
// depth, suppressed NACKs and stall seconds next to the wall-clock cost, so
// the artifact captures both "what striping buys" and "what it costs".
// A micro benchmark pins the per-packet dispatch cost (pick + stamp) of the
// smooth weighted round-robin scheduler.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "core/turbulence.hpp"
#include "players/multipath.hpp"

namespace {

using namespace streamlab;

ClipInfo bench_clip() {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kMediaPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(109);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(30);
  return clip;
}

/// Detour topology + NACK repair, optionally striped. Mirrors the
/// acceptance-test setup at bench length.
TurbulenceScenarioConfig stripe_scenario(bool multipath, bool flaps) {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  cfg.repair_layer.nack = true;
  cfg.multipath.enabled = multipath;
  if (flaps) {
    for (double start : {8.0, 18.0}) {
      FaultEpisode down;
      down.kind = FaultKind::kRouterDown;
      down.router_index = 3;
      down.start = SimTime::from_seconds(start);
      down.duration = Duration::seconds(6);
      down.label = "flap";
      cfg.episodes.push_back(down);
    }
  }
  return cfg;
}

void report_multipath_counters(benchmark::State& state,
                               const SessionRecoveryMetrics& m) {
  state.counters["path_switches"] = static_cast<double>(m.path_switches);
  state.counters["primary_goodput_kbps"] = m.primary_goodput_kbps;
  state.counters["detour_goodput_kbps"] = m.detour_goodput_kbps;
  state.counters["primary_loss"] = m.primary_loss_ratio();
  state.counters["detour_loss"] = m.detour_loss_ratio();
  state.counters["reorder_depth_p95"] = static_cast<double>(m.reorder_depth_p95);
  state.counters["nacks_suppressed"] = static_cast<double>(m.nack_suppressed);
  state.counters["join_duplicates"] = static_cast<double>(m.join_duplicates);
  state.counters["stall_seconds"] = m.stall_time.to_seconds();
  state.counters["rebuffer_ratio"] = m.rebuffer_ratio();
  state.counters["failovers"] = static_cast<double>(m.failovers);
}

void run_session_benchmark(benchmark::State& state,
                           const TurbulenceScenarioConfig& cfg) {
  SessionRecoveryMetrics last;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const TurbulenceRunResult run = run_turbulence_clip(bench_clip(), cfg);
    if (!run.media) {
      state.SkipWithError("session missing");
      return;
    }
    last = *run.media;
    packets += last.packets_received;
    benchmark::DoNotOptimize(last.path_switches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  report_multipath_counters(state, last);
}

/// Calm path: the cost of the striping machinery itself (two subflows, join
/// buffer, health reports) vs the single-path session it replaces.
void BM_MultipathSteadyState(benchmark::State& state) {
  run_session_benchmark(state, stripe_scenario(state.range(0) != 0, false));
}
BENCHMARK(BM_MultipathSteadyState)
    ->ArgName("multipath")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Flap chaos: primary-span router dies twice; the stripe's survival value
/// shows up as stall/rebuffer deltas in the counters.
void BM_MultipathFlapChaos(benchmark::State& state) {
  run_session_benchmark(state, stripe_scenario(state.range(0) != 0, true));
}
BENCHMARK(BM_MultipathFlapChaos)
    ->ArgName("multipath")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Per-packet dispatch cost of the smooth-WRR scheduler: pick + stamp, the
/// two calls on the server's send path for every striped packet.
void BM_SubflowDispatch(benchmark::State& state) {
  MultipathConfig cfg;
  cfg.enabled = true;
  SubflowScheduler sched(cfg);
  const SimTime now;
  std::uint64_t dispatched = 0;
  for (auto _ : state) {
    const int id = sched.pick(now);
    benchmark::DoNotOptimize(sched.stamp(id, 500, now));
    ++dispatched;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatched));
}
BENCHMARK(BM_SubflowDispatch);

/// Join-buffer insert under a worst-case 2:1 interleave with one path a
/// full stripe period behind: every insert either holds or releases a run.
void BM_JoinBufferInterleave(benchmark::State& state) {
  ReorderJoinBuffer join(256, Duration::millis(400));
  const SimTime now;
  std::uint32_t seq = 0;
  std::uint64_t inserted = 0;
  for (auto _ : state) {
    // Stripe order with the detour lagging: 1, 2 arrive before 0.
    JoinPacket p;
    p.media_len = 500;
    p.seq = seq + 1;
    benchmark::DoNotOptimize(join.insert(p, now));
    p.seq = seq + 2;
    benchmark::DoNotOptimize(join.insert(p, now));
    p.seq = seq;
    benchmark::DoNotOptimize(join.insert(p, now));
    seq += 3;
    inserted += 3;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(inserted));
}
BENCHMARK(BM_JoinBufferInterleave);

}  // namespace

BENCHMARK_MAIN();
