// Extension (Section VI): TCP-friendliness of the commercial streams.
// One UDP media flow shares a constrained bottleneck with a long-lived TCP
// bulk transfer; the table shows each flow's share against the fair share.
#include "bench_common.hpp"

#include "congestion/friendliness.hpp"

using namespace streamlab;
using namespace streamlab::bench;

namespace {

ClipInfo media_clip(PlayerKind player, double kbps) {
  ClipInfo c;
  c.data_set = 1;
  c.content = ContentClass::kSports;
  c.player = player;
  c.tier = kbps < 150 ? RateTier::kLow : RateTier::kHigh;
  c.encoded_rate = BitRate::kbps(kbps);
  c.advertised_rate = BitRate::kbps(kbps < 150 ? 56 : 300);
  c.length = Duration::seconds(120);
  return c;
}

}  // namespace

int main() {
  print_header("Extension: TCP-friendliness",
               "UDP media stream vs TCP bulk flow over one bottleneck",
               "Section VI: commercial players are likely not TCP-friendly");

  FriendlinessConfig config;
  config.bottleneck = BitRate::kbps(400);
  config.seed = 5;

  std::vector<std::vector<std::string>> rows;
  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    for (const double kbps : {100.0, 200.0, 300.0, 350.0}) {
      const auto r = run_friendliness_experiment(media_clip(player, kbps), config);
      rows.push_back({player == PlayerKind::kRealPlayer ? "Real" : "Media",
                      fmt_double(kbps, 0), fmt_double(r.fair_share_kbps, 0),
                      fmt_double(r.media_share_kbps, 1),
                      fmt_double(r.tcp_share_kbps, 1),
                      fmt_double(r.media_fairness_index, 2),
                      fmt_double(100.0 * r.media_loss, 1),
                      std::to_string(r.tcp_retransmissions)});
    }
  }
  std::printf("%s\n",
              render::table({"Player", "Enc Kbps", "Fair", "Media share", "TCP share",
                             "Fairness", "Media loss %", "TCP rexmits"},
                            rows)
                  .c_str());

  std::printf(
      "shape to check: the media share tracks the encoding rate regardless of\n"
      "the fair share (fairness index > 1 once the rate exceeds capacity/2) —\n"
      "the UDP streams are unresponsive; TCP absorbs whatever remains.\n");
  return 0;
}
