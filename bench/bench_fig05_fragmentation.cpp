// Figure 5: MediaPlayer IP fragmentation percentage vs encoded data rate.
// Paper shape: 0% below 100 Kbps, ~66% at 300 Kbps, up to ~80%+ at the
// very-high clip; RealPlayer always 0%.
#include "bench_common.hpp"

#include <algorithm>

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 5", "MediaPlayer IP Fragmentation vs Encoded Data Rate",
               "0% below 100 Kbps; 66% at ~300 Kbps; up to ~80%+ at 637+ Kbps");

  const StudyResults study = run_study();
  auto points = figures::fragmentation_vs_rate(study);
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) { return a.encoded_kbps < b.encoded_kbps; });

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : points) {
    rows.push_back({p.player == PlayerKind::kRealPlayer ? "Real" : "Media",
                    fmt_double(p.encoded_kbps, 1), fmt_double(p.fragment_percent, 1),
                    ascii_bar(p.fragment_percent / 100.0, 30)});
  }
  std::printf("%s\n",
              render::table({"Player", "Encoded Kbps", "Fragments %", ""}, rows).c_str());

  double real_max = 0.0;
  render::Series series{"MediaPlayer frag %", 'M', {}};
  for (const auto& p : points) {
    if (p.player == PlayerKind::kMediaPlayer)
      series.points.emplace_back(p.encoded_kbps, p.fragment_percent);
    else
      real_max = std::max(real_max, p.fragment_percent);
  }
  std::printf("%s", render::xy_plot({series}, 72, 16).c_str());
  std::printf("\nRealPlayer maximum fragmentation across all clips: %.2f%% (paper: "
              "none observed)\n",
              real_max);
  return 0;
}
