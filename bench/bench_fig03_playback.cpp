// Figure 3: average playback data rate vs encoding data rate, with
// second-order polynomial trends per player.
// Paper shape: MediaPlayer tracks y=x; RealPlayer sits above y=x.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 3", "Average Playback Data Rate vs Encoding Data Rate",
               "MediaPlayer plays at its encoding rate; RealPlayer above it");

  const StudyResults study = run_study();
  const auto points = figures::playback_vs_encoding(study);

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : points) {
    rows.push_back({p.player == PlayerKind::kRealPlayer ? "Real" : "Media",
                    fmt_double(p.encoding_kbps, 1), fmt_double(p.playback_kbps, 1),
                    fmt_double(p.playback_kbps / p.encoding_kbps, 3)});
  }
  std::printf("%s\n",
              render::table({"Player", "Encoding Kbps", "Playback Kbps", "ratio"}, rows)
                  .c_str());

  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    const auto fit = figures::playback_trend(study, player);
    std::printf("%s 2nd-order trend: y = %.3g + %.4g x + %.3g x^2   (R^2=%.4f)\n",
                to_string(player).c_str(), fit.coefficients[0], fit.coefficients[1],
                fit.coefficients[2], fit.r_squared);
    std::printf("  trend at 100/300/600 Kbps: %.1f / %.1f / %.1f  (y=x would be "
                "100/300/600)\n",
                fit.eval(100), fit.eval(300), fit.eval(600));
  }

  render::Series real{"RealPlayer", 'R', {}}, media{"MediaPlayer", 'M', {}};
  for (const auto& p : points)
    (p.player == PlayerKind::kRealPlayer ? real : media)
        .points.emplace_back(p.encoding_kbps, p.playback_kbps);
  std::printf("\n%s", render::xy_plot({real, media}, 72, 18).c_str());
  return 0;
}
