// Campaign-throughput and packet-path-allocation benchmarks — the proof
// artifacts for the parallel runner and the zero-copy net::Buffer path
// (results recorded in BENCH_CAMPAIGN.json; see scripts/bench.sh).
//
// Two questions, answered separately:
//  1. Trials per second at 1/2/4/8 workers for an end-to-end turbulence
//     campaign. The host's num_cpus in the benchmark context is the ceiling
//     on the achievable speedup — on a 1-CPU box the 4-worker run proves
//     correctness (identical aggregates), not throughput.
//  2. Heap traffic per delivered frame, via a counting operator new hook
//     compiled into this binary, reported for the real packet path and for
//     a reference pipeline reproducing the pre-Buffer copy-per-hop scheme.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/campaign.hpp"
#include "net/buffer.hpp"
#include "net/fragmentation.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook. Replacing global operator new/delete in the final
// binary is sanctioned by [replacement.functions]; every heap allocation the
// benchmark performs — simulator internals included — passes through here.
namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

struct AllocSnapshot {
  std::uint64_t calls;
  std::uint64_t bytes;
};
AllocSnapshot alloc_snapshot() {
  return {g_alloc_calls.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace streamlab;

/// Same shape as the campaign tests' tiny scenario: short clip, two hops,
/// one mid-clip outage, so each trial exercises faults, recovery and
/// fragmentation without dominating wall-clock.
CampaignConfig bench_campaign_config(std::size_t trials, std::size_t workers) {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kRealPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(33);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(5);

  CampaignConfig config;
  config.clip = clip;
  config.trials = trials;
  config.base_seed = 7000;
  config.workers = workers;
  config.scenario.path.hop_count = 2;
  config.scenario.path.one_way_propagation = Duration::millis(5);
  config.scenario.extra_sim_time = Duration::seconds(5);
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(1.0);
  flap.duration = Duration::millis(500);
  flap.label = "flap";
  config.scenario.episodes.push_back(flap);
  return config;
}

void BM_CampaignTrials(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTrials = 8;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    const CampaignResult result =
        run_campaign(bench_campaign_config(kTrials, workers));
    if (result.completed != kTrials) state.SkipWithError("trial quarantined");
    frames = result.aggregate.frames_rendered;
    benchmark::DoNotOptimize(result.aggregate.packets_received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTrials);
  state.counters["trials_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTrials), benchmark::Counter::kIsRate);
  state.counters["frames_per_campaign"] = static_cast<double>(frames);
}
BENCHMARK(BM_CampaignTrials)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Heap traffic of one full turbulence trial, normalised per rendered frame.
/// Single iteration blocks keep the snapshot window tight around the run.
void BM_AllocsPerFrame(benchmark::State& state) {
  const CampaignConfig config = bench_campaign_config(1, 1);
  double allocs_per_frame = 0, bytes_per_frame = 0;
  for (auto _ : state) {
    const AllocSnapshot before = alloc_snapshot();
    const CampaignResult result = run_campaign(config);
    const AllocSnapshot after = alloc_snapshot();
    const double frames =
        static_cast<double>(result.aggregate.frames_rendered ? result.aggregate.frames_rendered : 1);
    allocs_per_frame = static_cast<double>(after.calls - before.calls) / frames;
    bytes_per_frame = static_cast<double>(after.bytes - before.bytes) / frames;
    benchmark::DoNotOptimize(result.completed);
  }
  state.counters["allocs_per_frame"] = allocs_per_frame;
  state.counters["bytes_per_frame"] = bytes_per_frame;
}
BENCHMARK(BM_AllocsPerFrame)->Unit(benchmark::kMillisecond)->Iterations(1);

// ---------------------------------------------------------------------------
// The old-vs-new allocation story, isolated. A datagram is fragmented and
// relayed across kHops forwarding stages; "CopyPerHop" reproduces the
// pre-Buffer scheme (every stage duplicates the payload bytes into a fresh
// vector, exactly what Link enqueue / propagation / Router forward / Host
// delivery used to do), "BufferPerHop" is today's refcount-bump path.
constexpr int kHops = 5;
constexpr std::size_t kDatagramBytes = 9137;  // 7 fragments at the default MTU

std::vector<std::uint8_t> bench_payload() {
  Rng rng(42);
  std::vector<std::uint8_t> v(kDatagramBytes);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

const Endpoint kSrc{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kDst{Ipv4Address(10, 0, 0, 2), 7000};

void BM_PacketRelayCopyPerHop(benchmark::State& state) {
  const auto payload = bench_payload();
  const Ipv4Packet datagram = make_udp_packet(kSrc, kDst, payload, 1);
  const auto fragments = fragment_packet(datagram, kDefaultMtu);
  std::uint64_t delivered = 0;
  const AllocSnapshot before = alloc_snapshot();
  for (auto _ : state) {
    for (const auto& frag : fragments) {
      std::vector<std::uint8_t> hop_bytes(frag.payload.begin(), frag.payload.end());
      for (int h = 1; h < kHops; ++h)
        hop_bytes = std::vector<std::uint8_t>(hop_bytes.begin(), hop_bytes.end());
      benchmark::DoNotOptimize(hop_bytes.data());
      ++delivered;
    }
  }
  const AllocSnapshot after = alloc_snapshot();
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["allocs_per_delivered_frame"] =
      static_cast<double>(after.calls - before.calls) / static_cast<double>(delivered);
  state.counters["bytes_per_delivered_frame"] =
      static_cast<double>(after.bytes - before.bytes) / static_cast<double>(delivered);
}
BENCHMARK(BM_PacketRelayCopyPerHop);

void BM_PacketRelayBufferPerHop(benchmark::State& state) {
  const auto payload = bench_payload();
  const Ipv4Packet datagram = make_udp_packet(kSrc, kDst, payload, 1);
  const auto fragments = fragment_packet(datagram, kDefaultMtu);
  std::uint64_t delivered = 0;
  const AllocSnapshot before = alloc_snapshot();
  for (auto _ : state) {
    for (const auto& frag : fragments) {
      net::Buffer hop = frag.payload;
      for (int h = 1; h < kHops; ++h) hop = net::Buffer(hop);
      benchmark::DoNotOptimize(hop.data());
      ++delivered;
    }
  }
  const AllocSnapshot after = alloc_snapshot();
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["allocs_per_delivered_frame"] =
      static_cast<double>(after.calls - before.calls) / static_cast<double>(delivered);
  state.counters["bytes_per_delivered_frame"] =
      static_cast<double>(after.bytes - before.bytes) / static_cast<double>(delivered);
}
BENCHMARK(BM_PacketRelayBufferPerHop);

/// Slab effectiveness over sustained packet construction: after warm-up,
/// every payload block should come from the per-thread free lists.
void BM_BufferSlabRecycling(benchmark::State& state) {
  const auto payload = bench_payload();
  net::Buffer::trim_slab();
  const auto stats_before = net::Buffer::slab_stats();
  for (auto _ : state) {
    const Ipv4Packet datagram = make_udp_packet(kSrc, kDst, payload, 1);
    benchmark::DoNotOptimize(fragment_packet(datagram, kDefaultMtu));
  }
  const auto stats_after = net::Buffer::slab_stats();
  const double fresh =
      static_cast<double>(stats_after.fresh_blocks - stats_before.fresh_blocks);
  const double recycled =
      static_cast<double>(stats_after.recycled_blocks - stats_before.recycled_blocks);
  state.counters["slab_recycle_ratio"] =
      recycled / (fresh + recycled > 0 ? fresh + recycled : 1);
}
BENCHMARK(BM_BufferSlabRecycling);

}  // namespace

BENCHMARK_MAIN();
