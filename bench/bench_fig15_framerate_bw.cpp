// Figure 15: average frame rate vs average playout bandwidth over all data
// sets (the x axis is the measured wire bandwidth, not the encoding rate).
// Paper shape: for the same bandwidth, RealPlayer delivers a higher frame
// rate than MediaPlayer at the low end.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 15", "Frame Rate vs Average Bandwidth (All Data Sets)",
               "RealPlayer above MediaPlayer for the same bandwidth at low rates");

  const StudyResults study = run_study();
  const auto points = figures::framerate_vs_bandwidth(study);

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : points) {
    rows.push_back({p.player == PlayerKind::kRealPlayer ? "Real" : "Media",
                    to_string(p.tier), fmt_double(p.x, 1), fmt_double(p.fps, 1)});
  }
  std::printf("%s\n",
              render::table({"Player", "Tier", "Bandwidth Kbps", "fps"}, rows).c_str());

  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    std::printf("%s per-tier summary (mean ± stderr):\n", to_string(player).c_str());
    for (const auto& t : figures::summarize_by_tier(points, player)) {
      std::printf("  %-10s n=%zu  bw=%.1f Kbps  fps=%.1f ± %.2f\n",
                  to_string(t.tier).c_str(), t.count, t.mean_x, t.mean_fps,
                  t.stderr_fps);
    }
  }

  render::Series rs{"RealPlayer", 'R', {}}, ms{"MediaPlayer", 'M', {}};
  for (const auto& p : points)
    (p.player == PlayerKind::kRealPlayer ? rs : ms).points.emplace_back(p.x, p.fps);
  std::printf("\n%s", render::xy_plot({rs, ms}, 72, 16).c_str());
  return 0;
}
