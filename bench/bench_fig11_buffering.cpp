// Figure 11: buffering rate / playing rate vs encoding rate for all
// RealPlayer clips.
// Paper shape: ratio ~3 for clips under 56 Kbps, decaying to ~1 at the
// 637 Kbps clip; MediaPlayer's ratio is 1 by construction.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 11", "Buffering Rate / Playing Rate vs Encoding Rate (RealPlayer)",
               "~3x at low rates decreasing to ~1 at 637 Kbps");

  const StudyResults study = run_study();
  const auto points = figures::buffering_ratio_vs_rate(study);

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : points) {
    rows.push_back({fmt_double(p.encoding_kbps, 1), fmt_double(p.ratio, 2),
                    ascii_bar(p.ratio / 3.5, 30)});
  }
  std::printf("%s\n",
              render::table({"Encoding Kbps", "Buffer/Play ratio", ""}, rows).c_str());

  render::Series series{"RealPlayer ratio", 'R', {}};
  for (const auto& p : points) series.points.emplace_back(p.encoding_kbps, p.ratio);
  std::printf("%s", render::xy_plot({series}, 72, 14).c_str());

  // MediaPlayer for contrast.
  double media_max = 1.0;
  for (const auto* c : study.clips_for(PlayerKind::kMediaPlayer))
    media_max = std::max(media_max, c->buffering.ratio());
  std::printf("\nMediaPlayer max ratio across all clips: %.2f (paper: exactly 1)\n",
              media_max);
  return 0;
}
