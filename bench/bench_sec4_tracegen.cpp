// Section IV: simulation of video flows. Fits the FlowModel from the full
// measured study (RTTs from Fig 1, sizes from Figs 6-7, intervals from
// Figs 8-9, fragmentation from Fig 5, startup rates from Fig 11), generates
// synthetic flows for every catalog clip, and validates them against the
// fitted distributions.
#include "bench_common.hpp"

#include "tracegen/generator.hpp"
#include "tracegen/ns_trace.hpp"

#include <sstream>

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Section IV", "Simulation of Video Flows",
               "synthetic flows from the fitted empirical distributions");

  const StudyResults study = run_study();
  const FlowModel model = FlowModel::fit(study);
  SyntheticFlowGenerator generator(model, /*seed=*/7);

  std::vector<std::vector<std::string>> rows;
  for (const auto& clip : all_clips()) {
    const SyntheticFlow flow = generator.generate(clip);
    const auto v = validate_against_model(flow, model);
    rows.push_back({clip.id(), fmt_double(clip.encoded_rate.to_kbps(), 1),
                    std::to_string(flow.packets.size()),
                    fmt_double(flow.mean_rate_kbps(), 1),
                    fmt_double(100.0 * flow.fragment_fraction(), 1),
                    fmt_double(flow.rtt_ms, 1), fmt_double(v.size_ks, 3),
                    fmt_double(v.interval_ks, 3)});
  }
  std::printf("%s\n", render::table({"Clip", "Enc Kbps", "Packets", "Rate Kbps",
                                     "Frag %", "RTT ms", "KS(size)", "KS(gap)"},
                                    rows)
                          .c_str());

  // Demonstrate the ns-2 export path on one flow.
  const SyntheticFlow sample = generator.generate(*find_clip("set1/M-h"));
  std::ostringstream trace;
  write_ns_trace(trace, sample, /*flow_id=*/1);
  std::size_t lines = 0;
  for (const char c : trace.str()) lines += c == '\n';
  std::printf("ns-2 trace export of set1/M-h: %zu lines, first three:\n", lines);
  std::istringstream in(trace.str());
  std::string line;
  for (int i = 0; i < 3 && std::getline(in, line); ++i)
    std::printf("  %s\n", line.c_str());
  return 0;
}
