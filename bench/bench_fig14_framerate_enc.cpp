// Figure 14: average frame rate vs average encoding rate over all data
// sets, with per-tier means and standard-error bars.
// Paper shape: at low rates MediaPlayer's frame rate is clearly below
// RealPlayer's; at high and very-high rates the two players converge.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 14", "Frame Rate vs Average Encoding Rate (All Data Sets)",
               "Real > Media at low rates; similar at high/very-high");

  const StudyResults study = run_study();
  const auto points = figures::framerate_vs_encoding(study);

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : points) {
    rows.push_back({p.player == PlayerKind::kRealPlayer ? "Real" : "Media",
                    to_string(p.tier), fmt_double(p.x, 1), fmt_double(p.fps, 1)});
  }
  std::printf("%s\n",
              render::table({"Player", "Tier", "Encoding Kbps", "fps"}, rows).c_str());

  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    std::printf("%s per-tier summary (mean ± stderr):\n", to_string(player).c_str());
    for (const auto& t : figures::summarize_by_tier(points, player)) {
      std::printf("  %-10s n=%zu  x=%.1f Kbps  fps=%.1f ± %.2f\n",
                  to_string(t.tier).c_str(), t.count, t.mean_x, t.mean_fps,
                  t.stderr_fps);
    }
  }

  render::Series rs{"RealPlayer", 'R', {}}, ms{"MediaPlayer", 'M', {}};
  for (const auto& p : points)
    (p.player == PlayerKind::kRealPlayer ? rs : ms).points.emplace_back(p.x, p.fps);
  std::printf("\n%s", render::xy_plot({rs, ms}, 72, 16).c_str());
  return 0;
}
