// Shared campaign config for the distributed-execution benchmarks: the
// coordinator (bench_distrib.cpp) and the worker child binary
// (bench_distrib_worker.cpp) must build byte-identical configs or the
// hello digest handshake rejects the fleet.
//
// Same two-hop scenario as bench_campaign / bench_telemetry — one
// mid-clip outage flap — but on the paper-scale 60 s clip: distribution
// exists for minute-scale IMC trials, and on the 5 s stress clip the
// per-fleet spawn cost would drown the signal being measured.
#pragma once

#include <cstddef>

#include "core/campaign.hpp"

namespace streamlab::bench_distrib {

inline CampaignConfig campaign_config(std::size_t trials) {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kRealPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(33);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(60);

  CampaignConfig config;
  config.clip = clip;
  config.trials = trials;
  config.base_seed = 9000;
  config.workers = 1;
  config.scenario.path.hop_count = 2;
  config.scenario.path.one_way_propagation = Duration::millis(5);
  config.scenario.extra_sim_time = Duration::seconds(5);
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(1.0);
  flap.duration = Duration::millis(500);
  flap.label = "flap";
  config.scenario.episodes.push_back(flap);
  return config;
}

}  // namespace streamlab::bench_distrib
