// Extension (Section VI): boundary traffic — several concurrent player
// sessions share one path; the client access link acts as the egress
// monitor the paper proposes.
#include "bench_common.hpp"

#include "core/aggregate.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Extension: boundary aggregate",
               "Four concurrent sessions through one egress link",
               "Section VI: traces at an Internet boundary, several players");

  AggregateConfig config;
  config.clip_ids = {"set1/R-h", "set1/M-h", "set5/R-l", "set5/M-l"};
  config.path = path_for_data_set(3, 77);
  config.path.bottleneck_bandwidth = BitRate::mbps(4);
  config.seed = 9;

  const AggregateResult result = run_aggregate_experiment(config);

  std::vector<std::vector<std::string>> rows;
  for (const auto& s : result.sessions) {
    rows.push_back({s.clip.id(), fmt_double(s.clip.encoded_rate.to_kbps(), 1),
                    std::to_string(s.packets), fmt_double(s.mean_rate_kbps, 1),
                    fmt_double(100.0 * s.fragment_fraction, 1),
                    fmt_double(s.frame_rate, 1), fmt_double(s.reception_quality, 1)});
  }
  std::printf("%s\n",
              render::table({"Session", "Enc Kbps", "Packets", "Rate Kbps", "Frag %",
                             "fps", "Quality %"},
                            rows)
                  .c_str());

  std::printf("boundary totals: %zu packets, mean %.1f Kbps, peak %.1f Kbps, "
              "aggregate interarrival cv %.2f\n\n",
              result.total_packets, result.aggregate_mean_kbps,
              result.aggregate_peak_kbps, result.interarrival_cv);

  std::printf("aggregate bandwidth timeline (Kbps per %0.fs window):\n",
              config.bandwidth_window.to_seconds());
  for (std::size_t i = 0; i < result.total_bandwidth_timeline.size(); i += 5) {
    const auto& [t, kbps] = result.total_bandwidth_timeline[i];
    std::printf("  %-6.0f %-8.1f %s\n", t, kbps, ascii_bar(kbps / 1200.0, 40).c_str());
  }
  std::printf("\nshape to check: the early windows carry the RealPlayer startup\n"
              "bursts stacked on the MediaPlayer CBR floor; after ~40 s the\n"
              "aggregate settles near the sum of the encoding rates.\n");
  return 0;
}
