// Distributed campaign execution benchmarks (results recorded in
// BENCH_DISTRIB.json; see scripts/bench.sh).
//
// Two questions:
//  1. Campaign throughput (trials/sec) across 1/2/4 worker processes,
//     against the in-process serial loop as the zero-IPC baseline — what
//     the fork/exec + pipe-protocol overhead costs and when the process
//     fan-out pays for itself.
//  2. The price of a crash: wall time of a study with a planted worker
//     kill, plus the measured mean reassignment latency (kill detection +
//     backoff + re-dispatch) the coordinator reports.
//
// The worker binary path is baked in at build time (STREAMLAB_DISTRIB_WORKER,
// see bench/CMakeLists.txt); both sides build the same config from
// distrib_common.hpp so the hello digest handshake accepts the fleet.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/distributed.hpp"
#include "core/campaign.hpp"
#include "distrib_common.hpp"

namespace {

using namespace streamlab;

constexpr std::size_t kTrials = 64;

campaign::DistributedOptions fleet_options(std::size_t workers) {
  campaign::DistributedOptions options;
  options.worker_argv = {STREAMLAB_DISTRIB_WORKER, std::to_string(kTrials)};
  options.workers = workers;
  return options;
}

/// Zero-IPC baseline: the ordinary in-process serial loop over the same
/// trials. Distributed numbers are only meaningful against this.
void BM_InProcessCampaign(benchmark::State& state) {
  for (auto _ : state) {
    const CampaignResult result =
        run_campaign(bench_distrib::campaign_config(kTrials));
    if (result.completed != kTrials) state.SkipWithError("trial quarantined");
    benchmark::DoNotOptimize(result.aggregate.trials);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTrials);
  state.counters["trials_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTrials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InProcessCampaign)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Trials/sec at 1, 2 and 4 worker processes. Each iteration pays the full
/// fleet lifecycle — spawn, hello handshake, trial stream, shutdown reap —
/// because that is what a CLI `--distributed` study pays.
void BM_DistributedCampaign(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const CampaignResult result = campaign::run_distributed_campaign(
        bench_distrib::campaign_config(kTrials), fleet_options(workers));
    if (result.completed != kTrials) state.SkipWithError("trial quarantined");
    if (result.degraded_to_in_process) state.SkipWithError("fleet degraded");
    benchmark::DoNotOptimize(result.aggregate.trials);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTrials);
  state.counters["trials_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTrials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistributedCampaign)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Crash recovery cost: slot 0 is SIGKILLed mid-study (the same planted
/// fault the CI smoke uses), its in-flight trial reassigned. Reports the
/// coordinator-measured mean reassignment latency — time from the failure
/// being recorded to the trial running again on another worker, including
/// the exponential backoff.
void BM_ReassignmentLatency(benchmark::State& state) {
  double latency_ms_sum = 0.0;
  std::uint64_t reassigned = 0;
  for (auto _ : state) {
    campaign::DistributedOptions options = fleet_options(2);
    options.kill_worker_after = 2;
    options.max_worker_restarts = 1;
    options.max_trial_attempts = 4;
    const CampaignResult result = campaign::run_distributed_campaign(
        bench_distrib::campaign_config(kTrials), options);
    if (result.completed != kTrials) state.SkipWithError("trial lost");
    if (result.reassigned_trials > 0) {
      latency_ms_sum += static_cast<double>(result.reassignment_latency_ns) /
                        static_cast<double>(result.reassigned_trials) / 1e6;
      ++reassigned;
    }
    benchmark::DoNotOptimize(result.workers_lost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTrials);
  state.counters["trials_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTrials), benchmark::Counter::kIsRate);
  if (reassigned > 0)
    state.counters["reassign_latency_ms"] =
        latency_ms_sum / static_cast<double>(reassigned);
}
BENCHMARK(BM_ReassignmentLatency)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
