// Micro-benchmarks of the substrate hot paths, including the ablations
// DESIGN.md calls out: checksum throughput, fragmentation/reassembly cost,
// event-loop scheduling (wheel vs reference heap at constant pending depth,
// plus steady-state allocations per event), display-filter evaluation,
// histogram insertion, and an end-to-end short experiment.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "analysis/histogram.hpp"
#include "dissect/dissector.hpp"
#include "filter/evaluator.hpp"
#include "net/checksum.hpp"
#include "net/fragmentation.hpp"
#include "obs/obs.hpp"
#include "pcap/capture.hpp"
#include "dissect/conversations.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"
#include "util/rng.hpp"

// Counting allocator hook (same [replacement.functions] technique as
// bench_campaign): every heap allocation in this binary bumps one relaxed
// atomic, so the steady-state event-loop benches can report allocs/event.
namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::uint64_t alloc_calls() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace streamlab;

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

void BM_InternetChecksum(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(internet_checksum(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(9000);

void BM_FragmentPacket(benchmark::State& state) {
  const auto payload = random_bytes(static_cast<std::size_t>(state.range(0)));
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, payload, 1);
  for (auto _ : state) benchmark::DoNotOptimize(fragment_packet(pkt, kDefaultMtu));
}
BENCHMARK(BM_FragmentPacket)->Arg(1400)->Arg(3125)->Arg(9137);

void BM_FragmentAndReassemble(benchmark::State& state) {
  const auto payload = random_bytes(static_cast<std::size_t>(state.range(0)));
  std::uint16_t id = 0;
  for (auto _ : state) {
    const Ipv4Packet pkt = make_udp_packet(kServer, kClient, payload, id++);
    Reassembler reassembler;
    for (const auto& frag : fragment_packet(pkt, kDefaultMtu))
      benchmark::DoNotOptimize(reassembler.offer(frag, SimTime::zero()));
  }
}
BENCHMARK(BM_FragmentAndReassemble)->Arg(3125)->Arg(9137);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    EventLoop loop;
    long sink = 0;
    for (std::int64_t i = 0; i < n; ++i)
      loop.schedule_at(SimTime(i * 1000), [&sink] { ++sink; });
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

// A self-rescheduling timer ring: `depth` timers stay pending forever, each
// firing reposts itself one staggered interval ahead. This is the
// constant-depth workload the timing-wheel migration is judged on — the
// binary heap pays O(log depth) per event, the wheel O(1) amortized, and
// the handle-free post path with an inline EventFn capture allocates
// nothing once the bucket vectors are warm.
struct TimerRing {
  EventLoop* loop;
  void arm(std::uint32_t i) {
    // Coprime stagger spreads the ring across wheel buckets instead of
    // beating in one.
    loop->post_in(Duration(1000 + (i % 64) * 997),
                  [this, i] { arm(i); }, obs::EventCategory::kTimer);
  }
};

void constant_depth_bench(benchmark::State& state, EventLoop::Scheduler sched) {
  const std::int64_t depth = state.range(0);
  // Fire a multiple of the depth per iteration so every pending timer
  // cycles several times (steady state, not drain).
  const std::uint64_t budget = static_cast<std::uint64_t>(depth) * 8;
  for (auto _ : state) {
    EventLoop loop(sched);
    TimerRing ring{&loop};
    for (std::uint32_t i = 0; i < depth; ++i) ring.arm(i);
    const std::uint64_t fired = loop.run(budget);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(budget));
}

void BM_EventLoopWheelDepth(benchmark::State& state) {
  constant_depth_bench(state, EventLoop::Scheduler::kWheel);
}
BENCHMARK(BM_EventLoopWheelDepth)->Arg(100)->Arg(10000)->Arg(100000);

void BM_EventLoopHeapDepth(benchmark::State& state) {
  constant_depth_bench(state, EventLoop::Scheduler::kHeap);
}
BENCHMARK(BM_EventLoopHeapDepth)->Arg(100)->Arg(10000)->Arg(100000);

// Steady-state allocations per fired event, via the counting operator new
// above. The loop and ring are built and warmed outside the timed region,
// so the counter isolates the per-event cost: the handle-free post path
// (inline EventFn, no EventCtl) must show ~0, and the handle path must stay
// ≤1 amortized thanks to the EventCtl pool (scripts/bench_gate.py enforces
// the ceiling on allocs_per_event).
void steady_alloc_bench(benchmark::State& state, bool keep_handles) {
  EventLoop loop;
  constexpr std::uint32_t kDepth = 1024;
  TimerRing ring{&loop};
  struct HandleRing {
    EventLoop* loop;
    void arm(std::uint32_t i) {
      // The handle is discarded on the spot — the EventCtl it pinned goes
      // back to the pool when the event settles.
      EventHandle h = loop->schedule_in(Duration(1000 + (i % 64) * 997),
                                       [this, i] { arm(i); });
      benchmark::DoNotOptimize(h);
    }
  };
  HandleRing handle_ring{&loop};
  for (std::uint32_t i = 0; i < kDepth; ++i)
    keep_handles ? handle_ring.arm(i) : ring.arm(i);
  loop.run(200'000);  // warm bucket vectors + EventCtl pool
  std::uint64_t events = 0;
  const std::uint64_t allocs_before = alloc_calls();
  for (auto _ : state) events += loop.run(20'000);
  const std::uint64_t allocs = alloc_calls() - allocs_before;
  state.counters["allocs_per_event"] =
      events == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_EventLoopSteadyAllocsPost(benchmark::State& state) {
  steady_alloc_bench(state, /*keep_handles=*/false);
}
BENCHMARK(BM_EventLoopSteadyAllocsPost);

void BM_EventLoopSteadyAllocsHandle(benchmark::State& state) {
  steady_alloc_bench(state, /*keep_handles=*/true);
}
BENCHMARK(BM_EventLoopSteadyAllocsHandle);

// Observability overhead on the loop hot path. The three cases bound the
// cost ladder the design promises: no observer attached (the default every
// pre-existing run pays — one null check per fired event), metrics only,
// and full tracing with queue-depth sampling. Compare against
// BM_EventLoopScheduleRun for the pre-instrumentation baseline.
void BM_EventLoopObsOff(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    EventLoop loop;
    long sink = 0;
    for (std::int64_t i = 0; i < n; ++i)
      loop.schedule_at(SimTime(i * 1000), [&sink] { ++sink; });
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopObsOff)->Arg(1000)->Arg(100000);

void BM_EventLoopObsMetrics(benchmark::State& state) {
  const auto n = state.range(0);
  obs::Obs::Config cfg;
  cfg.tracing = false;
  for (auto _ : state) {
    obs::Obs obs(cfg);
    EventLoop loop;
    loop.set_observer(&obs);
    long sink = 0;
    for (std::int64_t i = 0; i < n; ++i)
      loop.schedule_at(SimTime(i * 1000), [&sink] { ++sink; });
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopObsMetrics)->Arg(1000)->Arg(100000);

void BM_EventLoopObsTracing(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    obs::Obs obs;
    EventLoop loop;
    loop.set_observer(&obs);
    long sink = 0;
    for (std::int64_t i = 0; i < n; ++i)
      loop.schedule_at(SimTime(i * 1000), [&sink] { ++sink; });
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopObsTracing)->Arg(1000)->Arg(100000);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter c = registry.counter("bench.counter");
  for (auto _ : state) c.add();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsTracerInstant(benchmark::State& state) {
  obs::Tracer tracer;
  const std::uint16_t name = tracer.intern("bench.instant");
  const std::uint16_t track = tracer.intern("bench");
  std::int64_t t = 0;
  for (auto _ : state) tracer.instant(name, track, SimTime(t += 1000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTracerInstant);

void BM_DissectFrame(benchmark::State& state) {
  CaptureTrace trace;
  trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2),
                   make_udp_packet(kServer, kClient, random_bytes(900), 7));
  const CaptureRecord& rec = trace.records()[0];
  for (auto _ : state) benchmark::DoNotOptimize(dissect(rec));
}
BENCHMARK(BM_DissectFrame);

void BM_FilterCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::DisplayFilter::compile(
        "ip.src == 192.168.100.10 && (udp.dstport == 7000 || ip.frag_offset > 0)"));
  }
}
BENCHMARK(BM_FilterCompile);

void BM_FilterMatch(benchmark::State& state) {
  CaptureTrace trace;
  trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2),
                   make_udp_packet(kServer, kClient, random_bytes(900), 7));
  const DissectedPacket pkt = dissect(trace.records()[0]);
  const auto f = filter::DisplayFilter::compile(
      "ip.src == 192.168.100.10 && (udp.dstport == 7000 || ip.frag_offset > 0)");
  for (auto _ : state) benchmark::DoNotOptimize(f->matches(pkt));
}
BENCHMARK(BM_FilterMatch);

void BM_HistogramInsert(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> values(10000);
  for (auto& v : values) v = rng.uniform(0, 1514);
  for (auto _ : state) {
    Histogram h(50.0);
    h.add_all(values);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HistogramInsert);

void BM_RngDraws(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) benchmark::DoNotOptimize(rng.lognormal_mean_cv(1.0, 0.45));
}
BENCHMARK(BM_RngDraws);

void BM_ConversationTable(benchmark::State& state) {
  CaptureTrace trace;
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    const Endpoint src{Ipv4Address(192, 168, 100,
                                   static_cast<std::uint8_t>(rng.uniform_int(10, 14))),
                       static_cast<std::uint16_t>(rng.uniform_int(1000, 1010))};
    trace.add_packet(SimTime(i * 1'000'000), MacAddress::for_nic(1),
                     MacAddress::for_nic(2),
                     make_udp_packet(src, kClient, random_bytes(200, i), 1));
  }
  const auto packets = dissect_trace(trace);
  for (auto _ : state) {
    ConversationTable table;
    table.add_all(packets);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ConversationTable);

void BM_TcpTransferEndToEnd(benchmark::State& state) {
  // Full simulated TCP transfer, events and all: the cost of the
  // TCP-friendliness substrate per MB moved.
  for (auto _ : state) {
    PathConfig path;
    path.hop_count = 5;
    path.one_way_propagation = Duration::millis(10);
    path.jitter_stddev = Duration::zero();
    Network net(path);
    Host& sink_host = net.add_server("sink");
    TcpDemux client_demux(net.client());
    TcpDemux server_demux(sink_host);
    TcpBulkReceiver sink(server_demux, 5001);
    TcpBulkSender sender(client_demux, 40001, Endpoint{sink_host.address(), 5001},
                         static_cast<std::uint64_t>(state.range(0)));
    sender.start();
    net.loop().run();
    benchmark::DoNotOptimize(sink.bytes_received());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpTransferEndToEnd)->Arg(100'000)->Arg(1'000'000);

}  // namespace

BENCHMARK_MAIN();
