// Figure 6: PDF of packet size for a single experiment (data set 1, low
// bandwidth: 36 Kbps RealPlayer vs 49.8 Kbps MediaPlayer).
// Paper shape: >80% of MediaPlayer packets between 800-1000 bytes;
// RealPlayer sizes spread over a wide range with no single peak.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 6", "PDF of Packet Size (Data Set 1, Low Bandwidth)",
               "MediaPlayer: one dense peak 800-1000 B; RealPlayer: spread");

  const StudyResults study = run_study({1});
  const auto& real = find_run(study, "set1/R-l");
  const auto& media = find_run(study, "set1/M-l");

  std::printf("--- RealPlayer (36 Kbps), %zu packets ---\n", real.flow.size());
  const auto real_pdf = figures::packet_size_pdf(real, 50.0);
  std::printf("%s\n", render::pdf_listing(real_pdf, "size (B)").c_str());

  std::printf("--- MediaPlayer (49.8 Kbps), %zu packets ---\n", media.flow.size());
  const auto media_pdf = figures::packet_size_pdf(media, 50.0);
  std::printf("%s\n", render::pdf_listing(media_pdf, "size (B)").c_str());

  std::printf("MediaPlayer mass in [800,1000) B: %.1f%%  (paper: >80%%)\n",
              100.0 * media_pdf.mass_in(800, 1000));
  std::printf("RealPlayer tallest bin:          %.1f%%  (no dominant peak)\n",
              100.0 * real_pdf.mode().probability);
  return 0;
}
