// Figure 9: CDF of normalised packet interarrival times over all data sets.
// For MediaPlayer only the first packet of each fragment group counts
// (the paper's de-noising).
// Paper shape: MediaPlayer CDF is a step at 1.0; RealPlayer rises gradually.
#include "bench_common.hpp"

#include "analysis/stats.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 9", "CDF of Normalized Packet Interarrival Times (All Sets)",
               "MediaPlayer: steep step at 1.0; RealPlayer: gradual slope");

  const StudyResults study = run_study();

  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    const auto gaps = figures::normalized_interarrivals(study, player);
    std::printf("--- %s (%zu samples) ---\n", to_string(player).c_str(), gaps.size());
    std::printf("%s\n", render::cdf_listing(gaps, "gap/mean", 11).c_str());

    std::size_t near_one = 0;
    for (const double g : gaps) near_one += (g > 0.9 && g < 1.1);
    std::printf("fraction within 10%% of the mean: %.1f%%\n\n",
                100.0 * static_cast<double>(near_one) / static_cast<double>(gaps.size()));
  }

  render::Series rs{"RealPlayer", 'R', {}}, ms{"MediaPlayer", 'M', {}};
  for (const auto& p :
       cdf_at_quantiles(figures::normalized_interarrivals(study, PlayerKind::kRealPlayer), 40))
    rs.points.emplace_back(std::min(p.x, 3.0), p.p);
  for (const auto& p : cdf_at_quantiles(
           figures::normalized_interarrivals(study, PlayerKind::kMediaPlayer), 40))
    ms.points.emplace_back(std::min(p.x, 3.0), p.p);
  std::printf("%s", render::xy_plot({rs, ms}, 72, 16).c_str());
  return 0;
}
