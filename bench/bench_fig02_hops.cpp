// Figure 2: CDF of hop counts to the servers.
// Paper shape: most servers 15-20 hops away, full range 10-25.
#include "bench_common.hpp"

#include "analysis/stats.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 2", "CDF of Number of Hops",
               "most servers between 15 and 20 hops away (range 10-25)");

  const StudyResults study = run_study();
  const auto hops = figures::hop_counts(study);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < study.runs.size(); ++i) {
    const auto& run = study.runs[i];
    rows.push_back({run.real.clip.id() + "+" + run.media.clip.id(),
                    std::to_string(run.route.hop_count()),
                    fmt_double(run.ping.avg_rtt().to_millis(), 1)});
  }
  std::printf("%s\n", render::table({"Run", "Hops", "Avg RTT (ms)"}, rows).c_str());

  std::printf("%s\n", render::cdf_listing(hops, "hops", 6).c_str());
  const auto s = SummaryStats::from(hops);
  std::printf("min=%.0f  median=%.0f  max=%.0f  (paper: 10..25, mostly 15-20)\n", s.min,
              s.median, s.max);
  return 0;
}
