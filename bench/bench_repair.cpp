// Loss-repair benchmark — the proof artifact for BENCH_REPAIR.json (see
// scripts/bench.sh). Measures the FEC+NACK repair layer the way the paper
// measures the players: end-to-end sessions under scripted turbulence, with
// repair off (the baseline the seed repo shipped) and on, across
//
//  * the Gilbert–Elliott burst-loss regimes the fault layer established
//    (a mild ~6% epoch with short bursts and the harsh ~10% epoch with
//    mean burst length 4), and
//  * the router-down chaos scenario from the self-healing layer (router 3
//    dies mid-stream on a detour path; the repair plane reroutes).
//
// Each benchmark reports recovery ratio, mean/p95 repair latency and repair
// bandwidth overhead as counters next to the wall-clock cost of running the
// repaired session, so the artifact records both "how much loss came back"
// and "what the repair machinery costs to simulate".
#include <benchmark/benchmark.h>

#include <cstddef>

#include "core/turbulence.hpp"

namespace {

using namespace streamlab;

ClipInfo bench_clip() {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kMediaPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(109);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(30);
  return clip;
}

RepairLayerConfig repair_config() {
  RepairLayerConfig r;
  r.fec_k = 8;
  r.fec_stride = 4;  // interleave at the harsh regime's mean burst length
  r.nack = true;
  return r;
}

/// The PR 1 burst-loss regimes: index 0 = mild (pi_bad ~7.4%, mean loss
/// ~5.9%, mean burst 1.25), index 1 = harsh (pi_bad ~16.7%, mean loss ~10%,
/// mean burst 4 — the lab and CI regime).
GilbertElliottConfig burst_regime(int index) {
  if (index == 0) return GilbertElliottConfig{0.02, 0.25, 0.0, 0.8};
  return GilbertElliottConfig{0.05, 0.25, 0.0, 0.6};
}

TurbulenceScenarioConfig burst_scenario(int regime, bool repaired) {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  FaultEpisode burst;
  burst.kind = FaultKind::kBurstLoss;
  burst.start = SimTime::from_seconds(5.0);
  burst.duration = Duration::seconds(20);
  burst.gilbert = burst_regime(regime);
  burst.label = regime == 0 ? "burst-mild" : "burst-harsh";
  cfg.episodes.push_back(burst);
  if (repaired) cfg.repair_layer = repair_config();
  return cfg;
}

/// The PR 5 chaos scenario: router 3 down for 10 s on a detour path with
/// the route-repair control plane armed.
TurbulenceScenarioConfig chaos_scenario(bool repaired) {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  FaultEpisode down;
  down.kind = FaultKind::kRouterDown;
  down.router_index = 3;
  down.start = SimTime::from_seconds(10.0);
  down.duration = Duration::seconds(10);
  down.label = "router-down";
  cfg.episodes.push_back(down);
  if (repaired) cfg.repair_layer = repair_config();
  return cfg;
}

void report_repair_counters(benchmark::State& state,
                            const SessionRecoveryMetrics& m) {
  state.counters["recovery_ratio"] = m.recovery_ratio();
  state.counters["repair_latency_mean_ms"] = m.repair_latency_mean_ms;
  state.counters["repair_latency_p95_ms"] = m.repair_latency_p95_ms;
  state.counters["repair_overhead"] = m.repair_overhead();
  state.counters["packets_recovered"] = static_cast<double>(m.packets_recovered);
  state.counters["packets_lost_residual"] = static_cast<double>(m.packets_lost);
  state.counters["nacks_sent"] = static_cast<double>(m.nacks_sent);
  state.counters["retx_sent"] = static_cast<double>(m.retransmissions_sent);
}

void run_session_benchmark(benchmark::State& state,
                           const TurbulenceScenarioConfig& cfg) {
  SessionRecoveryMetrics last;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const TurbulenceRunResult run = run_turbulence_clip(bench_clip(), cfg);
    if (!run.media) {
      state.SkipWithError("session missing");
      return;
    }
    last = *run.media;
    packets += last.packets_received;
    benchmark::DoNotOptimize(last.packets_recovered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  report_repair_counters(state, last);
}

/// range(0) = Gilbert–Elliott regime, range(1) = repair layer on/off.
void BM_RepairBurstLoss(benchmark::State& state) {
  run_session_benchmark(
      state, burst_scenario(static_cast<int>(state.range(0)), state.range(1) != 0));
}
BENCHMARK(BM_RepairBurstLoss)
    ->ArgNames({"regime", "repair"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

void BM_RepairRouterDownChaos(benchmark::State& state) {
  run_session_benchmark(state, chaos_scenario(state.range(0) != 0));
}
BENCHMARK(BM_RepairRouterDownChaos)
    ->ArgName("repair")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
