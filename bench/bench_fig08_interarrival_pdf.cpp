// Figure 8: PDF of packet interarrival times for the data set 1 low pair.
// Paper shape: MediaPlayer has a near-constant interval (density spike);
// RealPlayer interarrivals spread over a much wider range.
#include "bench_common.hpp"

#include "analysis/stats.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 8", "PDF of Packet Interarrival Times (Data Set 1, Low)",
               "MediaPlayer: constant interval spike; RealPlayer: wide spread");

  const StudyResults study = run_study({1});
  const auto& real = find_run(study, "set1/R-l");
  const auto& media = find_run(study, "set1/M-l");

  const auto real_gaps = figures::clip_interarrivals(real);
  const auto media_gaps = figures::clip_interarrivals(media);

  const auto print_player = [](const char* name, const std::vector<double>& gaps) {
    Histogram h(0.01);  // 10 ms bins, matching the figure's axis
    h.add_all(gaps);
    std::printf("--- %s (%zu interarrivals) ---\n", name, gaps.size());
    std::printf("%s", render::pdf_listing(h, "gap (s)").c_str());
    std::printf("p05=%.3fs  p50=%.3fs  p95=%.3fs  peak-bin mass=%.1f%%\n\n",
                quantile(gaps, 0.05), quantile(gaps, 0.5), quantile(gaps, 0.95),
                100.0 * h.mode().probability);
  };
  print_player("RealPlayer (36 Kbps)", real_gaps);
  print_player("MediaPlayer (49.8 Kbps)", media_gaps);

  std::printf("paper: MediaPlayer interval ~constant (~0.14 s for this clip);\n");
  std::printf("       RealPlayer gaps spread across 0..0.2 s\n");
  return 0;
}
