// Extension (Section VI future work): streaming under bandwidth-constrained
// conditions. Sweeps bottleneck capacity for the data set 1 high-rate pair
// and reports throughput vs goodput — quantifying the Section 3.C warning
// that a fragmenting flow wastes bottleneck capacity on orphaned fragments.
#include "bench_common.hpp"

#include "congestion/experiment.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Extension: constrained bandwidth",
               "Goodput vs bottleneck capacity (data set 1, high tier)",
               "Section 3.C: fragmentation degrades goodput under congestion");

  const auto real_clip = *find_clip("set1/R-h");    // 284.0 Kbps, no fragments
  const auto media_clip = *find_clip("set1/M-h");   // 323.1 Kbps, 66% fragments

  const std::vector<double> bottlenecks = {150, 200, 250, 300, 400, 600, 1000};
  CongestionConfig config;
  config.seed = 3;

  std::vector<std::vector<std::string>> rows;
  for (const auto& clip : {real_clip, media_clip}) {
    for (const auto& r : sweep_bottleneck(clip, bottlenecks, config)) {
      rows.push_back({clip.player == PlayerKind::kRealPlayer ? "Real" : "Media",
                      fmt_double(r.bottleneck.to_kbps(), 0),
                      fmt_double(r.offered_load, 2),
                      fmt_double(100.0 * r.packet_loss, 1),
                      fmt_double(r.throughput_kbps, 1), fmt_double(r.goodput_kbps, 1),
                      fmt_double(r.wasted_kbps, 1),
                      fmt_double(100.0 * r.goodput_efficiency(), 1),
                      fmt_double(r.reception_quality, 1)});
    }
  }
  std::printf("%s\n",
              render::table({"Player", "Bottleneck", "Load", "Loss %", "Thru Kbps",
                             "Goodput", "Wasted", "Effic %", "Quality %"},
                            rows)
                  .c_str());

  std::printf("shape to check: at loads > 1 the MediaPlayer flow's efficiency drops\n"
              "well below RealPlayer's (orphaned fragments burn the bottleneck),\n"
              "while both are ~100%% efficient when unconstrained.\n");
  return 0;
}
