// Figure 13: frame rate vs time for a single clip set (data set 5).
// Paper shape: both high-rate clips reach 25 fps; the low MediaPlayer clip
// plays at ~13 fps; the low RealPlayer clip is significantly higher.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 13", "Frame Rate vs Time for Single Clip Set (Data Set 5)",
               "high clips ~25 fps; M-39K ~13 fps; R-22K clearly above M");

  const StudyResults study = run_study({5});

  const std::vector<std::pair<std::string, char>> clips = {
      {"set5/R-h", 'A'}, {"set5/R-l", 'B'}, {"set5/M-h", 'C'}, {"set5/M-l", 'D'}};

  std::vector<render::Series> series;
  for (const auto& [id, glyph] : clips) {
    const auto& run = find_run(study, id);
    const auto timeline = figures::framerate_timeline(run);
    std::printf("--- %s (%s) ---\n", id.c_str(),
                to_string(run.clip.encoded_rate).c_str());
    std::printf("  t(s)  fps\n");
    for (std::size_t i = 0; i < timeline.size(); i += 10)
      std::printf("  %-5.0f %-6.1f %s\n", timeline[i].first, timeline[i].second,
                  ascii_bar(timeline[i].second / 30.0, 30).c_str());
    std::printf("  average playing-phase frame rate: %.1f fps\n\n",
                run.tracker.average_frame_rate);

    render::Series s{id, glyph, {}};
    for (const auto& [t, fps] : timeline) s.points.emplace_back(t, fps);
    series.push_back(std::move(s));
  }

  std::printf("%s", render::xy_plot(series, 76, 18).c_str());
  std::printf("\npaper: R-217K and M-250K both ~25 fps; M-39K lowest at 13 fps;\n"
              "       R-22K significantly higher than M-39K\n");
  return 0;
}
