// City-scale fleet benchmark — the proof artifact for the timing-wheel
// scheduler and the flyweight session table (results recorded in
// BENCH_FLEET.json; see scripts/bench.sh).
//
// BM_Fleet sweeps N ∈ {1k, 10k, 100k} concurrent flyweight sessions through
// the shared turbulence window and reports:
//   items_per_second  — sessions/sec (completed per wall second)
//   events_per_sec    — event-loop throughput at city scale
//   bytes_per_session — resident SoA table footprint
//   allocs_per_event  — heap allocations per executed event, via the
//                       counting operator new below; the flyweight contract
//                       says ≤1 in steady state (scripts/bench_gate.py
//                       enforces the ceiling)
// BM_FleetHeap runs the same trial on the reference binary-heap scheduler,
// so the artifact records the wheel's speedup at city scale alongside.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/fleet.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook, as in bench_campaign ([replacement.functions]).
namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::uint64_t alloc_calls() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace streamlab;

// A shortened episode (2 s of stream per session instead of the lab's 20 s)
// keeps the benchmark wall-clock reasonable at N = 10⁵ while preserving the
// workload shape: the turbulence window still covers the middle of every
// stream, and pending-event depth still equals the session count.
FleetConfig bench_fleet_config(std::size_t sessions,
                               EventLoop::Scheduler scheduler) {
  FleetConfig config;
  config.sessions = sessions;
  config.seed = 1;
  config.episode = Duration::seconds(2);
  config.turbulence_start = Duration::millis(500);
  config.turbulence_duration = Duration::millis(900);
  config.scheduler = scheduler;
  return config;
}

void fleet_bench(benchmark::State& state, EventLoop::Scheduler scheduler) {
  const std::size_t sessions = static_cast<std::size_t>(state.range(0));
  const FleetConfig config = bench_fleet_config(sessions, scheduler);
  std::uint64_t events = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double bytes_per_session = 0.0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t allocs_before = alloc_calls();
    const FleetResult r = run_fleet(config);
    allocs += alloc_calls() - allocs_before;
    events += r.events_executed;
    sent += r.packets_sent;
    delivered += r.packets_delivered;
    bytes_per_session = r.bytes_per_session;
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sessions));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["bytes_per_session"] = bytes_per_session;
  // Whole-run allocations (table + wheel + bucket warmup) amortized over
  // every executed event; the flyweight contract is ≤1 even with that
  // one-time setup folded in.
  state.counters["allocs_per_event"] =
      events == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(events);
  state.counters["delivery_ratio"] =
      sent == 0 ? 0.0
                : static_cast<double>(delivered) / static_cast<double>(sent);
}

void BM_Fleet(benchmark::State& state) {
  fleet_bench(state, EventLoop::Scheduler::kWheel);
}
BENCHMARK(BM_Fleet)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_FleetHeap(benchmark::State& state) {
  fleet_bench(state, EventLoop::Scheduler::kHeap);
}
BENCHMARK(BM_FleetHeap)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
