// Worker child binary for bench_distrib. Usage: bench_distrib_worker <trials>
#include <cstdlib>

#include "campaign/worker.hpp"
#include "distrib_common.hpp"

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 64;
  return streamlab::campaign::run_campaign_worker(
      streamlab::bench_distrib::campaign_config(trials));
}
