// Shared scaffolding for the figure benches: a cached full-study runner and
// header printing. Every bench prints the same rows/series the paper's
// table or figure reports, plus an ASCII sketch of the plot.
#pragma once

#include <cstdio>
#include <string>

#include "core/figures.hpp"
#include "core/render.hpp"
#include "core/study.hpp"
#include "util/strings.hpp"

namespace streamlab::bench {

inline constexpr std::uint64_t kStudySeed = 20020501;

/// Runs the requested data sets once (full catalog by default).
inline StudyResults run_study(std::vector<int> sets = {1, 2, 3, 4, 5, 6}) {
  StudyConfig config;
  config.seed = kStudySeed;
  return run_study_subset(config, sets);
}

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("==============================================================\n\n");
}

inline const ClipRunResult& find_run(const StudyResults& study, const std::string& id) {
  for (const auto* c : study.clips())
    if (c->clip.id() == id) return *c;
  static const ClipRunResult empty{};
  return empty;
}

}  // namespace streamlab::bench
