// Table 1: the experiment data sets — six clip sets, 26 clips, with the
// encoded data rate re-measured by the trackers (the paper notes the table's
// rates come "captured by our customized video players", not from the Web
// page labels).
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Table 1", "Experiment data sets",
               "6 sets, 26 clips; R/M encoded Kbps per tier; lengths 0:39-4:05");

  const StudyResults study = run_study();

  std::vector<std::vector<std::string>> rows;
  for (const auto& set : table1_catalog()) {
    for (const RateTier tier : {RateTier::kVeryHigh, RateTier::kHigh, RateTier::kLow}) {
      const auto pair = set.pair(tier);
      if (!pair) continue;
      const auto& real = find_run(study, pair->first.id());
      const auto& media = find_run(study, pair->second.id());
      rows.push_back({
          std::to_string(set.id),
          tier_label(PlayerKind::kRealPlayer, tier) + "/" +
              tier_label(PlayerKind::kMediaPlayer, tier),
          fmt_double(pair->first.encoded_rate.to_kbps(), 1) + "/" +
              fmt_double(pair->second.encoded_rate.to_kbps(), 1),
          to_string(set.content),
          fmt_double(set.length.to_seconds(), 0) + "s",
          fmt_double(real.tracker.average_playback_bandwidth.to_kbps(), 1),
          fmt_double(media.tracker.average_playback_bandwidth.to_kbps(), 1),
      });
    }
  }
  std::printf("%s\n",
              render::table({"Set", "Pair", "Encode (Kbps)", "Content", "Length",
                             "R playback Kbps", "M playback Kbps"},
                            rows)
                  .c_str());

  std::printf("Clips in catalog: %zu (paper: 26)\n", all_clips().size());
  return 0;
}
