// Figure 1: CDF of round-trip time across the experiment connections.
// Paper shape: median ~40 ms, maximum ~160 ms.
#include "bench_common.hpp"

#include "analysis/stats.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 1", "CDF of RTT",
               "median RTT ~40 ms, max ~160 ms across six server paths");

  const StudyResults study = run_study();
  const auto rtts = figures::rtt_samples_ms(study);

  std::printf("%s\n", render::cdf_listing(rtts, "RTT (ms)", 11).c_str());

  const auto s = SummaryStats::from(rtts);
  std::printf("samples=%zu  median=%.1f ms  mean=%.1f ms  max=%.1f ms\n", s.n, s.median,
              s.mean, s.max);
  std::printf("paper:   median~40 ms                 max~160 ms\n\n");

  render::Series series{"RTT CDF", '*', {}};
  for (const auto& p : empirical_cdf(rtts)) series.points.emplace_back(p.x, p.p);
  std::printf("%s", render::xy_plot({series}, 72, 16).c_str());
  return 0;
}
