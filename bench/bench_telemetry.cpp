// Telemetry-plane overhead benchmarks (results recorded in
// BENCH_TELEMETRY.json; see scripts/bench.sh).
//
// Three questions:
//  1. Campaign throughput with per-trial telemetry snapshots on vs off —
//     the observability tax on the hot trial loop. The paired overhead
//     benchmark times both modes back-to-back in one process and reports
//     the percentage directly, so the recorded artifact carries the
//     "within 5%" claim as a single number rather than a cross-benchmark
//     subtraction.
//  2. ns per recorded sample for the mergeable aggregates (QuantileSketch,
//     LogHistogram) against the fixed-bucket Registry Histogram they
//     complement — the cost of making a distribution mergeable.
//  3. ns per cross-trial fold of a realistic TrialTelemetry record into a
//     CampaignTelemetry, the per-commit cost at the coordinator.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"

namespace {

using namespace streamlab;

/// Same tiny scenario as bench_campaign: two hops, one mid-clip outage.
/// Telemetry cost must be measured on the same trial the throughput
/// baseline uses; clip length selects the stress (5 s) or paper-scale
/// (60 s) variant.
CampaignConfig bench_campaign_config(std::size_t trials, bool collect,
                                     std::int64_t clip_seconds = 5) {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kRealPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(33);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(clip_seconds);

  CampaignConfig config;
  config.clip = clip;
  config.trials = trials;
  config.base_seed = 9000;
  config.workers = 1;
  config.collect_telemetry = collect;
  config.scenario.path.hop_count = 2;
  config.scenario.path.one_way_propagation = Duration::millis(5);
  config.scenario.extra_sim_time = Duration::seconds(5);
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(1.0);
  flap.duration = Duration::millis(500);
  flap.label = "flap";
  config.scenario.episodes.push_back(flap);
  return config;
}

void BM_CampaignTelemetry(benchmark::State& state) {
  const bool collect = state.range(0) != 0;
  constexpr std::size_t kTrials = 8;
  for (auto _ : state) {
    const CampaignResult result =
        run_campaign(bench_campaign_config(kTrials, collect));
    if (result.completed != kTrials) state.SkipWithError("trial quarantined");
    benchmark::DoNotOptimize(result.telemetry.trials_folded());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTrials);
  state.counters["trials_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTrials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignTelemetry)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Paired on/off measurement in one iteration window. Interleaving the two
/// modes cancels slow machine-level drift (thermal, cache state), so the
/// reported percentage is the honest snapshot tax.
///
/// Measured on the paper-scale 60 s clip — the IMC workload streams
/// minute-scale clips, so this is the trial length the "within 5%" claim
/// applies to. (On the deliberately hostile 5 s stress clip the fixed
/// per-trial costs are ~7x less diluted; that regime stays visible as
/// BM_CampaignTelemetry/0 vs /1 but is not the acceptance number.)
void BM_TelemetrySnapshotOverheadPct(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  constexpr std::size_t kTrials = 4;
  constexpr std::int64_t kClipSeconds = 60;
  std::vector<double> ratios;
  for (auto _ : state) {
    const auto t0 = clock::now();
    const CampaignResult off =
        run_campaign(bench_campaign_config(kTrials, false, kClipSeconds));
    const auto t1 = clock::now();
    const CampaignResult on =
        run_campaign(bench_campaign_config(kTrials, true, kClipSeconds));
    const auto t2 = clock::now();
    if (off.completed != kTrials || on.completed != kTrials)
      state.SkipWithError("trial quarantined");
    const double off_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    const double on_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    if (off_ns > 0.0) ratios.push_back((on_ns - off_ns) / off_ns * 100.0);
    benchmark::DoNotOptimize(on.telemetry.trials_folded());
  }
  // Median of per-pair overheads, not a ratio of sums: a single scheduler
  // preemption landing inside one side of one pair would otherwise swing
  // the whole repetition by percentage points.
  double overhead = 0.0;
  if (!ratios.empty()) {
    const auto mid = ratios.begin() + static_cast<std::ptrdiff_t>(ratios.size() / 2);
    std::nth_element(ratios.begin(), mid, ratios.end());
    overhead = *mid;
  }
  state.counters["overhead_pct"] = overhead;
}
// MinTime: ~200 paired runs per repetition, so the median has a deep pool
// of pairs to draw from — the default 0.1 s window leaves too few for the
// estimate to settle on shared/noisy recording hosts.
BENCHMARK(BM_TelemetrySnapshotOverheadPct)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime()
    ->MinTime(2.0);

/// Log-uniform values spanning microseconds-to-seconds style magnitudes —
/// the regime the relative-error sketches are built for.
std::vector<double> sample_values() {
  Rng rng(42);
  std::vector<double> v(1 << 14);
  for (auto& x : v) {
    const double u = static_cast<double>(rng.next_u64() >> 11) * 0x1p-53;
    double scale = 1.0;
    for (int i = 0; i < static_cast<int>(u * 6.0); ++i) scale *= 10.0;
    x = (1.0 + u) * scale;
  }
  return v;
}

void BM_QuantileSketchRecord(benchmark::State& state) {
  const std::vector<double> values = sample_values();
  obs::QuantileSketch sketch(0.01);
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.record(values[i++ & (values.size() - 1)]);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuantileSketchRecord);

void BM_LogHistogramRecord(benchmark::State& state) {
  const std::vector<double> values = sample_values();
  obs::LogHistogram hist(4);
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(static_cast<std::uint64_t>(values[i++ & (values.size() - 1)]));
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogHistogramRecord);

/// The fixed-bucket Registry histogram the mergeable aggregates complement —
/// the baseline cost of recording a sample at all.
void BM_FixedHistogramRecord(benchmark::State& state) {
  const std::vector<double> values = sample_values();
  obs::Registry registry;
  obs::Histogram hist = registry.histogram("bench.hist", 1000.0, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(values[i++ & (values.size() - 1)]);
    benchmark::DoNotOptimize(registry);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedHistogramRecord);

/// Per-commit coordinator cost: fold one realistic trial record (4 samples,
/// 4 tallies, a dozen counters) into the campaign-wide aggregate.
void BM_CampaignTelemetryFold(benchmark::State& state) {
  Rng rng(7);
  std::vector<obs::TrialTelemetry> records(64);
  for (std::size_t s = 0; s < records.size(); ++s) {
    obs::TrialTelemetry& t = records[s];
    t.set_sample("trial.goodput_kbps", 30.0 + static_cast<double>(rng.next_u64() % 100) / 10.0);
    t.set_sample("trial.stall_ms", static_cast<double>(rng.next_u64() % 5000));
    t.set_sample("trial.recovery_ratio", static_cast<double>(rng.next_u64() % 100) / 100.0);
    t.set_sample("trial.repair_latency_ms", static_cast<double>(rng.next_u64() % 200));
    t.set_tally("trial.sim_events", rng.next_u64() % 100000);
    t.set_tally("trial.packets_lost", rng.next_u64() % 500);
    t.set_tally("trial.rebuffers", rng.next_u64() % 8);
    t.set_tally("trial.reroutes", rng.next_u64() % 4);
    for (int c = 0; c < 12; ++c)
      t.add_counter("player.counter" + std::to_string(c), rng.next_u64() % 1000);
  }
  obs::CampaignTelemetry fold;
  std::size_t i = 0;
  for (auto _ : state) {
    fold.fold(records[i++ & (records.size() - 1)]);
    benchmark::DoNotOptimize(fold);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CampaignTelemetryFold);

}  // namespace

BENCHMARK_MAIN();
