// Figure 4: packet arrivals vs time over a one-second window for a high
// encoding-rate pair (the paper uses a 217 Kbps RealPlayer clip and a
// 250 Kbps MediaPlayer clip = data set 5 high tier).
// Paper shape: MediaPlayer arrives in regular groups (one UDP packet + a
// constant number of IP fragments); RealPlayer arrives evenly.
#include "bench_common.hpp"

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 4", "Packet Arrivals vs Time (Data Set 5, high)",
               "MediaPlayer: regular packet groups w/ fragments; RealPlayer: spread");

  const StudyResults study = run_study({5});
  const auto& real = find_run(study, "set5/R-h");
  const auto& media = find_run(study, "set5/M-h");

  // The paper plots t in [30.0, 31.0] seconds of the flow.
  const auto real_win = figures::arrival_window(real, Duration::seconds(30),
                                                Duration::seconds(1));
  const auto media_win = figures::arrival_window(media, Duration::seconds(30),
                                                 Duration::seconds(1));

  std::printf("RealPlayer (217.6 Kbps): %zu packets in the window\n", real_win.size());
  std::printf("MediaPlayer (250.4 Kbps): %zu packets in the window\n\n",
              media_win.size());

  std::vector<std::vector<std::string>> rows;
  const std::size_t n = std::max(real_win.size(), media_win.size());
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(
        {i < real_win.size() ? fmt_double(real_win[i].first, 4) : "",
         i < real_win.size() ? std::to_string(real_win[i].second) : "",
         i < media_win.size() ? fmt_double(media_win[i].first, 4) : "",
         i < media_win.size() ? std::to_string(media_win[i].second) : ""});
  }
  std::printf("%s\n", render::table({"R time(s)", "R seq", "M time(s)", "M seq"}, rows)
                          .c_str());

  render::Series rs{"RealPlayer", 'R', {}}, ms{"MediaPlayer", 'M', {}};
  for (const auto& [t, idx] : real_win) rs.points.emplace_back(t, idx);
  for (const auto& [t, idx] : media_win) ms.points.emplace_back(t, idx);
  std::printf("%s", render::xy_plot({rs, ms}, 72, 18).c_str());

  // The MediaPlayer group structure the paper highlights.
  std::size_t groups = 0, fragments = 0;
  const auto& packets = media.flow.packets();
  for (const auto& p : packets) {
    groups += p.first_of_group;
    fragments += p.trailing_fragment;
  }
  std::printf("\nMediaPlayer flow: %zu groups, %.1f packets/group, all group packets "
              "except the tail are 1514 bytes on the wire\n",
              groups,
              static_cast<double>(packets.size()) / static_cast<double>(groups));
  return 0;
}
