// Figure 12: packets received by the network layer vs the application layer
// for one MediaPlayer clip, over a 4-second window.
// Paper shape: the OS receives packet groups every 100 ms; the application
// receives batches of ~10 packets once per second (interleaving release).
#include "bench_common.hpp"

#include <map>

using namespace streamlab;
using namespace streamlab::bench;

int main() {
  print_header("Figure 12", "Packets Received by Network vs Application Layer",
               "network: groups every 100 ms; application: batches of 10 per second");

  const StudyResults study = run_study({5});
  const auto& run = find_run(study, "set5/M-h");  // 250.4 Kbps, the figure's regime

  const auto series = figures::layer_receipt_series(run, Duration::seconds(32),
                                                    Duration::seconds(4));

  std::printf("--- network layer (%zu packets in window) ---\n", series.network.size());
  for (std::size_t i = 0; i < series.network.size(); i += 5)
    std::printf("  t=%.3fs  seq=%u\n", series.network[i].first, series.network[i].second);

  std::printf("\n--- application layer (%zu packets in window) ---\n",
              series.application.size());
  std::map<double, int> batches;
  for (const auto& [t, _] : series.application) ++batches[t];
  for (const auto& [t, count] : batches)
    std::printf("  t=%.3fs  batch of %d packets\n", t, count);

  render::Series net{"network layer", 'n', {}}, app{"application layer", 'A', {}};
  for (const auto& [t, i] : series.network) net.points.emplace_back(t, i);
  for (const auto& [t, i] : series.application) app.points.emplace_back(t, i);
  std::printf("\n%s", render::xy_plot({net, app}, 72, 18).c_str());

  // Quantify the two cadences.
  std::vector<double> net_gaps;
  for (std::size_t i = 1; i < series.network.size(); ++i) {
    const double gap = series.network[i].first - series.network[i - 1].first;
    if (gap > 1e-6) net_gaps.push_back(gap);
  }
  double net_gap_sum = 0;
  for (const double g : net_gaps) net_gap_sum += g;
  std::printf("\nnetwork-layer group cadence: %.0f ms (paper: 100 ms)\n",
              1000.0 * net_gap_sum / static_cast<double>(net_gaps.size()));
  double batch_sum = 0;
  for (const auto& [t, count] : batches) batch_sum += count;
  std::printf("application batch size:      %.1f pkts once per second (paper: ~10)\n",
              batch_sum / static_cast<double>(batches.size()));
  return 0;
}
