#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abc");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("ip.src", "ip."));
  EXPECT_FALSE(starts_with("ip", "ip."));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Strings, AsciiBarProportionalAndClamped) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(2.0, 10), "##########");   // clamped
  EXPECT_EQ(ascii_bar(-1.0, 10), "..........");  // clamped
}

}  // namespace
}  // namespace streamlab
