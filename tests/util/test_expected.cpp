#include "util/expected.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

Expected<int> parse_positive(int v) {
  if (v > 0) return v;
  return Unexpected(std::string("not positive"));
}

TEST(Expected, HoldsValue) {
  const auto r = parse_positive(5);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(Expected, HoldsError) {
  const auto r = parse_positive(-1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "not positive");
}

TEST(Expected, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(99), 3);
  EXPECT_EQ(parse_positive(-3).value_or(99), 99);
}

TEST(Expected, MapTransformsValue) {
  const auto r = parse_positive(4).map([](int v) { return v * 2; });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 8);
}

TEST(Expected, MapPropagatesError) {
  const auto r = parse_positive(-4).map([](int v) { return v * 2; });
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "not positive");
}

TEST(Expected, WorksWhenValueTypeConvertibleFromErrorType) {
  // T = std::string, E = std::string: the Unexpected tag disambiguates.
  Expected<std::string> ok(std::string("value"));
  Expected<std::string> err{Unexpected(std::string("error"))};
  EXPECT_TRUE(ok.has_value());
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(*ok, "value");
  EXPECT_EQ(err.error(), "error");
}

TEST(Expected, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.has_value());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace streamlab
