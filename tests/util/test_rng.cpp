#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace streamlab {
namespace {

double sample_mean(std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double sample_stddev(std::vector<double>& v, double mean) {
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, ConsecutiveSeedsUncorrelated) {
  // splitmix64 seeding: seeds 1..N should give means near 0.5 individually.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.05) << "seed " << seed;
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 6.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++seen[static_cast<std::size_t>(v - 10)];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  const double mean = sample_mean(xs);
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sample_stddev(xs, mean), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(0.25);
  EXPECT_NEAR(sample_mean(xs), 0.25, 0.02);
  EXPECT_TRUE(std::all_of(xs.begin(), xs.end(), [](double v) { return v >= 0; }));
}

TEST(Rng, LognormalMeanCvMatchesTargets) {
  Rng rng(17);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.lognormal_mean_cv(1.0, 0.45);
  const double mean = sample_mean(xs);
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(sample_stddev(xs, mean) / mean, 0.45, 0.03);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) ASSERT_GE(rng.pareto(2.5, 3.0), 3.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child and parent produce different sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);       // same multiset
  EXPECT_NE(shuffled, v);     // actually moved (overwhelmingly likely)
}

TEST(EmpiricalSampler, QuantilesOfKnownSample) {
  EmpiricalSampler s({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);  // interpolated
}

TEST(EmpiricalSampler, UnsortedInputIsSorted) {
  EmpiricalSampler s({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
}

TEST(EmpiricalSampler, EmptyReturnsZero) {
  EmpiricalSampler s{std::vector<double>{}};
  Rng rng(1);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.sample(rng), 0.0);
}

TEST(EmpiricalSampler, SamplesReproduceSourceDistribution) {
  // Sampling from an empirical CDF of U(0,1) data should give ~U(0,1).
  Rng source(41);
  std::vector<double> obs(2000);
  for (auto& o : obs) o = source.uniform();
  EmpiricalSampler s(obs);
  Rng rng(43);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += s.sample(rng);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

}  // namespace
}  // namespace streamlab
