#include "util/time.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace streamlab {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanos(1).ns(), 1);
  EXPECT_EQ(Duration::seconds(3), Duration::millis(3000));
}

TEST(Duration, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(0.1).ns(), 100'000'000);
  EXPECT_EQ(Duration::from_seconds(-0.25).ns(), -250'000'000);
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
}

TEST(Duration, ArithmeticAndComparison) {
  const Duration a = Duration::millis(30);
  const Duration b = Duration::millis(12);
  EXPECT_EQ((a + b).ns(), Duration::millis(42).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(18).ns());
  EXPECT_EQ((a * 3).ns(), Duration::millis(90).ns());
  EXPECT_EQ((a / 2).ns(), Duration::millis(15).ns());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  EXPECT_EQ(-a, Duration::millis(-30));
}

TEST(Duration, ScaledAppliesFloatingFactor) {
  EXPECT_EQ(Duration::seconds(10).scaled(0.5), Duration::seconds(5));
  EXPECT_EQ(Duration::millis(100).scaled(1.25), Duration::millis(125));
}

TEST(Duration, ConversionAccessors) {
  const Duration d = Duration::millis(1500);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_millis(), 1500.0);
}

TEST(SimTime, AffineAlgebra) {
  const SimTime t0 = SimTime::from_seconds(10.0);
  const SimTime t1 = t0 + Duration::seconds(5);
  EXPECT_EQ(t1.to_seconds(), 15.0);
  EXPECT_EQ(t1 - t0, Duration::seconds(5));
  EXPECT_EQ(t1 - Duration::seconds(15), SimTime::zero());
  EXPECT_LT(t0, t1);
}

TEST(SimTime, PlusEqualsAdvances) {
  SimTime t;
  t += Duration::millis(250);
  t += Duration::millis(250);
  EXPECT_EQ(t, SimTime::from_seconds(0.5));
}

TEST(TimeToString, HumanReadableRanges) {
  EXPECT_EQ(to_string(Duration::nanos(12)), "12ns");
  EXPECT_EQ(to_string(Duration::micros(250)), "250.0us");
  EXPECT_EQ(to_string(Duration::millis(42)), "42.0ms");
  EXPECT_EQ(to_string(Duration::seconds(3)), "3.00s");
  EXPECT_EQ(to_string(SimTime::from_seconds(1.5)), "t=1.500s");
}

}  // namespace
}  // namespace streamlab
