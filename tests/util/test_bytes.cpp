#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16be(0x1234);
  w.u32be(0xDEADBEEF);
  const auto v = w.view();
  ASSERT_EQ(v.size(), 7u);
  EXPECT_EQ(v[0], 0xAB);
  EXPECT_EQ(v[1], 0x12);
  EXPECT_EQ(v[2], 0x34);
  EXPECT_EQ(v[3], 0xDE);
  EXPECT_EQ(v[4], 0xAD);
  EXPECT_EQ(v[5], 0xBE);
  EXPECT_EQ(v[6], 0xEF);
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u16le(0x1234);
  w.u32le(0xDEADBEEF);
  const auto v = w.view();
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 0x34);
  EXPECT_EQ(v[1], 0x12);
  EXPECT_EQ(v[2], 0xEF);
  EXPECT_EQ(v[3], 0xBE);
  EXPECT_EQ(v[4], 0xAD);
  EXPECT_EQ(v[5], 0xDE);
}

TEST(ByteWriter, PatchOverwritesInPlace) {
  ByteWriter w;
  w.u16be(0);
  w.u16be(0xFFFF);
  w.patch_u16be(0, 0xBEEF);
  const auto v = w.view();
  EXPECT_EQ(v[0], 0xBE);
  EXPECT_EQ(v[1], 0xEF);
  EXPECT_EQ(v[2], 0xFF);
}

TEST(ByteWriter, PatchOutOfRangeIsIgnored) {
  ByteWriter w;
  w.u8(1);
  w.patch_u16be(0, 0xABCD);  // needs 2 bytes, only 1 present
  EXPECT_EQ(w.view()[0], 1);
}

TEST(ByteReader, RoundTripsWriter) {
  ByteWriter w;
  w.u8(7);
  w.u16be(300);
  w.u32be(1'000'000);
  w.u16le(300);
  w.u32le(1'000'000);
  const auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16be(), 300);
  EXPECT_EQ(r.u32be(), 1'000'000u);
  EXPECT_EQ(r.u16le(), 300);
  EXPECT_EQ(r.u32le(), 1'000'000u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, UnderrunSetsStickyError) {
  const std::uint8_t data[3] = {1, 2, 3};
  ByteReader r(data);
  EXPECT_EQ(r.u16be(), 0x0102);
  EXPECT_EQ(r.u32be(), 0u);  // only 1 byte left
  EXPECT_FALSE(r.ok());
  // Sticky: further reads keep failing even though bytes notionally remain.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, BytesViewAndSkip) {
  const std::uint8_t data[5] = {10, 20, 30, 40, 50};
  ByteReader r(data);
  r.skip(1);
  const auto view = r.bytes(3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 20);
  EXPECT_EQ(view[2], 40);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_TRUE(r.bytes(2).empty());
  EXPECT_FALSE(r.ok());
}

TEST(HexDump, FormatsAndTruncates) {
  const std::uint8_t data[4] = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(hex_dump(data), "de ad be ef");
  EXPECT_EQ(hex_dump(data, 2), "de ad ...");
}

}  // namespace
}  // namespace streamlab
