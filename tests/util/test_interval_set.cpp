#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace streamlab {
namespace {

TEST(IntervalSet, EmptyBehaviour) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_covered(), 0u);
  EXPECT_EQ(s.contiguous_prefix(), 0u);
  EXPECT_FALSE(s.covers(0, 1));
  EXPECT_TRUE(s.covers(5, 5));  // empty range vacuously covered
}

TEST(IntervalSet, SingleInsert) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_EQ(s.total_covered(), 10u);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_TRUE(s.covers(12, 15));
  EXPECT_FALSE(s.covers(9, 11));
  EXPECT_FALSE(s.covers(19, 21));
  EXPECT_EQ(s.contiguous_prefix(), 0u);  // does not start at 0
}

TEST(IntervalSet, AdjacentIntervalsMerge) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(10, 20);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.contiguous_prefix(), 20u);
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet s;
  s.insert(0, 15);
  s.insert(10, 30);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(0, 30));
  EXPECT_EQ(s.total_covered(), 30u);
}

TEST(IntervalSet, ContainedInsertIsNoop) {
  IntervalSet s;
  s.insert(0, 100);
  s.insert(20, 30);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total_covered(), 100u);
}

TEST(IntervalSet, GapThenFill) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.contiguous_prefix(), 10u);
  EXPECT_FALSE(s.covers(5, 25));
  s.insert(10, 20);  // fill the gap
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.contiguous_prefix(), 30u);
  EXPECT_TRUE(s.covers(5, 25));
}

TEST(IntervalSet, InsertSpanningManyIntervals) {
  IntervalSet s;
  for (std::uint64_t i = 0; i < 10; ++i) s.insert(i * 10, i * 10 + 5);
  EXPECT_EQ(s.interval_count(), 10u);
  s.insert(2, 97);
  // Merges with [0,5) at the front and swallows every later island.
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(0, 97));
  EXPECT_EQ(s.total_covered(), 97u);
}

TEST(IntervalSet, InvertedAndEmptyRangesIgnored) {
  IntervalSet s;
  s.insert(10, 10);
  s.insert(20, 5);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, OutOfOrderInsertionOrderIndependent) {
  // Property: any insertion order of the same ranges yields the same set.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges = {
      {0, 7}, {14, 21}, {7, 14}, {30, 35}, {21, 30}};
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    auto shuffled = ranges;
    rng.shuffle(std::span(shuffled));
    IntervalSet s;
    for (const auto& [a, b] : shuffled) s.insert(a, b);
    EXPECT_EQ(s.interval_count(), 1u);
    EXPECT_EQ(s.contiguous_prefix(), 35u);
    EXPECT_EQ(s.total_covered(), 35u);
  }
}

TEST(IntervalSetProperty, RandomizedAgainstBitmapOracle) {
  Rng rng(12345);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet s;
    std::vector<bool> oracle(200, false);
    for (int op = 0; op < 40; ++op) {
      const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, 199));
      const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 199));
      const auto lo = std::min(a, b), hi = std::max(a, b);
      s.insert(lo, hi);
      for (std::uint64_t i = lo; i < hi; ++i) oracle[i] = true;
    }
    // total_covered matches the oracle.
    std::uint64_t expected = 0;
    for (bool bit : oracle) expected += bit;
    EXPECT_EQ(s.total_covered(), expected);
    // covers() matches for random probes.
    for (int probe = 0; probe < 30; ++probe) {
      const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, 199));
      const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 199));
      const auto lo = std::min(a, b), hi = std::max(a, b);
      bool oracle_covers = true;
      for (std::uint64_t i = lo; i < hi; ++i) oracle_covers &= oracle[i];
      EXPECT_EQ(s.covers(lo, hi), oracle_covers) << "range [" << lo << "," << hi << ")";
    }
    // contiguous_prefix matches.
    std::uint64_t prefix = 0;
    while (prefix < oracle.size() && oracle[prefix]) ++prefix;
    EXPECT_EQ(s.contiguous_prefix(), prefix);
  }
}

}  // namespace
}  // namespace streamlab
