#include "util/rate.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace streamlab {
namespace {

TEST(BitRate, FactoriesAndAccessors) {
  EXPECT_EQ(BitRate::kbps(300).bits_per_second(), 300'000);
  EXPECT_EQ(BitRate::mbps(10).bits_per_second(), 10'000'000);
  EXPECT_DOUBLE_EQ(BitRate::kbps(284).to_kbps(), 284.0);
  EXPECT_DOUBLE_EQ(BitRate::mbps(1.5).to_mbps(), 1.5);
}

TEST(BitRate, FractionalKbpsRoundTrips) {
  // Table 1 rates like 49.8 and 323.1 Kbps must be exact.
  EXPECT_EQ(BitRate::kbps(49.8).bits_per_second(), 49'800);
  EXPECT_EQ(BitRate::kbps(323.1).bits_per_second(), 323'100);
  EXPECT_EQ(BitRate::kbps(636.9).bits_per_second(), 636'900);
}

TEST(BitRate, TransmissionTime) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_EQ(BitRate::mbps(12).transmission_time(1500), Duration::millis(1));
  // 1 byte at 8 bps = 1 s.
  EXPECT_EQ(BitRate::bps(8).transmission_time(1), Duration::seconds(1));
  EXPECT_EQ(BitRate::zero().transmission_time(100), Duration::max());
}

TEST(BitRate, BytesIn) {
  EXPECT_EQ(BitRate::kbps(8).bytes_in(Duration::seconds(1)), 1000);
  EXPECT_EQ(BitRate::kbps(49.8).bytes_in(Duration::millis(100)), 622);
  EXPECT_EQ(BitRate::zero().bytes_in(Duration::seconds(5)), 0);
}

TEST(BitRate, ScaledAndRatio) {
  const BitRate r = BitRate::kbps(100);
  EXPECT_EQ(r.scaled(3.0), BitRate::kbps(300));
  EXPECT_DOUBLE_EQ(BitRate::kbps(300) / r, 3.0);
}

TEST(BitRate, ComparisonAndArithmetic) {
  EXPECT_LT(BitRate::kbps(56), BitRate::kbps(300));
  EXPECT_EQ(BitRate::kbps(100) + BitRate::kbps(50), BitRate::kbps(150));
  EXPECT_EQ(BitRate::kbps(100) - BitRate::kbps(50), BitRate::kbps(50));
}

TEST(BitRate, ToStringPicksUnits) {
  EXPECT_EQ(to_string(BitRate::kbps(284)), "284.0 Kbps");
  EXPECT_EQ(to_string(BitRate::mbps(10)), "10.00 Mbps");
}

}  // namespace
}  // namespace streamlab
