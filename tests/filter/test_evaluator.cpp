#include "filter/evaluator.hpp"

#include <gtest/gtest.h>

#include "net/fragmentation.hpp"

namespace streamlab::filter {
namespace {

using streamlab::CaptureTrace;
using streamlab::Endpoint;
using streamlab::Ipv4Address;
using streamlab::Ipv4Packet;
using streamlab::MacAddress;
using streamlab::SimTime;
using streamlab::make_udp_packet;
using streamlab::make_icmp_packet;
using streamlab::IcmpHeader;
using streamlab::IcmpType;

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

streamlab::DissectedPacket dissected_udp(std::size_t payload = 100,
                                         Endpoint src = kServer, Endpoint dst = kClient) {
  CaptureTrace trace;
  trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2),
                   make_udp_packet(src, dst, std::vector<std::uint8_t>(payload, 1), 5));
  return streamlab::dissect(trace.records()[0]);
}

bool matches(std::string_view expr, const streamlab::DissectedPacket& pkt) {
  auto f = DisplayFilter::compile(expr);
  EXPECT_TRUE(f.has_value()) << expr << ": " << (f ? "" : f.error());
  return f->matches(pkt);
}

TEST(Evaluator, PresenceTests) {
  const auto pkt = dissected_udp();
  EXPECT_TRUE(matches("udp", pkt));
  EXPECT_TRUE(matches("ip", pkt));
  EXPECT_TRUE(matches("eth", pkt));
  EXPECT_FALSE(matches("tcp", pkt));
  EXPECT_FALSE(matches("icmp", pkt));
  EXPECT_TRUE(matches("udp.dstport", pkt));   // field presence
  EXPECT_FALSE(matches("tcp.dstport", pkt));
}

TEST(Evaluator, NumericComparisons) {
  const auto pkt = dissected_udp(100);  // frame.len = 142
  EXPECT_TRUE(matches("frame.len == 142", pkt));
  EXPECT_TRUE(matches("frame.len != 1514", pkt));
  EXPECT_TRUE(matches("frame.len < 1000", pkt));
  EXPECT_TRUE(matches("frame.len <= 142", pkt));
  EXPECT_TRUE(matches("frame.len > 100", pkt));
  EXPECT_TRUE(matches("frame.len >= 142", pkt));
  EXPECT_FALSE(matches("frame.len > 142", pkt));
}

TEST(Evaluator, AddressComparisons) {
  const auto pkt = dissected_udp();
  EXPECT_TRUE(matches("ip.src == 192.168.100.10", pkt));
  EXPECT_FALSE(matches("ip.src == 192.168.100.11", pkt));
  EXPECT_TRUE(matches("ip.dst == 10.0.0.2", pkt));
  // ip.addr matches either side (Wireshark semantics).
  EXPECT_TRUE(matches("ip.addr == 192.168.100.10", pkt));
  EXPECT_TRUE(matches("ip.addr == 10.0.0.2", pkt));
  EXPECT_FALSE(matches("ip.addr == 1.2.3.4", pkt));
}

TEST(Evaluator, PortAliasMatchesEitherDirection) {
  const auto pkt = dissected_udp();
  EXPECT_TRUE(matches("udp.port == 1755", pkt));
  EXPECT_TRUE(matches("udp.port == 7000", pkt));
  EXPECT_FALSE(matches("udp.port == 80", pkt));
  // Negation on a multi-valued field: !(any match).
  EXPECT_TRUE(matches("!(udp.port == 80)", pkt));
  EXPECT_FALSE(matches("!(udp.port == 7000)", pkt));
}

TEST(Evaluator, MissingFieldComparisonIsFalse) {
  const auto pkt = dissected_udp();
  EXPECT_FALSE(matches("tcp.seq == 0", pkt));
  EXPECT_FALSE(matches("tcp.seq != 0", pkt));   // absent, not "anything"
  EXPECT_TRUE(matches("!(tcp.seq == 0)", pkt));
}

TEST(Evaluator, LogicalCombinations) {
  const auto pkt = dissected_udp();
  EXPECT_TRUE(matches("udp && ip.src == 192.168.100.10", pkt));
  EXPECT_FALSE(matches("udp && tcp", pkt));
  EXPECT_TRUE(matches("udp || tcp", pkt));
  EXPECT_TRUE(matches("tcp || icmp || udp", pkt));
  EXPECT_TRUE(matches("!tcp", pkt));
  EXPECT_TRUE(matches("udp and not tcp", pkt));
}

TEST(Evaluator, FieldToFieldComparison) {
  const auto pkt = dissected_udp();
  EXPECT_FALSE(matches("udp.srcport == udp.dstport", pkt));
  EXPECT_TRUE(matches("udp.srcport < udp.dstport", pkt));  // 1755 < 7000
}

TEST(Evaluator, FragmentIsolationFilter) {
  // The study's Ethereal workflow: select the trailing fragments of a flow.
  const auto datagram =
      make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(3000, 1), 77);
  CaptureTrace trace;
  for (const auto& frag : streamlab::fragment_packet(datagram, streamlab::kDefaultMtu))
    trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2), frag);
  const auto packets = streamlab::dissect_trace(trace);
  ASSERT_EQ(packets.size(), 3u);

  const auto frag_filter = DisplayFilter::compile("ip.frag_offset > 0");
  ASSERT_TRUE(frag_filter.has_value());
  EXPECT_EQ(frag_filter->select(packets).size(), 2u);

  const auto group_leaders = DisplayFilter::compile("udp && ip.src == 192.168.100.10");
  ASSERT_TRUE(group_leaders.has_value());
  EXPECT_EQ(group_leaders->select(packets).size(), 1u);

  const auto all_of_flow = DisplayFilter::compile(
      "ip.src == 192.168.100.10 && (udp.dstport == 7000 || ip.frag_offset > 0)");
  ASSERT_TRUE(all_of_flow.has_value());
  EXPECT_EQ(all_of_flow->select(packets).size(), 3u);
}

TEST(Evaluator, IcmpFilter) {
  IcmpHeader icmp;
  icmp.type = IcmpType::kTimeExceeded;
  CaptureTrace trace;
  trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2),
                   make_icmp_packet(kServer.ip, kClient.ip, icmp, {}, 1));
  const auto pkt = streamlab::dissect(trace.records()[0]);
  EXPECT_TRUE(matches("icmp.type == 11", pkt));
  EXPECT_FALSE(matches("icmp.type == 0", pkt));
}

TEST(Evaluator, CompileErrorSurfaceProperly) {
  const auto f = DisplayFilter::compile("ip.src ==");
  ASSERT_FALSE(f.has_value());
  EXPECT_FALSE(f.error().empty());
}

TEST(Evaluator, FilterIsReusableAcrossPackets) {
  const auto f = DisplayFilter::compile("frame.len > 500");
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->matches(dissected_udp(100)));
  EXPECT_TRUE(f->matches(dissected_udp(1000)));
  EXPECT_FALSE(f->matches(dissected_udp(100)));
}

}  // namespace
}  // namespace streamlab::filter
