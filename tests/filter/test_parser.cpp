#include "filter/parser.hpp"

#include <gtest/gtest.h>

namespace streamlab::filter {
namespace {

std::string parse_to_string(std::string_view input) {
  auto e = parse(input);
  if (!e) return "ERROR: " + e.error();
  return (*e)->to_string();
}

TEST(Parser, BarePresence) {
  const auto e = parse("udp");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ((*e)->kind, Expr::Kind::kPresence);
  EXPECT_EQ((*e)->field, "udp");
}

TEST(Parser, SimpleComparison) {
  const auto e = parse("ip.frag_offset > 0");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ((*e)->kind, Expr::Kind::kCompare);
  EXPECT_EQ((*e)->lhs.field, "ip.frag_offset");
  EXPECT_EQ((*e)->cmp, CompareOp::kGt);
  EXPECT_EQ((*e)->rhs.literal, 0);
}

TEST(Parser, Ipv4LiteralComparison) {
  const auto e = parse("ip.src == 192.168.100.10");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ((*e)->rhs.literal, 0xC0A8640A);
}

TEST(Parser, FieldToFieldComparison) {
  const auto e = parse("udp.srcport == udp.dstport");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ((*e)->lhs.kind, Operand::Kind::kField);
  EXPECT_EQ((*e)->rhs.kind, Operand::Kind::kField);
}

TEST(Parser, PrecedenceAndBindsTighterThanOr) {
  // a || b && c  parses as  a || (b && c)
  EXPECT_EQ(parse_to_string("a || b && c"), "(a || (b && c))");
  EXPECT_EQ(parse_to_string("a && b || c"), "((a && b) || c)");
}

TEST(Parser, ParenthesesOverridePrecedence) {
  EXPECT_EQ(parse_to_string("(a || b) && c"), "((a || b) && c)");
}

TEST(Parser, NotBindsTightest) {
  EXPECT_EQ(parse_to_string("!a && b"), "(!(a) && b)");
  EXPECT_EQ(parse_to_string("!(a && b)"), "!((a && b))");
  EXPECT_EQ(parse_to_string("!!a"), "!(!(a))");
}

TEST(Parser, LeftAssociativeChains) {
  EXPECT_EQ(parse_to_string("a && b && c"), "((a && b) && c)");
  EXPECT_EQ(parse_to_string("a || b || c"), "((a || b) || c)");
}

TEST(Parser, ComplexRealisticFilter) {
  const auto e = parse(
      "ip.src == 192.168.100.10 && (udp.dstport == 7000 || ip.frag_offset > 0) "
      "&& frame.len >= 1000");
  ASSERT_TRUE(e.has_value()) << e.error();
}

TEST(Parser, CanonicalFormReparses) {
  // Property: parse -> print -> parse yields the same printed form.
  const std::vector<std::string> inputs = {
      "udp", "a == 1", "a && b || !c", "(x <= 2) && (y != 0x10)",
      "ip.addr == 10.0.0.2 or icmp"};
  for (const auto& in : inputs) {
    const std::string once = parse_to_string(in);
    ASSERT_EQ(once.find("ERROR"), std::string::npos) << in;
    EXPECT_EQ(parse_to_string(once), once) << in;
  }
}

TEST(Parser, ErrorOnDanglingOperator) {
  EXPECT_FALSE(parse("a &&").has_value());
  EXPECT_FALSE(parse("&& a").has_value());
  EXPECT_FALSE(parse("a ==").has_value());
}

TEST(Parser, ErrorOnUnbalancedParens) {
  EXPECT_FALSE(parse("(a && b").has_value());
  EXPECT_FALSE(parse("a && b)").has_value());
  EXPECT_FALSE(parse("()").has_value());
}

TEST(Parser, ErrorOnLoneLiteral) {
  const auto e = parse("42");
  ASSERT_FALSE(e.has_value());
  EXPECT_NE(e.error().find("cannot stand alone"), std::string::npos);
}

TEST(Parser, ErrorOnTrailingGarbage) {
  const auto e = parse("a == 1 b");
  ASSERT_FALSE(e.has_value());
  EXPECT_NE(e.error().find("unexpected"), std::string::npos);
}

TEST(Parser, ErrorPropagatesFromLexer) {
  EXPECT_FALSE(parse("a == $").has_value());
}

}  // namespace
}  // namespace streamlab::filter
