#include "filter/lexer.hpp"

#include <gtest/gtest.h>

namespace streamlab::filter {
namespace {

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = tokenize("");
  ASSERT_TRUE(tokens.has_value());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersWithDots) {
  const auto tokens = tokenize("ip.frag_offset udp.dstport");
  ASSERT_TRUE(tokens.has_value());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "ip.frag_offset");
  EXPECT_EQ((*tokens)[1].text, "udp.dstport");
}

TEST(Lexer, NumbersDecimalAndHex) {
  const auto tokens = tokenize("1514 0x5dc 0");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[0].number, 1514);
  EXPECT_EQ((*tokens)[1].number, 0x5dc);
  EXPECT_EQ((*tokens)[2].number, 0);
}

TEST(Lexer, Ipv4LiteralRecognised) {
  const auto tokens = tokenize("192.168.100.10");
  ASSERT_TRUE(tokens.has_value());
  ASSERT_EQ(tokens->size(), 2u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIpv4);
  EXPECT_EQ((*tokens)[0].number, 0xC0A8640A);
}

TEST(Lexer, AllOperators) {
  const auto tokens = tokenize("== != < <= > >= && || ! ( )");
  ASSERT_TRUE(tokens.has_value());
  const TokenKind expected[] = {TokenKind::kEq, TokenKind::kNe, TokenKind::kLt,
                                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                                TokenKind::kAnd, TokenKind::kOr, TokenKind::kNot,
                                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kEnd};
  ASSERT_EQ(tokens->size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ((*tokens)[i].kind, expected[i]) << i;
}

TEST(Lexer, WordOperators) {
  const auto tokens = tokenize("a and b or not c eq 1 ne 2");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kAnd);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kOr);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNot);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kNe);
}

TEST(Lexer, NotVersusNotEquals) {
  const auto tokens = tokenize("!x != y");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNot);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
}

TEST(Lexer, PositionsReported) {
  const auto tokens = tokenize("ab == 12");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 3u);
  EXPECT_EQ((*tokens)[2].position, 6u);
}

TEST(Lexer, RejectsSingleAmpersandPipeEquals) {
  EXPECT_FALSE(tokenize("a & b").has_value());
  EXPECT_FALSE(tokenize("a | b").has_value());
  EXPECT_FALSE(tokenize("a = b").has_value());
}

TEST(Lexer, RejectsUnknownCharacter) {
  const auto r = tokenize("a @ b");
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find("'@'"), std::string::npos);
  EXPECT_NE(r.error().find("offset 2"), std::string::npos);
}

TEST(Lexer, RejectsMalformedNumber) {
  EXPECT_FALSE(tokenize("12ab34.cd").has_value());
}

TEST(Lexer, WhitespaceInsensitive) {
  const auto a = tokenize("a==1&&b");
  const auto b = tokenize("  a  ==  1  &&  b  ");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i].kind, (*b)[i].kind);
}

}  // namespace
}  // namespace streamlab::filter
