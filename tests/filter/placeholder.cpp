#include <gtest/gtest.h>
TEST(Placeholder_filter, Builds) { SUCCEED(); }
