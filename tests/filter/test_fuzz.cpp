// Property/fuzz tests for the filter language: random well-formed
// expressions survive the parse -> print -> parse fixpoint; arbitrary byte
// soup never crashes the pipeline.
#include <gtest/gtest.h>

#include "filter/evaluator.hpp"
#include "filter/parser.hpp"
#include "util/rng.hpp"

namespace streamlab::filter {
namespace {

/// Generates a random well-formed filter expression.
class ExprGen {
 public:
  explicit ExprGen(Rng& rng) : rng_(rng) {}

  std::string expr(int depth = 0) {
    const double pick = rng_.uniform();
    if (depth > 3 || pick < 0.35) return comparison();
    if (pick < 0.50) return field();
    if (pick < 0.65) return "!" + wrap(expr(depth + 1));
    const std::string op = rng_.chance(0.5) ? " && " : " || ";
    return wrap(expr(depth + 1)) + op + wrap(expr(depth + 1));
  }

 private:
  std::string wrap(const std::string& e) { return "(" + e + ")"; }

  std::string field() {
    static const char* kFields[] = {"ip.src",       "ip.dst",      "ip.frag_offset",
                                    "ip.ttl",       "udp.srcport", "udp.dstport",
                                    "frame.len",    "udp",         "tcp.seq",
                                    "icmp.type",    "ip.fragment", "eth"};
    return kFields[rng_.uniform_int(0, std::size(kFields) - 1)];
  }

  std::string comparison() {
    static const char* kOps[] = {"==", "!=", "<", "<=", ">", ">="};
    const std::string op = kOps[rng_.uniform_int(0, 5)];
    std::string rhs;
    if (rng_.chance(0.2)) {
      rhs = std::to_string(rng_.uniform_int(0, 255)) + "." +
            std::to_string(rng_.uniform_int(0, 255)) + "." +
            std::to_string(rng_.uniform_int(0, 255)) + "." +
            std::to_string(rng_.uniform_int(0, 255));
    } else if (rng_.chance(0.2)) {
      rhs = field();
    } else {
      rhs = std::to_string(rng_.uniform_int(0, 65535));
    }
    return field() + " " + op + " " + rhs;
  }

  Rng& rng_;
};

TEST(FilterFuzz, ParsePrintParseFixpoint) {
  Rng rng(2024);
  ExprGen gen(rng);
  for (int i = 0; i < 500; ++i) {
    const std::string source = gen.expr();
    const auto first = parse(source);
    ASSERT_TRUE(first.has_value()) << source << ": " << first.error();
    const std::string printed = (*first)->to_string();
    const auto second = parse(printed);
    ASSERT_TRUE(second.has_value()) << printed;
    EXPECT_EQ((*second)->to_string(), printed) << source;
  }
}

TEST(FilterFuzz, GeneratedFiltersCompileAndEvaluate) {
  Rng rng(77);
  ExprGen gen(rng);
  // A minimal dissected packet to evaluate against.
  DissectedPacket pkt;
  pkt.add_layer("eth");
  pkt.add_layer("ip");
  pkt.add_layer("udp");
  pkt.set("ip.src", FieldValue::of(0x0A000002, "10.0.0.2"));
  pkt.set("ip.frag_offset", FieldValue::of(0));
  pkt.set("udp.srcport", FieldValue::of(7070));
  pkt.set("frame.len", FieldValue::of(542));

  for (int i = 0; i < 500; ++i) {
    const auto f = DisplayFilter::compile(gen.expr());
    ASSERT_TRUE(f.has_value());
    (void)f->matches(pkt);  // must not crash, result is arbitrary
  }
}

TEST(FilterFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string soup;
    const auto len = rng.uniform_int(0, 60);
    for (int c = 0; c < len; ++c)
      soup.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    (void)parse(soup);  // either Expected value or error; never UB
  }
}

TEST(FilterFuzz, DeeplyNestedParensParse) {
  std::string deep = "udp";
  for (int i = 0; i < 200; ++i) deep = "(" + deep + ")";
  const auto e = parse(deep);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ((*e)->to_string(), "udp");
}

}  // namespace
}  // namespace streamlab::filter
