#include "obs/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/telemetry.hpp"

namespace streamlab::obs {
namespace {

// These aggregates back the campaign's byte-identity contract, so the tests
// assert *serialized bytes*, not just numeric equality: two merge orders
// that disagree anywhere would produce different campaign telemetry blocks.

std::vector<std::uint64_t> deterministic_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng() % 1'000'000);
  return out;
}

// --- LogHistogram ---

TEST(LogHistogram, BucketIndexIsMonotoneAndContinuous) {
  for (const unsigned bits : {1u, 3u, 6u}) {
    std::size_t prev = 0;
    for (std::uint64_t v = 0; v < 5000; ++v) {
      const std::size_t idx = LogHistogram::bucket_index(v, bits);
      ASSERT_GE(idx, prev) << "v=" << v;
      ASSERT_LE(idx, prev + 1) << "bucket index must not skip, v=" << v;
      ASSERT_LE(LogHistogram::bucket_floor(idx, bits), v) << "v=" << v;
      prev = idx;
    }
  }
  // The full 64-bit range stays within the dense table.
  EXPECT_LT(LogHistogram::bucket_index(~0ull, 3), std::size_t{64} << 3);
}

TEST(LogHistogram, BucketFloorInvertsIndex) {
  for (const unsigned bits : {1u, 3u, 6u}) {
    for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 255ull, 4096ull, 999'999ull,
                            (1ull << 40) + 12345, ~0ull}) {
      const std::size_t idx = LogHistogram::bucket_index(v, bits);
      EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_floor(idx, bits), bits), idx)
          << "v=" << v << " bits=" << bits;
    }
  }
}

TEST(LogHistogram, TracksCountSumMinMax) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(10);
  h.record(500);
  h.record_n(3, 2);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 516u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 500u);
}

TEST(LogHistogram, QuantileWithinRelativeBucketWidth) {
  LogHistogram h(6);  // 2^-6 relative bucket width
  const auto values = deterministic_values(10'000, 42);
  for (const std::uint64_t v : values) h.record(v);
  auto sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = static_cast<double>(
        sorted[static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1))]);
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx, exact, exact * (1.0 / 32.0) + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), static_cast<double>(h.min()));
  EXPECT_EQ(h.quantile(1.0), static_cast<double>(h.max()));
}

TEST(LogHistogram, MergeIsAssociativeToTheByte) {
  const auto make = [](std::uint64_t seed) {
    LogHistogram h;
    for (const std::uint64_t v : deterministic_values(500, seed)) h.record(v);
    return h;
  };
  const LogHistogram a = make(1), b = make(2), c = make(3);

  LogHistogram left = a;        // merge(merge(a,b),c)
  left.merge(b);
  left.merge(c);
  LogHistogram bc = b;          // merge(a,merge(b,c))
  bc.merge(c);
  LogHistogram right = a;
  right.merge(bc);
  EXPECT_EQ(left.serialize(), right.serialize());

  LogHistogram reversed = c;    // commutativity under the same fold
  reversed.merge(b);
  reversed.merge(a);
  EXPECT_EQ(left.serialize(), reversed.serialize());
}

TEST(LogHistogram, EmptyIsMergeIdentity) {
  LogHistogram h;
  for (const std::uint64_t v : deterministic_values(100, 7)) h.record(v);
  const std::string before = h.serialize();
  h.merge(LogHistogram());
  EXPECT_EQ(h.serialize(), before);
  LogHistogram empty;
  empty.merge(h);
  EXPECT_EQ(empty.serialize(), before);
}

TEST(LogHistogram, MergeRejectsGeometryMismatch) {
  LogHistogram a(3), b(4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, SerializeRoundTrips) {
  LogHistogram h;
  for (const std::uint64_t v : deterministic_values(1000, 11)) h.record(v);
  const auto parsed = LogHistogram::parse(h.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), h.serialize());
  EXPECT_EQ(parsed->count(), h.count());
  EXPECT_EQ(parsed->sum(), h.sum());
  EXPECT_FALSE(LogHistogram::parse("garbage").has_value());
  EXPECT_FALSE(LogHistogram::parse("logh1;bits=3;n=5;sum=1;min=0;max=1;b=").has_value());
}

// --- QuantileSketch ---

TEST(QuantileSketch, QuantileWithinRelativeAccuracy) {
  QuantileSketch s(0.01);
  std::mt19937_64 rng(99);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    // Log-uniform over ~6 decades, the shape of latency-style metrics.
    values.push_back(std::exp(std::uniform_real_distribution<double>(0.0, 14.0)(rng)));
    s.record(values.back());
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.05, 0.5, 0.95, 0.999}) {
    const double exact = values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
    EXPECT_NEAR(s.quantile(q), exact, exact * 0.025) << "q=" << q;
  }
}

TEST(QuantileSketch, ZeroAndNegativeLandInZeroBucket) {
  QuantileSketch s;
  s.record(0.0);
  s.record(-5.0);
  s.record(1e-12);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.record(100.0);
  EXPECT_EQ(s.quantile(0.25), 0.0);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1.0);
}

TEST(QuantileSketch, MergeIsAssociativeToTheByte) {
  const auto make = [](std::uint64_t seed) {
    QuantileSketch s;
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 500; ++i)
      s.record(std::uniform_real_distribution<double>(0.0, 5000.0)(rng));
    return s;
  };
  const QuantileSketch a = make(1), b = make(2), c = make(3);

  QuantileSketch left = a;
  left.merge(b);
  left.merge(c);
  QuantileSketch bc = b;
  bc.merge(c);
  QuantileSketch right = a;
  right.merge(bc);
  EXPECT_EQ(left.serialize(), right.serialize());

  QuantileSketch reversed = c;
  reversed.merge(b);
  reversed.merge(a);
  EXPECT_EQ(left.serialize(), reversed.serialize());
}

TEST(QuantileSketch, EmptyIsMergeIdentity) {
  QuantileSketch s;
  s.record(1.5);
  s.record(2000.0);
  const std::string before = s.serialize();
  s.merge(QuantileSketch());
  EXPECT_EQ(s.serialize(), before);
  QuantileSketch empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  empty.merge(s);
  EXPECT_EQ(empty.serialize(), before);
}

TEST(QuantileSketch, MergeRejectsAccuracyMismatch) {
  QuantileSketch a(0.01), b(0.02);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, SerializeRoundTrips) {
  QuantileSketch s;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 300; ++i)
    s.record(std::uniform_real_distribution<double>(0.0, 100.0)(rng));
  s.record(0.0);
  const auto parsed = QuantileSketch::parse(s.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), s.serialize());
  EXPECT_EQ(parsed->count(), s.count());
  EXPECT_FALSE(QuantileSketch::parse("qsk1;a=2;n=0;z=0;b=").has_value());
  EXPECT_FALSE(QuantileSketch::parse("logh1;bits=3").has_value());
}

// --- TrialTelemetry / CampaignTelemetry ---

TEST(TrialTelemetry, FamilyRollupKeepsFirstAndLastSegment) {
  EXPECT_EQ(TrialTelemetry::family("link.chain0-1.delivered"), "link.delivered");
  EXPECT_EQ(TrialTelemetry::family("player.wm.play_attempts"), "player.play_attempts");
  EXPECT_EQ(TrialTelemetry::family("repair.reroutes"), "repair.reroutes");
  EXPECT_EQ(TrialTelemetry::family("plain"), "plain");
  EXPECT_EQ(TrialTelemetry::family("a.b.c.d"), "a.d");
}

TEST(TrialTelemetry, SerializeRoundTrips) {
  TrialTelemetry t;
  t.set_sample("trial.goodput_kbps", 412.375);
  t.set_sample("trial.recovery_ratio", 0.8333333333333334);
  t.set_tally("trial.sim_events", 48868);
  t.add_counter("link.delivered", 2258);
  t.add_counter("link.delivered", 10);  // additive
  t.add_counter("zeroes.dropped", 0);   // zero counters are dropped
  const std::string bytes = t.serialize();
  const auto parsed = TrialTelemetry::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), bytes);
  EXPECT_EQ(parsed->counter("link.delivered"), 2268u);
  EXPECT_EQ(parsed->counter("zeroes.dropped"), 0u);
  ASSERT_TRUE(parsed->sample("trial.recovery_ratio").has_value());
  EXPECT_DOUBLE_EQ(*parsed->sample("trial.recovery_ratio"), 0.8333333333333334);
  ASSERT_TRUE(parsed->tally("trial.sim_events").has_value());
  EXPECT_EQ(*parsed->tally("trial.sim_events"), 48868u);
  EXPECT_FALSE(TrialTelemetry::parse("tt1|bogus").has_value());
  EXPECT_FALSE(TrialTelemetry::parse("").has_value());
}

#ifndef STREAMLAB_OBS_DISABLE
TEST(TrialTelemetry, FromRegistryRollsUpFamilies) {
  Registry registry;
  registry.counter("link.chain0-1.delivered").add(100);
  registry.counter("link.chain1-2.delivered").add(50);
  registry.counter("player.wm.rebuffer_events").add(3);
  registry.counter("player.wm.watchdog_fired");  // stays 0 -> dropped
  registry.histogram("player.wm.repair_latency_ms", 5.0, 100).record(10.0);
  registry.histogram("player.rm.repair_latency_ms", 5.0, 100).record(30.0);
  const TrialTelemetry t = TrialTelemetry::from_registry(registry);
  EXPECT_EQ(t.counter("link.delivered"), 150u);
  EXPECT_EQ(t.counter("player.rebuffer_events"), 3u);
  EXPECT_EQ(t.counter("player.watchdog_fired"), 0u);
  EXPECT_EQ(t.counter("player.repair_latency_ms.samples"), 2u);
  ASSERT_TRUE(t.sample("player.repair_latency_ms").has_value());
  EXPECT_DOUBLE_EQ(*t.sample("player.repair_latency_ms"), 20.0);
}
#endif

TrialTelemetry trial_record(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TrialTelemetry t;
  t.set_sample("trial.goodput_kbps", std::uniform_real_distribution<double>(100.0, 500.0)(rng));
  t.set_sample("trial.stall_ms", std::uniform_real_distribution<double>(0.0, 9000.0)(rng));
  t.set_tally("trial.sim_events", 30'000 + rng() % 20'000);
  t.add_counter("link.delivered", 2000 + rng() % 500);
  return t;
}

TEST(CampaignTelemetry, FoldOrderEqualsBlockMerge) {
  // fold(t0..t3) must equal merge(fold(t0,t1), fold(t2,t3)) byte-for-byte —
  // the distributed-coordinator contract.
  CampaignTelemetry serial;
  for (std::uint64_t i = 0; i < 4; ++i) serial.fold(trial_record(i));
  serial.add_counter("trials.completed", 4);

  CampaignTelemetry left, right;
  left.fold(trial_record(0));
  left.fold(trial_record(1));
  left.add_counter("trials.completed", 2);
  right.fold(trial_record(2));
  right.fold(trial_record(3));
  right.add_counter("trials.completed", 2);
  left.merge(right);

  EXPECT_EQ(serial.serialize(), left.serialize());
  EXPECT_EQ(left.trials_folded(), 4u);
  EXPECT_EQ(left.counter("trials.completed"), 4u);
}

TEST(CampaignTelemetry, SerializeIsDeterministicAndSummarized) {
  CampaignTelemetry a, b;
  for (std::uint64_t i = 0; i < 8; ++i) a.fold(trial_record(i));
  for (std::uint64_t i = 0; i < 8; ++i) b.fold(trial_record(i));
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.serialize().rfind("telemetry-v1\ntrials 8\n", 0), 0u);
  ASSERT_NE(a.sketch("trial.goodput_kbps"), nullptr);
  EXPECT_EQ(a.sketch("trial.goodput_kbps")->count(), 8u);
  ASSERT_NE(a.tally("trial.sim_events"), nullptr);
  EXPECT_NE(a.summary().find("trial.goodput_kbps: p50="), std::string::npos);
  EXPECT_EQ(a.sketch("no.such.metric"), nullptr);
  EXPECT_EQ(a.tally("no.such.metric"), nullptr);
}

}  // namespace
}  // namespace streamlab::obs
