#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace streamlab::obs {
namespace {

#ifdef STREAMLAB_OBS_DISABLE

// With the layer compiled out, the only contract left is that handles and
// registries are total no-ops.
TEST(Metrics, DisabledBuildIsInert) {
  EXPECT_FALSE(kObsCompiledIn);
  Registry registry;
  EXPECT_FALSE(registry.enabled());
  Counter c = registry.counter("x");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(registry.counters().empty());
}

#else

TEST(Metrics, CounterAddsThroughHandle) {
  Registry registry;
  Counter c = registry.counter("loop.events_fired");
  EXPECT_TRUE(c.live());
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, SameNameSharesStorage) {
  Registry registry;
  Counter a = registry.counter("shared");
  Counter b = registry.counter("shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Metrics, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();
  g.set(5);
  h.record(1.0);
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, DisabledRegistryHandsOutInertHandles) {
  Registry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  Counter c = registry.counter("x");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(registry.counters().empty());
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry registry;
  Gauge g = registry.gauge("queue.depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Metrics, HistogramBucketsValues) {
  Registry registry;
  // 3 regular buckets of width 10 plus overflow: [0,10) [10,20) [20,30) [30,inf)
  Histogram h = registry.histogram("stall_ms", 10.0, 3);
  ASSERT_TRUE(h.live());
  h.record(0.0);
  h.record(5.0);
  h.record(15.0);
  h.record(29.9);
  h.record(1000.0);
  h.record(-2.0);  // clamps into bucket 0
  const HistogramData* d = h.data();
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->buckets.size(), 4u);
  EXPECT_EQ(d->buckets[0], 3u);
  EXPECT_EQ(d->buckets[1], 1u);
  EXPECT_EQ(d->buckets[2], 1u);
  EXPECT_EQ(d->buckets[3], 1u);
  EXPECT_EQ(d->total, 6u);
  EXPECT_DOUBLE_EQ(d->sum, 0.0 + 5.0 + 15.0 + 29.9 + 1000.0 - 2.0);
}

TEST(Metrics, HistogramReRegisterKeepsShape) {
  Registry registry;
  Histogram a = registry.histogram("h", 10.0, 3);
  a.record(5.0);
  Histogram b = registry.histogram("h", 99.0, 50);  // shape ignored: same metric
  ASSERT_TRUE(b.live());
  EXPECT_EQ(b.data(), a.data());
  EXPECT_DOUBLE_EQ(b.data()->bucket_width, 10.0);
  EXPECT_EQ(b.data()->buckets.size(), 4u);
}

TEST(Metrics, SnapshotsAreNameSorted) {
  Registry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);
  registry.gauge("z").set(-5);
  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "b");
  EXPECT_EQ(counters[1].second, 2u);
  const auto gauges = registry.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].second, -5);
}

#endif  // STREAMLAB_OBS_DISABLE

}  // namespace
}  // namespace streamlab::obs
