// End-to-end observability: a turbulence scenario run with an Obs attached
// must produce the promised timeline — a fault-episode span, rebuffer
// spans, queue-depth counter samples — and the exported Chrome trace must
// be valid JSON with those events in it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/turbulence.hpp"
#include "json_check.hpp"
#include "obs/export.hpp"
#include "util/strings.hpp"

namespace streamlab {
namespace {

TurbulenceScenarioConfig short_outage_config(obs::Obs* obs) {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  cfg.obs = obs;
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(30.0);
  flap.duration = Duration::seconds(4);
  flap.label = "short-flap";
  cfg.episodes.push_back(flap);
  return cfg;
}

struct ObservedRun {
  obs::Obs obs;
  TurbulenceRunResult result;
};

ObservedRun& observed_run() {
  static ObservedRun run;
  static const bool init = [] {
    const ClipSet& set = table1_catalog()[0];
    const auto pair = set.pair(RateTier::kLow);
    // The media clip with rebuffering on: the 4 s outage forces stalls.
    run.result = run_turbulence_clip(pair->second, short_outage_config(&run.obs));
    return true;
  }();
  (void)init;
  return run;
}

// Everything below up to the determinism test asserts on recorded data,
// which STREAMLAB_OBS_DISABLE compiles out by contract.
#ifndef STREAMLAB_OBS_DISABLE

std::uint64_t counter_value(const obs::Obs& obs, const std::string& name) {
  for (const auto& [n, v] : obs.registry().counters())
    if (n == name) return v;
  return 0;
}

TEST(ObsIntegration, ScenarioCompletesWithObserverAttached) {
  const auto& run = observed_run();
  ASSERT_TRUE(run.result.media.has_value());
  EXPECT_TRUE(run.result.media->completed);
  EXPECT_GT(run.result.media->rebuffer_events, 0u);
}

TEST(ObsIntegration, LoopCountersCoverEveryFiredEvent) {
  const obs::Obs& obs = observed_run().obs;
  const std::uint64_t total = counter_value(obs, "loop.events_fired");
  EXPECT_GT(total, 1000u);
  std::uint64_t by_category = 0;
  for (const auto& [name, value] : obs.registry().counters())
    if (name.rfind("loop.fired.", 0) == 0) by_category += value;
  EXPECT_EQ(by_category, total);
  // The scenario exercises links, playout, control timers and faults.
  EXPECT_GT(counter_value(obs, "loop.fired.link"), 0u);
  EXPECT_GT(counter_value(obs, "loop.fired.playout"), 0u);
  EXPECT_GT(counter_value(obs, "loop.fired.control"), 0u);
  EXPECT_EQ(counter_value(obs, "loop.fired.fault"), 2u);  // apply + clear
}

TEST(ObsIntegration, LinkAndPlayerCountersRecorded) {
  const obs::Obs& obs = observed_run().obs;
  EXPECT_GT(counter_value(obs, "link.bottleneck.delivered"), 0u);
  // The outage drops every packet on the wire for 4 s.
  EXPECT_GT(counter_value(obs, "link.bottleneck.drops_outage"), 0u);
  EXPECT_EQ(counter_value(obs, "player.media.play_attempts"), 1u);
  EXPECT_EQ(counter_value(obs, "player.media.rebuffer_events"),
            observed_run().result.media->rebuffer_events);
}

TEST(ObsIntegration, TraceHasFaultSpanRebufferSpanAndQueueSamples) {
  const obs::Obs& obs = observed_run().obs;
  const obs::Tracer& tracer = obs.tracer();
  bool fault_begin = false, fault_end = false;
  bool rebuffer_begin = false, rebuffer_end = false;
  bool loop_depth_sample = false, link_queue_sample = false;
  tracer.for_each([&](const obs::TraceRecord& r) {
    const std::string& name = tracer.string(r.name);
    if (r.kind == obs::RecordKind::kSpanBegin) {
      if (name.rfind("fault:outage", 0) == 0) fault_begin = true;
      if (name == "rebuffer") rebuffer_begin = true;
    } else if (r.kind == obs::RecordKind::kSpanEnd) {
      if (name.rfind("fault:outage", 0) == 0) fault_end = true;
      if (name == "rebuffer") rebuffer_end = true;
    } else if (r.kind == obs::RecordKind::kCounter) {
      if (name == "loop.queue_depth") loop_depth_sample = true;
      if (name.rfind("link.bottleneck.queue_bytes", 0) == 0) link_queue_sample = true;
    }
  });
  EXPECT_TRUE(fault_begin);
  EXPECT_TRUE(fault_end);
  EXPECT_TRUE(rebuffer_begin);
  EXPECT_TRUE(rebuffer_end);
  EXPECT_TRUE(loop_depth_sample);
  EXPECT_TRUE(link_queue_sample);
}

TEST(ObsIntegration, ExportedChromeTraceIsValidAndComplete) {
  const std::string dir = testing::TempDir() + "/streamlab_obs_export";
  std::filesystem::remove_all(dir);
  const int written = obs::export_trace(observed_run().obs, dir);
  EXPECT_EQ(written, 4);
  for (const char* f : {"trace.json", "trace.ndjson", "timeseries.csv", "metrics.csv"})
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + f)) << f;

  std::ifstream in(dir + "/trace.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(testjson::json_validate(json), "");
  EXPECT_NE(json.find("fault:outage:short-flap"), std::string::npos);
  EXPECT_NE(json.find("\"rebuffer\""), std::string::npos);
  EXPECT_NE(json.find("loop.queue_depth"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ObsIntegration, ExportedTimeseriesRoundTripsMonotone) {
  std::ostringstream out;
  obs::write_timeseries_csv(observed_run().obs, out);
  const auto lines = split(out.str(), '\n');
  ASSERT_GT(lines.size(), 10u);
  EXPECT_EQ(lines[0], "time_s,metric,value");
  double prev = -1.0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = split(lines[i], ',');
    ASSERT_EQ(fields.size(), 3u) << lines[i];
    const double t = std::stod(fields[0]);
    ASSERT_GE(t, prev) << "row " << i << " breaks time order";
    prev = t;
  }
}

#endif  // STREAMLAB_OBS_DISABLE

TEST(ObsIntegration, RunIsDeterministicUnderObservation) {
  // Attaching an observer must not perturb the simulation itself.
  const ClipSet& set = table1_catalog()[0];
  const auto pair = set.pair(RateTier::kLow);
  const TurbulenceRunResult bare =
      run_turbulence_clip(pair->second, short_outage_config(nullptr));
  const auto& observed = observed_run().result;
  ASSERT_TRUE(bare.media.has_value());
  EXPECT_EQ(bare.media->frames_rendered, observed.media->frames_rendered);
  EXPECT_EQ(bare.media->packets_received, observed.media->packets_received);
  EXPECT_EQ(bare.media->rebuffer_events, observed.media->rebuffer_events);
  EXPECT_EQ(bare.media->stall_time.ns(), observed.media->stall_time.ns());
}

}  // namespace
}  // namespace streamlab
