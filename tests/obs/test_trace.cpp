#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "json_check.hpp"
#include "util/strings.hpp"

namespace streamlab::obs {
namespace {

// The whole file asserts on recorded data; with STREAMLAB_OBS_DISABLE the
// tracer records nothing by contract, so there is nothing to test here.
#ifndef STREAMLAB_OBS_DISABLE

std::vector<TraceRecord> records_of(const Tracer& tracer) {
  std::vector<TraceRecord> out;
  tracer.for_each([&](const TraceRecord& r) { out.push_back(r); });
  return out;
}

TEST(Trace, InternIsStableAndZeroIsEmpty) {
  Tracer tracer;
  EXPECT_EQ(tracer.intern(""), 0);
  const std::uint16_t a = tracer.intern("alpha");
  const std::uint16_t b = tracer.intern("beta");
  EXPECT_NE(a, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.intern("alpha"), a);
  EXPECT_EQ(tracer.string(a), "alpha");
  EXPECT_EQ(tracer.string(0), "");
}

TEST(Trace, InstantRecordsNameTrackTimeValue) {
  Tracer tracer;
  const std::uint16_t name = tracer.intern("play-retry");
  const std::uint16_t track = tracer.intern("player.real");
  tracer.instant(name, track, SimTime::from_seconds(1.5), 2.0);
  const auto recs = records_of(tracer);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, RecordKind::kInstant);
  EXPECT_EQ(recs[0].name, name);
  EXPECT_EQ(recs[0].track, track);
  EXPECT_EQ(recs[0].time.to_seconds(), 1.5);
  EXPECT_EQ(recs[0].value, 2.0);
}

TEST(Trace, SpansPairBeginAndEndById) {
  Tracer tracer;
  const std::uint16_t name = tracer.intern("fault:outage");
  const std::uint16_t track = tracer.intern("faults");
  const std::uint64_t id = tracer.begin_span(name, track, SimTime::from_seconds(30.0));
  EXPECT_NE(id, 0u);
  tracer.end_span(id, SimTime::from_seconds(34.0));
  tracer.end_span(id, SimTime::from_seconds(35.0));   // double close: ignored
  tracer.end_span(999, SimTime::from_seconds(36.0));  // unknown id: ignored
  const auto recs = records_of(tracer);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].kind, RecordKind::kSpanBegin);
  EXPECT_EQ(recs[1].kind, RecordKind::kSpanEnd);
  EXPECT_EQ(recs[0].span_id, id);
  EXPECT_EQ(recs[1].span_id, id);
  EXPECT_EQ(recs[1].name, name);
  EXPECT_EQ(recs[1].track, track);
}

TEST(Trace, SampleIsRateLimitedPerName) {
  Tracer::Config cfg;
  cfg.sample_interval = Duration::millis(100);
  Tracer tracer(cfg);
  const std::uint16_t q = tracer.intern("queue");
  const std::uint16_t other = tracer.intern("other");
  EXPECT_TRUE(tracer.sample(q, SimTime::from_seconds(0.0), 1.0));
  EXPECT_FALSE(tracer.sample(q, SimTime::from_seconds(0.05), 2.0));  // inside window
  EXPECT_TRUE(tracer.sample(other, SimTime::from_seconds(0.05), 9.0));  // own window
  EXPECT_TRUE(tracer.sample(q, SimTime::from_seconds(0.1), 3.0));
  tracer.sample_always(q, SimTime::from_seconds(0.10001), 4.0);  // bypasses the limit
  EXPECT_EQ(records_of(tracer).size(), 4u);
}

TEST(Trace, RingOverwritesOldestAndCountsDropped) {
  Tracer::Config cfg;
  cfg.capacity = 4;
  Tracer tracer(cfg);
  const std::uint16_t name = tracer.intern("tick");
  for (int i = 0; i < 6; ++i)
    tracer.instant(name, 0, SimTime(i * 1000), static_cast<double>(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto recs = records_of(tracer);
  ASSERT_EQ(recs.size(), 4u);
  // Oldest-first and the two oldest records gone.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(recs[static_cast<std::size_t>(i)].value, i + 2.0);
}

TEST(Trace, DroppedCounterMirrorsRingOverflow) {
  Registry registry;
  Tracer::Config cfg;
  cfg.capacity = 4;
  Tracer tracer(cfg);
  tracer.set_dropped_counter(registry.counter("trace.records_dropped"));
  const std::uint16_t name = tracer.intern("tick");
  for (int i = 0; i < 4; ++i) tracer.instant(name, 0, SimTime(i), 0.0);
  EXPECT_EQ(registry.counter("trace.records_dropped").value(), 0u);  // ring just full
  for (int i = 0; i < 3; ++i) tracer.instant(name, 0, SimTime(i), 0.0);
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(registry.counter("trace.records_dropped").value(), 3u);
}

TEST(Trace, LastReturnsTailOldestFirst) {
  Tracer::Config cfg;
  cfg.capacity = 4;
  Tracer tracer(cfg);
  const std::uint16_t name = tracer.intern("tick");
  for (int i = 0; i < 6; ++i)
    tracer.instant(name, 0, SimTime(i * 1000), static_cast<double>(i));
  const auto tail = tracer.last(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].value, 4.0);
  EXPECT_EQ(tail[1].value, 5.0);
  // Asking for more than retained returns everything retained.
  EXPECT_EQ(tracer.last(100).size(), 4u);
}

TEST(Trace, ObsWiresDroppedCounterIntoRegistry) {
  Obs::Config cfg;
  cfg.trace_capacity = 2;
  Obs obs(cfg);
  const std::uint16_t name = obs.tracer().intern("tick");
  for (int i = 0; i < 5; ++i) obs.tracer().instant(name, 0, SimTime(i), 0.0);
  EXPECT_EQ(obs.registry().counter("trace.records_dropped").value(), 3u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer::Config cfg;
  cfg.enabled = false;
  Tracer tracer(cfg);
  const std::uint16_t name = tracer.intern("x");
  tracer.instant(name, 0, SimTime::zero());
  EXPECT_EQ(tracer.begin_span(name, 0, SimTime::zero()), 0u);
  tracer.sample_always(name, SimTime::zero(), 1.0);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TraceExport, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01", 2)), "a\\u0001");
}

Obs& populated_obs() {
  static Obs obs;
  static const bool init = [] {
    obs.registry().counter("demo.count").add(7);
    obs.registry().gauge("demo.level").set(-3);
    obs.registry().histogram("demo.hist", 5.0, 2).record(6.0);
    Tracer& t = obs.tracer();
    const std::uint16_t track = t.intern("demo \"track\"");
    const std::uint16_t span_name = t.intern("fault:outage:short");
    const std::uint16_t inst = t.intern("play-retry");
    const std::uint16_t q = t.intern("queue_bytes");
    const std::uint64_t span = t.begin_span(span_name, track, SimTime::from_seconds(1.0));
    t.instant(inst, track, SimTime::from_seconds(1.5), 2.0);
    t.sample_always(q, SimTime::from_seconds(1.6), 512.0);
    t.sample_always(q, SimTime::from_seconds(2.5), 0.0);
    t.end_span(span, SimTime::from_seconds(3.0));
    return true;
  }();
  (void)init;
  return obs;
}

TEST(TraceExport, ChromeTraceIsValidJsonWithExpectedEvents) {
  std::ostringstream out;
  write_chrome_trace(populated_obs(), out);
  const std::string json = out.str();
  EXPECT_EQ(testjson::json_validate(json), "") << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("fault:outage:short"), std::string::npos);
  // The quote in the track name must arrive escaped.
  EXPECT_NE(json.find("demo \\\"track\\\""), std::string::npos);
  // Ring-truncation honesty header: retained + dropped counts up front.
  EXPECT_NE(json.find("\"traceRetained\":5"), std::string::npos);
  EXPECT_NE(json.find("\"traceDropped\":0"), std::string::npos);
}

TEST(TraceExport, NdjsonLinesAreEachValidJson) {
  std::ostringstream out;
  write_ndjson(populated_obs(), out);
  std::size_t lines = 0;
  for (const auto& line : split(out.str(), '\n')) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(testjson::json_validate(line), "") << line;
  }
  EXPECT_EQ(lines, 6u);  // header + span begin + instant + 2 samples + span end
  // First line is the truncation-honesty header.
  EXPECT_EQ(out.str().rfind("{\"header\":\"streamlab-trace-v1\",\"records\":5,\"dropped\":0}", 0), 0u);
}

TEST(TraceExport, TimeseriesCsvRoundTripsMonotone) {
  std::ostringstream out;
  write_timeseries_csv(populated_obs(), out);
  const auto lines = split(out.str(), '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "time_s,metric,value");
  double prev = -1.0;
  std::size_t rows = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = split(lines[i], ',');
    ASSERT_EQ(fields.size(), 3u) << lines[i];
    const double t = std::stod(fields[0]);
    EXPECT_GE(t, prev) << "timestamps must be monotone non-decreasing";
    prev = t;
    ++rows;
  }
  EXPECT_EQ(rows, 2u);  // only the counter samples
  // Round-trip the sampled values.
  EXPECT_DOUBLE_EQ(std::stod(split(lines[1], ',')[2]), 512.0);
  EXPECT_EQ(split(lines[1], ',')[1], "queue_bytes");
}

TEST(TraceExport, MetricsCsvSnapshotsEveryKind) {
  std::ostringstream out;
  write_metrics_csv(populated_obs(), out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.find("kind,name,arg,value"), 0u);
  EXPECT_NE(csv.find("counter,demo.count,,7"), std::string::npos);
  EXPECT_NE(csv.find("gauge,demo.level,,-3"), std::string::npos);
  EXPECT_NE(csv.find("histogram_bucket,demo.hist"), std::string::npos);
  EXPECT_NE(csv.find("histogram_total,demo.hist,,1"), std::string::npos);
}

#endif  // STREAMLAB_OBS_DISABLE

}  // namespace
}  // namespace streamlab::obs
