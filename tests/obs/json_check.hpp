// Minimal JSON syntax validator for the trace-export tests: enough of
// RFC 8259 to reject malformed output (unbalanced brackets, bad escapes,
// trailing commas, bare values) without pulling in a JSON library.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace streamlab::testjson {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  /// Empty string on success, a position-stamped description on failure.
  std::string validate() {
    skip_ws();
    if (!value()) return error_;
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return error_;
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return !fail("unexpected end");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"') return !fail("object key must be a string");
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return !fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return !fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return !fail("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return !fail("raw control char in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return !fail("truncated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return !fail("bad \\u escape");
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return !fail("bad escape");
        }
      }
      ++pos_;
    }
    return !fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return !fail("bad number");
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return !fail("bad fraction");
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return !fail("bad exponent");
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return !fail("bad literal");
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool fail(const char* what) {
    if (error_.empty())
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    return true;  // callers negate; keeps call sites terse
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Empty string when `text` is syntactically valid JSON.
inline std::string json_validate(std::string_view text) {
  return Validator(text).validate();
}

}  // namespace streamlab::testjson
