#include <gtest/gtest.h>
TEST(Placeholder_trackers, Builds) { SUCCEED(); }
