#include "trackers/tracker.hpp"

#include <gtest/gtest.h>

#include "../players/player_test_util.hpp"

namespace streamlab {
namespace {

using testutil::Session;
using testutil::short_clip;

struct TrackedSession : Session {
  PlayerTracker tracker;

  explicit TrackedSession(const ClipInfo& clip) : Session(clip), tracker(*client) {}

  void run_tracked() {
    client->start();
    tracker.start();
    net.loop().run_until(net.loop().now() + encoded.info().length +
                         Duration::seconds(30));
  }
};

TEST(PlayerTracker, SamplesOncePerSecond) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 100, 20));
  s.run_tracked();
  const auto& samples = s.tracker.samples();
  ASSERT_GT(samples.size(), 15u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_EQ((samples[i].time - samples[i - 1].time), Duration::seconds(1));
}

TEST(PlayerTracker, BufferingFlagDuringPreroll) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 100, 20));
  s.run_tracked();
  const auto& samples = s.tracker.samples();
  // First few samples are in the 5 s WM preroll; later ones are playing.
  EXPECT_TRUE(samples.front().buffering);
  EXPECT_FALSE(samples.back().buffering);
  // Buffering is a prefix: once playing, never buffering again on a clean path.
  bool playing = false;
  for (const auto& smp : samples) {
    if (!smp.buffering) playing = true;
    if (playing) {
      EXPECT_FALSE(smp.buffering);
    }
  }
}

TEST(PlayerTracker, FrameRateReflectsNominalRate) {
  const auto clip = short_clip(PlayerKind::kRealPlayer, 100, 20);
  TrackedSession s(clip);
  s.run_tracked();
  const TrackerReport report = s.tracker.report();
  const double nominal = nominal_frame_rate(clip.player, clip.encoded_rate);
  EXPECT_NEAR(report.average_frame_rate, nominal, 1.5);
}

TEST(PlayerTracker, ReportTotalsMatchClient) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 150, 15));
  s.run_tracked();
  const TrackerReport report = s.tracker.report();
  EXPECT_EQ(report.total_packets, s.client->packets_received());
  EXPECT_EQ(report.total_lost, s.client->packets_lost());
  EXPECT_EQ(report.frames_rendered, s.client->frames_rendered());
  EXPECT_EQ(report.frames_dropped, s.client->frames_dropped());
  EXPECT_EQ(report.clip_id, s.encoded.info().id());
  EXPECT_EQ(report.player, PlayerKind::kMediaPlayer);
  EXPECT_EQ(report.encoded_rate, s.encoded.info().encoded_rate);
  EXPECT_EQ(report.transport, "UDP");
}

TEST(PlayerTracker, ReceptionQualityOnCleanPath) {
  TrackedSession s(short_clip(PlayerKind::kRealPlayer, 60, 15));
  s.run_tracked();
  EXPECT_GT(s.tracker.report().reception_quality(), 98.0);
}

TEST(PlayerTracker, StartupDelayCoversPreroll) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 100, 15));
  s.run_tracked();
  const auto report = s.tracker.report();
  EXPECT_GE(report.startup_delay, WmBehavior{}.preroll);
  EXPECT_LT(report.startup_delay, WmBehavior{}.preroll + Duration::seconds(2));
}

TEST(PlayerTracker, BandwidthSamplesTrackStreaming) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 200, 20));
  s.run_tracked();
  const auto& samples = s.tracker.samples();
  // Mid-stream samples show ~200 Kbps; after streaming ends they drop to 0.
  double mid = 0.0;
  int mid_n = 0;
  for (std::size_t i = 2; i < samples.size() && i < 15; ++i) {
    mid += samples[i].playback_bandwidth.to_kbps();
    ++mid_n;
  }
  ASSERT_GT(mid_n, 0);
  EXPECT_NEAR(mid / mid_n, 200.0, 25.0);
  EXPECT_LT(samples.back().playback_bandwidth.to_kbps(), 10.0);
}

// --- reception_quality() boundary semantics ---

TEST(TrackerReport, ReceptionQualityZeroFramesIsZeroNotNan) {
  TrackerReport r;
  EXPECT_EQ(r.reception_quality(), 0.0);
}

TEST(TrackerReport, ReceptionQualityAllDroppedIsExactlyZero) {
  TrackerReport r;
  r.frames_dropped = 1234;
  EXPECT_EQ(r.reception_quality(), 0.0);
  r.frames_rendered = 1234;
  r.frames_dropped = 0;
  EXPECT_EQ(r.reception_quality(), 100.0);
}

TEST(TrackerReport, ReceptionQualitySumsInWideIntegerSpace) {
  // rendered + dropped would wrap a 32-bit sum (8e9 > 2^32); the 64-bit
  // widened total must yield exactly 50%.
  TrackerReport r;
  r.frames_rendered = 4'000'000'000u;
  r.frames_dropped = 4'000'000'000u;
  EXPECT_EQ(r.reception_quality(), 50.0);
}

// --- recovered-packet column ---

/// A lossy session with the FEC+NACK repair layer attached to both ends, so
/// the tracker has recoveries to record.
struct RepairedTrackedSession {
  Network net;
  Host& server_host;
  EncodedClip encoded;
  std::unique_ptr<StreamServer> server;
  std::unique_ptr<StreamClient> client;
  std::unique_ptr<PlayerTracker> tracker;

  explicit RepairedTrackedSession(const ClipInfo& clip, double loss)
      : net([&] {
          PathConfig path = testutil::fast_path();
          path.loss_probability = loss;
          return path;
        }()),
        server_host(net.add_server("srv")),
        encoded(encode_clip(clip, 7)) {
    RepairLayerConfig repair;
    repair.fec_k = 8;
    repair.fec_stride = 1;
    repair.nack = true;
    server = std::make_unique<WmServer>(server_host, encoded, WmBehavior{},
                                        kMediaServerPort);
    server->enable_repair(repair);
    StreamClient::Config cc;
    cc.kind = clip.player;
    cc.repair = repair;
    client = std::make_unique<StreamClient>(
        net.client(), server->clip(),
        Endpoint{server_host.address(), kMediaServerPort}, cc);
    tracker = std::make_unique<PlayerTracker>(*client);
  }

  void run_tracked() {
    client->start();
    tracker->start();
    net.loop().run_until(net.loop().now() + encoded.info().length +
                         Duration::seconds(30));
  }
};

TEST(PlayerTracker, RecoveredColumnTracksRepairLayer) {
  RepairedTrackedSession s(short_clip(PlayerKind::kMediaPlayer, 150, 15), 0.05);
  s.run_tracked();
  const TrackerReport report = s.tracker->report();
  EXPECT_GT(s.client->packets_recovered(), 0u);
  EXPECT_EQ(report.total_recovered, s.client->packets_recovered());
  // Samples accumulate monotonically up to the session total.
  std::uint64_t prev = 0;
  for (const auto& smp : s.tracker->samples()) {
    EXPECT_GE(smp.packets_recovered, prev);
    prev = smp.packets_recovered;
  }
  EXPECT_EQ(prev, report.total_recovered);
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("packets_received,packets_lost,packets_recovered,buffering"),
            std::string::npos);
  EXPECT_NE(csv.find("," + std::to_string(report.total_recovered) + ","),
            std::string::npos);
}

TEST(PlayerTracker, RecoveredColumnStaysZeroWithoutRepair) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 100, 10));
  s.run_tracked();
  const TrackerReport report = s.tracker.report();
  EXPECT_EQ(report.total_recovered, 0u);
  for (const auto& smp : s.tracker.samples()) EXPECT_EQ(smp.packets_recovered, 0u);
}

TEST(PlayerTracker, CsvExportShape) {
  TrackedSession s(short_clip(PlayerKind::kMediaPlayer, 100, 10));
  s.run_tracked();
  const std::string csv = s.tracker.report().to_csv();
  // Header plus one line per sample.
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, s.tracker.samples().size() + 1);
  EXPECT_NE(csv.find("time_s,frame_rate_fps"), std::string::npos);
}

}  // namespace
}  // namespace streamlab
