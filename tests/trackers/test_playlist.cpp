#include "trackers/playlist.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

TEST(Playlist, IteratesInOrder) {
  Playlist list({"set1/R-l", "set1/R-h", "set2/R-l"});
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.next()->id(), "set1/R-l");
  EXPECT_EQ(list.next()->id(), "set1/R-h");
  EXPECT_EQ(list.next()->id(), "set2/R-l");
  EXPECT_FALSE(list.next().has_value());
  EXPECT_TRUE(list.exhausted());
}

TEST(Playlist, SkipsUnknownIds) {
  Playlist list({"set1/R-l", "not/a-clip", "set2/R-l"});
  EXPECT_EQ(list.next()->id(), "set1/R-l");
  EXPECT_EQ(list.next()->id(), "set2/R-l");
  EXPECT_FALSE(list.next().has_value());
}

TEST(Playlist, RepeatWrapsAround) {
  Playlist list({"set1/R-l", "set1/R-h"}, /*repeat=*/true);
  for (int lap = 0; lap < 3; ++lap) {
    EXPECT_EQ(list.next()->id(), "set1/R-l") << lap;
    EXPECT_EQ(list.next()->id(), "set1/R-h") << lap;
  }
  EXPECT_FALSE(list.exhausted());
}

TEST(Playlist, EmptyRepeatTerminates) {
  Playlist list({}, /*repeat=*/true);
  EXPECT_FALSE(list.next().has_value());
}

TEST(Playlist, ResetRestartsCursor) {
  Playlist list({"set1/R-l", "set1/R-h"});
  list.next();
  list.next();
  EXPECT_TRUE(list.exhausted());
  list.reset();
  EXPECT_FALSE(list.exhausted());
  EXPECT_EQ(list.next()->id(), "set1/R-l");
}

TEST(Playlist, ForPlayerCoversCatalogInOrder) {
  const Playlist real = Playlist::for_player(PlayerKind::kRealPlayer);
  EXPECT_EQ(real.size(), 13u);
  const Playlist media = Playlist::for_player(PlayerKind::kMediaPlayer);
  EXPECT_EQ(media.size(), 13u);
  // Every id resolves and belongs to the right player.
  Playlist copy = media;
  while (auto clip = copy.next())
    EXPECT_EQ(clip->player, PlayerKind::kMediaPlayer);
}

TEST(Playlist, AddAppends) {
  Playlist list;
  list.add("set3/M-l");
  list.add("set3/M-h");
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.next()->id(), "set3/M-l");
}

TEST(Playlist, PositionTracksCursor) {
  Playlist list({"set1/R-l", "set1/R-h"});
  EXPECT_EQ(list.position(), 0u);
  list.next();
  EXPECT_EQ(list.position(), 1u);
}

}  // namespace
}  // namespace streamlab
