// Shared trial-shaping config for the distributed-campaign tests and the
// campaign_worker_testbed binary. Coordinator (test process) and worker
// (child process) must build byte-for-byte the same CampaignConfig — the
// hello handshake compares config digests — so the one builder lives here.
#pragma once

#include <cstddef>

#include "core/campaign.hpp"

namespace streamlab::campaign_test {

inline ClipInfo tiny_clip() {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kRealPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(33);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(5);
  return clip;
}

inline CampaignConfig tiny_campaign(std::size_t trials) {
  CampaignConfig config;
  config.clip = tiny_clip();
  config.trials = trials;
  config.base_seed = 100;
  config.scenario.path.hop_count = 2;
  config.scenario.path.one_way_propagation = Duration::millis(5);
  config.scenario.extra_sim_time = Duration::seconds(5);
  // One short outage mid-clip so every trial exercises the fault layer.
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(1.0);
  flap.duration = Duration::millis(500);
  flap.label = "flap";
  config.scenario.episodes.push_back(flap);
  return config;
}

}  // namespace streamlab::campaign_test
