// campaign_worker_testbed: the child-process half of the distributed
// campaign tests. Usage: campaign_worker_testbed <trials>
//
// Builds the shared tiny campaign config for <trials> trials and runs the
// worker protocol loop over stdin/stdout. Fault behavior is driven by the
// STREAMLAB_WORKER_FAULT environment variable planted per slot by the
// coordinator under test (see src/campaign/worker.hpp).
#include <cstdlib>

#include "campaign/worker.hpp"
#include "tiny_campaign.hpp"

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4;
  const streamlab::CampaignConfig config =
      streamlab::campaign_test::tiny_campaign(trials);
  return streamlab::campaign::run_campaign_worker(config);
}
