// Crash-tolerance integration tests for the distributed campaign
// coordinator. Every test spawns real campaign_worker_testbed child
// processes (path baked in via STREAMLAB_WORKER_TESTBED) and exercises one
// leg of the failure plane with deterministic fault injection; the
// byte-parity tests assert the headline guarantee — the distributed
// manifest is identical to the serial one even across worker deaths.
#include "campaign/distributed.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "tiny_campaign.hpp"

namespace streamlab::campaign {
namespace {

using campaign_test::tiny_campaign;

std::string temp_manifest(const char* name) {
  std::string path = ::testing::TempDir() + "distrib_" + name + ".ndjson";
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Worker command line for a given trial count (must match the config the
/// coordinator runs, or the hello handshake rejects the worker).
std::vector<std::string> testbed_argv(std::size_t trials) {
  return {STREAMLAB_WORKER_TESTBED, std::to_string(trials)};
}

DistributedOptions fast_options(std::size_t trials, std::size_t workers) {
  DistributedOptions opts;
  opts.worker_argv = testbed_argv(trials);
  opts.workers = workers;
  opts.heartbeat_timeout = std::chrono::milliseconds(5000);
  opts.trial_deadline = std::chrono::milliseconds(30000);
  opts.reassign_backoff = std::chrono::milliseconds(10);
  opts.restart_backoff = std::chrono::milliseconds(20);
  return opts;
}

TEST(Distributed, ManifestBytesIdenticalToSerial) {
  CampaignConfig serial_cfg = tiny_campaign(6);
  serial_cfg.workers = 1;
  serial_cfg.manifest_path = temp_manifest("serial_base");
  const CampaignResult serial = run_campaign(serial_cfg);
  ASSERT_EQ(serial.completed, 6u);

  CampaignConfig cfg = tiny_campaign(6);
  cfg.manifest_path = temp_manifest("distrib_base");
  const CampaignResult distributed =
      run_distributed_campaign(cfg, fast_options(6, 4));
  EXPECT_EQ(distributed.completed, 6u);
  EXPECT_EQ(distributed.quarantined, 0u);
  EXPECT_EQ(distributed.workers_lost, 0u);
  EXPECT_FALSE(distributed.degraded_to_in_process);

  EXPECT_EQ(slurp(cfg.manifest_path), slurp(serial_cfg.manifest_path));
  EXPECT_EQ(distributed.aggregate.frames_rendered, serial.aggregate.frames_rendered);
  EXPECT_EQ(distributed.aggregate.packets_lost, serial.aggregate.packets_lost);
  EXPECT_EQ(distributed.telemetry.summary(), serial.telemetry.summary());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(distributed.trials[i].digest, serial.trials[i].digest) << i;
    EXPECT_EQ(distributed.trials[i].seed, serial.trials[i].seed) << i;
  }
}

// The acceptance-criteria test: a worker crashes while holding a trial; the
// trial is reassigned to a healthy worker and the campaign completes with
// zero lost trials and a manifest byte-identical to the unkilled serial run.
TEST(Distributed, KilledWorkerTrialReassignedByteIdentical) {
  CampaignConfig serial_cfg = tiny_campaign(6);
  serial_cfg.workers = 1;
  serial_cfg.manifest_path = temp_manifest("serial_kill");
  const CampaignResult serial = run_campaign(serial_cfg);
  ASSERT_EQ(serial.completed, 6u);

  CampaignConfig cfg = tiny_campaign(6);
  cfg.manifest_path = temp_manifest("distrib_kill");
  DistributedOptions opts = fast_options(6, 2);
  // The coordinator SIGKILLs worker 0 after two results land. At that
  // moment at least four trials are still unfinished, so the kill is
  // guaranteed to cost a trial: either one in flight on worker 0, or the
  // next assignment hitting its dead pipe — both reassign.
  opts.kill_worker_after = 2;
  opts.max_trial_attempts = 4;
  opts.max_worker_restarts = 1;
  const CampaignResult result = run_distributed_campaign(cfg, opts);

  EXPECT_EQ(result.completed, 6u);
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_GE(result.reassigned_trials, 1u);
  EXPECT_GT(result.reassignment_latency_ns, 0u);
  EXPECT_FALSE(result.degraded_to_in_process);

  // Zero lost trials, byte-identical results: same manifest bytes, same
  // per-trial replay digests, same campaign telemetry digest.
  EXPECT_EQ(slurp(cfg.manifest_path), slurp(serial_cfg.manifest_path));
  EXPECT_EQ(result.telemetry.summary(), serial.telemetry.summary());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(result.trials[i].digest, serial.trials[i].digest) << i;
}

TEST(Distributed, PoisonTrialQuarantinedWithWorkerEvidence) {
  CampaignConfig cfg = tiny_campaign(3);
  cfg.manifest_path = temp_manifest("poison");
  DistributedOptions opts = fast_options(3, 2);
  // Every worker crashes on trial 1, so it can never complete; after
  // max_trial_attempts it must be quarantined poison instead of
  // livelocking the fleet.
  opts.worker_env = {{"STREAMLAB_WORKER_FAULT=abort-on-trial:1"},
                     {"STREAMLAB_WORKER_FAULT=abort-on-trial:1"}};
  opts.max_trial_attempts = 2;
  opts.max_worker_restarts = 3;
  const CampaignResult result = run_distributed_campaign(cfg, opts);

  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.quarantined, 1u);
  ASSERT_EQ(result.trials.size(), 3u);
  const TrialOutcome& poison = result.trials[1];
  EXPECT_EQ(poison.status, TrialStatus::kQuarantined);
  EXPECT_EQ(poison.attempts, 2u);
  EXPECT_EQ(poison.worker_exit_status, 42);
  EXPECT_NE(poison.stderr_tail.find("injected abort"), std::string::npos);
  EXPECT_NE(poison.reason.find("poison"), std::string::npos);

  // The manifest records the worker evidence and survives a resume parse.
  const std::string manifest = slurp(cfg.manifest_path);
  EXPECT_NE(manifest.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(manifest.find("\"worker_exit_status\":42"), std::string::npos);
  EXPECT_NE(manifest.find("injected abort"), std::string::npos);
  CampaignConfig resume = tiny_campaign(3);
  resume.manifest_path = cfg.manifest_path;
  resume.workers = 1;
  const CampaignResult resumed = run_campaign(resume);
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(resumed.trials[1].attempts, 2u);
  EXPECT_EQ(resumed.trials[1].worker_exit_status, 42);

  // The flight-recorder post-mortem distinguishes "worker died".
  ASSERT_EQ(result.postmortem_paths.size(), 1u);
  const std::string postmortem = slurp(result.postmortem_paths[0]);
  EXPECT_NE(postmortem.find("\"record\":\"worker\""), std::string::npos);
  EXPECT_NE(postmortem.find("\"exit_status\":42"), std::string::npos);
}

TEST(Distributed, AllWorkersDeadDegradesToInProcess) {
  CampaignConfig serial_cfg = tiny_campaign(4);
  serial_cfg.workers = 1;
  serial_cfg.manifest_path = temp_manifest("serial_degrade");
  const CampaignResult serial = run_campaign(serial_cfg);

  CampaignConfig cfg = tiny_campaign(4);
  cfg.manifest_path = temp_manifest("degrade");
  DistributedOptions opts = fast_options(4, 2);
  // A fleet that can never produce a worker: exec fails instantly (exit
  // 127) every spawn. Once restarts are exhausted the campaign must finish
  // in-process, not abort.
  opts.worker_argv = {"/nonexistent/streamlab_worker_binary"};
  opts.max_worker_restarts = 1;
  const CampaignResult result = run_distributed_campaign(cfg, opts);

  EXPECT_TRUE(result.degraded_to_in_process);
  EXPECT_EQ(result.completed, 4u);
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_TRUE(result.ok());
  // The degraded path re-serializes with the same codec: still identical.
  EXPECT_EQ(slurp(cfg.manifest_path), slurp(serial_cfg.manifest_path));
  EXPECT_EQ(result.telemetry.summary(), serial.telemetry.summary());
}

TEST(Distributed, HungTrialHitsDeadlineAndIsReassigned) {
  CampaignConfig cfg = tiny_campaign(3);
  DistributedOptions opts = fast_options(3, 2);
  // Whichever worker draws trial 0 hangs forever with heartbeats still
  // flowing: the generous heartbeat timeout must NOT fire — the per-trial
  // deadline is what detects this failure mode. Trial 0 burns through both
  // worker lives (restarts disabled), then finishes in the degraded
  // in-process pool; the default attempt cap keeps it short of poison.
  opts.worker_env = {{"STREAMLAB_WORKER_FAULT=hang-on-trial:0"},
                     {"STREAMLAB_WORKER_FAULT=hang-on-trial:0"}};
  opts.heartbeat_timeout = std::chrono::milliseconds(60000);
  opts.trial_deadline = std::chrono::milliseconds(400);
  opts.max_worker_restarts = 0;
  const CampaignResult result = run_distributed_campaign(cfg, opts);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_GE(result.reassigned_trials, 1u);
}

TEST(Distributed, MuteWorkerCaughtByHeartbeatTimeout) {
  CampaignConfig cfg = tiny_campaign(3);
  DistributedOptions opts = fast_options(3, 2);
  // Whichever worker draws trial 0 goes silent — no heartbeats, no result,
  // no exit. Only the heartbeat timeout can catch this one.
  opts.worker_env = {{"STREAMLAB_WORKER_FAULT=mute-on-trial:0",
                      "STREAMLAB_WORKER_HEARTBEAT_MS=50"},
                     {"STREAMLAB_WORKER_FAULT=mute-on-trial:0",
                      "STREAMLAB_WORKER_HEARTBEAT_MS=50"}};
  opts.heartbeat_timeout = std::chrono::milliseconds(500);
  opts.trial_deadline = std::chrono::milliseconds(0);  // disabled
  opts.max_worker_restarts = 0;
  const CampaignResult result = run_distributed_campaign(cfg, opts);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_GE(result.reassigned_trials, 1u);
}

TEST(Distributed, GarbageOutputWorkerIsFailed) {
  CampaignConfig cfg = tiny_campaign(3);
  DistributedOptions opts = fast_options(3, 2);
  // Whichever worker draws trial 0 writes non-protocol bytes: the frame
  // stream turns corrupt and the worker is treated as dead.
  opts.worker_env = {{"STREAMLAB_WORKER_FAULT=garbage-on-trial:0"},
                     {"STREAMLAB_WORKER_FAULT=garbage-on-trial:0"}};
  opts.max_worker_restarts = 0;
  const CampaignResult result = run_distributed_campaign(cfg, opts);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.workers_lost, 1u);
}

TEST(Distributed, ConfigDigestMismatchBansWorkerAndDegrades) {
  CampaignConfig cfg = tiny_campaign(3);
  DistributedOptions opts = fast_options(3, 2);
  // Workers built for a 4-trial study: their hello digest differs, they are
  // banned (a respawn cannot fix a wrong binary), and the fleet being
  // unusable degrades to in-process execution.
  opts.worker_argv = testbed_argv(4);
  const CampaignResult result = run_distributed_campaign(cfg, opts);
  EXPECT_TRUE(result.degraded_to_in_process);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.workers_lost, 2u);
}

TEST(Distributed, ResumeSkipsCommittedTrialsAcrossModes) {
  // A serial run that stopped after 2 of 5 trials (manifest cut at the
  // second line, as an interrupted study would leave it): the distributed
  // run must resume those two and only execute the remaining three.
  CampaignConfig full = tiny_campaign(5);
  full.workers = 1;
  full.manifest_path = temp_manifest("resume_full");
  run_campaign(full);
  const std::string full_manifest = slurp(full.manifest_path);

  std::size_t second_newline = full_manifest.find('\n');
  ASSERT_NE(second_newline, std::string::npos);
  second_newline = full_manifest.find('\n', second_newline + 1);
  ASSERT_NE(second_newline, std::string::npos);
  CampaignConfig cfg = tiny_campaign(5);
  cfg.manifest_path = temp_manifest("resume_mixed");
  {
    std::ofstream out(cfg.manifest_path, std::ios::binary);
    out << full_manifest.substr(0, second_newline + 1);
  }

  const CampaignResult result = run_distributed_campaign(cfg, fast_options(5, 2));
  EXPECT_EQ(result.resumed, 2u);
  EXPECT_EQ(result.completed, 5u);
  EXPECT_TRUE(result.ok());
  // And the re-grown manifest equals the uninterrupted serial run's.
  EXPECT_EQ(slurp(cfg.manifest_path), full_manifest);
}

TEST(Distributed, EmptyWorkerArgvThrows) {
  CampaignConfig cfg = tiny_campaign(1);
  DistributedOptions opts;
  EXPECT_THROW(run_distributed_campaign(cfg, opts), std::runtime_error);
}

}  // namespace
}  // namespace streamlab::campaign
