#include "campaign/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace streamlab::campaign {
namespace {

TEST(Protocol, FrameRoundTrip) {
  const std::string wire = encode_frame(FrameType::kHello, "deadbeefcafef00d");
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.payload, "deadbeefcafef00d");
  EXPECT_FALSE(reader.next(frame));
  EXPECT_FALSE(reader.corrupt());
}

TEST(Protocol, ByteAtATimeFeedingReassembles) {
  const std::string wire = encode_frame(FrameType::kAssign, encode_assign(42)) +
                           encode_frame(FrameType::kHeartbeat, std::string());
  FrameReader reader;
  Frame frame;
  int frames = 0;
  for (char c : wire) {
    reader.feed(&c, 1);
    while (reader.next(frame)) {
      ++frames;
      if (frames == 1) {
        EXPECT_EQ(frame.type, FrameType::kAssign);
        std::uint64_t index = 0;
        ASSERT_TRUE(decode_assign(frame.payload, index));
        EXPECT_EQ(index, 42u);
      } else {
        EXPECT_EQ(frame.type, FrameType::kHeartbeat);
        EXPECT_TRUE(frame.payload.empty());
      }
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(Protocol, UnknownTypeMarksStreamCorrupt) {
  FrameReader reader;
  const char garbage[] = "\xff\x01\x00\x00\x00x";
  reader.feed(garbage, sizeof(garbage) - 1);
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
  // Corrupt is sticky: later valid bytes do not resurrect the stream.
  const std::string good = encode_frame(FrameType::kHeartbeat, std::string());
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
}

TEST(Protocol, OversizedLengthMarksStreamCorrupt) {
  FrameReader reader;
  std::string wire;
  wire.push_back(static_cast<char>(FrameType::kResult));
  // Length far past kMaxFramePayload.
  wire += std::string("\xff\xff\xff\x7f", 4);
  reader.feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
}

TEST(Protocol, ResultCodecRoundTrip) {
  ResultMsg msg;
  msg.index = 7;
  msg.manifest_line = "{\"trial\":7,\"status\":\"completed\"}";
  msg.postmortem = "{\"record\":\"header\"}\n";
  ResultMsg back;
  ASSERT_TRUE(decode_result(encode_result(msg), back));
  EXPECT_EQ(back.index, 7u);
  EXPECT_EQ(back.manifest_line, msg.manifest_line);
  EXPECT_EQ(back.postmortem, msg.postmortem);
}

TEST(Protocol, ResultCodecRejectsTruncation) {
  ResultMsg msg;
  msg.index = 3;
  msg.manifest_line = "line";
  msg.postmortem = "pm";
  const std::string wire = encode_result(msg);
  ResultMsg back;
  for (std::size_t cut = 0; cut < wire.size(); ++cut)
    EXPECT_FALSE(decode_result(wire.substr(0, cut), back)) << "cut=" << cut;
  EXPECT_FALSE(decode_result(wire + "extra", back));
  EXPECT_TRUE(decode_result(wire, back));
}

TEST(Protocol, EmptyPayloadFrames) {
  FrameReader reader;
  const std::string wire = encode_frame(FrameType::kShutdown, std::string());
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace streamlab::campaign
