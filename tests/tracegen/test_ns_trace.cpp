#include "tracegen/ns_trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace streamlab {
namespace {

SyntheticFlow sample_flow() {
  SyntheticFlow flow;
  flow.rtt_ms = 40.0;
  flow.packets = {
      {0.020000, 900, false},
      {0.120000, 1514, false},
      {0.120500, 1514, true},
      {0.121000, 300, true},
      {0.220000, 870, false},
  };
  return flow;
}

TEST(NsTrace, WritesOneLinePerPacket) {
  std::stringstream out;
  ASSERT_TRUE(write_ns_trace(out, sample_flow(), 3));
  std::size_t lines = 0;
  std::string line;
  std::stringstream copy(out.str());
  while (std::getline(copy, line)) {
    ++lines;
    EXPECT_EQ(line[0], 'r');
    EXPECT_NE(line.find(" --- 3 "), std::string::npos);
  }
  EXPECT_EQ(lines, 5u);
}

TEST(NsTrace, FragmentsMarked) {
  std::stringstream out;
  write_ns_trace(out, sample_flow());
  const std::string text = out.str();
  std::size_t frag_count = 0, pos = 0;
  while ((pos = text.find(" frag ", pos)) != std::string::npos) {
    ++frag_count;
    pos += 5;
  }
  EXPECT_EQ(frag_count, 2u);
}

TEST(NsTrace, RoundTrip) {
  const SyntheticFlow flow = sample_flow();
  std::stringstream buf;
  ASSERT_TRUE(write_ns_trace(buf, flow));
  const auto loaded = read_ns_trace(buf);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), flow.packets.size());
  for (std::size_t i = 0; i < flow.packets.size(); ++i) {
    EXPECT_NEAR((*loaded)[i].time_s, flow.packets[i].time_s, 1e-6);
    EXPECT_EQ((*loaded)[i].bytes, flow.packets[i].bytes);
    EXPECT_EQ((*loaded)[i].fragment, flow.packets[i].fragment);
  }
}

TEST(NsTrace, ReaderSkipsNonReceiveEvents) {
  std::stringstream buf(
      "r 0.1 1 0 udp 500 --- 1 1.0 0.0 0 0\n"
      "+ 0.2 1 0 udp 500 --- 1 1.0 0.0 0 0\n"
      "d 0.3 1 0 udp 500 --- 1 1.0 0.0 0 0\n"
      "r 0.4 1 0 udp 600 --- 1 1.0 0.0 0 0\n");
  const auto loaded = read_ns_trace(buf);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].bytes, 600u);
}

TEST(NsTrace, ReaderRejectsGarbage) {
  std::stringstream buf("this is not an ns trace\n");
  const auto loaded = read_ns_trace(buf);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("line 1"), std::string::npos);
}

TEST(NsTrace, EmptyInputGivesEmptyTrace) {
  std::stringstream buf("");
  const auto loaded = read_ns_trace(buf);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(NsTrace, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/streamlab_test.nstr";
  ASSERT_TRUE(write_ns_trace_file(path, sample_flow()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto loaded = read_ns_trace(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamlab
