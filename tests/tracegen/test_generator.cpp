#include "tracegen/generator.hpp"

#include <gtest/gtest.h>

#include "net/headers.hpp"

namespace streamlab {
namespace {

const StudyResults& small_study() {
  static const StudyResults study = [] {
    StudyConfig config;
    config.seed = 424242;
    return run_study_subset(config, {1});
  }();
  return study;
}

const FlowModel& model() {
  static const FlowModel m = FlowModel::fit(small_study());
  return m;
}

TEST(SyntheticFlowGenerator, GeneratesNonEmptyFlow) {
  SyntheticFlowGenerator gen(model(), 1);
  const auto clip = *find_clip("set1/R-l");
  const SyntheticFlow flow = gen.generate(clip);
  EXPECT_GT(flow.packets.size(), 100u);
  EXPECT_GT(flow.rtt_ms, 0.0);
  EXPECT_GT(flow.duration_s(), 10.0);
}

TEST(SyntheticFlowGenerator, TimesMonotone) {
  SyntheticFlowGenerator gen(model(), 2);
  const SyntheticFlow flow = gen.generate(*find_clip("set1/M-h"));
  for (std::size_t i = 1; i < flow.packets.size(); ++i)
    EXPECT_GE(flow.packets[i].time_s, flow.packets[i - 1].time_s);
}

TEST(SyntheticFlowGenerator, TotalBytesApproximateMediaBudget) {
  SyntheticFlowGenerator gen(model(), 3);
  for (const auto& id : {"set1/R-l", "set1/R-h", "set1/M-l", "set1/M-h"}) {
    const auto clip = *find_clip(id);
    const SyntheticFlow flow = gen.generate(clip);
    const double budget = static_cast<double>(clip.encoded_rate.bytes_in(clip.length));
    EXPECT_NEAR(static_cast<double>(flow.total_bytes()), budget, budget * 0.1) << id;
  }
}

TEST(SyntheticFlowGenerator, RealFlowsNeverFragment) {
  SyntheticFlowGenerator gen(model(), 4);
  for (const auto& id : {"set1/R-l", "set1/R-h"}) {
    const SyntheticFlow flow = gen.generate(*find_clip(id));
    EXPECT_DOUBLE_EQ(flow.fragment_fraction(), 0.0) << id;
  }
}

TEST(SyntheticFlowGenerator, MediaHighRateFragmentsLikeFigure5) {
  SyntheticFlowGenerator gen(model(), 5);
  const SyntheticFlow low = gen.generate(*find_clip("set1/M-l"));
  const SyntheticFlow high = gen.generate(*find_clip("set1/M-h"));
  EXPECT_LT(low.fragment_fraction(), 0.05);
  EXPECT_NEAR(high.fragment_fraction(), 0.66, 0.06);
  // Fragment groups show the Figure 4 wire pattern: full-MTU then tail.
  bool saw_group = false;
  for (std::size_t i = 0; i + 2 < high.packets.size(); ++i) {
    if (!high.packets[i].fragment && high.packets[i + 1].fragment) {
      saw_group = true;
      EXPECT_EQ(high.packets[i].bytes, kDefaultMtu + kEthernetHeaderSize);
    }
  }
  EXPECT_TRUE(saw_group);
}

TEST(SyntheticFlowGenerator, RealStartupBurstPresent) {
  SyntheticFlowGenerator gen(model(), 6);
  const SyntheticFlow flow = gen.generate(*find_clip("set1/R-l"));
  // Rate in the first 15 s vs a mid-stream window (25-40 s).
  double early = 0, late = 0;
  for (const auto& p : flow.packets) {
    if (p.time_s < 15.0) early += p.bytes;
    if (p.time_s >= 25.0 && p.time_s < 40.0) late += p.bytes;
  }
  const double early_rate = early / 15.0;
  const double late_rate = late / 15.0;
  ASSERT_GT(late_rate, 0.0);
  EXPECT_GT(early_rate / late_rate, 1.4);
}

TEST(SyntheticFlowGenerator, MediaNoStartupBurst) {
  SyntheticFlowGenerator gen(model(), 7);
  const SyntheticFlow flow = gen.generate(*find_clip("set1/M-l"));
  double early = 0, late = 0;
  for (const auto& p : flow.packets) {
    if (p.time_s < 10.0) early += p.bytes;
    if (p.time_s >= 15.0 && p.time_s < 25.0) late += p.bytes;
  }
  const double ratio = (early / 10.0) / (late / 10.0);
  EXPECT_NEAR(ratio, 1.0, 0.2);
}

TEST(SyntheticFlowGenerator, Deterministic) {
  SyntheticFlowGenerator a(model(), 42), b(model(), 42);
  const auto clip = *find_clip("set1/R-h");
  const auto fa = a.generate(clip);
  const auto fb = b.generate(clip);
  ASSERT_EQ(fa.packets.size(), fb.packets.size());
  for (std::size_t i = 0; i < fa.packets.size(); ++i) {
    EXPECT_EQ(fa.packets[i].bytes, fb.packets[i].bytes);
    EXPECT_DOUBLE_EQ(fa.packets[i].time_s, fb.packets[i].time_s);
  }
}

TEST(SyntheticValidation, SyntheticMatchesFittedDistributions) {
  SyntheticFlowGenerator gen(model(), 8);
  const SyntheticFlow real_flow = gen.generate(*find_clip("set1/R-h"));
  const auto v = validate_against_model(real_flow, model());
  // RealPlayer flows re-use sizes directly: distributions should agree.
  EXPECT_LT(v.size_ks, 0.15);
  EXPECT_LT(v.interval_ks, 0.20);
  // Mean wire rate sits above the encoding rate: the startup burst
  // compresses the stream (Figure 3 / Section 3.F) and wire sizes carry
  // per-packet header overhead.
  EXPECT_LT(v.rate_relative_error, 0.30);
}

TEST(SyntheticFlow, DerivedSeriesConsistent) {
  SyntheticFlowGenerator gen(model(), 9);
  const SyntheticFlow flow = gen.generate(*find_clip("set1/M-h"));
  EXPECT_EQ(flow.sizes().size(), flow.packets.size());
  // Interarrivals only count group-leading packets.
  std::size_t leaders = 0;
  for (const auto& p : flow.packets) leaders += !p.fragment;
  EXPECT_EQ(flow.interarrivals().size(), leaders - 1);
  EXPECT_GT(flow.mean_rate_kbps(), 0.0);
}

}  // namespace
}  // namespace streamlab
