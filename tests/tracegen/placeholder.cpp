#include <gtest/gtest.h>
TEST(Placeholder_tracegen, Builds) { SUCCEED(); }
