#include "tracegen/model.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

/// One small data set (set 1: 230-second clips) exercises the full pipeline
/// cheaply; cached across tests in this binary.
const StudyResults& small_study() {
  static const StudyResults study = [] {
    StudyConfig config;
    config.seed = 424242;
    return run_study_subset(config, {1});
  }();
  return study;
}

TEST(FlowModel, FitsAllComponents) {
  const FlowModel model = FlowModel::fit(small_study());
  EXPECT_FALSE(model.rtt_ms.empty());
  EXPECT_FALSE(model.real.normalized_sizes.empty());
  EXPECT_FALSE(model.real.normalized_intervals.empty());
  EXPECT_FALSE(model.media.normalized_sizes.empty());
  EXPECT_FALSE(model.media.normalized_intervals.empty());
  EXPECT_EQ(model.real.player, PlayerKind::kRealPlayer);
  EXPECT_EQ(model.media.player, PlayerKind::kMediaPlayer);
}

TEST(FlowModel, NormalizedDistributionsCenterOnOne) {
  const FlowModel model = FlowModel::fit(small_study());
  // Median of a mean-normalised distribution sits near 1.
  EXPECT_NEAR(model.media.normalized_sizes.quantile(0.5), 1.0, 0.15);
  EXPECT_NEAR(model.real.normalized_sizes.quantile(0.5), 1.0, 0.3);
}

TEST(FlowModel, MediaSizesTighterThanReal) {
  // Figure 7's headline: MediaPlayer mass concentrates at 1, RealPlayer
  // spreads over ~0.6-1.8.
  const FlowModel model = FlowModel::fit(small_study());
  const double media_spread =
      model.media.normalized_sizes.quantile(0.95) - model.media.normalized_sizes.quantile(0.05);
  const double real_spread =
      model.real.normalized_sizes.quantile(0.95) - model.real.normalized_sizes.quantile(0.05);
  EXPECT_LT(media_spread, real_spread);
}

TEST(FlowModel, InterpolationClampsOutsideRange) {
  const FlowModel model = FlowModel::fit(small_study());
  // Set 1 rates span ~36..323 Kbps; queries outside clamp to the edges.
  const double lo = model.media.mean_size_at(1.0);
  const double lo_edge = model.media.mean_size_at(49.8);
  EXPECT_GT(lo, 0.0);
  EXPECT_DOUBLE_EQ(lo, lo_edge);
  const double hi = model.media.mean_size_at(10'000.0);
  const double hi_edge = model.media.mean_size_at(323.1);
  EXPECT_DOUBLE_EQ(hi, hi_edge);
}

TEST(FlowModel, FragmentFractionByRateMatchesPaperShape) {
  const FlowModel model = FlowModel::fit(small_study());
  // Set 1: M-l at 49.8 Kbps (no frames over MTU), M-h at 323.1 (fragments).
  EXPECT_LT(model.media.fragment_fraction_at(49.8), 0.05);
  EXPECT_NEAR(model.media.fragment_fraction_at(323.1), 0.66, 0.05);
  // RealPlayer never fragments at any rate.
  EXPECT_DOUBLE_EQ(model.real.fragment_fraction_at(36.0), 0.0);
  EXPECT_DOUBLE_EQ(model.real.fragment_fraction_at(284.0), 0.0);
}

TEST(FlowModel, BufferingRatioByRate) {
  const FlowModel model = FlowModel::fit(small_study());
  // Set 1 low (36 Kbps) bursts near 3x; media stays at 1 (Figure 11).
  EXPECT_GT(model.real.buffering_ratio_at(36.0), 2.4);
  EXPECT_NEAR(model.media.buffering_ratio_at(49.8), 1.0, 0.05);
  EXPECT_NEAR(model.media.buffering_ratio_at(323.1), 1.0, 0.05);
}

TEST(FlowModel, RttSamplesInPathRange) {
  const FlowModel model = FlowModel::fit(small_study());
  // Set 1's path: 12 ms one-way, so RTTs land in the tens of milliseconds.
  const double median = model.rtt_ms.quantile(0.5);
  EXPECT_GT(median, 20.0);
  EXPECT_LT(median, 60.0);
}

TEST(FlowModel, MeanIntervalPositive) {
  const FlowModel model = FlowModel::fit(small_study());
  for (const double kbps : {36.0, 49.8, 284.0, 323.1}) {
    EXPECT_GT(model.real.mean_interval_at(kbps), 0.0);
    EXPECT_GT(model.media.mean_interval_at(kbps), 0.0);
  }
}

}  // namespace
}  // namespace streamlab
