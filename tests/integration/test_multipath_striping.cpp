// Acceptance tests for multipath striping over the detour topology
// (DESIGN.md §16): under an identical schedule of repeated primary-span
// router flaps, the striped session rides out every flap on the surviving
// subflow — zero mirror failovers, strictly lower rebuffer ratio — while the
// spare-only single-path baseline burns a failover per flap. Plus the
// determinism story: bit-identical replays, campaign config digests that
// separate multipath variants, and manifests that are byte-identical serial
// vs 4 workers and heap vs wheel.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>

#include "core/campaign.hpp"
#include "core/turbulence.hpp"
#include "media/catalog.hpp"
#include "sim/audit.hpp"
#include "sim/event_loop.hpp"

namespace streamlab {
namespace {

const ClipSet& study_set() { return table1_catalog()[0]; }

ClipInfo real_clip() { return study_set().pair(RateTier::kLow)->first; }
ClipInfo media_clip() { return study_set().pair(RateTier::kLow)->second; }

FaultEpisode router_down(int router_index, double start_s, double duration_s) {
  FaultEpisode down;
  down.kind = FaultKind::kRouterDown;
  down.router_index = router_index;
  down.start = SimTime::from_seconds(start_s);
  down.duration = Duration::from_seconds(duration_s);
  down.label = "router-down";
  return down;
}

TurbulenceScenarioConfig base_config() {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  // Both subjects get the same NACK repair plane. The striped session can
  // actually use it during a flap (requests and retransmits ride the
  // surviving subflow); the single-path baseline cannot — its only route is
  // the black hole — which is exactly the asymmetry under test.
  cfg.repair_layer.nack = true;
  return cfg;
}

/// The shared flap schedule: the span-[3,4] boundary router dies twice for
/// 10 s each — longer than the 8 s inactivity watchdog, so a single-path
/// client that cannot route around it must fail over every time.
void add_flap_schedule(TurbulenceScenarioConfig& cfg) {
  cfg.episodes.push_back(router_down(3, 25.0, 10.0));
  cfg.episodes.push_back(router_down(3, 45.0, 10.0));
}

/// Striped subject: detour bridges [3,4], the repair plane heals the primary
/// span, and the multipath layer stripes 2:1 across primary and detour. The
/// mirror stays armed only to prove it is never needed.
TurbulenceScenarioConfig multipath_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  cfg.mirror_server = true;
  cfg.multipath.enabled = true;
  add_flap_schedule(cfg);
  return cfg;
}

/// Spare-only baseline: same flaps, no detour to stripe over or reroute
/// onto — just the mirror and the watchdog. Survival means failover churn.
TurbulenceScenarioConfig spare_only_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.repair = RouteRepairConfig{};
  cfg.repair_span_first = 3;
  cfg.repair_span_last = 4;
  cfg.mirror_server = true;
  cfg.recovery.max_play_attempts = 32;  // survive the attempt churn per flap
  add_flap_schedule(cfg);
  return cfg;
}

TEST(MultipathStriping, SurvivesFlapsThatForceTheBaselineToFailOver) {
  audit::Auditor auditor;
  TurbulenceScenarioConfig striped_cfg = multipath_config();
  striped_cfg.auditor = &auditor;
  const auto striped = run_turbulence_clip(media_clip(), striped_cfg);
  const auto baseline = run_turbulence_clip(media_clip(), spare_only_config());

  ASSERT_TRUE(striped.media.has_value());
  ASSERT_TRUE(baseline.media.has_value());
  const auto& mp = *striped.media;
  const auto& sp = *baseline.media;

  // The striped session rides out both flaps in place: no mirror failover,
  // no stream death, clip completes.
  EXPECT_TRUE(mp.completed) << mp.clip.id();
  EXPECT_FALSE(mp.stream_dead);
  EXPECT_FALSE(mp.abandoned);
  EXPECT_EQ(mp.failovers, 0u);
  EXPECT_FALSE(mp.multipath_degraded);
  // Both subflows carried real media: this was a stripe, not a failover.
  EXPECT_GT(mp.primary_packets, 0u);
  EXPECT_GT(mp.detour_packets, 0u);
  EXPECT_GT(mp.primary_goodput_kbps, 0.0);
  EXPECT_GT(mp.detour_goodput_kbps, 0.0);

  // The spare-only baseline can only respond to each flap by failing over;
  // flap 1 burns its single mirror and flap 2 trips the watchdog with no
  // spare left — the stream dies where the stripe rode both flaps out.
  EXPECT_GE(sp.failovers, 1u);
  EXPECT_TRUE(sp.stream_dead);
  EXPECT_FALSE(sp.completed);

  // The headline acceptance: striping strictly beats single-path rebuffer
  // under the identical flap schedule.
  EXPECT_LT(mp.rebuffer_ratio(), sp.rebuffer_ratio())
      << "striped stall " << mp.stall_time.to_seconds() << "s vs baseline "
      << sp.stall_time.to_seconds() << "s";

  // Both flaps applied and cleared, and no invariant tripped.
  ASSERT_EQ(striped.episodes.size(), 2u);
  for (const auto& ep : striped.episodes) {
    EXPECT_TRUE(ep.applied);
    EXPECT_TRUE(ep.cleared);
  }
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();
}

TEST(MultipathStriping, AttributesStallsAndLossPerPath) {
  const auto run = run_turbulence_clip(media_clip(), multipath_config());
  ASSERT_TRUE(run.media.has_value());
  const auto& m = *run.media;
  // The flapped boundary router sits on the *primary* span; the repair plane
  // heals it within the detection window, but whatever loss and stall the
  // flaps do cost must be pinned on the primary subflow, not smeared.
  EXPECT_GE(m.primary_lost, m.detour_lost);
  EXPECT_LE(m.primary_loss_ratio(), 1.0);
  EXPECT_LE(m.detour_loss_ratio(), 1.0);
  // Stall attribution is conserved: every attributed stall names a path.
  EXPECT_LE(m.primary_stalls + m.detour_stalls, m.rebuffer_events + 1u);
  // The join buffer saw cross-path reordering but stayed bounded.
  EXPECT_LE(m.reorder_depth_p95, 256u);
}

TEST(MultipathStriping, ReplaysBitIdentically) {
  auto run_once = [] {
    audit::DeterminismProbe probe;
    TurbulenceScenarioConfig cfg = multipath_config();
    cfg.probe = &probe;
    const auto run = run_turbulence_clip(media_clip(), cfg);
    return std::make_pair(probe.digest(), run);
  };
  const auto [digest_a, run_a] = run_once();
  const auto [digest_b, run_b] = run_once();
  EXPECT_EQ(digest_a, digest_b);
  ASSERT_TRUE(run_a.media && run_b.media);
  EXPECT_EQ(run_a.media->packets_received, run_b.media->packets_received);
  EXPECT_EQ(run_a.media->primary_packets, run_b.media->primary_packets);
  EXPECT_EQ(run_a.media->detour_packets, run_b.media->detour_packets);
  EXPECT_EQ(run_a.media->path_switches, run_b.media->path_switches);
  EXPECT_EQ(run_a.media->stall_time.ns(), run_b.media->stall_time.ns());
}

TEST(MultipathStriping, CampaignDigestSeparatesMultipathVariants) {
  CampaignConfig plain;
  plain.scenario = base_config();
  CampaignConfig striped = plain;
  striped.scenario = multipath_config();
  CampaignConfig reweighted = striped;
  reweighted.scenario.multipath.primary_weight = 3;
  CampaignConfig tolerant = striped;
  tolerant.scenario.multipath.nack_reorder_tolerance = 5;

  const auto d_plain = campaign_config_digest(plain);
  const auto d_striped = campaign_config_digest(striped);
  const auto d_reweighted = campaign_config_digest(reweighted);
  const auto d_tolerant = campaign_config_digest(tolerant);
  EXPECT_NE(d_plain, d_striped);
  EXPECT_NE(d_striped, d_reweighted);
  EXPECT_NE(d_striped, d_tolerant);
  EXPECT_NE(d_reweighted, d_tolerant);
}

std::string temp_manifest(const char* name) {
  std::string path = ::testing::TempDir() + "multipath_" + name + ".ndjson";
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

CampaignConfig multipath_campaign(std::size_t workers, const char* name) {
  CampaignConfig cfg;
  cfg.scenario = multipath_config();
  cfg.clip = real_clip();
  cfg.trials = 4;
  cfg.workers = workers;
  cfg.manifest_path = temp_manifest(name);
  return cfg;
}

TEST(MultipathStriping, ManifestBytesIdenticalSerialVsWorkersAndHeapVsWheel) {
  CampaignConfig serial_cfg = multipath_campaign(1, "serial");
  const CampaignResult serial = run_campaign(serial_cfg);
  ASSERT_EQ(serial.completed, 4u);
  EXPECT_EQ(serial.quarantined, 0u);
  const std::string serial_manifest = slurp(serial_cfg.manifest_path);
  // The new per-path fields actually reached the manifest.
  EXPECT_NE(serial_manifest.find("\"path_switches\""), std::string::npos);
  EXPECT_NE(serial_manifest.find("\"nacks_suppressed\""), std::string::npos);

  CampaignConfig parallel_cfg = multipath_campaign(4, "workers4");
  const CampaignResult parallel = run_campaign(parallel_cfg);
  ASSERT_EQ(parallel.completed, 4u);
  EXPECT_EQ(slurp(parallel_cfg.manifest_path), serial_manifest);
  EXPECT_EQ(parallel.aggregate.path_switches, serial.aggregate.path_switches);
  EXPECT_EQ(parallel.aggregate.nack_suppressed, serial.aggregate.nack_suppressed);

  // Same campaign on the heap scheduler backend: same bytes again.
  const EventLoop::Scheduler saved = EventLoop::default_scheduler();
  EventLoop::set_default_scheduler(EventLoop::Scheduler::kHeap);
  CampaignConfig heap_cfg = multipath_campaign(1, "heap");
  const CampaignResult heap = run_campaign(heap_cfg);
  EventLoop::set_default_scheduler(saved);
  ASSERT_EQ(heap.completed, 4u);
  EXPECT_EQ(slurp(heap_cfg.manifest_path), serial_manifest);
}

}  // namespace
}  // namespace streamlab
