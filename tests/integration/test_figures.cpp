// Tests of the figure builders: each figure's data series has the right
// shape and internal consistency.
#include "core/figures.hpp"

#include <gtest/gtest.h>

#include "study_fixture.hpp"

namespace streamlab {
namespace {

using testutil::clip_result;
using testutil::study;

TEST(Figures, Fig1RttSamplesOnePerPing) {
  const auto rtts = figures::rtt_samples_ms(study());
  // 5 pair runs x 10 pings.
  EXPECT_EQ(rtts.size(), 50u);
  for (const double r : rtts) EXPECT_GT(r, 0.0);
}

TEST(Figures, Fig2HopCountsOnePerRun) {
  const auto hops = figures::hop_counts(study());
  EXPECT_EQ(hops.size(), 5u);
}

TEST(Figures, Fig3PointsAndTrend) {
  const auto points = figures::playback_vs_encoding(study());
  EXPECT_EQ(points.size(), 10u);

  const auto real_fit = figures::playback_trend(study(), PlayerKind::kRealPlayer);
  const auto media_fit = figures::playback_trend(study(), PlayerKind::kMediaPlayer);
  ASSERT_EQ(real_fit.coefficients.size(), 3u);
  ASSERT_EQ(media_fit.coefficients.size(), 3u);
  // The figure's claim in trend form: Real's curve sits above y=x, Media's
  // lies on it.
  for (const double x : {100.0, 300.0, 600.0}) {
    EXPECT_GT(real_fit.eval(x), x);
    EXPECT_NEAR(media_fit.eval(x), x, x * 0.1);
  }
}

TEST(Figures, Fig4ArrivalWindowReindexed) {
  const auto window =
      figures::arrival_window(clip_result("set1/M-h"), Duration::seconds(30),
                              Duration::seconds(1));
  ASSERT_GT(window.size(), 10u);  // ~30 packets/s at 323 Kbps
  EXPECT_EQ(window.front().second, 0u);
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_EQ(window[i].second, window[i - 1].second + 1);
    EXPECT_GE(window[i].first, window[i - 1].first);
    EXPECT_LT(window[i].first, 1.0);
  }
}

TEST(Figures, Fig5OnePointPerClip) {
  const auto points = figures::fragmentation_vs_rate(study());
  EXPECT_EQ(points.size(), 10u);
  for (const auto& p : points) {
    if (p.player == PlayerKind::kRealPlayer) {
      EXPECT_DOUBLE_EQ(p.fragment_percent, 0.0);
    }
    EXPECT_GE(p.fragment_percent, 0.0);
    EXPECT_LE(p.fragment_percent, 100.0);
  }
}

TEST(Figures, Fig6HistogramMassSums) {
  const auto h = figures::packet_size_pdf(clip_result("set1/M-l"));
  double total = 0.0;
  for (const auto& b : h.bins()) total += b.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Figures, Fig7NormalizedSizesMeanOne) {
  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    const auto sizes = figures::normalized_packet_sizes(study(), player);
    ASSERT_GT(sizes.size(), 1000u);
    double sum = 0.0;
    for (const double s : sizes) sum += s;
    // Per-clip normalisation: the pooled mean stays near 1.
    EXPECT_NEAR(sum / static_cast<double>(sizes.size()), 1.0, 0.02);
  }
}

TEST(Figures, Fig9NormalizedIntervalsMeanOne) {
  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    const auto gaps = figures::normalized_interarrivals(study(), player);
    ASSERT_GT(gaps.size(), 500u);
    double sum = 0.0;
    for (const double g : gaps) sum += g;
    EXPECT_NEAR(sum / static_cast<double>(gaps.size()), 1.0, 0.02);
  }
}

TEST(Figures, Fig10TimelineCoversStream) {
  const auto timeline =
      figures::bandwidth_timeline(clip_result("set1/R-l"), Duration::seconds(2));
  ASSERT_GT(timeline.size(), 50u);
  // Windows advance by exactly the window size.
  for (std::size_t i = 1; i < timeline.size(); ++i)
    EXPECT_NEAR(timeline[i].first - timeline[i - 1].first, 2.0, 1e-9);
}

TEST(Figures, Fig11SortedByRate) {
  const auto points = figures::buffering_ratio_vs_rate(study());
  EXPECT_EQ(points.size(), 5u);  // RealPlayer clips only
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].encoding_kbps, points[i - 1].encoding_kbps);
}

TEST(Figures, Fig12BothLayersPresent) {
  const auto series = figures::layer_receipt_series(clip_result("set1/M-h"),
                                                    Duration::seconds(30),
                                                    Duration::seconds(4));
  ASSERT_GT(series.network.size(), 20u);
  ASSERT_GT(series.application.size(), 10u);
  // Application releases are clustered: distinct times far fewer than events.
  std::set<double> app_times;
  for (const auto& [t, _] : series.application) app_times.insert(t);
  EXPECT_LE(app_times.size(), 6u);  // ~1 batch per second over 4 s
  std::set<double> net_times;
  for (const auto& [t, _] : series.network) net_times.insert(t);
  EXPECT_GT(net_times.size(), 30u);  // ~10 groups/s x 3-packet groups
}

TEST(Figures, Fig13TimelineMatchesTrackerSamples) {
  const auto& run = clip_result("set5/R-h");
  // set 5 is not in the subset: empty result must be safe.
  EXPECT_TRUE(figures::framerate_timeline(run).empty());

  const auto timeline = figures::framerate_timeline(clip_result("set1/R-h"));
  EXPECT_EQ(timeline.size(), clip_result("set1/R-h").tracker.samples.size());
}

TEST(Figures, Fig14And15PointsPerClip) {
  EXPECT_EQ(figures::framerate_vs_encoding(study()).size(), 10u);
  EXPECT_EQ(figures::framerate_vs_bandwidth(study()).size(), 10u);
}

TEST(Figures, TierSummariesWithStderr) {
  const auto points = figures::framerate_vs_encoding(study());
  const auto real = figures::summarize_by_tier(points, PlayerKind::kRealPlayer);
  // Subset has low, high and (set 6) very-high tiers.
  ASSERT_EQ(real.size(), 3u);
  EXPECT_EQ(real[0].tier, RateTier::kLow);
  EXPECT_EQ(real[0].count, 2u);   // sets 1 and 6
  EXPECT_EQ(real[2].tier, RateTier::kVeryHigh);
  EXPECT_EQ(real[2].count, 1u);
  // Frame rate rises with tier.
  EXPECT_LT(real[0].mean_fps, real[1].mean_fps);
  // Standard error defined (zero allowed for n=1).
  for (const auto& t : real) EXPECT_GE(t.stderr_fps, 0.0);
}

}  // namespace
}  // namespace streamlab
