// Integration tests of the experiment runner itself: session integrity,
// determinism, and the paired-run methodology.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "study_fixture.hpp"

namespace streamlab {
namespace {

ExperimentConfig quick_config() {
  ExperimentConfig config;
  config.path = path_for_data_set(2, 99);  // 39-second clips
  config.path.loss_probability = 0.0;      // exact accounting below
  config.seed = 99;
  return config;
}

TEST(RunSingleClip, CompletesAndAccounts) {
  const auto clip = *find_clip("set2/M-l");
  const ClipRunResult r = run_single_clip(clip, quick_config());

  EXPECT_EQ(r.clip.id(), "set2/M-l");
  EXPECT_GT(r.flow.size(), 50u);
  EXPECT_GT(r.tracker.frames_rendered, 100u);
  EXPECT_EQ(r.tracker.total_lost, 0u);
  // Every wire packet accounted: the flow holds the data packets plus the
  // PLAY-OK control reply (no fragmentation at this rate).
  EXPECT_EQ(r.flow.size(), r.app_packets.size() + 1);
  EXPECT_GT(r.server_streaming_duration.to_seconds(), 30.0);
}

TEST(RunSingleClip, DeterministicInSeed) {
  const auto clip = *find_clip("set2/R-l");
  const ClipRunResult a = run_single_clip(clip, quick_config());
  const ClipRunResult b = run_single_clip(clip, quick_config());
  ASSERT_EQ(a.flow.size(), b.flow.size());
  for (std::size_t i = 0; i < a.flow.size(); ++i) {
    EXPECT_EQ(a.flow.packets()[i].time, b.flow.packets()[i].time);
    EXPECT_EQ(a.flow.packets()[i].wire_length, b.flow.packets()[i].wire_length);
  }
  EXPECT_EQ(a.tracker.frames_rendered, b.tracker.frames_rendered);
}

TEST(RunSingleClip, DifferentSeedsDiffer) {
  const auto clip = *find_clip("set2/R-l");
  ExperimentConfig c1 = quick_config();
  ExperimentConfig c2 = quick_config();
  c2.seed = 100;
  const ClipRunResult a = run_single_clip(clip, c1);
  const ClipRunResult b = run_single_clip(clip, c2);
  // RealPlayer packet sizes are stochastic: traces must differ.
  ASSERT_GT(a.flow.size(), 10u);
  bool any_diff = a.flow.size() != b.flow.size();
  for (std::size_t i = 0; !any_diff && i < std::min(a.flow.size(), b.flow.size()); ++i)
    any_diff = a.flow.packets()[i].wire_length != b.flow.packets()[i].wire_length;
  EXPECT_TRUE(any_diff);
}

TEST(RunSingleClip, KeepCaptureRetainsRawFrames) {
  ExperimentConfig config = quick_config();
  config.keep_capture = true;
  const ClipRunResult r = run_single_clip(*find_clip("set2/M-l"), config);
  ASSERT_TRUE(r.capture.has_value());
  EXPECT_EQ(r.capture->size(), r.flow.size());
}

TEST(RunClipPair, BothCompleteOverSharedPath) {
  const ClipSet& set2 = table1_catalog()[1];
  const PairRunResult r = run_clip_pair(set2, RateTier::kLow, quick_config());

  EXPECT_EQ(r.real.clip.player, PlayerKind::kRealPlayer);
  EXPECT_EQ(r.media.clip.player, PlayerKind::kMediaPlayer);
  EXPECT_GT(r.real.flow.size(), 50u);
  EXPECT_GT(r.media.flow.size(), 50u);
  EXPECT_GT(r.real.tracker.frames_rendered, 100u);
  EXPECT_GT(r.media.tracker.frames_rendered, 100u);

  // Path characterisation ran: ping RTTs and a complete route.
  EXPECT_EQ(r.ping.received, r.ping.sent);
  EXPECT_TRUE(r.route.reached);
  EXPECT_EQ(r.route.hop_count(), quick_config().path.hop_count + 1);
}

TEST(RunClipPair, FlowsSeparatedByServer) {
  const ClipSet& set2 = table1_catalog()[1];
  const PairRunResult r = run_clip_pair(set2, RateTier::kHigh, quick_config());
  // The two flows are distinct: MediaPlayer's fragments only in its flow.
  EXPECT_GT(r.media.flow.fragment_count(), 0u);
  EXPECT_EQ(r.real.flow.fragment_count(), 0u);
  // Concurrent streams overlap in time.
  const auto& rp = r.real.flow.packets();
  const auto& mp = r.media.flow.packets();
  EXPECT_LT(rp.front().time, mp.back().time);
  EXPECT_LT(mp.front().time, rp.back().time);
}

TEST(RunClipPair, MissingTierReturnsEmpty) {
  const ClipSet& set2 = table1_catalog()[1];  // no very-high tier
  const PairRunResult r = run_clip_pair(set2, RateTier::kVeryHigh, quick_config());
  EXPECT_TRUE(r.real.flow.empty());
  EXPECT_TRUE(r.media.flow.empty());
}

TEST(Study, SubsetRunsExpectedPairs) {
  const auto& s = testutil::study();
  // Sets 1 (2 tiers) + 6 (3 tiers) = 5 pair runs = 10 clips.
  EXPECT_EQ(s.runs.size(), 5u);
  EXPECT_EQ(s.clips().size(), 10u);
  EXPECT_EQ(s.clips_for(PlayerKind::kRealPlayer).size(), 5u);
  EXPECT_EQ(s.clips_for(PlayerKind::kMediaPlayer).size(), 5u);
}

TEST(Study, PathsDifferPerDataSet) {
  const PathConfig p1 = path_for_data_set(1, 1);
  const PathConfig p6 = path_for_data_set(6, 1);
  EXPECT_NE(p1.hop_count, p6.hop_count);
  EXPECT_LT(p1.one_way_propagation, p6.one_way_propagation);
}

}  // namespace
}  // namespace streamlab
