// Shared cached study for integration tests: data sets 1 (230 s clips,
// low+high tiers) and 6 (147 s clips, low+high+very-high tiers) span the
// full encoding-rate range of Table 1 while keeping the suite fast.
#pragma once

#include "core/study.hpp"

namespace streamlab::testutil {

inline const StudyResults& study() {
  static const StudyResults cached = [] {
    StudyConfig config;
    config.seed = 20020501;  // the paper's publication month
    return run_study_subset(config, {1, 6});
  }();
  return cached;
}

inline const ClipRunResult& clip_result(const std::string& id) {
  for (const auto* c : study().clips())
    if (c->clip.id() == id) return *c;
  static const ClipRunResult empty{};
  return empty;
}

}  // namespace streamlab::testutil
