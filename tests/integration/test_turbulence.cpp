// The paper's title concept, quantified: "turbulence" = the size and
// distribution of packets over time. These tests pin the two players'
// relative turbulence with the burstiness and jitter summaries.
#include <gtest/gtest.h>

#include "analysis/burstiness.hpp"
#include "analysis/jitter.hpp"
#include "study_fixture.hpp"

namespace streamlab {
namespace {

using testutil::clip_result;

TEST(Turbulence, MediaSteadyFlowIsNearCbr) {
  // Steady-phase index of dispersion: MediaPlayer's CBR profile shows
  // almost no count variance window to window.
  const auto& m_h = clip_result("set1/M-h");
  const auto s = summarize_burstiness(m_h.flow, Duration::seconds(1));
  EXPECT_LT(s.idc, 0.6);
  EXPECT_LT(s.peak_to_mean, 1.3);
}

TEST(Turbulence, RealFlowMoreDispersedThanMedia) {
  // Compare past the RealPlayer startup burst (skip 45 windows) so the
  // steady phases are compared like for like.
  const auto& real = clip_result("set1/R-h");
  const auto& media = clip_result("set1/M-h");
  const auto r = summarize_burstiness(real.flow, Duration::seconds(1), 45);
  const auto m = summarize_burstiness(media.flow, Duration::seconds(1), 45);
  EXPECT_GT(r.idc, 2.0 * (m.idc + 0.01));
}

TEST(Turbulence, StartupBurstRaisesRealDispersion) {
  const auto& real = clip_result("set1/R-l");
  const auto whole = summarize_burstiness(real.flow, Duration::seconds(2));
  const auto steady = summarize_burstiness(real.flow, Duration::seconds(2), 15);
  // Including the 3x startup burst inflates the dispersion markedly.
  EXPECT_GT(whole.idc, 1.5 * (steady.idc + 0.01));
  EXPECT_GT(whole.peak_to_mean, steady.peak_to_mean);
}

TEST(Turbulence, JitterOrderingMatchesFigure8) {
  // RFC 3550 jitter: the RealPlayer flow's smoothed jitter dwarfs the
  // MediaPlayer flow's (group-leading packets only, the Fig 9 de-noising).
  const auto& real = clip_result("set1/R-l");
  const auto& media = clip_result("set1/M-l");
  const auto rj = summarize_jitter(real.flow, /*groups_only=*/false);
  const auto mj = summarize_jitter(media.flow, /*groups_only=*/true);
  EXPECT_GT(rj.rfc3550.to_millis(), 5.0 * (mj.rfc3550.to_millis() + 0.1));
  EXPECT_GT(rj.cv, 5.0 * (mj.cv + 0.001));
}

TEST(Turbulence, NetworkJitterFloorVisible) {
  // Even the CBR flow shows nonzero jitter: the path's queueing/jitter
  // noise. It stays well under a millisecond on the uncongested paths.
  const auto& media = clip_result("set1/M-h");
  const auto j = summarize_jitter(media.flow, /*groups_only=*/true);
  EXPECT_GT(j.rfc3550.ns(), 0);
  EXPECT_LT(j.rfc3550.to_millis(), 2.0);
}

}  // namespace
}  // namespace streamlab
