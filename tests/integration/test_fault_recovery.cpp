// Acceptance tests for the fault-injection + session-recovery stack: a
// mid-stream link outage shorter than the delay buffer is survived, an
// outage longer than the inactivity window is detected by the watchdog
// (with the event loop draining, not hanging), and both runs replay
// bit-identically under the same seed.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/export.hpp"
#include "core/turbulence.hpp"

namespace streamlab {
namespace {

TurbulenceScenarioConfig scenario_config() {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  return cfg;
}

TurbulenceScenarioConfig short_outage_config() {
  TurbulenceScenarioConfig cfg = scenario_config();
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(30.0);
  flap.duration = Duration::seconds(4);  // well inside the 8 s window
  flap.label = "short-flap";
  cfg.episodes.push_back(flap);
  return cfg;
}

TurbulenceScenarioConfig long_outage_config() {
  TurbulenceScenarioConfig cfg = scenario_config();
  FaultEpisode outage;
  outage.kind = FaultKind::kOutage;
  outage.start = SimTime::from_seconds(30.0);
  outage.duration = Duration::seconds(30);  // far past the 8 s window
  outage.label = "long-outage";
  cfg.episodes.push_back(outage);
  return cfg;
}

const ClipSet& study_set() { return table1_catalog()[0]; }

void expect_identical(const SessionRecoveryMetrics& a, const SessionRecoveryMetrics& b) {
  EXPECT_EQ(a.established, b.established);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.stream_dead, b.stream_dead);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.play_attempts, b.play_attempts);
  ASSERT_EQ(a.time_to_recover.has_value(), b.time_to_recover.has_value());
  if (a.time_to_recover)
    EXPECT_EQ(a.time_to_recover->ns(), b.time_to_recover->ns());
  EXPECT_EQ(a.rebuffer_events, b.rebuffer_events);
  EXPECT_EQ(a.stall_time.ns(), b.stall_time.ns());
  EXPECT_EQ(a.frames_rendered, b.frames_rendered);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.frames_dropped_during_episodes, b.frames_dropped_during_episodes);
  EXPECT_EQ(a.frames_dropped_after_episodes, b.frames_dropped_after_episodes);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.duplicate_packets, b.duplicate_packets);
}

TEST(FaultRecovery, ShortOutageSurvivedWithZeroAbandonedSessions) {
  const auto run =
      run_turbulence_pair(study_set(), RateTier::kLow, short_outage_config());

  ASSERT_TRUE(run.real.has_value());
  ASSERT_TRUE(run.media.has_value());
  EXPECT_EQ(run.sessions_abandoned(), 0);
  for (const auto* m : {&*run.real, &*run.media}) {
    EXPECT_TRUE(m->established);
    EXPECT_FALSE(m->abandoned);
    EXPECT_FALSE(m->stream_dead);
    EXPECT_TRUE(m->completed) << m->clip.id();
    // The flap really bit: packets were lost, and data flowed again after.
    EXPECT_GT(m->packets_lost, 0u);
    ASSERT_TRUE(m->time_to_recover.has_value());
    EXPECT_LT(m->time_to_recover->to_seconds(), 8.0);
  }
  ASSERT_EQ(run.episodes.size(), 1u);
  EXPECT_TRUE(run.episodes[0].applied);
  EXPECT_TRUE(run.episodes[0].cleared);
  EXPECT_GT(run.episodes[0].packets_dropped, 0u);
}

TEST(FaultRecovery, LongOutageTerminatedByWatchdogNotHang) {
  // This test completing at all is the no-hung-event-loop assertion: the
  // runner's final loop.run() only returns once every timer has drained.
  const auto run =
      run_turbulence_pair(study_set(), RateTier::kLow, long_outage_config());

  ASSERT_TRUE(run.real.has_value());
  ASSERT_TRUE(run.media.has_value());
  EXPECT_EQ(run.sessions_abandoned(), 2);
  for (const auto* m : {&*run.real, &*run.media}) {
    EXPECT_TRUE(m->established);       // the handshake had long succeeded
    EXPECT_TRUE(m->stream_dead);       // ...then the watchdog declared death
    EXPECT_FALSE(m->abandoned);        // not a handshake failure
    EXPECT_FALSE(m->completed);
    EXPECT_TRUE(m->session_failed());
    EXPECT_GT(m->frames_dropped, 0u);
  }
}

TEST(FaultRecovery, DeterministicAcrossRunsWithSameSeed) {
  const auto short_a =
      run_turbulence_pair(study_set(), RateTier::kLow, short_outage_config());
  const auto short_b =
      run_turbulence_pair(study_set(), RateTier::kLow, short_outage_config());
  ASSERT_TRUE(short_a.real && short_b.real && short_a.media && short_b.media);
  expect_identical(*short_a.real, *short_b.real);
  expect_identical(*short_a.media, *short_b.media);
  ASSERT_EQ(short_a.episodes.size(), short_b.episodes.size());
  for (std::size_t i = 0; i < short_a.episodes.size(); ++i)
    EXPECT_EQ(short_a.episodes[i].packets_dropped, short_b.episodes[i].packets_dropped);

  const auto long_a =
      run_turbulence_pair(study_set(), RateTier::kLow, long_outage_config());
  const auto long_b =
      run_turbulence_pair(study_set(), RateTier::kLow, long_outage_config());
  ASSERT_TRUE(long_a.real && long_b.real && long_a.media && long_b.media);
  expect_identical(*long_a.real, *long_b.real);
  expect_identical(*long_a.media, *long_b.media);
}

TEST(FaultRecovery, CsvExportCarriesScenarioRows) {
  std::vector<std::pair<std::string, TurbulenceRunResult>> runs;
  runs.emplace_back("short-outage", run_turbulence_pair(study_set(), RateTier::kLow,
                                                        short_outage_config()));
  const std::string csv = turbulence_csv(runs);
  EXPECT_NE(csv.find("scenario,clip_id,player"), std::string::npos);
  EXPECT_NE(csv.find("short-outage"), std::string::npos);
  const std::string episodes = turbulence_episodes_csv(runs);
  EXPECT_NE(episodes.find("short-flap"), std::string::npos);
}

}  // namespace
}  // namespace streamlab
