// Acceptance tests for the self-healing network layer (DESIGN.md §11): a
// mid-stream router failure on a path with a detour is repaired by the
// control plane (reroute within detection delay + hold-down, bounded
// rebuffer, no abort); the same failure without a detour triggers an
// ICMP/watchdog-driven failover to a mirror server that resumes at the
// current media position — and both stories replay bit-identically, with
// zero invariant violations.
#include <gtest/gtest.h>

#include <utility>

#include "core/campaign.hpp"
#include "core/turbulence.hpp"
#include "media/catalog.hpp"
#include "sim/audit.hpp"

namespace streamlab {
namespace {

const ClipSet& study_set() { return table1_catalog()[0]; }

/// Low-tier RealPlayer clip: the 3x startup burst keeps it buffered well
/// ahead of playout, the interesting subject for "completes without abort".
ClipInfo real_clip() { return study_set().pair(RateTier::kLow)->first; }

/// Low-tier MediaPlayer clip: near-CBR streaming drains its buffer inside
/// an outage, the interesting subject for stall attribution.
ClipInfo media_clip() { return study_set().pair(RateTier::kLow)->second; }

TurbulenceScenarioConfig base_config() {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  return cfg;
}

FaultEpisode router_down(int router_index, double start_s, double duration_s) {
  FaultEpisode down;
  down.kind = FaultKind::kRouterDown;
  down.router_index = router_index;
  down.start = SimTime::from_seconds(start_s);
  down.duration = Duration::seconds(static_cast<std::int64_t>(duration_s));
  down.label = "router-down";
  return down;
}

/// Router 3 dies mid-stream; a detour bridges span [3,4] and the repair
/// plane reroutes onto it.
TurbulenceScenarioConfig reroute_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  cfg.mirror_server = true;  // dormant backstop; the detour should win
  cfg.episodes.push_back(router_down(3, 30.0, 10.0));
  return cfg;
}

/// The same failure with no detour: the withdraw turns the black hole into
/// Destination Unreachable and the client fails over to the mirror.
TurbulenceScenarioConfig failover_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.repair = RouteRepairConfig{};
  cfg.repair_span_first = 3;
  cfg.repair_span_last = 4;
  cfg.mirror_server = true;
  cfg.recovery.max_play_attempts = 8;
  cfg.episodes.push_back(router_down(3, 30.0, 20.0));
  return cfg;
}

TEST(SelfHealing, RouterDownWithDetourReroutesAndCompletes) {
  audit::Auditor auditor;
  TurbulenceScenarioConfig cfg = reroute_config();
  cfg.auditor = &auditor;
  const auto run = run_turbulence_clip(real_clip(), cfg);

  // The repair plane withdrew the span and converged back.
  EXPECT_GE(run.reroutes, 1u);
  EXPECT_GE(run.route_restores, 1u);
  ASSERT_TRUE(run.real.has_value());
  const auto& m = *run.real;
  EXPECT_TRUE(m.completed) << m.clip.id();
  EXPECT_FALSE(m.abandoned);
  EXPECT_FALSE(m.stream_dead);
  // The detour won: the mirror stayed dormant.
  EXPECT_EQ(m.failovers, 0u);
  // Bounded rebuffer: only the media in flight during the ~300 ms detection
  // window is lost (each gap waits at most max_stall), nothing like the
  // full 10 s black hole the outage would otherwise be.
  EXPECT_LT(m.stall_time.to_seconds(), 30.0);
  EXPECT_LE(m.stall_during_router_down, m.stall_time);
  // The episode really applied and cleared.
  ASSERT_EQ(run.episodes.size(), 1u);
  EXPECT_TRUE(run.episodes[0].applied);
  EXPECT_TRUE(run.episodes[0].cleared);
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();

  // Contrast: the identical failure with the healing layer stripped out
  // kills the stream — the detour/repair pair is load-bearing.
  TurbulenceScenarioConfig broken = reroute_config();
  broken.path.detour.reset();
  broken.repair.reset();
  broken.mirror_server = false;
  const auto dead = run_turbulence_clip(real_clip(), broken);
  ASSERT_TRUE(dead.real.has_value());
  EXPECT_TRUE(dead.real->stream_dead);
  EXPECT_FALSE(dead.real->completed);
}

TEST(SelfHealing, RouterDownWithoutDetourFailsOverToMirror) {
  audit::Auditor auditor;
  TurbulenceScenarioConfig cfg = failover_config();
  cfg.auditor = &auditor;
  const auto run = run_turbulence_clip(media_clip(), cfg);

  ASSERT_TRUE(run.media.has_value());
  const auto& m = *run.media;
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_TRUE(m.completed) << m.clip.id();
  EXPECT_FALSE(m.abandoned);
  EXPECT_FALSE(m.stream_dead);
  // The failover resumed mid-clip, not from byte zero, and the withdrawn
  // boundary answered probes with Destination Unreachable along the way.
  EXPECT_GT(m.resume_offset, 0u);
  EXPECT_GT(m.icmp_unreachables, 0u);
  // Withdraw on failure, restore after the router returned.
  EXPECT_EQ(run.reroutes, 1u);
  EXPECT_EQ(run.route_restores, 1u);
  // Stall attribution: the black-holed window cost real rebuffer time.
  EXPECT_GT(m.stall_during_router_down, Duration::zero());
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();
}

TEST(SelfHealing, BothChaosScenariosReplayIdentically) {
  using ConfigFn = TurbulenceScenarioConfig (*)();
  for (ConfigFn make : {ConfigFn{&reroute_config}, ConfigFn{&failover_config}}) {
    auto run_once = [make] {
      audit::DeterminismProbe probe;
      TurbulenceScenarioConfig cfg = make();
      cfg.probe = &probe;
      const auto run = run_turbulence_clip(media_clip(), cfg);
      return std::make_pair(probe.digest(), run);
    };
    const auto [digest_a, run_a] = run_once();
    const auto [digest_b, run_b] = run_once();
    EXPECT_EQ(digest_a, digest_b);
    EXPECT_EQ(run_a.reroutes, run_b.reroutes);
    EXPECT_EQ(run_a.route_restores, run_b.route_restores);
    ASSERT_TRUE(run_a.media && run_b.media);
    EXPECT_EQ(run_a.media->failovers, run_b.media->failovers);
    EXPECT_EQ(run_a.media->packets_received, run_b.media->packets_received);
    EXPECT_EQ(run_a.media->stall_time.ns(), run_b.media->stall_time.ns());
    EXPECT_EQ(run_a.media->frames_rendered, run_b.media->frames_rendered);
  }
}

TEST(SelfHealing, CampaignDigestSeparatesChaosFromBaseline) {
  // A resume manifest written under the chaos scenario must not be accepted
  // by a baseline campaign (and vice versa): the new topology/repair/mirror
  // fields all feed the config digest.
  CampaignConfig baseline;
  baseline.scenario = base_config();
  CampaignConfig chaos = baseline;
  chaos.scenario = reroute_config();
  CampaignConfig chaos_failover = baseline;
  chaos_failover.scenario = failover_config();

  const auto d0 = campaign_config_digest(baseline);
  const auto d1 = campaign_config_digest(chaos);
  const auto d2 = campaign_config_digest(chaos_failover);
  EXPECT_NE(d0, d1);
  EXPECT_NE(d0, d2);
  EXPECT_NE(d1, d2);
}

}  // namespace
}  // namespace streamlab
