// The paper's findings, asserted end-to-end: every test cites the section
// or figure whose *shape* claim it checks. Absolute values come from our
// simulator; who-wins, by-what-factor and where-crossovers-fall are the
// assertions.
#include <gtest/gtest.h>

#include "analysis/histogram.hpp"
#include "analysis/stats.hpp"
#include "study_fixture.hpp"

namespace streamlab {
namespace {

using testutil::clip_result;
using testutil::study;

// ---- Section 3.A / Figures 1-2: network conditions -----------------------

TEST(PaperClaims, Fig1_RttRange) {
  std::vector<double> rtts;
  for (const auto& run : study().runs)
    for (const auto rtt : run.ping.rtts) rtts.push_back(rtt.to_millis());
  ASSERT_FALSE(rtts.empty());
  const auto s = SummaryStats::from(rtts);
  // "median round-trip time of 40 ms and a maximum of 160 ms" — our subset
  // spans the near path (set 1) and the far tail (set 6).
  EXPECT_GT(s.min, 10.0);
  EXPECT_LT(s.max, 180.0);
  EXPECT_GT(s.max, 100.0);  // the distant set-6 path is visible
}

TEST(PaperClaims, Fig2_HopCounts) {
  for (const auto& run : study().runs) {
    ASSERT_TRUE(run.route.reached);
    // "most of the servers were between 15 and 20 hops away" (10-25 range).
    EXPECT_GE(run.route.hop_count(), 10);
    EXPECT_LE(run.route.hop_count(), 26);
  }
}

TEST(PaperClaims, NearZeroLoss) {
  for (const auto& run : study().runs)
    EXPECT_LT(run.ping.loss_fraction(), 0.05);  // "average loss near 0%"
}

// ---- Section 3.B / Figure 3: playback vs encoding rate --------------------

TEST(PaperClaims, Fig3_MediaPlaysAtEncodingRate) {
  for (const auto* c : study().clips_for(PlayerKind::kMediaPlayer)) {
    const double encoding = c->clip.encoded_rate.to_kbps();
    const double playback = c->tracker.average_playback_bandwidth.to_kbps();
    EXPECT_NEAR(playback, encoding, encoding * 0.08) << c->clip.id();
  }
}

TEST(PaperClaims, Fig3_RealPlaysAboveEncodingRate) {
  for (const auto* c : study().clips_for(PlayerKind::kRealPlayer)) {
    const double encoding = c->clip.encoded_rate.to_kbps();
    const double playback = c->tracker.average_playback_bandwidth.to_kbps();
    EXPECT_GT(playback, encoding) << c->clip.id();
  }
}

// ---- Section 3.C / Figures 4-5: IP fragmentation ---------------------------

TEST(PaperClaims, Fig5_NoFragmentationBelow100Kbps) {
  for (const auto* c : study().clips()) {
    if (c->clip.encoded_rate.to_kbps() >= 100.0) continue;
    EXPECT_DOUBLE_EQ(c->flow.fragment_fraction(), 0.0) << c->clip.id();
  }
}

TEST(PaperClaims, Fig5_About66PercentAt300Kbps) {
  // "66% of packets are IP fragments for clips encoded at 300 Kbps".
  const auto& m_h = clip_result("set1/M-h");  // 323.1 Kbps
  EXPECT_NEAR(m_h.flow.fragment_fraction(), 0.66, 0.03);
}

TEST(PaperClaims, Fig5_Above80PercentAtVeryHigh) {
  // "high bandwidth MediaPlayer traffic can have up to 80% fragmentation".
  const auto& m_v = clip_result("set6/M-v");  // 731.3 Kbps
  EXPECT_GT(m_v.flow.fragment_fraction(), 0.78);
}

TEST(PaperClaims, Fig5_RealPlayerNeverFragments) {
  // "IP fragments were not observed in any of the RealPlayer traces".
  for (const auto* c : study().clips_for(PlayerKind::kRealPlayer))
    EXPECT_EQ(c->flow.fragment_count(), 0u) << c->clip.id();
}

TEST(PaperClaims, Fig4_FragmentGroupWirePattern) {
  // "All the packets in one group except the last IP fragment have the same
  // size, which is 1514 bytes".
  const auto& m_h = clip_result("set1/M-h");
  const auto& packets = m_h.flow.packets();
  ASSERT_GT(packets.size(), 100u);
  // The study's paths carry ~0.05% random loss; a dropped fragment makes
  // its group end on a full-size packet, so allow a handful of exceptions.
  std::size_t violations = 0, checked = 0;
  for (std::size_t i = 0; i + 1 < packets.size(); ++i) {
    const bool last_of_group = packets[i + 1].first_of_group;
    if (!last_of_group) {
      ++checked;
      violations += packets[i].wire_length != 1514u;
    }
  }
  ASSERT_GT(checked, 1000u);
  EXPECT_LE(violations, checked / 200);
}

// ---- Section 3.D / Figures 6-7: packet sizes -------------------------------

TEST(PaperClaims, Fig6_MediaLowRatePacketsIn800To1000) {
  // "Over 80% of MediaPlayer packets have a size between 800 and 1000
  // bytes" (data set 1, low).
  Histogram h(50.0);
  h.add_all(clip_result("set1/M-l").flow.packet_sizes());
  EXPECT_GT(h.mass_in(800.0, 1000.0), 0.8);
}

TEST(PaperClaims, Fig6_RealSizesSpreadWithoutSinglePeak) {
  Histogram h(50.0);
  h.add_all(clip_result("set1/R-l").flow.packet_sizes());
  // No bin dominates (MediaPlayer's mode holds most of the mass instead).
  EXPECT_LT(h.mode().probability, 0.35);
  Histogram hm(50.0);
  hm.add_all(clip_result("set1/M-l").flow.packet_sizes());
  EXPECT_GT(hm.mode().probability, 2.0 * h.mode().probability);
}

TEST(PaperClaims, Fig7_NormalizedSizesMediaConcentratedRealSpread) {
  std::vector<double> media, real;
  for (const auto* c : study().clips_for(PlayerKind::kMediaPlayer)) {
    const auto n = normalize_by_mean(c->flow.packet_sizes());
    media.insert(media.end(), n.begin(), n.end());
  }
  for (const auto* c : study().clips_for(PlayerKind::kRealPlayer)) {
    const auto n = normalize_by_mean(c->flow.packet_sizes());
    real.insert(real.end(), n.begin(), n.end());
  }
  // "sizes of RealPlayer packets are spread from 0.6 to 1.8 of the mean".
  const double real_spread = quantile(real, 0.98) - quantile(real, 0.02);
  EXPECT_GT(real_spread, 0.7);
  EXPECT_LT(quantile(real, 0.01), 0.75);
  EXPECT_GT(quantile(real, 0.99), 1.5);
}

// ---- Section 3.E / Figures 8-9: interarrival times -------------------------

TEST(PaperClaims, Fig9_MediaInterarrivalsCbrSteep) {
  // "the CDF for MediaPlayer is quite steep around a normalized interarrival
  // time of 1" (group-leading packets only).
  std::vector<double> media;
  for (const auto* c : study().clips_for(PlayerKind::kMediaPlayer)) {
    const auto n = normalize_by_mean(c->flow.interarrivals(/*groups_only=*/true));
    media.insert(media.end(), n.begin(), n.end());
  }
  ASSERT_GT(media.size(), 500u);
  std::size_t near_one = 0;
  for (const double v : media) near_one += (v > 0.85 && v < 1.15);
  EXPECT_GT(static_cast<double>(near_one) / static_cast<double>(media.size()), 0.9);
}

TEST(PaperClaims, Fig9_RealInterarrivalsGradual) {
  std::vector<double> real;
  for (const auto* c : study().clips_for(PlayerKind::kRealPlayer)) {
    const auto n = normalize_by_mean(c->flow.interarrivals());
    real.insert(real.end(), n.begin(), n.end());
  }
  ASSERT_GT(real.size(), 500u);
  // A gradual slope: substantial mass well away from 1 on both sides.
  std::size_t below = 0, above = 0;
  for (const double v : real) {
    below += v < 0.7;
    above += v > 1.3;
  }
  EXPECT_GT(static_cast<double>(below) / static_cast<double>(real.size()), 0.10);
  EXPECT_GT(static_cast<double>(above) / static_cast<double>(real.size()), 0.10);
}

// ---- Section 3.F / Figures 10-11: buffering --------------------------------

TEST(PaperClaims, Fig11_RealBufferingRatioNear3AtLowRates) {
  const auto& r_l = clip_result("set1/R-l");  // 36 Kbps
  ASSERT_TRUE(r_l.buffering.has_buffering_phase);
  EXPECT_NEAR(r_l.buffering.ratio(), 3.0, 0.4);
}

TEST(PaperClaims, Fig11_RealBufferingRatioNear1AtVeryHigh) {
  const auto& r_v = clip_result("set6/R-v");  // 636.9 Kbps
  EXPECT_LT(r_v.buffering.ratio(), 1.4);
}

TEST(PaperClaims, Fig11_RatioDecreasesWithEncodingRate) {
  // Collect (rate, ratio) for RealPlayer and check the ends of the ordering.
  std::vector<std::pair<double, double>> points;
  for (const auto* c : study().clips_for(PlayerKind::kRealPlayer))
    points.emplace_back(c->clip.encoded_rate.to_kbps(), c->buffering.ratio());
  std::sort(points.begin(), points.end());
  ASSERT_GE(points.size(), 3u);
  EXPECT_GT(points.front().second, points.back().second + 0.5);
}

TEST(PaperClaims, Fig10_MediaBuffersAtPlayoutRate) {
  for (const auto* c : study().clips_for(PlayerKind::kMediaPlayer)) {
    EXPECT_FALSE(c->buffering.has_buffering_phase) << c->clip.id();
    EXPECT_DOUBLE_EQ(c->buffering.ratio(), 1.0) << c->clip.id();
  }
}

TEST(PaperClaims, Fig10_RealStreamingDurationShorter) {
  // "The streaming duration is shorter for RealPlayer than for MediaPlayer
  // since RealPlayer transmits more of the clip during buffering."
  for (const auto& run : study().runs) {
    // The gap is (rho - 1) x burst: tens of seconds at low/high tiers but
    // only ~2 s at the 637 Kbps clip where rho ~ 1 (Figure 11).
    const double margin = run.real.clip.tier == RateTier::kVeryHigh ? 0.0 : 5.0;
    EXPECT_LT(run.real.server_streaming_duration.to_seconds(),
              run.media.server_streaming_duration.to_seconds() - margin)
        << run.real.clip.id();
  }
}

TEST(PaperClaims, Fig10_RealBurstLasts20to40Seconds) {
  // Section IV: 20 s (low rate) to 40 s (high rate) of elevated rate.
  const auto& r_l = clip_result("set1/R-l");
  ASSERT_TRUE(r_l.buffering.has_buffering_phase);
  EXPECT_NEAR(r_l.buffering.buffering_duration.to_seconds(), 20.0, 6.0);
  const auto& r_h = clip_result("set1/R-h");
  ASSERT_TRUE(r_h.buffering.has_buffering_phase);
  EXPECT_NEAR(r_h.buffering.buffering_duration.to_seconds(), 40.0, 8.0);
}

// ---- Section 3.G / Figure 12: application-layer batching -------------------

TEST(PaperClaims, Fig12_NetworkSteadyAppBatched) {
  const auto& m_h = clip_result("set1/M-h");
  ASSERT_GT(m_h.app_packets.size(), 100u);

  // Network layer: packet groups arrive every ~100 ms.
  std::vector<double> net_gaps;
  for (std::size_t i = 1; i < m_h.app_packets.size(); ++i) {
    const double gap = (m_h.app_packets[i].network_time -
                        m_h.app_packets[i - 1].network_time)
                           .to_seconds();
    if (gap > 1e-6) net_gaps.push_back(gap);
  }
  ASSERT_FALSE(net_gaps.empty());
  EXPECT_NEAR(quantile(net_gaps, 0.5), 0.1, 0.02);

  // Application layer: releases once per second in batches of ~10.
  std::map<std::int64_t, int> batches;
  for (const auto& ev : m_h.app_packets) ++batches[ev.app_time.ns()];
  std::vector<double> batch_sizes;
  for (const auto& [when, count] : batches) batch_sizes.push_back(count);
  EXPECT_NEAR(quantile(batch_sizes, 0.5), 10.0, 1.0);
}

// ---- Section 3.H / Figures 13-15: frame rates ------------------------------

TEST(PaperClaims, Fig13_HighRateClipsReachFullMotion) {
  // "The two high data rate clips ... both reach 25 frames per second."
  EXPECT_GT(clip_result("set1/R-h").tracker.average_frame_rate, 22.0);
  EXPECT_GT(clip_result("set1/M-h").tracker.average_frame_rate, 22.0);
}

TEST(PaperClaims, Fig13_MediaLowRateAround13fps) {
  // "The lowest frame rate is for the low encoded MediaPlayer clip, which
  // plays at 13 frames per second" (set 5's 39 Kbps clip; set 1's 49.8 Kbps
  // clip sits slightly higher on the same curve).
  const double fps = clip_result("set1/M-l").tracker.average_frame_rate;
  EXPECT_GT(fps, 11.0);
  EXPECT_LT(fps, 17.0);
}

TEST(PaperClaims, Fig14_RealBeatsMediaAtLowRates) {
  for (const auto& run : study().runs) {
    if (run.real.clip.tier != RateTier::kLow) continue;
    EXPECT_GT(run.real.tracker.average_frame_rate,
              run.media.tracker.average_frame_rate + 2.0)
        << run.real.clip.id();
  }
}

TEST(PaperClaims, Fig14_SimilarAtHighRates) {
  for (const auto& run : study().runs) {
    if (run.real.clip.tier == RateTier::kLow) continue;
    EXPECT_NEAR(run.real.tracker.average_frame_rate,
                run.media.tracker.average_frame_rate, 5.0)
        << run.real.clip.id();
  }
}

TEST(PaperClaims, QualityHighOnUncongestedPaths) {
  // The study ran under typical (uncongested) conditions; reception quality
  // should be near-perfect for every clip.
  for (const auto* c : study().clips())
    EXPECT_GT(c->tracker.reception_quality(), 97.0) << c->clip.id();
}

}  // namespace
}  // namespace streamlab
