#include <gtest/gtest.h>
TEST(Placeholder_integration, Builds) { SUCCEED(); }
