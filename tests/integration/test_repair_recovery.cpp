// Acceptance tests for the loss repair layer under scripted turbulence: a
// Gilbert–Elliott burst epoch with >=5% steady-state loss must see the
// FEC+NACK stack recover at least 80% of the lost application packets
// (while the repair-disabled baseline reports zero recovered), the repair
// metrics must stay internally consistent, repaired runs must replay
// deterministically, and the recovery columns must surface in the
// turbulence CSV export.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/export.hpp"
#include "core/turbulence.hpp"

namespace streamlab {
namespace {

const ClipSet& study_set() { return table1_catalog()[0]; }

/// The lab's burst-loss scenario: a Gilbert–Elliott epoch with
/// pi_bad ~= 16.7%, mean loss ~= 10% and mean burst length 4, spanning the
/// whole session after startup so the steady-state loss rate (not a
/// clip-length-diluted average) is what the repair layer has to beat.
TurbulenceScenarioConfig burst_loss_config() {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  FaultEpisode burst;
  burst.kind = FaultKind::kBurstLoss;
  burst.start = SimTime::from_seconds(10.0);
  burst.duration = Duration::seconds(600);
  burst.gilbert = GilbertElliottConfig{0.05, 0.25, 0.0, 0.6};
  burst.label = "burst-loss";
  cfg.episodes.push_back(burst);
  return cfg;
}

RepairLayerConfig fec_nack_repair() {
  RepairLayerConfig r;
  r.fec_k = 8;
  // Interleave at the burst regime's mean burst length so a whole burst
  // lands one-loss-per-row.
  r.fec_stride = 4;
  r.nack = true;
  return r;
}

void expect_repair_metrics_consistent(const SessionRecoveryMetrics& m) {
  EXPECT_EQ(m.packets_recovered, m.recovered_by_fec + m.recovered_by_retx);
  EXPECT_LE(m.packets_recovered, m.packets_received);
  EXPECT_LE(m.repair_wire_bytes, m.total_wire_bytes);
  EXPECT_GE(m.recovery_ratio(), 0.0);
  EXPECT_LE(m.recovery_ratio(), 1.0);
  EXPECT_GE(m.repair_latency_p95_ms, m.repair_latency_mean_ms * 0.5);
}

TEST(RepairRecovery, FecNackRecoversAtLeast80PctUnderBurstLoss) {
  const auto pair = *study_set().pair(RateTier::kLow);
  for (const ClipInfo* clip : {&pair.first, &pair.second}) {
    TurbulenceScenarioConfig cfg = burst_loss_config();
    cfg.repair_layer = fec_nack_repair();
    const auto run = run_turbulence_clip(*clip, cfg);
    const auto& m = clip->player == PlayerKind::kMediaPlayer ? run.media : run.real;
    ASSERT_TRUE(m.has_value());
    expect_repair_metrics_consistent(*m);

    // The episode must have produced a meaningful loss epoch to repair:
    // >= 5% of the session's application packets went missing on the wire.
    const std::uint64_t wire_lost = m->packets_recovered + m->packets_lost;
    const std::uint64_t sent = m->packets_received + m->packets_lost;
    ASSERT_GT(sent, 0u);
    EXPECT_GE(static_cast<double>(wire_lost) / static_cast<double>(sent), 0.05)
        << clip->id();

    // The acceptance bar: at least 80% of the lost packets repaired.
    EXPECT_GT(m->packets_recovered, 0u) << clip->id();
    EXPECT_GE(m->recovery_ratio(), 0.80) << clip->id();
    EXPECT_GT(m->recovered_by_fec, 0u) << clip->id();
    EXPECT_GT(m->parity_packets, 0u) << clip->id();
    // Repair pays bandwidth: overhead is visible but bounded (parity is one
    // packet per k=8 plus retransmissions through the 25% pacer).
    EXPECT_GT(m->repair_overhead(), 0.0) << clip->id();
    EXPECT_LT(m->repair_overhead(), 0.5) << clip->id();
  }
}

TEST(RepairRecovery, DisabledRepairReportsZeroRecovered) {
  const auto pair = *study_set().pair(RateTier::kLow);
  const auto run = run_turbulence_clip(pair.second, burst_loss_config());
  ASSERT_TRUE(run.media.has_value());
  const auto& m = *run.media;
  EXPECT_EQ(m.packets_recovered, 0u);
  EXPECT_EQ(m.recovered_by_fec, 0u);
  EXPECT_EQ(m.recovered_by_retx, 0u);
  EXPECT_EQ(m.nacks_sent, 0u);
  EXPECT_EQ(m.parity_packets, 0u);
  EXPECT_EQ(m.repair_wire_bytes, 0u);
  EXPECT_EQ(m.recovery_ratio(), 0.0);
  EXPECT_EQ(m.repair_overhead(), 0.0);
  // The same loss epoch hits the unrepaired baseline undiminished.
  EXPECT_GT(m.packets_lost, 0u);
}

TEST(RepairRecovery, RepairReducesResidualLossVersusBaseline) {
  const auto pair = *study_set().pair(RateTier::kLow);
  const auto baseline = run_turbulence_clip(pair.second, burst_loss_config());
  TurbulenceScenarioConfig repaired_cfg = burst_loss_config();
  repaired_cfg.repair_layer = fec_nack_repair();
  const auto repaired = run_turbulence_clip(pair.second, repaired_cfg);
  ASSERT_TRUE(baseline.media && repaired.media);
  // Repair traffic perturbs the loss chain's draw sequence, so the exact
  // loss counts differ — but the residual loss must drop decisively.
  EXPECT_LT(repaired.media->packets_lost, baseline.media->packets_lost / 2);
}

TEST(RepairRecovery, RepairedRunReplaysDeterministically) {
  const auto pair = *study_set().pair(RateTier::kLow);
  TurbulenceScenarioConfig cfg = burst_loss_config();
  cfg.repair_layer = fec_nack_repair();
  const auto a = run_turbulence_clip(pair.second, cfg);
  const auto b = run_turbulence_clip(pair.second, cfg);
  ASSERT_TRUE(a.media && b.media);
  EXPECT_EQ(a.media->packets_received, b.media->packets_received);
  EXPECT_EQ(a.media->packets_lost, b.media->packets_lost);
  EXPECT_EQ(a.media->packets_recovered, b.media->packets_recovered);
  EXPECT_EQ(a.media->recovered_by_fec, b.media->recovered_by_fec);
  EXPECT_EQ(a.media->recovered_by_retx, b.media->recovered_by_retx);
  EXPECT_EQ(a.media->nacks_sent, b.media->nacks_sent);
  EXPECT_EQ(a.media->parity_packets, b.media->parity_packets);
  EXPECT_EQ(a.media->repair_wire_bytes, b.media->repair_wire_bytes);
  EXPECT_EQ(a.media->repair_latency_mean_ms, b.media->repair_latency_mean_ms);
  EXPECT_EQ(a.media->frames_rendered, b.media->frames_rendered);
}

TEST(RepairRecovery, RepairSurvivesRouterDownChaos) {
  // The PR 5 chaos scenario with the repair layer on top: router 3 dies for
  // 10 s on a path with a detour. Repair must not destabilise the
  // self-healing machinery, and the metrics must stay consistent.
  const auto pair = *study_set().pair(RateTier::kLow);
  TurbulenceScenarioConfig cfg = burst_loss_config();
  cfg.episodes.clear();
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  FaultEpisode down;
  down.kind = FaultKind::kRouterDown;
  down.router_index = 3;
  down.start = SimTime::from_seconds(30.0);
  down.duration = Duration::seconds(10);
  down.label = "router-down";
  cfg.episodes.push_back(down);
  cfg.repair_layer = fec_nack_repair();

  const auto run = run_turbulence_clip(pair.second, cfg);
  ASSERT_TRUE(run.media.has_value());
  expect_repair_metrics_consistent(*run.media);
  EXPECT_FALSE(run.media->session_failed());
  EXPECT_GT(run.reroutes, 0u);
}

TEST(RepairRecovery, TurbulenceCsvCarriesRecoveryColumns) {
  const auto pair = *study_set().pair(RateTier::kLow);
  TurbulenceScenarioConfig cfg = burst_loss_config();
  cfg.repair_layer = fec_nack_repair();
  std::vector<std::pair<std::string, TurbulenceRunResult>> runs;
  runs.emplace_back("burst-loss", run_turbulence_clip(pair.second, cfg));
  const std::string csv = turbulence_csv(runs);
  EXPECT_NE(csv.find(",recovered,recovery_ratio,repair_latency_mean_ms,repair_overhead"),
            std::string::npos);
  // The data row reports a nonzero recovered count and a ratio above the
  // acceptance bar — spot-check by recomputing from the run itself.
  ASSERT_TRUE(runs[0].second.media.has_value());
  const auto& m = *runs[0].second.media;
  EXPECT_NE(csv.find("," + std::to_string(m.packets_recovered) + ","),
            std::string::npos);
  EXPECT_GT(m.packets_recovered, 0u);
}

}  // namespace
}  // namespace streamlab
