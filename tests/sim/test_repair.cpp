#include "sim/repair.hpp"

#include <gtest/gtest.h>

#include "sim/audit.hpp"
#include "sim/network.hpp"

namespace streamlab {
namespace {

PathConfig detour_path() {
  PathConfig cfg;
  cfg.hop_count = 8;
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = 0.0;
  cfg.detour = DetourConfig{};  // span [3,4], 2 detour routers, metric 10
  return cfg;
}

/// Samples `repair.rerouted()` at an absolute sim time.
void sample_at(Network& net, RouteRepair& repair, double seconds, bool& out) {
  net.loop().schedule_at(SimTime::from_seconds(seconds),
                         [&repair, &out] { out = repair.rerouted(); });
}

void offline_at(Network& net, int router, double seconds, bool offline) {
  net.loop().schedule_at(SimTime::from_seconds(seconds),
                         [&net, router, offline] { net.router(router).set_offline(offline); });
}

TEST(RouteRepair, WithdrawsAfterDetectionDelay) {
  Network net(detour_path());
  net.add_server("srv");
  RouteRepair repair(net);  // defaults: detect 300ms, hold-down 700ms

  offline_at(net, 3, 1.0, true);
  bool before_detection = true, after_detection = false;
  sample_at(net, repair, 1.2, before_detection);  // dark, not yet detected
  sample_at(net, repair, 1.4, after_detection);   // detection delay elapsed
  net.loop().run();

  EXPECT_FALSE(before_detection);
  EXPECT_TRUE(after_detection);
  EXPECT_EQ(repair.stats().reroutes, 1u);
  EXPECT_EQ(repair.stats().restores, 0u);
}

TEST(RouteRepair, RestoresAfterHoldDown) {
  Network net(detour_path());
  net.add_server("srv");
  RouteRepair repair(net);

  offline_at(net, 3, 1.0, true);
  offline_at(net, 3, 2.0, false);
  bool during_hold_down = false, after_hold_down = true;
  sample_at(net, repair, 2.6, during_hold_down);  // back, hold-down running
  sample_at(net, repair, 2.8, after_hold_down);   // hold-down elapsed
  net.loop().run();

  EXPECT_TRUE(during_hold_down);
  EXPECT_FALSE(after_hold_down);
  EXPECT_EQ(repair.stats().reroutes, 1u);
  EXPECT_EQ(repair.stats().restores, 1u);
  // Convergence means the primaries are actually back in the tables.
  for (auto& [router, id] : net.span_primaries(3, 4))
    EXPECT_FALSE(router->route_withdrawn(id));
}

TEST(RouteRepair, FlapInsideHoldDownDoesNotRestoreEarly) {
  Network net(detour_path());
  net.add_server("srv");
  RouteRepair repair(net);

  offline_at(net, 3, 1.0, true);   // withdraw commits at 1.3
  offline_at(net, 3, 2.0, false);  // hold-down would end at 2.7...
  offline_at(net, 3, 2.5, true);   // ...but the router flaps back down first
  offline_at(net, 3, 3.0, false);  // final recovery; restore at 3.7
  bool after_cancelled_hold_down = false, after_final_hold_down = true;
  sample_at(net, repair, 2.8, after_cancelled_hold_down);
  sample_at(net, repair, 3.8, after_final_hold_down);
  net.loop().run();

  EXPECT_TRUE(after_cancelled_hold_down);  // flap kept the span withdrawn
  EXPECT_FALSE(after_final_hold_down);
  EXPECT_EQ(repair.stats().reroutes, 1u);  // one withdrawn interval, not two
  EXPECT_EQ(repair.stats().restores, 1u);
}

TEST(RouteRepair, ProtectsExplicitSpanWithoutDetour) {
  // No detour: the withdraw cannot reroute, but it turns the black hole into
  // fast failure by pulling the primaries at the span boundaries.
  PathConfig cfg;
  cfg.hop_count = 8;
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = 0.0;
  Network net(cfg);
  net.add_server("srv");
  RouteRepair repair(net);  // nothing auto-protected without a detour
  repair.protect(3, 4);

  auto primaries = net.span_primaries(3, 4);
  ASSERT_FALSE(primaries.empty());
  offline_at(net, 4, 1.0, true);
  net.loop().run();

  EXPECT_TRUE(repair.rerouted());
  for (auto& [router, id] : primaries) EXPECT_TRUE(router->route_withdrawn(id));
  EXPECT_EQ(repair.stats().reroutes, 1u);
}

TEST(RouteRepair, SpanWithTwoDeadRoutersRestoresOnlyWhenBothReturn) {
  Network net(detour_path());
  net.add_server("srv");
  RouteRepair repair(net);

  offline_at(net, 3, 1.0, true);
  offline_at(net, 4, 1.1, true);
  offline_at(net, 3, 2.0, false);  // one back: span still broken
  bool with_one_back = false;
  sample_at(net, repair, 3.0, with_one_back);
  offline_at(net, 4, 4.0, false);  // whole span back: restore at 4.7
  bool after_full_recovery = true;
  sample_at(net, repair, 4.8, after_full_recovery);
  net.loop().run();

  EXPECT_TRUE(with_one_back);
  EXPECT_FALSE(after_full_recovery);
  EXPECT_EQ(repair.stats().reroutes, 1u);
  EXPECT_EQ(repair.stats().restores, 1u);
}

TEST(RouteRepair, TransitionsKeepRoutingLoopFree) {
  // Every withdraw/restore re-runs the forwarding-loop audit; a full
  // down/up cycle must come out clean.
  audit::Auditor auditor;
  Network net(detour_path());
  net.add_server("srv");
  net.attach_auditor(auditor);
  RouteRepair repair(net);

  offline_at(net, 3, 1.0, true);
  offline_at(net, 3, 2.0, false);
  net.loop().run();

  EXPECT_EQ(repair.stats().reroutes, 1u);
  EXPECT_EQ(repair.stats().restores, 1u);
  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();
}

TEST(RouteRepair, DeterministicAcrossRuns) {
  // The control plane lives on the sim loop: identical scripts must produce
  // identical transition counts and identical table state.
  auto run_once = [] {
    Network net(detour_path());
    net.add_server("srv");
    RouteRepair repair(net);
    offline_at(net, 3, 1.0, true);
    offline_at(net, 3, 2.0, false);
    offline_at(net, 4, 2.5, true);
    offline_at(net, 4, 3.5, false);
    net.loop().run();
    return std::make_pair(repair.stats().reroutes, repair.stats().restores);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace streamlab
