#include <gtest/gtest.h>
TEST(Placeholder_sim, Builds) { SUCCEED(); }
