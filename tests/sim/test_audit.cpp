#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "sim/event_loop.hpp"

namespace streamlab {
namespace {

using audit::Auditor;
using audit::DeterminismProbe;
using audit::Invariant;
using audit::SessionPhase;

Auditor::Config check_everything() {
  Auditor::Config config;
  config.sample_every = 1;
  return config;
}

TEST(AuditStateMachine, LegalClientAndServerPaths) {
  // Client: idle -> connecting -> {established, abandoned};
  //         established -> {completed, dead}.
  EXPECT_TRUE(audit::legal_transition(SessionPhase::kIdle, SessionPhase::kConnecting));
  EXPECT_TRUE(
      audit::legal_transition(SessionPhase::kConnecting, SessionPhase::kEstablished));
  EXPECT_TRUE(
      audit::legal_transition(SessionPhase::kConnecting, SessionPhase::kAbandoned));
  EXPECT_TRUE(
      audit::legal_transition(SessionPhase::kEstablished, SessionPhase::kCompleted));
  EXPECT_TRUE(audit::legal_transition(SessionPhase::kEstablished, SessionPhase::kDead));
  // Server: idle -> streaming -> finished.
  EXPECT_TRUE(audit::legal_transition(SessionPhase::kIdle, SessionPhase::kStreaming));
  EXPECT_TRUE(
      audit::legal_transition(SessionPhase::kStreaming, SessionPhase::kFinished));
}

TEST(AuditStateMachine, IllegalTransitionsRejected) {
  // Terminal phases admit no successor.
  EXPECT_FALSE(
      audit::legal_transition(SessionPhase::kCompleted, SessionPhase::kConnecting));
  EXPECT_FALSE(audit::legal_transition(SessionPhase::kDead, SessionPhase::kEstablished));
  EXPECT_FALSE(audit::legal_transition(SessionPhase::kFinished, SessionPhase::kStreaming));
  // Skipping a phase is illegal.
  EXPECT_FALSE(audit::legal_transition(SessionPhase::kIdle, SessionPhase::kEstablished));
  EXPECT_FALSE(
      audit::legal_transition(SessionPhase::kConnecting, SessionPhase::kCompleted));
  // Crossing the two machines is illegal.
  EXPECT_FALSE(
      audit::legal_transition(SessionPhase::kStreaming, SessionPhase::kCompleted));
}

TEST(Auditor, IllegalSessionTransitionRecordsViolation) {
  // kAbandoned is terminal: nothing may leave it (kEstablished -> kConnecting
  // became legal with mirror failover, so it no longer serves as the example).
  Auditor auditor(check_everything());
  auditor.on_session_transition("client.test", SessionPhase::kAbandoned,
                                SessionPhase::kConnecting, SimTime::from_seconds(1.0));
  EXPECT_FALSE(auditor.report().clean());
  EXPECT_EQ(auditor.violations_by(Invariant::kSessionState), 1u);
  ASSERT_EQ(auditor.report().violations.size(), 1u);
  EXPECT_NE(auditor.report().violations.front().detail.find("client.test"),
            std::string::npos);
}

TEST(Auditor, LegalTransitionIsClean) {
  Auditor auditor(check_everything());
  auditor.on_session_transition("server", SessionPhase::kIdle, SessionPhase::kStreaming,
                                SimTime::zero());
  auditor.on_session_transition("server", SessionPhase::kStreaming,
                                SessionPhase::kFinished, SimTime::from_seconds(2.0));
  EXPECT_TRUE(auditor.report().clean());
  EXPECT_EQ(auditor.report().checks_performed, 2u);
}

TEST(Auditor, MonotoneTimeViolationDetected) {
  Auditor auditor(check_everything());
  auditor.on_event_dispatch(SimTime::from_seconds(1.0), SimTime::from_seconds(2.0));
  EXPECT_EQ(auditor.violations_by(Invariant::kMonotoneTime), 1u);
  auditor.on_event_dispatch(SimTime::from_seconds(3.0), SimTime::from_seconds(2.0));
  EXPECT_EQ(auditor.violations_by(Invariant::kMonotoneTime), 1u);
}

TEST(Auditor, QueueBoundsViolationDetected) {
  Auditor auditor(check_everything());
  auditor.on_link_enqueue(512, 1024, SimTime::zero(), "bottleneck");
  EXPECT_TRUE(auditor.report().clean());
  auditor.on_link_enqueue(2048, 1024, SimTime::zero(), "bottleneck");
  EXPECT_EQ(auditor.violations_by(Invariant::kQueueBounds), 1u);
}

TEST(Auditor, TtlSanityViolationDetected) {
  Auditor auditor(check_everything());
  auditor.on_delivery_ttl(64, SimTime::zero(), "client");
  EXPECT_TRUE(auditor.report().clean());
  auditor.on_delivery_ttl(0, SimTime::zero(), "client");
  EXPECT_EQ(auditor.violations_by(Invariant::kTtlSanity), 1u);
}

TEST(Auditor, SamplingSkipsBetweenNthEvents) {
  Auditor::Config config;
  config.sample_every = 4;
  Auditor auditor(config);
  // Every call presents an invalid TTL; only sampled calls (or all of them
  // in a full-audit build) actually check.
  for (int i = 0; i < 8; ++i) auditor.on_delivery_ttl(0, SimTime::zero(), "client");
  EXPECT_EQ(auditor.report().checks_performed, 8u);
  const std::uint64_t expected = audit::kFullAudit ? 8u : 2u;
  EXPECT_EQ(auditor.violations_by(Invariant::kTtlSanity), expected);
}

TEST(Auditor, ConservationBalancedLedgerIsClean) {
  Auditor auditor;
  // 10 injected = 6 delivered + 2 dropped + 1 queued + 1 in flight: a
  // truncated-but-balanced trial.
  auditor.check_conservation("link.ab", 10, 6, 2, 1, 1, SimTime::from_seconds(3.0));
  EXPECT_TRUE(auditor.report().clean());
}

TEST(Auditor, ConservationUnbalancedLedgerViolates) {
  Auditor auditor;
  auditor.check_conservation("link.ab", 10, 6, 2, 1, 0, SimTime::from_seconds(3.0));
  EXPECT_EQ(auditor.violations_by(Invariant::kPacketConservation), 1u);
  ASSERT_FALSE(auditor.report().violations.empty());
  EXPECT_NE(auditor.report().violations.front().detail.find("link.ab"),
            std::string::npos);
}

TEST(Auditor, ForceViolationIsReported) {
  Auditor auditor;
  EXPECT_TRUE(auditor.report().clean());
  auditor.force_violation("planted by test");
  EXPECT_FALSE(auditor.report().clean());
  EXPECT_EQ(auditor.violations_by(Invariant::kForced), 1u);
  EXPECT_NE(auditor.report().summary().find("planted by test"), std::string::npos);
}

TEST(Auditor, RetentionCapKeepsCounting) {
  Auditor::Config config;
  config.max_retained = 2;
  Auditor auditor(config);
  for (int i = 0; i < 5; ++i) auditor.force_violation("v" + std::to_string(i));
  EXPECT_EQ(auditor.report().violations.size(), 2u);
  EXPECT_EQ(auditor.report().total_violations, 5u);
}

TEST(Auditor, SummaryReadsCleanOrFirstViolation) {
  Auditor auditor;
  auditor.check_conservation("l", 1, 1, 0, 0, 0, SimTime::zero());
  EXPECT_NE(auditor.report().summary().find("clean"), std::string::npos);
  auditor.force_violation("boom");
  EXPECT_NE(auditor.report().summary().find("boom"), std::string::npos);
}

TEST(Auditor, AttachObsMirrorsCountsOnRegistry) {
  if constexpr (!obs::kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  Auditor auditor(check_everything());
  auditor.force_violation("before attach");
  obs::Obs obs;
  auditor.attach_obs(obs);
  auditor.force_violation("after attach");
  auditor.on_delivery_ttl(64, SimTime::zero(), "client");
  EXPECT_EQ(obs.registry().counter("audit.violations").value(), 2u);
  EXPECT_EQ(obs.registry().counter("audit.checks").value(),
            auditor.report().checks_performed);
}

TEST(Auditor, LoopDispatchHookIsCleanOnOrderedEvents) {
  EventLoop loop;
  Auditor auditor(check_everything());
  loop.set_auditor(&auditor);
  for (int i = 0; i < 16; ++i)
    loop.schedule_at(SimTime::from_seconds(0.1 * i), [] {});
  loop.run();
  EXPECT_TRUE(auditor.report().clean());
  EXPECT_EQ(auditor.report().checks_performed, 16u);
}

TEST(DeterminismProbe, IdenticalStreamsMatch) {
  DeterminismProbe a;
  DeterminismProbe b;
  a.enable_recording(true);
  b.enable_recording(true);
  for (int i = 0; i < 20; ++i) {
    a.fold(SimTime::from_seconds(i), 17, static_cast<std::uint16_t>(i), 1400);
    b.fold(SimTime::from_seconds(i), 17, static_cast<std::uint16_t>(i), 1400);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.events(), 20u);
  EXPECT_EQ(audit::first_divergence(a, b), std::nullopt);
}

TEST(DeterminismProbe, PinpointsFirstDivergentEvent) {
  DeterminismProbe a;
  DeterminismProbe b;
  a.enable_recording(true);
  b.enable_recording(true);
  for (int i = 0; i < 5; ++i) {
    a.fold(SimTime::from_seconds(i), 17, static_cast<std::uint16_t>(i), 1400);
    b.fold(SimTime::from_seconds(i), 17, static_cast<std::uint16_t>(i), 1400);
  }
  a.fold(SimTime::from_seconds(5.0), 17, 5, 1400);
  b.fold(SimTime::from_seconds(5.0), 17, 5, 1401);  // one byte longer
  a.fold(SimTime::from_seconds(6.0), 17, 6, 1400);
  b.fold(SimTime::from_seconds(6.0), 17, 6, 1400);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_EQ(audit::first_divergence(a, b), std::optional<std::uint64_t>(5));
}

TEST(DeterminismProbe, PrefixStreamDivergesAtItsEnd) {
  DeterminismProbe a;
  DeterminismProbe b;
  a.enable_recording(true);
  b.enable_recording(true);
  for (int i = 0; i < 6; ++i)
    a.fold(SimTime::from_seconds(i), 17, static_cast<std::uint16_t>(i), 1400);
  for (int i = 0; i < 4; ++i)
    b.fold(SimTime::from_seconds(i), 17, static_cast<std::uint16_t>(i), 1400);
  EXPECT_EQ(audit::first_divergence(a, b), std::optional<std::uint64_t>(4));
}

TEST(DeterminismProbe, DigestWithoutRecordingStillDiscriminates) {
  DeterminismProbe a;
  DeterminismProbe b;
  a.fold(SimTime::from_seconds(1.0), 17, 1, 1400);
  b.fold(SimTime::from_seconds(1.0), 17, 1, 1401);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_TRUE(a.entries().empty());
}

}  // namespace
}  // namespace streamlab
