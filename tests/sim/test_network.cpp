#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "sim/audit.hpp"

namespace streamlab {
namespace {

TEST(Network, BuildsRequestedHopCount) {
  PathConfig cfg;
  cfg.hop_count = 17;
  Network net(cfg);
  EXPECT_EQ(net.hop_count(), 17);
  EXPECT_EQ(net.routers().size(), 17u);
}

TEST(Network, EndToEndUdpThroughChain) {
  PathConfig cfg;
  cfg.hop_count = 5;
  Network net(cfg);
  Host& server = net.add_server("srv");

  std::vector<std::uint8_t> received;
  server.udp_bind(5000, [&](std::span<const std::uint8_t> data, Endpoint, SimTime) {
    received.assign(data.begin(), data.end());
  });

  const std::vector<std::uint8_t> payload = {9, 8, 7};
  net.client().udp_send(6000, Endpoint{server.address(), 5000}, payload);
  net.loop().run();
  EXPECT_EQ(received, payload);
}

TEST(Network, ReplyPathWorks) {
  PathConfig cfg;
  cfg.hop_count = 5;
  Network net(cfg);
  Host& server = net.add_server("srv");

  // Server echoes the payload back to the sender.
  server.udp_bind(5000, [&](std::span<const std::uint8_t> data, Endpoint from, SimTime) {
    server.udp_send(5000, from, data);
  });
  std::vector<std::uint8_t> reply;
  net.client().udp_bind(6000, [&](std::span<const std::uint8_t> data, Endpoint, SimTime) {
    reply.assign(data.begin(), data.end());
  });

  net.client().udp_send(6000, Endpoint{server.address(), 5000},
                        std::vector<std::uint8_t>{1, 2});
  net.loop().run();
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{1, 2}));
}

TEST(Network, OneWayDelayApproximatesConfig) {
  PathConfig cfg;
  cfg.hop_count = 10;
  cfg.one_way_propagation = Duration::millis(20);
  cfg.jitter_stddev = Duration::zero();
  Network net(cfg);
  Host& server = net.add_server("srv");

  SimTime arrival;
  server.udp_bind(5000, [&](auto, auto, SimTime when) { arrival = when; });
  net.client().udp_send(6000, Endpoint{server.address(), 5000},
                        std::vector<std::uint8_t>(100, 0));
  net.loop().run();

  // Propagation dominates; serialization adds a little. The server link
  // reuses the per-link propagation share, so total > configured one-way.
  EXPECT_GT(arrival.to_millis(), 20.0);
  EXPECT_LT(arrival.to_millis(), 26.0);
}

TEST(Network, TwoServersShareThePath) {
  PathConfig cfg;
  cfg.hop_count = 4;
  Network net(cfg);
  Host& s1 = net.add_server("s1");
  Host& s2 = net.add_server("s2");

  EXPECT_NE(s1.address(), s2.address());
  // Both on the same /24 — the paper's co-location requirement.
  EXPECT_TRUE(s1.address().same_slash24(s2.address()));

  int hits = 0;
  s1.udp_bind(1, [&](auto, auto, auto) { ++hits; });
  s2.udp_bind(1, [&](auto, auto, auto) { ++hits; });
  net.client().udp_send(9, Endpoint{s1.address(), 1}, std::vector<std::uint8_t>{1});
  net.client().udp_send(9, Endpoint{s2.address(), 1}, std::vector<std::uint8_t>{1});
  net.loop().run();
  EXPECT_EQ(hits, 2);
}

TEST(Network, RouterAddressesAreRoutable) {
  PathConfig cfg;
  cfg.hop_count = 6;
  Network net(cfg);
  net.add_server("srv");

  // The client can reach every router address (needed for ping and for
  // ICMP error sources to be meaningful).
  for (int i = 0; i < net.hop_count(); ++i) {
    EXPECT_EQ(net.router_address(i), net.routers()[static_cast<std::size_t>(i)]->address());
  }
}

// --- Detour topology (DESIGN.md §11) ---

PathConfig detour_path() {
  PathConfig cfg;
  cfg.hop_count = 8;
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = 0.0;
  cfg.detour = DetourConfig{};  // span [3,4], 2 detour routers, metric 10
  return cfg;
}

TEST(Network, DetourSegmentBuilds) {
  Network net(detour_path());
  EXPECT_TRUE(net.has_detour());
  EXPECT_EQ(net.detour_routers().size(), 2u);
  ASSERT_NE(net.detour_control(), nullptr);
  EXPECT_EQ(net.detour_control()->branch, &net.router(2));
  // Detour routers live in their own address plan, distinct from the chain.
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < net.hop_count(); ++j)
      EXPECT_NE(net.detour_router_address(i), net.router_address(j));
  }
}

TEST(Network, DetourIsDormantWhilePrimariesHold) {
  // With the metric-0 primaries in place, the higher-metric detour routes
  // must shadow: traffic crosses the chain, not the detour.
  Network net(detour_path());
  Host& server = net.add_server("srv");
  int received = 0;
  server.udp_bind(5000, [&](auto, auto, auto) { ++received; });
  net.client().udp_send(6000, Endpoint{server.address(), 5000},
                        std::vector<std::uint8_t>{1});
  net.loop().run();
  EXPECT_EQ(received, 1);
  for (const Router* r : net.detour_routers())
    EXPECT_EQ(r->stats().packets_forwarded, 0u);
}

TEST(Network, DetourCarriesTrafficWhenSpanWithdrawn) {
  // The repair plane's move, by hand: span router dead, boundary primaries
  // withdrawn -> the metric-shadowed backups route around the hole.
  Network net(detour_path());
  Host& server = net.add_server("srv");
  net.router(3).set_offline(true);
  for (auto& [router, id] : net.span_primaries(3, 4)) router->withdraw_route(id);

  std::vector<std::uint8_t> received;
  server.udp_bind(5000, [&](std::span<const std::uint8_t> data, Endpoint from, SimTime) {
    received.assign(data.begin(), data.end());
    server.udp_send(5000, from, data);  // echo: exercises the return path too
  });
  std::vector<std::uint8_t> reply;
  net.client().udp_bind(6000, [&](std::span<const std::uint8_t> data, Endpoint, SimTime) {
    reply.assign(data.begin(), data.end());
  });

  const std::vector<std::uint8_t> payload = {4, 2};
  net.client().udp_send(6000, Endpoint{server.address(), 5000}, payload);
  net.loop().run();
  EXPECT_EQ(received, payload);  // forward path heals
  EXPECT_EQ(reply, payload);     // ...and the return path too
  std::uint64_t via_detour = 0;
  for (const Router* r : net.detour_routers()) via_detour += r->stats().packets_forwarded;
  EXPECT_GT(via_detour, 0u);
  EXPECT_EQ(net.router(3).stats().packets_forwarded, 0u);
}

TEST(Network, DetourTopologyIsLoopFree) {
  // The forwarding-table walk must stay acyclic through every repair state:
  // healthy, withdrawn (detour active), and restored.
  audit::Auditor auditor;
  Network net(detour_path());
  net.add_server("srv");
  net.attach_auditor(auditor);

  net.audit_routing();
  auto primaries = net.span_primaries(3, 4);
  EXPECT_FALSE(primaries.empty());
  for (auto& [router, id] : primaries) router->withdraw_route(id);
  net.audit_routing();
  for (auto& [router, id] : primaries) router->restore_route(id);
  net.audit_routing();

  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();
  EXPECT_GT(auditor.report().checks_performed, 0u);
}

TEST(Network, DeterministicAcrossRebuilds) {
  PathConfig cfg;
  cfg.hop_count = 5;
  cfg.jitter_stddev = Duration::micros(500);
  cfg.seed = 77;

  auto run_once = [&cfg] {
    Network net(cfg);
    Host& server = net.add_server("srv");
    SimTime arrival;
    server.udp_bind(5000, [&](auto, auto, SimTime when) { arrival = when; });
    net.client().udp_send(6000, Endpoint{server.address(), 5000},
                          std::vector<std::uint8_t>(500, 1));
    net.loop().run();
    return arrival;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace streamlab
