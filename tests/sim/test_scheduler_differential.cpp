// Differential and contract tests for the two scheduling backends.
//
// The timing wheel (EventLoop::Scheduler::kWheel) must be observationally
// identical to the reference heap (kHeap): same fire order, same clocks, same
// pending/executed accounting — on adversarial schedules with same-instant
// clusters, cancels, nested scheduling, budget-truncated runs and far-future
// events. The differential driver below replays one deterministic
// pseudo-random "schedule program" through both backends and compares the
// full recordings.
#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_loop.hpp"

namespace streamlab {
namespace {

using Scheduler = EventLoop::Scheduler;

class BothSchedulers : public ::testing::TestWithParam<Scheduler> {};

INSTANTIATE_TEST_SUITE_P(Backends, BothSchedulers,
                         ::testing::Values(Scheduler::kWheel, Scheduler::kHeap),
                         [](const auto& info) {
                           return info.param == Scheduler::kWheel ? "Wheel" : "Heap";
                         });

// Deterministic 64-bit LCG so the "random" program is identical across
// backends, runs and platforms.
struct Lcg {
  std::uint64_t x;
  std::uint64_t next() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 11;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

struct Recording {
  // (event id, fire time ns) in execution order, plus accounting checkpoints.
  std::vector<std::pair<int, std::int64_t>> fired;
  std::vector<std::pair<std::uint64_t, std::size_t>> checkpoints;  // executed, pending

  bool operator==(const Recording&) const = default;
};

// One adversarial schedule program: bursts of events over a 50ms horizon with
// same-instant clusters, nested children, random cancels (including
// cancel-from-inside-run), handle-free posts, far-future events at coarse
// wheel levels, and budget-truncated resumed runs.
Recording run_program(Scheduler kind, std::uint64_t seed) {
  Recording rec;
  EventLoop loop(kind);
  Lcg rng{seed};
  std::vector<EventHandle> handles;
  int next_id = 100000;

  const auto record = [&rec, &loop](int id) {
    rec.fired.emplace_back(id, loop.now().ns());
  };

  // Phase A: 400 events over [0, 50ms); every third keeps a handle.
  for (int i = 0; i < 400; ++i) {
    const SimTime when(static_cast<std::int64_t>(rng.below(50'000'000)));
    const int id = i;
    auto fn = [&, id] {
      record(id);
      if (id % 5 == 0) {
        const int child = next_id++;
        loop.post_in(Duration(static_cast<std::int64_t>(rng.below(2'000'000))),
                     [&, child] { record(child); });
      }
      if (id % 7 == 0 && !handles.empty()) {
        handles[rng.below(handles.size())].cancel();
      }
    };
    if (i % 3 == 0) {
      handles.push_back(loop.schedule_at(when, std::move(fn)));
    } else {
      loop.post_at(when, std::move(fn));
    }
  }

  // Phase B: a same-instant cluster right on a likely bucket boundary.
  const SimTime cluster(10'485'760);  // 10240 * 1024 ns
  for (int i = 0; i < 50; ++i) {
    loop.post_at(cluster, [&, id = 1000 + i] { record(id); });
  }

  // Phase C: far-future events exercising coarse wheel levels; half are
  // cancelled before they can fire.
  for (int i = 0; i < 20; ++i) {
    const SimTime when = SimTime(static_cast<std::int64_t>(
        1'000'000'000ULL + rng.below(1'000'000'000'000ULL)));  // 1s .. ~17min
    EventHandle h = loop.schedule_at(when, [&, id = 2000 + i] { record(id); });
    if (i % 2 == 0) h.cancel();
  }
  loop.schedule_at(SimTime::max(), [&] { record(9999); }).cancel();

  // Phase D: budget-truncated runs with mid-run scheduling near `now`.
  std::uint64_t guard = 0;
  while (!loop.empty() && guard++ < 10'000) {
    loop.run_until(SimTime::from_seconds(3600.0), 37);
    rec.checkpoints.emplace_back(loop.executed_events(), loop.pending_events());
    if (guard % 5 == 0) {
      loop.post_in(Duration(static_cast<std::int64_t>(rng.below(500'000))),
                   [&, id = next_id++] { record(id); });
    }
  }
  rec.checkpoints.emplace_back(loop.executed_events(), loop.pending_events());
  return rec;
}

TEST(SchedulerDifferential, WheelMatchesHeapOnAdversarialPrograms) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234567ULL, 0xDEADBEEFULL}) {
    const Recording wheel = run_program(Scheduler::kWheel, seed);
    const Recording heap = run_program(Scheduler::kHeap, seed);
    ASSERT_FALSE(wheel.fired.empty());
    EXPECT_EQ(wheel, heap) << "divergence at seed " << seed;
  }
}

// Satellite: a budget-truncated run resumed mid-bucket must keep the
// same-instant scheduling order across the resume boundary — including
// events scheduled for that same instant *during* the pause.
TEST_P(BothSchedulers, TruncatedRunResumedMidBucketKeepsOrder) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1.0);
  loop.post_at(SimTime::from_seconds(0.5), [&] { order.push_back(-1); });
  for (int i = 0; i < 10; ++i) loop.post_at(t, [&, i] { order.push_back(i); });

  // Budget cuts inside the same-instant batch: -1 plus three of the ten.
  EXPECT_EQ(loop.run_until(SimTime::from_seconds(2.0), 4), 4u);
  EXPECT_EQ(loop.now(), t);  // truncated: clock stays at the last fired event
  ASSERT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));

  // Late arrivals for the same instant during the pause: they must fire
  // after the already-scheduled batch (insertion order), not before.
  for (int i = 10; i < 13; ++i) loop.post_at(t, [&, i] { order.push_back(i); });

  loop.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  EXPECT_EQ(loop.now(), SimTime::from_seconds(2.0));
  EXPECT_TRUE(loop.empty());
}

// Satellite: cancel-heavy workload — 90% of scheduled events cancelled.
// pending_events()/empty() must stay truthful throughout, the lazily-purged
// slots must not disturb the survivors' order, and nothing may leak (this
// suite runs under the ASan job).
TEST_P(BothSchedulers, CancelHeavyWorkloadStaysTruthful) {
  EventLoop loop(GetParam());
  constexpr int kN = 5000;
  std::vector<EventHandle> handles;
  handles.reserve(kN);
  std::vector<int> order;
  for (int i = 0; i < kN; ++i) {
    // Scatter deterministically; collisions are fine (seq breaks ties).
    const SimTime when(static_cast<std::int64_t>(i) * 7919 % 100'000'000);
    handles.push_back(loop.schedule_at(when, [&, i] { order.push_back(i); }));
  }
  EXPECT_EQ(loop.pending_events(), static_cast<std::size_t>(kN));

  std::size_t cancelled = 0;
  for (int i = 0; i < kN; ++i) {
    if (i % 10 != 0) {
      handles[static_cast<std::size_t>(i)].cancel();
      ++cancelled;
    }
  }
  EXPECT_EQ(loop.pending_events(), kN - cancelled);
  EXPECT_FALSE(loop.empty());

  // Double-cancel is a no-op on the count.
  handles[1].cancel();
  EXPECT_EQ(loop.pending_events(), kN - cancelled);

  EXPECT_EQ(loop.run(), kN - cancelled);
  EXPECT_EQ(order.size(), kN - cancelled);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending_events(), 0u);

  // Survivors fired in (time, seq) order.
  std::vector<int> expected;
  for (int i = 0; i < kN; i += 10) expected.push_back(i);
  std::sort(expected.begin(), expected.end(), [](int a, int b) {
    const std::int64_t ta = static_cast<std::int64_t>(a) * 7919 % 100'000'000;
    const std::int64_t tb = static_cast<std::int64_t>(b) * 7919 % 100'000'000;
    return ta != tb ? ta < tb : a < b;
  });
  EXPECT_EQ(order, expected);

  // The loop stays fully usable after the lazily-purged run.
  bool again = false;
  loop.post_in(Duration::millis(1), [&] { again = true; });
  loop.run();
  EXPECT_TRUE(again);
}

TEST_P(BothSchedulers, PostAndScheduleShareOneTotalOrder) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1.0);
  loop.post_at(t, [&] { order.push_back(0); });
  loop.schedule_at(t, [&] { order.push_back(1); });
  loop.post_at(t, [&] { order.push_back(2); });
  EXPECT_EQ(loop.pending_events(), 3u);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(loop.executed_events(), 3u);
  EXPECT_TRUE(loop.empty());
}

TEST_P(BothSchedulers, FarFutureEventsFireExactly) {
  EventLoop loop(GetParam());
  std::vector<std::int64_t> at;
  // Spread across wheel levels: ~66µs, ~4ms, ~270ms, ~17s, ~18min, ~2 days.
  const std::int64_t whens[] = {70'000,         4'300'000,      300'000'000,
                                18'000'000'000, 1'100'000'000'000,
                                180'000'000'000'000};
  for (const std::int64_t w : whens) {
    loop.post_at(SimTime(w), [&, w] {
      EXPECT_EQ(loop.now().ns(), w);
      at.push_back(w);
    });
  }
  // An event parked at the far end of the top level must not block the run.
  EventHandle far = loop.schedule_at(SimTime::max(), [] {});
  loop.run_until(SimTime(whens[5]));
  EXPECT_EQ(at.size(), 6u);
  EXPECT_TRUE(far.pending());
  EXPECT_EQ(loop.pending_events(), 1u);
  far.cancel();
  EXPECT_TRUE(loop.empty());
}

// A pending SimTime::max() event held by a handle across loop destruction:
// the destructor must detach the control block so the late cancel is a no-op
// on freed memory (exercised under ASan).
TEST_P(BothSchedulers, HandleOutlivesLoopHarmlessly) {
  EventHandle h;
  {
    EventLoop loop(GetParam());
    h = loop.schedule_at(SimTime::max(), [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_TRUE(h.pending());  // flag untouched; count pointer detached
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventFnTest, SmallCapturesStayInline) {
  int hits = 0;
  void* a = nullptr;
  void* b = nullptr;
  EventFn small([&hits, a, b] { ++hits; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(hits, 1);

  // Moving preserves the callable.
  EventFn moved = std::move(small);
  EXPECT_TRUE(moved.is_inline());
  moved();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, LargeCapturesFallBackToHeap) {
  std::array<std::uint64_t, 16> big{};
  big[0] = 41;
  int out = 0;
  EventFn fn([big, &out] { out = static_cast<int>(big[0]) + 1; });
  EXPECT_FALSE(fn.is_inline());
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(out, 42);
}

// The EventCtl pool: after a warm-up burst, handle-ful scheduling recycles
// control blocks instead of heap-allocating fresh ones.
TEST(EventCtlPool, SteadyStateRecyclesBlocks) {
  EventLoop loop;
  // Warm the thread-local pool.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) loop.schedule_in(Duration::micros(i), [] {});
    loop.run();
  }
  const EventCtl::PoolStats before = EventCtl::pool_stats();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) loop.schedule_in(Duration::micros(i), [] {});
    loop.run();
  }
  const EventCtl::PoolStats after = EventCtl::pool_stats();
  EXPECT_EQ(after.fresh, before.fresh) << "steady state should not heap-allocate";
  EXPECT_GE(after.recycled - before.recycled, 4u * 64u);
}

}  // namespace
}  // namespace streamlab
