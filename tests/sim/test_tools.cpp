#include "sim/tools.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

PathConfig quiet_path(int hops, int one_way_ms) {
  PathConfig cfg;
  cfg.hop_count = hops;
  cfg.one_way_propagation = Duration::millis(one_way_ms);
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = 0.0;
  return cfg;
}

TEST(Ping, AllRepliesOnCleanPath) {
  Network net(quiet_path(8, 20));
  Host& server = net.add_server("srv");
  const PingResult r = run_ping(net, server.address(), 10);
  EXPECT_EQ(r.sent, 10);
  EXPECT_EQ(r.received, 10);
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.0);
  ASSERT_EQ(r.rtts.size(), 10u);
  // RTT ~ 2x one-way (plus the server link share and serialization).
  EXPECT_GT(r.avg_rtt().to_millis(), 40.0);
  EXPECT_LT(r.avg_rtt().to_millis(), 50.0);
  EXPECT_LE(r.min_rtt(), r.avg_rtt());
  EXPECT_LE(r.avg_rtt(), r.max_rtt());
}

TEST(Ping, RttScalesWithPropagation) {
  Network near(quiet_path(8, 10));
  Network far(quiet_path(8, 60));
  Host& s1 = near.add_server("srv");
  Host& s2 = far.add_server("srv");
  const auto r1 = run_ping(near, s1.address(), 3);
  const auto r2 = run_ping(far, s2.address(), 3);
  EXPECT_GT(r2.avg_rtt().to_millis(), r1.avg_rtt().to_millis() * 3);
}

TEST(Ping, CanTargetIntermediateRouter) {
  Network net(quiet_path(10, 20));
  net.add_server("srv");
  const PingResult r = run_ping(net, net.router_address(2), 3);
  EXPECT_EQ(r.received, 3);
  // Router 2 is much closer than the far end.
  EXPECT_LT(r.avg_rtt().to_millis(), 20.0);
}

TEST(Ping, LossyPathLosesSomeProbes) {
  PathConfig cfg = quiet_path(8, 20);
  cfg.loss_probability = 0.25;  // heavy loss on the bottleneck
  cfg.seed = 5;
  Network net(cfg);
  Host& server = net.add_server("srv");
  const PingResult r = run_ping(net, server.address(), 40);
  EXPECT_EQ(r.sent, 40);
  EXPECT_LT(r.received, 40);
  EXPECT_GT(r.received, 0);
}

TEST(Ping, EmptyResultStatsAreSafe) {
  PingResult r;
  EXPECT_EQ(r.min_rtt(), Duration::zero());
  EXPECT_EQ(r.max_rtt(), Duration::zero());
  EXPECT_EQ(r.avg_rtt(), Duration::zero());
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.0);
}

TEST(Traceroute, DiscoversEveryHop) {
  const int hops = 7;
  Network net(quiet_path(hops, 15));
  Host& server = net.add_server("srv");
  const TracerouteResult r = run_traceroute(net, server.address());

  ASSERT_TRUE(r.reached);
  // hop_count = routers + destination host, matching tracert output.
  EXPECT_EQ(r.hop_count(), hops + 1);
  ASSERT_EQ(r.hops.size(), static_cast<std::size_t>(hops + 1));

  for (int i = 0; i < hops; ++i) {
    ASSERT_TRUE(r.hops[static_cast<std::size_t>(i)].address.has_value());
    EXPECT_EQ(*r.hops[static_cast<std::size_t>(i)].address, net.router_address(i))
        << "hop " << i;
  }
  EXPECT_EQ(*r.hops.back().address, server.address());
}

TEST(Traceroute, RttIncreasesWithTtl) {
  Network net(quiet_path(9, 30));
  Host& server = net.add_server("srv");
  const TracerouteResult r = run_traceroute(net, server.address());
  ASSERT_TRUE(r.reached);
  EXPECT_LT(r.hops.front().rtt, r.hops.back().rtt);
}

TEST(Traceroute, HopCountMatchesPathConfig) {
  for (const int hops : {5, 12, 20}) {
    Network net(quiet_path(hops, 10));
    Host& server = net.add_server("srv");
    const auto r = run_traceroute(net, server.address());
    EXPECT_TRUE(r.reached);
    EXPECT_EQ(r.hop_count(), hops + 1) << hops << " hops";
  }
}

}  // namespace
}  // namespace streamlab
