#include "sim/tools.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/repair.hpp"

namespace streamlab {
namespace {

PathConfig quiet_path(int hops, int one_way_ms) {
  PathConfig cfg;
  cfg.hop_count = hops;
  cfg.one_way_propagation = Duration::millis(one_way_ms);
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = 0.0;
  return cfg;
}

TEST(Ping, AllRepliesOnCleanPath) {
  Network net(quiet_path(8, 20));
  Host& server = net.add_server("srv");
  const PingResult r = run_ping(net, server.address(), 10);
  EXPECT_EQ(r.sent, 10);
  EXPECT_EQ(r.received, 10);
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.0);
  ASSERT_EQ(r.rtts.size(), 10u);
  // RTT ~ 2x one-way (plus the server link share and serialization).
  EXPECT_GT(r.avg_rtt().to_millis(), 40.0);
  EXPECT_LT(r.avg_rtt().to_millis(), 50.0);
  EXPECT_LE(r.min_rtt(), r.avg_rtt());
  EXPECT_LE(r.avg_rtt(), r.max_rtt());
}

TEST(Ping, RttScalesWithPropagation) {
  Network near(quiet_path(8, 10));
  Network far(quiet_path(8, 60));
  Host& s1 = near.add_server("srv");
  Host& s2 = far.add_server("srv");
  const auto r1 = run_ping(near, s1.address(), 3);
  const auto r2 = run_ping(far, s2.address(), 3);
  EXPECT_GT(r2.avg_rtt().to_millis(), r1.avg_rtt().to_millis() * 3);
}

TEST(Ping, CanTargetIntermediateRouter) {
  Network net(quiet_path(10, 20));
  net.add_server("srv");
  const PingResult r = run_ping(net, net.router_address(2), 3);
  EXPECT_EQ(r.received, 3);
  // Router 2 is much closer than the far end.
  EXPECT_LT(r.avg_rtt().to_millis(), 20.0);
}

TEST(Ping, LossyPathLosesSomeProbes) {
  PathConfig cfg = quiet_path(8, 20);
  cfg.loss_probability = 0.25;  // heavy loss on the bottleneck
  cfg.seed = 5;
  Network net(cfg);
  Host& server = net.add_server("srv");
  const PingResult r = run_ping(net, server.address(), 40);
  EXPECT_EQ(r.sent, 40);
  EXPECT_LT(r.received, 40);
  EXPECT_GT(r.received, 0);
}

TEST(Ping, EmptyResultStatsAreSafe) {
  PingResult r;
  EXPECT_EQ(r.min_rtt(), Duration::zero());
  EXPECT_EQ(r.max_rtt(), Duration::zero());
  EXPECT_EQ(r.avg_rtt(), Duration::zero());
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.0);
}

TEST(Traceroute, DiscoversEveryHop) {
  const int hops = 7;
  Network net(quiet_path(hops, 15));
  Host& server = net.add_server("srv");
  const TracerouteResult r = run_traceroute(net, server.address());

  ASSERT_TRUE(r.reached);
  // hop_count = routers + destination host, matching tracert output.
  EXPECT_EQ(r.hop_count(), hops + 1);
  ASSERT_EQ(r.hops.size(), static_cast<std::size_t>(hops + 1));

  for (int i = 0; i < hops; ++i) {
    ASSERT_TRUE(r.hops[static_cast<std::size_t>(i)].address.has_value());
    EXPECT_EQ(*r.hops[static_cast<std::size_t>(i)].address, net.router_address(i))
        << "hop " << i;
  }
  EXPECT_EQ(*r.hops.back().address, server.address());
}

TEST(Traceroute, RttIncreasesWithTtl) {
  Network net(quiet_path(9, 30));
  Host& server = net.add_server("srv");
  const TracerouteResult r = run_traceroute(net, server.address());
  ASSERT_TRUE(r.reached);
  EXPECT_LT(r.hops.front().rtt, r.hops.back().rtt);
}

TEST(Traceroute, HopCountMatchesPathConfig) {
  for (const int hops : {5, 12, 20}) {
    Network net(quiet_path(hops, 10));
    Host& server = net.add_server("srv");
    const auto r = run_traceroute(net, server.address());
    EXPECT_TRUE(r.reached);
    EXPECT_EQ(r.hop_count(), hops + 1) << hops << " hops";
  }
}

// --- Path characterization under failure (DESIGN.md §11) ---

TEST(Ping, ReportsUnreachableWhileRouteWithdrawn) {
  // Withdrawn primaries with no detour: the boundary router answers probes
  // with Destination Unreachable — ping fails *fast*, unlike an outage's
  // silent timeout.
  Network net(quiet_path(8, 10));
  Host& server = net.add_server("srv");
  for (auto& [router, id] : net.span_primaries(3, 4)) router->withdraw_route(id);

  const PingResult r = run_ping(net, server.address(), 4);
  EXPECT_EQ(r.sent, 4);
  EXPECT_EQ(r.received, 0);
  EXPECT_EQ(r.unreachable, 4);
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 1.0);
}

TEST(Ping, RecoversWhenRouteRestored) {
  Network net(quiet_path(8, 10));
  Host& server = net.add_server("srv");
  auto primaries = net.span_primaries(3, 4);
  for (auto& [router, id] : primaries) router->withdraw_route(id);
  const PingResult broken = run_ping(net, server.address(), 2);
  for (auto& [router, id] : primaries) router->restore_route(id);
  const PingResult healed = run_ping(net, server.address(), 2);

  EXPECT_EQ(broken.unreachable, 2);
  EXPECT_EQ(healed.received, 2);
  EXPECT_EQ(healed.unreachable, 0);
}

TEST(Traceroute, ShowsDetourHopsAcrossDownedSpan) {
  // tracert after the repair plane converges: the downed chain router is
  // gone from the hop list and the detour routers appear in its place.
  PathConfig cfg = quiet_path(8, 10);
  cfg.detour = DetourConfig{};  // span [3,4], 2 detour routers
  Network net(cfg);
  Host& server = net.add_server("srv");
  RouteRepair repair(net);
  net.router(3).set_offline(true);
  net.loop().run();  // drive past the detection delay: withdraw commits
  ASSERT_TRUE(repair.rerouted());

  const TracerouteResult r = run_traceroute(net, server.address());
  ASSERT_TRUE(r.reached);
  std::vector<Ipv4Address> hops;
  for (const auto& hop : r.hops)
    if (hop.address) hops.push_back(*hop.address);
  auto seen = [&](Ipv4Address addr) {
    return std::find(hops.begin(), hops.end(), addr) != hops.end();
  };
  EXPECT_TRUE(seen(net.detour_router_address(0)));
  EXPECT_TRUE(seen(net.detour_router_address(1)));
  EXPECT_FALSE(seen(net.router_address(3)));
  EXPECT_FALSE(seen(net.router_address(4)));
  // Detour adds hops: 8 chain - 2 bypassed + 2 detour + server, minus the
  // downed span, still reaches in a bounded, loop-free number of steps.
  EXPECT_EQ(r.hop_count(), 8 - 2 + 2 + 1);
}

TEST(Traceroute, ChainHopsReturnAfterRestore) {
  PathConfig cfg = quiet_path(8, 10);
  cfg.detour = DetourConfig{};
  Network net(cfg);
  Host& server = net.add_server("srv");
  RouteRepair repair(net);
  net.router(3).set_offline(true);
  net.loop().run();
  net.router(3).set_offline(false);
  net.loop().run();  // hold-down elapses, primaries restored
  ASSERT_FALSE(repair.rerouted());

  const TracerouteResult r = run_traceroute(net, server.address());
  ASSERT_TRUE(r.reached);
  EXPECT_EQ(r.hop_count(), 8 + 1);
  std::vector<Ipv4Address> hops;
  for (const auto& hop : r.hops)
    if (hop.address) hops.push_back(*hop.address);
  EXPECT_NE(std::find(hops.begin(), hops.end(), net.router_address(3)), hops.end());
}

}  // namespace
}  // namespace streamlab
