#include "sim/router.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fragmentation.hpp"

namespace streamlab {
namespace {

const Ipv4Address kClient(10, 0, 0, 2);
const Ipv4Address kServer(192, 168, 100, 10);

Ipv4Packet udp_packet(Ipv4Address src, Ipv4Address dst, std::uint8_t ttl = 64) {
  std::vector<std::uint8_t> data(50, 0x11);
  return make_udp_packet(Endpoint{src, 1000}, Endpoint{dst, 2000}, data, 1, ttl);
}

/// Captures packets the router emits on each interface.
struct RouterHarness {
  Router router{"r0", Ipv4Address(10, 1, 0, 1)};
  std::vector<Ipv4Packet> out0, out1;

  RouterHarness() {
    router.attach_interface(0, [this](const Ipv4Packet& p) { out0.push_back(p); });
    router.attach_interface(1, [this](const Ipv4Packet& p) { out1.push_back(p); });
    router.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);
    router.add_default_route(1);
  }
};

TEST(Router, ForwardsByLongestPrefix) {
  RouterHarness h;
  h.router.handle_packet(udp_packet(kServer, kClient), 1);
  ASSERT_EQ(h.out0.size(), 1u);
  EXPECT_TRUE(h.out1.empty());

  h.router.handle_packet(udp_packet(kClient, kServer), 0);
  ASSERT_EQ(h.out1.size(), 1u);
}

TEST(Router, MoreSpecificRouteWins) {
  RouterHarness h;
  // /32 for one client host overrides the /16.
  h.router.add_route(Ipv4Address(10, 0, 0, 99), 32, 1);
  h.router.handle_packet(udp_packet(kServer, Ipv4Address(10, 0, 0, 99)), 1);
  EXPECT_TRUE(h.out0.empty());
  ASSERT_EQ(h.out1.size(), 1u);
}

TEST(Router, DecrementsTtl) {
  RouterHarness h;
  h.router.handle_packet(udp_packet(kServer, kClient, 10), 1);
  ASSERT_EQ(h.out0.size(), 1u);
  EXPECT_EQ(h.out0[0].header.ttl, 9);
  EXPECT_EQ(h.router.stats().packets_forwarded, 1u);
}

TEST(Router, TtlExpiryGeneratesTimeExceeded) {
  RouterHarness h;
  h.router.handle_packet(udp_packet(kClient, kServer, 1), 0);
  // Nothing forwarded; an ICMP error goes back toward the client (iface 0).
  EXPECT_TRUE(h.out1.empty());
  ASSERT_EQ(h.out0.size(), 1u);
  EXPECT_EQ(h.router.stats().packets_ttl_expired, 1u);

  const Ipv4Packet& icmp_pkt = h.out0[0];
  EXPECT_EQ(icmp_pkt.header.protocol, kIpProtoIcmp);
  EXPECT_EQ(icmp_pkt.header.src, h.router.address());
  EXPECT_EQ(icmp_pkt.header.dst, kClient);

  ByteReader r(icmp_pkt.payload);
  const auto icmp = IcmpHeader::decode(r);
  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->type, IcmpType::kTimeExceeded);

  // RFC 792: quoted original header identifies the offending packet.
  const auto quoted = Ipv4Header::decode(r);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(quoted->dst, kServer);
  EXPECT_EQ(quoted->src, kClient);
}

TEST(Router, NoRouteGeneratesUnreachable) {
  Router router("r", Ipv4Address(10, 1, 0, 1));
  std::vector<Ipv4Packet> out0;
  router.attach_interface(0, [&](const Ipv4Packet& p) { out0.push_back(p); });
  router.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);
  // No default route: 192.168/16 is unroutable.
  router.handle_packet(udp_packet(kClient, kServer), 0);
  EXPECT_EQ(router.stats().packets_no_route, 1u);
  ASSERT_EQ(out0.size(), 1u);
  ByteReader r(out0[0].payload);
  const auto icmp = IcmpHeader::decode(r);
  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->type, IcmpType::kDestinationUnreachable);
}

TEST(Router, AnswersPingToOwnAddress) {
  RouterHarness h;
  IcmpHeader echo;
  echo.type = IcmpType::kEchoRequest;
  echo.identifier = 77;
  echo.sequence = 3;
  const std::vector<std::uint8_t> pad(16, 0xA5);
  const Ipv4Packet request =
      make_icmp_packet(kClient, h.router.address(), echo, pad, 5);

  h.router.handle_packet(request, 0);
  EXPECT_EQ(h.router.stats().packets_delivered_local, 1u);
  ASSERT_EQ(h.out0.size(), 1u);

  ByteReader r(h.out0[0].payload);
  const auto reply = IcmpHeader::decode(r);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, IcmpType::kEchoReply);
  EXPECT_EQ(reply->identifier, 77);
  EXPECT_EQ(reply->sequence, 3);
  // Echo payload is reflected.
  EXPECT_EQ(r.remaining(), pad.size());
}

TEST(Router, FragmentsForwardIndependently) {
  RouterHarness h;
  std::vector<std::uint8_t> big(4000, 0x22);
  const Ipv4Packet datagram =
      make_udp_packet(Endpoint{kServer, 1}, Endpoint{kClient, 2}, big, 33);
  for (const auto& frag : fragment_packet(datagram, kDefaultMtu))
    h.router.handle_packet(frag, 1);
  EXPECT_EQ(h.out0.size(), 3u);
  for (const auto& p : h.out0) EXPECT_EQ(p.header.identification, 33);
}

}  // namespace
}  // namespace streamlab
