#include "sim/router.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fragmentation.hpp"

namespace streamlab {
namespace {

const Ipv4Address kClient(10, 0, 0, 2);
const Ipv4Address kServer(192, 168, 100, 10);

Ipv4Packet udp_packet(Ipv4Address src, Ipv4Address dst, std::uint8_t ttl = 64) {
  std::vector<std::uint8_t> data(50, 0x11);
  return make_udp_packet(Endpoint{src, 1000}, Endpoint{dst, 2000}, data, 1, ttl);
}

/// Captures packets the router emits on each interface.
struct RouterHarness {
  Router router{"r0", Ipv4Address(10, 1, 0, 1)};
  std::vector<Ipv4Packet> out0, out1;

  RouterHarness() {
    router.attach_interface(0, [this](const Ipv4Packet& p) { out0.push_back(p); });
    router.attach_interface(1, [this](const Ipv4Packet& p) { out1.push_back(p); });
    router.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);
    router.add_default_route(1);
  }
};

TEST(Router, ForwardsByLongestPrefix) {
  RouterHarness h;
  h.router.handle_packet(udp_packet(kServer, kClient), 1);
  ASSERT_EQ(h.out0.size(), 1u);
  EXPECT_TRUE(h.out1.empty());

  h.router.handle_packet(udp_packet(kClient, kServer), 0);
  ASSERT_EQ(h.out1.size(), 1u);
}

TEST(Router, MoreSpecificRouteWins) {
  RouterHarness h;
  // /32 for one client host overrides the /16.
  h.router.add_route(Ipv4Address(10, 0, 0, 99), 32, 1);
  h.router.handle_packet(udp_packet(kServer, Ipv4Address(10, 0, 0, 99)), 1);
  EXPECT_TRUE(h.out0.empty());
  ASSERT_EQ(h.out1.size(), 1u);
}

TEST(Router, DecrementsTtl) {
  RouterHarness h;
  h.router.handle_packet(udp_packet(kServer, kClient, 10), 1);
  ASSERT_EQ(h.out0.size(), 1u);
  EXPECT_EQ(h.out0[0].header.ttl, 9);
  EXPECT_EQ(h.router.stats().packets_forwarded, 1u);
}

TEST(Router, TtlExpiryGeneratesTimeExceeded) {
  RouterHarness h;
  h.router.handle_packet(udp_packet(kClient, kServer, 1), 0);
  // Nothing forwarded; an ICMP error goes back toward the client (iface 0).
  EXPECT_TRUE(h.out1.empty());
  ASSERT_EQ(h.out0.size(), 1u);
  EXPECT_EQ(h.router.stats().packets_ttl_expired, 1u);

  const Ipv4Packet& icmp_pkt = h.out0[0];
  EXPECT_EQ(icmp_pkt.header.protocol, kIpProtoIcmp);
  EXPECT_EQ(icmp_pkt.header.src, h.router.address());
  EXPECT_EQ(icmp_pkt.header.dst, kClient);

  ByteReader r(icmp_pkt.payload);
  const auto icmp = IcmpHeader::decode(r);
  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->type, IcmpType::kTimeExceeded);

  // RFC 792: quoted original header identifies the offending packet.
  const auto quoted = Ipv4Header::decode(r);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(quoted->dst, kServer);
  EXPECT_EQ(quoted->src, kClient);
}

TEST(Router, NoRouteGeneratesUnreachable) {
  Router router("r", Ipv4Address(10, 1, 0, 1));
  std::vector<Ipv4Packet> out0;
  router.attach_interface(0, [&](const Ipv4Packet& p) { out0.push_back(p); });
  router.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);
  // No default route: 192.168/16 is unroutable.
  router.handle_packet(udp_packet(kClient, kServer), 0);
  EXPECT_EQ(router.stats().packets_no_route, 1u);
  ASSERT_EQ(out0.size(), 1u);
  ByteReader r(out0[0].payload);
  const auto icmp = IcmpHeader::decode(r);
  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->type, IcmpType::kDestinationUnreachable);
}

TEST(Router, AnswersPingToOwnAddress) {
  RouterHarness h;
  IcmpHeader echo;
  echo.type = IcmpType::kEchoRequest;
  echo.identifier = 77;
  echo.sequence = 3;
  const std::vector<std::uint8_t> pad(16, 0xA5);
  const Ipv4Packet request =
      make_icmp_packet(kClient, h.router.address(), echo, pad, 5);

  h.router.handle_packet(request, 0);
  EXPECT_EQ(h.router.stats().packets_delivered_local, 1u);
  ASSERT_EQ(h.out0.size(), 1u);

  ByteReader r(h.out0[0].payload);
  const auto reply = IcmpHeader::decode(r);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, IcmpType::kEchoReply);
  EXPECT_EQ(reply->identifier, 77);
  EXPECT_EQ(reply->sequence, 3);
  // Echo payload is reflected.
  EXPECT_EQ(r.remaining(), pad.size());
}

TEST(Router, MetricBreaksPrefixTies) {
  RouterHarness h;
  // Same prefix on both interfaces: the lower metric is the primary.
  const auto primary = h.router.add_route(Ipv4Address(172, 16, 0, 0), 16, 0, 0);
  h.router.add_route(Ipv4Address(172, 16, 0, 0), 16, 1, 10);
  h.router.handle_packet(udp_packet(kClient, Ipv4Address(172, 16, 0, 9)), 1);
  ASSERT_EQ(h.out0.size(), 1u);

  // Withdrawing the primary promotes the metric-10 backup.
  h.router.withdraw_route(primary);
  EXPECT_TRUE(h.router.route_withdrawn(primary));
  h.router.handle_packet(udp_packet(kClient, Ipv4Address(172, 16, 0, 9)), 0);
  ASSERT_EQ(h.out1.size(), 1u);

  // Restoring converges back to the primary.
  h.router.restore_route(primary);
  h.router.handle_packet(udp_packet(kClient, Ipv4Address(172, 16, 0, 9)), 1);
  EXPECT_EQ(h.out0.size(), 2u);
  EXPECT_EQ(h.out1.size(), 1u);
}

TEST(Router, WithdrawnRouteWithoutBackupIsUnreachable) {
  Router router("r", Ipv4Address(10, 1, 0, 1));
  std::vector<Ipv4Packet> out0;
  router.attach_interface(0, [&](const Ipv4Packet& p) { out0.push_back(p); });
  router.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);
  const auto only = router.add_route(Ipv4Address(172, 16, 0, 0), 16, 0);
  router.withdraw_route(only);
  router.handle_packet(udp_packet(kClient, Ipv4Address(172, 16, 0, 9)), 0);
  EXPECT_EQ(router.stats().packets_no_route, 1u);
  // The emitted packet is the Destination Unreachable toward the client.
  ASSERT_EQ(out0.size(), 1u);
  ByteReader r(out0[0].payload);
  const auto icmp = IcmpHeader::decode(r);
  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->type, IcmpType::kDestinationUnreachable);
}

TEST(Router, RoutesViaReportsInterfaceRoutes) {
  RouterHarness h;  // /16 via 0, default via 1
  const auto extra = h.router.add_route(Ipv4Address(172, 16, 0, 0), 16, 1, 5);
  EXPECT_EQ(h.router.routes_via(0).size(), 1u);
  const auto via1 = h.router.routes_via(1);
  ASSERT_EQ(via1.size(), 2u);
  EXPECT_EQ(via1.back(), extra);
}

TEST(Router, OfflineBlackHolesEverything) {
  RouterHarness h;
  h.router.set_offline(true);
  EXPECT_TRUE(h.router.offline());
  // Forwarding, local delivery and ICMP generation all stop dead.
  h.router.handle_packet(udp_packet(kServer, kClient), 1);
  IcmpHeader echo;
  echo.type = IcmpType::kEchoRequest;
  h.router.handle_packet(
      make_icmp_packet(kClient, h.router.address(), echo, {}, 7), 0);
  EXPECT_TRUE(h.out0.empty());
  EXPECT_TRUE(h.out1.empty());
  EXPECT_EQ(h.router.stats().packets_dropped_offline, 2u);

  // Back online, forwarding resumes.
  h.router.set_offline(false);
  h.router.handle_packet(udp_packet(kServer, kClient), 1);
  EXPECT_EQ(h.out0.size(), 1u);
}

TEST(Router, HealthListenerFiresOncePerTransition) {
  RouterHarness h;
  std::vector<bool> events;
  h.router.set_health_listener([&](bool online) { events.push_back(online); });
  h.router.set_offline(true);
  h.router.set_offline(true);  // idempotent: no second event
  h.router.set_offline(false);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0]);
  EXPECT_TRUE(events[1]);
}

TEST(Router, NeverIcmpErrorsAnIcmpError) {
  // RFC 1122 §3.2.2: an ICMP error about an ICMP error message can ping-pong
  // between routers forever; the error must be suppressed.
  Router router("r", Ipv4Address(10, 1, 0, 1));
  std::vector<Ipv4Packet> out0;
  router.attach_interface(0, [&](const Ipv4Packet& p) { out0.push_back(p); });
  router.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);

  IcmpHeader error;
  error.type = IcmpType::kDestinationUnreachable;
  // 172.16/16 is unroutable here, which would normally produce an error.
  router.handle_packet(
      make_icmp_packet(kClient, Ipv4Address(172, 16, 0, 9), error, {}, 9), 0);
  EXPECT_TRUE(out0.empty());
  EXPECT_EQ(router.stats().icmp_errors_suppressed, 1u);
  EXPECT_EQ(router.stats().icmp_errors_sent, 0u);

  // Informational ICMP (an echo request) is NOT an error message and still
  // elicits Destination Unreachable.
  IcmpHeader echo;
  echo.type = IcmpType::kEchoRequest;
  router.handle_packet(
      make_icmp_packet(kClient, Ipv4Address(172, 16, 0, 9), echo, {}, 10), 0);
  EXPECT_EQ(out0.size(), 1u);
  EXPECT_EQ(router.stats().icmp_errors_sent, 1u);
}

TEST(Router, NeverIcmpErrorsTrailingFragment) {
  // RFC 1122 §3.2.2: only the first fragment of a datagram may trigger an
  // ICMP error, or every fragment of one lost datagram multiplies the error.
  RouterHarness h;
  std::vector<std::uint8_t> big(4000, 0x22);
  auto frags = fragment_packet(
      make_udp_packet(Endpoint{kClient, 1}, Endpoint{Ipv4Address(172, 16, 0, 9), 2},
                      big, 44),
      kDefaultMtu);
  ASSERT_GE(frags.size(), 2u);
  // Route everything through a withdrawn dead end so each fragment is
  // unroutable (RouterHarness has a default route; replace the target).
  Router bare("r2", Ipv4Address(10, 1, 0, 2));
  std::vector<Ipv4Packet> out;
  bare.attach_interface(0, [&](const Ipv4Packet& p) { out.push_back(p); });
  bare.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);
  for (const auto& frag : frags) bare.handle_packet(frag, 0);
  // One error for the first fragment, suppression for every trailing one.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(bare.stats().icmp_errors_sent, 1u);
  EXPECT_EQ(bare.stats().icmp_errors_suppressed, frags.size() - 1);
}

TEST(Router, PingPongStormRegression) {
  // A and B route each other's traffic straight back at each other. A client
  // datagram for an unroutable destination makes B emit one Destination
  // Unreachable, which then ricochets in the A<->B forwarding loop until its
  // TTL expires. The expiry would produce a Time Exceeded *about an ICMP
  // error* — the seed of an unbounded error-about-error storm. The RFC 1122
  // guard suppresses it and the exchange terminates.
  Router a("a", Ipv4Address(10, 9, 0, 1));
  Router b("b", Ipv4Address(10, 9, 0, 2));
  std::size_t volleys = 0;
  bool overflow = false;
  a.attach_interface(0, [&](const Ipv4Packet& p) {
    if (++volleys < 300) b.handle_packet(p, 0);
    else overflow = true;
  });
  b.attach_interface(0, [&](const Ipv4Packet& p) {
    if (++volleys < 300) a.handle_packet(p, 0);
    else overflow = true;
  });
  a.add_default_route(0);
  b.add_route(Ipv4Address(10, 0, 0, 0), 16, 0);  // client via A; 172.16/16 unroutable

  a.handle_packet(udp_packet(kClient, Ipv4Address(172, 16, 0, 9)), 0);

  EXPECT_FALSE(overflow);  // the storm died before the volley cap
  // Exactly one real error (B's unreachable), exactly one suppression (the
  // would-be Time Exceeded about it when its TTL ran out in the loop).
  EXPECT_EQ(a.stats().icmp_errors_sent + b.stats().icmp_errors_sent, 1u);
  EXPECT_EQ(a.stats().icmp_errors_suppressed + b.stats().icmp_errors_suppressed, 1u);
}

TEST(Router, FragmentsForwardIndependently) {
  RouterHarness h;
  std::vector<std::uint8_t> big(4000, 0x22);
  const Ipv4Packet datagram =
      make_udp_packet(Endpoint{kServer, 1}, Endpoint{kClient, 2}, big, 33);
  for (const auto& frag : fragment_packet(datagram, kDefaultMtu))
    h.router.handle_packet(frag, 1);
  EXPECT_EQ(h.out0.size(), 3u);
  for (const auto& p : h.out0) EXPECT_EQ(p.header.identification, 33);
}

}  // namespace
}  // namespace streamlab
