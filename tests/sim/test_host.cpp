#include "sim/host.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fragmentation.hpp"

namespace streamlab {
namespace {

/// Two hosts wired back-to-back through direct callbacks (no link), enough
/// to exercise the host-side UDP/ICMP/fragmentation logic in isolation.
struct HostPair {
  EventLoop loop;
  Host a{loop, "a", Ipv4Address(10, 0, 0, 1)};
  Host b{loop, "b", Ipv4Address(10, 0, 0, 2)};

  HostPair() {
    a.attach_interface([this](const Ipv4Packet& p) {
      loop.schedule_in(Duration::micros(10), [this, p] { b.handle_packet(p, 0); });
    });
    b.attach_interface([this](const Ipv4Packet& p) {
      loop.schedule_in(Duration::micros(10), [this, p] { a.handle_packet(p, 0); });
    });
  }
};

TEST(Host, UdpSendReceive) {
  HostPair hp;
  std::vector<std::uint8_t> received;
  Endpoint from;
  hp.b.udp_bind(7000, [&](std::span<const std::uint8_t> data, Endpoint src, SimTime) {
    received.assign(data.begin(), data.end());
    from = src;
  });

  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  hp.a.udp_send(1234, Endpoint{hp.b.address(), 7000}, payload);
  hp.loop.run();

  EXPECT_EQ(received, payload);
  EXPECT_EQ(from.ip, hp.a.address());
  EXPECT_EQ(from.port, 1234);
  EXPECT_EQ(hp.b.stats().udp_datagrams_received, 1u);
}

TEST(Host, UdpToUnboundPortCounted) {
  HostPair hp;
  hp.a.udp_send(1, Endpoint{hp.b.address(), 9999}, std::vector<std::uint8_t>{1});
  hp.loop.run();
  EXPECT_EQ(hp.b.stats().udp_no_listener, 1u);
}

TEST(Host, UnbindStopsDelivery) {
  HostPair hp;
  int count = 0;
  hp.b.udp_bind(7000, [&](auto, auto, auto) { ++count; });
  hp.a.udp_send(1, Endpoint{hp.b.address(), 7000}, std::vector<std::uint8_t>{1});
  hp.loop.run();
  hp.b.udp_unbind(7000);
  hp.a.udp_send(1, Endpoint{hp.b.address(), 7000}, std::vector<std::uint8_t>{1});
  hp.loop.run();
  EXPECT_EQ(count, 1);
}

TEST(Host, LargeDatagramFragmentsAndReassembles) {
  HostPair hp;
  std::vector<std::uint8_t> received;
  hp.b.udp_bind(7000, [&](std::span<const std::uint8_t> data, Endpoint, SimTime) {
    received.assign(data.begin(), data.end());
  });

  std::vector<std::uint8_t> big(5000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  hp.a.udp_send(1, Endpoint{hp.b.address(), 7000}, big);
  hp.loop.run();

  EXPECT_EQ(received, big);
  // 5008-byte UDP datagram -> 4 IP packets on the wire.
  EXPECT_EQ(hp.a.stats().ip_packets_sent, 4u);
  EXPECT_EQ(hp.a.stats().udp_datagrams_sent, 1u);
  EXPECT_EQ(hp.b.reassembly_stats().fragments_received, 4u);
  EXPECT_EQ(hp.b.reassembly_stats().datagrams_delivered, 1u);
}

TEST(Host, TapSeesFragmentsBeforeReassembly) {
  HostPair hp;
  hp.b.udp_bind(7000, [](auto, auto, auto) {});
  std::vector<std::pair<TapDirection, bool>> taps;  // (direction, is_fragment)
  hp.b.set_tap([&](const Ipv4Packet& p, TapDirection dir, SimTime) {
    taps.emplace_back(dir, p.header.is_fragment());
  });

  hp.a.udp_send(1, Endpoint{hp.b.address(), 7000}, std::vector<std::uint8_t>(3000, 1));
  hp.loop.run();

  // 3008-byte datagram -> 3 fragments, all tapped inbound, all fragments.
  ASSERT_EQ(taps.size(), 3u);
  for (const auto& [dir, frag] : taps) {
    EXPECT_EQ(dir, TapDirection::kInbound);
    EXPECT_TRUE(frag);
  }
}

TEST(Host, TapSeesOutboundTraffic) {
  HostPair hp;
  int outbound = 0;
  hp.a.set_tap([&](const Ipv4Packet&, TapDirection dir, SimTime) {
    outbound += dir == TapDirection::kOutbound;
  });
  hp.a.udp_send(1, Endpoint{hp.b.address(), 7000}, std::vector<std::uint8_t>{1});
  hp.loop.run();
  EXPECT_EQ(outbound, 1);
}

TEST(Host, IgnoresForeignDestination) {
  HostPair hp;
  int taps = 0;
  hp.b.set_tap([&](auto&, auto, auto) { ++taps; });
  const Ipv4Packet foreign = make_udp_packet(Endpoint{hp.a.address(), 1},
                                             Endpoint{Ipv4Address(99, 9, 9, 9), 2},
                                             std::vector<std::uint8_t>{1}, 1);
  hp.b.handle_packet(foreign, 0);
  hp.loop.run();
  EXPECT_EQ(taps, 0);
}

TEST(Host, RespondsToEchoRequest) {
  HostPair hp;
  int replies = 0;
  Duration rtt;
  hp.a.set_icmp_handler([&](const IcmpHeader& icmp, const Ipv4Header& ip,
                            std::span<const std::uint8_t>, SimTime when) {
    if (icmp.type == IcmpType::kEchoReply) {
      ++replies;
      EXPECT_EQ(ip.src, hp.b.address());
      EXPECT_EQ(icmp.identifier, 42);
      EXPECT_EQ(icmp.sequence, 1);
      rtt = when - SimTime::zero();
    }
  });
  hp.a.send_icmp_echo(hp.b.address(), 42, 1);
  hp.loop.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(rtt, Duration::micros(20));  // two 10 us one-way hops
}

TEST(Host, EchoRequestsDoNotReachIcmpHandler) {
  // The echo responder consumes requests internally; only errors and
  // replies surface to the handler.
  HostPair hp;
  int handler_calls = 0;
  hp.b.set_icmp_handler([&](auto&, auto&, auto, auto) { ++handler_calls; });
  hp.a.send_icmp_echo(hp.b.address(), 1, 1);
  hp.loop.run();
  EXPECT_EQ(handler_calls, 0);
}

TEST(Host, DistinctMacsPerHost) {
  EventLoop loop;
  Host h1(loop, "h1", Ipv4Address(1, 1, 1, 1));
  Host h2(loop, "h2", Ipv4Address(2, 2, 2, 2));
  EXPECT_NE(h1.mac(), h2.mac());
}

TEST(Host, CustomMtuFragmentsAccordingly) {
  EventLoop loop;
  Host small_mtu(loop, "s", Ipv4Address(1, 1, 1, 1), /*mtu=*/576);
  std::vector<std::size_t> sizes;
  small_mtu.attach_interface(
      [&](const Ipv4Packet& p) { sizes.push_back(p.total_length()); });
  small_mtu.udp_send(1, Endpoint{Ipv4Address(2, 2, 2, 2), 2},
                     std::vector<std::uint8_t>(1200, 0));
  loop.run();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_LE(sizes[0], 576u);
  EXPECT_LE(sizes[1], 576u);
}

}  // namespace
}  // namespace streamlab
