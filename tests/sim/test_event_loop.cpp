#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace streamlab {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), SimTime::zero());
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  loop.schedule_at(SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  loop.schedule_at(SimTime::from_seconds(2.0), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime::from_seconds(3.0));
}

TEST(EventLoop, SameInstantFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1.0);
  for (int i = 0; i < 10; ++i) loop.schedule_at(t, [&, i] { order.push_back(i); });
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  SimTime seen;
  loop.schedule_in(Duration::millis(250), [&] { seen = loop.now(); });
  loop.run();
  EXPECT_EQ(seen, SimTime::from_seconds(0.25));
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) loop.schedule_in(Duration::millis(10), chain);
  };
  loop.schedule_in(Duration::millis(10), chain);
  loop.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(loop.now(), SimTime::from_seconds(0.05));
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.schedule_at(SimTime::from_seconds(1.0), [] {});
  loop.run();
  bool fired = false;
  loop.schedule_at(SimTime::from_seconds(0.5), [&] { fired = true; });  // in the past
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), SimTime::from_seconds(1.0));  // time never goes back
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  loop.schedule_at(SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  const auto n = loop.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_EQ(loop.now(), SimTime::from_seconds(2.0));  // advances to deadline
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoop, RunUntilIncludesDeadlineInstant) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_at(SimTime::from_seconds(2.0), [&] { fired = true; });
  loop.run_until(SimTime::from_seconds(2.0));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, RunLimitCapsExecution) {
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    loop.schedule_in(Duration::millis(i), [&] { ++fired; });
  EXPECT_EQ(loop.run(4), 4u);
  EXPECT_EQ(fired, 4);
  loop.run();
  EXPECT_EQ(fired, 10);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  auto handle = loop.schedule_in(Duration::millis(5), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelFromInsideEarlierEvent) {
  EventLoop loop;
  bool fired = false;
  auto victim = loop.schedule_in(Duration::millis(10), [&] { fired = true; });
  loop.schedule_in(Duration::millis(5), [&] { victim.cancel(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventLoop, ExecutedEventsCounter) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule_in(Duration::millis(i), [] {});
  loop.run();
  EXPECT_EQ(loop.executed_events(), 7u);
}

TEST(EventLoop, CancelAfterFiringIsHarmless) {
  EventLoop loop;
  int fired = 0;
  auto handle = loop.schedule_in(Duration::millis(5), [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  // The event already fired: the handle is no longer pending and cancelling
  // it must neither crash nor un-count the execution.
  EXPECT_FALSE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.executed_events(), 1u);
}

TEST(EventLoop, RunUntilEmptyQueueAdvancesClockToDeadline) {
  EventLoop loop;
  EXPECT_TRUE(loop.empty());
  const auto n = loop.run_until(SimTime::from_seconds(7.5));
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(loop.now(), SimTime::from_seconds(7.5));
  // A second empty run with an earlier deadline never moves time backwards.
  loop.run_until(SimTime::from_seconds(3.0));
  EXPECT_EQ(loop.now(), SimTime::from_seconds(7.5));
}

TEST(EventLoop, SameInstantOrderingSurvivesCancellation) {
  EventLoop loop;
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1.0);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 6; ++i)
    handles.push_back(loop.schedule_at(t, [&, i] { order.push_back(i); }));
  // Cancel every other event; survivors must still fire in schedule order.
  handles[1].cancel();
  handles[3].cancel();
  handles[5].cancel();
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(loop.executed_events(), 3u);
  EXPECT_EQ(loop.now(), t);
}

TEST(EventLoop, CancelledHeadDoesNotBlockDeadline) {
  // A cancelled event sitting at the head of the queue must be skipped
  // without executing and without disturbing later events' times.
  EventLoop loop;
  bool late_fired = false;
  auto head = loop.schedule_in(Duration::millis(1), [] {});
  loop.schedule_in(Duration::millis(10), [&] { late_fired = true; });
  head.cancel();
  const auto n = loop.run_until(SimTime::from_seconds(0.005));
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(late_fired);
  loop.run();
  EXPECT_TRUE(late_fired);
}

TEST(EventLoop, StressManyEventsStayOrdered) {
  EventLoop loop;
  SimTime last;
  int count = 0;
  for (int i = 0; i < 10000; ++i) {
    // Pseudo-random but deterministic times.
    const auto ms = (i * 7919) % 10000;
    loop.schedule_at(SimTime(static_cast<std::int64_t>(ms) * 1'000'000), [&] {
      EXPECT_GE(loop.now(), last);
      last = loop.now();
      ++count;
    });
  }
  loop.run();
  EXPECT_EQ(count, 10000);
}

TEST(EventLoop, CancelledEventsLeaveCountTruthful) {
  // Regression: cancellation leaves the event queued (purged lazily), but
  // empty() / pending_events() must reflect live events only.
  EventLoop loop;
  auto a = loop.schedule_in(Duration::millis(1), [] {});
  auto b = loop.schedule_in(Duration::millis(2), [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  EXPECT_FALSE(loop.empty());
  a.cancel();
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_FALSE(loop.empty());
  b.cancel();
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_TRUE(loop.empty());
  a.cancel();  // double cancel must not underflow the count
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.run(), 0u);
}

TEST(EventLoop, SelfCancelDuringFireKeepsCountBalanced) {
  // An event cancelling its own handle while firing must decrement exactly
  // once.
  EventLoop loop;
  EventHandle self;
  self = loop.schedule_in(Duration::millis(1), [&] { self.cancel(); });
  auto later = loop.schedule_in(Duration::millis(2), [] {});
  loop.run(1);
  EXPECT_EQ(loop.pending_events(), 1u);
  later.cancel();
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, PendingCountTracksFiring) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule_in(Duration::millis(i + 1), [] {});
  EXPECT_EQ(loop.pending_events(), 5u);
  loop.run(2);
  EXPECT_EQ(loop.pending_events(), 3u);
  loop.run();
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, ThrowingCallbackLeavesBookkeepingConsistent) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime::from_seconds(1.0),
                   [] { throw std::runtime_error("boom"); });
  loop.schedule_at(SimTime::from_seconds(2.0), [&] { ++fired; });
  EXPECT_THROW(loop.run(), std::runtime_error);
  // The throwing event counts as fired and is no longer pending.
  EXPECT_EQ(loop.executed_events(), 1u);
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_EQ(loop.now(), SimTime::from_seconds(1.0));
  // The loop stays usable: a further run() continues with the next event.
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.executed_events(), 2u);
}

TEST(EventLoop, CancelAfterThrowIsNoop) {
  EventLoop loop;
  auto handle = loop.schedule_in(Duration::millis(1),
                                 [] { throw std::runtime_error("boom"); });
  loop.schedule_in(Duration::millis(2), [] {});
  EXPECT_THROW(loop.run(), std::runtime_error);
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not decrement the live count a second time
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, BudgetedRunUntilStopsWithoutClockCatchUp) {
  EventLoop loop;
  for (int i = 1; i <= 5; ++i) loop.schedule_at(SimTime::from_seconds(i), [] {});
  const SimTime deadline = SimTime::from_seconds(10.0);
  // Budget truncation: the clock stays where the last event fired, so the
  // run can be resumed with a further call.
  EXPECT_EQ(loop.run_until(deadline, 2), 2u);
  EXPECT_EQ(loop.now(), SimTime::from_seconds(2.0));
  EXPECT_EQ(loop.pending_events(), 3u);
  // Drained below the budget: the clock catches up to the deadline.
  EXPECT_EQ(loop.run_until(deadline, 100), 3u);
  EXPECT_EQ(loop.now(), deadline);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, BudgetedRunUntilRespectsDeadlineOverBudget) {
  EventLoop loop;
  loop.schedule_at(SimTime::from_seconds(1.0), [] {});
  loop.schedule_at(SimTime::from_seconds(20.0), [] {});
  EXPECT_EQ(loop.run_until(SimTime::from_seconds(10.0), 100), 1u);
  EXPECT_EQ(loop.now(), SimTime::from_seconds(10.0));
  EXPECT_EQ(loop.pending_events(), 1u);
}

}  // namespace
}  // namespace streamlab
