// Fault-injection layer: Gilbert–Elliott chain statistics, the per-link
// impairment hook, and FaultScheduler episode semantics/accounting.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/network.hpp"

namespace streamlab {
namespace {

const Endpoint kA{Ipv4Address(10, 0, 0, 1), 1};
const Endpoint kB{Ipv4Address(10, 0, 0, 2), 2};

class SinkNode : public Node {
 public:
  SinkNode(std::string name, EventLoop& loop) : Node(std::move(name)), loop_(loop) {}
  void handle_packet(const Ipv4Packet&, int) override {
    arrivals.push_back(loop_.now());
  }
  std::vector<SimTime> arrivals;

 private:
  EventLoop& loop_;
};

Ipv4Packet small_packet(std::uint16_t id, std::size_t payload = 100) {
  std::vector<std::uint8_t> data(payload, 0xAB);
  return make_udp_packet(kA, kB, data, id);
}

struct FaultFixture {
  EventLoop loop;
  SinkNode a{"a", loop};
  SinkNode b{"b", loop};

  std::unique_ptr<Link> make(LinkConfig config, std::uint64_t seed = 1) {
    return std::make_unique<Link>(loop, Rng(seed), config, a, 0, b, 0);
  }
};

// --- Gilbert–Elliott chain ---

TEST(GilbertElliott, MatchesStationaryLossRate) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.02;
  cfg.p_bad_to_good = 0.25;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.8;
  // pi_bad = 0.02 / 0.27 ~= 0.074; mean loss ~= 5.93%.
  EXPECT_NEAR(cfg.stationary_bad(), 0.0741, 1e-3);
  EXPECT_NEAR(cfg.mean_loss(), 0.0593, 1e-3);

  GilbertElliottLoss chain(cfg);
  Rng rng(12345);
  const int kPackets = 200000;
  int drops = 0;
  for (int i = 0; i < kPackets; ++i)
    if (chain.drop(rng)) ++drops;
  const double measured = static_cast<double>(drops) / kPackets;
  EXPECT_NEAR(measured, cfg.mean_loss(), 0.006);
}

TEST(GilbertElliott, LossesArriveInBurstsUnlikeBernoulli) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.02;
  cfg.p_bad_to_good = 0.25;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.8;

  GilbertElliottLoss chain(cfg);
  Rng rng(99);
  const int kPackets = 200000;
  std::vector<bool> lost(kPackets);
  int drops = 0;
  for (int i = 0; i < kPackets; ++i) {
    lost[static_cast<std::size_t>(i)] = chain.drop(rng);
    if (lost[static_cast<std::size_t>(i)]) ++drops;
  }
  // Conditional loss probability P(loss | previous lost): for independent
  // Bernoulli at the same mean (~6%) this equals the mean; the chain stays
  // in the BAD state so it is an order of magnitude higher.
  int pairs = 0, both = 0;
  for (int i = 1; i < kPackets; ++i) {
    if (lost[static_cast<std::size_t>(i - 1)]) {
      ++pairs;
      if (lost[static_cast<std::size_t>(i)]) ++both;
    }
  }
  ASSERT_GT(pairs, 0);
  const double conditional = static_cast<double>(both) / pairs;
  const double mean = static_cast<double>(drops) / kPackets;
  EXPECT_GT(conditional, 5.0 * mean);
  // Theory: P(loss|loss) = p_stay_bad * loss_bad = 0.75 * 0.8 = 0.6.
  EXPECT_NEAR(conditional, 0.6, 0.05);
}

TEST(GilbertElliott, EmpiricalLossConvergesToStationaryWeightedRate) {
  // Stationarity: the chain's empirical loss rate converges to the
  // transition-weighted mixture pi_good * loss_good + pi_bad * loss_bad,
  // with pi_bad = p_g2b / (p_g2b + p_b2g). Unlike the test above, both
  // states lose here, so the weighting of *each* term is checked — a chain
  // that got the stationary split wrong could not land on this mixture.
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.05;
  cfg.p_bad_to_good = 0.25;
  cfg.loss_good = 0.01;
  cfg.loss_bad = 0.6;
  const double pi_bad = cfg.p_good_to_bad / (cfg.p_good_to_bad + cfg.p_bad_to_good);
  const double expected = (1.0 - pi_bad) * cfg.loss_good + pi_bad * cfg.loss_bad;
  EXPECT_NEAR(cfg.stationary_bad(), pi_bad, 1e-12);
  EXPECT_NEAR(cfg.mean_loss(), expected, 1e-12);

  // Fixed seed; error must shrink as the sample grows (convergence), and
  // the largest sample must sit within a 3-sigma-ish band of the mixture.
  GilbertElliottLoss chain(cfg);
  Rng rng(2002);
  int drops = 0, sampled = 0;
  double error_small = 0.0, error_large = 0.0;
  const int kSmall = 2000, kLarge = 500000;
  for (; sampled < kLarge; ++sampled) {
    if (sampled == kSmall)
      error_small =
          std::abs(static_cast<double>(drops) / kSmall - expected);
    if (chain.drop(rng)) ++drops;
  }
  error_large = std::abs(static_cast<double>(drops) / kLarge - expected);
  EXPECT_LT(error_large, error_small + 1e-9);
  // Bursty samples are correlated, so the variance of the mean is inflated
  // well past the Bernoulli sigma; 0.005 absolute is ~6x that sigma.
  EXPECT_NEAR(static_cast<double>(drops) / kLarge, expected, 0.005);
}

TEST(GilbertElliott, DeterministicAcrossRuns) {
  GilbertElliottConfig cfg;
  auto run = [&] {
    GilbertElliottLoss chain(cfg);
    Rng rng(7);
    std::vector<bool> out;
    for (int i = 0; i < 1000; ++i) out.push_back(chain.drop(rng));
    return out;
  };
  EXPECT_EQ(run(), run());
}

// --- Link impairment hook ---

TEST(LinkImpairment, OutageDropsEverythingAndCountsSeparately) {
  FaultFixture f;
  auto link = f.make(LinkConfig{});
  LinkImpairment imp;
  imp.outage = true;
  link->set_impairment(imp);

  for (std::uint16_t i = 0; i < 10; ++i) link->send_from_a(small_packet(i));
  f.loop.run();

  EXPECT_TRUE(f.b.arrivals.empty());
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_outage, 10u);
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_loss, 0u);
  EXPECT_EQ(link->impairment_drops(), 10u);

  link->clear_impairment();
  link->send_from_a(small_packet(99));
  f.loop.run();
  EXPECT_EQ(f.b.arrivals.size(), 1u);
}

TEST(LinkImpairment, BandwidthOverrideSlowsSerialization) {
  FaultFixture f;
  LinkConfig cfg;
  cfg.bandwidth = BitRate::mbps(10);
  cfg.propagation = Duration::millis(1);
  auto link = f.make(cfg);

  link->send_from_a(small_packet(1));  // 142 wire bytes
  f.loop.run();
  ASSERT_EQ(f.b.arrivals.size(), 1u);
  const Duration unimpaired = f.b.arrivals[0] - SimTime::zero();
  EXPECT_EQ(unimpaired.ns(),
            (BitRate::mbps(10).transmission_time(142) + Duration::millis(1)).ns());

  LinkImpairment imp;
  imp.bandwidth = BitRate::kbps(100);  // 100x slower serialization
  link->set_impairment(imp);
  const SimTime sent_at = f.loop.now();
  link->send_from_a(small_packet(2));
  f.loop.run();
  ASSERT_EQ(f.b.arrivals.size(), 2u);
  const Duration impaired = f.b.arrivals[1] - sent_at;
  EXPECT_EQ(impaired.ns(),
            (BitRate::kbps(100).transmission_time(142) + Duration::millis(1)).ns());
}

TEST(LinkImpairment, ExtraDelayAddsToPropagation) {
  FaultFixture f;
  LinkConfig cfg;
  cfg.propagation = Duration::millis(2);
  auto link = f.make(cfg);

  link->send_from_a(small_packet(1));
  f.loop.run();
  ASSERT_EQ(f.b.arrivals.size(), 1u);
  const Duration base = f.b.arrivals[0] - SimTime::zero();

  LinkImpairment imp;
  imp.extra_delay = Duration::millis(150);
  link->set_impairment(imp);
  const SimTime sent_at = f.loop.now();
  link->send_from_a(small_packet(2));
  f.loop.run();
  const Duration slowed = f.b.arrivals[1] - sent_at;
  EXPECT_EQ((slowed - base).ns(), Duration::millis(150).ns());
}

TEST(LinkImpairment, LossModelOverridesIndependentLoss) {
  FaultFixture f;
  LinkConfig cfg;
  cfg.loss_probability = 0.0;
  auto link = f.make(cfg);

  // A loss model that drops every second packet.
  int counter = 0;
  LinkImpairment imp;
  imp.loss_model = [&counter](Rng&) { return (counter++ % 2) == 0; };
  link->set_impairment(imp);

  for (std::uint16_t i = 0; i < 10; ++i) link->send_from_a(small_packet(i));
  f.loop.run();
  EXPECT_EQ(f.b.arrivals.size(), 5u);
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_burst, 5u);
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_loss, 0u);
}

// --- FaultScheduler ---

TEST(FaultScheduler, AppliesAndClearsEpisodeOnSchedule) {
  FaultFixture f;
  auto link = f.make(LinkConfig{});
  FaultScheduler faults(f.loop, *link);
  faults.add_outage(SimTime::from_seconds(1.0), Duration::seconds(2));
  faults.arm();

  // Before: passes. During: dropped. After: passes again.
  auto send_at = [&](double t, std::uint16_t id) {
    f.loop.schedule_at(SimTime::from_seconds(t),
                       [&, id] { link->send_from_a(small_packet(id)); });
  };
  send_at(0.5, 1);
  send_at(2.0, 2);
  send_at(2.5, 3);
  send_at(3.5, 4);
  f.loop.run();

  EXPECT_EQ(f.b.arrivals.size(), 2u);
  EXPECT_FALSE(link->impaired());
  ASSERT_EQ(faults.records().size(), 1u);
  const auto& rec = faults.records()[0];
  EXPECT_TRUE(rec.applied);
  EXPECT_TRUE(rec.cleared);
  EXPECT_EQ(rec.packets_dropped, 2u);
  EXPECT_EQ(faults.total_episode_drops(), 2u);
  EXPECT_EQ(faults.active_episode(), -1);
}

TEST(FaultScheduler, BurstLossEpisodeUsesGilbertElliott) {
  FaultFixture f;
  auto link = f.make(LinkConfig{});
  FaultScheduler faults(f.loop, *link);
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 1.0;  // always BAD
  ge.p_bad_to_good = 0.0;
  ge.loss_bad = 1.0;       // drop everything while BAD
  faults.add_burst_loss(SimTime::from_seconds(1.0), Duration::seconds(1), ge);
  faults.arm();

  auto send_at = [&](double t, std::uint16_t id) {
    f.loop.schedule_at(SimTime::from_seconds(t),
                       [&, id] { link->send_from_a(small_packet(id)); });
  };
  send_at(0.5, 1);   // before: delivered
  send_at(1.5, 2);   // during: dropped by the chain
  send_at(1.6, 3);   // during: dropped by the chain
  send_at(2.5, 4);   // after: delivered
  f.loop.run();

  EXPECT_EQ(f.b.arrivals.size(), 2u);
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_burst, 2u);
  EXPECT_EQ(faults.records()[0].packets_dropped, 2u);
}

TEST(FaultScheduler, LaterEpisodePreemptsEarlierOne) {
  FaultFixture f;
  auto link = f.make(LinkConfig{});
  FaultScheduler faults(f.loop, *link);
  // Episode A [1, 5): random loss 100%. Episode B [2, 3): outage. A's end
  // event at t=5 must not clear B or the baseline restored at t=3.
  faults.add_random_loss(SimTime::from_seconds(1.0), Duration::seconds(4), 1.0, "A");
  faults.add_outage(SimTime::from_seconds(2.0), Duration::seconds(1), "B");
  faults.arm();

  auto send_at = [&](double t, std::uint16_t id) {
    f.loop.schedule_at(SimTime::from_seconds(t),
                       [&, id] { link->send_from_a(small_packet(id)); });
  };
  send_at(1.5, 1);   // in A: dropped (loss)
  send_at(2.5, 2);   // in B: dropped (outage)
  send_at(3.5, 3);   // B ended and cleared the link: delivered
  send_at(6.0, 4);   // after everything: delivered
  f.loop.run();

  EXPECT_EQ(f.b.arrivals.size(), 2u);
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_loss, 1u);
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_outage, 1u);
  EXPECT_FALSE(link->impaired());
  EXPECT_EQ(faults.records()[0].packets_dropped, 1u);  // A's window
  EXPECT_EQ(faults.records()[1].packets_dropped, 1u);  // B's window
}

TEST(FaultScheduler, BandwidthEpisodeNotBlamedForBaselineLoss) {
  FaultFixture f;
  LinkConfig cfg;
  cfg.loss_probability = 1.0;  // every packet dies to *baseline* random loss
  auto link = f.make(cfg);
  FaultScheduler faults(f.loop, *link);
  faults.add_bandwidth(SimTime::from_seconds(1.0), Duration::seconds(2),
                       BitRate::mbps(1));
  faults.arm();

  f.loop.schedule_at(SimTime::from_seconds(1.5),
                     [&] { link->send_from_a(small_packet(1)); });
  f.loop.run();

  // The drop happened during the episode but came from the baseline config;
  // a bandwidth episode has no loss mechanism of its own to attribute it to.
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_loss, 1u);
  EXPECT_EQ(faults.records()[0].packets_dropped, 0u);
  EXPECT_EQ(faults.total_episode_drops(), 0u);
}

TEST(FaultScheduler, EpisodeCoversHelper) {
  FaultEpisode e;
  e.start = SimTime::from_seconds(10.0);
  e.duration = Duration::seconds(5);
  EXPECT_FALSE(e.covers(SimTime::from_seconds(9.999)));
  EXPECT_TRUE(e.covers(SimTime::from_seconds(10.0)));
  EXPECT_TRUE(e.covers(SimTime::from_seconds(14.999)));
  EXPECT_FALSE(e.covers(SimTime::from_seconds(15.0)));
}

// --- Router failure injection (FaultKind::kRouterDown) ---

TEST(FaultKindNames, CoversEveryKind) {
  EXPECT_STREQ(to_string(FaultKind::kOutage), "outage");
  EXPECT_STREQ(to_string(FaultKind::kRouterDown), "router-down");
}

PathConfig quiet_chain() {
  PathConfig cfg;
  cfg.hop_count = 8;
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = 0.0;
  return cfg;
}

TEST(FaultScheduler, RouterDownAppliesAndClearsOnSchedule) {
  Network net(quiet_chain());
  Host& server = net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_router_down(SimTime::from_seconds(1.0), Duration::seconds(1), 3);
  faults.arm();

  int received = 0;
  server.udp_bind(5000, [&](auto, auto, auto) { ++received; });
  auto send_at = [&](double t) {
    net.loop().schedule_at(SimTime::from_seconds(t), [&] {
      net.client().udp_send(6000, Endpoint{server.address(), 5000},
                            std::vector<std::uint8_t>{1});
    });
  };
  send_at(0.5);  // before: delivered
  send_at(1.5);  // during: swallowed by the offline router
  send_at(2.5);  // after: delivered again
  net.loop().run();

  EXPECT_EQ(received, 2);
  EXPECT_FALSE(net.router(3).offline());
  ASSERT_EQ(faults.records().size(), 1u);
  const auto& rec = faults.records()[0];
  EXPECT_TRUE(rec.applied);
  EXPECT_TRUE(rec.cleared);
  EXPECT_EQ(rec.packets_dropped, 1u);
  EXPECT_EQ(net.router(3).stats().packets_dropped_offline, 1u);
}

TEST(FaultScheduler, RouterDownRunsInParallelWithLinkEpisode) {
  // A router failure neither pre-empts nor is pre-empted by a concurrent
  // link impairment: both episodes apply and clear on their own schedules.
  Network net(quiet_chain());
  net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_outage(SimTime::from_seconds(1.0), Duration::seconds(2));
  faults.add_router_down(SimTime::from_seconds(1.5), Duration::seconds(1), 3);
  faults.arm();

  bool both_active = false;
  net.loop().schedule_at(SimTime::from_seconds(2.0), [&] {
    both_active = net.bottleneck_link().impaired() && net.router(3).offline();
  });
  net.loop().run();

  EXPECT_TRUE(both_active);
  EXPECT_FALSE(net.bottleneck_link().impaired());
  EXPECT_FALSE(net.router(3).offline());
  for (const auto& rec : faults.records()) {
    EXPECT_TRUE(rec.applied);
    EXPECT_TRUE(rec.cleared);
  }
}

TEST(FaultScheduler, OverlappingRouterDownsNest) {
  // Two episodes on one router: it returns online only when the last ends.
  Network net(quiet_chain());
  net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_router_down(SimTime::from_seconds(1.0), Duration::seconds(2), 3);
  faults.add_router_down(SimTime::from_seconds(2.0), Duration::seconds(2), 3);
  faults.arm();

  bool offline_between_ends = false, online_after_both = true;
  net.loop().schedule_at(SimTime::from_seconds(3.5),
                         [&] { offline_between_ends = net.router(3).offline(); });
  net.loop().schedule_at(SimTime::from_seconds(4.5),
                         [&] { online_after_both = net.router(3).offline(); });
  net.loop().run();

  EXPECT_TRUE(offline_between_ends);
  EXPECT_FALSE(online_after_both);
}

TEST(FaultScheduler, FinishSettlesDanglingRouterDown) {
  // A budget truncation can stop the loop mid-episode; finish() must close
  // the accounting and put the router back online.
  Network net(quiet_chain());
  net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_router_down(SimTime::from_seconds(1.0), Duration::seconds(100), 3);
  faults.arm();
  net.loop().run_until(SimTime::from_seconds(2.0));

  EXPECT_TRUE(net.router(3).offline());
  faults.finish();
  EXPECT_FALSE(net.router(3).offline());
  ASSERT_EQ(faults.records().size(), 1u);
  EXPECT_TRUE(faults.records()[0].applied);
  EXPECT_TRUE(faults.records()[0].cleared);
}

PathConfig quiet_detour_chain() {
  PathConfig cfg = quiet_chain();
  cfg.detour = DetourConfig{3, 4, 2, 10};
  return cfg;
}

TEST(FaultScheduler, DetourDownTargetsBranchRouterOnly) {
  // add_detour_down takes a *detour-branch* router offline; the chain
  // router with the same index is untouched, so primary-addressed traffic
  // keeps flowing while the bypass is dark.
  Network net(quiet_detour_chain());
  Host& server = net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_detour_down(SimTime::from_seconds(1.0), Duration::seconds(1), 0);
  faults.arm();

  int received = 0;
  server.udp_bind(5000, [&](auto, auto, auto) { ++received; });
  bool chain_online_mid_episode = false;
  net.loop().schedule_at(SimTime::from_seconds(1.5), [&] {
    chain_online_mid_episode =
        !net.router(0).offline() && net.detour_router(0).offline();
    net.client().udp_send(6000, Endpoint{server.address(), 5000},
                          std::vector<std::uint8_t>{1});
  });
  net.loop().run();

  EXPECT_TRUE(chain_online_mid_episode);
  EXPECT_EQ(received, 1);  // chain path unaffected
  EXPECT_FALSE(net.detour_router(0).offline());
  ASSERT_EQ(faults.records().size(), 1u);
  EXPECT_TRUE(faults.records()[0].applied);
  EXPECT_TRUE(faults.records()[0].cleared);
}

TEST(FaultScheduler, AlternatingChainAndDetourFlapsStayIndependent) {
  // A true flap schedule: overlapping/alternating kRouterDown episodes on a
  // chain router and both detour-branch routers in one scenario. The depth
  // maps must never alias — chain index 0 and detour index 0 are different
  // routers — and each router returns online exactly when its own last
  // episode ends.
  Network net(quiet_detour_chain());
  net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  // Chain router 0 down [1, 4); detour router 0 down [2, 3) and again
  // overlapping [2.5, 5); detour router 1 down [3.5, 4.5).
  faults.add_router_down(SimTime::from_seconds(1.0), Duration::seconds(3), 0);
  faults.add_detour_down(SimTime::from_seconds(2.0), Duration::seconds(1), 0);
  faults.add_detour_down(SimTime::from_seconds(2.5), Duration::from_seconds(2.5), 0);
  faults.add_detour_down(SimTime::from_seconds(3.5), Duration::from_seconds(1.0), 1);
  faults.arm();

  struct Snapshot {
    bool chain0, detour0, detour1;
  };
  std::vector<Snapshot> snaps;
  for (const double t : {2.2, 3.2, 4.2, 4.7, 5.2}) {
    net.loop().schedule_at(SimTime::from_seconds(t), [&] {
      snaps.push_back({net.router(0).offline(), net.detour_router(0).offline(),
                       net.detour_router(1).offline()});
    });
  }
  net.loop().run();

  ASSERT_EQ(snaps.size(), 5u);
  // t=2.2: chain 0 and detour 0 both down, independently.
  EXPECT_TRUE(snaps[0].chain0);
  EXPECT_TRUE(snaps[0].detour0);
  EXPECT_FALSE(snaps[0].detour1);
  // t=3.2: detour 0's first episode ended but the overlapping one holds it.
  EXPECT_TRUE(snaps[1].chain0);
  EXPECT_TRUE(snaps[1].detour0);
  // t=4.2: chain 0 recovered at 4.0; detour 0 still down, detour 1 down.
  EXPECT_FALSE(snaps[2].chain0);
  EXPECT_TRUE(snaps[2].detour0);
  EXPECT_TRUE(snaps[2].detour1);
  // t=4.7: detour 1 recovered at 4.5, detour 0 still held until 5.0.
  EXPECT_TRUE(snaps[3].detour0);
  EXPECT_FALSE(snaps[3].detour1);
  // t=5.2: everything back online.
  EXPECT_FALSE(snaps[4].chain0);
  EXPECT_FALSE(snaps[4].detour0);
  EXPECT_FALSE(snaps[4].detour1);
  for (const auto& rec : faults.records()) {
    EXPECT_TRUE(rec.applied);
    EXPECT_TRUE(rec.cleared);
  }
}

TEST(FaultScheduler, FinishSettlesDanglingDetourEpisodes) {
  // Budget truncation mid-flap: finish() must settle detour episodes through
  // the same open-router path as chain episodes, restoring both branches.
  Network net(quiet_detour_chain());
  net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_router_down(SimTime::from_seconds(1.0), Duration::seconds(100), 3);
  faults.add_detour_down(SimTime::from_seconds(1.0), Duration::seconds(100), 1);
  faults.arm();
  net.loop().run_until(SimTime::from_seconds(2.0));

  EXPECT_TRUE(net.router(3).offline());
  EXPECT_TRUE(net.detour_router(1).offline());
  faults.finish();
  EXPECT_FALSE(net.router(3).offline());
  EXPECT_FALSE(net.detour_router(1).offline());
  for (const auto& rec : faults.records()) {
    EXPECT_TRUE(rec.applied);
    EXPECT_TRUE(rec.cleared);
  }
}

TEST(FaultScheduler, DetourDownOutOfRangeIsSettledNoop) {
  // detour_hop_count bounds detour episodes; an index past the branch is
  // unschedulable and settles immediately instead of dangling.
  Network net(quiet_detour_chain());
  net.add_server("srv");
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  faults.add_detour_down(SimTime::from_seconds(1.0), Duration::seconds(1), 7);
  faults.arm();
  net.loop().run();
  ASSERT_EQ(faults.records().size(), 1u);
  EXPECT_TRUE(faults.records()[0].applied);
  EXPECT_TRUE(faults.records()[0].cleared);
  EXPECT_EQ(faults.records()[0].packets_dropped, 0u);
}

TEST(FaultScheduler, RouterDownWithoutNetworkIsSettledNoop) {
  // The 2-arg constructor has no network handle: a router-down episode is
  // unschedulable and must settle immediately rather than dangle.
  FaultFixture f;
  auto link = f.make(LinkConfig{});
  FaultScheduler faults(f.loop, *link);
  faults.add_router_down(SimTime::from_seconds(1.0), Duration::seconds(1), 3);
  faults.arm();
  f.loop.run();
  ASSERT_EQ(faults.records().size(), 1u);
  EXPECT_TRUE(faults.records()[0].applied);
  EXPECT_TRUE(faults.records()[0].cleared);
  EXPECT_EQ(faults.records()[0].packets_dropped, 0u);
}

}  // namespace
}  // namespace streamlab
