#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace streamlab {
namespace {

const Endpoint kA{Ipv4Address(10, 0, 0, 1), 1};
const Endpoint kB{Ipv4Address(10, 0, 0, 2), 2};

/// Records every delivery with its timestamp.
class SinkNode : public Node {
 public:
  SinkNode(std::string name, EventLoop& loop) : Node(std::move(name)), loop_(loop) {}

  void handle_packet(const Ipv4Packet& packet, int iface) override {
    deliveries.push_back({loop_.now(), packet, iface});
  }

  struct Delivery {
    SimTime when;
    Ipv4Packet packet;
    int iface;
  };
  std::vector<Delivery> deliveries;

 private:
  EventLoop& loop_;
};

Ipv4Packet small_packet(std::uint16_t id, std::size_t payload = 100) {
  std::vector<std::uint8_t> data(payload, 0xAB);
  return make_udp_packet(kA, kB, data, id);
}

struct LinkFixture {
  EventLoop loop;
  SinkNode a{"a", loop};
  SinkNode b{"b", loop};

  std::unique_ptr<Link> make(LinkConfig config, std::uint64_t seed = 1) {
    return std::make_unique<Link>(loop, Rng(seed), config, a, 0, b, 0);
  }
};

TEST(Link, DeliversWithSerializationPlusPropagation) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.bandwidth = BitRate::mbps(10);
  cfg.propagation = Duration::millis(5);
  auto link = f.make(cfg);

  const Ipv4Packet pkt = small_packet(1);  // 100 + 8 + 20 + 14 = 142 wire bytes
  link->send_from_a(pkt);
  f.loop.run();

  ASSERT_EQ(f.b.deliveries.size(), 1u);
  const Duration expected_tx = BitRate::mbps(10).transmission_time(142);
  EXPECT_EQ(f.b.deliveries[0].when, SimTime::zero() + expected_tx + Duration::millis(5));
  EXPECT_EQ(f.b.deliveries[0].packet.header.identification, 1);
  EXPECT_TRUE(f.a.deliveries.empty());
}

TEST(Link, FullDuplexBothDirections) {
  LinkFixture f;
  auto link = f.make(LinkConfig{});
  link->send_from_a(small_packet(1));
  link->send_from_b(small_packet(2));
  f.loop.run();
  ASSERT_EQ(f.b.deliveries.size(), 1u);
  ASSERT_EQ(f.a.deliveries.size(), 1u);
  EXPECT_EQ(f.b.deliveries[0].packet.header.identification, 1);
  EXPECT_EQ(f.a.deliveries[0].packet.header.identification, 2);
}

TEST(Link, SerializationQueuesBackToBackPackets) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.bandwidth = BitRate::bps(142 * 8);  // exactly 1 packet (142B) per second
  cfg.propagation = Duration::zero();
  auto link = f.make(cfg);

  for (std::uint16_t i = 0; i < 3; ++i) link->send_from_a(small_packet(i));
  f.loop.run();

  ASSERT_EQ(f.b.deliveries.size(), 3u);
  // Deliveries spaced by exactly one serialization time.
  EXPECT_EQ(f.b.deliveries[0].when, SimTime::from_seconds(1.0));
  EXPECT_EQ(f.b.deliveries[1].when, SimTime::from_seconds(2.0));
  EXPECT_EQ(f.b.deliveries[2].when, SimTime::from_seconds(3.0));
  // FIFO order preserved.
  for (std::uint16_t i = 0; i < 3; ++i)
    EXPECT_EQ(f.b.deliveries[i].packet.header.identification, i);
}

TEST(Link, DropTailWhenQueueFull) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.bandwidth = BitRate::kbps(8);  // very slow: queue builds up
  cfg.queue_limit_bytes = 300;       // fits two 142-byte packets
  auto link = f.make(cfg);

  for (std::uint16_t i = 0; i < 5; ++i) link->send_from_a(small_packet(i));
  EXPECT_EQ(link->stats_a_to_b().packets_dropped_queue, 3u);
  f.loop.run();
  EXPECT_EQ(f.b.deliveries.size(), 2u);
  EXPECT_EQ(link->stats_a_to_b().packets_delivered, 2u);
}

TEST(Link, RandomLossDropsApproximatelyAtRate) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.bandwidth = BitRate::mbps(1000);
  cfg.loss_probability = 0.2;
  cfg.queue_limit_bytes = 1 << 30;
  auto link = f.make(cfg, /*seed=*/99);

  const int n = 5000;
  for (int i = 0; i < n; ++i) link->send_from_a(small_packet(static_cast<std::uint16_t>(i)));
  f.loop.run();

  const auto& stats = link->stats_a_to_b();
  EXPECT_EQ(stats.packets_sent, static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(stats.packets_dropped_loss) / n, 0.2, 0.03);
  EXPECT_EQ(stats.packets_delivered + stats.packets_dropped_loss,
            static_cast<std::uint64_t>(n));
}

TEST(Link, JitterPerturbsButNeverReorders) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.bandwidth = BitRate::mbps(10);
  cfg.propagation = Duration::millis(10);
  cfg.jitter_stddev = Duration::millis(2);
  auto link = f.make(cfg, 7);

  for (std::uint16_t i = 0; i < 200; ++i) link->send_from_a(small_packet(i));
  f.loop.run();

  ASSERT_EQ(f.b.deliveries.size(), 200u);
  // Timestamps are non-decreasing (jitter is non-negative additive noise on
  // a FIFO pipe in this model) and ids in order.
  bool any_late = false;
  for (std::size_t i = 1; i < f.b.deliveries.size(); ++i) {
    EXPECT_EQ(f.b.deliveries[i].packet.header.identification, i);
  }
  // Jitter actually perturbs at least one gap away from the deterministic
  // spacing.
  const Duration tx = cfg.bandwidth.transmission_time(142);
  for (std::size_t i = 1; i < f.b.deliveries.size(); ++i) {
    const Duration gap = f.b.deliveries[i].when - f.b.deliveries[i - 1].when;
    if (gap != tx) any_late = true;
  }
  EXPECT_TRUE(any_late);
}

TEST(Link, StatsCountBytes) {
  LinkFixture f;
  auto link = f.make(LinkConfig{});
  link->send_from_a(small_packet(1, 100));
  f.loop.run();
  EXPECT_EQ(link->stats_a_to_b().bytes_delivered, 142u);
  EXPECT_EQ(link->stats_b_to_a().bytes_delivered, 0u);
}

}  // namespace
}  // namespace streamlab
