#include "core/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace streamlab {
namespace {

const StudyResults& small_study() {
  static const StudyResults study = [] {
    StudyConfig config;
    config.seed = 31337;
    return run_study_subset(config, {2});
  }();
  return study;
}

std::size_t line_count(const std::string& text) {
  std::size_t n = 0;
  for (const char c : text) n += c == '\n';
  return n;
}

TEST(Export, StudyResultsCsvShape) {
  const std::string csv = study_results_csv(small_study());
  // Header + one row per clip (set 2: 4 clips).
  EXPECT_EQ(line_count(csv), 5u);
  EXPECT_EQ(csv.find("clip_id,player,tier"), 0u);
  EXPECT_NE(csv.find("set2/R-l,real,low,84.0"), std::string::npos);
  EXPECT_NE(csv.find("set2/M-h,media,high,307.2"), std::string::npos);
  // Every row has the full column count.
  for (const auto& line : split(csv, '\n')) {
    if (line.empty()) continue;
    EXPECT_EQ(split(line, ',').size(), 12u) << line;
  }
}

TEST(Export, Fig01CsvHasOneRttPerPing) {
  const std::string csv = figure_csv(small_study(), "fig01");
  // Header + 2 runs x 10 pings.
  EXPECT_EQ(line_count(csv), 21u);
  EXPECT_EQ(csv.find("rtt_ms"), 0u);
}

TEST(Export, Fig05CsvCoversEveryClip) {
  const std::string csv = figure_csv(small_study(), "fig05");
  EXPECT_EQ(line_count(csv), 5u);  // header + 4 clips
  EXPECT_NE(csv.find("media,307.2,66."), std::string::npos);
  EXPECT_NE(csv.find("real,268.0,0.00"), std::string::npos);
}

TEST(Export, UnknownFigureEmpty) {
  EXPECT_TRUE(figure_csv(small_study(), "fig99").empty());
  EXPECT_TRUE(figure_csv(small_study(), "").empty());
  // Stream form writes nothing either.
  std::ostringstream out;
  figure_csv(small_study(), "fig99", out);
  EXPECT_TRUE(out.str().empty());
}

TEST(Export, EmptyStudyYieldsHeadersOnly) {
  const StudyResults empty;
  EXPECT_EQ(study_results_csv(empty),
            "clip_id,player,tier,encoding_kbps,playback_kbps,frame_rate_fps,"
            "fragment_pct,buffering_ratio,streaming_s,packets,lost,quality_pct\n");
  EXPECT_EQ(figure_csv(empty, "fig03"), "player,encoding_kbps,playback_kbps\n");
  EXPECT_EQ(figure_csv(empty, "fig01"), "rtt_ms\n");
}

TEST(Export, StreamAndStringFormsMatch) {
  std::ostringstream study_out;
  study_results_csv(small_study(), study_out);
  EXPECT_EQ(study_out.str(), study_results_csv(small_study()));

  for (const char* fig : {"fig01", "fig03", "fig11"}) {
    std::ostringstream fig_out;
    figure_csv(small_study(), fig, fig_out);
    EXPECT_EQ(fig_out.str(), figure_csv(small_study(), fig)) << fig;
  }

  const std::vector<std::pair<std::string, TurbulenceRunResult>> no_runs;
  std::ostringstream turb_out;
  turbulence_csv(no_runs, turb_out);
  EXPECT_EQ(turb_out.str(), turbulence_csv(no_runs));
  EXPECT_EQ(turb_out.str().find("scenario,clip_id,player"), 0u);
  std::ostringstream eps_out;
  turbulence_episodes_csv(no_runs, eps_out);
  EXPECT_EQ(eps_out.str(), turbulence_episodes_csv(no_runs));
}

TEST(Export, WritesAllFilesToDirectory) {
  const std::string dir = testing::TempDir() + "/streamlab_export";
  std::filesystem::remove_all(dir);
  const int written = export_study(small_study(), dir);
  EXPECT_EQ(written, 9);  // study_results + 8 figures
  EXPECT_TRUE(std::filesystem::exists(dir + "/study_results.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/fig11.csv"));

  std::ifstream in(dir + "/fig11.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "encoding_kbps,buffering_ratio");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace streamlab
