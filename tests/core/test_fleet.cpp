// Fleet scenario tests: determinism (including across scheduler backends),
// metric sanity, audit cleanliness — plus the campaign-level differential
// required by the timing-wheel migration: chaos and repair campaigns must
// produce byte-identical manifests and equal digests under the heap and
// wheel schedulers, serially and on 4 workers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/fleet.hpp"
#include "../campaign/tiny_campaign.hpp"

namespace streamlab {
namespace {

FleetConfig small_fleet(std::size_t sessions, std::uint64_t seed = 7) {
  FleetConfig config;
  config.sessions = sessions;
  config.seed = seed;
  config.episode = Duration::seconds(8);
  config.turbulence_start = Duration::seconds(2);
  config.turbulence_duration = Duration::seconds(3);
  return config;
}

TEST(Fleet, RunsAndAccounts) {
  const FleetConfig config = small_fleet(200);
  const FleetResult r = run_fleet(config);
  EXPECT_EQ(r.sessions, 200u);
  EXPECT_GT(r.packets_sent, 0u);
  EXPECT_EQ(r.packets_sent, r.packets_delivered + r.packets_lost);
  EXPECT_GT(r.packets_lost, 0u);  // the shared turbulence window bites
  EXPECT_GT(r.delivery_ratio, 0.5);
  EXPECT_LT(r.delivery_ratio, 1.0);
  EXPECT_GT(r.events_executed, r.packets_sent);  // sends + deliveries
  EXPECT_GT(r.sim_seconds, 7.0);
  EXPECT_GT(r.table_bytes, 0u);
  // The flyweight contract: tens of bytes per session, not hundreds.
  EXPECT_LT(r.bytes_per_session, 64.0);
}

TEST(Fleet, DeterministicAcrossRunsAndSchedulers) {
  const FleetResult a = run_fleet(small_fleet(300));
  const FleetResult b = run_fleet(small_fleet(300));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.rebuffer_events, b.rebuffer_events);

  FleetConfig wheel = small_fleet(300);
  wheel.scheduler = EventLoop::Scheduler::kWheel;
  FleetConfig heap = small_fleet(300);
  heap.scheduler = EventLoop::Scheduler::kHeap;
  const FleetResult w = run_fleet(wheel);
  const FleetResult h = run_fleet(heap);
  EXPECT_EQ(w.digest, h.digest) << "scheduler backends diverged";
  EXPECT_EQ(w.events_executed, h.events_executed);
  EXPECT_EQ(w.rebuffer_events, h.rebuffer_events);

  const FleetResult other = run_fleet(small_fleet(300, /*seed=*/8));
  EXPECT_NE(other.digest, a.digest) << "digest insensitive to seed";
}

TEST(Fleet, AuditCleanAndProbeFolded) {
  audit::Auditor auditor;
  audit::DeterminismProbe probe;
  FleetConfig config = small_fleet(100);
  config.auditor = &auditor;
  config.probe = &probe;
  const FleetResult r = run_fleet(config);
  EXPECT_TRUE(auditor.report().clean())
      << auditor.report().summary();
  EXPECT_GT(auditor.report().checks_performed, 0u);
  EXPECT_EQ(probe.events(), r.packets_delivered);
}

// --- Campaign differential: heap vs wheel on chaos + repair scenarios ---

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_manifest(const std::string& name) {
  std::string path = ::testing::TempDir() + "sched_diff_" + name + ".ndjson";
  std::remove(path.c_str());
  return path;
}

// The tiny campaign reshaped into the self-healing chaos scenario: a router
// dies mid-clip on a detour-bridged path and the repair plane reroutes.
CampaignConfig tiny_chaos_campaign(std::size_t trials) {
  CampaignConfig config = campaign_test::tiny_campaign(trials);
  config.scenario.path.hop_count = 8;
  config.scenario.path.detour = DetourConfig{3, 4, 2, 10};
  config.scenario.repair = RouteRepairConfig{};
  config.scenario.mirror_server = true;
  config.scenario.episodes.clear();
  FaultEpisode down;
  down.kind = FaultKind::kRouterDown;
  down.router_index = 3;
  down.start = SimTime::from_seconds(1.0);
  down.duration = Duration::millis(1500);
  down.label = "router-down";
  config.scenario.episodes.push_back(down);
  return config;
}

// The tiny campaign with burst loss and the FEC+NACK repair layer active.
CampaignConfig tiny_repair_campaign(std::size_t trials) {
  CampaignConfig config = campaign_test::tiny_campaign(trials);
  config.scenario.repair_layer.fec_k = 8;
  config.scenario.repair_layer.nack = true;
  FaultEpisode burst;
  burst.kind = FaultKind::kBurstLoss;
  burst.start = SimTime::from_seconds(1.5);
  burst.duration = Duration::seconds(2);
  burst.label = "burst";
  config.scenario.episodes.push_back(burst);
  return config;
}

struct CampaignFingerprint {
  std::string manifest;
  std::vector<std::uint64_t> digests;
  std::uint64_t telemetry_hash = 0;
};

CampaignFingerprint run_fingerprint(CampaignConfig config,
                                    EventLoop::Scheduler scheduler,
                                    std::size_t workers,
                                    const std::string& name) {
  const EventLoop::Scheduler saved = EventLoop::default_scheduler();
  EventLoop::set_default_scheduler(scheduler);
  config.workers = workers;
  config.verify_determinism = true;
  config.manifest_path = temp_manifest(name);
  const CampaignResult result = run_campaign(config);
  EventLoop::set_default_scheduler(saved);
  EXPECT_TRUE(result.ok());
  CampaignFingerprint fp;
  fp.manifest = read_file(config.manifest_path);
  for (const TrialOutcome& t : result.trials) fp.digests.push_back(t.digest);
  std::hash<std::string> h;
  fp.telemetry_hash = h(result.telemetry.serialize());
  return fp;
}

void expect_backends_identical(const CampaignConfig& config, const char* tag) {
  const auto heap1 = run_fingerprint(config, EventLoop::Scheduler::kHeap, 1,
                                     std::string(tag) + "_heap1");
  const auto wheel1 = run_fingerprint(config, EventLoop::Scheduler::kWheel, 1,
                                      std::string(tag) + "_wheel1");
  const auto wheel4 = run_fingerprint(config, EventLoop::Scheduler::kWheel, 4,
                                      std::string(tag) + "_wheel4");
  const auto heap4 = run_fingerprint(config, EventLoop::Scheduler::kHeap, 4,
                                     std::string(tag) + "_heap4");
  ASSERT_FALSE(heap1.manifest.empty());
  EXPECT_EQ(wheel1.digests, heap1.digests) << tag << ": trial digests diverged";
  EXPECT_EQ(wheel1.manifest, heap1.manifest)
      << tag << ": serial manifests not byte-identical across backends";
  EXPECT_EQ(wheel4.manifest, heap1.manifest)
      << tag << ": 4-worker wheel manifest differs from serial heap";
  EXPECT_EQ(heap4.manifest, heap1.manifest)
      << tag << ": 4-worker heap manifest differs from serial heap";
  EXPECT_EQ(wheel1.telemetry_hash, heap1.telemetry_hash);
  EXPECT_EQ(wheel4.telemetry_hash, heap1.telemetry_hash);
}

TEST(SchedulerCampaignDifferential, ChaosCampaignByteIdentical) {
  expect_backends_identical(tiny_chaos_campaign(3), "chaos");
}

TEST(SchedulerCampaignDifferential, RepairCampaignByteIdentical) {
  expect_backends_identical(tiny_repair_campaign(3), "repair");
}

}  // namespace
}  // namespace streamlab
