#include "core/render.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace streamlab::render {
namespace {

TEST(RenderTable, AlignsColumnsToWidestCell) {
  const std::string out = table({"Name", "Value"}, {{"short", "1"}, {"a-much-longer-name", "22"}});
  // Each line has the same length (trailing content aligned).
  const auto lines = streamlab::split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[0].find("Name"), std::string::npos);
  EXPECT_NE(lines[1].find("---"), std::string::npos);
  EXPECT_NE(lines[2].find("short"), std::string::npos);
  // Header "Value" starts at the same column as "1" and "22".
  EXPECT_EQ(lines[0].find("Value"), lines[2].find("1"));
}

TEST(RenderTable, HandlesRaggedRows) {
  const std::string out = table({"A", "B", "C"}, {{"1"}, {"1", "2", "3", "4-ignored"}});
  EXPECT_NE(out.find("1"), std::string::npos);
  // No crash, header intact.
  EXPECT_EQ(out.find("A"), 0u);
}

TEST(RenderTable, EmptyRows) {
  const std::string out = table({"A"}, {});
  const auto lines = streamlab::split(out, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].substr(0, 1), "A");
}

TEST(XyPlot, EmptySeriesSafe) {
  EXPECT_EQ(xy_plot({}), "(no data)\n");
  EXPECT_EQ(xy_plot({Series{"empty", '*', {}}}), "(no data)\n");
}

TEST(XyPlot, SinglePointPlots) {
  Series s{"solo", 'x', {{1.0, 2.0}}};
  const std::string out = xy_plot({s}, 20, 5);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("solo"), std::string::npos);
}

TEST(XyPlot, RangesPrinted) {
  Series s{"line", '*', {{0.0, 0.0}, {10.0, 100.0}}};
  const std::string out = xy_plot({s}, 40, 10);
  EXPECT_NE(out.find("x: [0.00, 10.00]"), std::string::npos);
  EXPECT_NE(out.find("y: [0.00, 100.00]"), std::string::npos);
}

TEST(XyPlot, OverlapMarkedWithPlus) {
  Series a{"a", 'A', {{5.0, 5.0}}};
  Series b{"b", 'B', {{5.0, 5.0}, {0.0, 0.0}, {10.0, 10.0}}};
  const std::string out = xy_plot({a, b}, 20, 10);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(XyPlot, ExtremesLandOnOppositeCorners) {
  Series s{"diag", '*', {{0.0, 0.0}, {1.0, 1.0}}};
  const std::string out = xy_plot({s}, 10, 5);
  const auto lines = streamlab::split(out, '\n');
  // First grid row (max y) holds the (1,1) point at the right edge; the
  // last grid row (min y) holds (0,0) at the left edge.
  EXPECT_EQ(lines[0].back(), '*');
  EXPECT_EQ(lines[4][1], '*');  // col 0 after the '|' border
}

TEST(PdfListing, ShowsOccupiedBinsOnly) {
  streamlab::Histogram h(10.0);
  h.add(5.0);
  h.add(95.0);
  const std::string out = pdf_listing(h, "size");
  EXPECT_NE(out.find("5.0"), std::string::npos);   // bin centers
  EXPECT_NE(out.find("95.0"), std::string::npos);
  // Gap bins (count 0) are skipped in the listing.
  EXPECT_EQ(out.find("45.0"), std::string::npos);
}

TEST(PdfListing, EmptyHistogram) {
  streamlab::Histogram h(10.0);
  const std::string out = pdf_listing(h, "size");
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(CdfListing, QuantileRows) {
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(i);
  const std::string out = cdf_listing(values, "v", 5);
  const auto lines = streamlab::split(out, '\n');
  // Header + 5 quantile rows (+ trailing empty from final newline).
  ASSERT_GE(lines.size(), 6u);
  EXPECT_NE(lines[1].find("0.00"), std::string::npos);
  EXPECT_NE(lines[5].find("1.00"), std::string::npos);
}

}  // namespace
}  // namespace streamlab::render
