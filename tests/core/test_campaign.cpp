#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace streamlab {
namespace {

/// A deliberately tiny clip so a 20-trial campaign stays fast.
ClipInfo tiny_clip() {
  ClipInfo clip;
  clip.data_set = 1;
  clip.content = ContentClass::kNews;
  clip.player = PlayerKind::kRealPlayer;
  clip.tier = RateTier::kLow;
  clip.encoded_rate = BitRate::kbps(33);
  clip.advertised_rate = BitRate::kbps(56);
  clip.length = Duration::seconds(5);
  return clip;
}

CampaignConfig tiny_campaign(std::size_t trials) {
  CampaignConfig config;
  config.clip = tiny_clip();
  config.trials = trials;
  config.base_seed = 100;
  config.scenario.path.hop_count = 2;
  config.scenario.path.one_way_propagation = Duration::millis(5);
  config.scenario.extra_sim_time = Duration::seconds(5);
  // One short outage mid-clip so every trial exercises the fault layer.
  FaultEpisode flap;
  flap.kind = FaultKind::kOutage;
  flap.start = SimTime::from_seconds(1.0);
  flap.duration = Duration::millis(500);
  flap.label = "flap";
  config.scenario.episodes.push_back(flap);
  return config;
}

std::string temp_manifest(const char* name) {
  std::string path = ::testing::TempDir() + "campaign_" + name + ".ndjson";
  std::remove(path.c_str());
  return path;
}

TEST(Campaign, RunsEveryTrialCleanly) {
  const CampaignConfig config = tiny_campaign(5);
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.trials.size(), 5u);
  EXPECT_EQ(result.completed, 5u);
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.aggregate.trials, 5u);
  EXPECT_EQ(result.aggregate.sessions, 5u);
  for (const TrialOutcome& t : result.trials) {
    EXPECT_EQ(t.seed, config.base_seed + t.index);
    EXPECT_NE(t.digest, 0u);
    EXPECT_GT(t.checks, 0u);
    EXPECT_EQ(t.violations, 0u);
    EXPECT_FALSE(t.budget_exhausted);
    ASSERT_TRUE(t.result.has_value());
  }
}

TEST(Campaign, FaultHookQuarantinesExactlyThatSeed) {
  CampaignConfig config = tiny_campaign(20);
  config.manifest_path = temp_manifest("fault_hook");
  config.fault_hook = [](audit::Auditor& auditor, std::size_t index, std::uint64_t) {
    if (index == 7) auditor.force_violation("planted by test");
  };
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 19u);
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_FALSE(result.ok());
  // Exactly the planted seed is quarantined; everyone else is salvaged.
  EXPECT_EQ(result.quarantined_seeds(),
            (std::vector<std::uint64_t>{config.base_seed + 7}));
  EXPECT_EQ(result.trials[7].status, TrialStatus::kQuarantined);
  EXPECT_NE(result.trials[7].reason.find("planted by test"), std::string::npos);
  EXPECT_EQ(result.aggregate.trials, 19u);

  // The manifest records the quarantine line-for-line.
  std::ifstream in(config.manifest_path);
  std::string line;
  int quarantined_lines = 0;
  while (std::getline(in, line))
    if (line.find("\"quarantined\"") != std::string::npos) ++quarantined_lines;
  EXPECT_EQ(quarantined_lines, 1);
}

TEST(Campaign, ManifestRoundTripRestoresOutcomes) {
  CampaignConfig config = tiny_campaign(3);
  config.manifest_path = temp_manifest("round_trip");
  const CampaignResult first = run_campaign(config);
  ASSERT_EQ(first.completed, 3u);

  const CampaignResult second = run_campaign(config);
  EXPECT_EQ(second.resumed, 3u);
  EXPECT_EQ(second.completed, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const TrialOutcome& live = first.trials[i];
    const TrialOutcome& restored = second.trials[i];
    EXPECT_TRUE(restored.from_manifest);
    EXPECT_EQ(restored.seed, live.seed);
    EXPECT_EQ(restored.digest, live.digest);
    EXPECT_EQ(restored.checks, live.checks);
    EXPECT_EQ(restored.sim_events, live.sim_events);
    EXPECT_EQ(restored.frames_rendered, live.frames_rendered);
    EXPECT_EQ(restored.packets_lost, live.packets_lost);
    EXPECT_EQ(restored.stall_time.ns(), live.stall_time.ns());
  }
  // The salvage aggregate is identical whether folded live or from disk.
  EXPECT_EQ(second.aggregate.frames_rendered, first.aggregate.frames_rendered);
  EXPECT_EQ(second.aggregate.packets_lost, first.aggregate.packets_lost);
  EXPECT_EQ(second.aggregate.stall_time.ns(), first.aggregate.stall_time.ns());
}

TEST(Campaign, ResumesAfterKillFromFirstIncompleteTrial) {
  CampaignConfig config = tiny_campaign(5);
  config.manifest_path = temp_manifest("resume_kill");
  const CampaignResult full = run_campaign(config);
  ASSERT_EQ(full.completed, 5u);

  // Simulate a campaign killed after trial 1: keep the first two manifest
  // lines only.
  std::vector<std::string> lines;
  {
    std::ifstream in(config.manifest_path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);
  {
    std::ofstream out(config.manifest_path, std::ios::trunc);
    out << lines[0] << '\n' << lines[1] << '\n';
  }

  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.completed, 5u);
  // Re-run trials replay deterministically: same digests as the first pass.
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(resumed.trials[i].digest, full.trials[i].digest) << "trial " << i;
  // The manifest is whole again (2 restored lines + 3 appended).
  std::ifstream in(config.manifest_path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++count;
  EXPECT_EQ(count, 5u);
}

TEST(Campaign, RejectsManifestFromDifferentConfig) {
  CampaignConfig config = tiny_campaign(2);
  config.manifest_path = temp_manifest("mismatch");
  run_campaign(config);

  CampaignConfig changed = config;
  changed.scenario.path.loss_probability = 0.01;  // different study entirely
  EXPECT_THROW(run_campaign(changed), std::runtime_error);

  CampaignConfig reseeded = config;
  reseeded.base_seed = 999;
  EXPECT_THROW(run_campaign(reseeded), std::runtime_error);
}

TEST(Campaign, ConfigDigestSeparatesStudies) {
  const CampaignConfig config = tiny_campaign(2);
  CampaignConfig other = config;
  EXPECT_EQ(campaign_config_digest(config), campaign_config_digest(other));
  other.scenario.max_stall = Duration::seconds(7);
  EXPECT_NE(campaign_config_digest(config), campaign_config_digest(other));
}

TEST(Campaign, VerifyDeterminismPassesOnDefaultSeeds) {
  CampaignConfig config = tiny_campaign(2);
  config.verify_determinism = true;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 2u);
  for (const TrialOutcome& t : result.trials) {
    EXPECT_EQ(t.status, TrialStatus::kCompleted);
    EXPECT_FALSE(t.divergence.has_value());
  }
}

TEST(Campaign, InjectedNondeterminismPinpointsFirstDivergentEvent) {
  CampaignConfig config = tiny_campaign(1);
  config.verify_determinism = true;
  config.verify_seed_skew = 1;  // replay under a different seed: must diverge
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.trials.size(), 1u);
  const TrialOutcome& t = result.trials[0];
  EXPECT_EQ(t.status, TrialStatus::kQuarantined);
  ASSERT_TRUE(t.divergence.has_value());
  EXPECT_NE(t.reason.find("diverge"), std::string::npos);
  EXPECT_NE(t.reason.find(std::to_string(*t.divergence)), std::string::npos);
}

TEST(Campaign, EventBudgetTruncatesYetLedgersBalance) {
  CampaignConfig config = tiny_campaign(1);
  config.scenario.max_sim_events = 500;  // far below a full trial
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.trials.size(), 1u);
  const TrialOutcome& t = result.trials[0];
  EXPECT_TRUE(t.budget_exhausted);
  EXPECT_EQ(t.sim_events, 500u);
  // Truncation is not a violation: queued and in-flight packets keep the
  // conservation ledger balanced.
  EXPECT_EQ(t.status, TrialStatus::kCompleted) << t.reason;
  EXPECT_EQ(t.violations, 0u);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The ordered-commit guarantee, asserted at its strongest: a parallel
/// campaign's resume manifest is byte-identical to the serial one, and every
/// per-trial digest and aggregate field matches.
TEST(CampaignParallel, ManifestBytesIdenticalToSerial) {
  CampaignConfig serial = tiny_campaign(8);
  serial.workers = 1;
  serial.manifest_path = temp_manifest("serial_ref");
  const CampaignResult ref = run_campaign(serial);
  ASSERT_EQ(ref.completed, 8u);

  CampaignConfig parallel = tiny_campaign(8);
  parallel.workers = 4;
  parallel.manifest_path = temp_manifest("parallel_4");
  const CampaignResult par = run_campaign(parallel);
  ASSERT_EQ(par.completed, 8u);

  EXPECT_EQ(slurp(serial.manifest_path), slurp(parallel.manifest_path));
  ASSERT_EQ(par.trials.size(), ref.trials.size());
  for (std::size_t i = 0; i < ref.trials.size(); ++i) {
    EXPECT_EQ(par.trials[i].index, ref.trials[i].index);
    EXPECT_EQ(par.trials[i].seed, ref.trials[i].seed);
    EXPECT_EQ(par.trials[i].digest, ref.trials[i].digest) << "trial " << i;
    EXPECT_EQ(par.trials[i].sim_events, ref.trials[i].sim_events);
  }
  EXPECT_EQ(par.aggregate.sessions, ref.aggregate.sessions);
  EXPECT_EQ(par.aggregate.frames_rendered, ref.aggregate.frames_rendered);
  EXPECT_EQ(par.aggregate.frames_dropped, ref.aggregate.frames_dropped);
  EXPECT_EQ(par.aggregate.packets_received, ref.aggregate.packets_received);
  EXPECT_EQ(par.aggregate.packets_lost, ref.aggregate.packets_lost);
  EXPECT_EQ(par.aggregate.rebuffer_events, ref.aggregate.rebuffer_events);
  EXPECT_EQ(par.aggregate.stall_time.ns(), ref.aggregate.stall_time.ns());
}

/// Quarantine semantics survive parallelism: a planted violation lands on
/// exactly the same seed, with the same manifest record, at any worker count.
TEST(CampaignParallel, FaultHookQuarantinesSameSeedAsSerial) {
  const auto plant = [](audit::Auditor& auditor, std::size_t index, std::uint64_t) {
    if (index == 7) auditor.force_violation("planted by test");
  };
  CampaignConfig serial = tiny_campaign(20);
  serial.workers = 1;
  serial.manifest_path = temp_manifest("fault_serial");
  serial.fault_hook = plant;
  const CampaignResult ref = run_campaign(serial);

  CampaignConfig parallel = tiny_campaign(20);
  parallel.workers = 4;
  parallel.manifest_path = temp_manifest("fault_parallel");
  parallel.fault_hook = plant;
  const CampaignResult par = run_campaign(parallel);

  EXPECT_EQ(par.completed, ref.completed);
  EXPECT_EQ(par.quarantined, 1u);
  EXPECT_EQ(par.quarantined_seeds(), ref.quarantined_seeds());
  EXPECT_EQ(par.trials[7].status, TrialStatus::kQuarantined);
  EXPECT_EQ(par.trials[7].reason, ref.trials[7].reason);
  EXPECT_EQ(slurp(serial.manifest_path), slurp(parallel.manifest_path));
}

/// A manifest written serially resumes under a parallel pool (workers is
/// deliberately not part of the config digest) and completes to the same
/// bytes the serial run would have written.
TEST(CampaignParallel, SerialManifestResumesUnderParallelWorkers) {
  CampaignConfig config = tiny_campaign(6);
  config.workers = 1;
  config.manifest_path = temp_manifest("mixed_resume");
  const CampaignResult full = run_campaign(config);
  ASSERT_EQ(full.completed, 6u);
  const std::string full_bytes = slurp(config.manifest_path);

  // Keep only the first three lines — a campaign killed mid-run — then
  // resume with four workers.
  std::vector<std::string> lines;
  {
    std::ifstream in(config.manifest_path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  {
    std::ofstream out(config.manifest_path, std::ios::trunc);
    for (std::size_t i = 0; i < 3; ++i) out << lines[i] << '\n';
  }
  config.workers = 4;
  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(resumed.completed, 6u);
  EXPECT_EQ(slurp(config.manifest_path), full_bytes);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(resumed.trials[i].digest, full.trials[i].digest) << "trial " << i;
}

TEST(CampaignParallel, VerifyDeterminismPassesUnderWorkers) {
  CampaignConfig config = tiny_campaign(4);
  config.workers = 4;
  config.verify_determinism = true;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 4u);
  for (const TrialOutcome& t : result.trials)
    EXPECT_FALSE(t.divergence.has_value());
}

/// A shared Obs across concurrent trials would be a silent data race — the
/// campaign rejects it up front instead. With only one trial actually
/// pending, no concurrency can occur and the same config is accepted.
TEST(CampaignParallel, SharedObsRejectedWhenTrialsWouldRunConcurrently) {
  obs::Obs obs;
  CampaignConfig config = tiny_campaign(4);
  config.workers = 4;
  config.scenario.obs = &obs;
  EXPECT_THROW(run_campaign(config), std::runtime_error);

  CampaignConfig single = tiny_campaign(1);
  single.workers = 4;  // clamped to the single pending trial: no concurrency
  single.scenario.obs = &obs;
  EXPECT_NO_THROW(run_campaign(single));
}

/// workers=0 (one per hardware thread) must behave like any explicit count.
TEST(CampaignParallel, DefaultWorkerCountProducesSameResults) {
  CampaignConfig serial = tiny_campaign(4);
  serial.workers = 1;
  const CampaignResult ref = run_campaign(serial);

  CampaignConfig defaulted = tiny_campaign(4);
  defaulted.workers = 0;
  const CampaignResult result = run_campaign(defaulted);
  ASSERT_EQ(result.trials.size(), ref.trials.size());
  for (std::size_t i = 0; i < ref.trials.size(); ++i)
    EXPECT_EQ(result.trials[i].digest, ref.trials[i].digest);
  EXPECT_EQ(result.aggregate.frames_rendered, ref.aggregate.frames_rendered);
}

// --- Campaigns with the loss repair layer active. The CampaignRepair suite
// also runs under TSan in CI (parity/NACK traffic crossing the worker pool
// must stay race-free). ---

CampaignConfig repair_campaign(std::size_t trials) {
  CampaignConfig config = tiny_campaign(trials);
  // Swap the outage for a burst-loss epoch: repair needs loss to repair.
  // The tiny 33 kbps clip carries few packets, so the epoch spans the whole
  // trial and keeps both GE states lossy — every seed sees losses to repair.
  config.scenario.episodes.clear();
  FaultEpisode burst;
  burst.kind = FaultKind::kBurstLoss;
  burst.start = SimTime::from_seconds(0.2);
  burst.duration = Duration::seconds(12);
  burst.gilbert = GilbertElliottConfig{0.3, 0.25, 0.1, 0.6};
  burst.label = "burst-loss";
  config.scenario.episodes.push_back(burst);
  config.scenario.repair_layer.fec_k = 8;
  config.scenario.repair_layer.fec_stride = 4;
  config.scenario.repair_layer.nack = true;
  return config;
}

TEST(CampaignRepair, SalvagesRecoveryMetricsIntoAggregate) {
  const CampaignResult result = run_campaign(repair_campaign(3));
  EXPECT_EQ(result.completed, 3u);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.aggregate.packets_recovered, 0u);
  EXPECT_GT(result.aggregate.parity_packets, 0u);
  for (const TrialOutcome& t : result.trials) {
    EXPECT_GT(t.packets_recovered, 0u) << "trial " << t.index;
    ASSERT_TRUE(t.result.has_value());
  }
}

TEST(CampaignRepair, ManifestRoundTripKeepsRecoveryFields) {
  CampaignConfig config = repair_campaign(3);
  config.manifest_path = temp_manifest("repair_round_trip");
  const CampaignResult first = run_campaign(config);
  ASSERT_EQ(first.completed, 3u);

  const CampaignResult second = run_campaign(config);
  EXPECT_EQ(second.resumed, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(second.trials[i].packets_recovered, first.trials[i].packets_recovered);
    EXPECT_EQ(second.trials[i].nacks_sent, first.trials[i].nacks_sent);
    EXPECT_EQ(second.trials[i].retransmissions_sent,
              first.trials[i].retransmissions_sent);
    EXPECT_EQ(second.trials[i].parity_packets, first.trials[i].parity_packets);
  }
  EXPECT_EQ(second.aggregate.packets_recovered, first.aggregate.packets_recovered);
  EXPECT_EQ(second.aggregate.nacks_sent, first.aggregate.nacks_sent);
  EXPECT_EQ(second.aggregate.retransmissions_sent,
            first.aggregate.retransmissions_sent);
  EXPECT_EQ(second.aggregate.parity_packets, first.aggregate.parity_packets);
}

TEST(CampaignRepair, ManifestBytesIdenticalToSerialWithRepair) {
  CampaignConfig serial = repair_campaign(8);
  serial.workers = 1;
  serial.manifest_path = temp_manifest("repair_serial");
  const CampaignResult ref = run_campaign(serial);
  ASSERT_EQ(ref.completed, 8u);
  EXPECT_GT(ref.aggregate.packets_recovered, 0u);

  CampaignConfig parallel = repair_campaign(8);
  parallel.workers = 4;
  parallel.manifest_path = temp_manifest("repair_parallel");
  const CampaignResult par = run_campaign(parallel);
  ASSERT_EQ(par.completed, 8u);

  EXPECT_EQ(slurp(serial.manifest_path), slurp(parallel.manifest_path));
  for (std::size_t i = 0; i < ref.trials.size(); ++i) {
    EXPECT_EQ(par.trials[i].digest, ref.trials[i].digest) << "trial " << i;
    EXPECT_EQ(par.trials[i].packets_recovered, ref.trials[i].packets_recovered);
  }
  EXPECT_EQ(par.aggregate.packets_recovered, ref.aggregate.packets_recovered);
  EXPECT_EQ(par.aggregate.nacks_sent, ref.aggregate.nacks_sent);
  EXPECT_EQ(par.aggregate.retransmissions_sent, ref.aggregate.retransmissions_sent);
  EXPECT_EQ(par.aggregate.parity_packets, ref.aggregate.parity_packets);
}

TEST(CampaignRepair, VerifyDeterminismPassesWithRepairActive) {
  CampaignConfig config = repair_campaign(4);
  config.workers = 4;
  config.verify_determinism = true;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 4u);
  EXPECT_TRUE(result.ok());
  for (const TrialOutcome& t : result.trials)
    EXPECT_FALSE(t.divergence.has_value());
}

TEST(CampaignRepair, RepairConfigIsPartOfTheDigest) {
  const CampaignConfig config = repair_campaign(2);
  CampaignConfig same = repair_campaign(2);
  EXPECT_EQ(campaign_config_digest(config), campaign_config_digest(same));
  CampaignConfig different_k = repair_campaign(2);
  different_k.scenario.repair_layer.fec_k = 16;
  EXPECT_NE(campaign_config_digest(config), campaign_config_digest(different_k));
  CampaignConfig no_nack = repair_campaign(2);
  no_nack.scenario.repair_layer.nack = false;
  EXPECT_NE(campaign_config_digest(config), campaign_config_digest(no_nack));
}

// --- Campaign telemetry plane: cross-trial fold, manifest round trip,
// quarantine flight recorder, and the live progress hook. ---

/// The determinism contract extends to telemetry: the cross-trial fold is
/// byte-identical between workers=1 and workers=4 because outcomes commit in
/// trial-index order regardless of which worker finished first.
TEST(CampaignTelemetry, FoldIsByteIdenticalSerialVsFourWorkers) {
  CampaignConfig serial = tiny_campaign(8);
  serial.workers = 1;
  const CampaignResult ref = run_campaign(serial);
  ASSERT_EQ(ref.completed, 8u);

  CampaignConfig parallel = tiny_campaign(8);
  parallel.workers = 4;
  const CampaignResult par = run_campaign(parallel);
  ASSERT_EQ(par.completed, 8u);

  EXPECT_EQ(ref.telemetry.trials_folded(), 8u);
  EXPECT_EQ(ref.telemetry.counter("trials.completed"), 8u);
  ASSERT_NE(ref.telemetry.sketch("trial.goodput_kbps"), nullptr);
  EXPECT_EQ(ref.telemetry.sketch("trial.goodput_kbps")->count(), 8u);
  ASSERT_NE(ref.telemetry.tally("trial.sim_events"), nullptr);
  EXPECT_EQ(par.telemetry.serialize(), ref.telemetry.serialize());
}

/// Telemetry snapshots ride the manifest: a resumed campaign rebuilds the
/// exact same fold from disk that the fresh run built live.
TEST(CampaignTelemetry, ManifestRoundTripRestoresTheFold) {
  CampaignConfig config = tiny_campaign(4);
  config.manifest_path = temp_manifest("telemetry_round_trip");
  const CampaignResult first = run_campaign(config);
  ASSERT_EQ(first.completed, 4u);
  EXPECT_NE(slurp(config.manifest_path).find("\"telemetry\":\"tt1|"),
            std::string::npos);

  const CampaignResult second = run_campaign(config);
  EXPECT_EQ(second.resumed, 4u);
  for (const TrialOutcome& t : second.trials) {
    EXPECT_TRUE(t.from_manifest);
    ASSERT_TRUE(t.telemetry.has_value());
  }
  EXPECT_EQ(second.telemetry.serialize(), first.telemetry.serialize());
}

/// Turning collection off removes the snapshot from the manifest bytes but
/// keeps the cheap trial-status counters, so dashboards degrade gracefully.
TEST(CampaignTelemetry, DisabledCollectionStillCountsTrials) {
  CampaignConfig config = tiny_campaign(3);
  config.collect_telemetry = false;
  config.manifest_path = temp_manifest("telemetry_off");
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.telemetry.trials_folded(), 0u);
  EXPECT_EQ(result.telemetry.counter("trials.completed"), 3u);
  EXPECT_EQ(result.telemetry.sketch("trial.goodput_kbps"), nullptr);
  for (const TrialOutcome& t : result.trials)
    EXPECT_FALSE(t.telemetry.has_value());
  EXPECT_EQ(slurp(config.manifest_path).find("\"telemetry\""),
            std::string::npos);
}

/// A quarantined seed leaves a parseable post-mortem next to the manifest:
/// header + audit report + the planted violation + a bounded trace tail.
TEST(CampaignTelemetry, QuarantineWritesPostmortemFlightRecord) {
  CampaignConfig config = tiny_campaign(4);
  config.manifest_path = temp_manifest("flight_recorder");
  config.flight_recorder_records = 32;
  config.fault_hook = [](audit::Auditor& auditor, std::size_t index, std::uint64_t) {
    if (index == 2) auditor.force_violation("planted by test");
  };
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_EQ(result.telemetry.counter("trials.quarantined"), 1u);
  ASSERT_EQ(result.postmortem_paths.size(), 1u);
  EXPECT_EQ(result.postmortem_paths[0],
            config.manifest_path + ".postmortem-102.ndjson");

  const std::string body = slurp(result.postmortem_paths[0]);
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("\"record\":\"header\""), std::string::npos);
  EXPECT_NE(body.find("\"record\":\"audit\""), std::string::npos);
  EXPECT_NE(body.find("\"record\":\"violation\""), std::string::npos);
  EXPECT_NE(body.find("planted by test"), std::string::npos);
  EXPECT_NE(body.find("\"seed\":102"), std::string::npos);
  // Every line is a {...} object and the trace tail respects the record cap.
  std::size_t trace_lines = 0;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (line.find("\"record\":\"trace\"") != std::string::npos) ++trace_lines;
  }
  EXPECT_GT(trace_lines, 0u);
  EXPECT_LE(trace_lines, 32u);
}

/// The progress hook fires every `progress_every` commits plus once at the
/// end, with a monotone trial count and a live telemetry pointer.
TEST(CampaignTelemetry, ProgressHookFiresOnCadenceAndAtCompletion) {
  CampaignConfig config = tiny_campaign(5);
  config.progress_every = 2;
  std::vector<std::size_t> done_at_call;
  std::vector<std::uint64_t> folded_at_call;
  config.progress_hook = [&](const CampaignProgress& p) {
    EXPECT_EQ(p.trials_total, 5u);
    EXPECT_EQ(p.workers, 1u);
    ASSERT_NE(p.telemetry, nullptr);
    done_at_call.push_back(p.trials_done);
    folded_at_call.push_back(p.telemetry->trials_folded());
  };
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 5u);
  EXPECT_EQ(done_at_call, (std::vector<std::size_t>{2, 4, 5}));
  EXPECT_EQ(folded_at_call, (std::vector<std::uint64_t>{2, 4, 5}));
}

TEST(Campaign, ThrowingTrialIsQuarantinedOthersSalvaged) {
  CampaignConfig config = tiny_campaign(3);
  config.fault_hook = [](audit::Auditor&, std::size_t index, std::uint64_t) {
    if (index == 1) throw std::runtime_error("trial exploded");
  };
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_EQ(result.trials[1].status, TrialStatus::kQuarantined);
  EXPECT_NE(result.trials[1].reason.find("trial exploded"), std::string::npos);
  EXPECT_EQ(result.aggregate.trials, 2u);
}

// --- Crash tolerance: torn manifests, cooperative cancellation, worker
// --- evidence fields (PR 8 satellites) ---

TEST(CampaignCrash, TornTrailingManifestLineToleratedAndRepaired) {
  CampaignConfig config = tiny_campaign(3);
  config.manifest_path = temp_manifest("torn_tail");
  const CampaignResult first = run_campaign(config);
  ASSERT_EQ(first.completed, 3u);
  const std::string whole = slurp(config.manifest_path);

  // A coordinator killed mid-write leaves the final line truncated. The
  // resume must keep trials 0-1, count one torn line, re-run trial 2, and
  // leave the repaired manifest byte-identical to the uninterrupted one.
  {
    std::ofstream out(config.manifest_path, std::ios::binary | std::ios::trunc);
    out << whole.substr(0, whole.size() - 9);
  }
  const CampaignResult second = run_campaign(config);
  EXPECT_EQ(second.manifest_torn_lines, 1u);
  EXPECT_EQ(second.resumed, 2u);
  EXPECT_EQ(second.completed, 3u);
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(second.trials[2].digest, first.trials[2].digest);
  EXPECT_FALSE(second.trials[2].from_manifest);
  EXPECT_EQ(slurp(config.manifest_path), whole);
}

TEST(CampaignCrash, MissingFinalNewlineRestoredWithoutRerun) {
  CampaignConfig config = tiny_campaign(2);
  config.manifest_path = temp_manifest("no_newline");
  run_campaign(config);
  const std::string whole = slurp(config.manifest_path);

  // Only the trailing '\n' is lost: the line itself is complete, so the
  // trial is restored (no torn-line count) and the newline re-appended.
  {
    std::ofstream out(config.manifest_path, std::ios::binary | std::ios::trunc);
    out << whole.substr(0, whole.size() - 1);
  }
  const CampaignResult second = run_campaign(config);
  EXPECT_EQ(second.manifest_torn_lines, 0u);
  EXPECT_EQ(second.resumed, 2u);
  EXPECT_EQ(slurp(config.manifest_path), whole);
}

TEST(CampaignCrash, CompleteButForeignFinalLineStillRejected) {
  CampaignConfig config = tiny_campaign(2);
  config.manifest_path = temp_manifest("foreign_tail");
  run_campaign(config);

  // A structurally complete final line that doesn't parse is corruption,
  // not a mid-write crash — resuming over it must refuse loudly.
  {
    std::ofstream out(config.manifest_path, std::ios::binary | std::ios::app);
    out << "{\"bogus\":true}\n";
  }
  EXPECT_THROW(run_campaign(config), std::runtime_error);
}

TEST(CampaignCrash, InProcessQuarantineRecordsEmptyWorkerEvidence) {
  CampaignConfig config = tiny_campaign(3);
  config.manifest_path = temp_manifest("evidence");
  config.fault_hook = [](audit::Auditor& auditor, std::size_t index, std::uint64_t) {
    if (index == 1) auditor.force_violation("planted by test");
  };
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.quarantined, 1u);
  EXPECT_EQ(result.trials[1].attempts, 0u);
  EXPECT_EQ(result.trials[1].worker_exit_status, 0);
  EXPECT_TRUE(result.trials[1].stderr_tail.empty());

  // The quarantine line carries the (zeroed) worker-evidence fields so
  // post-mortems can tell "trial is bad" from "worker died"; completed
  // lines stay evidence-free and thus byte-identical to older manifests.
  const std::string manifest = slurp(config.manifest_path);
  EXPECT_NE(manifest.find("\"attempts\":0,\"worker_exit_status\":0,\"stderr_tail\":\"\""),
            std::string::npos);
  EXPECT_EQ(manifest.find("\"attempts\":"), manifest.rfind("\"attempts\":"));

  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(resumed.trials[1].attempts, 0u);
  EXPECT_EQ(resumed.trials[1].worker_exit_status, 0);
}

TEST(CampaignCrash, CancelFlagFlushesCommittedPrefixAndResumes) {
  std::atomic<bool> cancel{false};
  CampaignConfig config = tiny_campaign(6);
  config.manifest_path = temp_manifest("cancel_serial");
  config.cancel = &cancel;
  config.progress_every = 1;
  config.progress_hook = [&cancel](const CampaignProgress& p) {
    if (p.trials_done == 2) cancel.store(true);
  };
  const CampaignResult stopped = run_campaign(config);
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_EQ(stopped.trials.size(), 2u);
  EXPECT_EQ(stopped.completed, 2u);

  // Everything committed before the stop is already flushed: clearing the
  // flag resumes exactly from trial 2.
  cancel.store(false);
  config.progress_hook = nullptr;
  const CampaignResult resumed = run_campaign(config);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.completed, 6u);
}

TEST(CampaignCrash, CancelUnderParallelPoolCommitsContiguousPrefix) {
  std::atomic<bool> cancel{false};
  CampaignConfig config = tiny_campaign(24);
  config.workers = 4;
  config.manifest_path = temp_manifest("cancel_parallel");
  config.cancel = &cancel;
  config.progress_every = 1;
  // Tiny trials finish faster than the cancel flag can land, so pace each
  // trial: by the time trial 2 commits and flips the flag, at most a few
  // more are claimed — the stop is guaranteed to be mid-study. The sleep
  // lives in the test-only hook and never affects trial results.
  config.fault_hook = [](audit::Auditor&, std::size_t, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  config.progress_hook = [&cancel](const CampaignProgress& p) {
    if (p.trials_done == 2) cancel.store(true);
  };
  const CampaignResult stopped = run_campaign(config);
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_GE(stopped.trials.size(), 2u);
  EXPECT_LT(stopped.trials.size(), 24u);

  // The manifest holds exactly the committed contiguous prefix — workers
  // that finished later trials before parking don't leave gapped lines.
  std::ifstream in(config.manifest_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, stopped.trials.size());

  // Resuming finishes the study, and the final manifest is byte-identical
  // to an uninterrupted serial run's.
  cancel.store(false);
  config.progress_hook = nullptr;
  config.fault_hook = nullptr;
  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.completed, 24u);
  CampaignConfig reference = tiny_campaign(24);
  reference.workers = 1;
  reference.manifest_path = temp_manifest("cancel_reference");
  run_campaign(reference);
  EXPECT_EQ(slurp(config.manifest_path), slurp(reference.manifest_path));
}

}  // namespace
}  // namespace streamlab
