#include "core/aggregate.hpp"

#include "core/study.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

AggregateConfig small_config() {
  AggregateConfig config;
  // Short clips keep the test fast; one of each player.
  config.clip_ids = {"set2/R-l", "set2/M-l"};
  config.path = path_for_data_set(2, 5);
  config.seed = 5;
  return config;
}

TEST(Aggregate, RunsEverySession) {
  const AggregateResult r = run_aggregate_experiment(small_config());
  ASSERT_EQ(r.sessions.size(), 2u);
  for (const auto& s : r.sessions) {
    EXPECT_GT(s.packets, 50u) << s.clip.id();
    EXPECT_GT(s.frame_rate, 5.0) << s.clip.id();
    EXPECT_GT(s.reception_quality, 90.0) << s.clip.id();
  }
}

TEST(Aggregate, SkipsUnknownClipIds) {
  AggregateConfig config = small_config();
  config.clip_ids = {"set2/R-l", "no/such-clip"};
  const AggregateResult r = run_aggregate_experiment(config);
  EXPECT_EQ(r.sessions.size(), 1u);
}

TEST(Aggregate, BoundaryTotalsConsistent) {
  const AggregateResult r = run_aggregate_experiment(small_config());
  // The boundary sees at least the sum of the per-session packets (plus
  // control traffic).
  std::uint64_t session_packets = 0;
  for (const auto& s : r.sessions) session_packets += s.packets;
  EXPECT_GE(r.total_packets, session_packets);
  EXPECT_GT(r.aggregate_mean_kbps, 0.0);
  EXPECT_GE(r.aggregate_peak_kbps, r.aggregate_mean_kbps);
}

TEST(Aggregate, MeanNearSumOfSessionRates) {
  const AggregateResult r = run_aggregate_experiment(small_config());
  double session_sum = 0.0;
  for (const auto& s : r.sessions) session_sum += s.mean_rate_kbps;
  // Per-session rates are over each flow's own duration; the aggregate mean
  // is over the union — same order of magnitude, not exceeding the sum.
  EXPECT_GT(r.aggregate_mean_kbps, 0.4 * session_sum);
  EXPECT_LT(r.aggregate_mean_kbps, 1.2 * session_sum);
}

TEST(Aggregate, TimelineCoversWholeTrace) {
  const AggregateResult r = run_aggregate_experiment(small_config());
  ASSERT_GT(r.total_bandwidth_timeline.size(), 5u);
  for (std::size_t i = 1; i < r.total_bandwidth_timeline.size(); ++i) {
    EXPECT_NEAR(r.total_bandwidth_timeline[i].first -
                    r.total_bandwidth_timeline[i - 1].first,
                2.0, 1e-9);
  }
}

TEST(Aggregate, MediaSessionFragmentsOnlyAtHighRates) {
  AggregateConfig config = small_config();
  config.clip_ids = {"set2/R-h", "set2/M-h"};
  const AggregateResult r = run_aggregate_experiment(config);
  ASSERT_EQ(r.sessions.size(), 2u);
  for (const auto& s : r.sessions) {
    if (s.clip.player == PlayerKind::kMediaPlayer)
      EXPECT_GT(s.fragment_fraction, 0.5) << s.clip.id();
    else
      EXPECT_DOUBLE_EQ(s.fragment_fraction, 0.0) << s.clip.id();
  }
}

TEST(Aggregate, FlowsDoNotCrossTalk) {
  // Concurrent sessions on one client must keep distinct per-flow counters.
  const AggregateResult r = run_aggregate_experiment(small_config());
  ASSERT_EQ(r.sessions.size(), 2u);
  const auto& real = r.sessions[0];
  const auto& media = r.sessions[1];
  EXPECT_EQ(real.clip.player, PlayerKind::kRealPlayer);
  EXPECT_EQ(media.clip.player, PlayerKind::kMediaPlayer);
  EXPECT_NE(real.packets, 0u);
  EXPECT_NE(media.packets, 0u);
  // Session rates differ (84 vs 102.3 Kbps encodings, different behaviour).
  EXPECT_NE(real.mean_rate_kbps, media.mean_rate_kbps);
}

}  // namespace
}  // namespace streamlab
