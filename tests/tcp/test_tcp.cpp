#include "tcp/sender.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "tcp/receiver.hpp"

namespace streamlab {
namespace {

PathConfig tcp_path(double bottleneck_mbps = 10.0, double loss = 0.0, int hops = 5) {
  PathConfig cfg;
  cfg.hop_count = hops;
  cfg.one_way_propagation = Duration::millis(15);
  cfg.bottleneck_bandwidth = BitRate::mbps(bottleneck_mbps);
  cfg.jitter_stddev = Duration::zero();
  cfg.loss_probability = loss;
  cfg.queue_limit_bytes = 64 * 1024;
  return cfg;
}

struct TcpFixture {
  Network net;
  Host& server;
  TcpDemux client_demux;
  TcpDemux server_demux;
  TcpBulkReceiver receiver;
  TcpBulkSender sender;

  TcpFixture(std::uint64_t bytes, PathConfig path = tcp_path(),
             TcpSenderConfig config = {})
      : net(path),
        server(net.add_server("sink")),
        client_demux(net.client()),
        server_demux(server),
        receiver(server_demux, 5001),
        sender(client_demux, 40001, Endpoint{server.address(), 5001}, bytes, config) {}

  void run(Duration limit = Duration::seconds(600)) {
    sender.start();
    const SimTime deadline = net.loop().now() + limit;
    while (!sender.done() && net.loop().now() < deadline) {
      if (net.loop().run_until(net.loop().now() + Duration::millis(100)) == 0 &&
          net.loop().empty())
        break;
    }
  }
};

TEST(TcpDemux, RoutesByPortAndCountsUnclaimed) {
  Network net(tcp_path());
  Host& server = net.add_server("srv");
  TcpDemux demux(server);
  int hits = 0;
  demux.bind(80, [&](auto&, auto, auto, auto) { ++hits; });

  TcpHeader to_open;
  to_open.src_port = 1234;
  to_open.dst_port = 80;
  to_open.flag_syn = true;
  net.client().tcp_send(to_open, server.address(), {});
  TcpHeader to_closed = to_open;
  to_closed.dst_port = 81;
  net.client().tcp_send(to_closed, server.address(), {});
  net.loop().run();

  EXPECT_EQ(hits, 1);
  EXPECT_EQ(demux.segments_demuxed(), 1u);
  EXPECT_EQ(demux.segments_unclaimed(), 1u);
}

TEST(Tcp, HandshakeEstablishes) {
  TcpFixture f(0);
  f.run();
  EXPECT_TRUE(f.sender.connected());
  EXPECT_TRUE(f.receiver.connected());
  EXPECT_TRUE(f.sender.done());  // zero-length transfer completes immediately
}

TEST(Tcp, TransfersAllBytesOnCleanPath) {
  const std::uint64_t bytes = 500'000;
  TcpFixture f(bytes);
  f.run();
  EXPECT_TRUE(f.sender.done());
  EXPECT_TRUE(f.receiver.finished());
  EXPECT_EQ(f.receiver.bytes_received(), bytes);
  EXPECT_EQ(f.sender.stats().bytes_acked, bytes);
  EXPECT_EQ(f.sender.stats().retransmissions, 0u);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);
}

TEST(Tcp, SlowStartGrowsCwndExponentially) {
  TcpFixture f(2'000'000);
  f.run();
  ASSERT_TRUE(f.sender.done());
  const auto& trace = f.sender.cwnd_trace();
  ASSERT_GT(trace.size(), 10u);
  // cwnd grows well beyond the initial 2 segments on a clean path.
  double max_cwnd = 0;
  for (const auto& [t, cwnd] : trace) max_cwnd = std::max(max_cwnd, cwnd);
  EXPECT_GT(max_cwnd, 20.0);
}

TEST(Tcp, RttEstimateReflectsPath) {
  TcpFixture f(300'000);
  f.run();
  ASSERT_TRUE(f.sender.smoothed_rtt().has_value());
  // 15 ms one-way x 2 plus serialization/queueing: 30-80 ms.
  const double rtt_ms = f.sender.smoothed_rtt()->to_millis();
  EXPECT_GT(rtt_ms, 25.0);
  EXPECT_LT(rtt_ms, 100.0);
}

TEST(Tcp, RecoversFromRandomLoss) {
  const std::uint64_t bytes = 400'000;
  PathConfig lossy = tcp_path(10.0, /*loss=*/0.02);
  lossy.seed = 11;
  TcpFixture f(bytes, lossy);
  f.run();
  EXPECT_TRUE(f.sender.done());
  EXPECT_EQ(f.receiver.bytes_received(), bytes);  // reliable despite loss
  EXPECT_GT(f.sender.stats().retransmissions, 0u);
}

TEST(Tcp, FastRetransmitPreferredOverTimeout) {
  PathConfig lossy = tcp_path(10.0, 0.01);
  lossy.seed = 23;
  TcpFixture f(1'000'000, lossy);
  f.run();
  ASSERT_TRUE(f.sender.done());
  // With a filled pipe, most single losses repair via dupacks, not RTO.
  EXPECT_GT(f.sender.stats().fast_retransmits, 0u);
  EXPECT_GE(f.sender.stats().fast_retransmits, f.sender.stats().timeouts);
}

TEST(Tcp, ThroughputApproachesBottleneck) {
  // 2 Mbps bottleneck, large transfer: TCP should fill most of the link.
  PathConfig narrow = tcp_path(2.0);
  TcpFixture f(3'000'000, narrow);
  f.run(Duration::seconds(120));
  ASSERT_TRUE(f.sender.done());
  const double kbps = f.sender.mean_throughput_kbps();
  EXPECT_GT(kbps, 1200.0);  // > 60% utilisation
  EXPECT_LT(kbps, 2100.0);  // and no more than the link
}

TEST(Tcp, CongestionCollapsesCwndOnOverbuffering) {
  // Tiny queue forces drops once cwnd exceeds the BDP: cwnd must saw-tooth.
  PathConfig tight = tcp_path(2.0);
  tight.queue_limit_bytes = 8 * 1024;
  TcpFixture f(2'000'000, tight);
  f.run(Duration::seconds(180));
  ASSERT_TRUE(f.sender.done());
  EXPECT_GT(f.sender.stats().fast_retransmits + f.sender.stats().timeouts, 0u);
  // The trace contains at least one decrease.
  const auto& trace = f.sender.cwnd_trace();
  bool decreased = false;
  for (std::size_t i = 1; i < trace.size() && !decreased; ++i)
    decreased = trace[i].second < trace[i - 1].second - 1.0;
  EXPECT_TRUE(decreased);
}

TEST(Tcp, DeterministicGivenSeed) {
  PathConfig path = tcp_path(5.0, 0.01);
  path.seed = 9;
  TcpFixture a(200'000, path);
  a.run();
  TcpFixture b(200'000, path);
  b.run();
  EXPECT_EQ(a.sender.stats().segments_sent, b.sender.stats().segments_sent);
  EXPECT_EQ(a.sender.stats().retransmissions, b.sender.stats().retransmissions);
}

TEST(Tcp, ReceiverCountsDuplicates) {
  PathConfig lossy = tcp_path(10.0, 0.03);
  lossy.seed = 31;
  TcpFixture f(500'000, lossy);
  f.run();
  ASSERT_TRUE(f.sender.done());
  // Go-back-N after timeouts resends already-received data occasionally.
  EXPECT_EQ(f.receiver.bytes_received(), 500'000u);
}

}  // namespace
}  // namespace streamlab
