#include <gtest/gtest.h>
TEST(Placeholder_pcap, Builds) { SUCCEED(); }
