#include "pcap/pcap_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/bytes.hpp"

namespace streamlab {
namespace {

CaptureTrace sample_trace(int packets = 3, std::uint32_t snaplen = 65535) {
  CaptureTrace trace(snaplen);
  for (int i = 0; i < packets; ++i) {
    const auto pkt = make_udp_packet(Endpoint{Ipv4Address(1, 1, 1, 1), 10},
                                     Endpoint{Ipv4Address(2, 2, 2, 2), 20},
                                     std::vector<std::uint8_t>(50 + i, 0x33),
                                     static_cast<std::uint16_t>(i));
    trace.add_packet(SimTime(1'000'000'000LL * i + 123'456'789), MacAddress::for_nic(1),
                     MacAddress::for_nic(2), pkt);
  }
  return trace;
}

TEST(PcapFile, RoundTripsExactly) {
  const CaptureTrace original = sample_trace();
  std::stringstream buf;
  ASSERT_TRUE(write_pcap(buf, original));

  const auto loaded = read_pcap(buf);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->snaplen(), original.snaplen());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = loaded->records()[i];
    EXPECT_EQ(a.timestamp, b.timestamp) << "record " << i;  // nanosecond exact
    EXPECT_EQ(a.original_length, b.original_length);
    EXPECT_EQ(a.data, b.data);
  }
}

TEST(PcapFile, GlobalHeaderLayout) {
  std::stringstream buf;
  ASSERT_TRUE(write_pcap(buf, sample_trace(0)));
  const std::string raw = buf.str();
  ASSERT_EQ(raw.size(), 24u);  // empty trace: global header only

  const auto bytes = std::span(reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
  ByteReader r(bytes);
  EXPECT_EQ(r.u32le(), kPcapMagicNanos);
  EXPECT_EQ(r.u16le(), 2);  // version major
  EXPECT_EQ(r.u16le(), 4);  // version minor
  r.u32le();                // thiszone
  r.u32le();                // sigfigs
  EXPECT_EQ(r.u32le(), 65535u);
  EXPECT_EQ(r.u32le(), kPcapLinkTypeEthernet);
}

TEST(PcapFile, ReadsMicrosecondVariant) {
  // Hand-build a classic microsecond pcap with one 4-byte record.
  ByteWriter w;
  w.u32le(kPcapMagicMicros);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(65535);
  w.u32le(1);
  w.u32le(10);      // ts_sec
  w.u32le(500000);  // ts_usec
  w.u32le(4);       // incl_len
  w.u32le(4);       // orig_len
  w.u32le(0xAABBCCDD);

  std::stringstream buf;
  const auto view = w.view();
  buf.write(reinterpret_cast<const char*>(view.data()),
            static_cast<std::streamsize>(view.size()));

  const auto loaded = read_pcap(buf);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->records()[0].timestamp, SimTime::from_seconds(10.5));
}

TEST(PcapFile, RejectsBadMagic) {
  std::stringstream buf("not a pcap file at all........");
  const auto r = read_pcap(buf);
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find("magic"), std::string::npos);
}

TEST(PcapFile, RejectsTruncatedRecord) {
  const CaptureTrace original = sample_trace(1);
  std::stringstream buf;
  ASSERT_TRUE(write_pcap(buf, original));
  std::string raw = buf.str();
  raw.resize(raw.size() - 10);  // chop the record body
  std::stringstream cut(raw);
  EXPECT_FALSE(read_pcap(cut).has_value());
}

TEST(PcapFile, RejectsOversizedRecordLength) {
  ByteWriter w;
  w.u32le(kPcapMagicNanos);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(100);  // snaplen
  w.u32le(1);
  w.u32le(0);
  w.u32le(0);
  w.u32le(500);  // incl_len > snaplen
  w.u32le(500);
  std::stringstream buf;
  const auto view = w.view();
  buf.write(reinterpret_cast<const char*>(view.data()),
            static_cast<std::streamsize>(view.size()));
  EXPECT_FALSE(read_pcap(buf).has_value());
}

TEST(PcapFile, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/streamlab_test.pcap";
  const CaptureTrace original = sample_trace(5);
  ASSERT_TRUE(write_pcap_file(path, original));
  const auto loaded = read_pcap_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 5u);
  std::remove(path.c_str());
}

TEST(PcapFile, MissingFileReportsError) {
  const auto r = read_pcap_file("/nonexistent/path/foo.pcap");
  EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace streamlab
