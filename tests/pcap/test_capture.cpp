#include "pcap/capture.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

Ipv4Packet sample_packet(std::size_t payload = 100) {
  return make_udp_packet(Endpoint{Ipv4Address(1, 1, 1, 1), 10},
                         Endpoint{Ipv4Address(2, 2, 2, 2), 20},
                         std::vector<std::uint8_t>(payload, 0x42), 7);
}

TEST(CaptureTrace, EmptyDefaults) {
  CaptureTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_bytes(), 0u);
  EXPECT_EQ(trace.duration(), Duration::zero());
  EXPECT_EQ(trace.snaplen(), 65535u);
}

TEST(CaptureTrace, AddPacketFramesAndTimestamps) {
  CaptureTrace trace;
  const auto pkt = sample_packet();
  trace.add_packet(SimTime::from_seconds(1.5), MacAddress::for_nic(1),
                   MacAddress::for_nic(2), pkt);
  ASSERT_EQ(trace.size(), 1u);
  const auto& rec = trace.records()[0];
  EXPECT_EQ(rec.timestamp, SimTime::from_seconds(1.5));
  EXPECT_EQ(rec.original_length, kEthernetHeaderSize + pkt.total_length());
  EXPECT_EQ(rec.data.size(), rec.original_length);
}

TEST(CaptureTrace, SnaplenTruncatesStoredBytesNotLength) {
  CaptureTrace trace(64);
  trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2),
                   sample_packet(1000));
  const auto& rec = trace.records()[0];
  EXPECT_EQ(rec.data.size(), 64u);
  EXPECT_EQ(rec.original_length, kEthernetHeaderSize + kIpv4HeaderSize + kUdpHeaderSize + 1000);
}

TEST(CaptureTrace, TotalBytesUsesOriginalLength) {
  CaptureTrace trace(64);
  for (int i = 0; i < 3; ++i)
    trace.add_packet(SimTime::from_seconds(i), MacAddress::for_nic(1),
                     MacAddress::for_nic(2), sample_packet(1000));
  EXPECT_EQ(trace.total_bytes(), 3u * (kEthernetHeaderSize + 28 + 1000));
  EXPECT_EQ(trace.duration(), Duration::seconds(2));
}

}  // namespace
}  // namespace streamlab
