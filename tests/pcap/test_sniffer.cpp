#include "pcap/sniffer.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "sim/network.hpp"

namespace streamlab {
namespace {

PathConfig tiny_path() {
  PathConfig cfg;
  cfg.hop_count = 3;
  cfg.jitter_stddev = Duration::zero();
  return cfg;
}

TEST(Sniffer, CapturesInboundTraffic) {
  Network net(tiny_path());
  Host& server = net.add_server("srv");
  net.client().udp_bind(7000, [](auto, auto, auto) {});

  Sniffer sniffer(net.client());
  server.udp_send(5000, Endpoint{net.client().address(), 7000},
                  std::vector<std::uint8_t>(100, 1));
  net.loop().run();

  ASSERT_EQ(sniffer.packets_captured(), 1u);
  const auto& rec = sniffer.trace().records()[0];
  const auto parsed = parse_frame(rec.data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, server.address());
  EXPECT_EQ(parsed->ip.dst, net.client().address());
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->dst_port, 7000);
}

TEST(Sniffer, CapturesFragmentsIndividually) {
  Network net(tiny_path());
  Host& server = net.add_server("srv");
  net.client().udp_bind(7000, [](auto, auto, auto) {});

  Sniffer sniffer(net.client());
  // 3008-byte datagram -> 3 wire packets.
  server.udp_send(5000, Endpoint{net.client().address(), 7000},
                  std::vector<std::uint8_t>(3000, 1));
  net.loop().run();
  EXPECT_EQ(sniffer.packets_captured(), 3u);

  int fragments = 0;
  for (const auto& rec : sniffer.trace().records()) {
    const auto parsed = parse_frame(rec.data);
    ASSERT_TRUE(parsed.has_value());
    fragments += parsed->ip.is_trailing_fragment();
  }
  EXPECT_EQ(fragments, 2);
}

TEST(Sniffer, DirectionFiltering) {
  Network net(tiny_path());
  Host& server = net.add_server("srv");
  server.udp_bind(5000, [&](auto data, Endpoint from, auto) {
    server.udp_send(5000, from, data);  // echo
  });
  net.client().udp_bind(7000, [](auto, auto, auto) {});

  Sniffer::Options outbound_only;
  outbound_only.capture_inbound = false;
  Sniffer sniffer(net.client(), outbound_only);

  net.client().udp_send(7000, Endpoint{server.address(), 5000},
                        std::vector<std::uint8_t>{1});
  net.loop().run();

  ASSERT_EQ(sniffer.packets_captured(), 1u);
  const auto parsed = parse_frame(sniffer.trace().records()[0].data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, net.client().address());
}

TEST(Sniffer, SnaplenApplied) {
  Network net(tiny_path());
  Host& server = net.add_server("srv");
  net.client().udp_bind(7000, [](auto, auto, auto) {});

  Sniffer::Options opts;
  opts.snaplen = 96;
  Sniffer sniffer(net.client(), opts);
  server.udp_send(5000, Endpoint{net.client().address(), 7000},
                  std::vector<std::uint8_t>(1000, 1));
  net.loop().run();

  ASSERT_EQ(sniffer.packets_captured(), 1u);
  EXPECT_EQ(sniffer.trace().records()[0].data.size(), 96u);
  EXPECT_EQ(sniffer.trace().records()[0].original_length, 14u + 20 + 8 + 1000);
}

TEST(Sniffer, DetachesOnDestruction) {
  Network net(tiny_path());
  Host& server = net.add_server("srv");
  net.client().udp_bind(7000, [](auto, auto, auto) {});
  {
    Sniffer sniffer(net.client());
  }
  server.udp_send(5000, Endpoint{net.client().address(), 7000},
                  std::vector<std::uint8_t>{1});
  net.loop().run();  // no crash: tap removed
  SUCCEED();
}

TEST(Sniffer, TimestampsAreArrivalTimes) {
  Network net(tiny_path());
  Host& server = net.add_server("srv");
  net.client().udp_bind(7000, [](auto, auto, auto) {});

  Sniffer sniffer(net.client());
  server.udp_send(5000, Endpoint{net.client().address(), 7000},
                  std::vector<std::uint8_t>(100, 1));
  net.loop().run();
  ASSERT_EQ(sniffer.packets_captured(), 1u);
  EXPECT_GT(sniffer.trace().records()[0].timestamp, SimTime::zero());
}

}  // namespace
}  // namespace streamlab
