// Tests of the bandwidth-constrained extension: the fragmentation goodput
// hazard of Section 3.C, measured.
#include "congestion/experiment.hpp"

#include <gtest/gtest.h>

#include "players/server.hpp"

namespace streamlab {
namespace {

ClipInfo test_clip(PlayerKind player, double kbps, int seconds = 40) {
  ClipInfo c;
  c.data_set = 2;
  c.content = ContentClass::kCommercial;
  c.player = player;
  c.tier = RateTier::kHigh;
  c.encoded_rate = BitRate::kbps(kbps);
  c.advertised_rate = BitRate::kbps(300);
  c.length = Duration::seconds(seconds);
  return c;
}

CongestionConfig config_with(double bottleneck_kbps) {
  CongestionConfig config;
  config.bottleneck = BitRate::kbps(bottleneck_kbps);
  config.seed = 7;
  return config;
}

TEST(Congestion, UnconstrainedPathIsClean) {
  // Bottleneck well above the encoding rate: no loss, no waste.
  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    const auto r = run_congestion_experiment(test_clip(player, 300), config_with(2000));
    EXPECT_LT(r.packet_loss, 0.01) << to_string(player);
    EXPECT_GT(r.reception_quality, 95.0) << to_string(player);
    EXPECT_GT(r.goodput_efficiency(), 0.9) << to_string(player);
    EXPECT_LT(r.offered_load, 1.0);
  }
}

TEST(Congestion, OverloadCausesLoss) {
  // Bottleneck at 60% of the encoding rate: the drop-tail queue must shed.
  const auto r =
      run_congestion_experiment(test_clip(PlayerKind::kMediaPlayer, 300), config_with(180));
  EXPECT_GT(r.offered_load, 1.5);
  EXPECT_GT(r.packet_loss, 0.1);
  EXPECT_LT(r.reception_quality, 90.0);
}

TEST(Congestion, FragmentedFlowWastesBandwidth) {
  // Section 3.C: losing one fragment discards the whole application frame,
  // so the surviving fragments of that frame are pure waste. A fragmenting
  // MediaPlayer flow under overload must show nonzero waste.
  const auto r =
      run_congestion_experiment(test_clip(PlayerKind::kMediaPlayer, 300), config_with(200));
  EXPECT_GT(r.wasted_kbps, 5.0);
  EXPECT_LT(r.goodput_efficiency(), 0.9);
}

TEST(Congestion, RealPlayerDegradesMoreGracefully) {
  // Same content, same constrained bottleneck: the never-fragmenting
  // RealPlayer flow converts more of its delivered bytes into goodput than
  // the fragmenting MediaPlayer flow — the paper's collapse warning.
  const auto media =
      run_congestion_experiment(test_clip(PlayerKind::kMediaPlayer, 300), config_with(220));
  const auto real =
      run_congestion_experiment(test_clip(PlayerKind::kRealPlayer, 300), config_with(220));
  EXPECT_GT(real.goodput_efficiency(), media.goodput_efficiency() + 0.05);
}

TEST(Congestion, ThroughputBoundedByBottleneck) {
  const auto r =
      run_congestion_experiment(test_clip(PlayerKind::kMediaPlayer, 300), config_with(150));
  // Delivered wire rate cannot exceed the constrained link (small slack for
  // windowed measurement).
  EXPECT_LT(r.throughput_kbps, 150.0 * 1.1);
  EXPECT_GT(r.throughput_kbps, 100.0);  // and the link does carry traffic
}

TEST(Congestion, SweepMonotoneQuality) {
  // Reception quality improves as the bottleneck widens.
  const auto sweep = sweep_bottleneck(test_clip(PlayerKind::kMediaPlayer, 300),
                                      {150, 300, 600}, config_with(0));
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].reception_quality, sweep[2].reception_quality);
  EXPECT_GT(sweep[0].packet_loss, sweep[2].packet_loss);
}

TEST(CongestionWithScaling, ScalingRecoversQuality) {
  // The Section VI adaptation: with media scaling enabled, the server thins
  // frames until the stream fits the bottleneck; rendered quality of the
  // *sent* frames recovers even though fewer frames are shown.
  const ClipInfo clip = test_clip(PlayerKind::kMediaPlayer, 300, 60);

  CongestionConfig config = config_with(200);

  // Baseline: no adaptation.
  const auto baseline = run_congestion_experiment(clip, config);

  // Adaptive run, assembled manually to flip scaling on.
  PathConfig path;
  path.hop_count = config.hop_count;
  path.one_way_propagation = config.one_way_propagation;
  path.bottleneck_bandwidth = config.bottleneck;
  path.queue_limit_bytes = config.queue_limit_bytes;
  path.loss_probability = 0.0;
  path.seed = config.seed;

  Network net(path);
  Host& server_host = net.add_server("server");
  const EncodedClip encoded = encode_clip(clip, config.seed);
  WmServer server(server_host, encoded, config.wm, kMediaServerPort);

  MediaScalingPolicy policy;
  policy.enabled = true;
  server.enable_scaling(policy);

  StreamClient::Config cc;
  cc.kind = clip.player;
  cc.scaling = policy;
  StreamClient client(net.client(), server.clip(),
                      Endpoint{server_host.address(), kMediaServerPort}, cc);
  client.start();
  net.loop().run_until(net.loop().now() + clip.length * 2 + Duration::seconds(60));

  // The server actually adapted.
  EXPECT_GT(server.scaling_level_changes(), 0u);
  EXPECT_LT(server.scaling_keep_fraction(), 1.0);
  EXPECT_GT(server.frames_thinned(), 0u);
  EXPECT_GT(client.receiver_reports_sent(), 5u);

  // Of the frames the server chose to send, far more arrive on time than in
  // the unadapted overload run. Sent frames = total - thinned.
  const double sent_frames =
      static_cast<double>(encoded.frames().size()) - server.frames_thinned();
  const double rendered = client.frames_rendered();
  const double adaptive_quality = 100.0 * rendered / sent_frames;
  EXPECT_GT(adaptive_quality, baseline.reception_quality + 10.0);
}

}  // namespace
}  // namespace streamlab
