// Tests of the TCP-friendliness extension.
#include "congestion/friendliness.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

ClipInfo media_clip(PlayerKind player, double kbps, int seconds = 60) {
  ClipInfo c;
  c.data_set = 1;
  c.content = ContentClass::kSports;
  c.player = player;
  c.tier = kbps < 150 ? RateTier::kLow : RateTier::kHigh;
  c.encoded_rate = BitRate::kbps(kbps);
  c.advertised_rate = BitRate::kbps(kbps < 150 ? 56 : 300);
  c.length = Duration::seconds(seconds);
  return c;
}

FriendlinessConfig config_400k() {
  FriendlinessConfig config;
  config.bottleneck = BitRate::kbps(400);
  config.seed = 5;
  return config;
}

TEST(Friendliness, BothFlowsCoexistBelowFairShare) {
  // Media at 100 Kbps over a 400 Kbps link: no contention, TCP takes the rest.
  const auto r = run_friendliness_experiment(
      media_clip(PlayerKind::kMediaPlayer, 100), config_400k());
  EXPECT_GT(r.contention_seconds, 30.0);
  EXPECT_NEAR(r.media_share_kbps, 105.0, 15.0);  // wire overhead included
  EXPECT_LT(r.media_fairness_index, 0.7);
  EXPECT_GT(r.tcp_share_kbps, 200.0);  // TCP soaks up the leftover
}

TEST(Friendliness, MediaStreamIsUnresponsive) {
  // Media at 300 Kbps of a 400 Kbps link (fair share 200): the UDP stream
  // keeps its full rate — fairness index well above 1 — and TCP is squeezed
  // below its fair share. The paper's expected "lack of TCP-Friendliness".
  const auto r = run_friendliness_experiment(
      media_clip(PlayerKind::kMediaPlayer, 300), config_400k());
  EXPECT_GT(r.media_fairness_index, 1.3);
  EXPECT_LT(r.tcp_share_kbps, r.fair_share_kbps);
  EXPECT_GT(r.tcp_retransmissions, 0u);  // TCP is the one backing off
}

TEST(Friendliness, RealPlayerEquallyUnresponsive) {
  const auto r = run_friendliness_experiment(
      media_clip(PlayerKind::kRealPlayer, 300), config_400k());
  EXPECT_GT(r.media_fairness_index, 1.2);
  EXPECT_LT(r.tcp_share_kbps, r.fair_share_kbps);
}

TEST(Friendliness, SharesRoughlyPartitionTheLink) {
  const auto r = run_friendliness_experiment(
      media_clip(PlayerKind::kMediaPlayer, 200), config_400k());
  const double total = r.media_share_kbps + r.tcp_share_kbps;
  // Together the two flows use most of the bottleneck but cannot exceed it.
  EXPECT_GT(total, 0.7 * r.bottleneck.to_kbps());
  EXPECT_LT(total, 1.1 * r.bottleneck.to_kbps());
}

TEST(Friendliness, FairnessGrowsWithMediaRate) {
  const auto low = run_friendliness_experiment(
      media_clip(PlayerKind::kMediaPlayer, 100), config_400k());
  const auto high = run_friendliness_experiment(
      media_clip(PlayerKind::kMediaPlayer, 300), config_400k());
  EXPECT_GT(high.media_fairness_index, low.media_fairness_index + 0.5);
}

}  // namespace
}  // namespace streamlab
