#include "analysis/burstiness.hpp"

#include <gtest/gtest.h>

#include "pcap/capture.hpp"
#include "util/rng.hpp"

namespace streamlab {
namespace {

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

FlowTrace flow_at_times(const std::vector<double>& times) {
  CaptureTrace trace;
  std::uint16_t id = 0;
  for (const double t : times)
    trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                     MacAddress::for_nic(2),
                     make_udp_packet(kServer, kClient,
                                     std::vector<std::uint8_t>(100, 1), id++));
  return FlowTrace::extract(dissect_trace(trace), kServer.ip, kClient.port);
}

TEST(Burstiness, WindowedCountsPartitionFlow) {
  std::vector<double> times;
  for (int i = 0; i < 100; ++i) times.push_back(1.0 + i * 0.1);  // 10 pkts/s x 10 s
  const auto counts = windowed_counts(flow_at_times(times), Duration::seconds(1));
  ASSERT_GE(counts.size(), 10u);
  double total = 0;
  for (const double c : counts) total += c;
  EXPECT_EQ(total, 100.0);
  EXPECT_EQ(counts[0], 10.0);
}

TEST(Burstiness, CbrIdcNearZero) {
  std::vector<double> times;
  for (int i = 0; i < 600; ++i) times.push_back(1.0 + i * 0.1);
  const auto s = summarize_burstiness(flow_at_times(times));
  EXPECT_LT(s.idc, 0.05);
  EXPECT_NEAR(s.peak_to_mean, 1.0, 0.05);
}

TEST(Burstiness, PoissonIdcNearOne) {
  Rng rng(42);
  std::vector<double> times;
  double t = 1.0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.exponential(0.1);  // Poisson arrivals at 10/s
    times.push_back(t);
  }
  const auto counts = windowed_counts(flow_at_times(times), Duration::seconds(1));
  EXPECT_NEAR(index_of_dispersion(counts), 1.0, 0.3);
}

TEST(Burstiness, OnOffFlowHighlyDispersed) {
  // 1 s bursts of 50 packets alternating with 4 s silences.
  std::vector<double> times;
  for (int burst = 0; burst < 20; ++burst) {
    const double base = burst * 5.0;
    for (int i = 0; i < 50; ++i) times.push_back(base + i * 0.02);
  }
  const auto s = summarize_burstiness(flow_at_times(times));
  EXPECT_GT(s.idc, 5.0);
  EXPECT_GT(s.peak_to_mean, 3.0);
}

TEST(Burstiness, AutocorrelationOfAlternatingSeries) {
  // Perfect alternation has lag-1 autocorrelation ~ -1.
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(i % 2 == 0 ? 10.0 : 0.0);
  EXPECT_LT(autocorrelation(series, 1), -0.9);
  // A constant series is degenerate -> 0.
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>(50, 5.0), 1), 0.0);
}

TEST(Burstiness, SkipWindowsDropsStartupBurst) {
  // 3x rate for the first 10 s, then steady: skipping 10 windows removes
  // the burst and the steady remainder is near-CBR.
  std::vector<double> times;
  double t = 0.0;
  while (t < 10.0) {
    times.push_back(t);
    t += 1.0 / 30.0;
  }
  while (t < 60.0) {
    times.push_back(t);
    t += 0.1;
  }
  const auto with_burst = summarize_burstiness(flow_at_times(times));
  const auto steady_only =
      summarize_burstiness(flow_at_times(times), Duration::seconds(1), 10);
  EXPECT_GT(with_burst.idc, 5.0 * (steady_only.idc + 0.01));
  EXPECT_LT(steady_only.peak_to_mean, 1.2);
}

TEST(Burstiness, EmptyFlowSafe) {
  const FlowTrace empty = FlowTrace::extract({}, kServer.ip, kClient.port);
  const auto s = summarize_burstiness(empty);
  EXPECT_EQ(s.windows, 0u);
  EXPECT_DOUBLE_EQ(s.idc, 0.0);
  EXPECT_TRUE(windowed_counts(empty, Duration::seconds(1)).empty());
  EXPECT_DOUBLE_EQ(index_of_dispersion({}), 0.0);
}

}  // namespace
}  // namespace streamlab
