#include "analysis/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace streamlab {
namespace {

TEST(Histogram, EmptyHasNoBins) {
  Histogram h(10.0);
  EXPECT_TRUE(h.bins().empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.mode().count, 0u);
}

TEST(Histogram, BinAssignment) {
  Histogram h(10.0);
  h.add(5.0);    // bin [0,10)
  h.add(9.999);  // bin [0,10)
  h.add(10.0);   // bin [10,20)
  h.add(-1.0);   // bin [-10,0)
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0].lower, -10.0);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_DOUBLE_EQ(bins[1].lower, 0.0);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_DOUBLE_EQ(bins[2].lower, 10.0);
  EXPECT_EQ(bins[2].count, 1u);
}

TEST(Histogram, ProbabilitiesSumToOne) {
  Histogram h(50.0);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform(0, 1500));
  double total = 0.0;
  for (const auto& b : h.bins()) total += b.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Histogram, GapsBetweenOccupiedBinsIncluded) {
  Histogram h(10.0);
  h.add(5.0);
  h.add(95.0);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 10u);  // [0,10) through [90,100), gaps at zero count
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[5].count, 0u);
  EXPECT_EQ(bins[9].count, 1u);
}

TEST(Histogram, ModeFindsPeak) {
  Histogram h(1.0);
  for (int i = 0; i < 10; ++i) h.add(5.5);
  for (int i = 0; i < 3; ++i) h.add(2.5);
  const auto mode = h.mode();
  EXPECT_DOUBLE_EQ(mode.lower, 5.0);
  EXPECT_EQ(mode.count, 10u);
  EXPECT_NEAR(mode.probability, 10.0 / 13.0, 1e-12);
}

TEST(Histogram, MassIn) {
  Histogram h(10.0);
  for (int i = 0; i < 8; ++i) h.add(15.0);  // bin [10,20)
  for (int i = 0; i < 2; ++i) h.add(55.0);  // bin [50,60)
  EXPECT_NEAR(h.mass_in(10.0, 20.0), 0.8, 1e-12);
  EXPECT_NEAR(h.mass_in(0.0, 100.0), 1.0, 1e-12);
  EXPECT_NEAR(h.mass_in(20.0, 50.0), 0.0, 1e-12);
}

TEST(Histogram, CustomOrigin) {
  Histogram h(10.0, 5.0);  // bins [5,15), [15,25), ...
  h.add(5.0);
  h.add(14.9);
  h.add(15.0);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].lower, 5.0);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].count, 1u);
}

TEST(Histogram, CentersAreMidBin) {
  Histogram h(100.0);
  h.add(50.0);
  EXPECT_DOUBLE_EQ(h.bins()[0].center, 50.0);
}

TEST(EmpiricalCdf, StepFunctionProperties) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0});
  // Duplicates collapse: x=2 appears once with cumulative probability.
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].p, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].p, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].p, 1.0);
}

TEST(EmpiricalCdf, MonotoneNonDecreasing) {
  Rng rng(5);
  std::vector<double> values(500);
  for (auto& v : values) v = rng.normal();
  const auto cdf = empirical_cdf(values);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
    EXPECT_GT(cdf[i].p, cdf[i - 1].p);
  }
  EXPECT_DOUBLE_EQ(cdf.back().p, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(CdfAtQuantiles, EvenSpacing) {
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const auto pts = cdf_at_quantiles(values, 11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts[0].p, 0.0);
  EXPECT_DOUBLE_EQ(pts[10].p, 1.0);
  EXPECT_NEAR(pts[5].x, 50.0, 1e-9);
}

}  // namespace
}  // namespace streamlab
