#include "analysis/bandwidth.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

/// Synthesizes a (t, kbps) timeline: `burst_windows` windows at burst_rate,
/// then `steady_windows` at steady_rate.
std::vector<std::pair<double, double>> timeline(int burst_windows, double burst_rate,
                                                int steady_windows, double steady_rate,
                                                double window_s = 2.0) {
  std::vector<std::pair<double, double>> out;
  double t = 0.0;
  for (int i = 0; i < burst_windows; ++i, t += window_s) out.emplace_back(t, burst_rate);
  for (int i = 0; i < steady_windows; ++i, t += window_s) out.emplace_back(t, steady_rate);
  return out;
}

TEST(BufferingAnalysis, DetectsClearBurst) {
  // The RealPlayer profile: 10 windows at 3x, then 50 at steady.
  const auto a = analyze_buffering(timeline(10, 108.0, 50, 36.0), Duration::seconds(2));
  ASSERT_TRUE(a.has_buffering_phase);
  EXPECT_NEAR(a.ratio(), 3.0, 0.01);
  EXPECT_NEAR(a.buffering_rate_kbps, 108.0, 0.1);
  EXPECT_NEAR(a.steady_rate_kbps, 36.0, 0.1);
  EXPECT_NEAR(a.buffering_duration.to_seconds(), 20.0, 0.1);
}

TEST(BufferingAnalysis, FlatTimelineHasRatioOne) {
  // The MediaPlayer profile: constant rate throughout.
  const auto a = analyze_buffering(timeline(0, 0.0, 60, 100.0), Duration::seconds(2));
  EXPECT_FALSE(a.has_buffering_phase);
  EXPECT_DOUBLE_EQ(a.ratio(), 1.0);
  EXPECT_NEAR(a.steady_rate_kbps, 100.0, 0.1);
}

TEST(BufferingAnalysis, SingleNoisyWindowNotABurst) {
  auto tl = timeline(0, 0.0, 60, 100.0);
  tl[0].second = 200.0;  // one spiky window
  const auto a = analyze_buffering(tl, Duration::seconds(2), 1.25, /*min_windows=*/3);
  EXPECT_FALSE(a.has_buffering_phase);
}

TEST(BufferingAnalysis, ModestBurstBelowThresholdIgnored) {
  // 1.1x burst under the 1.25 threshold: treated as steady.
  const auto a = analyze_buffering(timeline(10, 110.0, 50, 100.0), Duration::seconds(2));
  EXPECT_FALSE(a.has_buffering_phase);
}

TEST(BufferingAnalysis, RatioNearFloorDetectedWhenAboveThreshold) {
  const auto a = analyze_buffering(timeline(10, 140.0, 50, 100.0), Duration::seconds(2));
  ASSERT_TRUE(a.has_buffering_phase);
  EXPECT_NEAR(a.ratio(), 1.4, 0.01);
}

TEST(BufferingAnalysis, TooShortTimelineSafe) {
  const auto a = analyze_buffering(timeline(1, 100.0, 2, 50.0), Duration::seconds(2));
  EXPECT_FALSE(a.has_buffering_phase);
  EXPECT_DOUBLE_EQ(a.ratio(), 1.0);
}

TEST(BufferingAnalysis, EmptyTimelineSafe) {
  const auto a = analyze_buffering({}, Duration::seconds(2));
  EXPECT_FALSE(a.has_buffering_phase);
  EXPECT_DOUBLE_EQ(a.ratio(), 1.0);
  EXPECT_DOUBLE_EQ(a.steady_rate_kbps, 0.0);
}

TEST(BufferingAnalysis, ZeroSteadyRateSafe) {
  const auto a = analyze_buffering(timeline(5, 100.0, 20, 0.0), Duration::seconds(2));
  EXPECT_DOUBLE_EQ(a.ratio(), 1.0);
}

TEST(BufferingAnalysis, BurstDurationScalesWithWindow) {
  const auto a =
      analyze_buffering(timeline(8, 300.0, 40, 100.0), Duration::seconds(1));
  ASSERT_TRUE(a.has_buffering_phase);
  EXPECT_NEAR(a.buffering_duration.to_seconds(), 8.0, 0.1);
}

}  // namespace
}  // namespace streamlab
