#include <gtest/gtest.h>
TEST(Placeholder_analysis, Builds) { SUCCEED(); }
