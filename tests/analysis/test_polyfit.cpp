#include "analysis/polyfit.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace streamlab {
namespace {

TEST(PolyFit, ExactLineRecovered) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto fit = PolyFit::fit(xs, ys, 1);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PolyFit, ExactQuadraticRecovered) {
  std::vector<double> xs, ys;
  for (int i = -5; i <= 5; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 - 0.5 * i + 0.25 * i * i);
  }
  const auto fit = PolyFit::fit(xs, ys, 2);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -0.5, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], 0.25, 1e-9);
}

TEST(PolyFit, EvalMatchesPolynomial) {
  PolyFit fit;
  fit.coefficients = {1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(fit.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fit.eval(1.0), 6.0);
  EXPECT_DOUBLE_EQ(fit.eval(2.0), 17.0);
  EXPECT_DOUBLE_EQ(fit.eval(-1.0), 2.0);
}

TEST(PolyFit, NoisyDataReasonableFit) {
  Rng rng(6);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 700);  // the figure's Kbps range
    xs.push_back(x);
    ys.push_back(1.05 * x + 10.0 + rng.normal(0, 5.0));
  }
  const auto fit = PolyFit::fit(xs, ys, 2);
  EXPECT_GT(fit.r_squared, 0.99);
  // Trend close to the generating line across the range.
  for (const double x : {50.0, 300.0, 650.0})
    EXPECT_NEAR(fit.eval(x), 1.05 * x + 10.0, 8.0);
}

TEST(PolyFit, DegreeZeroIsMean) {
  const auto fit = PolyFit::fit({1, 2, 3}, {4.0, 6.0, 8.0}, 0);
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficients[0], 6.0, 1e-9);
}

TEST(PolyFit, RejectsUnderdeterminedSystems) {
  EXPECT_TRUE(PolyFit::fit({1.0, 2.0}, {1.0, 2.0}, 2).coefficients.empty());
  EXPECT_TRUE(PolyFit::fit({}, {}, 1).coefficients.empty());
  EXPECT_TRUE(PolyFit::fit({1.0}, {1.0, 2.0}, 0).coefficients.empty());  // size mismatch
  EXPECT_TRUE(PolyFit::fit({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, -1).coefficients.empty());
}

TEST(PolyFit, SingularSystemRejected) {
  // All x identical: Vandermonde is singular for degree >= 1.
  const auto fit = PolyFit::fit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}, 1);
  EXPECT_TRUE(fit.coefficients.empty());
}

TEST(PolyFit, ConstantDataPerfectR2) {
  const auto fit = PolyFit::fit({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}, 1);
  ASSERT_FALSE(fit.coefficients.empty());
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

}  // namespace
}  // namespace streamlab
