#include "analysis/flow.hpp"

#include <gtest/gtest.h>

#include "net/fragmentation.hpp"
#include "pcap/capture.hpp"

namespace streamlab {
namespace {

const Endpoint kServerA{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kServerB{Ipv4Address(192, 168, 100, 11), 7070};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

/// Builds a capture of n unfragmented packets from a server, `gap` apart.
CaptureTrace simple_trace(const Endpoint& server, int n, double gap_s,
                          std::size_t payload = 500, std::uint16_t dst_port = 7000) {
  CaptureTrace trace;
  for (int i = 0; i < n; ++i) {
    const auto pkt = make_udp_packet(server, Endpoint{kClient.ip, dst_port},
                                     std::vector<std::uint8_t>(payload, 1),
                                     static_cast<std::uint16_t>(i));
    trace.add_packet(SimTime::from_seconds(1.0 + i * gap_s), MacAddress::for_nic(1),
                     MacAddress::for_nic(2), pkt);
  }
  return trace;
}

TEST(FlowTrace, ExtractsBySourceAndPort) {
  CaptureTrace trace = simple_trace(kServerA, 5, 0.1);
  // Mix in traffic from another server and another port. (Keep the source
  // traces alive: records() is a view into them.)
  const CaptureTrace other_server = simple_trace(kServerB, 3, 0.1);
  const CaptureTrace other_port = simple_trace(kServerA, 2, 0.1, 500, 9999);
  for (const auto& rec : other_server.records()) trace.add(rec);
  for (const auto& rec : other_port.records()) trace.add(rec);

  const auto packets = dissect_trace(trace);
  const auto flow = FlowTrace::extract(packets, kServerA.ip, 7000);
  EXPECT_EQ(flow.size(), 5u);
  const auto flow_b = FlowTrace::extract(packets, kServerB.ip, 7000);
  EXPECT_EQ(flow_b.size(), 3u);
  // Without a port filter, both kServerA flows merge.
  const auto flow_all = FlowTrace::extract(packets, kServerA.ip);
  EXPECT_EQ(flow_all.size(), 7u);
}

TEST(FlowTrace, FragmentsBelongToFlow) {
  CaptureTrace trace;
  const auto big = make_udp_packet(kServerA, kClient, std::vector<std::uint8_t>(3000, 1), 7);
  double t = 1.0;
  for (const auto& frag : fragment_packet(big, kDefaultMtu)) {
    trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                     MacAddress::for_nic(2), frag);
    t += 0.001;
  }
  const auto flow = FlowTrace::extract(dissect_trace(trace), kServerA.ip, kClient.port);
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow.fragment_count(), 2u);
  EXPECT_NEAR(flow.fragment_fraction(), 2.0 / 3.0, 1e-9);
  EXPECT_TRUE(flow.packets()[0].first_of_group);
  EXPECT_FALSE(flow.packets()[1].first_of_group);
  EXPECT_FALSE(flow.packets()[2].first_of_group);
}

TEST(FlowTrace, PacketSizesWireLengths) {
  const auto flow = FlowTrace::extract(
      dissect_trace(simple_trace(kServerA, 4, 0.1, 500)), kServerA.ip, 7000);
  const auto sizes = flow.packet_sizes();
  ASSERT_EQ(sizes.size(), 4u);
  for (const double s : sizes) EXPECT_DOUBLE_EQ(s, 14 + 20 + 8 + 500);
}

TEST(FlowTrace, PacketSizesCanExcludeFragments) {
  CaptureTrace trace;
  const auto big = make_udp_packet(kServerA, kClient, std::vector<std::uint8_t>(3000, 1), 7);
  double t = 1.0;
  for (const auto& frag : fragment_packet(big, kDefaultMtu)) {
    trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                     MacAddress::for_nic(2), frag);
    t += 0.001;
  }
  const auto flow = FlowTrace::extract(dissect_trace(trace), kServerA.ip, kClient.port);
  EXPECT_EQ(flow.packet_sizes(true).size(), 3u);
  EXPECT_EQ(flow.packet_sizes(false).size(), 1u);
}

TEST(FlowTrace, InterarrivalsUniformSpacing) {
  const auto flow = FlowTrace::extract(
      dissect_trace(simple_trace(kServerA, 10, 0.1)), kServerA.ip, 7000);
  const auto gaps = flow.interarrivals();
  ASSERT_EQ(gaps.size(), 9u);
  for (const double g : gaps) EXPECT_NEAR(g, 0.1, 1e-9);
}

TEST(FlowTrace, GroupsOnlyInterarrivalsSkipFragments) {
  // Two fragmented datagrams 100 ms apart: raw interarrivals include the
  // ~1 ms fragment spacing; groups_only sees exactly one 100 ms gap.
  CaptureTrace trace;
  double base = 1.0;
  for (int d = 0; d < 2; ++d) {
    const auto big = make_udp_packet(kServerA, kClient, std::vector<std::uint8_t>(3000, 1),
                                     static_cast<std::uint16_t>(d));
    double t = base;
    for (const auto& frag : fragment_packet(big, kDefaultMtu)) {
      trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                       MacAddress::for_nic(2), frag);
      t += 0.001;
    }
    base += 0.1;
  }
  const auto flow = FlowTrace::extract(dissect_trace(trace), kServerA.ip, kClient.port);
  EXPECT_EQ(flow.interarrivals(false).size(), 5u);
  const auto groups = flow.interarrivals(true);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_NEAR(groups[0], 0.1, 1e-9);
}

TEST(FlowTrace, ArrivalSequenceIndices) {
  const auto flow = FlowTrace::extract(
      dissect_trace(simple_trace(kServerA, 5, 0.05)), kServerA.ip, 7000);
  const auto seq = flow.arrival_sequence();
  ASSERT_EQ(seq.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seq[i].second, i);
    EXPECT_NEAR(seq[i].first, 1.0 + 0.05 * static_cast<double>(i), 1e-9);
  }
}

TEST(FlowTrace, BandwidthTimelineWindows) {
  // 10 packets of 542 wire bytes at 10 per second for 1 s, then silence.
  const auto flow = FlowTrace::extract(
      dissect_trace(simple_trace(kServerA, 10, 0.1, 500)), kServerA.ip, 7000);
  const auto timeline = flow.bandwidth_timeline(Duration::millis(500));
  ASSERT_GE(timeline.size(), 2u);
  // First window: 5 packets x 542 bytes in 0.5 s = 43.36 Kbps.
  EXPECT_NEAR(timeline[0].second, 5 * 542 * 8 / 0.5 / 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(timeline[0].first, 0.0);
  EXPECT_DOUBLE_EQ(timeline[1].first, 0.5);
}

TEST(FlowTrace, RateAndTotals) {
  const auto flow = FlowTrace::extract(
      dissect_trace(simple_trace(kServerA, 11, 0.1, 500)), kServerA.ip, 7000);
  EXPECT_EQ(flow.total_bytes(), 11u * 542);
  EXPECT_NEAR(flow.duration().to_seconds(), 1.0, 1e-9);
  // 10 gaps x 0.1 s carrying 11 packets: mean rate over duration.
  EXPECT_NEAR(flow.mean_rate_kbps(), 11 * 542 * 8 / 1.0 / 1000.0, 1e-6);
}

TEST(FlowTrace, EmptyFlowSafeDefaults) {
  const auto flow = FlowTrace::extract({}, kServerA.ip, 7000);
  EXPECT_TRUE(flow.empty());
  EXPECT_DOUBLE_EQ(flow.fragment_fraction(), 0.0);
  EXPECT_TRUE(flow.interarrivals().empty());
  EXPECT_TRUE(flow.bandwidth_timeline(Duration::seconds(1)).empty());
  EXPECT_DOUBLE_EQ(flow.mean_rate_kbps(), 0.0);
  EXPECT_EQ(flow.duration(), Duration::zero());
}

}  // namespace
}  // namespace streamlab
