#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace streamlab {
namespace {

TEST(SummaryStats, EmptyIsZeroed) {
  const auto s = SummaryStats::from({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryStats, SingleValue) {
  const auto s = SummaryStats::from({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.standard_error, 0.0);
}

TEST(SummaryStats, KnownSample) {
  const auto s = SummaryStats::from({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.standard_error, s.stddev / std::sqrt(8.0), 1e-12);
}

TEST(SummaryStats, OddCountMedian) {
  const auto s = SummaryStats::from({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 15.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 10.0);  // clamped
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 50.0);
}

TEST(NormalizeByMean, UnitMeanResult) {
  const auto out = normalize_by_mean({2.0, 4.0, 6.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
  double sum = 0;
  for (double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum / 3.0, 1.0);
}

TEST(NormalizeByMean, DegenerateInputs) {
  EXPECT_TRUE(normalize_by_mean({}).empty());
  EXPECT_TRUE(normalize_by_mean({0.0, 0.0}).empty());  // zero mean
}

TEST(KsDistance, IdenticalSamplesNearZero) {
  Rng rng(1);
  std::vector<double> a(2000);
  for (auto& v : a) v = rng.normal();
  EXPECT_LT(ks_distance(a, a), 1e-9);
}

TEST(KsDistance, SameDistributionSmall) {
  Rng rng(2);
  std::vector<double> a(3000), b(3000);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  EXPECT_LT(ks_distance(a, b), 0.06);
}

TEST(KsDistance, DisjointDistributionsNearOne) {
  std::vector<double> a(100, 0.0), b(100, 10.0);
  for (std::size_t i = 0; i < 100; ++i) {
    a[i] = static_cast<double>(i) * 0.01;        // [0, 1)
    b[i] = 10.0 + static_cast<double>(i) * 0.01; // [10, 11)
  }
  EXPECT_GT(ks_distance(a, b), 0.99);
}

TEST(KsDistance, ShiftedDistributionsDetected) {
  Rng rng(3);
  std::vector<double> a(3000), b(3000);
  for (auto& v : a) v = rng.normal(0.0, 1.0);
  for (auto& v : b) v = rng.normal(1.0, 1.0);
  const double d = ks_distance(a, b);
  EXPECT_GT(d, 0.3);  // theoretical ~0.38
  EXPECT_LT(d, 0.5);
}

TEST(KsDistance, EmptyInputIsMaximal) {
  EXPECT_DOUBLE_EQ(ks_distance({}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(ks_distance({1.0}, {}), 1.0);
}

}  // namespace
}  // namespace streamlab
