#include "analysis/jitter.hpp"

#include <gtest/gtest.h>

#include "pcap/capture.hpp"
#include "util/rng.hpp"

namespace streamlab {
namespace {

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

FlowTrace flow_with_gaps(const std::vector<double>& gaps) {
  CaptureTrace trace;
  double t = 1.0;
  std::uint16_t id = 0;
  trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                   MacAddress::for_nic(2),
                   make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(100, 1),
                                   id++));
  for (const double g : gaps) {
    t += g;
    trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                     MacAddress::for_nic(2),
                     make_udp_packet(kServer, kClient,
                                     std::vector<std::uint8_t>(100, 1), id++));
  }
  return FlowTrace::extract(dissect_trace(trace), kServer.ip, kClient.port);
}

TEST(Rfc3550Jitter, PerfectCbrHasZeroJitter) {
  Rfc3550Jitter j(Duration::millis(100));
  for (int i = 0; i < 100; ++i)
    j.on_arrival(SimTime::from_seconds(1.0 + i * 0.1));
  EXPECT_EQ(j.jitter().ns(), 0);
  EXPECT_EQ(j.samples(), 99u);
}

TEST(Rfc3550Jitter, ConstantDeviationConvergesToIt) {
  // Gaps alternate 90/110 ms around a 100 ms nominal: |D| = 10 ms always,
  // so the estimator converges to 10 ms.
  Rfc3550Jitter j(Duration::millis(100));
  double t = 1.0;
  for (int i = 0; i < 500; ++i) {
    t += (i % 2 == 0) ? 0.09 : 0.11;
    j.on_arrival(SimTime::from_seconds(t));
  }
  EXPECT_NEAR(j.jitter().to_millis(), 10.0, 0.5);
}

TEST(Rfc3550Jitter, UnknownNominalEstimatesFromMean) {
  Rfc3550Jitter j;  // nominal unknown
  double t = 1.0;
  for (int i = 0; i < 500; ++i) {
    t += (i % 2 == 0) ? 0.09 : 0.11;
    j.on_arrival(SimTime::from_seconds(t));
  }
  // Mean gap is 100 ms; deviations are 10 ms.
  EXPECT_NEAR(j.jitter().to_millis(), 10.0, 1.5);
}

TEST(Rfc3550Jitter, ScalesWithNoiseMagnitude) {
  Rng rng(3);
  const auto jitter_for = [&rng](double noise_ms) {
    Rfc3550Jitter j(Duration::millis(100));
    double t = 1.0;
    Rng local = rng.fork();
    for (int i = 0; i < 2000; ++i) {
      t += 0.1 + local.normal(0.0, noise_ms / 1000.0);
      j.on_arrival(SimTime::from_seconds(t));
    }
    return j.jitter().to_millis();
  };
  const double small = jitter_for(1.0);
  const double large = jitter_for(10.0);
  EXPECT_GT(large, 5.0 * small);
}

TEST(SummarizeJitter, CbrFlow) {
  const FlowTrace flow = flow_with_gaps(std::vector<double>(50, 0.1));
  const auto s = summarize_jitter(flow);
  EXPECT_NEAR(s.rfc3550.to_millis(), 0.0, 0.01);
  EXPECT_NEAR(s.cv, 0.0, 1e-9);
  EXPECT_NEAR(s.mean_abs_dev.to_millis(), 0.0, 1e-6);
}

TEST(SummarizeJitter, VariedFlowNonZero) {
  Rng rng(5);
  std::vector<double> gaps;
  for (int i = 0; i < 300; ++i) gaps.push_back(rng.uniform(0.05, 0.15));
  const auto s = summarize_jitter(flow_with_gaps(gaps));
  EXPECT_GT(s.rfc3550.to_millis(), 5.0);
  EXPECT_GT(s.cv, 0.2);
  EXPECT_GT(s.mean_abs_dev.to_millis(), 10.0);
}

TEST(SummarizeJitter, EmptyFlowSafe) {
  const FlowTrace empty = FlowTrace::extract({}, kServer.ip, kClient.port);
  const auto s = summarize_jitter(empty);
  EXPECT_EQ(s.rfc3550, Duration::zero());
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
}

TEST(SummarizeJitter, PaperShapeMediaLowerThanReal) {
  // The study's jitter claim in miniature: a CBR-like flow shows far lower
  // jitter than a varied flow at the same mean rate.
  Rng rng(7);
  std::vector<double> varied;
  for (int i = 0; i < 400; ++i) varied.push_back(rng.lognormal_mean_cv(0.1, 0.45));
  const auto real_like = summarize_jitter(flow_with_gaps(varied));
  const auto media_like = summarize_jitter(flow_with_gaps(std::vector<double>(400, 0.1)));
  EXPECT_GT(real_like.rfc3550.to_millis(), 10.0 * (media_like.rfc3550.to_millis() + 0.1));
}

}  // namespace
}  // namespace streamlab
