// Fuzz: the dissector and frame parser must accept arbitrary bytes without
// crashing — a sniffer cannot choose what appears on the wire.
#include <gtest/gtest.h>

#include "dissect/dissector.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"

namespace streamlab {
namespace {

TEST(DissectFuzz, RandomBytesNeverCrash) {
  Rng rng(424242);
  for (int i = 0; i < 3000; ++i) {
    CaptureRecord rec;
    rec.timestamp = SimTime(rng.uniform_int(0, 1'000'000'000));
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 200));
    rec.data.resize(len);
    for (auto& b : rec.data) b = static_cast<std::uint8_t>(rng.next_u64());
    rec.original_length = static_cast<std::uint32_t>(len);

    const DissectedPacket pkt = dissect(rec);
    // Frame-level fields always present, whatever the bytes were.
    ASSERT_TRUE(pkt.field("frame.len").has_value());
    EXPECT_EQ(pkt.field("frame.len")->number, static_cast<std::int64_t>(len));
    (void)pkt.summary();
  }
}

TEST(DissectFuzz, BitFlippedRealFramesNeverCrash) {
  // Start from a valid frame and flip random bits: the dissector must mark
  // corruption (checksum) or parse best-effort, never misbehave.
  Rng rng(7);
  const auto pkt = make_udp_packet(Endpoint{Ipv4Address(1, 2, 3, 4), 1000},
                                   Endpoint{Ipv4Address(5, 6, 7, 8), 2000},
                                   std::vector<std::uint8_t>(100, 0x55), 42);
  const Frame frame = frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2), pkt);

  for (int i = 0; i < 2000; ++i) {
    CaptureRecord rec;
    rec.timestamp = SimTime::zero();
    auto bytes = frame.bytes();
    rec.data.assign(bytes.begin(), bytes.end());
    rec.original_length = static_cast<std::uint32_t>(rec.data.size());
    // Flip 1-4 random bits.
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(rec.data.size()) - 1));
      rec.data[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    const DissectedPacket out = dissect(rec);
    ASSERT_TRUE(out.field("frame.len").has_value());
  }
}

TEST(DissectFuzz, ParseFrameRejectsGracefully) {
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> junk(static_cast<std::size_t>(rng.uniform_int(0, 100)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto parsed = parse_frame(junk);
    if (parsed.has_value()) {
      // If it parsed, the invariants hold.
      EXPECT_EQ(parsed->eth.ethertype, kEtherTypeIpv4);
    }
  }
}

TEST(DissectFuzz, TruncationSweepOnValidFrame) {
  const auto pkt = make_udp_packet(Endpoint{Ipv4Address(1, 2, 3, 4), 1000},
                                   Endpoint{Ipv4Address(5, 6, 7, 8), 2000},
                                   std::vector<std::uint8_t>(64, 0xAA), 7);
  const Frame frame = frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2), pkt);
  const auto bytes = frame.bytes();
  // Every prefix length must be handled.
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    CaptureRecord rec;
    rec.timestamp = SimTime::zero();
    rec.data.assign(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    rec.original_length = static_cast<std::uint32_t>(bytes.size());
    const DissectedPacket out = dissect(rec);
    ASSERT_TRUE(out.field("frame.cap_len").has_value());
    EXPECT_EQ(out.field("frame.cap_len")->number, static_cast<std::int64_t>(cut));
  }
}

}  // namespace
}  // namespace streamlab
