#include "dissect/dissector.hpp"

#include <gtest/gtest.h>

#include "net/fragmentation.hpp"

namespace streamlab {
namespace {

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

CaptureRecord record_of(const Ipv4Packet& pkt, double t = 1.0) {
  CaptureTrace trace;
  trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                   MacAddress::for_nic(2), pkt);
  return trace.records()[0];
}

TEST(Dissector, UdpFieldTree) {
  const auto pkt = make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(100, 1), 42);
  const auto d = dissect(record_of(pkt));

  EXPECT_TRUE(d.has_layer("eth"));
  EXPECT_TRUE(d.has_layer("ip"));
  EXPECT_TRUE(d.has_layer("udp"));
  EXPECT_FALSE(d.has_layer("tcp"));
  EXPECT_FALSE(d.has_layer("_malformed"));

  EXPECT_EQ(d.field("frame.len")->number, 14 + 20 + 8 + 100);
  EXPECT_EQ(d.field("ip.id")->number, 42);
  EXPECT_EQ(d.field("ip.proto")->number, 17);
  EXPECT_EQ(d.field("ip.src")->display, "192.168.100.10");
  EXPECT_EQ(d.field("ip.dst")->display, "10.0.0.2");
  EXPECT_EQ(d.field("ip.fragment")->number, 0);
  EXPECT_EQ(d.field("udp.srcport")->number, 1755);
  EXPECT_EQ(d.field("udp.dstport")->number, 7000);
  EXPECT_EQ(d.field("udp.length")->number, 108);
  EXPECT_FALSE(d.field("no.such.field").has_value());
  EXPECT_EQ(d.timestamp, SimTime::from_seconds(1.0));
}

TEST(Dissector, FragmentFields) {
  const auto pkt = make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(3000, 1), 9);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  ASSERT_EQ(frags.size(), 3u);

  const auto first = dissect(record_of(frags[0]));
  EXPECT_TRUE(first.has_layer("udp"));  // leading fragment carries UDP header
  EXPECT_EQ(first.field("ip.flags.mf")->number, 1);
  EXPECT_EQ(first.field("ip.frag_offset")->number, 0);
  EXPECT_EQ(first.field("ip.fragment")->number, 1);

  const auto mid = dissect(record_of(frags[1]));
  EXPECT_FALSE(mid.has_layer("udp"));  // no transport header
  EXPECT_EQ(mid.field("ip.flags.mf")->number, 1);
  EXPECT_EQ(mid.field("ip.frag_offset")->number, 1480);

  const auto last = dissect(record_of(frags[2]));
  EXPECT_EQ(last.field("ip.flags.mf")->number, 0);
  EXPECT_EQ(last.field("ip.frag_offset")->number, 2960);
  EXPECT_EQ(last.field("ip.fragment")->number, 1);
}

TEST(Dissector, TcpFieldTree) {
  TcpHeader tcp;
  tcp.seq = 5;
  tcp.flag_syn = true;
  const auto pkt = make_tcp_packet(kServer, kClient, tcp, {}, 3);
  const auto d = dissect(record_of(pkt));
  EXPECT_TRUE(d.has_layer("tcp"));
  EXPECT_EQ(d.field("tcp.seq")->number, 5);
  EXPECT_EQ(d.field("tcp.flags.syn")->number, 1);
  EXPECT_EQ(d.field("tcp.flags.fin")->number, 0);
  EXPECT_EQ(d.field("ip.flags.df")->number, 1);
}

TEST(Dissector, IcmpFieldTree) {
  IcmpHeader icmp;
  icmp.type = IcmpType::kEchoReply;
  icmp.identifier = 7;
  icmp.sequence = 2;
  const auto pkt = make_icmp_packet(kServer.ip, kClient.ip, icmp, {}, 4);
  const auto d = dissect(record_of(pkt));
  EXPECT_TRUE(d.has_layer("icmp"));
  EXPECT_EQ(d.field("icmp.type")->number, 0);
  EXPECT_EQ(d.field("icmp.ident")->number, 7);
  EXPECT_EQ(d.field("icmp.seq")->number, 2);
}

TEST(Dissector, MalformedFrameMarked) {
  CaptureRecord rec;
  rec.timestamp = SimTime::zero();
  rec.original_length = 5;
  rec.data = {1, 2, 3, 4, 5};
  const auto d = dissect(rec);
  EXPECT_TRUE(d.has_layer("_malformed"));
  EXPECT_EQ(d.field("frame.len")->number, 5);
}

TEST(Dissector, TruncatedByShortSnaplenStillYieldsHeaders) {
  // With a 96-byte snaplen the Ethernet/IP/UDP headers survive; only the
  // payload is cut. The dissector must still produce the full field tree.
  CaptureTrace trace(96);
  const auto pkt = make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(800, 1), 6);
  trace.add_packet(SimTime::zero(), MacAddress::for_nic(1), MacAddress::for_nic(2), pkt);
  const auto d = dissect(trace.records()[0]);
  EXPECT_TRUE(d.has_layer("udp"));
  EXPECT_EQ(d.field("frame.len")->number, 14 + 20 + 8 + 800);
  EXPECT_EQ(d.field("frame.cap_len")->number, 96);
}

TEST(Dissector, SummaryLine) {
  const auto pkt = make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(10, 1), 1);
  const auto d = dissect(record_of(pkt, 12.5));
  const std::string s = d.summary();
  EXPECT_NE(s.find("192.168.100.10"), std::string::npos);
  EXPECT_NE(s.find("UDP"), std::string::npos);
  EXPECT_NE(s.find("1755"), std::string::npos);
}

TEST(Dissector, DissectTraceBulk) {
  CaptureTrace trace;
  for (int i = 0; i < 5; ++i) {
    trace.add_packet(SimTime::from_seconds(i), MacAddress::for_nic(1),
                     MacAddress::for_nic(2),
                     make_udp_packet(kServer, kClient, std::vector<std::uint8_t>(10, 1),
                                     static_cast<std::uint16_t>(i)));
  }
  const auto all = dissect_trace(trace);
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(all[static_cast<std::size_t>(i)].field("ip.id")->number, i);
}

}  // namespace
}  // namespace streamlab
