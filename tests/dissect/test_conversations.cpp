#include "dissect/conversations.hpp"

#include <gtest/gtest.h>

#include "net/fragmentation.hpp"
#include "pcap/capture.hpp"

namespace streamlab {
namespace {

const Endpoint kServerA{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kServerB{Ipv4Address(192, 168, 100, 11), 7070};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

void add_udp(CaptureTrace& trace, const Endpoint& src, const Endpoint& dst,
             std::size_t payload, double t, std::uint16_t id = 1) {
  trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                   MacAddress::for_nic(2),
                   make_udp_packet(src, dst, std::vector<std::uint8_t>(payload, 1), id));
}

TEST(Conversations, GroupsByFiveTuple) {
  CaptureTrace trace;
  add_udp(trace, kServerA, kClient, 100, 1.0);
  add_udp(trace, kServerA, kClient, 100, 1.1);
  add_udp(trace, kServerB, kClient, 200, 1.2);

  ConversationTable table;
  table.add_all(dissect_trace(trace));
  ASSERT_EQ(table.size(), 2u);

  const auto convs = table.by_bytes();
  // Conversation A has 2 x 142-byte frames; B one 242-byte frame.
  EXPECT_EQ(convs[0].total_packets(), 2u);
  EXPECT_EQ(convs[0].total_bytes(), 284u);
  EXPECT_EQ(convs[1].total_packets(), 1u);
}

TEST(Conversations, MergesBothDirections) {
  CaptureTrace trace;
  add_udp(trace, kServerA, kClient, 100, 1.0);
  add_udp(trace, kClient, kServerA, 50, 1.1);  // reply

  ConversationTable table;
  table.add_all(dissect_trace(trace));
  ASSERT_EQ(table.size(), 1u);
  const auto convs = table.by_bytes();
  EXPECT_EQ(convs[0].total_packets(), 2u);
  EXPECT_EQ(convs[0].packets_a_to_b + convs[0].packets_b_to_a, 2u);
  EXPECT_GT(convs[0].packets_a_to_b, 0u);
  EXPECT_GT(convs[0].packets_b_to_a, 0u);
}

TEST(Conversations, FragmentsAttributedToFlow) {
  CaptureTrace trace;
  const auto big = make_udp_packet(kServerA, kClient, std::vector<std::uint8_t>(3000, 1), 9);
  double t = 1.0;
  for (const auto& frag : fragment_packet(big, kDefaultMtu)) {
    trace.add_packet(SimTime::from_seconds(t), MacAddress::for_nic(1),
                     MacAddress::for_nic(2), frag);
    t += 0.001;
  }
  ConversationTable table;
  table.add_all(dissect_trace(trace));
  ASSERT_EQ(table.size(), 1u);
  const auto convs = table.by_bytes();
  EXPECT_EQ(convs[0].total_packets(), 3u);
  EXPECT_EQ(convs[0].fragments, 2u);
  EXPECT_EQ(table.unattributed_packets(), 0u);
}

TEST(Conversations, OrphanFragmentWithoutLeaderUnattributed) {
  CaptureTrace trace;
  const auto big = make_udp_packet(kServerA, kClient, std::vector<std::uint8_t>(3000, 1), 9);
  const auto frags = fragment_packet(big, kDefaultMtu);
  // Only a trailing fragment, no first packet ever seen.
  trace.add_packet(SimTime::from_seconds(1.0), MacAddress::for_nic(1),
                   MacAddress::for_nic(2), frags[1]);
  ConversationTable table;
  table.add_all(dissect_trace(trace));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.unattributed_packets(), 1u);
}

TEST(Conversations, DurationAndRate) {
  CaptureTrace trace;
  for (int i = 0; i <= 10; ++i) add_udp(trace, kServerA, kClient, 992, 1.0 + i * 0.1);
  ConversationTable table;
  table.add_all(dissect_trace(trace));
  const auto convs = table.by_bytes();
  ASSERT_EQ(convs.size(), 1u);
  EXPECT_NEAR(convs[0].duration().to_seconds(), 1.0, 1e-9);
  // 11 frames x (992+42) bytes over 1 s.
  EXPECT_NEAR(convs[0].mean_rate_kbps(), 11 * 1034 * 8 / 1000.0, 0.1);
}

TEST(Conversations, LabelReadable) {
  CaptureTrace trace;
  add_udp(trace, kServerA, kClient, 10, 1.0);
  ConversationTable table;
  table.add_all(dissect_trace(trace));
  const std::string label = table.by_bytes()[0].label();
  EXPECT_NE(label.find("10.0.0.2:7000"), std::string::npos);
  EXPECT_NE(label.find("192.168.100.10:1755"), std::string::npos);
  EXPECT_NE(label.find("udp"), std::string::npos);
}

TEST(Conversations, MalformedPacketsCounted) {
  ConversationTable table;
  DissectedPacket junk;  // no ip fields
  table.add(junk);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.unattributed_packets(), 1u);
}

}  // namespace
}  // namespace streamlab
