#include <gtest/gtest.h>
TEST(Placeholder_dissect, Builds) { SUCCEED(); }
