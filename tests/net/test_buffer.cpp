#include "net/buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fragmentation.hpp"
#include "net/packet.hpp"

namespace streamlab {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return v;
}

TEST(Buffer, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b, Buffer());
}

TEST(Buffer, CopyOfPreservesBytes) {
  const auto src = pattern(300);
  const Buffer b = Buffer::copy_of(src);
  ASSERT_EQ(b.size(), 300u);
  EXPECT_EQ(b, src);
  // Equality is reversible (C++20 synthesizes the vector == Buffer form).
  EXPECT_TRUE(src == b);
}

TEST(Buffer, CopyIsRefcountNotReallocation) {
  const Buffer a = Buffer::copy_of(pattern(512));
  const Buffer b = a;   // copy ctor: refcount bump
  Buffer c;
  c = a;                // copy assign
  EXPECT_TRUE(a.shares_block_with(b));
  EXPECT_TRUE(a.shares_block_with(c));
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(Buffer, MoveTransfersOwnership) {
  Buffer a = Buffer::copy_of(pattern(64));
  const std::uint8_t* p = a.data();
  Buffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // moved-from is the empty buffer
}

TEST(Buffer, ViewSharesBlockAndWindowsBytes) {
  const auto src = pattern(1000);
  const Buffer whole = Buffer::copy_of(src);
  const Buffer mid = whole.view(100, 250);
  ASSERT_EQ(mid.size(), 250u);
  EXPECT_TRUE(mid.shares_block_with(whole));
  for (std::size_t i = 0; i < mid.size(); ++i) EXPECT_EQ(mid[i], src[100 + i]);
  // A view of a view still shares the original block.
  const Buffer inner = mid.view(10, 20);
  EXPECT_TRUE(inner.shares_block_with(whole));
  EXPECT_EQ(inner[0], src[110]);
}

TEST(Buffer, ZeroLengthAndOutOfRangeViewsAreEmpty) {
  const Buffer b = Buffer::copy_of(pattern(10));
  EXPECT_TRUE(b.view(5, 0).empty());
  EXPECT_TRUE(b.view(11, 1).empty());
  EXPECT_TRUE(b.view(5, 6).empty());
}

TEST(Buffer, BytesOutliveTheOriginalHandle) {
  Buffer survivor;
  {
    const Buffer whole = Buffer::copy_of(pattern(200));
    survivor = whole.view(50, 100);
  }  // whole destroyed; the shared block must stay alive
  ASSERT_EQ(survivor.size(), 100u);
  const auto src = pattern(200);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(survivor[i], src[50 + i]);
}

TEST(Buffer, SlabRecyclesReleasedBlocks) {
  Buffer::trim_slab();
  const auto before = Buffer::slab_stats();
  { const Buffer a = Buffer::copy_of(pattern(500)); }
  { const Buffer b = Buffer::copy_of(pattern(500)); }  // same size class
  const auto after = Buffer::slab_stats();
  EXPECT_GE(after.fresh_blocks, before.fresh_blocks + 1);
  EXPECT_GE(after.recycled_blocks, before.recycled_blocks + 1);
}

TEST(Buffer, FragmentsAreViewsIntoTheDatagramPayload) {
  // The zero-copy contract end-to-end: fragmenting a big datagram must not
  // copy payload bytes — every fragment windows the original block.
  const Endpoint src{Ipv4Address(192, 168, 100, 10), 1755};
  const Endpoint dst{Ipv4Address(10, 0, 0, 2), 7000};
  const Ipv4Packet datagram = make_udp_packet(src, dst, pattern(4000), 77);
  const auto fragments = fragment_packet(datagram, kDefaultMtu);
  ASSERT_GT(fragments.size(), 1u);
  for (const auto& frag : fragments)
    EXPECT_TRUE(frag.payload.shares_block_with(datagram.payload));
}

TEST(Buffer, ParseFrameZeroCopySharesTheFrameBlock) {
  const Endpoint src{Ipv4Address(192, 168, 100, 10), 1755};
  const Endpoint dst{Ipv4Address(10, 0, 0, 2), 7000};
  const Ipv4Packet pkt = make_udp_packet(src, dst, pattern(600), 3);
  const Frame frame = frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2), pkt);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.shares_block_with(frame.buffer()));
  // The parsed payload is the transport data (UDP header consumed).
  EXPECT_EQ(parsed->payload, pattern(600));
}

}  // namespace
}  // namespace streamlab
