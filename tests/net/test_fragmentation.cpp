#include "net/fragmentation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace streamlab {
namespace {

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return v;
}

TEST(Fragmentation, SmallPacketPassesThrough) {
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(100), 1);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_FALSE(frags[0].header.is_fragment());
  EXPECT_EQ(frags[0].payload, pkt.payload);
}

TEST(Fragmentation, PaperWirePattern3125ByteFrame) {
  // A 250 Kbps MediaPlayer application frame: 3125 media bytes + headers.
  // The paper observes 1514-byte wire frames: 1500-byte IP packets.
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(3125), 2);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  ASSERT_EQ(frags.size(), 3u);

  // First two fragments fill the MTU exactly (1480-byte payloads).
  EXPECT_EQ(frags[0].total_length(), 1500u);
  EXPECT_EQ(frags[1].total_length(), 1500u);
  EXPECT_LT(frags[2].total_length(), 1500u);

  // Offsets advance in 8-byte units; MF set on all but the last.
  EXPECT_EQ(frags[0].header.fragment_offset_units, 0);
  EXPECT_EQ(frags[1].header.fragment_offset_bytes(), 1480u);
  EXPECT_EQ(frags[2].header.fragment_offset_bytes(), 2960u);
  EXPECT_TRUE(frags[0].header.more_fragments);
  EXPECT_TRUE(frags[1].header.more_fragments);
  EXPECT_FALSE(frags[2].header.more_fragments);

  // All fragments share the datagram identification.
  EXPECT_EQ(frags[0].header.identification, 2);
  EXPECT_EQ(frags[1].header.identification, 2);
  EXPECT_EQ(frags[2].header.identification, 2);

  // Only the first carries the UDP header bytes.
  EXPECT_TRUE(frags[0].header.fragment_offset_units == 0);
  EXPECT_TRUE(frags[1].header.is_trailing_fragment());

  // 2 of 3 packets are trailing fragments: the 66% of Figure 5 at ~300 Kbps.
  EXPECT_NEAR(2.0 / 3.0, 0.667, 0.001);
}

TEST(Fragmentation, DfPacketTooLargeIsDropped) {
  Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(3000), 3);
  pkt.header.dont_fragment = true;
  EXPECT_TRUE(fragment_packet(pkt, kDefaultMtu).empty());
}

TEST(Fragmentation, PayloadBytesPreservedInOrder) {
  const auto payload = pattern(5000);
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, payload, 4);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  std::vector<std::uint8_t> reassembled;
  for (const auto& f : frags)
    reassembled.insert(reassembled.end(), f.payload.begin(), f.payload.end());
  EXPECT_EQ(reassembled, pkt.payload);
}

TEST(Reassembler, UnfragmentedPassThrough) {
  Reassembler r;
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(100), 5);
  const auto out = r.offer(pkt, SimTime::zero());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, pkt.payload);
  EXPECT_EQ(r.stats().unfragmented_received, 1u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembler, InOrderFragmentsReassemble) {
  Reassembler r;
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(4000), 6);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  ASSERT_GT(frags.size(), 1u);

  for (std::size_t i = 0; i + 1 < frags.size(); ++i)
    EXPECT_FALSE(r.offer(frags[i], SimTime::zero()).has_value());
  const auto whole = r.offer(frags.back(), SimTime::zero());
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, pkt.payload);
  EXPECT_EQ(whole->header.identification, pkt.header.identification);
  EXPECT_FALSE(whole->header.is_fragment());
  EXPECT_EQ(whole->header.total_length, pkt.header.total_length);
  EXPECT_EQ(r.stats().datagrams_delivered, 1u);
}

TEST(Reassembler, OutOfOrderFragmentsReassemble) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Reassembler r;
    const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(6000),
                                           static_cast<std::uint16_t>(trial));
    auto frags = fragment_packet(pkt, kDefaultMtu);
    rng.shuffle(std::span(frags));

    std::optional<Ipv4Packet> whole;
    for (const auto& f : frags) {
      auto out = r.offer(f, SimTime::zero());
      if (out) {
        EXPECT_FALSE(whole.has_value()) << "delivered twice";
        whole = out;
      }
    }
    ASSERT_TRUE(whole.has_value());
    EXPECT_EQ(whole->payload, pkt.payload);
  }
}

TEST(Reassembler, InterleavedDatagramsKeptSeparate) {
  Reassembler r;
  const Ipv4Packet a = make_udp_packet(kServer, kClient, pattern(3000), 100);
  const Ipv4Packet b = make_udp_packet(kServer, kClient, pattern(3000), 101);
  const auto fa = fragment_packet(a, kDefaultMtu);
  const auto fb = fragment_packet(b, kDefaultMtu);

  // Interleave: a0 b0 a1 b1 a2 b2 ...
  std::optional<Ipv4Packet> got_a, got_b;
  for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size())
      if (auto out = r.offer(fa[i], SimTime::zero())) got_a = out;
    if (i < fb.size())
      if (auto out = r.offer(fb[i], SimTime::zero())) got_b = out;
  }
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(got_a->header.identification, 100);
  EXPECT_EQ(got_b->header.identification, 101);
}

TEST(Reassembler, MissingFragmentNeverDelivers) {
  Reassembler r;
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(4000), 7);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  ASSERT_GE(frags.size(), 3u);
  // Drop the middle fragment.
  EXPECT_FALSE(r.offer(frags.front(), SimTime::zero()).has_value());
  EXPECT_FALSE(r.offer(frags.back(), SimTime::zero()).has_value());
  EXPECT_EQ(r.pending(), 1u);
}

TEST(Reassembler, TimeoutExpiresPartialAndCountsWaste) {
  Reassembler r(Duration::seconds(30));
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(4000), 8);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  r.offer(frags[0], SimTime::zero());
  r.offer(frags[1], SimTime::zero());

  r.expire(SimTime::from_seconds(10));
  EXPECT_EQ(r.pending(), 1u);  // not yet

  r.expire(SimTime::from_seconds(31));
  EXPECT_EQ(r.pending(), 0u);
  EXPECT_EQ(r.stats().datagrams_expired, 1u);
  // Both received fragments were wasted bandwidth — the congestion-collapse
  // hazard of Section 3.C.
  EXPECT_EQ(r.stats().fragments_wasted, 2u);
}

TEST(Reassembler, DuplicateFragmentIsIdempotent) {
  Reassembler r;
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(3000), 9);
  const auto frags = fragment_packet(pkt, kDefaultMtu);
  r.offer(frags[0], SimTime::zero());
  r.offer(frags[0], SimTime::zero());  // duplicate
  r.offer(frags[1], SimTime::zero());
  const auto whole = r.offer(frags[2], SimTime::zero());
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, pkt.payload);
}

// Property sweep: every payload size reassembles to the original bytes.
class FragmentReassembleRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentReassembleRoundTrip, RoundTrips) {
  const std::size_t payload_size = GetParam();
  Reassembler r;
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, pattern(payload_size), 99);
  const auto frags = fragment_packet(pkt, kDefaultMtu);

  const std::size_t expected_fragments =
      (pkt.payload.size() + 1479) / 1480;  // 1480-byte fragment payloads
  EXPECT_EQ(frags.size(), std::max<std::size_t>(1, expected_fragments));

  std::optional<Ipv4Packet> whole;
  for (const auto& f : frags) {
    EXPECT_LE(f.total_length(), kDefaultMtu);
    if (auto out = r.offer(f, SimTime::zero())) whole = out;
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, pkt.payload);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FragmentReassembleRoundTrip,
                         ::testing::Values(1, 100, 1471, 1472, 1473, 1480, 2000, 2952,
                                           2953, 3125, 4096, 9137, 20000, 65000));

}  // namespace
}  // namespace streamlab
