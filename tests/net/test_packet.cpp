#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace streamlab {
namespace {

const Endpoint kServer{Ipv4Address(192, 168, 100, 10), 1755};
const Endpoint kClient{Ipv4Address(10, 0, 0, 2), 7000};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i);
  return v;
}

TEST(MakeUdpPacket, LengthsAndFields) {
  const auto payload = pattern(100);
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, payload, 42);
  EXPECT_EQ(pkt.header.protocol, kIpProtoUdp);
  EXPECT_EQ(pkt.header.identification, 42);
  EXPECT_EQ(pkt.header.src, kServer.ip);
  EXPECT_EQ(pkt.header.dst, kClient.ip);
  EXPECT_EQ(pkt.payload.size(), kUdpHeaderSize + 100);
  EXPECT_EQ(pkt.header.total_length, kIpv4HeaderSize + kUdpHeaderSize + 100);
  EXPECT_EQ(pkt.total_length(), pkt.header.total_length);
}

TEST(FrameAndParse, UdpRoundTrip) {
  const auto payload = pattern(64);
  const Ipv4Packet pkt = make_udp_packet(kServer, kClient, payload, 7);
  const MacAddress src_mac = MacAddress::for_nic(1);
  const MacAddress dst_mac = MacAddress::for_nic(2);
  const Frame frame = frame_ipv4(src_mac, dst_mac, pkt);
  EXPECT_EQ(frame.size(), kEthernetHeaderSize + pkt.total_length());

  const auto parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth.src, src_mac);
  EXPECT_EQ(parsed->eth.dst, dst_mac);
  EXPECT_EQ(parsed->ip.src, kServer.ip);
  EXPECT_EQ(parsed->ip.dst, kClient.ip);
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->src_port, 1755);
  EXPECT_EQ(parsed->udp->dst_port, 7000);
  EXPECT_EQ(parsed->payload, payload);
  EXPECT_FALSE(parsed->tcp.has_value());
  EXPECT_FALSE(parsed->icmp.has_value());
}

TEST(FrameAndParse, TcpRoundTrip) {
  TcpHeader tcp;
  tcp.seq = 1000;
  tcp.flag_psh = true;
  tcp.flag_ack = true;
  const auto payload = pattern(32);
  const Ipv4Packet pkt = make_tcp_packet(kServer, kClient, tcp, payload, 9);
  EXPECT_TRUE(pkt.header.dont_fragment);  // TCP sets DF

  const auto parsed = parse_frame(
      frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2), pkt).bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->seq, 1000u);
  EXPECT_TRUE(parsed->tcp->flag_psh);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(FrameAndParse, IcmpRoundTrip) {
  IcmpHeader icmp;
  icmp.type = IcmpType::kTimeExceeded;
  const auto quoted = pattern(28);
  const Ipv4Packet pkt =
      make_icmp_packet(Ipv4Address(10, 1, 3, 1), kClient.ip, icmp, quoted, 11);

  const auto parsed = parse_frame(
      frame_ipv4(MacAddress::for_nic(3), MacAddress::for_nic(2), pkt).bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->icmp.has_value());
  EXPECT_EQ(parsed->icmp->type, IcmpType::kTimeExceeded);
  EXPECT_EQ(parsed->payload, quoted);
}

TEST(ParseFrame, TrailingFragmentHasNoTransportHeader) {
  Ipv4Packet frag;
  frag.header.protocol = kIpProtoUdp;
  frag.header.fragment_offset_units = 185;
  frag.header.src = kServer.ip;
  frag.header.dst = kClient.ip;
  frag.payload = pattern(200);
  frag.header.total_length = static_cast<std::uint16_t>(frag.total_length());

  const auto parsed = parse_frame(
      frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2), frag).bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->udp.has_value());
  EXPECT_TRUE(parsed->ip.is_trailing_fragment());
  EXPECT_EQ(parsed->payload.size(), 200u);
}

TEST(ParseFrame, RejectsNonIpv4AndTruncation) {
  // Wrong ethertype.
  ByteWriter w;
  EthernetHeader eth;
  eth.ethertype = 0x0806;  // ARP
  eth.encode(w);
  const auto arp = w.take();
  EXPECT_FALSE(parse_frame(arp).has_value());

  // Truncated mid-IP-header.
  const auto payload = pattern(10);
  const Frame frame = frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2),
                                 make_udp_packet(kServer, kClient, payload, 1));
  EXPECT_FALSE(parse_frame(frame.bytes().subspan(0, 20)).has_value());
}

TEST(ParseFrame, RejectsLyingTotalLength) {
  const auto payload = pattern(10);
  Ipv4Packet pkt = make_udp_packet(kServer, kClient, payload, 1);
  pkt.header.total_length = 1000;  // bigger than the actual frame
  const Frame frame = frame_ipv4(MacAddress::for_nic(1), MacAddress::for_nic(2), pkt);
  EXPECT_FALSE(parse_frame(frame.bytes()).has_value());
}

}  // namespace
}  // namespace streamlab
