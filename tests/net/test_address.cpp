#include "net/address.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

TEST(MacAddress, ToStringAndParseRoundTrip) {
  const MacAddress mac({0x02, 0x53, 0x4c, 0x00, 0x01, 0xFF});
  EXPECT_EQ(mac.to_string(), "02:53:4c:00:01:ff");
  const auto parsed = MacAddress::parse("02:53:4c:00:01:ff");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("02:53:4c:00:01").has_value());
  EXPECT_FALSE(MacAddress::parse("02:53:4c:00:01:gg").has_value());
  EXPECT_FALSE(MacAddress::parse("0253:4c:00:01:ff:aa").has_value());
  EXPECT_FALSE(MacAddress::parse("").has_value());
}

TEST(MacAddress, ForNicIsDeterministicAndDistinct) {
  EXPECT_EQ(MacAddress::for_nic(1), MacAddress::for_nic(1));
  EXPECT_NE(MacAddress::for_nic(1), MacAddress::for_nic(2));
  // Locally administered unicast: bit 1 of first octet set, bit 0 clear.
  EXPECT_EQ(MacAddress::for_nic(7).octets()[0] & 0x03, 0x02);
}

TEST(Ipv4Address, OctetConstructorAndToString) {
  const Ipv4Address addr(192, 168, 100, 10);
  EXPECT_EQ(addr.value(), 0xC0A8640Au);
  EXPECT_EQ(addr.to_string(), "192.168.100.10");
}

TEST(Ipv4Address, ParseValid) {
  const auto parsed = Ipv4Address::parse("10.0.0.2");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..0.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
}

TEST(Ipv4Address, SameSlash24) {
  // The paper's clip-selection criterion: servers on the same subnet.
  EXPECT_TRUE(Ipv4Address(192, 168, 100, 10).same_slash24(Ipv4Address(192, 168, 100, 11)));
  EXPECT_FALSE(Ipv4Address(192, 168, 100, 10).same_slash24(Ipv4Address(192, 168, 101, 10)));
}

TEST(Endpoint, ComparisonAndToString) {
  const Endpoint a{Ipv4Address(10, 0, 0, 2), 6970};
  const Endpoint b{Ipv4Address(10, 0, 0, 2), 6971};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "10.0.0.2:6970");
}

}  // namespace
}  // namespace streamlab
