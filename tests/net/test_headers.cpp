#include "net/headers.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace streamlab {
namespace {

TEST(EthernetHeader, EncodeDecodeRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddress({1, 2, 3, 4, 5, 6});
  h.src = MacAddress({7, 8, 9, 10, 11, 12});
  h.ethertype = kEtherTypeIpv4;

  ByteWriter w;
  h.encode(w);
  EXPECT_EQ(w.size(), kEthernetHeaderSize);

  const auto buf = w.take();
  ByteReader r(buf);
  const auto decoded = EthernetHeader::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dst, h.dst);
  EXPECT_EQ(decoded->src, h.src);
  EXPECT_EQ(decoded->ethertype, kEtherTypeIpv4);
}

TEST(EthernetHeader, DecodeTruncatedFails) {
  const std::uint8_t short_buf[10] = {};
  ByteReader r(short_buf);
  EXPECT_FALSE(EthernetHeader::decode(r).has_value());
}

Ipv4Header sample_ip_header() {
  Ipv4Header h;
  h.total_length = 1500;
  h.identification = 0x1234;
  h.ttl = 64;
  h.protocol = kIpProtoUdp;
  h.src = Ipv4Address(192, 168, 100, 10);
  h.dst = Ipv4Address(10, 0, 0, 2);
  return h;
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header h = sample_ip_header();
  h.more_fragments = true;
  h.fragment_offset_units = 185;  // 1480 bytes
  h.dont_fragment = false;

  ByteWriter w;
  h.encode(w);
  EXPECT_EQ(w.size(), kIpv4HeaderSize);

  const auto buf = w.take();
  ByteReader r(buf);
  const auto d = Ipv4Header::decode(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->total_length, 1500);
  EXPECT_EQ(d->identification, 0x1234);
  EXPECT_TRUE(d->more_fragments);
  EXPECT_FALSE(d->dont_fragment);
  EXPECT_EQ(d->fragment_offset_units, 185);
  EXPECT_EQ(d->fragment_offset_bytes(), 1480u);
  EXPECT_EQ(d->ttl, 64);
  EXPECT_EQ(d->protocol, kIpProtoUdp);
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->dst, h.dst);
}

TEST(Ipv4Header, EncodedChecksumVerifies) {
  ByteWriter w;
  sample_ip_header().encode(w);
  EXPECT_EQ(internet_checksum(w.view()), 0);
}

TEST(Ipv4Header, CorruptedChecksumRejected) {
  ByteWriter w;
  sample_ip_header().encode(w);
  auto buf = w.take();
  buf[8] ^= 0xFF;  // flip TTL bits
  ByteReader r(buf);
  EXPECT_FALSE(Ipv4Header::decode(r).has_value());
}

TEST(Ipv4Header, FragmentPredicates) {
  Ipv4Header h;
  EXPECT_FALSE(h.is_fragment());
  EXPECT_FALSE(h.is_trailing_fragment());

  h.more_fragments = true;  // first fragment of a group
  EXPECT_TRUE(h.is_fragment());
  EXPECT_FALSE(h.is_trailing_fragment());

  h.more_fragments = false;
  h.fragment_offset_units = 185;  // last fragment
  EXPECT_TRUE(h.is_fragment());
  EXPECT_TRUE(h.is_trailing_fragment());
}

TEST(Ipv4Header, DfAndMfFlagsIndependent) {
  Ipv4Header h = sample_ip_header();
  h.dont_fragment = true;
  ByteWriter w;
  h.encode(w);
  const auto buf = w.take();
  ByteReader r(buf);
  const auto d = Ipv4Header::decode(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->dont_fragment);
  EXPECT_FALSE(d->more_fragments);
}

TEST(UdpHeader, EncodeDecodeRoundTripWithChecksum) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  UdpHeader h;
  h.src_port = 7070;
  h.dst_port = 6970;
  h.length = static_cast<std::uint16_t>(kUdpHeaderSize + sizeof payload);

  const Ipv4Address src(192, 168, 100, 10), dst(10, 0, 0, 2);
  ByteWriter w;
  h.encode(w, src, dst, payload);
  EXPECT_EQ(w.size(), kUdpHeaderSize);

  const auto buf = w.take();
  ByteReader r(buf);
  const auto d = UdpHeader::decode(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_port, 7070);
  EXPECT_EQ(d->dst_port, 6970);
  EXPECT_EQ(d->length, 13);
  EXPECT_NE(d->checksum, 0);  // checksum always computed

  // Verify: checksum over pseudo-header + segment (with checksum in place)
  // must fold to zero.
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(kIpProtoUdp);
  acc.add_u16(static_cast<std::uint16_t>(buf.size() + sizeof payload));
  acc.add(buf);
  acc.add(payload);
  EXPECT_EQ(acc.fold(), 0);
}

TEST(UdpHeader, DecodeRejectsBadLength) {
  ByteWriter w;
  w.u16be(1);
  w.u16be(2);
  w.u16be(4);  // < 8: impossible
  w.u16be(0);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_FALSE(UdpHeader::decode(r).has_value());
}

TEST(TcpHeader, EncodeDecodeRoundTripFlags) {
  TcpHeader h;
  h.src_port = 80;
  h.dst_port = 43210;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.flag_syn = true;
  h.flag_ack = true;
  h.window = 8192;

  ByteWriter w;
  h.encode(w, Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), {});
  EXPECT_EQ(w.size(), kTcpHeaderSize);

  const auto buf = w.take();
  ByteReader r(buf);
  const auto d = TcpHeader::decode(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seq, 0xDEADBEEF);
  EXPECT_EQ(d->ack, 0x12345678u);
  EXPECT_TRUE(d->flag_syn);
  EXPECT_TRUE(d->flag_ack);
  EXPECT_FALSE(d->flag_fin);
  EXPECT_FALSE(d->flag_rst);
  EXPECT_EQ(d->window, 8192);
}

TEST(IcmpHeader, EchoRoundTrip) {
  IcmpHeader h;
  h.type = IcmpType::kEchoRequest;
  h.identifier = 0x7069;
  h.sequence = 3;

  const std::uint8_t payload[] = {0xA5, 0xA5};
  ByteWriter w;
  h.encode(w, payload);
  EXPECT_EQ(w.size(), kIcmpHeaderSize);

  const auto buf = w.take();
  ByteReader r(buf);
  const auto d = IcmpHeader::decode(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, IcmpType::kEchoRequest);
  EXPECT_EQ(d->identifier, 0x7069);
  EXPECT_EQ(d->sequence, 3);

  // Whole ICMP message (header + payload) checksums to zero.
  ChecksumAccumulator acc;
  acc.add(buf);
  acc.add(payload);
  EXPECT_EQ(acc.fold(), 0);
}

}  // namespace
}  // namespace streamlab
