#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace streamlab {
namespace {

TEST(Checksum, Rfc1071ReferenceExample) {
  // Classic worked example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, KnownIpv4HeaderChecksum) {
  // Well-known example header (wikipedia): checksum field = 0xb861.
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40,
                                 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header), 0xb861);
}

TEST(Checksum, VerificationOfValidHeaderYieldsZero) {
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40,
                                 0x11, 0xb8, 0x61, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(Checksum, OddLengthData) {
  const std::uint8_t data[] = {0xFF, 0x00, 0xAB};
  // Manual: 0xFF00 + 0xAB00 = 0x1AA00 -> fold 0xAA01 -> ~ = 0x55FE.
  EXPECT_EQ(internet_checksum(data), 0x55FE);
}

TEST(Checksum, EmptyDataIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(ChecksumAccumulator, PiecewiseEqualsOneShot) {
  Rng rng(5);
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());

  for (const std::size_t cut : {0UL, 1UL, 2UL, 63UL, 128UL, 255UL, 256UL, 257UL}) {
    ChecksumAccumulator acc;
    acc.add(std::span(data).subspan(0, cut));
    acc.add(std::span(data).subspan(cut));
    EXPECT_EQ(acc.fold(), internet_checksum(data)) << "cut at " << cut;
  }
}

TEST(ChecksumAccumulator, OddCutsChainCorrectly) {
  // Three odd-length sections must reconstruct the straddling words.
  std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7};
  ChecksumAccumulator acc;
  acc.add(std::span(data).subspan(0, 1));
  acc.add(std::span(data).subspan(1, 3));
  acc.add(std::span(data).subspan(4, 3));
  EXPECT_EQ(acc.fold(), internet_checksum(data));
}

TEST(ChecksumAccumulator, AddU16AndU32) {
  ChecksumAccumulator a;
  a.add_u32(0xC0A80001);
  a.add_u16(0x0011);
  const std::uint8_t equiv[] = {0xC0, 0xA8, 0x00, 0x01, 0x00, 0x11};
  EXPECT_EQ(a.fold(), internet_checksum(equiv));
}

TEST(TransportChecksum, ZeroMapsToAllOnes) {
  // Construct data whose checksum would fold to 0 and confirm the RFC 768
  // substitution. A segment of all zeros with a zero pseudo-header sums to
  // 0 -> complement 0xFFFF -> not the special case; instead verify the
  // function never returns 0 over random inputs.
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> seg(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : seg) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = transport_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                      17, seg);
    EXPECT_NE(c, 0);
  }
}

TEST(TransportChecksum, DependsOnPseudoHeader) {
  const std::uint8_t seg[] = {0x1B, 0x3A, 0x11, 0x94, 0x00, 0x0C, 0x00, 0x00, 0xAB, 0xCD};
  const auto c1 = transport_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                     17, seg);
  const auto c2 = transport_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 3),
                                     17, seg);
  const auto c3 = transport_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                     6, seg);
  EXPECT_NE(c1, c2);
  EXPECT_NE(c1, c3);
}

}  // namespace
}  // namespace streamlab
