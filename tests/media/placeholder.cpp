#include <gtest/gtest.h>
TEST(Placeholder_media, Builds) { SUCCEED(); }
