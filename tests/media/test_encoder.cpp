#include "media/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "media/catalog.hpp"

namespace streamlab {
namespace {

TEST(FrameRateModel, PaperAnchors) {
  // Figure 13: the 39 Kbps MediaPlayer clip plays at 13 fps.
  EXPECT_NEAR(nominal_frame_rate(PlayerKind::kMediaPlayer, BitRate::kbps(39)), 13.0, 0.5);
  // Both players reach ~25 fps at high rates.
  EXPECT_NEAR(nominal_frame_rate(PlayerKind::kMediaPlayer, BitRate::kbps(250)), 25.0, 2.5);
  EXPECT_NEAR(nominal_frame_rate(PlayerKind::kRealPlayer, BitRate::kbps(217)), 25.0, 1.5);
}

TEST(FrameRateModel, RealBeatsMediaAtLowRates) {
  // Figures 13-14: RealPlayer frame rate significantly higher at low rates.
  for (const double kbps : {22.0, 26.0, 36.0, 39.0, 50.0}) {
    const double rm = nominal_frame_rate(PlayerKind::kRealPlayer, BitRate::kbps(kbps));
    const double wm = nominal_frame_rate(PlayerKind::kMediaPlayer, BitRate::kbps(kbps));
    EXPECT_GT(rm, wm + 2.0) << kbps << " Kbps";
  }
}

TEST(FrameRateModel, MonotoneAndClamped) {
  for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer}) {
    double prev = 0.0;
    for (double kbps = 10; kbps <= 1000; kbps += 10) {
      const double fps = nominal_frame_rate(player, BitRate::kbps(kbps));
      EXPECT_GE(fps, prev) << kbps;
      EXPECT_GE(fps, 5.0);
      EXPECT_LE(fps, 30.0);
      prev = fps;
    }
  }
}

TEST(Encoder, TotalBytesMatchEncodingExactly) {
  for (const auto& clip : all_clips()) {
    const EncodedClip encoded = encode_clip(clip, 1);
    EXPECT_EQ(encoded.total_bytes(), static_cast<std::uint64_t>(clip.media_bytes()))
        << clip.id();
  }
}

TEST(Encoder, Deterministic) {
  const auto clip = *find_clip("set5/R-h");
  const EncodedClip a = encode_clip(clip, 42);
  const EncodedClip b = encode_clip(clip, 42);
  ASSERT_EQ(a.frames().size(), b.frames().size());
  for (std::size_t i = 0; i < a.frames().size(); ++i)
    EXPECT_EQ(a.frames()[i].bytes, b.frames()[i].bytes);
}

TEST(Encoder, DifferentSeedsDifferentSizes) {
  const auto clip = *find_clip("set5/R-h");
  const EncodedClip a = encode_clip(clip, 1);
  const EncodedClip b = encode_clip(clip, 2);
  int diffs = 0;
  for (std::size_t i = 0; i < std::min(a.frames().size(), b.frames().size()); ++i)
    diffs += a.frames()[i].bytes != b.frames()[i].bytes;
  EXPECT_GT(diffs, 100);
}

TEST(Encoder, FramesContiguousAndOrdered) {
  const EncodedClip encoded = encode_clip(*find_clip("set2/M-h"), 3);
  std::uint64_t offset = 0;
  Duration prev_pts = Duration::millis(-1);
  for (const auto& f : encoded.frames()) {
    EXPECT_EQ(f.byte_offset, offset);
    EXPECT_GT(f.pts, prev_pts);
    EXPECT_GE(f.bytes, 40u);
    offset += f.bytes;
    prev_pts = f.pts;
  }
  EXPECT_EQ(offset, encoded.total_bytes());
}

TEST(Encoder, FrameCountMatchesRateTimesLength) {
  const auto clip = *find_clip("set3/R-l");  // 36.5 Kbps, 60 s
  const EncodedClip encoded = encode_clip(clip, 7);
  const double expected = encoded.frame_rate() * clip.length.to_seconds();
  EXPECT_NEAR(static_cast<double>(encoded.frames().size()), expected, 1.0);
}

TEST(Encoder, KeyframeCadence) {
  const EncodedClip encoded = encode_clip(*find_clip("set1/R-h"), 5);
  // First frame is a keyframe; keyframes roughly every 4 seconds.
  ASSERT_FALSE(encoded.frames().empty());
  EXPECT_TRUE(encoded.frames()[0].keyframe);
  int keyframes = 0;
  for (const auto& f : encoded.frames()) keyframes += f.keyframe;
  const double expected = encoded.info().length.to_seconds() / 4.0;
  EXPECT_NEAR(keyframes, expected, expected * 0.2 + 2);
}

TEST(Encoder, KeyframesLargerThanPframes) {
  const EncodedClip encoded = encode_clip(*find_clip("set4/M-h"), 5);
  double key_sum = 0, key_n = 0, p_sum = 0, p_n = 0;
  for (const auto& f : encoded.frames()) {
    if (f.keyframe) {
      key_sum += f.bytes;
      ++key_n;
    } else {
      p_sum += f.bytes;
      ++p_n;
    }
  }
  EXPECT_GT(key_sum / key_n, 2.0 * p_sum / p_n);
}

TEST(Encoder, MediaPlayerTighterVarianceThanReal) {
  // The CBR vs VBR rate-control difference, visible per-frame.
  const auto set = table1_catalog()[0];
  const auto pair = set.pair(RateTier::kHigh);
  ASSERT_TRUE(pair.has_value());
  const EncodedClip real = encode_clip(pair->first, 11);
  const EncodedClip media = encode_clip(pair->second, 11);

  const auto cv_of = [](const EncodedClip& clip) {
    double sum = 0, n = 0;
    for (const auto& f : clip.frames())
      if (!f.keyframe) {
        sum += f.bytes;
        ++n;
      }
    const double mean = sum / n;
    double ss = 0;
    for (const auto& f : clip.frames())
      if (!f.keyframe) ss += (f.bytes - mean) * (f.bytes - mean);
    return std::sqrt(ss / n) / mean;
  };
  EXPECT_GT(cv_of(real), 2.0 * cv_of(media));
}

TEST(EncodedClip, FramesCompleteAtBoundaries) {
  const EncodedClip encoded = encode_clip(*find_clip("set2/R-l"), 9);
  const auto& frames = encoded.frames();
  EXPECT_EQ(encoded.frames_complete_at(0), 0u);
  EXPECT_EQ(encoded.frames_complete_at(frames[0].bytes - 1), 0u);
  EXPECT_EQ(encoded.frames_complete_at(frames[0].bytes), 1u);
  EXPECT_EQ(encoded.frames_complete_at(frames[1].byte_offset + frames[1].bytes), 2u);
  EXPECT_EQ(encoded.frames_complete_at(encoded.total_bytes()), frames.size());
  EXPECT_EQ(encoded.frames_complete_at(encoded.total_bytes() + 999), frames.size());
}

// Property sweep: the encoder invariants hold for every catalog clip.
class EncoderInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(EncoderInvariants, Hold) {
  const auto clip = find_clip(GetParam());
  ASSERT_TRUE(clip.has_value());
  const EncodedClip encoded = encode_clip(*clip, 123);

  EXPECT_EQ(encoded.total_bytes(), static_cast<std::uint64_t>(clip->media_bytes()));
  EXPECT_GT(encoded.frames().size(), 0u);
  // Mean frame rate implied by pts spacing equals the nominal rate.
  const double duration = encoded.frames().back().pts.to_seconds();
  const double fps =
      static_cast<double>(encoded.frames().size() - 1) / std::max(duration, 1e-9);
  EXPECT_NEAR(fps, encoded.frame_rate(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllClips, EncoderInvariants,
                         ::testing::Values("set1/R-l", "set1/R-h", "set1/M-l", "set1/M-h",
                                           "set2/R-l", "set2/M-h", "set3/R-h", "set3/M-l",
                                           "set4/R-l", "set4/M-h", "set5/R-h", "set5/M-l",
                                           "set6/R-v", "set6/M-v", "set6/R-l", "set6/M-h"));

}  // namespace
}  // namespace streamlab
