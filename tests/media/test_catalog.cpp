#include "media/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace streamlab {
namespace {

TEST(Catalog, SixSetsTwentySixClips) {
  const auto& catalog = table1_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  EXPECT_EQ(all_clips().size(), 26u);  // 5 sets x 4 + set 6 with 6
}

TEST(Catalog, Table1RatesExact) {
  // Spot-check the exact Kbps values of Table 1.
  const auto s1h = table1_catalog()[0].pair(RateTier::kHigh);
  ASSERT_TRUE(s1h.has_value());
  EXPECT_EQ(s1h->first.encoded_rate, BitRate::kbps(284.0));    // R-h
  EXPECT_EQ(s1h->second.encoded_rate, BitRate::kbps(323.1));   // M-h

  const auto s4l = table1_catalog()[3].pair(RateTier::kLow);
  ASSERT_TRUE(s4l.has_value());
  EXPECT_EQ(s4l->first.encoded_rate, BitRate::kbps(26.0));
  EXPECT_EQ(s4l->second.encoded_rate, BitRate::kbps(49.6));

  const auto s6v = table1_catalog()[5].pair(RateTier::kVeryHigh);
  ASSERT_TRUE(s6v.has_value());
  EXPECT_EQ(s6v->first.encoded_rate, BitRate::kbps(636.9));
  EXPECT_EQ(s6v->second.encoded_rate, BitRate::kbps(731.3));
}

TEST(Catalog, OnlySetSixHasVeryHigh) {
  for (const auto& set : table1_catalog()) {
    const bool has_vh = set.pair(RateTier::kVeryHigh).has_value();
    EXPECT_EQ(has_vh, set.id == 6) << "set " << set.id;
    EXPECT_TRUE(set.pair(RateTier::kLow).has_value()) << "set " << set.id;
    EXPECT_TRUE(set.pair(RateTier::kHigh).has_value()) << "set " << set.id;
  }
}

TEST(Catalog, RealAlwaysEncodedBelowMediaAtSameTier) {
  // Section 3.B: "for the same advertised data rate, the RealPlayer clips
  // always have a lower encoding rate than the corresponding MediaPlayer
  // clip."
  for (const auto& set : table1_catalog()) {
    for (const RateTier tier : {RateTier::kLow, RateTier::kHigh, RateTier::kVeryHigh}) {
      const auto pair = set.pair(tier);
      if (!pair) continue;
      EXPECT_LT(pair->first.encoded_rate, pair->second.encoded_rate)
          << "set " << set.id << " tier " << to_string(tier);
    }
  }
}

TEST(Catalog, ClipLengthsInStudyRange) {
  // "The length of the clips should be between 30 seconds and 5 minutes."
  for (const auto& clip : all_clips()) {
    EXPECT_GE(clip.length, Duration::seconds(30)) << clip.id();
    EXPECT_LE(clip.length, Duration::seconds(300)) << clip.id();
  }
}

TEST(Catalog, PairSharesContentAndLength) {
  for (const auto& set : table1_catalog()) {
    for (const RateTier tier : {RateTier::kLow, RateTier::kHigh, RateTier::kVeryHigh}) {
      const auto pair = set.pair(tier);
      if (!pair) continue;
      EXPECT_EQ(pair->first.content, pair->second.content);
      EXPECT_EQ(pair->first.length, pair->second.length);
      EXPECT_EQ(pair->first.advertised_rate, pair->second.advertised_rate);
      EXPECT_EQ(pair->first.player, PlayerKind::kRealPlayer);
      EXPECT_EQ(pair->second.player, PlayerKind::kMediaPlayer);
    }
  }
}

TEST(Catalog, IdsUniqueAndFindable) {
  std::set<std::string> ids;
  for (const auto& clip : all_clips()) {
    EXPECT_TRUE(ids.insert(clip.id()).second) << "duplicate " << clip.id();
    const auto found = find_clip(clip.id());
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->encoded_rate, clip.encoded_rate);
  }
  EXPECT_FALSE(find_clip("set9/R-l").has_value());
  EXPECT_FALSE(find_clip("").has_value());
}

TEST(Catalog, TierLabels) {
  EXPECT_EQ(tier_label(PlayerKind::kRealPlayer, RateTier::kHigh), "R-h");
  EXPECT_EQ(tier_label(PlayerKind::kMediaPlayer, RateTier::kVeryHigh), "M-v");
  EXPECT_EQ(tier_label(PlayerKind::kMediaPlayer, RateTier::kLow), "M-l");
}

TEST(Catalog, ClipsForPlayerSplitsEvenly) {
  EXPECT_EQ(clips_for(PlayerKind::kRealPlayer).size(), 13u);
  EXPECT_EQ(clips_for(PlayerKind::kMediaPlayer).size(), 13u);
}

TEST(Catalog, MediaBytesMatchRateTimesLength) {
  const auto clip = *find_clip("set1/M-l");
  // 49.8 Kbps x 230 s / 8 = 1'431'750 bytes.
  EXPECT_EQ(clip.media_bytes(), 1'431'750);
}

TEST(Catalog, AdvertisedTiers) {
  for (const auto& clip : all_clips()) {
    switch (clip.tier) {
      case RateTier::kLow:
        EXPECT_EQ(clip.advertised_rate, BitRate::kbps(56));
        break;
      case RateTier::kHigh:
        EXPECT_EQ(clip.advertised_rate, BitRate::kbps(300));
        break;
      case RateTier::kVeryHigh:
        EXPECT_EQ(clip.advertised_rate, BitRate::kbps(700));
        break;
    }
  }
}

}  // namespace
}  // namespace streamlab
