// Adversarial delivery tests for the streaming client: duplicates,
// reordering, overlaps and garbage must never corrupt byte accounting.
#include <gtest/gtest.h>

#include "player_test_util.hpp"

namespace streamlab {
namespace {

/// Harness delivering hand-crafted datagrams straight to a client.
struct RawClientHarness {
  EventLoop loop;
  Host client_host{loop, "client", Ipv4Address(10, 0, 0, 2)};
  Host server_host{loop, "server", Ipv4Address(192, 168, 100, 10)};
  EncodedClip clip;
  StreamClient client;

  RawClientHarness()
      : clip(encode_clip(testutil::short_clip(PlayerKind::kRealPlayer, 50, 10), 1)),
        client(client_host, clip, Endpoint{server_host.address(), kRealServerPort},
               StreamClient::Config{PlayerKind::kRealPlayer, {}, {}, 0, {}}) {
    // Wire the hosts back-to-back.
    server_host.attach_interface([this](const Ipv4Packet& p) {
      loop.schedule_in(Duration::micros(50), [this, p] { client_host.handle_packet(p, 0); });
    });
    client_host.attach_interface([this](const Ipv4Packet& p) {
      loop.schedule_in(Duration::micros(50), [this, p] { server_host.handle_packet(p, 0); });
    });
  }

  void deliver(std::uint32_t seq, std::uint64_t offset, std::size_t len,
               std::uint8_t flags = 0) {
    DataHeader h;
    h.seq = seq;
    h.media_offset = offset;
    h.flags = flags;
    const auto packet = DataHeader::make_packet(h, len);
    server_host.udp_send(kRealServerPort, Endpoint{client_host.address(), kRealClientPort},
                         packet);
    loop.run();
  }
};

TEST(ClientRobustness, DuplicateDatagramsCountedOnceInCoverage) {
  RawClientHarness h;
  h.deliver(0, 0, 1000);
  h.deliver(0, 0, 1000);  // exact duplicate
  EXPECT_EQ(h.client.media_bytes_received(), 1000u);
  EXPECT_EQ(h.client.packets_received(), 2u);  // both packets arrived...
  EXPECT_EQ(h.client.packets_lost(), 0u);      // ...and nothing is "lost"
  EXPECT_EQ(h.client.duplicate_packets(), 1u);
}

TEST(ClientRobustness, OutOfOrderDeliveryCoversCorrectly) {
  RawClientHarness h;
  h.deliver(1, 1000, 1000);
  h.deliver(0, 0, 1000);
  h.deliver(2, 2000, 500);
  EXPECT_EQ(h.client.media_bytes_received(), 2500u);
  EXPECT_EQ(h.client.packets_lost(), 0u);
  EXPECT_EQ(h.client.duplicate_packets(), 0u);  // reordering is not duplication
}

TEST(ClientRobustness, OverlappingRangesMergeNotDoubleCount) {
  RawClientHarness h;
  h.deliver(0, 0, 1000);
  h.deliver(1, 500, 1000);  // overlaps [500,1000)
  EXPECT_EQ(h.client.media_bytes_received(), 1500u);
}

TEST(ClientRobustness, GapDetectedAsLoss) {
  RawClientHarness h;
  h.deliver(0, 0, 1000);
  h.deliver(2, 2000, 1000);  // seq 1 missing
  EXPECT_EQ(h.client.packets_lost(), 1u);
  EXPECT_EQ(h.client.media_bytes_received(), 2000u);
}

TEST(ClientRobustness, GarbagePayloadIgnored) {
  RawClientHarness h;
  const std::vector<std::uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  h.server_host.udp_send(kRealServerPort,
                         Endpoint{h.client_host.address(), kRealClientPort}, junk);
  h.loop.run();
  EXPECT_EQ(h.client.packets_received(), 0u);
  EXPECT_EQ(h.client.media_bytes_received(), 0u);
}

TEST(ClientRobustness, TruncatedHeaderIgnored) {
  RawClientHarness h;
  // A data-magic prefix but shorter than the header.
  const std::vector<std::uint8_t> stub = {0x44, 0x54, 0x00};
  h.server_host.udp_send(kRealServerPort,
                         Endpoint{h.client_host.address(), kRealClientPort}, stub);
  h.loop.run();
  EXPECT_EQ(h.client.packets_received(), 0u);
}

TEST(ClientRobustness, EosWithoutDataStillMarksEnd) {
  RawClientHarness h;
  h.deliver(0, 0, 0, kFlagEndOfStream);
  EXPECT_TRUE(h.client.end_of_stream());
  EXPECT_EQ(h.client.media_bytes_received(), 0u);
}

TEST(ClientRobustness, SeqWindowLossAccountingMonotone) {
  RawClientHarness h;
  // Deliver every other sequence number.
  for (std::uint32_t i = 0; i < 20; i += 2) h.deliver(i, i * 500, 500);
  // max_seq = 18, received 10 -> 9 lost.
  EXPECT_EQ(h.client.packets_lost(), 9u);
}

}  // namespace
}  // namespace streamlab
