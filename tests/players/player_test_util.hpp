// Shared fixtures for player tests: a short custom clip and a small network
// so individual tests run in milliseconds while exercising the full stack.
#pragma once

#include "media/encoder.hpp"
#include "players/client.hpp"
#include "players/server.hpp"
#include "sim/network.hpp"

namespace streamlab::testutil {

/// A synthetic short clip (not from the catalog) for fast tests.
inline ClipInfo short_clip(PlayerKind player, double kbps, int seconds = 10) {
  ClipInfo c;
  c.data_set = 1;
  c.content = ContentClass::kNews;
  c.player = player;
  c.tier = kbps < 150 ? RateTier::kLow : RateTier::kHigh;
  c.encoded_rate = BitRate::kbps(kbps);
  c.advertised_rate = BitRate::kbps(kbps < 150 ? 56 : 300);
  c.length = Duration::seconds(seconds);
  return c;
}

inline PathConfig fast_path() {
  PathConfig cfg;
  cfg.hop_count = 4;
  cfg.one_way_propagation = Duration::millis(10);
  cfg.jitter_stddev = Duration::micros(100);
  cfg.loss_probability = 0.0;
  return cfg;
}

/// One complete single-clip session over a fresh network.
struct Session {
  Network net;
  Host& server_host;
  EncodedClip encoded;
  std::unique_ptr<StreamServer> server;
  std::unique_ptr<StreamClient> client;

  explicit Session(const ClipInfo& clip, PathConfig path = fast_path(),
                   std::uint64_t seed = 7)
      : net(path), server_host(net.add_server("srv")), encoded(encode_clip(clip, seed)) {
    const bool is_media = clip.player == PlayerKind::kMediaPlayer;
    const std::uint16_t port = is_media ? kMediaServerPort : kRealServerPort;
    if (is_media)
      server = std::make_unique<WmServer>(server_host, encoded, WmBehavior{}, port);
    else
      server = std::make_unique<RmServer>(server_host, encoded, RmBehavior{}, port, seed);

    StreamClient::Config cc;
    cc.kind = clip.player;
    client = std::make_unique<StreamClient>(net.client(), server->clip(),
                                            Endpoint{server_host.address(), port}, cc);
  }

  /// Starts and runs to quiescence (clip length + slack).
  void run(Duration slack = Duration::seconds(30)) {
    client->start();
    net.loop().run_until(net.loop().now() + encoded.info().length + slack);
  }
};

}  // namespace streamlab::testutil
