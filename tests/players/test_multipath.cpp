// Multipath striping units: the smooth-WRR subflow scheduler with its
// health-driven drain / hold-down / rejoin ladder, the bounded reorder join
// buffer's edge cases (duplicate delivery across subflows, late originals
// after repair, buffer-full eviction ordering, hold expiry), and the NACK
// tracker's benign-reordering tolerance window.
#include "players/multipath.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "players/repair.hpp"

namespace streamlab {
namespace {

MultipathConfig fast_config() {
  MultipathConfig cfg;
  cfg.enabled = true;  // weights 2:1, thresholds 0.35/0.10, alpha 0.3
  cfg.report_interval = Duration::millis(100);
  cfg.hold_down = Duration::millis(500);
  return cfg;
}

JoinPacket packet(std::uint32_t seq, std::uint8_t subflow = 0) {
  JoinPacket p;
  p.seq = seq;
  p.media_offset = std::uint64_t{seq} * 500;
  p.media_len = 500;
  p.subflow_id = subflow;
  return p;
}

std::vector<std::uint32_t> seqs(const std::vector<JoinPacket>& packets) {
  std::vector<std::uint32_t> out;
  for (const JoinPacket& p : packets) out.push_back(p.seq);
  return out;
}

// --- SubflowScheduler: dispatch ---

TEST(SubflowScheduler, SmoothWeightedRoundRobinMatchesWeights) {
  SubflowScheduler sched(fast_config());
  const SimTime now;
  int counts[2] = {0, 0};
  std::vector<int> order;
  for (int i = 0; i < 30; ++i) {
    const int id = sched.pick(now);
    ++counts[id];
    order.push_back(id);
    sched.stamp(id, 500, now);
  }
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 10);
  // Smooth variant: the 2:1 ratio interleaves (0,1,0 repeating) instead of
  // bursting each path's share back to back — that is what bounds the join
  // buffer's reorder depth.
  for (std::size_t i = 0; i + 2 < order.size(); i += 3) {
    EXPECT_EQ(order[i], 0);
    EXPECT_EQ(order[i + 1], 1);
    EXPECT_EQ(order[i + 2], 0);
  }
}

TEST(SubflowScheduler, StampAssignsPerSubflowSequences) {
  SubflowScheduler sched(fast_config());
  const SimTime now;
  EXPECT_EQ(sched.stamp(0, 500, now), 0u);
  EXPECT_EQ(sched.stamp(1, 500, now), 0u);  // each subflow has its own space
  EXPECT_EQ(sched.stamp(0, 500, now), 1u);
  EXPECT_EQ(sched.stats(0).packets_sent, 2u);
  EXPECT_EQ(sched.stats(0).media_bytes_sent, 1000u);
  EXPECT_EQ(sched.stats(1).packets_sent, 1u);
}

// --- SubflowScheduler: health-driven drain and rejoin ---

TEST(SubflowScheduler, LossyReportsDrainThePathAndShiftLoad) {
  SubflowScheduler sched(fast_config());
  SimTime now;
  for (int i = 0; i < 10; ++i) sched.stamp(1, 500, now);
  // Reports showing heavy loss: sequence space advanced 10, 2 delivered.
  // One window at 80% loss pushes the EWMA (alpha 0.3) to 0.24; the second
  // crosses the 0.35 drain threshold.
  now = now + Duration::millis(100);
  sched.on_report(1, 4, 1, now);
  EXPECT_FALSE(sched.draining(1));
  now = now + Duration::millis(100);
  sched.on_report(1, 9, 2, now);
  EXPECT_TRUE(sched.draining(1));
  EXPECT_EQ(sched.path_switches(), 1u);
  // Every subsequent pick lands on the survivor.
  for (int i = 0; i < 9; ++i) EXPECT_EQ(sched.pick(now), 0);
  EXPECT_FALSE(sched.all_draining());
}

TEST(SubflowScheduler, RejoinNeedsHoldDownAndHealthyLoss) {
  SubflowScheduler sched(fast_config());
  SimTime now;
  for (int i = 0; i < 10; ++i) sched.stamp(1, 500, now);
  now = now + Duration::millis(100);
  sched.on_report(1, 9, 0, now);  // 100% loss: EWMA 0.3
  now = now + Duration::millis(100);
  sched.on_report(1, 9, 0, now);  // no advance: decay, still > 0.10... drain?
  // Force the drain with one more lossy window.
  for (int i = 0; i < 10; ++i) sched.stamp(1, 500, now);
  now = now + Duration::millis(100);
  sched.on_report(1, 19, 0, now);
  ASSERT_TRUE(sched.draining(1));
  const std::uint64_t switches_at_drain = sched.path_switches();

  // Clean reports *before* the hold-down elapses must not re-admit the path
  // even once the loss EWMA has decayed (flap damping)...
  now = now + Duration::millis(100);
  for (int i = 0; i < 12; ++i) sched.on_report(1, 19, 0, now);
  EXPECT_LT(sched.health(1).loss_ewma, 0.10);
  EXPECT_TRUE(sched.draining(1));
  // ...but after the hold-down a healthy report brings it back.
  now = now + Duration::millis(600);
  sched.on_report(1, 19, 0, now);
  EXPECT_FALSE(sched.draining(1));
  EXPECT_EQ(sched.path_switches(), switches_at_drain + 1);
}

TEST(SubflowScheduler, ReportSilenceStrikesOutThePath) {
  SubflowScheduler sched(fast_config());
  SimTime now;
  sched.stamp(1, 500, now);  // first use anchors the silence clock
  // Three ticks, each past 2x the report interval of silence: strike out.
  for (int i = 1; i <= 3; ++i) {
    now = now + Duration::millis(250);
    sched.on_strike_tick(now);
  }
  EXPECT_TRUE(sched.draining(1));
  // An idle, never-used subflow is owed nothing and must not be struck.
  EXPECT_FALSE(sched.draining(0));
  EXPECT_EQ(sched.path_switches(), 1u);
}

TEST(SubflowScheduler, UnreachableDrainsImmediately) {
  SubflowScheduler sched(fast_config());
  const SimTime now;
  sched.on_unreachable(1, now);
  EXPECT_TRUE(sched.draining(1));
  EXPECT_EQ(sched.path_switches(), 1u);
}

TEST(SubflowScheduler, AllDrainingDegradesToPrimary) {
  SubflowScheduler sched(fast_config());
  const SimTime now;
  sched.on_unreachable(0, now);
  sched.on_unreachable(1, now);
  ASSERT_TRUE(sched.all_draining());
  // The degradation rung: the stream collapses onto the primary path and
  // the single-path recovery machinery owns survival from here.
  EXPECT_EQ(sched.pick(now), 0);
  EXPECT_EQ(sched.pick(now), 0);
  EXPECT_EQ(sched.degraded_ticks(), 2u);
}

TEST(SubflowScheduler, ReportTakesRttSampleFromSendRing) {
  SubflowScheduler sched(fast_config());
  SimTime now;
  sched.stamp(0, 500, now);  // subflow seq 0 sent at t=0
  now = now + Duration::millis(80);
  sched.on_report(0, 0, 1, now);  // echoes highest seq 0, 80 ms later
  EXPECT_DOUBLE_EQ(sched.health(0).ewma_rtt_ms, 80.0);
}

// --- ReorderJoinBuffer ---

TEST(ReorderJoinBuffer, InOrderArrivalsPassStraightThrough) {
  ReorderJoinBuffer join(16, Duration::millis(400));
  const SimTime now;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const auto released = join.insert(packet(seq), now);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].seq, seq);
  }
  EXPECT_EQ(join.depth(), 0u);
  EXPECT_EQ(join.reorder_depth_p95(), 0u);
  EXPECT_EQ(join.forced_releases(), 0u);
}

TEST(ReorderJoinBuffer, HoldsOutOfOrderUntilTheGapFills) {
  ReorderJoinBuffer join(16, Duration::millis(400));
  const SimTime now;
  EXPECT_TRUE(join.insert(packet(1), now).empty());
  EXPECT_TRUE(join.insert(packet(2), now).empty());
  EXPECT_EQ(join.depth(), 2u);
  // The missing 0 arrives (the other subflow was slower): the whole run
  // releases in global order.
  EXPECT_EQ(seqs(join.insert(packet(0), now)),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(join.depth(), 0u);
}

TEST(ReorderJoinBuffer, DuplicateDeliveryAcrossSubflowsIsDropped) {
  ReorderJoinBuffer join(16, Duration::millis(400));
  const SimTime now;
  EXPECT_TRUE(join.insert(packet(1, /*subflow=*/0), now).empty());
  // The same stream sequence arrives again over the other subflow while the
  // first copy is still held: dropped, not double-released.
  EXPECT_TRUE(join.insert(packet(1, /*subflow=*/1), now).empty());
  EXPECT_EQ(join.duplicates_dropped(), 1u);
  EXPECT_EQ(seqs(join.insert(packet(0), now)),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(join.duplicates_dropped(), 1u);
}

TEST(ReorderJoinBuffer, LateOriginalAfterRecoveryReleasesImmediately) {
  ReorderJoinBuffer join(16, Duration::millis(400));
  SimTime now;
  EXPECT_TRUE(join.insert(packet(1), now).empty());
  // The hold budget expires waiting for 0: the cursor skips past it.
  now = now + Duration::millis(500);
  EXPECT_EQ(seqs(join.insert(packet(2), now)),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(join.forced_releases(), 1u);
  // Now the late original (or a FEC/retransmit repair) of 0 shows up below
  // the cursor: it must flow through at once — its media bytes still count
  // toward coverage — not wedge or vanish.
  const auto released = join.insert(packet(0), now);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seq, 0u);
  // And the cursor stays put: the next in-order sequence releases normally.
  EXPECT_EQ(seqs(join.insert(packet(3), now)),
            (std::vector<std::uint32_t>{3}));
}

TEST(ReorderJoinBuffer, BufferFullEvictsLowestRunInSequenceOrder) {
  ReorderJoinBuffer join(4, Duration::seconds(10));
  const SimTime now;
  // Sequence 0 never arrives; 1..4 fill the buffer to capacity.
  for (std::uint32_t seq = 1; seq <= 4; ++seq)
    EXPECT_TRUE(join.insert(packet(seq), now).empty());
  EXPECT_EQ(join.depth(), 4u);
  // The overflowing insert evicts from the *lowest* sequence, and the
  // eviction cascades through the now-contiguous run — everything comes out
  // in sequence order, never newest-first.
  EXPECT_EQ(seqs(join.insert(packet(5), now)),
            (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(join.forced_releases(), 1u);
  EXPECT_EQ(join.depth(), 0u);
}

TEST(ReorderJoinBuffer, HoldExpiryForceReleasesTheStaleFront) {
  ReorderJoinBuffer join(16, Duration::millis(400));
  SimTime now;
  EXPECT_TRUE(join.insert(packet(2), now).empty());
  now = now + Duration::millis(250);
  EXPECT_TRUE(join.insert(packet(3), now).empty());
  // 450 ms after 2 arrived its hold budget is blown: the next insert first
  // expires the stale front (2, then the contiguous 3), then processes the
  // new packet on the advanced cursor.
  now = now + Duration::millis(200);
  EXPECT_EQ(seqs(join.insert(packet(4), now)),
            (std::vector<std::uint32_t>{2, 3, 4}));
  EXPECT_EQ(join.forced_releases(), 1u);
}

TEST(ReorderJoinBuffer, FlushReleasesEverythingInOrderAndResetRestarts) {
  ReorderJoinBuffer join(16, Duration::millis(400));
  const SimTime now;
  join.insert(packet(3), now);
  join.insert(packet(1), now);
  join.insert(packet(5), now);
  EXPECT_EQ(seqs(join.flush()), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_EQ(join.depth(), 0u);
  // reset(): a failover epoch renumbers from 0.
  join.reset();
  const auto released = join.insert(packet(0), now);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seq, 0u);
}

TEST(ReorderJoinBuffer, ReorderDepthP95TracksOccupancy) {
  ReorderJoinBuffer join(16, Duration::seconds(10));
  const SimTime now;
  // 19 samples at depth 1 (hold one, fill the pair) and 1 sample at depth 2:
  // the 95th percentile lands on depth 1... then a heavier tail moves it.
  for (std::uint32_t base = 0; base < 18; base += 2) {
    join.insert(packet(base + 1), now);  // depth 1
    join.insert(packet(base), now);      // released, depth 0 sampled as run
  }
  EXPECT_LE(join.reorder_depth_p95(), 1u);
}

// --- NackTracker reorder tolerance (players/repair.hpp) ---

RepairLayerConfig nack_config(int tolerance) {
  RepairLayerConfig cfg;
  cfg.nack = true;
  cfg.nack_reorder_tolerance = tolerance;
  return cfg;
}

TEST(NackReorderTolerance, StripingGapFilledNaturallyIsSuppressed) {
  NackTracker tracker(nack_config(2));
  SimTime now;
  tracker.note_missing(5, now);
  tracker.note_arrival(6);  // one higher arrival: window still open
  tracker.note_arrival(5);  // the "gap" was just join jitter
  EXPECT_EQ(tracker.pending(), 0u);
  EXPECT_EQ(tracker.suppressed(), 1u);
  now = now + Duration::seconds(1);
  EXPECT_TRUE(tracker.due(now).empty());
}

TEST(NackReorderTolerance, ArmsAfterEnoughHigherArrivals) {
  NackTracker tracker(nack_config(2));
  SimTime now;
  tracker.note_missing(5, now);
  tracker.note_arrival(6);
  tracker.note_arrival(7);  // tolerance reached: this is a real hole
  now = now + tracker.delay();
  EXPECT_EQ(tracker.due(now), (std::vector<std::uint32_t>{5}));
  EXPECT_EQ(tracker.suppressed(), 0u);
}

TEST(NackReorderTolerance, UnarmedTimerFiringDefersOneDelayThenRequests) {
  NackTracker tracker(nack_config(2));
  SimTime now;
  tracker.note_missing(5, now);  // tail loss: no higher arrivals follow
  now = now + tracker.delay();
  // First firing while unarmed: held one extra delay, counted suppressed.
  EXPECT_TRUE(tracker.due(now).empty());
  EXPECT_EQ(tracker.suppressed(), 1u);
  now = now + tracker.delay();
  EXPECT_EQ(tracker.due(now), (std::vector<std::uint32_t>{5}));
}

TEST(NackReorderTolerance, ZeroToleranceKeepsSinglePathBehaviour) {
  NackTracker tracker(nack_config(0));
  SimTime now;
  tracker.note_missing(5, now);
  now = now + tracker.delay();
  EXPECT_EQ(tracker.due(now), (std::vector<std::uint32_t>{5}));
  EXPECT_EQ(tracker.suppressed(), 0u);
}

}  // namespace
}  // namespace streamlab
