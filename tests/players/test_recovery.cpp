// Session-level recovery: PLAY retransmission with exponential backoff,
// session abandonment after exhausted retries, the mid-stream data-inactivity
// watchdog, and the server's idempotent handling of duplicate PLAY requests.
#include <gtest/gtest.h>

#include <functional>

#include "player_test_util.hpp"

namespace streamlab {
namespace {

StreamClient::Config rm_config() {
  StreamClient::Config cc;
  cc.kind = PlayerKind::kRealPlayer;
  return cc;
}

/// Client and server wired back-to-back with a programmable drop predicate
/// per direction — lets tests lose exactly the control packet they want.
struct WireHarness {
  EventLoop loop;
  Host client_host{loop, "client", Ipv4Address(10, 0, 0, 2)};
  Host server_host{loop, "server", Ipv4Address(192, 168, 100, 10)};
  EncodedClip clip;
  RmServer server;
  StreamClient client;
  std::function<bool(const Ipv4Packet&)> drop_to_server;
  std::function<bool(const Ipv4Packet&)> drop_to_client;

  explicit WireHarness(StreamClient::Config cc, int clip_seconds = 10)
      : clip(encode_clip(testutil::short_clip(PlayerKind::kRealPlayer, 50, clip_seconds), 1)),
        server(server_host, clip, RmBehavior{}, kRealServerPort, 42),
        client(client_host, clip, Endpoint{server_host.address(), kRealServerPort}, cc) {
    client_host.attach_interface([this](const Ipv4Packet& p) {
      if (drop_to_server && drop_to_server(p)) return;
      loop.schedule_in(Duration::micros(50), [this, p] { server_host.handle_packet(p, 0); });
    });
    server_host.attach_interface([this](const Ipv4Packet& p) {
      if (drop_to_client && drop_to_client(p)) return;
      loop.schedule_in(Duration::micros(50), [this, p] { client_host.handle_packet(p, 0); });
    });
  }
};

TEST(SessionRecovery, LostPlayRequestRecoveredByRetry) {
  auto cc = rm_config();
  cc.recovery.play_timeout = Duration::millis(200);
  WireHarness h(cc);
  int to_server = 0;
  h.drop_to_server = [&](const Ipv4Packet&) { return to_server++ == 0; };

  h.client.start();
  h.loop.run();

  EXPECT_EQ(h.client.play_attempts(), 2u);
  EXPECT_TRUE(h.client.session_established());
  EXPECT_FALSE(h.client.session_abandoned());
  EXPECT_TRUE(h.server.started());
  EXPECT_TRUE(h.client.end_of_stream());
  EXPECT_EQ(h.client.packets_lost(), 0u);
  ASSERT_TRUE(h.client.session_established_time());
  // Establishment had to wait for the retransmission at +200ms.
  EXPECT_GE(*h.client.session_established_time(), SimTime::from_seconds(0.2));
}

TEST(SessionRecovery, AbandonedAfterMaxRetries) {
  auto cc = rm_config();
  cc.recovery.play_timeout = Duration::millis(100);
  cc.recovery.max_play_attempts = 3;
  WireHarness h(cc);
  h.drop_to_server = [](const Ipv4Packet&) { return true; };  // server unreachable

  h.client.start();
  h.loop.run();  // must drain: no retry timer may survive abandonment

  EXPECT_TRUE(h.client.session_abandoned());
  EXPECT_EQ(h.client.play_attempts(), 3u);
  EXPECT_FALSE(h.client.session_established());
  EXPECT_FALSE(h.server.started());
  EXPECT_EQ(h.client.packets_received(), 0u);
  ASSERT_TRUE(h.client.session_failure_time());
  // Attempts at 0, 100ms, 300ms (backoff x2); abandoned at 700ms.
  EXPECT_EQ(*h.client.session_failure_time(), SimTime::from_seconds(0.7));
}

TEST(SessionRecovery, RetryTimerInertWhenHandshakeSucceeds) {
  auto cc = rm_config();
  cc.recovery.play_timeout = Duration::millis(100);
  WireHarness h(cc);

  h.client.start();
  h.loop.run();

  EXPECT_EQ(h.client.play_attempts(), 1u);
  EXPECT_TRUE(h.client.play_ok_received());
  EXPECT_TRUE(h.client.end_of_stream());
  EXPECT_EQ(h.server.duplicate_play_requests(), 0u);
}

TEST(SessionRecovery, WatchdogDeclaresStreamDeadAfterSilence) {
  auto cc = rm_config();
  cc.recovery.inactivity_timeout = Duration::seconds(1);
  WireHarness h(cc);
  // The wire to the client goes dark for good two seconds in.
  h.drop_to_client = [&](const Ipv4Packet&) {
    return h.loop.now() >= SimTime::from_seconds(2.0);
  };

  h.client.start();
  h.loop.run();  // must drain: a dead stream may not keep timers alive

  EXPECT_TRUE(h.client.session_established());
  EXPECT_TRUE(h.client.stream_dead());
  EXPECT_FALSE(h.client.end_of_stream());
  EXPECT_GT(h.client.frames_dropped(), 0u);
  ASSERT_TRUE(h.client.session_failure_time());
  // Declared dead one inactivity window after the last packet (~2s).
  EXPECT_GE(*h.client.session_failure_time(), SimTime::from_seconds(2.9));
  EXPECT_LE(*h.client.session_failure_time(), SimTime::from_seconds(3.2));
}

TEST(SessionRecovery, WatchdogCatchesOutageRightAfterHandshake) {
  auto cc = rm_config();
  cc.recovery.inactivity_timeout = Duration::seconds(1);
  WireHarness h(cc);
  // Only the PLAY-OK survives; the wire goes permanently dark before any
  // data packet. The watchdog armed at establishment must still fire.
  int from_server = 0;
  h.drop_to_client = [&](const Ipv4Packet&) { return from_server++ > 0; };

  h.client.start();
  h.loop.run();  // must drain: the dead session may not hang the loop

  EXPECT_TRUE(h.client.play_ok_received());
  EXPECT_TRUE(h.client.session_established());
  EXPECT_EQ(h.client.packets_received(), 0u);
  EXPECT_TRUE(h.client.stream_dead());
  ASSERT_TRUE(h.client.session_failure_time());
  // Dead one inactivity window after establishment (handshake takes ~100µs).
  EXPECT_GE(*h.client.session_failure_time(), SimTime::from_seconds(1.0));
  EXPECT_LE(*h.client.session_failure_time(), SimTime::from_seconds(1.1));
}

TEST(SessionRecovery, WatchdogDisabledByDefaultToleratesSilence) {
  auto cc = rm_config();  // inactivity_timeout stays zero()
  WireHarness h(cc);
  h.drop_to_client = [&](const Ipv4Packet&) {
    return h.loop.now() >= SimTime::from_seconds(2.0);
  };

  h.client.start();
  h.loop.run();

  EXPECT_FALSE(h.client.stream_dead());
  EXPECT_FALSE(h.client.session_failure_time().has_value());
}

TEST(SessionRecovery, DuplicatePlayReAcknowledgedNotRestarted) {
  auto cc = rm_config();
  cc.recovery.play_timeout = Duration::millis(500);
  WireHarness h(cc);
  // Every server->client packet in the first half-second is lost: the first
  // PLAY-OK (and early data) vanish, so the client retransmits PLAY into an
  // already-started session.
  h.drop_to_client = [&](const Ipv4Packet&) {
    return h.loop.now() < SimTime::from_seconds(0.5);
  };

  h.client.start();
  h.loop.run();

  EXPECT_EQ(h.client.play_attempts(), 2u);
  EXPECT_EQ(h.server.duplicate_play_requests(), 1u);
  EXPECT_TRUE(h.client.play_ok_received());
  EXPECT_TRUE(h.client.session_established());
  EXPECT_FALSE(h.client.session_abandoned());
  // The send schedule started once: sequence numbers never reset, so the
  // stream still ends cleanly and late packets are counted as lost, not
  // replayed.
  EXPECT_TRUE(h.client.end_of_stream());
  EXPECT_GT(h.client.packets_lost(), 0u);
}

}  // namespace
}  // namespace streamlab
