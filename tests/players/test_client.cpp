#include "players/client.hpp"

#include <gtest/gtest.h>

#include "player_test_util.hpp"

namespace streamlab {
namespace {

using testutil::Session;
using testutil::short_clip;

TEST(StreamClient, ReceivesWholeClip) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  s.run();
  EXPECT_TRUE(s.client->end_of_stream());
  EXPECT_EQ(s.client->media_bytes_received(), s.encoded.total_bytes());
  EXPECT_EQ(s.client->packets_lost(), 0u);
  EXPECT_EQ(s.client->packets_received(), s.server->send_log().size());
}

TEST(StreamClient, PlaybackStartsAfterPreroll) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  s.run();
  ASSERT_TRUE(s.client->playback_started());
  ASSERT_TRUE(s.client->first_data_time().has_value());
  const Duration preroll =
      *s.client->playout_start_time() - *s.client->first_data_time();
  EXPECT_EQ(preroll, WmBehavior{}.preroll);
}

TEST(StreamClient, RealPrerollDiffers) {
  Session s(short_clip(PlayerKind::kRealPlayer, 50));
  s.run();
  ASSERT_TRUE(s.client->playback_started());
  const Duration preroll =
      *s.client->playout_start_time() - *s.client->first_data_time();
  EXPECT_EQ(preroll, RmBehavior{}.preroll);
}

TEST(StreamClient, RendersEssentiallyAllFramesOnCleanPath) {
  Session s(short_clip(PlayerKind::kRealPlayer, 60, 20));
  s.run();
  EXPECT_TRUE(s.client->playback_finished());
  const auto total = s.client->frames_rendered() + s.client->frames_dropped();
  EXPECT_EQ(total, s.encoded.frames().size());
  EXPECT_GE(static_cast<double>(s.client->frames_rendered()) / total, 0.98);
}

TEST(StreamClient, FrameEventsMatchPlayoutSchedule) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 150, 12));
  s.run();
  const auto& events = s.client->frame_events();
  ASSERT_EQ(events.size(), s.encoded.frames().size());
  const SimTime start = *s.client->playout_start_time();
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].frame_index, i);
    EXPECT_EQ(events[i].time, start + s.encoded.frames()[i].pts);
  }
}

TEST(StreamClient, WmAppDeliveryBatchedOncePerSecond) {
  // Figure 12: the application sees packets in batches once per second.
  Session s(short_clip(PlayerKind::kMediaPlayer, 250, 15));
  s.run();
  const auto& packets = s.client->packets();
  ASSERT_GT(packets.size(), 20u);

  // Collect distinct app release instants.
  std::vector<SimTime> releases;
  for (const auto& ev : packets) {
    EXPECT_GE(ev.app_time, ev.network_time);  // release never precedes arrival
    if (releases.empty() || ev.app_time != releases.back())
      releases.push_back(ev.app_time);
  }
  ASSERT_GT(releases.size(), 5u);
  // Consecutive releases are spaced by the batch interval.
  for (std::size_t i = 1; i < releases.size(); ++i)
    EXPECT_NEAR((releases[i] - releases[i - 1]).to_seconds(), 1.0, 0.01);

  // At 250 Kbps the server sends every 100 ms -> ~10 packets per batch,
  // the "groups of 10, once per second" of Figure 12.
  std::size_t batch = 0;
  std::vector<std::size_t> batch_sizes;
  SimTime current = packets.front().app_time;
  for (const auto& ev : packets) {
    if (ev.app_time != current) {
      batch_sizes.push_back(batch);
      batch = 0;
      current = ev.app_time;
    }
    ++batch;
  }
  std::size_t tens = 0;
  for (const auto b : batch_sizes) tens += (b >= 9 && b <= 11);
  EXPECT_GT(tens, batch_sizes.size() / 2);
}

TEST(StreamClient, RmAppDeliveryImmediate) {
  Session s(short_clip(PlayerKind::kRealPlayer, 100, 10));
  s.run();
  for (const auto& ev : s.client->packets())
    EXPECT_EQ(ev.app_time, ev.network_time);
}

TEST(StreamClient, AveragePlaybackRateNearEncodingForWm) {
  // Figure 3: MediaPlayer plays back at the encoding rate.
  const auto clip = short_clip(PlayerKind::kMediaPlayer, 150, 30);
  Session s(clip);
  s.run();
  EXPECT_NEAR(s.client->average_playback_rate().to_kbps(), 150.0, 8.0);
}

TEST(StreamClient, AveragePlaybackRateAboveEncodingForRm) {
  // Figure 3: RealPlayer's average data rate exceeds its encoding rate.
  const auto clip = short_clip(PlayerKind::kRealPlayer, 50, 60);
  Session s(clip);
  s.run();
  EXPECT_GT(s.client->average_playback_rate().to_kbps(), 55.0);
}

TEST(StreamClient, LossyPathCountsLostPackets) {
  PathConfig path = testutil::fast_path();
  path.loss_probability = 0.05;
  path.seed = 3;
  Session s(short_clip(PlayerKind::kRealPlayer, 100, 20), path);
  s.run();
  EXPECT_GT(s.client->packets_lost(), 0u);
  EXPECT_LT(s.client->media_bytes_received(), s.encoded.total_bytes());
}

TEST(StreamClient, LossyPathDropsAffectedFramesOnly) {
  PathConfig path = testutil::fast_path();
  path.loss_probability = 0.02;
  path.seed = 11;
  Session s(short_clip(PlayerKind::kMediaPlayer, 150, 20), path);
  s.run();
  EXPECT_GT(s.client->frames_dropped(), 0u);
  EXPECT_GT(s.client->frames_rendered(), s.client->frames_dropped() * 5);
}

TEST(StreamClient, IgnoresTrafficFromOtherServers) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  // A second server sends garbage to the client's port.
  Host& rogue = s.net.add_server("rogue");
  s.client->start();
  s.net.loop().schedule_in(Duration::seconds(1), [&] {
    const auto junk = DataHeader::make_packet(DataHeader{}, 100);
    rogue.udp_send(999, Endpoint{s.net.client().address(), kMediaClientPort}, junk);
  });
  s.net.loop().run_until(s.net.loop().now() + s.encoded.info().length +
                         Duration::seconds(30));
  // Byte accounting still exact: the rogue packet was discarded.
  EXPECT_EQ(s.client->media_bytes_received(), s.encoded.total_bytes());
}

}  // namespace
}  // namespace streamlab
