#include "players/scaling.hpp"

#include <gtest/gtest.h>

#include "media/catalog.hpp"

namespace streamlab {
namespace {

TEST(KeepFrame, KeyframesAlwaysSurvive) {
  EncodedFrame key;
  key.keyframe = true;
  for (const double level : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    for (std::uint32_t i = 0; i < 20; ++i) {
      key.index = i;
      EXPECT_TRUE(keep_frame(key, level)) << level << " " << i;
    }
  }
}

TEST(KeepFrame, FullLevelKeepsEverything) {
  EncodedFrame f;
  for (std::uint32_t i = 0; i < 100; ++i) {
    f.index = i;
    EXPECT_TRUE(keep_frame(f, 1.0));
  }
}

TEST(KeepFrame, FractionKeptMatchesLevel) {
  for (const double level : {0.75, 0.5, 0.25}) {
    EncodedFrame f;
    int kept = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
      f.index = static_cast<std::uint32_t>(i);
      kept += keep_frame(f, level);
    }
    EXPECT_NEAR(static_cast<double>(kept) / n, level, 0.01) << level;
  }
}

TEST(KeepFrame, HalfLevelIsEveryOther) {
  EncodedFrame f;
  f.index = 0;
  EXPECT_FALSE(keep_frame(f, 0.5));
  f.index = 1;
  EXPECT_TRUE(keep_frame(f, 0.5));
  f.index = 2;
  EXPECT_FALSE(keep_frame(f, 0.5));
  f.index = 3;
  EXPECT_TRUE(keep_frame(f, 0.5));
}

TEST(ThinnedMediaCursor, FullLevelWalksWholeClip) {
  const EncodedClip clip = encode_clip(*find_clip("set2/R-l"), 1);
  ThinnedMediaCursor cursor(clip);
  std::uint64_t total = 0;
  while (true) {
    const auto r = cursor.next(1400, 1.0);
    if (r.length == 0) break;
    total += r.length;
  }
  EXPECT_EQ(total, clip.total_bytes());
  EXPECT_EQ(cursor.frames_skipped(), 0u);
  EXPECT_TRUE(cursor.exhausted());
}

TEST(ThinnedMediaCursor, RangesAreContiguousWithinFrames) {
  const EncodedClip clip = encode_clip(*find_clip("set2/M-l"), 2);
  ThinnedMediaCursor cursor(clip);
  std::uint64_t last_end = 0;
  bool first = true;
  while (true) {
    const auto r = cursor.next(500, 1.0);
    if (r.length == 0) break;
    if (!first) {
      EXPECT_EQ(r.offset, last_end);  // full level: no gaps
    }
    last_end = r.offset + r.length;
    first = false;
  }
}

TEST(ThinnedMediaCursor, SeekResumesAtOffset) {
  // A resumed session walks only the tail: every emitted range starts at or
  // after the seek point and the tail bytes are covered exactly once.
  const EncodedClip clip = encode_clip(*find_clip("set2/R-l"), 1);
  const std::uint64_t resume = clip.total_bytes() / 2;
  ThinnedMediaCursor cursor(clip);
  cursor.seek(resume);

  std::uint64_t total = 0;
  std::uint64_t next_expected = 0;
  bool first = true;
  while (true) {
    const auto r = cursor.next(1400, 1.0);
    if (r.length == 0) break;
    if (first) {
      EXPECT_GE(r.offset, resume);  // frame-aligned: at or past the seek point
      first = false;
    } else {
      EXPECT_EQ(r.offset, next_expected);
    }
    next_expected = r.offset + r.length;
    total += r.length;
  }
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_LE(total, clip.total_bytes() - resume);
  EXPECT_GT(total, 0u);
  EXPECT_EQ(cursor.frames_skipped(), 0u);  // seeked-past frames aren't "skipped"
}

TEST(ThinnedMediaCursor, SeekPastEndExhausts) {
  const EncodedClip clip = encode_clip(*find_clip("set2/M-l"), 2);
  ThinnedMediaCursor cursor(clip);
  cursor.seek(clip.total_bytes() + 1);
  const auto r = cursor.next(1400, 1.0);
  EXPECT_EQ(r.length, 0u);
  EXPECT_TRUE(cursor.exhausted());
}

TEST(ThinnedMediaCursor, HalfLevelSkipsFramesAndBytes) {
  const EncodedClip clip = encode_clip(*find_clip("set2/R-l"), 3);
  ThinnedMediaCursor cursor(clip);
  std::uint64_t kept = 0;
  while (true) {
    const auto r = cursor.next(1400, 0.5);
    if (r.length == 0) break;
    kept += r.length;
  }
  EXPECT_GT(cursor.frames_skipped(), clip.frames().size() / 4);
  EXPECT_LT(kept, clip.total_bytes());
  // Keyframes (3x P size, ~1/gop of frames) always kept: kept fraction is
  // above the raw 0.5 frame level.
  const double kept_fraction =
      static_cast<double>(kept) / static_cast<double>(clip.total_bytes());
  EXPECT_GT(kept_fraction, 0.5);
  EXPECT_LT(kept_fraction, 0.85);
}

TEST(ThinnedMediaCursor, RangesNeverSpanThinningGaps) {
  const EncodedClip clip = encode_clip(*find_clip("set2/R-l"), 4);
  ThinnedMediaCursor cursor(clip);
  while (true) {
    const auto r = cursor.next(100000, 0.5);  // huge max: frame bound caps it
    if (r.length == 0) break;
    // Each range lies inside exactly one frame.
    const std::size_t idx = clip.frames_complete_at(r.offset);
    const auto& frame = clip.frames()[idx];
    EXPECT_GE(r.offset, frame.byte_offset);
    EXPECT_LE(r.offset + r.length, frame.byte_offset + frame.bytes);
  }
}

TEST(ScalingController, StartsAtFullQuality) {
  MediaScalingPolicy policy;
  policy.enabled = true;
  ScalingController c(policy);
  EXPECT_DOUBLE_EQ(c.keep_fraction(), 1.0);
  EXPECT_EQ(c.level(), 0u);
}

TEST(ScalingController, ScalesDownOnLoss) {
  MediaScalingPolicy policy;
  policy.enabled = true;
  ScalingController c(policy);
  c.on_report(0.10, SimTime::from_seconds(2));
  EXPECT_EQ(c.level(), 1u);
  EXPECT_DOUBLE_EQ(c.keep_fraction(), 0.75);
}

TEST(ScalingController, HoldTimePreventsOscillation) {
  MediaScalingPolicy policy;
  policy.enabled = true;
  policy.hold_time = Duration::seconds(6);
  ScalingController c(policy);
  c.on_report(0.10, SimTime::from_seconds(2));
  EXPECT_EQ(c.level(), 1u);
  c.on_report(0.10, SimTime::from_seconds(4));  // within hold: ignored
  EXPECT_EQ(c.level(), 1u);
  c.on_report(0.10, SimTime::from_seconds(9));  // past hold: acts
  EXPECT_EQ(c.level(), 2u);
}

TEST(ScalingController, ScalesBackUpWhenClean) {
  MediaScalingPolicy policy;
  policy.enabled = true;
  ScalingController c(policy);
  c.on_report(0.10, SimTime::from_seconds(2));
  c.on_report(0.10, SimTime::from_seconds(10));
  EXPECT_EQ(c.level(), 2u);
  // Up-moves wait hold_time x up_hold_multiplier (6 s x 4 = 24 s).
  c.on_report(0.0, SimTime::from_seconds(20));
  EXPECT_EQ(c.level(), 2u);  // too soon after the last change
  c.on_report(0.0, SimTime::from_seconds(40));
  EXPECT_EQ(c.level(), 1u);
  c.on_report(0.0, SimTime::from_seconds(70));
  EXPECT_EQ(c.level(), 0u);
  // Never scales above full quality.
  c.on_report(0.0, SimTime::from_seconds(100));
  EXPECT_EQ(c.level(), 0u);
}

TEST(ScalingController, ClampsAtWorstLevel) {
  MediaScalingPolicy policy;
  policy.enabled = true;
  ScalingController c(policy);
  for (int i = 0; i < 10; ++i)
    c.on_report(0.5, SimTime::from_seconds(10.0 * (i + 1)));
  EXPECT_EQ(c.level(), policy.levels.size() - 1);
  EXPECT_DOUBLE_EQ(c.keep_fraction(), 0.25);
}

TEST(ScalingController, DisabledPolicyNeverMoves) {
  MediaScalingPolicy policy;  // enabled = false
  ScalingController c(policy);
  c.on_report(0.5, SimTime::from_seconds(10));
  EXPECT_EQ(c.level(), 0u);
}

TEST(ScalingController, ModerateLossHolds) {
  MediaScalingPolicy policy;
  policy.enabled = true;
  ScalingController c(policy);
  // Loss between the thresholds: stay put.
  c.on_report(0.02, SimTime::from_seconds(5));
  EXPECT_EQ(c.level(), 0u);
}

}  // namespace
}  // namespace streamlab
