#include "players/protocol.hpp"

#include <gtest/gtest.h>

namespace streamlab {
namespace {

TEST(ControlMessage, RoundTrip) {
  ControlMessage msg{ControlType::kPlayRequest, "set1/M-h"};
  const auto bytes = msg.encode();
  const auto decoded = ControlMessage::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, ControlType::kPlayRequest);
  EXPECT_EQ(decoded->clip_id, "set1/M-h");
}

TEST(ControlMessage, ResumeOffsetRoundTrips) {
  // A failover PLAY carries the media position to resume from; the full
  // 64-bit range must survive the wire format.
  ControlMessage msg{ControlType::kPlayRequest, "set1/R-l"};
  msg.offset = 0x1234'5678'9ABC'DEF0ULL;
  const auto decoded = ControlMessage::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->offset, 0x1234'5678'9ABC'DEF0ULL);
  // And the default stays "play from the top".
  const ControlMessage plain{ControlType::kPlayRequest, "set1/R-l"};
  const auto plain_decoded = ControlMessage::decode(plain.encode());
  ASSERT_TRUE(plain_decoded.has_value());
  EXPECT_EQ(plain_decoded->offset, 0u);
}

TEST(ControlMessage, EmptyClipId) {
  ControlMessage msg{ControlType::kTeardown, ""};
  const auto decoded = ControlMessage::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, ControlType::kTeardown);
  EXPECT_TRUE(decoded->clip_id.empty());
}

TEST(ControlMessage, RejectsWrongMagic) {
  auto bytes = ControlMessage{ControlType::kPlayOk, "x"}.encode();
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(ControlMessage::decode(bytes).has_value());
}

TEST(ControlMessage, RejectsTruncated) {
  const auto bytes = ControlMessage{ControlType::kPlayOk, "set1/R-l"}.encode();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 3);
  EXPECT_FALSE(ControlMessage::decode(cut).has_value());
}

TEST(DataHeader, RoundTripWithPayloadLength) {
  DataHeader h;
  h.seq = 123456;
  h.media_offset = 0x123456789AULL;  // needs > 32 bits
  h.flags = kFlagBufferingPhase;

  const auto packet = DataHeader::make_packet(h, 500);
  EXPECT_EQ(packet.size(), kDataHeaderSize + 500);

  std::size_t media_len = 0;
  const auto decoded = DataHeader::decode(packet, media_len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 123456u);
  EXPECT_EQ(decoded->media_offset, 0x123456789AULL);
  EXPECT_EQ(decoded->flags, kFlagBufferingPhase);
  EXPECT_EQ(media_len, 500u);
}

TEST(DataHeader, ZeroLengthPayload) {
  DataHeader h;
  h.flags = kFlagEndOfStream;
  const auto packet = DataHeader::make_packet(h, 0);
  std::size_t media_len = 99;
  const auto decoded = DataHeader::decode(packet, media_len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(media_len, 0u);
  EXPECT_TRUE(decoded->flags & kFlagEndOfStream);
}

TEST(DataHeader, ControlAndDataMagicsDistinct) {
  // A data packet must not decode as control, and vice versa.
  const auto data = DataHeader::make_packet(DataHeader{}, 10);
  EXPECT_FALSE(ControlMessage::decode(data).has_value());
  const auto ctrl = ControlMessage{ControlType::kPlayRequest, "id"}.encode();
  std::size_t media_len = 0;
  EXPECT_FALSE(DataHeader::decode(ctrl, media_len).has_value());
}

TEST(DataHeader, PayloadPatternDeterministicByOffset) {
  DataHeader h;
  h.media_offset = 256;
  const auto a = DataHeader::make_packet(h, 16);
  const auto b = DataHeader::make_packet(h, 16);
  EXPECT_EQ(a, b);
  // Pattern continues across offsets: byte at offset k is (offset+k) & 0xFF.
  EXPECT_EQ(a[kDataHeaderSize], 0);  // (256 + 0) & 0xFF
  EXPECT_EQ(a[kDataHeaderSize + 5], 5);
}

TEST(Ports, WellKnownValues) {
  EXPECT_EQ(kRealServerPort, 7070);
  EXPECT_EQ(kMediaServerPort, 1755);
  EXPECT_NE(kRealClientPort, kMediaClientPort);  // concurrent sessions need both
}

}  // namespace
}  // namespace streamlab
