#include "players/server.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "player_test_util.hpp"

namespace streamlab {
namespace {

using testutil::Session;
using testutil::short_clip;

TEST(StreamServer, StartsOnPlayRequest) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  EXPECT_FALSE(s.server->started());
  s.run();
  EXPECT_TRUE(s.server->started());
  EXPECT_TRUE(s.server->finished());
  EXPECT_TRUE(s.client->play_ok_received());
}

TEST(StreamServer, IgnoresMismatchedClipId) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  // A rogue client asks for a different clip id.
  ControlMessage wrong{ControlType::kPlayRequest, "set9/M-x"};
  const auto bytes = wrong.encode();
  s.net.client().udp_send(5555, Endpoint{s.server_host.address(), kMediaServerPort},
                          bytes);
  s.net.loop().run_until(SimTime::from_seconds(2));
  EXPECT_FALSE(s.server->started());
}

TEST(StreamServer, SendsAllMediaBytesExactly) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 150));
  s.run();
  std::uint64_t sent = 0;
  for (const auto& ev : s.server->send_log()) sent += ev.media_len;
  EXPECT_EQ(sent, s.encoded.total_bytes());
}

TEST(StreamServer, SequenceNumbersAndOffsetsMonotone) {
  Session s(short_clip(PlayerKind::kRealPlayer, 80));
  s.run();
  const auto& log = s.server->send_log();
  ASSERT_GT(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_EQ(log[i].seq, log[i - 1].seq + 1);
    EXPECT_EQ(log[i].media_offset, log[i - 1].media_offset + log[i - 1].media_len);
  }
}

TEST(StreamServer, PlayWithOffsetResumesMidClip) {
  // A failover PLAY carrying a resume offset must start the stream at that
  // media position, not from byte zero.
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  const std::uint64_t resume = s.encoded.total_bytes() / 2;
  ControlMessage play{ControlType::kPlayRequest, s.encoded.info().id()};
  play.offset = resume;
  s.net.client().udp_send(5555, Endpoint{s.server_host.address(), kMediaServerPort},
                          play.encode());
  s.net.loop().run_until(s.net.loop().now() + s.encoded.info().length +
                         Duration::seconds(30));

  ASSERT_TRUE(s.server->started());
  const auto& log = s.server->send_log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front().media_offset, resume);
  std::uint64_t sent = 0;
  for (const auto& ev : log) sent += ev.media_len;
  EXPECT_EQ(sent, s.encoded.total_bytes() - resume);  // only the tail
}

TEST(StreamServer, PlayOffsetPastEndClampsToEnd) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  ControlMessage play{ControlType::kPlayRequest, s.encoded.info().id()};
  play.offset = s.encoded.total_bytes() + 1000;
  s.net.client().udp_send(5555, Endpoint{s.server_host.address(), kMediaServerPort},
                          play.encode());
  s.net.loop().run_until(s.net.loop().now() + s.encoded.info().length +
                         Duration::seconds(30));

  ASSERT_TRUE(s.server->started());
  std::uint64_t sent = 0;
  for (const auto& ev : s.server->send_log()) sent += ev.media_len;
  EXPECT_EQ(sent, 0u);  // nothing left to send, and no crash or underflow
}

TEST(WmServer, ConstantPacketSizeAndInterval) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 250, 20));
  s.run();
  const auto& log = s.server->send_log();
  ASSERT_GT(log.size(), 20u);

  // All datagrams except the final remainder carry identical media bytes.
  for (std::size_t i = 0; i + 1 < log.size(); ++i)
    EXPECT_EQ(log[i].media_len, log[0].media_len) << i;

  // Intervals are exactly constant (CBR): Figures 8-9.
  const Duration gap0 = log[1].time - log[0].time;
  for (std::size_t i = 2; i + 1 < log.size(); ++i)
    EXPECT_EQ(log[i].time - log[i - 1].time, gap0) << i;
}

TEST(WmServer, NeverMarksBufferingPhase) {
  // Section 3.F: MediaPlayer buffers at the playout rate — no burst phase.
  Session s(short_clip(PlayerKind::kMediaPlayer, 100, 15));
  s.run();
  for (const auto& ev : s.server->send_log()) EXPECT_FALSE(ev.buffering_phase);
}

TEST(WmServer, StreamingDurationMatchesClipLength) {
  // Sending at exactly the encoding rate means streaming lasts the clip
  // duration (Figure 10: WM streams for the whole clip).
  const auto clip = short_clip(PlayerKind::kMediaPlayer, 200, 30);
  Session s(clip);
  s.run();
  EXPECT_NEAR(s.server->streaming_duration().to_seconds(),
              clip.length.to_seconds(), 1.0);
}

TEST(RmServer, BurstPhaseThenSteady) {
  const auto clip = short_clip(PlayerKind::kRealPlayer, 40, 90);
  Session s(clip);
  s.run();
  const auto& log = s.server->send_log();
  ASSERT_GT(log.size(), 50u);

  // Buffering-phase packets first, then steady-phase, no interleaving.
  bool seen_steady = false;
  std::size_t burst_packets = 0;
  for (const auto& ev : log) {
    if (ev.buffering_phase) {
      EXPECT_FALSE(seen_steady) << "burst after steady";
      ++burst_packets;
    } else {
      seen_steady = true;
    }
  }
  EXPECT_GT(burst_packets, 0u);
  EXPECT_TRUE(seen_steady);

  // Burst duration ~20 s for a 40 Kbps clip (Section IV).
  const Duration burst_span = log[burst_packets - 1].time - log[0].time;
  EXPECT_NEAR(burst_span.to_seconds(), 20.0, 2.0);
}

TEST(RmServer, BurstRateIsRatioTimesSteady) {
  const auto clip = short_clip(PlayerKind::kRealPlayer, 50, 90);
  Session s(clip);
  s.run();
  const auto& log = s.server->send_log();

  double burst_bytes = 0, steady_bytes = 0;
  Duration burst_span, steady_span;
  SimTime burst_start = log.front().time, steady_start;
  bool in_steady = false;
  for (const auto& ev : log) {
    if (ev.buffering_phase) {
      burst_bytes += static_cast<double>(ev.media_len);
      burst_span = ev.time - burst_start;
    } else {
      if (!in_steady) {
        steady_start = ev.time;
        in_steady = true;
      }
      steady_bytes += static_cast<double>(ev.media_len);
      steady_span = ev.time - steady_start;
    }
  }
  ASSERT_GT(burst_span.to_seconds(), 5.0);
  ASSERT_GT(steady_span.to_seconds(), 5.0);
  const double burst_rate = burst_bytes / burst_span.to_seconds();
  const double steady_rate = steady_bytes / steady_span.to_seconds();
  const double expected_ratio = RmBehavior{}.buffering_ratio(clip.encoded_rate);
  EXPECT_NEAR(burst_rate / steady_rate, expected_ratio, 0.35);
}

TEST(RmServer, StreamingDurationShorterThanClip) {
  // Figure 10: RealPlayer finishes streaming (rho-1) x burst earlier.
  const auto clip = short_clip(PlayerKind::kRealPlayer, 40, 80);
  Session s(clip);
  s.run();
  const double rho = RmBehavior{}.buffering_ratio(clip.encoded_rate);
  const double burst = RmBehavior{}.burst_duration(clip.encoded_rate).to_seconds();
  const double expected = clip.length.to_seconds() - (rho - 1.0) * burst;
  EXPECT_NEAR(s.server->streaming_duration().to_seconds(), expected, 4.0);
}

TEST(RmServer, PacketSizesVaried) {
  Session s(short_clip(PlayerKind::kRealPlayer, 80, 30));
  s.run();
  const auto& log = s.server->send_log();
  std::size_t distinct = 0;
  for (std::size_t i = 1; i < log.size(); ++i)
    distinct += log[i].media_len != log[0].media_len;
  // Nearly every RealPlayer packet differs in size (Figures 6-7).
  EXPECT_GT(distinct, log.size() / 2);
}

TEST(RmServer, DeterministicGivenSeed) {
  const auto clip = short_clip(PlayerKind::kRealPlayer, 60, 15);
  Session a(clip, testutil::fast_path(), 99);
  a.run();
  Session b(clip, testutil::fast_path(), 99);
  b.run();
  ASSERT_EQ(a.server->send_log().size(), b.server->send_log().size());
  for (std::size_t i = 0; i < a.server->send_log().size(); ++i) {
    EXPECT_EQ(a.server->send_log()[i].media_len, b.server->send_log()[i].media_len);
    EXPECT_EQ(a.server->send_log()[i].time, b.server->send_log()[i].time);
  }
}

TEST(StreamServer, SecondPlayRequestIgnored) {
  Session s(short_clip(PlayerKind::kMediaPlayer, 100));
  s.client->start();
  s.net.loop().run_until(SimTime::from_seconds(1));
  const std::size_t sent_after_1s = s.server->send_log().size();
  // Re-sending PLAY must not restart the stream.
  s.client->start();
  s.net.loop().run_until(SimTime::from_seconds(2));
  const std::size_t sent_after_2s = s.server->send_log().size();
  // Stream continues from where it was, no duplicate session (offsets
  // stay monotone — checked by the monotone test — and the rate is steady).
  EXPECT_GT(sent_after_2s, sent_after_1s);
  const auto& log = s.server->send_log();
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_GT(log[i].media_offset, log[i - 1].media_offset);
}

}  // namespace
}  // namespace streamlab
