// Mirror failover (DESIGN.md §11): exhausted PLAY retries, the inactivity
// watchdog, and ICMP Destination Unreachable all switch the session to a
// mirror server, resuming at the current contiguous media position instead
// of abandoning the stream.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "player_test_util.hpp"
#include "util/bytes.hpp"

namespace streamlab {
namespace {

/// Client wired to a primary and a mirror server with per-direction drop
/// predicates; dropped client->primary packets can optionally be answered
/// with Destination Unreachable, standing in for a boundary router whose
/// route through a dead span was withdrawn.
struct FailoverHarness {
  EventLoop loop;
  Host client_host{loop, "client", Ipv4Address(10, 0, 0, 2)};
  Host primary_host{loop, "primary", Ipv4Address(192, 168, 100, 10)};
  Host mirror_host{loop, "mirror", Ipv4Address(192, 168, 100, 20)};
  EncodedClip clip;
  RmServer primary;
  RmServer mirror;
  std::unique_ptr<StreamClient> client;
  std::function<bool(const Ipv4Packet&)> drop_to_primary;
  std::function<bool(const Ipv4Packet&)> drop_from_primary;
  std::function<bool(const Ipv4Packet&)> drop_to_mirror;
  bool unreachable_on_primary_drop = false;
  std::uint16_t icmp_ip_id = 1;

  explicit FailoverHarness(StreamClient::Config cc, int clip_seconds = 10)
      : clip(encode_clip(testutil::short_clip(PlayerKind::kRealPlayer, 50, clip_seconds), 1)),
        primary(primary_host, clip, RmBehavior{}, kRealServerPort, 42),
        mirror(mirror_host, clip, RmBehavior{}, kRealServerPort, 43) {
    cc.kind = PlayerKind::kRealPlayer;
    cc.failover.mirrors.push_back(Endpoint{mirror_host.address(), kRealServerPort});
    client = std::make_unique<StreamClient>(
        client_host, clip, Endpoint{primary_host.address(), kRealServerPort}, cc);

    client_host.attach_interface([this](const Ipv4Packet& p) {
      if (p.header.dst == primary_host.address()) {
        if (drop_to_primary && drop_to_primary(p)) {
          if (unreachable_on_primary_drop) send_unreachable(p);
          return;
        }
        deliver(primary_host, p);
      } else if (p.header.dst == mirror_host.address()) {
        if (drop_to_mirror && drop_to_mirror(p)) return;
        deliver(mirror_host, p);
      }
    });
    primary_host.attach_interface([this](const Ipv4Packet& p) {
      if (drop_from_primary && drop_from_primary(p)) return;
      deliver(client_host, p);
    });
    mirror_host.attach_interface([this](const Ipv4Packet& p) { deliver(client_host, p); });
  }

  void deliver(Host& to, const Ipv4Packet& p) {
    loop.schedule_in(Duration::micros(50), [&to, p] { to.handle_packet(p, 0); });
  }

  /// RFC 792 Destination Unreachable quoting the dropped packet, as a
  /// router between client and primary would emit it.
  void send_unreachable(const Ipv4Packet& dropped) {
    ByteWriter quoted(kIpv4HeaderSize + 8);
    dropped.header.encode(quoted);
    const std::size_t quote = std::min<std::size_t>(8, dropped.payload.size());
    quoted.bytes(dropped.payload.bytes().subspan(0, quote));
    IcmpHeader icmp;
    icmp.type = IcmpType::kDestinationUnreachable;
    const Ipv4Packet error = make_icmp_packet(
        Ipv4Address(10, 0, 0, 1), client_host.address(), icmp, quoted.view(), icmp_ip_id++);
    deliver(client_host, error);
  }

  Endpoint mirror_endpoint() const {
    return Endpoint{mirror_host.address(), kRealServerPort};
  }
};

StreamClient::Config failover_config() {
  StreamClient::Config cc;
  cc.kind = PlayerKind::kRealPlayer;
  cc.recovery.play_timeout = Duration::millis(100);
  cc.recovery.max_play_attempts = 2;
  return cc;
}

TEST(Failover, ExhaustedPlayRetriesSwitchToMirror) {
  FailoverHarness h(failover_config());
  h.drop_to_primary = [](const Ipv4Packet&) { return true; };

  h.client->start();
  h.loop.run();

  EXPECT_EQ(h.client->failover_count(), 1u);
  EXPECT_FALSE(h.client->session_abandoned());
  EXPECT_TRUE(h.client->session_established());
  EXPECT_EQ(h.client->active_server(), h.mirror_endpoint());
  EXPECT_FALSE(h.primary.started());
  EXPECT_TRUE(h.mirror.started());
  EXPECT_TRUE(h.client->end_of_stream());
  EXPECT_EQ(h.client->resume_offset(), 0u);  // nothing received before the switch
}

TEST(Failover, IcmpUnreachableFailsOverBeforeRetriesExhaust) {
  auto cc = failover_config();
  cc.recovery.max_play_attempts = 10;
  cc.failover.icmp_unreachable_threshold = 3;
  FailoverHarness h(cc);
  h.drop_to_primary = [](const Ipv4Packet&) { return true; };
  h.unreachable_on_primary_drop = true;

  h.client->start();
  h.loop.run();

  // Three quoted unreachables hit the threshold; the session switched long
  // before the ten PLAY attempts were spent.
  EXPECT_EQ(h.client->icmp_unreachables(), 3u);
  EXPECT_EQ(h.client->failover_count(), 1u);
  EXPECT_TRUE(h.client->session_established());
  EXPECT_LT(h.client->play_attempts(), 10u);
  EXPECT_TRUE(h.mirror.started());
}

TEST(Failover, UnreachableQuotingOtherDestinationsIgnored) {
  // An ICMP error quoting a packet to some *other* host must not count
  // against the active server.
  auto cc = failover_config();
  cc.failover.icmp_unreachable_threshold = 1;
  FailoverHarness h(cc);

  h.client->start();
  // Hand-deliver an unreachable quoting an unrelated destination.
  const std::vector<std::uint8_t> junk(8, 0);
  const Ipv4Packet unrelated =
      make_udp_packet(Endpoint{h.client_host.address(), 1}, Endpoint{Ipv4Address(1, 2, 3, 4), 2},
                      junk, 99);
  h.loop.schedule_at(SimTime::from_seconds(0.01), [&] { h.send_unreachable(unrelated); });
  h.loop.run();

  EXPECT_EQ(h.client->icmp_unreachables(), 0u);
  EXPECT_EQ(h.client->failover_count(), 0u);
  EXPECT_EQ(h.client->active_server(),
            (Endpoint{h.primary_host.address(), kRealServerPort}));
  EXPECT_TRUE(h.client->end_of_stream());
}

TEST(Failover, WatchdogSilenceResumesOnMirrorAtContiguousPrefix) {
  auto cc = failover_config();
  cc.recovery.inactivity_timeout = Duration::millis(500);
  FailoverHarness h(cc, 10);
  // Primary serves normally, then goes silent mid-stream.
  const SimTime cutoff = SimTime::from_seconds(2.0);
  h.drop_from_primary = [&](const Ipv4Packet&) { return h.loop.now() >= cutoff; };

  h.client->start();
  h.loop.run();

  EXPECT_EQ(h.client->failover_count(), 1u);
  EXPECT_TRUE(h.client->session_established());
  EXPECT_FALSE(h.client->stream_dead());
  EXPECT_TRUE(h.client->end_of_stream());
  EXPECT_GT(h.client->resume_offset(), 0u);
  EXPECT_EQ(h.client->active_server(), h.mirror_endpoint());
  // The mirror's PLAY carried the resume offset: its first media byte is
  // exactly where the client's contiguous prefix ended.
  ASSERT_FALSE(h.mirror.send_log().empty());
  EXPECT_EQ(h.mirror.send_log().front().media_offset, h.client->resume_offset());
}

TEST(Failover, AbandonsOnlyAfterMirrorsExhaust) {
  FailoverHarness h(failover_config());
  h.drop_to_primary = [](const Ipv4Packet&) { return true; };
  h.drop_to_mirror = [](const Ipv4Packet&) { return true; };

  h.client->start();
  h.loop.run();

  EXPECT_EQ(h.client->failover_count(), 1u);  // tried the mirror...
  EXPECT_TRUE(h.client->session_abandoned());  // ...then ran out of options
  EXPECT_FALSE(h.client->session_established());
  // Two attempts against each server.
  EXPECT_EQ(h.client->play_attempts(), 4u);
}

TEST(Failover, StallIntervalsSumToTotalStallTime) {
  auto cc = failover_config();
  cc.rebuffering = true;
  cc.recovery.inactivity_timeout = Duration::millis(800);
  FailoverHarness h(cc, 10);
  const SimTime cutoff = SimTime::from_seconds(2.0);
  h.drop_from_primary = [&](const Ipv4Packet&) { return h.loop.now() >= cutoff; };

  h.client->start();
  h.loop.run();

  EXPECT_TRUE(h.client->end_of_stream());
  const auto& stalls = h.client->stall_intervals();
  Duration sum;
  for (const auto& [start, end] : stalls) {
    EXPECT_GT(end, start);
    sum += end - start;
  }
  EXPECT_EQ(sum, h.client->total_stall_time());
}

}  // namespace
}  // namespace streamlab
