// Tests of the stall-capable (rebuffering) playout mode.
#include <gtest/gtest.h>

#include "player_test_util.hpp"

namespace streamlab {
namespace {

using testutil::fast_path;
using testutil::short_clip;

/// Session variant with a configurable client.
struct RebufferSession {
  Network net;
  Host& server_host;
  EncodedClip encoded;
  std::unique_ptr<StreamServer> server;
  std::unique_ptr<StreamClient> client;

  RebufferSession(const ClipInfo& clip, PathConfig path, bool rebuffering)
      : net(path), server_host(net.add_server("srv")), encoded(encode_clip(clip, 7)) {
    server = std::make_unique<WmServer>(server_host, encoded, WmBehavior{},
                                        kMediaServerPort);
    StreamClient::Config cc;
    cc.kind = clip.player;
    cc.rebuffering = rebuffering;
    client = std::make_unique<StreamClient>(
        net.client(), server->clip(), Endpoint{server_host.address(), kMediaServerPort},
        cc);
  }

  void run(Duration slack = Duration::seconds(120)) {
    client->start();
    net.loop().run_until(net.loop().now() + encoded.info().length + slack);
  }
};

TEST(Rebuffering, CleanPathBehavesLikeDropMode) {
  const auto clip = short_clip(PlayerKind::kMediaPlayer, 150, 15);
  RebufferSession s(clip, fast_path(), /*rebuffering=*/true);
  s.run();
  EXPECT_TRUE(s.client->playback_finished());
  EXPECT_EQ(s.client->frames_dropped(), 0u);
  EXPECT_EQ(s.client->rebuffer_events(), 0u);
  EXPECT_EQ(s.client->total_stall_time(), Duration::zero());
  EXPECT_EQ(s.client->frames_rendered(), s.encoded.frames().size());
}

TEST(Rebuffering, LossCausesStallsNotDrops) {
  // Random loss leaves holes; with UDP (no retransmission) the stalled
  // frame's data never arrives, so the stall runs to max_stall and the
  // frame is abandoned — but only the affected frames, and playback ends
  // later than the nominal clip length.
  PathConfig lossy = fast_path();
  lossy.loss_probability = 0.02;
  lossy.seed = 3;
  const auto clip = short_clip(PlayerKind::kMediaPlayer, 150, 15);

  RebufferSession drop(clip, lossy, false);
  drop.run();
  RebufferSession stall(clip, lossy, true);
  stall.run(Duration::seconds(300));

  ASSERT_GT(drop.client->frames_dropped(), 0u);  // loss actually happened
  EXPECT_GT(stall.client->rebuffer_events(), 0u);
  EXPECT_GT(stall.client->total_stall_time(), Duration::zero());
  // Playback end shifted by at least the stall time.
  ASSERT_TRUE(stall.client->playback_end_time().has_value());
  ASSERT_TRUE(drop.client->playback_end_time().has_value());
  EXPECT_GT(*stall.client->playback_end_time(), *drop.client->playback_end_time());
}

TEST(Rebuffering, FrameEventsStayOrderedAndComplete) {
  PathConfig lossy = fast_path();
  lossy.loss_probability = 0.01;
  lossy.seed = 9;
  const auto clip = short_clip(PlayerKind::kMediaPlayer, 100, 12);
  RebufferSession s(clip, lossy, true);
  s.run(Duration::seconds(300));

  ASSERT_TRUE(s.client->playback_finished());
  const auto& events = s.client->frame_events();
  ASSERT_EQ(events.size(), s.encoded.frames().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].frame_index, i);
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
  }
  EXPECT_EQ(s.client->frames_rendered() + s.client->frames_dropped(), events.size());
}

TEST(Rebuffering, MaxStallBoundsSingleWait) {
  PathConfig lossy = fast_path();
  lossy.loss_probability = 0.02;
  lossy.seed = 5;
  const auto clip = short_clip(PlayerKind::kMediaPlayer, 100, 10);
  RebufferSession s(clip, lossy, true);
  s.run(Duration::seconds(600));
  ASSERT_TRUE(s.client->playback_finished());
  // Total stall is bounded by events x max_stall.
  const double bound =
      static_cast<double>(s.client->rebuffer_events() + s.client->frames_dropped()) *
      10.0;
  EXPECT_LE(s.client->total_stall_time().to_seconds(), bound + 1.0);
}

}  // namespace
}  // namespace streamlab
