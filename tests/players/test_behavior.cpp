#include "players/behavior.hpp"

#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "players/protocol.hpp"

namespace streamlab {
namespace {

TEST(WmBehavior, LowRateDatagramsStayUnderMtu) {
  // Figure 6: at ~50 Kbps, MediaPlayer packets land around 800-1000 bytes —
  // well under the MTU, so no fragmentation (Figure 5).
  const WmBehavior wm;
  const auto media = wm.media_per_datagram(BitRate::kbps(49.8));
  EXPECT_GE(media, 800u);
  EXPECT_LE(media + kDataHeaderSize + kUdpHeaderSize + kIpv4HeaderSize, kDefaultMtu);
}

TEST(WmBehavior, HighRateDatagramsExceedMtu) {
  // At ~300 Kbps one 100 ms application frame exceeds the MTU, producing
  // the fragmentation of Figures 4-5.
  const WmBehavior wm;
  for (const double kbps : {250.4, 307.2, 323.1, 347.2, 731.3}) {
    const auto media = wm.media_per_datagram(BitRate::kbps(kbps));
    EXPECT_GT(media + kDataHeaderSize + kUdpHeaderSize + kIpv4HeaderSize, kDefaultMtu)
        << kbps;
  }
}

TEST(WmBehavior, FragmentFractionAnchors) {
  // Derived wire groups: (n-1)/n trailing fragments for n IP packets per
  // application frame. ~300 Kbps -> 3 packets -> 66%; 731 Kbps -> 7 -> 86%.
  const WmBehavior wm;
  const auto packets_per_group = [&wm](double kbps) {
    const std::size_t ip_payload =
        wm.media_per_datagram(BitRate::kbps(kbps)) + kDataHeaderSize + kUdpHeaderSize;
    return (ip_payload + 1479) / 1480;  // 1480-byte fragment payloads
  };
  EXPECT_EQ(packets_per_group(307.2), 3u);
  EXPECT_EQ(packets_per_group(323.1), 3u);
  EXPECT_EQ(packets_per_group(49.8), 1u);
  EXPECT_EQ(packets_per_group(102.3), 1u);
  EXPECT_EQ(packets_per_group(731.3), 7u);
}

TEST(WmBehavior, SendIntervalPreservesRate) {
  const WmBehavior wm;
  for (const double kbps : {39.0, 49.8, 102.3, 250.4, 323.1, 731.3}) {
    const BitRate rate = BitRate::kbps(kbps);
    const auto media = wm.media_per_datagram(rate);
    const Duration interval = wm.send_interval(rate, media);
    // media bytes per interval at the encoding rate, within rounding.
    const double implied_kbps =
        static_cast<double>(media) * 8.0 / interval.to_seconds() / 1000.0;
    EXPECT_NEAR(implied_kbps, kbps, 0.5) << kbps;
  }
}

TEST(WmBehavior, HighRateIntervalIsFrameInterval) {
  // At rates where the datagram is rate x 100 ms, the interval is 100 ms —
  // the packet-group cadence of Figure 12.
  const WmBehavior wm;
  const BitRate rate = BitRate::kbps(250.4);
  const auto media = wm.media_per_datagram(rate);
  EXPECT_NEAR(wm.send_interval(rate, media).to_seconds(), 0.1, 0.001);
}

TEST(WmBehavior, LowRateIntervalStretches) {
  // Figure 8: the 49.8 Kbps clip shows ~0.14 s interarrivals.
  const WmBehavior wm;
  const BitRate rate = BitRate::kbps(49.8);
  const auto media = wm.media_per_datagram(rate);
  EXPECT_NEAR(wm.send_interval(rate, media).to_seconds(), 0.137, 0.01);
}

TEST(RmBehavior, BufferingRatioAnchors) {
  // Figure 11: ratio ~3 at/below 56 Kbps, decaying toward ~1 at 637 Kbps.
  const RmBehavior rm;
  EXPECT_NEAR(rm.buffering_ratio(BitRate::kbps(22)), 3.0, 0.01);
  EXPECT_NEAR(rm.buffering_ratio(BitRate::kbps(56)), 3.0, 0.01);
  EXPECT_LT(rm.buffering_ratio(BitRate::kbps(284)), 2.0);
  EXPECT_GT(rm.buffering_ratio(BitRate::kbps(284)), 1.2);
  EXPECT_NEAR(rm.buffering_ratio(BitRate::kbps(636.9)), rm.ratio_floor, 0.15);
}

TEST(RmBehavior, BufferingRatioMonotoneDecreasing) {
  const RmBehavior rm;
  double prev = 100.0;
  for (double kbps = 20; kbps <= 800; kbps += 20) {
    const double r = rm.buffering_ratio(BitRate::kbps(kbps));
    EXPECT_LE(r, prev) << kbps;
    EXPECT_GE(r, rm.ratio_floor);
    EXPECT_LE(r, rm.ratio_at_low);
    prev = r;
  }
}

TEST(RmBehavior, BurstDurationAnchors) {
  // Section IV: ~20 s for low-rate clips, ~40 s for high-rate clips.
  const RmBehavior rm;
  EXPECT_NEAR(rm.burst_duration(BitRate::kbps(36)).to_seconds(), 20.0, 0.5);
  EXPECT_NEAR(rm.burst_duration(BitRate::kbps(300)).to_seconds(), 40.0, 0.5);
  EXPECT_NEAR(rm.burst_duration(BitRate::kbps(636.9)).to_seconds(), 40.0, 0.5);  // clamped
  const double mid = rm.burst_duration(BitRate::kbps(130)).to_seconds();
  EXPECT_GT(mid, 25.0);
  EXPECT_LT(mid, 35.0);
}

TEST(RmBehavior, BurstCappedForShortClips) {
  // A 39-second clip cannot burst for the nominal 20-40 s; the cap keeps a
  // distinct steady phase so Figure 11's ratio is measurable on every clip.
  const RmBehavior rm;
  EXPECT_NEAR(rm.burst_duration_for_clip(BitRate::kbps(84), Duration::seconds(39))
                  .to_seconds(),
              39.0 * rm.burst_max_fraction_of_clip, 0.01);
  // Long clips keep the nominal burst.
  EXPECT_EQ(rm.burst_duration_for_clip(BitRate::kbps(36), Duration::seconds(230)),
            rm.burst_duration(BitRate::kbps(36)));
}

TEST(RmBehavior, PacketSizesNeverFragment) {
  // max payload + headers must stay under the MTU for every draw.
  const RmBehavior rm;
  const std::size_t worst = rm.max_media_per_datagram + kDataHeaderSize +
                            kUdpHeaderSize + kIpv4HeaderSize;
  EXPECT_LE(worst, kDefaultMtu);
}

TEST(RmBehavior, MeanSizeLeavesRoomForSpread) {
  const RmBehavior rm;
  for (const double kbps : {22.0, 36.0, 84.0, 180.9, 284.0, 636.9}) {
    const auto mean = rm.mean_media_per_datagram(BitRate::kbps(kbps));
    EXPECT_GE(mean, rm.min_media_per_datagram);
    // Even the largest spread draw fits the cap.
    EXPECT_LE(static_cast<double>(mean) * rm.size_spread_max,
              static_cast<double>(rm.max_media_per_datagram) + 1.0)
        << kbps;
  }
}

TEST(RmBehavior, MeanSizeScalesWithRateAtLowEnd) {
  const RmBehavior rm;
  EXPECT_LT(rm.mean_media_per_datagram(BitRate::kbps(22)),
            rm.mean_media_per_datagram(BitRate::kbps(84)));
}

}  // namespace
}  // namespace streamlab
