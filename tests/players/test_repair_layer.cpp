// Loss repair layer unit tests: the FEC encoder/decoder pair (including
// interleaving and partial-row flush), the parity wire format, the NACK
// retry state machine with its PID+BLP packing, the bounded retransmission
// ring and the token-bucket pacer.
#include "players/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "players/protocol.hpp"

namespace streamlab {
namespace {

// --- FEC encoder ---

TEST(FecEncoder, ParityCarriesXorOfHeaderFields) {
  FecBlockEncoder enc(/*k=*/4, /*stride=*/1);
  std::vector<ParityOut> out;
  // Four packets, distinct offsets/lengths; the last carries a flag.
  const std::uint64_t offsets[] = {0, 500, 1000, 1500};
  const std::uint32_t lens[] = {500, 500, 480, 520};
  const std::uint8_t flags[] = {0, 0, 0, kFlagEndOfStream};
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    auto rows = enc.feed(seq, offsets[seq], lens[seq], flags[seq]);
    if (seq < 3) {
      EXPECT_TRUE(rows.empty());
    } else {
      ASSERT_EQ(rows.size(), 1u);
      out = std::move(rows);
    }
  }
  const ParityHeader& h = out[0].header;
  EXPECT_EQ(h.k, 4);
  EXPECT_EQ(h.stride, 1);
  EXPECT_EQ(h.block_base, 0u);
  EXPECT_EQ(h.xor_media_offset, 0ull ^ 500ull ^ 1000ull ^ 1500ull);
  EXPECT_EQ(h.xor_media_len, 500u ^ 500u ^ 480u ^ 520u);
  EXPECT_EQ(h.xor_flags, kFlagEndOfStream);
  // Honest bandwidth: the parity pad equals the longest covered payload.
  EXPECT_EQ(out[0].pad_len, 520u);
}

TEST(FecEncoder, FlushClosesPartialRowsWithReducedK) {
  FecBlockEncoder enc(/*k=*/4, /*stride=*/1);
  EXPECT_TRUE(enc.feed(0, 0, 500, 0).empty());
  EXPECT_TRUE(enc.feed(1, 500, 500, 0).empty());
  auto rows = enc.flush();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].header.k, 2);  // only two packets actually covered
  EXPECT_EQ(rows[0].header.block_base, 0u);
  // A second flush finds nothing left.
  EXPECT_TRUE(enc.flush().empty());
}

// --- FEC round trips ---

TEST(FecRoundTrip, RecoversSingleErasure) {
  FecBlockEncoder enc(4, 1);
  std::vector<ParityOut> parity;
  for (std::uint32_t seq = 0; seq < 4; ++seq)
    for (auto& p : enc.feed(seq, seq * 500ull, 500, 0)) parity.push_back(p);
  ASSERT_EQ(parity.size(), 1u);

  FecDecoder dec(4, 1);
  EXPECT_FALSE(dec.on_data(0, 0, 500, 0).has_value());
  // seq 1 lost.
  EXPECT_FALSE(dec.on_data(2, 1000, 500, 0).has_value());
  EXPECT_FALSE(dec.on_data(3, 1500, 500, 0).has_value());
  auto rec = dec.on_parity(parity[0].header);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->seq, 1u);
  EXPECT_EQ(rec->media_offset, 500ull);
  EXPECT_EQ(rec->media_len, 500u);
  EXPECT_EQ(rec->flags, 0);
  EXPECT_EQ(dec.pending_rows(), 0u);  // completed row state is released
}

TEST(FecRoundTrip, ParityBeforeLastDataStillRecovers) {
  FecBlockEncoder enc(3, 1);
  std::vector<ParityOut> parity;
  for (std::uint32_t seq = 0; seq < 3; ++seq)
    for (auto& p : enc.feed(seq, seq * 100ull, 100, 0)) parity.push_back(p);
  ASSERT_EQ(parity.size(), 1u);

  FecDecoder dec(3, 1);
  EXPECT_FALSE(dec.on_parity(parity[0].header).has_value());
  EXPECT_FALSE(dec.on_data(0, 0, 100, 0).has_value());
  auto rec = dec.on_data(2, 200, 100, 0);  // now only seq 1 is missing
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->seq, 1u);
  EXPECT_EQ(rec->media_offset, 100ull);
}

TEST(FecRoundTrip, InterleavingSpreadsBurstOneLossPerRow) {
  // k=3, stride=4: a matrix covers 12 consecutive sequences in 4 rows
  // {0,4,8} {1,5,9} {2,6,10} {3,7,11}. A burst of 4 consecutive losses
  // (4..7) puts exactly one hole in each row — all four recoverable.
  const int k = 3, stride = 4;
  FecBlockEncoder enc(k, stride);
  std::vector<ParityOut> parity;
  for (std::uint32_t seq = 0; seq < 12; ++seq)
    for (auto& p : enc.feed(seq, seq * 200ull, 200, 0)) parity.push_back(p);
  ASSERT_EQ(parity.size(), 4u);

  FecDecoder dec(k, stride);
  std::vector<std::uint32_t> recovered;
  for (std::uint32_t seq = 0; seq < 12; ++seq) {
    if (seq >= 4 && seq <= 7) continue;  // the burst
    if (auto rec = dec.on_data(seq, seq * 200ull, 200, 0)) recovered.push_back(rec->seq);
  }
  for (const auto& p : parity)
    if (auto rec = dec.on_parity(p.header)) recovered.push_back(rec->seq);
  std::sort(recovered.begin(), recovered.end());
  EXPECT_EQ(recovered, (std::vector<std::uint32_t>{4, 5, 6, 7}));
}

TEST(FecRoundTrip, TwoLossesInOneRowAreUnrecoverable) {
  FecBlockEncoder enc(4, 1);
  std::vector<ParityOut> parity;
  for (std::uint32_t seq = 0; seq < 4; ++seq)
    for (auto& p : enc.feed(seq, seq * 100ull, 100, 0)) parity.push_back(p);

  FecDecoder dec(4, 1);
  dec.on_data(0, 0, 100, 0);
  dec.on_data(3, 300, 100, 0);  // seqs 1 and 2 both lost
  EXPECT_FALSE(dec.on_parity(parity[0].header).has_value());
  EXPECT_EQ(dec.pending_rows(), 1u);  // row stays parked, still short two
}

TEST(FecRoundTrip, FlushedSingletonRowActsAsReplication) {
  // A k=1 tail row: the parity alone carries the whole description, so the
  // decoder reconstructs the packet with no data arrivals at all.
  FecBlockEncoder enc(4, 1);
  enc.feed(8, 4000, 512, kFlagEndOfStream);
  auto rows = enc.flush();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].header.k, 1);

  FecDecoder dec(4, 1);
  auto rec = dec.on_parity(rows[0].header);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->seq, 8u);
  EXPECT_EQ(rec->media_offset, 4000ull);
  EXPECT_EQ(rec->media_len, 512u);
  EXPECT_EQ(rec->flags, kFlagEndOfStream);
}

TEST(FecDecoder, ResetDropsRowState) {
  FecDecoder dec(4, 1);
  dec.on_data(0, 0, 100, 0);
  EXPECT_EQ(dec.pending_rows(), 1u);
  dec.reset();
  EXPECT_EQ(dec.pending_rows(), 0u);
}

// --- Parity wire format ---

TEST(ParityHeader, PacketRoundTripsAndPaysPadBandwidth) {
  ParityHeader h;
  h.k = 8;
  h.stride = 4;
  h.block_base = 96;
  h.xor_media_offset = 0x0123456789ABCDEFull;
  h.xor_media_len = 0xDEADBEEF;
  h.xor_flags = kFlagEndOfStream | kFlagBufferingPhase;
  const auto bytes = ParityHeader::make_packet(h, /*pad_len=*/700);
  EXPECT_EQ(bytes.size(), kParityHeaderSize + 700u);

  auto decoded = ParityHeader::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->k, h.k);
  EXPECT_EQ(decoded->stride, h.stride);
  EXPECT_EQ(decoded->block_base, h.block_base);
  EXPECT_EQ(decoded->xor_media_offset, h.xor_media_offset);
  EXPECT_EQ(decoded->xor_media_len, h.xor_media_len);
  EXPECT_EQ(decoded->xor_flags, h.xor_flags);
}

TEST(ParityHeader, DecodeRejectsDataAndControlPackets) {
  DataHeader data;
  data.seq = 1;
  EXPECT_FALSE(ParityHeader::decode(DataHeader::make_packet(data, 100)).has_value());
  ControlMessage msg;
  msg.clip_id = "set1/M-l";
  EXPECT_FALSE(ParityHeader::decode(msg.encode()).has_value());
  EXPECT_FALSE(ParityHeader::decode(std::vector<std::uint8_t>{0x50}).has_value());
}

TEST(ParityHeader, CoversMatchesInterleavePattern) {
  ParityHeader h;
  h.k = 3;
  h.stride = 4;
  h.block_base = 1;  // covers 1, 5, 9
  EXPECT_TRUE(h.covers(1));
  EXPECT_TRUE(h.covers(5));
  EXPECT_TRUE(h.covers(9));
  EXPECT_FALSE(h.covers(2));   // different row
  EXPECT_FALSE(h.covers(13));  // next matrix
  EXPECT_FALSE(h.covers(0));
}

// --- NACK tracker ---

RepairLayerConfig nack_config() {
  RepairLayerConfig cfg;
  cfg.nack = true;
  cfg.nack_rtt_multiplier = 1.5;
  cfg.nack_min_delay = Duration::millis(20);
  cfg.nack_max_delay = Duration::millis(500);
  cfg.nack_max_retries = 2;
  return cfg;
}

TEST(NackTracker, DelayIsRttScaledAndClamped) {
  NackTracker t(nack_config());
  t.set_rtt(Duration::millis(100));
  EXPECT_EQ(t.delay().to_millis(), 150.0);  // 1.5 x RTT
  t.set_rtt(Duration::millis(1));
  EXPECT_EQ(t.delay().to_millis(), 20.0);  // clamped to min
  t.set_rtt(Duration::seconds(2));
  EXPECT_EQ(t.delay().to_millis(), 500.0);  // clamped to max
}

TEST(NackTracker, DueBatchesAndReschedulesUntilBudgetExhausted) {
  NackTracker t(nack_config());
  t.set_rtt(Duration::millis(100));  // delay = 150 ms
  const SimTime t0 = SimTime::from_seconds(1.0);
  t.note_missing(7, t0);
  t.note_missing(5, t0);
  ASSERT_TRUE(t.next_deadline().has_value());
  EXPECT_EQ((*t.next_deadline() - t0).to_millis(), 150.0);

  // Before the deadline nothing is due.
  EXPECT_TRUE(t.due(t0 + Duration::millis(100)).empty());
  // At the deadline both fire, sorted ascending, and get rescheduled.
  const SimTime first = t0 + Duration::millis(150);
  EXPECT_EQ(t.due(first), (std::vector<std::uint32_t>{5, 7}));
  EXPECT_EQ(t.pending(), 2u);
  // Second (and last budgeted) retry.
  const SimTime second = first + Duration::millis(150);
  EXPECT_EQ(t.due(second), (std::vector<std::uint32_t>{5, 7}));
  // Budget exhausted: the third wakeup abandons both instead of returning.
  const SimTime third = second + Duration::millis(150);
  EXPECT_TRUE(t.due(third).empty());
  EXPECT_EQ(t.pending(), 0u);
  EXPECT_EQ(t.abandoned(), 2u);
  EXPECT_FALSE(t.next_deadline().has_value());
}

TEST(NackTracker, ArrivalCancelsPendingRetries) {
  NackTracker t(nack_config());
  const SimTime t0 = SimTime::from_seconds(1.0);
  t.note_missing(5, t0);
  t.note_missing(6, t0);
  t.note_arrival(5);
  EXPECT_EQ(t.pending(), 1u);
  EXPECT_EQ(t.due(t0 + Duration::seconds(1)), (std::vector<std::uint32_t>{6}));
  EXPECT_EQ(t.abandoned(), 0u);
}

// --- PID+BLP packing ---

TEST(NackMessages, PacksSixteenFollowingSeqsIntoBlp) {
  // 10 is the PID; 11 (bit 0), 14 (bit 3) and 26 (bit 15) ride the BLP.
  const auto msgs = make_nack_messages("set1/M-l", {10, 11, 14, 26});
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].type, ControlType::kNack);
  EXPECT_EQ(msgs[0].clip_id, "set1/M-l");
  EXPECT_EQ(msgs[0].offset, 10u);
  EXPECT_EQ(msgs[0].value, (1u << 0) | (1u << 3) | (1u << 15));
  EXPECT_EQ(nack_requested_seqs(msgs[0]), (std::vector<std::uint32_t>{10, 11, 14, 26}));
}

TEST(NackMessages, SplitsWhenSpanExceedsBlpWindow) {
  // 27 falls outside 10's 16-bit window, so it starts a second message.
  const auto msgs = make_nack_messages("c", {10, 27});
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].offset, 10u);
  EXPECT_EQ(msgs[0].value, 0u);
  EXPECT_EQ(msgs[1].offset, 27u);
  EXPECT_EQ(nack_requested_seqs(msgs[0]), (std::vector<std::uint32_t>{10}));
  EXPECT_EQ(nack_requested_seqs(msgs[1]), (std::vector<std::uint32_t>{27}));
}

TEST(NackMessages, ControlRoundTripPreservesPidAndBlp) {
  const auto msgs = make_nack_messages("set1/R-l", {100, 101, 116});
  ASSERT_EQ(msgs.size(), 1u);
  const auto decoded = ControlMessage::decode(msgs[0].encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, ControlType::kNack);
  EXPECT_EQ(nack_requested_seqs(*decoded),
            (std::vector<std::uint32_t>{100, 101, 116}));
}

// --- Retransmit buffer ---

TEST(RetransmitBuffer, KeepsOnlyTheRetainedWindow) {
  RetransmitBuffer buf(4);
  for (std::uint32_t seq = 0; seq < 6; ++seq) buf.store(seq, seq * 100ull, 100, 0);
  // 0 and 1 were overwritten by 4 and 5 (ring of 4 slots).
  EXPECT_FALSE(buf.lookup(0).has_value());
  EXPECT_FALSE(buf.lookup(1).has_value());
  for (std::uint32_t seq = 2; seq < 6; ++seq) {
    auto hit = buf.lookup(seq);
    ASSERT_TRUE(hit.has_value()) << "seq " << seq;
    EXPECT_EQ(hit->seq, seq);
    EXPECT_EQ(hit->media_offset, seq * 100ull);
    EXPECT_EQ(hit->media_len, 100u);
  }
  EXPECT_FALSE(buf.lookup(99).has_value());  // never stored
}

// --- Token-bucket pacer ---

TEST(TokenBucketPacer, RefillsFromSimulatedTime) {
  // 8 kbps = 1000 bytes/s, burst 1000 bytes: starts full.
  TokenBucketPacer pacer(BitRate::kbps(8), 1000);
  const SimTime t0 = SimTime::from_seconds(1.0);
  EXPECT_TRUE(pacer.try_consume(t0, 1000));
  EXPECT_FALSE(pacer.try_consume(t0, 1));  // drained, no time has passed
  // Half a second refills 500 bytes.
  EXPECT_TRUE(pacer.try_consume(t0 + Duration::millis(500), 500));
  EXPECT_FALSE(pacer.try_consume(t0 + Duration::millis(500), 1));
}

TEST(TokenBucketPacer, BurstCapBoundsIdleAccumulation) {
  TokenBucketPacer pacer(BitRate::kbps(8), 1000);
  const SimTime t0 = SimTime::from_seconds(1.0);
  EXPECT_TRUE(pacer.try_consume(t0, 1000));
  // An hour idle still caps at the burst allowance.
  const SimTime later = t0 + Duration::seconds(3600);
  EXPECT_TRUE(pacer.try_consume(later, 1000));
  EXPECT_FALSE(pacer.try_consume(later, 1));
}

}  // namespace
}  // namespace streamlab
