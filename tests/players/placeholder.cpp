#include <gtest/gtest.h>
TEST(Placeholder_players, Builds) { SUCCEED(); }
