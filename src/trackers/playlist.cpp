#include "trackers/playlist.hpp"

namespace streamlab {

Playlist Playlist::for_player(PlayerKind player) {
  Playlist list;
  for (const auto& clip : clips_for(player)) list.add(clip.id());
  return list;
}

std::optional<ClipInfo> Playlist::next() {
  while (true) {
    if (cursor_ >= clip_ids_.size()) {
      if (!repeat_ || clip_ids_.empty()) return std::nullopt;
      cursor_ = 0;
    }
    const std::string& id = clip_ids_[cursor_++];
    if (auto clip = find_clip(id)) return clip;
    // Unknown id: skip and continue.
  }
}

}  // namespace streamlab
