// PlayerTracker: the MediaTracker / RealTracker equivalent.
//
// Attaches to a streaming client and polls the engine's counters once per
// interval (the SDK-callback cadence of the real tools), accumulating a
// TrackerReport. One class serves both players; the report records which
// engine it instrumented.
#pragma once

#include "players/client.hpp"
#include "trackers/report.hpp"

namespace streamlab {

class PlayerTracker {
 public:
  explicit PlayerTracker(StreamClient& client,
                         Duration poll_interval = Duration::seconds(1));

  /// Begins polling; keeps polling until the client reports playback
  /// finished (or `max_duration` elapses, as a safety stop).
  void start(Duration max_duration = Duration::seconds(3600));

  /// Builds the final report; call after the event loop has drained.
  TrackerReport report() const;

  const std::vector<TrackerSample>& samples() const { return samples_; }

 private:
  void poll();

  StreamClient& client_;
  Duration interval_;
  SimTime started_at_;
  SimTime deadline_;
  std::vector<TrackerSample> samples_;
  std::uint32_t last_frames_rendered_ = 0;
  std::uint64_t last_wire_bytes_ = 0;
};

}  // namespace streamlab
