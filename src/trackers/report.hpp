// Tracker data model: the application-layer statistics MediaTracker and
// RealTracker record while a clip plays (Section 2.B of the paper).
#pragma once

#include <string>
#include <vector>

#include "media/clip.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace streamlab {

/// One polling-interval sample of the player engine's statistics.
struct TrackerSample {
  SimTime time;
  double frame_rate_fps = 0.0;       ///< frames rendered over the last interval
  BitRate playback_bandwidth;        ///< bits received over the last interval
  std::uint64_t packets_received = 0;   ///< cumulative
  std::uint64_t packets_lost = 0;       ///< cumulative
  std::uint64_t packets_recovered = 0;  ///< cumulative (error repair, §2.B)
  bool buffering = false;               ///< playout has not begun yet
};

/// A full tracker session for one clip.
struct TrackerReport {
  std::string clip_id;
  PlayerKind player = PlayerKind::kMediaPlayer;
  std::string transport = "UDP";     ///< the study forces UDP
  BitRate encoded_rate;              ///< as reported by the player engine
  Duration clip_length;
  std::vector<TrackerSample> samples;

  // Session summary, valid after the clip finishes.
  BitRate average_playback_bandwidth;  ///< over the whole reception
  double average_frame_rate = 0.0;     ///< over the playing phase
  std::uint64_t total_packets = 0;
  std::uint64_t total_lost = 0;
  std::uint64_t total_recovered = 0;  ///< packets the repair layer delivered
  std::uint32_t frames_rendered = 0;
  std::uint32_t frames_dropped = 0;
  Duration startup_delay;              ///< PLAY to first rendered frame
  Duration streaming_duration;         ///< first to last data packet

  /// Reception quality as the products reported it: percentage of frames
  /// delivered on time. The counts are summed in 64-bit integer space first
  /// (not via double conversion of each operand) so the all-dropped and
  /// zero-frame boundary cases divide exactly.
  double reception_quality() const {
    const std::uint64_t total =
        static_cast<std::uint64_t>(frames_rendered) + static_cast<std::uint64_t>(frames_dropped);
    if (total == 0) return 0.0;
    return 100.0 * static_cast<double>(frames_rendered) / static_cast<double>(total);
  }

  /// Serializes samples as CSV (one row per poll), with a header line.
  std::string to_csv() const;
};

}  // namespace streamlab
