#include "trackers/tracker.hpp"

namespace streamlab {

PlayerTracker::PlayerTracker(StreamClient& client, Duration poll_interval)
    : client_(client), interval_(poll_interval) {}

void PlayerTracker::start(Duration max_duration) {
  started_at_ = client_.host().loop().now();
  deadline_ = started_at_ + max_duration;
  client_.host().loop().post_in(interval_, [this] { poll(); });
}

void PlayerTracker::poll() {
  EventLoop& loop = client_.host().loop();
  TrackerSample s;
  s.time = loop.now();
  const std::uint32_t rendered = client_.frames_rendered();
  s.frame_rate_fps =
      static_cast<double>(rendered - last_frames_rendered_) / interval_.to_seconds();
  last_frames_rendered_ = rendered;

  const std::uint64_t wire = client_.wire_bytes_received();
  s.playback_bandwidth = BitRate(static_cast<std::int64_t>(
      static_cast<double>(wire - last_wire_bytes_) * 8.0 / interval_.to_seconds()));
  last_wire_bytes_ = wire;

  s.packets_received = client_.packets_received();
  s.packets_lost = client_.packets_lost();
  s.packets_recovered = client_.packets_recovered();
  s.buffering = !client_.playback_started() ||
                loop.now() < client_.playout_start_time().value_or(SimTime::max());
  samples_.push_back(s);

  if (client_.playback_finished() || loop.now() >= deadline_) return;
  loop.post_in(interval_, [this] { poll(); });
}

TrackerReport PlayerTracker::report() const {
  TrackerReport r;
  const EncodedClip& clip = client_.clip();
  r.clip_id = clip.info().id();
  r.player = client_.kind();
  r.encoded_rate = clip.info().encoded_rate;
  r.clip_length = clip.info().length;
  r.samples = samples_;

  r.average_playback_bandwidth = client_.average_playback_rate();
  r.total_packets = client_.packets_received();
  r.total_lost = client_.packets_lost();
  r.total_recovered = client_.packets_recovered();
  r.frames_rendered = client_.frames_rendered();
  r.frames_dropped = client_.frames_dropped();

  // Average frame rate over the playing phase only (buffering samples have
  // no frames by construction and would bias the mean).
  double fps_sum = 0.0;
  std::size_t fps_n = 0;
  for (const auto& s : samples_) {
    if (s.buffering) continue;
    fps_sum += s.frame_rate_fps;
    ++fps_n;
  }
  r.average_frame_rate = fps_n == 0 ? 0.0 : fps_sum / static_cast<double>(fps_n);

  if (client_.playout_start_time() && client_.first_data_time())
    r.startup_delay = *client_.playout_start_time() - started_at_;
  if (client_.first_data_time() && client_.last_data_time())
    r.streaming_duration = *client_.last_data_time() - *client_.first_data_time();
  return r;
}

}  // namespace streamlab
