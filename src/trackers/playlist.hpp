// Playlists: both trackers in the paper "support a customized play list to
// automatic playback of multiple video clips". A Playlist is an ordered
// queue of clip ids with cursor and repeat semantics; the experiment
// harness advances it between runs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "media/catalog.hpp"

namespace streamlab {

class Playlist {
 public:
  Playlist() = default;
  explicit Playlist(std::vector<std::string> clip_ids, bool repeat = false)
      : clip_ids_(std::move(clip_ids)), repeat_(repeat) {}

  /// Builds a playlist of every catalog clip for one player, ordered by
  /// data set then tier (the order the study plays them).
  static Playlist for_player(PlayerKind player);

  void add(std::string clip_id) { clip_ids_.push_back(std::move(clip_id)); }

  /// Next clip id, advancing the cursor; nullopt when exhausted (and not
  /// repeating). Unknown ids are skipped.
  std::optional<ClipInfo> next();

  std::size_t size() const { return clip_ids_.size(); }
  std::size_t position() const { return cursor_; }
  bool exhausted() const { return !repeat_ && cursor_ >= clip_ids_.size(); }
  void reset() { cursor_ = 0; }

  const std::vector<std::string>& clip_ids() const { return clip_ids_; }

 private:
  std::vector<std::string> clip_ids_;
  bool repeat_ = false;
  std::size_t cursor_ = 0;
};

}  // namespace streamlab
