#include "trackers/report.hpp"

#include "util/strings.hpp"

namespace streamlab {

std::string TrackerReport::to_csv() const {
  std::string out =
      "time_s,frame_rate_fps,playback_kbps,packets_received,packets_lost,"
      "packets_recovered,buffering\n";
  for (const auto& s : samples) {
    out += fmt_double(s.time.to_seconds(), 3) + "," + fmt_double(s.frame_rate_fps, 2) +
           "," + fmt_double(s.playback_bandwidth.to_kbps(), 1) + "," +
           std::to_string(s.packets_received) + "," + std::to_string(s.packets_lost) +
           "," + std::to_string(s.packets_recovered) + "," + (s.buffering ? "1" : "0") +
           "\n";
  }
  return out;
}

}  // namespace streamlab
