// TCP-friendliness experiments — Section VI: "Studies similar to this one
// under bandwidth constrained conditions might help explore the feasibility
// of TCP-Friendliness (or, more likely the lack of TCP-Friendliness) in
// commercial media players."
//
// A UDP media stream (either player model) shares a constrained bottleneck
// with a responsive TCP bulk transfer. A TCP-friendly flow would converge
// toward the fair share (capacity / 2); an unresponsive UDP stream keeps
// sending at its encoding rate and squeezes TCP into the remainder.
#pragma once

#include "congestion/experiment.hpp"
#include "tcp/sender.hpp"

namespace streamlab {

struct FriendlinessConfig {
  BitRate bottleneck = BitRate::kbps(400);
  std::size_t queue_limit_bytes = 32 * 1024;
  int hop_count = 8;
  Duration one_way_propagation = Duration::millis(20);
  std::uint64_t seed = 1;
  WmBehavior wm;
  RmBehavior rm;
  TcpSenderConfig tcp;
};

struct FriendlinessResult {
  ClipInfo clip;
  BitRate bottleneck;

  double fair_share_kbps = 0.0;   ///< capacity / 2
  double media_share_kbps = 0.0;  ///< media wire rate over the contention window
  double tcp_share_kbps = 0.0;    ///< TCP goodput over the same window
  /// media share / fair share: > 1 means the stream took more than its
  /// fair share — the unresponsiveness the paper anticipates.
  double media_fairness_index = 0.0;
  double media_loss = 0.0;        ///< media datagram loss during contention
  std::uint64_t tcp_retransmissions = 0;
  double contention_seconds = 0.0;
};

/// Runs one media stream and one concurrent long-lived TCP transfer through
/// a shared bottleneck and reports the bandwidth split while both were
/// active.
FriendlinessResult run_friendliness_experiment(const ClipInfo& clip,
                                               const FriendlinessConfig& config);

}  // namespace streamlab
