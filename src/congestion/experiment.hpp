// Bandwidth-constrained streaming experiments — the study the paper's
// Section VI proposes as future work ("studies similar to this one under
// bandwidth constrained conditions"), built on the same pipeline.
//
// The central question comes from Section 3.C: IP fragmentation "can
// seriously degrade network goodput during congestion, since a loss of a
// single fragment results in the larger application layer frame being
// discarded" — fragmentation-based congestion collapse [FF99]. These
// experiments constrain the bottleneck below or near the encoding rate and
// measure throughput (wire bytes arriving), goodput (media bytes delivered
// in complete datagrams) and the wasted bandwidth in between, separately
// for the fragmenting MediaPlayer flows and the never-fragmenting
// RealPlayer flows.
#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace streamlab {

struct CongestionConfig {
  /// Bottleneck capacity; set at or below the encoding rate to congest.
  BitRate bottleneck = BitRate::kbps(300);
  /// Drop-tail queue at the bottleneck, bytes. Small queues drop sooner.
  std::size_t queue_limit_bytes = 16 * 1024;
  int hop_count = 10;
  Duration one_way_propagation = Duration::millis(20);
  std::uint64_t seed = 1;
  WmBehavior wm;
  RmBehavior rm;
};

struct CongestionResult {
  ClipInfo clip;
  BitRate bottleneck;

  /// Encoding rate over bottleneck capacity (> 1 means overload).
  double offered_load = 0.0;
  /// Wire packets lost end-to-end (sequence gaps + missing fragments),
  /// as a fraction of packets sent.
  double packet_loss = 0.0;
  /// Wire bytes arriving at the client NIC per second of streaming.
  double throughput_kbps = 0.0;
  /// Media bytes delivered to the application in complete datagrams, per
  /// second of streaming — the goodput [FF99] cares about.
  double goodput_kbps = 0.0;
  /// Wire bytes that arrived but belonged to datagrams never completed
  /// (orphaned fragments), per second — wasted bottleneck capacity.
  double wasted_kbps = 0.0;
  /// Frames rendered on time, percent.
  double reception_quality = 0.0;

  /// goodput / throughput: 1.0 means every delivered byte was useful.
  double goodput_efficiency() const {
    return throughput_kbps <= 0.0 ? 0.0 : goodput_kbps / throughput_kbps;
  }
};

/// Streams one clip through a constrained bottleneck and measures the
/// throughput/goodput split.
CongestionResult run_congestion_experiment(const ClipInfo& clip,
                                           const CongestionConfig& config);

/// Sweeps bottleneck capacities (Kbps) for one clip.
std::vector<CongestionResult> sweep_bottleneck(const ClipInfo& clip,
                                               const std::vector<double>& bottlenecks_kbps,
                                               CongestionConfig config = {});

}  // namespace streamlab
