#include "congestion/friendliness.hpp"

#include <algorithm>

#include "dissect/dissector.hpp"
#include "pcap/sniffer.hpp"
#include "players/server.hpp"
#include "tcp/receiver.hpp"

namespace streamlab {

FriendlinessResult run_friendliness_experiment(const ClipInfo& clip,
                                               const FriendlinessConfig& config) {
  PathConfig path;
  path.hop_count = config.hop_count;
  path.one_way_propagation = config.one_way_propagation;
  path.bottleneck_bandwidth = config.bottleneck;
  path.queue_limit_bytes = config.queue_limit_bytes;
  path.loss_probability = 0.0;
  path.seed = config.seed;

  Network net(path);
  Host& media_host = net.add_server("media-server");
  Host& tcp_host = net.add_server("tcp-server");

  // Media session.
  const EncodedClip encoded = encode_clip(clip, config.seed);
  const bool is_media = clip.player == PlayerKind::kMediaPlayer;
  const std::uint16_t media_port = is_media ? kMediaServerPort : kRealServerPort;
  std::unique_ptr<StreamServer> media_server;
  if (is_media)
    media_server =
        std::make_unique<WmServer>(media_host, encoded, config.wm, media_port);
  else
    media_server = std::make_unique<RmServer>(media_host, encoded, config.rm,
                                              media_port, config.seed ^ 0x524D);
  StreamClient::Config cc;
  cc.kind = clip.player;
  cc.wm = config.wm;
  cc.rm = config.rm;
  StreamClient media_client(net.client(), media_server->clip(),
                            Endpoint{media_host.address(), media_port}, cc);

  // TCP bulk transfer in the same downstream direction (server -> client):
  // the *sender* sits on the far host, the sink on the client.
  TcpDemux client_demux(net.client());
  TcpDemux server_demux(tcp_host);
  TcpBulkReceiver tcp_sink(client_demux, 5001);
  // Effectively long-lived: enough bytes to outlast the clip at link rate.
  const std::uint64_t tcp_bytes = static_cast<std::uint64_t>(
      config.bottleneck.bytes_in(clip.length + Duration::seconds(60)));
  TcpBulkSender tcp_sender(server_demux, 40001,
                           Endpoint{net.client().address(), 5001}, tcp_bytes,
                           config.tcp);

  // Snapshot the TCP sink's byte counter once per second so shares can be
  // evaluated over the exact media contention window afterwards.
  std::vector<std::pair<SimTime, std::uint64_t>> tcp_progress;
  std::function<void()> sample = [&] {
    tcp_progress.emplace_back(net.loop().now(), tcp_sink.bytes_received());
    net.loop().post_in(Duration::seconds(1), sample);
  };
  net.loop().post_in(Duration::seconds(1), sample);

  tcp_sender.start();
  media_client.start();
  net.loop().run_until(net.loop().now() + clip.length + Duration::seconds(60));

  FriendlinessResult result;
  result.clip = clip;
  result.bottleneck = config.bottleneck;
  result.fair_share_kbps = config.bottleneck.to_kbps() / 2.0;

  if (!media_client.first_data_time() || !media_client.last_data_time())
    return result;
  const SimTime t0 = *media_client.first_data_time();
  const SimTime t1 = *media_client.last_data_time();
  const double window = (t1 - t0).to_seconds();
  if (window <= 1.0) return result;
  result.contention_seconds = window;

  result.media_share_kbps =
      static_cast<double>(media_client.wire_bytes_received()) * 8.0 / window / 1000.0;
  result.media_fairness_index = result.media_share_kbps / result.fair_share_kbps;
  const auto sent = media_server->send_log().size();
  result.media_loss =
      sent == 0 ? 0.0
                : 1.0 - static_cast<double>(std::min<std::uint64_t>(
                            media_client.packets_received(), sent)) /
                            static_cast<double>(sent);

  // TCP bytes delivered inside [t0, t1], from the per-second snapshots.
  const auto bytes_at = [&](SimTime t) -> double {
    std::uint64_t best = 0;
    for (const auto& [when, bytes] : tcp_progress) {
      if (when <= t) best = bytes;
    }
    return static_cast<double>(best);
  };
  result.tcp_share_kbps = (bytes_at(t1) - bytes_at(t0)) * 8.0 / window / 1000.0;
  result.tcp_retransmissions = tcp_sender.stats().retransmissions;
  return result;
}

}  // namespace streamlab
