#include "congestion/experiment.hpp"

#include "pcap/sniffer.hpp"
#include "players/server.hpp"
#include "trackers/tracker.hpp"

namespace streamlab {

CongestionResult run_congestion_experiment(const ClipInfo& clip,
                                           const CongestionConfig& config) {
  PathConfig path;
  path.hop_count = config.hop_count;
  path.one_way_propagation = config.one_way_propagation;
  path.bottleneck_bandwidth = config.bottleneck;
  path.queue_limit_bytes = config.queue_limit_bytes;
  path.loss_probability = 0.0;  // all loss comes from the drop-tail queue
  path.jitter_stddev = Duration::micros(200);
  path.seed = config.seed;

  Network net(path);
  Host& server_host = net.add_server("server");
  const EncodedClip encoded = encode_clip(clip, config.seed);

  const bool is_media = clip.player == PlayerKind::kMediaPlayer;
  const std::uint16_t port = is_media ? kMediaServerPort : kRealServerPort;
  std::unique_ptr<StreamServer> server;
  if (is_media)
    server = std::make_unique<WmServer>(server_host, encoded, config.wm, port);
  else
    server = std::make_unique<RmServer>(server_host, encoded, config.rm, port,
                                        config.seed ^ 0x524D);

  StreamClient::Config cc;
  cc.kind = clip.player;
  cc.wm = config.wm;
  cc.rm = config.rm;
  StreamClient client(net.client(), server->clip(),
                      Endpoint{server_host.address(), port}, cc);
  PlayerTracker tracker(client);

  Sniffer::Options sniff_opts;
  sniff_opts.snaplen = 64;  // headers only; we need byte counts, not payloads
  sniff_opts.capture_outbound = false;
  Sniffer sniffer(net.client(), sniff_opts);

  client.start();
  tracker.start();
  // Under overload the transfer stretches: allow generous run-off.
  net.loop().run_until(net.loop().now() + clip.length * 2 + Duration::seconds(120));

  CongestionResult result;
  result.clip = clip;
  result.bottleneck = config.bottleneck;
  result.offered_load = clip.encoded_rate / config.bottleneck;

  const auto sent = server->send_log().size();
  const auto received = client.packets_received();
  // Count at the datagram level the client could observe; fragments lost
  // upstream surface as incomplete datagrams below.
  result.packet_loss =
      sent == 0 ? 0.0
                : 1.0 - static_cast<double>(std::min<std::uint64_t>(received, sent)) /
                            static_cast<double>(sent);

  // Measurement interval: the wire capture span (valid even when overload
  // is so severe that no complete datagram ever reaches the application).
  const double duration = [&] {
    const double d = sniffer.trace().duration().to_seconds();
    return d > 0.0 ? d : 1.0;
  }();

  // Throughput: every wire byte that reached the client NIC, orphaned
  // fragments included (measured by the sniffer, exactly as the study
  // would). Goodput: only media bytes the application actually received in
  // complete datagrams. The gap is header overhead plus the wasted
  // fragments Section 3.C warns about.
  result.throughput_kbps =
      static_cast<double>(sniffer.trace().total_bytes()) * 8.0 / duration / 1000.0;
  result.goodput_kbps =
      static_cast<double>(client.media_bytes_received()) * 8.0 / duration / 1000.0;
  result.wasted_kbps = std::max(0.0, result.throughput_kbps - result.goodput_kbps);

  result.reception_quality = tracker.report().reception_quality();
  return result;
}

std::vector<CongestionResult> sweep_bottleneck(const ClipInfo& clip,
                                               const std::vector<double>& bottlenecks_kbps,
                                               CongestionConfig config) {
  std::vector<CongestionResult> out;
  out.reserve(bottlenecks_kbps.size());
  for (const double kbps : bottlenecks_kbps) {
    config.bottleneck = BitRate::kbps(kbps);
    out.push_back(run_congestion_experiment(clip, config));
  }
  return out;
}

}  // namespace streamlab
