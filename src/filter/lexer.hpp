// Tokenizer for the display-filter language (an Ethereal/Wireshark-style
// expression grammar):
//
//   expr    := or
//   or      := and (("||" | "or") and)*
//   and     := not (("&&" | "and") not)*
//   not     := ("!" | "not") not | primary
//   primary := "(" expr ")" | field op value | field
//   op      := == | != | < | <= | > | >=
//   value   := number | hex number | ipv4 literal | field
//
// Examples the study uses: `ip.fragment == 1`, `udp.dstport == 5005 &&
// frame.len > 1000`, `icmp.type == 11 or icmp.type == 0`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace streamlab::filter {

enum class TokenKind {
  kIdentifier,  // field names: dotted lowercase words
  kNumber,      // decimal or 0x hex
  kIpv4,        // a.b.c.d literal
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kLParen, kRParen,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          // identifier / literal spelling
  std::int64_t number = 0;   // value for kNumber / kIpv4
  std::size_t position = 0;  // offset in the source, for error messages
};

/// Tokenizes the input; returns a descriptive error (with position) for any
/// character that cannot start a token.
Expected<std::vector<Token>> tokenize(std::string_view input);

/// Human-readable token kind (for parser error messages).
std::string to_string(TokenKind kind);

}  // namespace streamlab::filter
