#include "filter/parser.hpp"

#include <optional>

#include "filter/lexer.hpp"

namespace streamlab::filter {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<ExprPtr> run() {
    auto expr = parse_or();
    if (!expr) return expr;
    if (peek().kind != TokenKind::kEnd)
      return Unexpected("unexpected " + to_string(peek().kind) + " at offset " +
                        std::to_string(peek().position));
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token advance() { return tokens_[pos_++]; }
  bool match(TokenKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Expected<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs) return lhs;
    while (match(TokenKind::kOr)) {
      auto rhs = parse_and();
      if (!rhs) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLogic;
      node->logic = LogicOp::kOr;
      node->left = std::move(*lhs);
      node->right = std::move(*rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Expected<ExprPtr> parse_and() {
    auto lhs = parse_not();
    if (!lhs) return lhs;
    while (match(TokenKind::kAnd)) {
      auto rhs = parse_not();
      if (!rhs) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLogic;
      node->logic = LogicOp::kAnd;
      node->left = std::move(*lhs);
      node->right = std::move(*rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Expected<ExprPtr> parse_not() {
    if (match(TokenKind::kNot)) {
      auto inner = parse_not();
      if (!inner) return inner;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->left = std::move(*inner);
      return Expected<ExprPtr>(std::move(node));
    }
    return parse_primary();
  }

  static std::optional<CompareOp> as_compare(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq: return CompareOp::kEq;
      case TokenKind::kNe: return CompareOp::kNe;
      case TokenKind::kLt: return CompareOp::kLt;
      case TokenKind::kLe: return CompareOp::kLe;
      case TokenKind::kGt: return CompareOp::kGt;
      case TokenKind::kGe: return CompareOp::kGe;
      default: return std::nullopt;
    }
  }

  Expected<Operand> parse_operand() {
    const Token tok = advance();
    Operand op;
    op.spelling = tok.text;
    switch (tok.kind) {
      case TokenKind::kIdentifier:
        op.kind = Operand::Kind::kField;
        op.field = tok.text;
        return op;
      case TokenKind::kNumber:
      case TokenKind::kIpv4:
        op.kind = Operand::Kind::kLiteral;
        op.literal = tok.number;
        return op;
      default:
        return Unexpected("expected field or literal, got " + to_string(tok.kind) +
                          " at offset " + std::to_string(tok.position));
    }
  }

  Expected<ExprPtr> parse_primary() {
    if (match(TokenKind::kLParen)) {
      auto inner = parse_or();
      if (!inner) return inner;
      if (!match(TokenKind::kRParen))
        return Unexpected("expected ')' at offset " + std::to_string(peek().position));
      return inner;
    }

    if (peek().kind != TokenKind::kIdentifier && peek().kind != TokenKind::kNumber &&
        peek().kind != TokenKind::kIpv4) {
      return Unexpected("expected expression, got " + to_string(peek().kind) +
                        " at offset " + std::to_string(peek().position));
    }

    auto lhs = parse_operand();
    if (!lhs) return Unexpected(lhs.error());

    if (auto cmp = as_compare(peek().kind)) {
      advance();
      auto rhs = parse_operand();
      if (!rhs) return Unexpected(rhs.error());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kCompare;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      node->cmp = *cmp;
      return Expected<ExprPtr>(std::move(node));
    }

    if (lhs->kind != Operand::Kind::kField)
      return Unexpected("literal '" + lhs->spelling + "' cannot stand alone");
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kPresence;
    node->field = lhs->field;
    return Expected<ExprPtr>(std::move(node));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

std::string compare_to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

std::string operand_to_string(const Operand& op) {
  if (op.kind == Operand::Kind::kField) return op.field;
  return op.spelling.empty() ? std::to_string(op.literal) : op.spelling;
}

}  // namespace

Expected<ExprPtr> parse(std::string_view input) {
  auto tokens = tokenize(input);
  if (!tokens) return Unexpected(tokens.error());
  return Parser(std::move(*tokens)).run();
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kPresence:
      return field;
    case Kind::kCompare:
      return operand_to_string(lhs) + " " + compare_to_string(cmp) + " " +
             operand_to_string(rhs);
    case Kind::kLogic:
      return "(" + left->to_string() + (logic == LogicOp::kAnd ? " && " : " || ") +
             right->to_string() + ")";
    case Kind::kNot:
      return "!(" + left->to_string() + ")";
  }
  return "?";
}

}  // namespace streamlab::filter
