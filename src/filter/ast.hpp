// AST for display-filter expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace streamlab::filter {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp { kAnd, kOr };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Operand of a comparison: a field reference or a literal number/address.
struct Operand {
  enum class Kind { kField, kLiteral } kind = Kind::kLiteral;
  std::string field;         // for kField
  std::int64_t literal = 0;  // for kLiteral
  std::string spelling;      // original text, for diagnostics / printing
};

struct Expr {
  enum class Kind {
    kPresence,  // bare field/protocol name: true when present
    kCompare,   // lhs op rhs
    kLogic,     // lhs && rhs / lhs || rhs
    kNot,
  } kind = Kind::kPresence;

  // kPresence
  std::string field;
  // kCompare
  Operand lhs, rhs;
  CompareOp cmp = CompareOp::kEq;
  // kLogic / kNot
  LogicOp logic = LogicOp::kAnd;
  ExprPtr left, right;  // kNot uses left only

  /// Canonical textual rendering (stable across parse -> print -> parse).
  std::string to_string() const;
};

}  // namespace streamlab::filter
