#include "filter/evaluator.hpp"

#include "filter/parser.hpp"

namespace streamlab::filter {
namespace {

/// `udp.port` / `tcp.port` match either direction, like Wireshark.
/// Returns the list of concrete field names an abstract name expands to.
std::vector<std::string> expand_field(const std::string& name) {
  if (name == "udp.port") return {"udp.srcport", "udp.dstport"};
  if (name == "tcp.port") return {"tcp.srcport", "tcp.dstport"};
  if (name == "ip.addr") return {"ip.src", "ip.dst"};
  return {name};
}

bool apply_compare(CompareOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return a >= b;
  }
  return false;
}

/// Resolves an operand against a packet. Field operands may expand to
/// several candidate values (udp.port); missing fields yield an empty set.
std::vector<std::int64_t> resolve(const Operand& op, const DissectedPacket& pkt) {
  if (op.kind == Operand::Kind::kLiteral) return {op.literal};
  std::vector<std::int64_t> values;
  for (const auto& name : expand_field(op.field)) {
    if (auto v = pkt.field(name)) values.push_back(v->number);
  }
  return values;
}

bool eval(const Expr& e, const DissectedPacket& pkt) {
  switch (e.kind) {
    case Expr::Kind::kPresence: {
      if (pkt.has_layer(e.field)) return true;
      for (const auto& name : expand_field(e.field))
        if (pkt.field(name)) return true;
      return false;
    }
    case Expr::Kind::kCompare: {
      // Wireshark semantics: a comparison on a multi-valued field is true
      // when ANY combination satisfies it; false when a field is absent.
      const auto lhs = resolve(e.lhs, pkt);
      const auto rhs = resolve(e.rhs, pkt);
      for (const auto a : lhs)
        for (const auto b : rhs)
          if (apply_compare(e.cmp, a, b)) return true;
      return false;
    }
    case Expr::Kind::kLogic:
      if (e.logic == LogicOp::kAnd) return eval(*e.left, pkt) && eval(*e.right, pkt);
      return eval(*e.left, pkt) || eval(*e.right, pkt);
    case Expr::Kind::kNot:
      return !eval(*e.left, pkt);
  }
  return false;
}

}  // namespace

Expected<DisplayFilter> DisplayFilter::compile(std::string_view expression) {
  auto ast = parse(expression);
  if (!ast) return Unexpected(ast.error());
  return DisplayFilter(std::string(expression), std::move(*ast));
}

bool DisplayFilter::matches(const DissectedPacket& packet) const {
  return root_ && eval(*root_, packet);
}

std::vector<const DissectedPacket*> DisplayFilter::select(
    const std::vector<DissectedPacket>& packets) const {
  std::vector<const DissectedPacket*> out;
  for (const auto& p : packets)
    if (matches(p)) out.push_back(&p);
  return out;
}

}  // namespace streamlab::filter
