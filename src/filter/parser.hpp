// Recursive-descent parser producing a filter AST.
#pragma once

#include "filter/ast.hpp"
#include "util/expected.hpp"

namespace streamlab::filter {

/// Parses a display-filter expression. Errors carry the offending position.
Expected<ExprPtr> parse(std::string_view input);

}  // namespace streamlab::filter
