// Display-filter evaluation over dissected packets.
#pragma once

#include <string>
#include <vector>

#include "dissect/dissector.hpp"
#include "filter/ast.hpp"
#include "util/expected.hpp"

namespace streamlab::filter {

/// A compiled display filter. Compile once, match many packets.
class DisplayFilter {
 public:
  /// Compiles an expression; reports lexer/parser errors with positions.
  static Expected<DisplayFilter> compile(std::string_view expression);

  bool matches(const DissectedPacket& packet) const;

  /// Applies to a whole dissected trace.
  std::vector<const DissectedPacket*> select(
      const std::vector<DissectedPacket>& packets) const;

  const std::string& expression() const { return expression_; }

 private:
  DisplayFilter(std::string expression, ExprPtr root)
      : expression_(std::move(expression)), root_(std::move(root)) {}

  std::string expression_;
  // Shared so DisplayFilter stays copyable (the AST is immutable after parse).
  std::shared_ptr<const Expr> root_;
};

}  // namespace streamlab::filter
