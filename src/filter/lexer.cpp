#include "filter/lexer.hpp"

#include <cctype>
#include <charconv>

namespace streamlab::filter {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_';
}

/// Counts dots and checks all-numeric segments, to distinguish an IPv4
/// literal (10.0.0.2) from a field name (ip.src).
bool looks_like_ipv4(std::string_view word) {
  int dots = 0;
  bool digits_only = true;
  for (char c : word) {
    if (c == '.')
      ++dots;
    else if (!std::isdigit(static_cast<unsigned char>(c)))
      digits_only = false;
  }
  return digits_only && dots == 3;
}

std::int64_t parse_ipv4_value(std::string_view word) {
  std::int64_t value = 0;
  std::int64_t octet = 0;
  for (char c : word) {
    if (c == '.') {
      value = (value << 8) | octet;
      octet = 0;
    } else {
      octet = octet * 10 + (c - '0');
    }
  }
  return (value << 8) | octet;
}

}  // namespace

Expected<std::vector<Token>> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto push = [&](TokenKind kind, std::size_t pos, std::string text = {},
                        std::int64_t num = 0) {
    tokens.push_back(Token{kind, std::move(text), num, pos});
  };

  while (i < input.size()) {
    const char c = input[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    const std::size_t start = i;
    switch (c) {
      case '(': push(TokenKind::kLParen, start); ++i; continue;
      case ')': push(TokenKind::kRParen, start); ++i; continue;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kNot, start);
          ++i;
        }
        continue;
      case '=':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kEq, start);
          i += 2;
          continue;
        }
        return Unexpected("expected '==' at offset " + std::to_string(start));
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        continue;
      case '&':
        if (i + 1 < input.size() && input[i + 1] == '&') {
          push(TokenKind::kAnd, start);
          i += 2;
          continue;
        }
        return Unexpected("expected '&&' at offset " + std::to_string(start));
      case '|':
        if (i + 1 < input.size() && input[i + 1] == '|') {
          push(TokenKind::kOr, start);
          i += 2;
          continue;
        }
        return Unexpected("expected '||' at offset " + std::to_string(start));
      default:
        break;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i;
      while (end < input.size() && is_ident_char(input[end])) ++end;
      const std::string_view word = input.substr(i, end - i);
      if (looks_like_ipv4(word)) {
        push(TokenKind::kIpv4, start, std::string(word), parse_ipv4_value(word));
        i = end;
        continue;
      }
      std::int64_t value = 0;
      int base = 10;
      std::string_view digits = word;
      if (word.size() > 2 && word[0] == '0' && (word[1] == 'x' || word[1] == 'X')) {
        base = 16;
        digits = word.substr(2);
      }
      const auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), value, base);
      if (ec != std::errc{} || ptr != digits.data() + digits.size())
        return Unexpected("bad number '" + std::string(word) + "' at offset " +
                          std::to_string(start));
      push(TokenKind::kNumber, start, std::string(word), value);
      i = end;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < input.size() && is_ident_char(input[end])) ++end;
      const std::string word(input.substr(i, end - i));
      if (word == "and")
        push(TokenKind::kAnd, start);
      else if (word == "or")
        push(TokenKind::kOr, start);
      else if (word == "not")
        push(TokenKind::kNot, start);
      else if (word == "eq")
        push(TokenKind::kEq, start);
      else if (word == "ne")
        push(TokenKind::kNe, start);
      else
        push(TokenKind::kIdentifier, start, word);
      i = end;
      continue;
    }

    return Unexpected("unexpected character '" + std::string(1, c) + "' at offset " +
                      std::to_string(start));
  }
  push(TokenKind::kEnd, input.size());
  return tokens;
}

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kIpv4: return "IPv4 literal";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAnd: return "'&&'";
    case TokenKind::kOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace streamlab::filter
