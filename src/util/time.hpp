// Simulation time primitives.
//
// All of streamlab runs on a single discrete simulated clock measured in
// integer nanoseconds since the start of an experiment. Using a strong type
// (rather than a bare uint64_t) keeps timestamps, durations and rates from
// being mixed up at call sites.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace streamlab {

/// A duration on the simulated clock, in nanoseconds. May be negative when
/// expressing differences.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration nanos(std::int64_t v) { return Duration(v); }
  static constexpr Duration micros(std::int64_t v) { return Duration(v * 1'000); }
  static constexpr Duration millis(std::int64_t v) { return Duration(v * 1'000'000); }
  static constexpr Duration seconds(std::int64_t v) { return Duration(v * 1'000'000'000); }
  /// Builds a duration from a floating point number of seconds, rounding to
  /// the nearest nanosecond.
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  /// Scales by a floating factor, rounding to nearest nanosecond.
  constexpr Duration scaled(double f) const {
    return Duration::from_seconds(to_seconds() * f);
  }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulated clock (nanoseconds since experiment
/// start). Instants and durations obey the usual affine algebra: instant -
/// instant = duration, instant + duration = instant.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(Duration::from_seconds(s).ns());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.ns()); }
  constexpr Duration operator-(SimTime o) const { return Duration(ns_ - o.ns_); }
  constexpr SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }

 private:
  std::int64_t ns_ = 0;
};

/// Renders a duration as a short human-readable string ("12.5ms", "3.2s").
std::string to_string(Duration d);
/// Renders an instant as seconds with millisecond precision ("t=12.345s").
std::string to_string(SimTime t);

}  // namespace streamlab
