#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace streamlab {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa => uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do { u1 = uniform(); } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  double u = 0.0;
  do { u = uniform(); } while (u <= 1e-300);
  return -mean * std::log(u);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  // For X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // CV[X]^2 = exp(sigma^2) - 1. Invert both.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

double Rng::pareto(double alpha, double xm) {
  double u = 0.0;
  do { u = uniform(); } while (u <= 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

EmpiricalSampler::EmpiricalSampler(std::vector<double> observations)
    : sorted_(std::move(observations)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalSampler::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double EmpiricalSampler::sample(Rng& rng) const { return quantile(rng.uniform()); }

}  // namespace streamlab
