// Minimal expected<T, E> for C++20 (std::expected is C++23).
//
// streamlab reports recoverable failures (malformed headers, truncated pcap
// files, filter syntax errors) through Expected rather than exceptions, per
// the project error-handling policy: exceptions are reserved for programming
// errors and resource exhaustion.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace streamlab {

/// Tag wrapper so Expected<T, E> can be constructed unambiguously from an
/// error value even when T and E are convertible.
template <typename E>
class Unexpected {
 public:
  explicit Unexpected(E e) : error_(std::move(e)) {}
  const E& error() const& { return error_; }
  E&& error() && { return std::move(error_); }

 private:
  E error_;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

template <typename T, typename E = std::string>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u) : storage_(std::in_place_index<1>, std::move(u).error()) {}

  bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }
  const E& error() const& {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return has_value() ? value() : std::move(fallback); }

  /// Applies f to the contained value; propagates the error otherwise.
  template <typename F>
  auto map(F&& f) const -> Expected<decltype(f(std::declval<const T&>())), E> {
    if (has_value()) return f(value());
    return Unexpected<E>(error());
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace streamlab
