// Bandwidth / bit-rate strong type.
//
// The paper reports every rate in kilobits per second; internally we keep
// bits per second as a 64-bit integer which is exact for every rate that
// appears in the study.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "util/time.hpp"

namespace streamlab {

class BitRate {
 public:
  constexpr BitRate() = default;
  constexpr explicit BitRate(std::int64_t bps) : bps_(bps) {}

  static constexpr BitRate bps(std::int64_t v) { return BitRate(v); }
  static constexpr BitRate kbps(double v) {
    return BitRate(static_cast<std::int64_t>(v * 1'000 + 0.5));
  }
  static constexpr BitRate mbps(double v) {
    return BitRate(static_cast<std::int64_t>(v * 1'000'000 + 0.5));
  }
  static constexpr BitRate zero() { return BitRate(0); }

  constexpr std::int64_t bits_per_second() const { return bps_; }
  constexpr double to_kbps() const { return static_cast<double>(bps_) / 1'000.0; }
  constexpr double to_mbps() const { return static_cast<double>(bps_) / 1'000'000.0; }

  constexpr auto operator<=>(const BitRate&) const = default;

  constexpr BitRate operator+(BitRate o) const { return BitRate(bps_ + o.bps_); }
  constexpr BitRate operator-(BitRate o) const { return BitRate(bps_ - o.bps_); }
  constexpr double operator/(BitRate o) const {
    return static_cast<double>(bps_) / static_cast<double>(o.bps_);
  }
  constexpr BitRate scaled(double f) const {
    return BitRate(static_cast<std::int64_t>(static_cast<double>(bps_) * f + 0.5));
  }

  /// Time to serialize `bytes` onto a link of this rate.
  constexpr Duration transmission_time(std::size_t bytes) const {
    if (bps_ <= 0) return Duration::max();
    // bytes * 8 * 1e9 / bps, computed to avoid overflow for realistic sizes.
    const double secs =
        static_cast<double>(bytes) * 8.0 / static_cast<double>(bps_);
    return Duration::from_seconds(secs);
  }

  /// Number of whole bytes transferable in `d` at this rate.
  constexpr std::int64_t bytes_in(Duration d) const {
    const double bits = static_cast<double>(bps_) * d.to_seconds();
    return static_cast<std::int64_t>(bits / 8.0);
  }

 private:
  std::int64_t bps_ = 0;
};

/// Renders a rate as "283.0 Kbps" / "1.50 Mbps".
std::string to_string(BitRate r);

}  // namespace streamlab
