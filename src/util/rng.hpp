// Deterministic pseudo-random number generation.
//
// Every stochastic element of streamlab (link jitter, RealPlayer packet-size
// variation, encoder frame sizes, ...) draws from an explicitly seeded
// xoshiro256++ generator so experiments replay bit-for-bit. std::mt19937_64
// is avoided because its distributions are not guaranteed identical across
// standard library implementations; all distribution shaping here is our own.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace streamlab {

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm),
/// seeded through splitmix64 so that small consecutive seeds give unrelated
/// streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second draw).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (mean = 1/lambda). Requires mean > 0.
  double exponential(double mean);
  /// Lognormal parameterised by the *target* mean and coefficient of
  /// variation of the resulting distribution (not of the underlying normal).
  double lognormal_mean_cv(double mean, double cv);
  /// Pareto with shape `alpha` and scale `xm` (minimum value).
  double pareto(double alpha, double xm);
  /// True with probability p.
  bool chance(double p);

  /// Derives an unrelated child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork();

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples from an empirical distribution by linear interpolation of the
/// inverse CDF — the mechanism Section IV of the paper proposes for
/// generating simulated flows from the measured distributions.
class EmpiricalSampler {
 public:
  /// Builds from raw observations (copied and sorted internally).
  /// An empty sample set yields a sampler that always returns 0.
  explicit EmpiricalSampler(std::vector<double> observations);

  double sample(Rng& rng) const;
  /// Inverse CDF at quantile q in [0, 1].
  double quantile(double q) const;
  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace streamlab
