// Serialization helpers for network headers and pcap files.
//
// Network headers are big-endian; the pcap file format is host-endian (we
// always write little-endian and accept either on read). These two small
// cursor types centralise bounds checking so header codecs stay branch-light.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace streamlab {

/// Bounds-checked big-endian reader over a byte span. Reads past the end
/// set a sticky error flag instead of throwing; callers check ok() once at
/// the end of a header parse.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  std::uint8_t u8();
  std::uint16_t u16be();
  std::uint32_t u32be();
  std::uint16_t u16le();
  std::uint32_t u32le();
  /// Returns a view of the next n bytes and advances; empty view on underrun.
  std::span<const std::uint8_t> bytes(std::size_t n);
  void skip(std::size_t n);

 private:
  bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Append-only big/little-endian writer into a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v);
  void u16be(std::uint16_t v);
  void u32be(std::uint32_t v);
  void u16le(std::uint16_t v);
  void u32le(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);
  /// Overwrites 2 bytes at an absolute offset (used to patch checksums and
  /// length fields after the payload is known).
  void patch_u16be(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Hex dump ("de ad be ef ..."), mostly for test failure messages.
std::string hex_dump(std::span<const std::uint8_t> data, std::size_t max_bytes = 64);

}  // namespace streamlab
