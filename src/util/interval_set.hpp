// A set of disjoint half-open [start, end) integer intervals with merge on
// insert. Used by the streaming clients to track which media byte ranges
// have arrived (datagrams may be lost or reordered).
#pragma once

#include <cstdint>
#include <map>

namespace streamlab {

class IntervalSet {
 public:
  /// Inserts [start, end), merging with any overlapping/adjacent intervals.
  /// Empty or inverted ranges are ignored.
  void insert(std::uint64_t start, std::uint64_t end) {
    if (start >= end) return;
    // Find the first interval that could overlap or touch [start, end).
    auto it = intervals_.upper_bound(start);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = end > prev->second ? end : prev->second;
        it = intervals_.erase(prev);
      }
    }
    while (it != intervals_.end() && it->first <= end) {
      end = end > it->second ? end : it->second;
      it = intervals_.erase(it);
    }
    intervals_.emplace(start, end);
  }

  /// True when every byte of [start, end) is present.
  bool covers(std::uint64_t start, std::uint64_t end) const {
    if (start >= end) return true;
    auto it = intervals_.upper_bound(start);
    if (it == intervals_.begin()) return false;
    --it;
    return it->first <= start && it->second >= end;
  }

  /// Length of the contiguous run starting at 0.
  std::uint64_t contiguous_prefix() const {
    auto it = intervals_.find(0);
    // The run may start at 0 inside a merged interval keyed at 0 only;
    // since intervals are disjoint and sorted, check the first interval.
    if (it == intervals_.end()) {
      it = intervals_.begin();
      if (it == intervals_.end() || it->first != 0) return 0;
    }
    return it->second;
  }

  /// Total covered bytes.
  std::uint64_t total_covered() const {
    std::uint64_t total = 0;
    for (const auto& [s, e] : intervals_) total += e - s;
    return total;
  }

  std::size_t interval_count() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;  // start -> end
};

}  // namespace streamlab
