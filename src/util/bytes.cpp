#include "util/bytes.hpp"

#include <cstdio>

namespace streamlab {

bool ByteReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16be() {
  if (!take(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32be() {
  if (!take(4)) return 0;
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                          static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint16_t ByteReader::u16le() {
  if (!take(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32le() {
  if (!take(4)) return 0;
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (!take(n)) return {};
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void ByteReader::skip(std::size_t n) {
  if (take(n)) pos_ += n;
}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16be(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32be(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u16le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32le(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::patch_u16be(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) return;
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

std::string hex_dump(std::span<const std::uint8_t> data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  char tmp[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(tmp, sizeof tmp, "%02x", data[i]);
    if (i) out.push_back(' ');
    out += tmp;
  }
  if (n < data.size()) out += " ...";
  return out;
}

}  // namespace streamlab
