#include "util/strings.hpp"

#include <algorithm>
#include <cstdio>

#include "util/rate.hpp"
#include "util/time.hpp"

namespace streamlab {

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  std::string out(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(fraction * static_cast<double>(width) + 0.5);
  std::string out(filled, '#');
  out.resize(width, '.');
  return out;
}

std::string to_string(Duration d) {
  const double ms = d.to_millis();
  if (ms < 0.001 && ms > -0.001) return fmt_double(static_cast<double>(d.ns()), 0) + "ns";
  if (ms < 1.0 && ms > -1.0) return fmt_double(ms * 1000.0, 1) + "us";
  if (ms < 1000.0 && ms > -1000.0) return fmt_double(ms, 1) + "ms";
  return fmt_double(d.to_seconds(), 2) + "s";
}

std::string to_string(SimTime t) { return "t=" + fmt_double(t.to_seconds(), 3) + "s"; }

std::string to_string(BitRate r) {
  if (r.bits_per_second() >= 1'000'000) return fmt_double(r.to_mbps(), 2) + " Mbps";
  return fmt_double(r.to_kbps(), 1) + " Kbps";
}

}  // namespace streamlab
