// Small string/formatting helpers shared by the report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace streamlab {

/// printf-style double with fixed decimals ("12.34").
std::string fmt_double(double v, int decimals = 2);
/// Pads/truncates to a fixed width, left-aligned.
std::string pad_right(std::string_view s, std::size_t width);
/// Pads to a fixed width, right-aligned.
std::string pad_left(std::string_view s, std::size_t width);
/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);
/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);
/// Case-sensitive prefix test.
bool starts_with(std::string_view s, std::string_view prefix);
/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);
/// Renders a horizontal ASCII bar of proportional length (for bench output).
std::string ascii_bar(double fraction, std::size_t width = 40);

}  // namespace streamlab
