// RFC 1071 Internet checksum, as used by IPv4, UDP, TCP and ICMP.
#pragma once

#include <cstdint>
#include <span>

#include "net/address.hpp"

namespace streamlab {

/// Running one's-complement sum; fold() produces the final checksum value.
/// Sections may be added piecewise (header, pseudo-header, payload).
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);
  /// Final folded, complemented checksum in host order.
  std::uint16_t fold() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true when the byte stream so far has odd length
};

/// One-shot checksum of a buffer.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// UDP/TCP checksum including the IPv4 pseudo-header. `segment` is the full
/// transport header + payload with its checksum field zeroed.
std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace streamlab
