// Wire frames and IPv4 datagrams.
//
// A `Frame` is the byte-exact Ethernet frame a sniffer would capture — the
// 1514-byte frames the paper observes are Frames of a full-MTU IPv4 packet.
// An `Ipv4Datagram` is the network-layer unit before link framing; it is the
// input/output type of the fragmentation engine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.hpp"
#include "util/expected.hpp"

namespace streamlab {

/// An Ethernet frame as it appears on the wire.
class Frame {
 public:
  Frame() = default;
  explicit Frame(std::vector<std::uint8_t> data) : data_(std::move(data)) {}

  std::span<const std::uint8_t> bytes() const { return data_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  std::vector<std::uint8_t> data_;
};

/// An IPv4 packet: header plus raw payload bytes. For an unfragmented UDP
/// datagram the payload is UDP header + application data; for a trailing
/// fragment it is a slice of the original payload.
struct Ipv4Packet {
  Ipv4Header header;
  std::vector<std::uint8_t> payload;

  std::size_t total_length() const { return kIpv4HeaderSize + payload.size(); }
};

/// Fully parsed view of a frame. Transport headers are present when the IP
/// packet is the *first* fragment (offset 0); trailing fragments expose only
/// raw payload, exactly as a sniffer sees them.
struct ParsedFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpHeader> icmp;
  /// Transport payload (after UDP/TCP/ICMP header) for first fragments, or
  /// the raw IP payload for trailing fragments.
  std::vector<std::uint8_t> payload;
};

/// Builds a UDP/IPv4 datagram (not yet fragmented or framed).
Ipv4Packet make_udp_packet(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload,
                           std::uint16_t ip_id, std::uint8_t ttl = 64);

/// Builds a TCP/IPv4 packet with the given segment fields.
Ipv4Packet make_tcp_packet(Endpoint src, Endpoint dst, const TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                           std::uint8_t ttl = 64);

/// Builds an ICMP/IPv4 packet (echo request/reply, time exceeded, ...).
Ipv4Packet make_icmp_packet(Ipv4Address src, Ipv4Address dst, const IcmpHeader& icmp,
                            std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                            std::uint8_t ttl = 64);

/// Wraps an IPv4 packet in an Ethernet frame.
Frame frame_ipv4(MacAddress src_mac, MacAddress dst_mac, const Ipv4Packet& packet);

/// Parses a captured frame back into headers + payload.
Expected<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame);

}  // namespace streamlab
