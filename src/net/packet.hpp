// Wire frames and IPv4 datagrams.
//
// A `Frame` is the byte-exact Ethernet frame a sniffer would capture — the
// 1514-byte frames the paper observes are Frames of a full-MTU IPv4 packet.
// An `Ipv4Datagram` is the network-layer unit before link framing; it is the
// input/output type of the fragmentation engine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/buffer.hpp"
#include "net/headers.hpp"
#include "util/expected.hpp"

namespace streamlab {

/// An Ethernet frame as it appears on the wire. The bytes live in a
/// refcounted Buffer so parsed views can share them without copying.
class Frame {
 public:
  Frame() = default;
  explicit Frame(Buffer data) : data_(std::move(data)) {}
  explicit Frame(const std::vector<std::uint8_t>& data)
      : data_(Buffer::copy_of(data)) {}

  const Buffer& buffer() const { return data_; }
  std::span<const std::uint8_t> bytes() const { return data_.bytes(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  Buffer data_;
};

/// An IPv4 packet: header plus raw payload bytes. For an unfragmented UDP
/// datagram the payload is UDP header + application data; for a trailing
/// fragment it is a slice (a Buffer view) of the original payload. Copying
/// an Ipv4Packet copies the 20-byte header and bumps the payload refcount —
/// payload bytes are written once at packet creation and never again.
struct Ipv4Packet {
  Ipv4Header header;
  Buffer payload;

  std::size_t total_length() const { return kIpv4HeaderSize + payload.size(); }
};

/// Fully parsed view of a frame. Transport headers are present when the IP
/// packet is the *first* fragment (offset 0); trailing fragments expose only
/// raw payload, exactly as a sniffer sees them.
struct ParsedFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpHeader> icmp;
  /// Transport payload (after UDP/TCP/ICMP header) for first fragments, or
  /// the raw IP payload for trailing fragments. When parsing a Frame this is
  /// a view into the frame's own buffer; when parsing a raw span it owns a
  /// copy.
  Buffer payload;
};

/// Builds a UDP/IPv4 datagram (not yet fragmented or framed).
Ipv4Packet make_udp_packet(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload,
                           std::uint16_t ip_id, std::uint8_t ttl = 64);

/// Builds a TCP/IPv4 packet with the given segment fields.
Ipv4Packet make_tcp_packet(Endpoint src, Endpoint dst, const TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                           std::uint8_t ttl = 64);

/// Builds an ICMP/IPv4 packet (echo request/reply, time exceeded, ...).
Ipv4Packet make_icmp_packet(Ipv4Address src, Ipv4Address dst, const IcmpHeader& icmp,
                            std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                            std::uint8_t ttl = 64);

/// Wraps an IPv4 packet in an Ethernet frame.
Frame frame_ipv4(MacAddress src_mac, MacAddress dst_mac, const Ipv4Packet& packet);

/// Parses a captured frame back into headers + payload (payload copied).
Expected<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame);

/// Zero-copy form: the returned payload is a view into `frame`'s buffer.
Expected<ParsedFrame> parse_frame(const Frame& frame);

}  // namespace streamlab
