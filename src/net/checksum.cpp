#include "net/checksum.hpp"

namespace streamlab {

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Previous section ended on an odd byte: the first byte here is the low
    // half of that straddling 16-bit word.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t v) {
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(v >> 8),
                                 static_cast<std::uint8_t>(v)};
  add(bytes);
}

void ChecksumAccumulator::add_u32(std::uint32_t v) {
  add_u16(static_cast<std::uint16_t>(v >> 16));
  add_u16(static_cast<std::uint16_t>(v));
}

std::uint16_t ChecksumAccumulator::fold() const {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.fold();
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(protocol);  // zero byte + protocol
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  const std::uint16_t c = acc.fold();
  // RFC 768: a computed UDP checksum of zero is transmitted as all ones.
  return c == 0 ? 0xFFFF : c;
}

}  // namespace streamlab
