#include "net/address.hpp"

#include <charconv>
#include <cstdio>

#include "util/strings.hpp"

namespace streamlab {

MacAddress MacAddress::for_nic(std::uint32_t n) {
  // Locally administered unicast prefix 02:53:4c ("SL") + NIC index.
  return MacAddress({0x02, 0x53, 0x4c, static_cast<std::uint8_t>(n >> 16),
                     static_cast<std::uint8_t>(n >> 8), static_cast<std::uint8_t>(n)});
}

Expected<MacAddress> MacAddress::parse(std::string_view text) {
  const auto parts = split(text, ':');
  if (parts.size() != 6) return Unexpected(std::string("MAC must have 6 octets"));
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    unsigned value = 0;
    const auto& p = parts[i];
    const auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), value, 16);
    if (ec != std::errc{} || ptr != p.data() + p.size() || value > 0xFF)
      return Unexpected("bad MAC octet: " + p);
    octets[i] = static_cast<std::uint8_t>(value);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

Expected<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return Unexpected(std::string("IPv4 must have 4 octets"));
  std::uint32_t addr = 0;
  for (const auto& p : parts) {
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), value, 10);
    if (ec != std::errc{} || ptr != p.data() + p.size() || value > 255 || p.empty())
      return Unexpected("bad IPv4 octet: " + p);
    addr = (addr << 8) | value;
  }
  return Ipv4Address(addr);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr_ >> 24) & 0xFF, (addr_ >> 16) & 0xFF,
                (addr_ >> 8) & 0xFF, addr_ & 0xFF);
  return buf;
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

}  // namespace streamlab
