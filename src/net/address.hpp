// Link-layer and network-layer addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "util/expected.hpp"

namespace streamlab {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Deterministic fabricated address for simulated NIC number `n`.
  static MacAddress for_nic(std::uint32_t n);
  static Expected<MacAddress> parse(std::string_view text);

  constexpr const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  constexpr auto operator<=>(const MacAddress&) const = default;

  std::string to_string() const;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address held in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  static Expected<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const { return addr_; }
  constexpr auto operator<=>(const Ipv4Address&) const = default;

  /// True when both addresses share the /24 prefix — the paper's criterion
  /// for "clips served from the same subnet".
  constexpr bool same_slash24(Ipv4Address other) const {
    return (addr_ >> 8) == (other.addr_ >> 8);
  }

  std::string to_string() const;

 private:
  std::uint32_t addr_ = 0;
};

/// UDP/TCP endpoint.
struct Endpoint {
  Ipv4Address ip;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const;
};

}  // namespace streamlab
