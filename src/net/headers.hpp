// Wire-format codecs for the protocol headers that appear in the study:
// Ethernet II, IPv4 (no options), UDP, TCP and ICMP. Encoders compute
// checksums; decoders validate lengths and report failures via Expected.
#pragma once

#include <cstdint>
#include <span>

#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace streamlab {

// Protocol numbers / ethertypes used across the library.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::size_t kEthernetHeaderSize = 14;
inline constexpr std::size_t kIpv4HeaderSize = 20;
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kTcpHeaderSize = 20;
inline constexpr std::size_t kIcmpHeaderSize = 8;

/// The Ethernet MTU of the experiment client ("1500 bytes, the Windows
/// default"), giving the 1514-byte wire frames the paper observes.
inline constexpr std::size_t kDefaultMtu = 1500;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = kEtherTypeIpv4;

  void encode(ByteWriter& w) const;
  static Expected<EthernetHeader> decode(ByteReader& r);
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  ///< header + payload, bytes
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset_units = 0;  ///< in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint16_t header_checksum = 0;  ///< filled by encode, verified by decode
  Ipv4Address src;
  Ipv4Address dst;

  /// Byte offset of this fragment's payload within the original datagram.
  std::size_t fragment_offset_bytes() const {
    return static_cast<std::size_t>(fragment_offset_units) * 8;
  }
  /// True when this packet is any fragment other than a complete datagram —
  /// the quantity Figure 5 of the paper counts. The paper counts the
  /// *trailing* fragments (offset > 0) as "IP fragments" and the first
  /// packet of a group as the UDP packet, which is the convention
  /// `is_trailing_fragment` captures.
  bool is_fragment() const { return more_fragments || fragment_offset_units != 0; }
  bool is_trailing_fragment() const { return fragment_offset_units != 0; }
  std::size_t payload_length() const {
    return total_length >= kIpv4HeaderSize ? total_length - kIpv4HeaderSize : 0;
  }

  /// Encodes with a freshly computed header checksum.
  void encode(ByteWriter& w) const;
  /// Decodes and verifies the checksum; rejects IHL != 5 (options unused in
  /// the study) and version != 4.
  static Expected<Ipv4Header> decode(ByteReader& r);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload
  std::uint16_t checksum = 0;

  /// Encodes with the checksum computed over the pseudo-header and payload.
  void encode(ByteWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
              std::span<const std::uint8_t> payload) const;
  static Expected<UdpHeader> decode(ByteReader& r);
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool flag_syn = false;
  bool flag_ack = false;
  bool flag_fin = false;
  bool flag_rst = false;
  bool flag_psh = false;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;

  void encode(ByteWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
              std::span<const std::uint8_t> payload) const;
  static Expected<TcpHeader> decode(ByteReader& r);
};

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestinationUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

struct IcmpHeader {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;  ///< echo id, or unused
  std::uint16_t sequence = 0;    ///< echo sequence, or unused

  void encode(ByteWriter& w, std::span<const std::uint8_t> payload) const;
  static Expected<IcmpHeader> decode(ByteReader& r);
};

}  // namespace streamlab
