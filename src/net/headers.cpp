#include "net/headers.hpp"

#include "net/checksum.hpp"

namespace streamlab {

void EthernetHeader::encode(ByteWriter& w) const {
  w.bytes(dst.octets());
  w.bytes(src.octets());
  w.u16be(ethertype);
}

Expected<EthernetHeader> EthernetHeader::decode(ByteReader& r) {
  EthernetHeader h;
  auto dst_bytes = r.bytes(6);
  auto src_bytes = r.bytes(6);
  h.ethertype = r.u16be();
  if (!r.ok()) return Unexpected(std::string("truncated Ethernet header"));
  std::array<std::uint8_t, 6> tmp{};
  std::copy(dst_bytes.begin(), dst_bytes.end(), tmp.begin());
  h.dst = MacAddress(tmp);
  std::copy(src_bytes.begin(), src_bytes.end(), tmp.begin());
  h.src = MacAddress(tmp);
  return h;
}

void Ipv4Header::encode(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(dscp);
  w.u16be(total_length);
  w.u16be(identification);
  std::uint16_t flags_frag = fragment_offset_units & 0x1FFF;
  if (dont_fragment) flags_frag |= 0x4000;
  if (more_fragments) flags_frag |= 0x2000;
  w.u16be(flags_frag);
  w.u8(ttl);
  w.u8(protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(src.value());
  w.u32be(dst.value());
  const auto header = w.view().subspan(start, kIpv4HeaderSize);
  w.patch_u16be(start + 10, internet_checksum(header));
}

Expected<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  const auto header_view = r.bytes(kIpv4HeaderSize);
  if (header_view.size() != kIpv4HeaderSize)
    return Unexpected(std::string("truncated IPv4 header"));
  ByteReader hr(header_view);
  Ipv4Header h;
  const std::uint8_t ver_ihl = hr.u8();
  if ((ver_ihl >> 4) != 4) return Unexpected(std::string("not IPv4"));
  if ((ver_ihl & 0x0F) != 5)
    return Unexpected(std::string("IPv4 options unsupported"));
  h.dscp = hr.u8();
  h.total_length = hr.u16be();
  h.identification = hr.u16be();
  const std::uint16_t flags_frag = hr.u16be();
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.more_fragments = (flags_frag & 0x2000) != 0;
  h.fragment_offset_units = flags_frag & 0x1FFF;
  h.ttl = hr.u8();
  h.protocol = hr.u8();
  h.header_checksum = hr.u16be();
  h.src = Ipv4Address(hr.u32be());
  h.dst = Ipv4Address(hr.u32be());
  if (internet_checksum(header_view) != 0)
    return Unexpected(std::string("bad IPv4 header checksum"));
  return h;
}

void UdpHeader::encode(ByteWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
                       std::span<const std::uint8_t> payload) const {
  // Build the segment with a zero checksum, then compute over pseudo-header.
  ByteWriter seg(kUdpHeaderSize + payload.size());
  seg.u16be(src_port);
  seg.u16be(dst_port);
  seg.u16be(length);
  seg.u16be(0);
  seg.bytes(payload);
  const std::uint16_t c = transport_checksum(src_ip, dst_ip, kIpProtoUdp, seg.view());
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(length);
  w.u16be(c);
}

Expected<UdpHeader> UdpHeader::decode(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16be();
  h.dst_port = r.u16be();
  h.length = r.u16be();
  h.checksum = r.u16be();
  if (!r.ok()) return Unexpected(std::string("truncated UDP header"));
  if (h.length < kUdpHeaderSize) return Unexpected(std::string("bad UDP length"));
  return h;
}

void TcpHeader::encode(ByteWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
                       std::span<const std::uint8_t> payload) const {
  std::uint16_t off_flags = static_cast<std::uint16_t>(5u << 12);
  if (flag_fin) off_flags |= 0x001;
  if (flag_syn) off_flags |= 0x002;
  if (flag_rst) off_flags |= 0x004;
  if (flag_psh) off_flags |= 0x008;
  if (flag_ack) off_flags |= 0x010;

  ByteWriter seg(kTcpHeaderSize + payload.size());
  seg.u16be(src_port);
  seg.u16be(dst_port);
  seg.u32be(seq);
  seg.u32be(ack);
  seg.u16be(off_flags);
  seg.u16be(window);
  seg.u16be(0);  // checksum
  seg.u16be(0);  // urgent pointer
  seg.bytes(payload);
  const std::uint16_t c = transport_checksum(src_ip, dst_ip, kIpProtoTcp, seg.view());

  w.u16be(src_port);
  w.u16be(dst_port);
  w.u32be(seq);
  w.u32be(ack);
  w.u16be(off_flags);
  w.u16be(window);
  w.u16be(c);
  w.u16be(0);
}

Expected<TcpHeader> TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16be();
  h.dst_port = r.u16be();
  h.seq = r.u32be();
  h.ack = r.u32be();
  const std::uint16_t off_flags = r.u16be();
  h.window = r.u16be();
  h.checksum = r.u16be();
  r.u16be();  // urgent pointer
  if (!r.ok()) return Unexpected(std::string("truncated TCP header"));
  const unsigned data_offset = off_flags >> 12;
  if (data_offset < 5) return Unexpected(std::string("bad TCP data offset"));
  // Skip TCP options so the reader is positioned at the payload.
  r.skip((data_offset - 5) * 4);
  if (!r.ok()) return Unexpected(std::string("truncated TCP options"));
  h.flag_fin = off_flags & 0x001;
  h.flag_syn = off_flags & 0x002;
  h.flag_rst = off_flags & 0x004;
  h.flag_psh = off_flags & 0x008;
  h.flag_ack = off_flags & 0x010;
  return h;
}

void IcmpHeader::encode(ByteWriter& w, std::span<const std::uint8_t> payload) const {
  ByteWriter msg(kIcmpHeaderSize + payload.size());
  msg.u8(static_cast<std::uint8_t>(type));
  msg.u8(code);
  msg.u16be(0);
  msg.u16be(identifier);
  msg.u16be(sequence);
  msg.bytes(payload);
  const std::uint16_t c = internet_checksum(msg.view());

  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16be(c);
  w.u16be(identifier);
  w.u16be(sequence);
}

Expected<IcmpHeader> IcmpHeader::decode(ByteReader& r) {
  IcmpHeader h;
  h.type = static_cast<IcmpType>(r.u8());
  h.code = r.u8();
  h.checksum = r.u16be();
  h.identifier = r.u16be();
  h.sequence = r.u16be();
  if (!r.ok()) return Unexpected(std::string("truncated ICMP header"));
  return h;
}

}  // namespace streamlab
