#include "net/fragmentation.hpp"

#include <algorithm>

namespace streamlab {

std::vector<Ipv4Packet> fragment_packet(const Ipv4Packet& packet, std::size_t mtu) {
  if (packet.total_length() <= mtu) return {packet};
  if (packet.header.dont_fragment) return {};

  // Largest 8-byte-aligned payload per fragment.
  const std::size_t max_payload = ((mtu - kIpv4HeaderSize) / 8) * 8;
  std::vector<Ipv4Packet> fragments;
  const Buffer& payload = packet.payload;

  std::size_t offset = 0;
  while (offset < payload.size()) {
    const std::size_t chunk = std::min(max_payload, payload.size() - offset);
    Ipv4Packet frag;
    frag.header = packet.header;
    frag.header.fragment_offset_units =
        static_cast<std::uint16_t>((packet.header.fragment_offset_bytes() + offset) / 8);
    frag.header.more_fragments =
        (offset + chunk < payload.size()) || packet.header.more_fragments;
    // A view into the original datagram's block: fragmentation moves no
    // payload bytes, only (offset, length) pairs.
    frag.payload = payload.view(offset, chunk);
    frag.header.total_length = static_cast<std::uint16_t>(frag.total_length());
    fragments.push_back(std::move(frag));
    offset += chunk;
  }
  return fragments;
}

std::optional<Ipv4Packet> Reassembler::offer(const Ipv4Packet& packet, SimTime now) {
  if (!packet.header.is_fragment()) {
    ++stats_.unfragmented_received;
    return packet;
  }
  ++stats_.fragments_received;

  const Key key{packet.header.src.value(), packet.header.dst.value(),
                packet.header.protocol, packet.header.identification};
  auto [it, inserted] = partial_.try_emplace(key);
  Partial& p = it->second;
  if (inserted) p.first_seen = now;
  ++p.fragment_count;

  const std::size_t off = packet.header.fragment_offset_bytes();
  const std::size_t end = off + packet.payload.size();
  if (end > p.bytes.size()) {
    p.bytes.resize(end);
    p.have.resize(end, false);
  }
  std::copy(packet.payload.begin(), packet.payload.end(),
            p.bytes.begin() + static_cast<std::ptrdiff_t>(off));
  std::fill(p.have.begin() + static_cast<std::ptrdiff_t>(off),
            p.have.begin() + static_cast<std::ptrdiff_t>(end), true);

  if (!packet.header.more_fragments) p.total_size = end;
  if (packet.header.fragment_offset_units == 0) {
    p.first_header = packet.header;
    p.have_first = true;
  }

  if (!p.total_size || !p.have_first || p.bytes.size() != *p.total_size ||
      !std::all_of(p.have.begin(), p.have.end(), [](bool b) { return b; })) {
    return std::nullopt;
  }

  Ipv4Packet whole;
  whole.header = p.first_header;
  whole.header.more_fragments = false;
  whole.header.fragment_offset_units = 0;
  // One copy per *reassembled* datagram (the assembly scratch vector into a
  // refcounted block); unfragmented packets above never reach this path.
  whole.payload = Buffer::copy_of(p.bytes);
  whole.header.total_length = static_cast<std::uint16_t>(whole.total_length());
  partial_.erase(it);
  ++stats_.datagrams_delivered;
  return whole;
}

void Reassembler::expire(SimTime now) {
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.first_seen > timeout_) {
      ++stats_.datagrams_expired;
      stats_.fragments_wasted += it->second.fragment_count;
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace streamlab
