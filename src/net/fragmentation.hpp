// IPv4 fragmentation and reassembly.
//
// This is the mechanism behind the paper's central MediaPlayer observation:
// WM servers hand the OS application frames larger than the 1500-byte MTU,
// the sending host's IP layer fragments them, and the sniffer sees groups of
// 1514-byte wire frames followed by one short tail fragment (Figures 4-5).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "util/time.hpp"

namespace streamlab {

/// Splits a datagram into MTU-sized fragments, RFC 791 style. Returns the
/// packet unchanged (single element) when it already fits. Fragment payload
/// sizes are the largest multiple of 8 that fits, so a 1500-byte MTU yields
/// 1480-byte fragment payloads — 1514-byte frames on the wire.
/// Returns an empty vector if the packet has DF set and does not fit.
std::vector<Ipv4Packet> fragment_packet(const Ipv4Packet& packet, std::size_t mtu);

/// Reassembles fragmented datagrams at the receiving host. Holds partial
/// datagrams keyed by (src, dst, protocol, identification) and evicts
/// partials that exceed the reassembly timeout — each eviction models the
/// "loss of a single fragment discards the whole application frame"
/// goodput hazard the paper flags (Section 3.C).
class Reassembler {
 public:
  struct Stats {
    std::uint64_t datagrams_delivered = 0;   ///< complete datagrams handed up
    std::uint64_t fragments_received = 0;    ///< fragment packets seen
    std::uint64_t unfragmented_received = 0; ///< whole datagrams passed through
    std::uint64_t datagrams_expired = 0;     ///< partials dropped on timeout
    std::uint64_t fragments_wasted = 0;      ///< fragment packets in expired partials
  };

  explicit Reassembler(Duration timeout = Duration::seconds(30)) : timeout_(timeout) {}

  /// Offers a received packet; returns the complete datagram when this
  /// packet finishes one (or immediately for unfragmented packets).
  std::optional<Ipv4Packet> offer(const Ipv4Packet& packet, SimTime now);

  /// Drops partial datagrams older than the timeout.
  void expire(SimTime now);

  const Stats& stats() const { return stats_; }
  std::size_t pending() const { return partial_.size(); }

 private:
  struct Key {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint8_t protocol;
    std::uint16_t id;
    auto operator<=>(const Key&) const = default;
  };
  struct Partial {
    std::vector<std::uint8_t> bytes;
    std::vector<bool> have;          // per-byte coverage map
    std::optional<std::size_t> total_size;
    Ipv4Header first_header;
    bool have_first = false;
    SimTime first_seen;
    std::uint64_t fragment_count = 0;
  };

  Duration timeout_;
  std::map<Key, Partial> partial_;
  Stats stats_;
};

}  // namespace streamlab
