// Refcounted immutable payload buffer — the zero-copy packet hot path.
//
// Every hop in the simulator used to copy full frame payloads: the link
// queue, the propagation lambda, router forwarding and host delivery each
// duplicated a std::vector. A Buffer instead shares one immutable byte block
// between all of them; copying a packet bumps a refcount, and a fragment is
// an (offset, length) *view* into the original datagram's block, so
// fragmentation allocates nothing for payload bytes.
//
// Ownership rules (also DESIGN.md §10):
//  - The bytes behind a Buffer are immutable for its whole lifetime. Anyone
//    needing different bytes builds a new Buffer.
//  - Refcounts are NOT atomic and the slab recycler below is per-thread:
//    a Buffer must never be shared across threads. This is the same
//    thread-confinement contract as EventCtl — everything reachable from one
//    trial's EventLoop stays on that trial's thread.
//  - Blocks are served from a per-thread slab of power-of-two size classes
//    and recycled on release, so steady-state packet traffic performs no
//    heap allocation for payload storage at all.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace streamlab::net {

class Buffer {
 public:
  Buffer() noexcept = default;
  /// Copies `bytes` into a fresh (or recycled) block. Implicit from vector
  /// so packet-building call sites and tests can assign byte vectors
  /// directly; the copy happens once, at packet *creation* — never per hop.
  Buffer(const std::vector<std::uint8_t>& bytes) : Buffer(copy_of(bytes)) {}
  static Buffer copy_of(std::span<const std::uint8_t> bytes);

  Buffer(const Buffer& other) noexcept
      : block_(other.block_), off_(other.off_), len_(other.len_) {
    retain();
  }
  Buffer(Buffer&& other) noexcept
      : block_(other.block_), off_(other.off_), len_(other.len_) {
    other.block_ = nullptr;
    other.off_ = 0;
    other.len_ = 0;
  }
  Buffer& operator=(const Buffer& other) noexcept {
    Buffer tmp(other);
    swap(tmp);
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    swap(other);
    return *this;
  }
  ~Buffer() { release(); }

  /// A sub-range sharing this buffer's block — the fragmentation primitive.
  /// Requires offset + length <= size(). A zero-length view holds no block.
  Buffer view(std::size_t offset, std::size_t length) const;

  const std::uint8_t* data() const;
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::span<const std::uint8_t> bytes() const { return {data(), len_}; }
  operator std::span<const std::uint8_t>() const { return bytes(); }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  /// Byte equality (C++20 synthesizes the reversed vector form).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }
  friend bool operator==(const Buffer& a, const std::vector<std::uint8_t>& b) {
    return a.len_ == b.size() &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }

  /// True when `other` is a view into the same block (used by tests to
  /// assert that fragmentation did not copy payload bytes).
  bool shares_block_with(const Buffer& other) const {
    return block_ != nullptr && block_ == other.block_;
  }

  /// This thread's slab ledger, for the allocation benchmarks.
  struct SlabStats {
    std::uint64_t fresh_blocks = 0;    ///< blocks served by operator new
    std::uint64_t recycled_blocks = 0; ///< blocks served from the free lists
    std::uint64_t oversize_blocks = 0; ///< above the largest size class
  };
  static SlabStats slab_stats();
  /// Frees this thread's cached blocks (tests / leak-checker hygiene; the
  /// slab also drains itself at thread exit).
  static void trim_slab();

  struct Block;  ///< opaque refcount+storage header, defined in buffer.cpp

 private:
  Buffer(Block* block, std::size_t off, std::size_t len) noexcept
      : block_(block), off_(off), len_(len) {}
  void retain() noexcept;
  void release() noexcept;
  void swap(Buffer& other) noexcept {
    std::swap(block_, other.block_);
    std::swap(off_, other.off_);
    std::swap(len_, other.len_);
  }

  Block* block_ = nullptr;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace streamlab::net

namespace streamlab {
using net::Buffer;
}  // namespace streamlab
