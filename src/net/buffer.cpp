#include "net/buffer.hpp"

#include <bit>
#include <new>

namespace streamlab::net {
namespace {

// Power-of-two size classes 64 B .. 64 KiB. A full-MTU fragment payload
// (1480 B) lands in the 2 KiB class; a reassembled multi-fragment WM frame
// in the 8-16 KiB classes. Anything larger is allocated directly and never
// recycled — such blocks are rare enough not to matter.
constexpr std::size_t kMinClassBytes = 64;
constexpr std::size_t kMaxClassBytes = 64 * 1024;
constexpr std::uint32_t kNumClasses = 11;  // 64 << 10 == 64 KiB
constexpr std::uint32_t kOversizeClass = 0xFFFFFFFFu;
// Retention bound per class, so a burst of deep queues cannot pin an
// unbounded amount of memory in the free lists.
constexpr std::size_t kMaxFreePerClass = 128;

std::uint32_t class_for(std::size_t n) {
  if (n > kMaxClassBytes) return kOversizeClass;
  const std::size_t rounded = std::bit_ceil(n < kMinClassBytes ? kMinClassBytes : n);
  return static_cast<std::uint32_t>(std::countr_zero(rounded) -
                                    std::countr_zero(kMinClassBytes));
}

std::size_t class_bytes(std::uint32_t cls) { return kMinClassBytes << cls; }

}  // namespace

/// Header preceding the payload bytes; blocks are allocated as one chunk so
/// a packet's control data and bytes share locality. `next_free` threads the
/// per-class free list while the block is parked in the slab.
struct Buffer::Block {
  std::uint32_t refs;
  std::uint32_t size_class;
  Block* next_free;

  std::uint8_t* payload() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* payload() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
};

namespace {

/// Per-thread block recycler. Thread-locality is what lets Buffer refcounts
/// stay non-atomic: every trial runs on one thread, allocates from its own
/// slab and returns blocks to it. The destructor frees the cached blocks at
/// thread exit.
struct Slab {
  Buffer::Block* free_list[kNumClasses] = {};
  std::size_t depth[kNumClasses] = {};
  Buffer::SlabStats stats;

  ~Slab() { trim(); }

  void trim() {
    for (std::uint32_t cls = 0; cls < kNumClasses; ++cls) {
      while (free_list[cls] != nullptr) {
        Buffer::Block* b = free_list[cls];
        free_list[cls] = b->next_free;
        ::operator delete(b);
      }
      depth[cls] = 0;
    }
  }

  Buffer::Block* allocate(std::size_t n) {
    const std::uint32_t cls = class_for(n);
    Buffer::Block* b;
    if (cls != kOversizeClass && free_list[cls] != nullptr) {
      b = free_list[cls];
      free_list[cls] = b->next_free;
      --depth[cls];
      ++stats.recycled_blocks;
    } else {
      const std::size_t capacity = cls == kOversizeClass ? n : class_bytes(cls);
      b = static_cast<Buffer::Block*>(
          ::operator new(sizeof(Buffer::Block) + capacity));
      cls == kOversizeClass ? ++stats.oversize_blocks : ++stats.fresh_blocks;
    }
    b->refs = 1;
    b->size_class = cls;
    b->next_free = nullptr;
    return b;
  }

  void release(Buffer::Block* b) {
    const std::uint32_t cls = b->size_class;
    if (cls == kOversizeClass || depth[cls] >= kMaxFreePerClass) {
      ::operator delete(b);
      return;
    }
    b->next_free = free_list[cls];
    free_list[cls] = b;
    ++depth[cls];
  }
};

thread_local Slab t_slab;

}  // namespace

Buffer Buffer::copy_of(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return {};
  Block* b = t_slab.allocate(bytes.size());
  std::memcpy(b->payload(), bytes.data(), bytes.size());
  return Buffer(b, 0, bytes.size());
}

Buffer Buffer::view(std::size_t offset, std::size_t length) const {
  if (length == 0 || offset + length > len_) return {};
  Buffer v(block_, off_ + offset, length);
  v.retain();
  return v;
}

const std::uint8_t* Buffer::data() const {
  return block_ == nullptr ? nullptr : block_->payload() + off_;
}

void Buffer::retain() noexcept {
  if (block_ != nullptr) ++block_->refs;
}

void Buffer::release() noexcept {
  if (block_ != nullptr && --block_->refs == 0) t_slab.release(block_);
  block_ = nullptr;
}

Buffer::SlabStats Buffer::slab_stats() { return t_slab.stats; }

void Buffer::trim_slab() { t_slab.trim(); }

}  // namespace streamlab::net
