#include "net/packet.hpp"

namespace streamlab {

Ipv4Packet make_udp_packet(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload,
                           std::uint16_t ip_id, std::uint8_t ttl) {
  Ipv4Packet pkt;
  pkt.header.protocol = kIpProtoUdp;
  pkt.header.identification = ip_id;
  pkt.header.ttl = ttl;
  pkt.header.src = src.ip;
  pkt.header.dst = dst.ip;

  UdpHeader udp;
  udp.src_port = src.port;
  udp.dst_port = dst.port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());

  ByteWriter w(kUdpHeaderSize + payload.size());
  udp.encode(w, src.ip, dst.ip, payload);
  w.bytes(payload);
  pkt.payload = w.take();
  pkt.header.total_length = static_cast<std::uint16_t>(pkt.total_length());
  return pkt;
}

Ipv4Packet make_tcp_packet(Endpoint src, Endpoint dst, const TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                           std::uint8_t ttl) {
  Ipv4Packet pkt;
  pkt.header.protocol = kIpProtoTcp;
  pkt.header.identification = ip_id;
  pkt.header.ttl = ttl;
  pkt.header.src = src.ip;
  pkt.header.dst = dst.ip;
  pkt.header.dont_fragment = true;  // TCP segments honour path MTU

  TcpHeader seg = tcp;
  seg.src_port = src.port;
  seg.dst_port = dst.port;

  ByteWriter w(kTcpHeaderSize + payload.size());
  seg.encode(w, src.ip, dst.ip, payload);
  w.bytes(payload);
  pkt.payload = w.take();
  pkt.header.total_length = static_cast<std::uint16_t>(pkt.total_length());
  return pkt;
}

Ipv4Packet make_icmp_packet(Ipv4Address src, Ipv4Address dst, const IcmpHeader& icmp,
                            std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                            std::uint8_t ttl) {
  Ipv4Packet pkt;
  pkt.header.protocol = kIpProtoIcmp;
  pkt.header.identification = ip_id;
  pkt.header.ttl = ttl;
  pkt.header.src = src;
  pkt.header.dst = dst;

  ByteWriter w(kIcmpHeaderSize + payload.size());
  icmp.encode(w, payload);
  w.bytes(payload);
  pkt.payload = w.take();
  pkt.header.total_length = static_cast<std::uint16_t>(pkt.total_length());
  return pkt;
}

Frame frame_ipv4(MacAddress src_mac, MacAddress dst_mac, const Ipv4Packet& packet) {
  ByteWriter w(kEthernetHeaderSize + packet.total_length());
  EthernetHeader eth;
  eth.src = src_mac;
  eth.dst = dst_mac;
  eth.encode(w);
  packet.header.encode(w);
  w.bytes(packet.payload);
  return Frame(w.take());
}

Expected<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  ParsedFrame out;

  auto eth = EthernetHeader::decode(r);
  if (!eth) return Unexpected(eth.error());
  out.eth = *eth;
  if (out.eth.ethertype != kEtherTypeIpv4)
    return Unexpected(std::string("not an IPv4 frame"));

  auto ip = Ipv4Header::decode(r);
  if (!ip) return Unexpected(ip.error());
  out.ip = *ip;
  if (out.ip.payload_length() > r.remaining())
    return Unexpected(std::string("IPv4 total length exceeds frame"));
  auto ip_payload = r.bytes(out.ip.payload_length());

  if (out.ip.is_trailing_fragment()) {
    // No transport header: this is a middle/last slice of a larger datagram.
    out.payload.assign(ip_payload.begin(), ip_payload.end());
    return out;
  }

  ByteReader tr(ip_payload);
  switch (out.ip.protocol) {
    case kIpProtoUdp: {
      auto udp = UdpHeader::decode(tr);
      if (!udp) return Unexpected(udp.error());
      out.udp = *udp;
      break;
    }
    case kIpProtoTcp: {
      auto tcp = TcpHeader::decode(tr);
      if (!tcp) return Unexpected(tcp.error());
      out.tcp = *tcp;
      break;
    }
    case kIpProtoIcmp: {
      auto icmp = IcmpHeader::decode(tr);
      if (!icmp) return Unexpected(icmp.error());
      out.icmp = *icmp;
      break;
    }
    default:
      break;  // unknown transport: expose raw payload
  }
  auto rest = tr.bytes(tr.remaining());
  out.payload.assign(rest.begin(), rest.end());
  return out;
}

}  // namespace streamlab
