#include "net/packet.hpp"

namespace streamlab {

Ipv4Packet make_udp_packet(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload,
                           std::uint16_t ip_id, std::uint8_t ttl) {
  Ipv4Packet pkt;
  pkt.header.protocol = kIpProtoUdp;
  pkt.header.identification = ip_id;
  pkt.header.ttl = ttl;
  pkt.header.src = src.ip;
  pkt.header.dst = dst.ip;

  UdpHeader udp;
  udp.src_port = src.port;
  udp.dst_port = dst.port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());

  ByteWriter w(kUdpHeaderSize + payload.size());
  udp.encode(w, src.ip, dst.ip, payload);
  w.bytes(payload);
  pkt.payload = Buffer::copy_of(w.view());
  pkt.header.total_length = static_cast<std::uint16_t>(pkt.total_length());
  return pkt;
}

Ipv4Packet make_tcp_packet(Endpoint src, Endpoint dst, const TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                           std::uint8_t ttl) {
  Ipv4Packet pkt;
  pkt.header.protocol = kIpProtoTcp;
  pkt.header.identification = ip_id;
  pkt.header.ttl = ttl;
  pkt.header.src = src.ip;
  pkt.header.dst = dst.ip;
  pkt.header.dont_fragment = true;  // TCP segments honour path MTU

  TcpHeader seg = tcp;
  seg.src_port = src.port;
  seg.dst_port = dst.port;

  ByteWriter w(kTcpHeaderSize + payload.size());
  seg.encode(w, src.ip, dst.ip, payload);
  w.bytes(payload);
  pkt.payload = Buffer::copy_of(w.view());
  pkt.header.total_length = static_cast<std::uint16_t>(pkt.total_length());
  return pkt;
}

Ipv4Packet make_icmp_packet(Ipv4Address src, Ipv4Address dst, const IcmpHeader& icmp,
                            std::span<const std::uint8_t> payload, std::uint16_t ip_id,
                            std::uint8_t ttl) {
  Ipv4Packet pkt;
  pkt.header.protocol = kIpProtoIcmp;
  pkt.header.identification = ip_id;
  pkt.header.ttl = ttl;
  pkt.header.src = src;
  pkt.header.dst = dst;

  ByteWriter w(kIcmpHeaderSize + payload.size());
  icmp.encode(w, payload);
  w.bytes(payload);
  pkt.payload = Buffer::copy_of(w.view());
  pkt.header.total_length = static_cast<std::uint16_t>(pkt.total_length());
  return pkt;
}

Frame frame_ipv4(MacAddress src_mac, MacAddress dst_mac, const Ipv4Packet& packet) {
  ByteWriter w(kEthernetHeaderSize + packet.total_length());
  EthernetHeader eth;
  eth.src = src_mac;
  eth.dst = dst_mac;
  eth.encode(w);
  packet.header.encode(w);
  w.bytes(packet.payload.bytes());
  return Frame(Buffer::copy_of(w.view()));
}

namespace {

/// Shared parse: fills everything but `out.payload`, reporting the payload's
/// (offset, length) within `frame` so callers can either copy the slice or
/// take a zero-copy view of an owning Buffer.
Expected<std::pair<std::size_t, std::size_t>> parse_frame_headers(
    std::span<const std::uint8_t> frame, ParsedFrame& out) {
  ByteReader r(frame);

  auto eth = EthernetHeader::decode(r);
  if (!eth) return Unexpected(eth.error());
  out.eth = *eth;
  if (out.eth.ethertype != kEtherTypeIpv4)
    return Unexpected(std::string("not an IPv4 frame"));

  auto ip = Ipv4Header::decode(r);
  if (!ip) return Unexpected(ip.error());
  out.ip = *ip;
  if (out.ip.payload_length() > r.remaining())
    return Unexpected(std::string("IPv4 total length exceeds frame"));
  const std::size_t ip_payload_offset = r.offset();
  auto ip_payload = r.bytes(out.ip.payload_length());

  if (out.ip.is_trailing_fragment()) {
    // No transport header: this is a middle/last slice of a larger datagram.
    return std::pair{ip_payload_offset, ip_payload.size()};
  }

  ByteReader tr(ip_payload);
  switch (out.ip.protocol) {
    case kIpProtoUdp: {
      auto udp = UdpHeader::decode(tr);
      if (!udp) return Unexpected(udp.error());
      out.udp = *udp;
      break;
    }
    case kIpProtoTcp: {
      auto tcp = TcpHeader::decode(tr);
      if (!tcp) return Unexpected(tcp.error());
      out.tcp = *tcp;
      break;
    }
    case kIpProtoIcmp: {
      auto icmp = IcmpHeader::decode(tr);
      if (!icmp) return Unexpected(icmp.error());
      out.icmp = *icmp;
      break;
    }
    default:
      break;  // unknown transport: expose raw payload
  }
  return std::pair{ip_payload_offset + tr.offset(), tr.remaining()};
}

}  // namespace

Expected<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame) {
  ParsedFrame out;
  auto slice = parse_frame_headers(frame, out);
  if (!slice) return Unexpected(slice.error());
  out.payload = Buffer::copy_of(frame.subspan(slice->first, slice->second));
  return out;
}

Expected<ParsedFrame> parse_frame(const Frame& frame) {
  ParsedFrame out;
  auto slice = parse_frame_headers(frame.bytes(), out);
  if (!slice) return Unexpected(slice.error());
  out.payload = frame.buffer().view(slice->first, slice->second);
  return out;
}

}  // namespace streamlab
