#include "campaign/protocol.hpp"

#include <cstring>

namespace streamlab::campaign {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kShutdown);
}

}  // namespace

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(5 + payload.size());
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

std::string encode_result(const ResultMsg& msg) {
  std::string out;
  out.reserve(16 + msg.manifest_line.size() + msg.postmortem.size());
  put_u64(out, msg.index);
  put_u32(out, static_cast<std::uint32_t>(msg.manifest_line.size()));
  out += msg.manifest_line;
  put_u32(out, static_cast<std::uint32_t>(msg.postmortem.size()));
  out += msg.postmortem;
  return out;
}

bool decode_result(const std::string& payload, ResultMsg& out) {
  if (payload.size() < 16) return false;
  const char* p = payload.data();
  const std::uint64_t index = get_u64(p);
  const std::uint32_t line_len = get_u32(p + 8);
  if (payload.size() < 16 + static_cast<std::size_t>(line_len)) return false;
  const std::uint32_t pm_len = get_u32(p + 12 + line_len);
  if (payload.size() != 16 + static_cast<std::size_t>(line_len) + pm_len) return false;
  out.index = index;
  out.manifest_line.assign(p + 12, line_len);
  out.postmortem.assign(p + 16 + line_len, pm_len);
  return true;
}

std::string encode_assign(std::uint64_t trial_index) {
  std::string out;
  put_u64(out, trial_index);
  return out;
}

bool decode_assign(const std::string& payload, std::uint64_t& trial_index) {
  if (payload.size() != 8) return false;
  trial_index = get_u64(payload.data());
  return true;
}

void FrameReader::feed(const char* data, std::size_t len) {
  if (corrupt_) return;
  buffer_.append(data, len);
}

bool FrameReader::next(Frame& out) {
  if (corrupt_) return false;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 5) return false;
  const char* p = buffer_.data() + consumed_;
  const std::uint8_t type = static_cast<std::uint8_t>(p[0]);
  const std::uint32_t len = get_u32(p + 1);
  if (!known_type(type) || len > kMaxFramePayload) {
    corrupt_ = true;
    return false;
  }
  if (avail < 5 + static_cast<std::size_t>(len)) return false;
  out.type = static_cast<FrameType>(type);
  out.payload.assign(p + 5, len);
  consumed_ += 5 + len;
  // Compact once the dead prefix dominates, so a long-lived stream doesn't
  // grow without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return true;
}

}  // namespace streamlab::campaign
