// Distributed campaign coordinator: crash-tolerant execution of a
// CampaignConfig across separate worker child processes.
//
// The coordinator owns everything order-sensitive — the resume manifest,
// the aggregate folds, the quarantine ledger — through the same ordered
// Committer the in-process pool uses, so results are byte-identical with
// the serial path at any worker count. Workers own the trials: each is a
// child process (see worker.hpp) fed assignments over the length-prefixed
// pipe protocol (protocol.hpp) and answering with its own serialized
// manifest line, which the coordinator writes verbatim.
//
// The failure plane (DESIGN.md §14):
//   detect    pipe EOF (fast death), heartbeat timeout (stuck process),
//             per-trial deadline (hung trial, heartbeats still flowing),
//             frame-stream corruption (garbage output), hello digest
//             mismatch (wrong binary/flags)
//   reassign  a failed worker's in-flight trial goes back to the pending
//             queue with capped attempts and exponential backoff
//   poison    a trial that has consumed max_trial_attempts worker
//             attempts is quarantined with worker evidence (attempts,
//             exit status, stderr tail) instead of livelocking the fleet
//   restart   dead worker slots respawn with exponential backoff up to
//             max_worker_restarts times each
//   degrade   a fully-dead fleet with restarts exhausted falls back to
//             running the remaining trials in-process — the study
//             completes, it does not abort
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace streamlab::campaign {

struct DistributedOptions {
  /// Command line exec'd for each worker; argv[0] is the binary path. The
  /// worker must call run_campaign_worker() with an identically-shaped
  /// CampaignConfig (the hello handshake verifies the config digest).
  std::vector<std::string> worker_argv;

  /// Worker process count (clamped to >= 1).
  std::size_t workers = 4;

  /// Worker attempts a trial may consume before it is quarantined poison.
  std::uint32_t max_trial_attempts = 3;

  /// Respawns allowed per worker slot after its first spawn.
  std::size_t max_worker_restarts = 2;

  /// No heartbeat (or hello) for this long marks the worker dead.
  std::chrono::milliseconds heartbeat_timeout{2000};

  /// Wall-clock ceiling for one assignment; 0 disables. Catches hung
  /// trials on workers whose heartbeats still flow.
  std::chrono::milliseconds trial_deadline{0};

  /// Base of the exponential backoff before a failed trial is reassigned
  /// (doubles per consumed attempt).
  std::chrono::milliseconds reassign_backoff{25};

  /// Base of the exponential backoff before a dead slot respawns.
  std::chrono::milliseconds restart_backoff{50};

  /// Fault injection: SIGKILL worker slot 0 after this many results have
  /// been received fleet-wide (0 = off). Drives the --kill-worker-after
  /// CLI flag and the CI reassignment-determinism smoke.
  std::size_t kill_worker_after = 0;

  /// Extra environment ("NAME=value") per worker slot, e.g. planting
  /// STREAMLAB_WORKER_FAULT on one slot. Slots beyond the vector get none.
  std::vector<std::vector<std::string>> worker_env;
};

/// Runs the campaign across worker processes. Honors config.manifest_path
/// (resume + ordered append), config.cancel, progress hooks — the full
/// run_campaign() contract — and fills the CampaignResult failure-plane
/// fields (workers_lost, worker_restarts, reassigned_trials,
/// reassignment_latency_ns, degraded_to_in_process).
CampaignResult run_distributed_campaign(const CampaignConfig& config,
                                        const DistributedOptions& options);

}  // namespace streamlab::campaign
