// POSIX child-process plumbing for distributed campaign workers.
//
// A ChildProcess owns three pipe ends after spawn(): a write fd connected
// to the child's stdin (frames in), and nonblocking read fds for the
// child's stdout (frames out) and stderr. Stderr is drained into a bounded
// tail ring so a crashed worker's last words survive into the quarantine
// record without an unbounded buffer. Reaping encodes the wait status the
// way shells do: exit code for a normal exit, 128+signal for a killed
// child — one int that fits the manifest's worker_exit_status field.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace streamlab::campaign {

/// Bytes of child stderr retained (the *tail* — older output is dropped).
inline constexpr std::size_t kStderrTailBytes = 4096;

class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();

  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;

  /// Forks and execs `argv` (argv[0] is the binary path) with `extra_env`
  /// entries ("NAME=value") appended to the inherited environment. Child
  /// stdin/stdout/stderr are piped; the parent-side stdout/stderr fds are
  /// set O_NONBLOCK. Returns false (with errno-derived detail in
  /// spawn_error()) if the pipes or fork fail; an exec failure surfaces as
  /// an immediate child exit with status 127.
  bool spawn(const std::vector<std::string>& argv,
             const std::vector<std::string>& extra_env = {});

  bool running() const { return pid_ > 0; }
  int pid() const { return pid_; }
  int stdin_fd() const { return stdin_fd_; }
  int stdout_fd() const { return stdout_fd_; }
  int stderr_fd() const { return stderr_fd_; }
  const std::string& spawn_error() const { return spawn_error_; }

  /// Writes all of `data` to the child's stdin. Returns false on any
  /// error (including EPIPE from a dead child — SIGPIPE must be ignored
  /// by the caller's process, which the coordinator arranges).
  bool write_all(const std::string& data);

  /// Drains whatever is currently readable from the child's stderr into
  /// the bounded tail. Safe to call on a closed fd (no-op).
  void drain_stderr();

  /// The retained stderr tail (at most kStderrTailBytes).
  const std::string& stderr_tail() const { return stderr_tail_; }

  /// Closes the parent's write end so the child sees EOF on stdin.
  void close_stdin();

  /// Sends `sig` to the child if it is still running.
  void kill(int sig);

  /// Nonblocking reap. Returns true once the child has been collected;
  /// exit_status() is then valid and running() turns false.
  bool try_reap();

  /// Blocking reap with SIGKILL escalation after `grace_ms`.
  void reap(int grace_ms);

  /// Shell-style wait status: exit code if exited, 128+signal if killed.
  int exit_status() const { return exit_status_; }

 private:
  void close_fds();
  void adopt(ChildProcess&& other) noexcept;

  int pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  int stderr_fd_ = -1;
  int exit_status_ = 0;
  std::string stderr_tail_;
  std::string spawn_error_;
};

}  // namespace streamlab::campaign
