// Distributed campaign worker: the child-process half of the coordinator/
// worker split. run_campaign_worker() speaks the campaign::protocol over
// stdin/stdout — hello handshake, assignment loop, heartbeats — and runs
// each assigned trial with exactly the machinery an in-process pool worker
// uses (campaign_detail::run_trial + a reusable scratch Obs), serializing
// the outcome with the same manifest codec. The coordinator writes those
// bytes verbatim, which is what keeps a distributed campaign's manifest
// byte-identical with the serial path.
//
// Deterministic fault injection (CI-testable failure plane) is driven by
// the STREAMLAB_WORKER_FAULT environment variable:
//   abort-on-trial:N    write a stderr line and _exit(42) when trial N is
//                       assigned (crash-before-result)
//   hang-on-trial:N     never finish trial N but keep heartbeating
//                       (caught by the per-trial deadline)
//   mute-on-trial:N     stop heartbeats and hang on trial N
//                       (caught by the heartbeat timeout)
//   garbage-on-trial:N  write non-protocol bytes to stdout on trial N
//                       (caught by frame-stream corruption)
//   abort-after:N       _exit(42) after sending N results
// STREAMLAB_WORKER_HEARTBEAT_MS overrides the heartbeat period (default
// 100 ms).
#pragma once

#include "core/campaign.hpp"

namespace streamlab::campaign {

/// Runs the worker protocol loop over stdin(0)/stdout(1) until shutdown or
/// EOF. `config` must be built from the same parameters as the
/// coordinator's (the hello handshake verifies the config digest).
/// Coordinator-only fields (manifest_path, progress_hook, cancel, workers)
/// are ignored. Returns the process exit code.
int run_campaign_worker(const CampaignConfig& config);

}  // namespace streamlab::campaign
