#include "campaign/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "campaign/process.hpp"
#include "campaign/protocol.hpp"
#include "core/flightrec.hpp"
#include "obs/obs.hpp"

namespace streamlab::campaign {
namespace {

using Clock = std::chrono::steady_clock;

/// The coordinator writes into pipes whose far end may be a freshly-dead
/// worker; EPIPE must come back as a write error, not a SIGPIPE kill.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_ {};
};

/// One trial's journey through the failure plane.
struct TrialWork {
  std::size_t index = 0;
  std::uint32_t attempts = 0;  ///< worker attempts consumed so far
  Clock::time_point eligible_at{};  ///< reassignment backoff gate
  /// When the last holding worker was declared dead — start of the
  /// reassignment-latency clock.
  std::optional<Clock::time_point> failed_at;
  int last_exit_status = 0;
  std::string last_stderr;
};

struct Slot {
  enum class State { kDead, kSpawning, kIdle, kBusy };
  State state = State::kDead;
  ChildProcess proc;
  FrameReader reader;
  std::optional<TrialWork> work;  ///< in-flight assignment (kBusy only)
  Clock::time_point last_heartbeat{};
  Clock::time_point trial_start{};
  bool ever_spawned = false;
  std::size_t restarts = 0;  ///< respawns consumed (first spawn is free)
  Clock::time_point respawn_at{};
  bool banned = false;  ///< digest mismatch: respawning cannot help
};

struct ReadyOutcome {
  TrialOutcome outcome;
  /// Worker-serialized manifest bytes, written verbatim. Absent for
  /// restored, coordinator-synthesized, and degraded in-process outcomes.
  std::optional<std::string> wire_line;
};

}  // namespace

CampaignResult run_distributed_campaign(const CampaignConfig& config,
                                        const DistributedOptions& options) {
  if (options.worker_argv.empty())
    throw std::runtime_error("distributed campaign: worker_argv is empty");
  const std::size_t worker_count = std::max<std::size_t>(1, options.workers);
  const std::string config_hex = campaign_detail::config_hex(config);
  const auto is_cancelled = [&config] {
    return config.cancel != nullptr && config.cancel->load(std::memory_order_relaxed);
  };

  campaign_detail::ManifestRead manifest_read;
  if (!config.manifest_path.empty())
    manifest_read = campaign_detail::read_resume_manifest(config.manifest_path,
                                                          config_hex, config.trials);

  // Everything finished but not yet committed, keyed by trial index; the
  // commit loop drains the contiguous prefix so the manifest stays ordered.
  std::map<std::size_t, ReadyOutcome> ready;
  for (auto& [index, outcome] : manifest_read.restored)
    ready.emplace(index, ReadyOutcome{std::move(outcome), std::nullopt});

  std::deque<TrialWork> pending;
  for (std::size_t i = 0; i < config.trials; ++i)
    if (!ready.contains(i)) {
      TrialWork work;
      work.index = i;
      pending.push_back(std::move(work));
    }

  campaign_detail::Committer committer(config, config_hex, worker_count);
  std::size_t next_commit = 0;

  std::size_t workers_lost = 0;
  std::size_t worker_restarts = 0;
  std::size_t reassigned_trials = 0;
  std::uint64_t reassignment_latency_ns = 0;
  bool degraded = false;
  bool interrupted = false;
  std::size_t results_received = 0;
  bool kill_fired = false;

  ScopedSigpipeIgnore sigpipe_guard;
  std::vector<Slot> slots(worker_count);

  const auto commit_contiguous = [&] {
    for (auto it = ready.find(next_commit); it != ready.end();
         it = ready.find(next_commit)) {
      ReadyOutcome r = std::move(it->second);
      ready.erase(it);
      committer.commit(std::move(r.outcome), r.wire_line ? &*r.wire_line : nullptr);
      ++next_commit;
    }
  };

  const auto synthesize_poison = [&](TrialWork& work, const std::string& cause) {
    TrialOutcome poison;
    poison.index = work.index;
    poison.seed = config.base_seed + work.index;
    poison.status = TrialStatus::kQuarantined;
    poison.reason = cause;
    poison.attempts = work.attempts;
    poison.worker_exit_status = work.last_exit_status;
    poison.stderr_tail = work.last_stderr;
    PostmortemContext context;
    context.trial_index = work.index;
    context.seed = poison.seed;
    context.reason = cause;
    context.config_hex = config_hex;
    context.attempts = work.attempts;
    context.worker_exit_status = work.last_exit_status;
    context.stderr_tail = work.last_stderr;
    audit::AuditReport no_report;
    poison.postmortem = render_postmortem(context, no_report, nullptr, nullptr, 0);
    ready.emplace(work.index, ReadyOutcome{std::move(poison), std::nullopt});
  };

  // Declare a worker dead: collect evidence, decide the in-flight trial's
  // fate (reassign with backoff, or poison once attempts are exhausted),
  // and schedule the slot's respawn backoff.
  const auto fail_worker = [&](Slot& slot, const std::string& why, bool ban = false) {
    const Clock::time_point now = Clock::now();
    slot.proc.drain_stderr();
    slot.proc.kill(SIGKILL);
    slot.proc.reap(/*grace_ms=*/200);
    // Last words written between the first drain and the kill are still
    // buffered in the pipe after the child is gone.
    slot.proc.drain_stderr();
    ++workers_lost;
    if (slot.work) {
      TrialWork work = std::move(*slot.work);
      slot.work.reset();
      ++work.attempts;
      work.last_exit_status = slot.proc.exit_status();
      work.last_stderr = slot.proc.stderr_tail();
      if (work.attempts >= options.max_trial_attempts) {
        synthesize_poison(work, "worker: " + why + " (poison after " +
                                    std::to_string(work.attempts) + " attempts)");
      } else {
        work.failed_at = now;
        work.eligible_at =
            now + options.reassign_backoff * (1u << (work.attempts - 1));
        pending.push_back(std::move(work));
        ++reassigned_trials;
      }
    }
    slot.state = Slot::State::kDead;
    if (ban) slot.banned = true;
    slot.respawn_at =
        Clock::now() + options.restart_backoff * (1u << std::min<std::size_t>(slot.restarts, 10));
  };

  const auto respawnable = [&](const Slot& slot) {
    return slot.state == Slot::State::kDead && !slot.banned &&
           (!slot.ever_spawned || slot.restarts < options.max_worker_restarts);
  };

  const auto handle_frame = [&](Slot& slot, const Frame& frame) -> bool {
    const Clock::time_point now = Clock::now();
    switch (frame.type) {
      case FrameType::kHello:
        if (frame.payload != config_hex) {
          fail_worker(slot, "config digest mismatch (worker " + frame.payload +
                                " vs coordinator " + config_hex + ")",
                      /*ban=*/true);
          return false;
        }
        if (slot.state == Slot::State::kSpawning) slot.state = Slot::State::kIdle;
        slot.last_heartbeat = now;
        return true;
      case FrameType::kHeartbeat:
        slot.last_heartbeat = now;
        return true;
      case FrameType::kResult: {
        ResultMsg msg;
        if (!decode_result(frame.payload, msg) || !slot.work ||
            msg.index != slot.work->index) {
          fail_worker(slot, "protocol violation (bad result frame)");
          return false;
        }
        TrialOutcome outcome;
        try {
          outcome = campaign_detail::parse_manifest_line(msg.manifest_line,
                                                         config_hex, 0);
        } catch (const std::exception& e) {
          fail_worker(slot, std::string("unparseable result line: ") + e.what());
          return false;
        }
        outcome.from_manifest = false;
        outcome.postmortem = std::move(msg.postmortem);
        // A reassigned trial that finally completed: its manifest bytes are
        // the worker's — identical to the serial line — so the earlier
        // failed attempts leave no trace in the completed record.
        TrialWork work = std::move(*slot.work);
        slot.work.reset();
        if (outcome.status == TrialStatus::kQuarantined) {
          // In-sim quarantine on a healthy worker keeps the worker's line
          // verbatim only when the trial never bounced off a dead worker;
          // otherwise re-serialize so the record carries the evidence.
          if (work.attempts > 0) {
            outcome.attempts = work.attempts;
            outcome.worker_exit_status = work.last_exit_status;
            outcome.stderr_tail = work.last_stderr;
            ready.emplace(work.index, ReadyOutcome{std::move(outcome), std::nullopt});
          } else {
            ready.emplace(work.index,
                          ReadyOutcome{std::move(outcome), std::move(msg.manifest_line)});
          }
        } else {
          ready.emplace(work.index,
                        ReadyOutcome{std::move(outcome), std::move(msg.manifest_line)});
        }
        slot.state = Slot::State::kIdle;
        slot.last_heartbeat = now;
        ++results_received;
        return true;
      }
      case FrameType::kAssign:
      case FrameType::kShutdown:
        fail_worker(slot, "protocol violation (coordinator-bound frame from worker)");
        return false;
    }
    return true;
  };

  // Lazily-built scratch Obs for the degraded in-process path.
  std::optional<obs::Obs> degraded_scratch;
  const bool want_scratch_obs =
      config.collect_telemetry && config.scenario.obs == nullptr;

  while (next_commit < config.trials) {
    if (is_cancelled()) {
      interrupted = true;
      break;
    }
    const Clock::time_point now = Clock::now();

    // Fault injection: one planted SIGKILL, exercised by tests and the CI
    // reassignment-determinism smoke.
    if (options.kill_worker_after > 0 && !kill_fired &&
        results_received >= options.kill_worker_after) {
      kill_fired = true;
      if (slots[0].state != Slot::State::kDead) slots[0].proc.kill(SIGKILL);
    }

    // Respawn dead slots while reassignable work exists.
    if (!pending.empty()) {
      for (std::size_t s = 0; s < slots.size(); ++s) {
        Slot& slot = slots[s];
        if (!respawnable(slot) || now < slot.respawn_at) continue;
        std::vector<std::string> env;
        if (s < options.worker_env.size()) env = options.worker_env[s];
        if (slot.ever_spawned) {
          ++slot.restarts;
          ++worker_restarts;
        }
        slot.ever_spawned = true;
        slot.reader = FrameReader{};
        slot.work.reset();
        if (!slot.proc.spawn(options.worker_argv, env)) {
          std::fprintf(stderr, "streamlab: worker %zu spawn failed: %s\n", s,
                       slot.proc.spawn_error().c_str());
          slot.respawn_at = now + options.restart_backoff *
                                      (1u << std::min<std::size_t>(slot.restarts, 10));
          continue;
        }
        slot.state = Slot::State::kSpawning;
        slot.last_heartbeat = now;
      }
    }

    // Hand eligible pending trials (lowest index first) to idle workers.
    for (Slot& slot : slots) {
      if (slot.state != Slot::State::kIdle || pending.empty()) continue;
      auto best = pending.end();
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->eligible_at > now) continue;
        if (best == pending.end() || it->index < best->index) best = it;
      }
      if (best == pending.end()) break;  // nothing eligible yet for anyone
      TrialWork work = std::move(*best);
      pending.erase(best);
      if (work.failed_at) {
        reassignment_latency_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - *work.failed_at)
                .count());
        work.failed_at.reset();
      }
      if (!slot.proc.write_all(
              encode_frame(FrameType::kAssign, encode_assign(work.index)))) {
        slot.work = std::move(work);  // fail_worker reassigns or poisons it
        fail_worker(slot, "assign write failed (worker pipe closed)");
        continue;
      }
      slot.work = std::move(work);
      slot.trial_start = now;
      slot.state = Slot::State::kBusy;
    }

    // Graceful degradation: the whole fleet is dead and no slot may
    // respawn — finish the remaining trials in-process rather than abort.
    const bool fleet_dead = std::all_of(slots.begin(), slots.end(), [&](const Slot& s) {
      return s.state == Slot::State::kDead && !respawnable(s);
    });
    if (fleet_dead && !pending.empty()) {
      degraded = true;
      std::sort(pending.begin(), pending.end(),
                [](const TrialWork& a, const TrialWork& b) { return a.index < b.index; });
      if (want_scratch_obs && !degraded_scratch)
        degraded_scratch.emplace(campaign_detail::trial_obs_config(config));
      while (!pending.empty()) {
        if (is_cancelled()) {
          interrupted = true;
          break;
        }
        TrialWork work = std::move(pending.front());
        pending.pop_front();
        TrialOutcome outcome = campaign_detail::run_trial(
            config, work.index, config_hex,
            degraded_scratch ? &*degraded_scratch : nullptr);
        if (outcome.status == TrialStatus::kQuarantined) {
          outcome.attempts = work.attempts;
          outcome.worker_exit_status = work.last_exit_status;
          outcome.stderr_tail = work.last_stderr;
        }
        ready.emplace(work.index, ReadyOutcome{std::move(outcome), std::nullopt});
      }
      commit_contiguous();
      if (interrupted) break;
      continue;
    }

    commit_contiguous();
    if (next_commit >= config.trials) break;

    // Poll deadline: the earliest of every timer the loop owes a check —
    // heartbeat expiries, trial deadlines, reassignment and respawn
    // backoffs — clamped so a missed edge costs at most 200 ms.
    Clock::time_point wake = now + std::chrono::milliseconds(200);
    const auto consider = [&wake](Clock::time_point t) {
      if (t < wake) wake = t;
    };
    for (const Slot& slot : slots) {
      if (slot.state == Slot::State::kDead) {
        if (respawnable(slot)) consider(slot.respawn_at);
        continue;
      }
      consider(slot.last_heartbeat + options.heartbeat_timeout);
      if (slot.state == Slot::State::kBusy && options.trial_deadline.count() > 0)
        consider(slot.trial_start + options.trial_deadline);
    }
    for (const TrialWork& work : pending) consider(work.eligible_at);
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(wake - now).count());
    timeout_ms = std::clamp(timeout_ms, 1, 200);

    std::vector<pollfd> fds;
    std::vector<std::pair<std::size_t, bool>> fd_owner;  // slot, is_stderr
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].state == Slot::State::kDead) continue;
      fds.push_back(pollfd{slots[s].proc.stdout_fd(), POLLIN, 0});
      fd_owner.emplace_back(s, false);
      fds.push_back(pollfd{slots[s].proc.stderr_fd(), POLLIN, 0});
      fd_owner.emplace_back(s, true);
    }
    ::poll(fds.empty() ? nullptr : fds.data(), fds.size(), timeout_ms);

    for (std::size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Slot& slot = slots[fd_owner[f].first];
      if (slot.state == Slot::State::kDead) continue;  // failed earlier this pass
      if (fd_owner[f].second) {
        slot.proc.drain_stderr();
        continue;
      }
      char buf[4096];
      bool eof = false;
      while (true) {
        const ssize_t n = ::read(slot.proc.stdout_fd(), buf, sizeof(buf));
        if (n > 0) {
          slot.reader.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n == 0) eof = true;
        break;  // EAGAIN or EOF
      }
      // Frames already buffered are processed before an EOF verdict: a
      // worker that sends its result and immediately exits loses nothing.
      Frame frame;
      while (slot.state != Slot::State::kDead && slot.reader.next(frame))
        if (!handle_frame(slot, frame)) break;
      if (slot.state == Slot::State::kDead) continue;
      if (slot.reader.corrupt()) {
        fail_worker(slot, "garbage on result stream");
        continue;
      }
      if (eof) fail_worker(slot, "worker exited");
    }

    // Liveness verdicts.
    const Clock::time_point after = Clock::now();
    for (Slot& slot : slots) {
      if (slot.state == Slot::State::kDead) continue;
      if (after - slot.last_heartbeat > options.heartbeat_timeout) {
        fail_worker(slot, "heartbeat timeout");
        continue;
      }
      if (slot.state == Slot::State::kBusy && options.trial_deadline.count() > 0 &&
          after - slot.trial_start > options.trial_deadline)
        fail_worker(slot, "trial deadline exceeded");
    }

    commit_contiguous();
  }

  // Orderly teardown: ask politely, then make sure.
  for (Slot& slot : slots) {
    if (slot.state == Slot::State::kDead) continue;
    slot.proc.write_all(encode_frame(FrameType::kShutdown, std::string()));
    slot.proc.close_stdin();
    slot.proc.reap(/*grace_ms=*/500);
  }

  CampaignResult result = committer.finish();
  result.interrupted = interrupted;
  result.manifest_torn_lines = manifest_read.torn_lines;
  result.workers_lost = workers_lost;
  result.worker_restarts = worker_restarts;
  result.reassigned_trials = reassigned_trials;
  result.reassignment_latency_ns = reassignment_latency_ns;
  result.degraded_to_in_process = degraded;
  return result;
}

}  // namespace streamlab::campaign
