#include "campaign/worker.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include "campaign/protocol.hpp"
#include "obs/obs.hpp"

namespace streamlab::campaign {
namespace {

// Stdout is shared by the heartbeat thread and the result path; every
// frame goes out under one lock as a single full write loop so frames
// never interleave.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  bool send(FrameType type, const std::string& payload) {
    const std::string frame = encode_frame(type, payload);
    std::lock_guard<std::mutex> lock(mu_);
    return write_all(frame);
  }

  /// Raw bytes outside the framing rules — the garbage fault mode.
  void send_garbage() {
    std::lock_guard<std::mutex> lock(mu_);
    write_all(std::string("\xff\xfe\xfd this is not a frame \xfc\xfb"));
  }

 private:
  bool write_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_;
  std::mutex mu_;
};

struct FaultPlan {
  enum class Kind { kNone, kAbortOnTrial, kHangOnTrial, kMuteOnTrial, kGarbageOnTrial, kAbortAfter };
  Kind kind = Kind::kNone;
  std::uint64_t n = 0;
};

FaultPlan parse_fault_env() {
  FaultPlan plan;
  const char* env = std::getenv("STREAMLAB_WORKER_FAULT");
  if (env == nullptr || *env == '\0') return plan;
  const std::string spec(env);
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return plan;
  const std::string name = spec.substr(0, colon);
  plan.n = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  if (name == "abort-on-trial") plan.kind = FaultPlan::Kind::kAbortOnTrial;
  else if (name == "hang-on-trial") plan.kind = FaultPlan::Kind::kHangOnTrial;
  else if (name == "mute-on-trial") plan.kind = FaultPlan::Kind::kMuteOnTrial;
  else if (name == "garbage-on-trial") plan.kind = FaultPlan::Kind::kGarbageOnTrial;
  else if (name == "abort-after") plan.kind = FaultPlan::Kind::kAbortAfter;
  return plan;
}

[[noreturn]] void hang_forever() {
  while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

}  // namespace

int run_campaign_worker(const CampaignConfig& config) {
  const FaultPlan fault = parse_fault_env();
  int heartbeat_ms = 100;
  if (const char* env = std::getenv("STREAMLAB_WORKER_HEARTBEAT_MS"))
    if (const int v = std::atoi(env); v > 0) heartbeat_ms = v;

  FrameWriter writer(1);
  const std::string config_hex = campaign_detail::config_hex(config);
  if (!writer.send(FrameType::kHello, config_hex)) return 3;

  // Heartbeats keep flowing while a trial computes — the coordinator
  // distinguishes "slow trial" (heartbeats fine, trial deadline decides)
  // from "stuck process" (heartbeats stop).
  std::atomic<bool> mute{false};
  std::atomic<bool> done{false};
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mu);
    while (!done.load(std::memory_order_relaxed)) {
      hb_cv.wait_for(lock, std::chrono::milliseconds(heartbeat_ms));
      if (done.load(std::memory_order_relaxed)) break;
      if (!mute.load(std::memory_order_relaxed))
        writer.send(FrameType::kHeartbeat, std::string());
    }
  });
  const auto stop_heartbeat = [&] {
    done.store(true, std::memory_order_relaxed);
    hb_cv.notify_all();
    if (heartbeat.joinable()) heartbeat.join();
  };

  // One reusable scratch Obs across assignments — identical to a pool
  // worker thread, so trial bytes match the serial path exactly.
  std::optional<obs::Obs> scratch;
  if (config.collect_telemetry && config.scenario.obs == nullptr)
    scratch.emplace(campaign_detail::trial_obs_config(config));

  FrameReader reader;
  Frame frame;
  std::uint64_t results_sent = 0;
  char buf[4096];
  int exit_code = 0;

  while (true) {
    bool got = reader.next(frame);
    if (!got) {
      if (reader.corrupt()) { exit_code = 2; break; }
      const ssize_t n = ::read(0, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // coordinator closed our stdin: we are done
      reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (frame.type == FrameType::kShutdown) break;
    if (frame.type != FrameType::kAssign) continue;

    std::uint64_t index = 0;
    if (!decode_assign(frame.payload, index)) { exit_code = 2; break; }

    switch (fault.kind) {
      case FaultPlan::Kind::kAbortOnTrial:
        if (index == fault.n) {
          std::fprintf(stderr, "streamlab-worker: injected abort on trial %llu\n",
                       static_cast<unsigned long long>(index));
          ::_exit(42);
        }
        break;
      case FaultPlan::Kind::kHangOnTrial:
        if (index == fault.n) {
          std::fprintf(stderr, "streamlab-worker: injected hang on trial %llu\n",
                       static_cast<unsigned long long>(index));
          hang_forever();
        }
        break;
      case FaultPlan::Kind::kMuteOnTrial:
        if (index == fault.n) {
          std::fprintf(stderr, "streamlab-worker: injected mute-hang on trial %llu\n",
                       static_cast<unsigned long long>(index));
          mute.store(true, std::memory_order_relaxed);
          hang_forever();
        }
        break;
      case FaultPlan::Kind::kGarbageOnTrial:
        if (index == fault.n) {
          std::fprintf(stderr, "streamlab-worker: injected garbage on trial %llu\n",
                       static_cast<unsigned long long>(index));
          writer.send_garbage();
        }
        break;
      case FaultPlan::Kind::kNone:
      case FaultPlan::Kind::kAbortAfter:
        break;
    }

    TrialOutcome outcome = campaign_detail::run_trial(
        config, static_cast<std::size_t>(index), config_hex, scratch ? &*scratch : nullptr);

    ResultMsg msg;
    msg.index = index;
    msg.manifest_line = campaign_detail::manifest_line(outcome, config_hex);
    msg.postmortem = std::move(outcome.postmortem);
    if (!writer.send(FrameType::kResult, encode_result(msg))) { exit_code = 3; break; }
    ++results_sent;

    if (fault.kind == FaultPlan::Kind::kAbortAfter && results_sent >= fault.n) {
      std::fprintf(stderr, "streamlab-worker: injected abort after %llu results\n",
                   static_cast<unsigned long long>(results_sent));
      ::_exit(42);
    }
  }

  stop_heartbeat();
  return exit_code;
}

}  // namespace streamlab::campaign
