#include "campaign/process.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace streamlab::campaign {
namespace {

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

int encode_wait_status(int wstatus) {
  if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) return 128 + WTERMSIG(wstatus);
  return 255;
}

}  // namespace

ChildProcess::~ChildProcess() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
  }
  close_fds();
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept { adopt(std::move(other)); }

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    this->~ChildProcess();
    adopt(std::move(other));
  }
  return *this;
}

void ChildProcess::adopt(ChildProcess&& other) noexcept {
  pid_ = other.pid_;
  stdin_fd_ = other.stdin_fd_;
  stdout_fd_ = other.stdout_fd_;
  stderr_fd_ = other.stderr_fd_;
  exit_status_ = other.exit_status_;
  stderr_tail_ = std::move(other.stderr_tail_);
  spawn_error_ = std::move(other.spawn_error_);
  other.pid_ = -1;
  other.stdin_fd_ = other.stdout_fd_ = other.stderr_fd_ = -1;
}

void ChildProcess::close_fds() {
  for (int* fd : {&stdin_fd_, &stdout_fd_, &stderr_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

bool ChildProcess::spawn(const std::vector<std::string>& argv,
                         const std::vector<std::string>& extra_env) {
  // Respawning reuses the ChildProcess object: drop any previous child's
  // pipe ends (the child itself was reaped by the caller).
  close_fds();
  spawn_error_.clear();
  stderr_tail_.clear();
  exit_status_ = 0;

  int in_pipe[2] = {-1, -1};   // parent writes [1] -> child stdin [0]
  int out_pipe[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  int err_pipe[2] = {-1, -1};
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) {
    spawn_error_ = std::string("pipe: ") + std::strerror(errno);
    for (int* p : {in_pipe, out_pipe, err_pipe})
      for (int i = 0; i < 2; ++i)
        if (p[i] >= 0) ::close(p[i]);
    return false;
  }

  const int pid = ::fork();
  if (pid < 0) {
    spawn_error_ = std::string("fork: ") + std::strerror(errno);
    for (int* p : {in_pipe, out_pipe, err_pipe})
      for (int i = 0; i < 2; ++i) ::close(p[i]);
    return false;
  }

  if (pid == 0) {
    // Child: wire the pipe ends onto 0/1/2 and exec. Only async-signal-safe
    // calls between fork and exec.
    ::dup2(in_pipe[0], 0);
    ::dup2(out_pipe[1], 1);
    ::dup2(err_pipe[1], 2);
    for (int* p : {in_pipe, out_pipe, err_pipe})
      for (int i = 0; i < 2; ++i) ::close(p[i]);

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    for (const std::string& e : extra_env) ::putenv(const_cast<char*>(e.c_str()));
    ::execv(cargv[0], cargv.data());
    // Exec failed; 127 is the shell convention for "command not found".
    ::_exit(127);
  }

  // Parent.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  pid_ = pid;
  stdin_fd_ = in_pipe[1];
  stdout_fd_ = out_pipe[0];
  stderr_fd_ = err_pipe[0];
  for (int fd : {stdin_fd_, stdout_fd_, stderr_fd_}) set_cloexec(fd);
  set_nonblock(stdout_fd_);
  set_nonblock(stderr_fd_);
  return true;
}

bool ChildProcess::write_all(const std::string& data) {
  if (stdin_fd_ < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(stdin_fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void ChildProcess::drain_stderr() {
  if (stderr_fd_ < 0) return;
  char buf[1024];
  while (true) {
    const ssize_t n = ::read(stderr_fd_, buf, sizeof(buf));
    if (n <= 0) break;  // EAGAIN, EOF, or error — all mean "no more now"
    stderr_tail_.append(buf, static_cast<std::size_t>(n));
    if (stderr_tail_.size() > kStderrTailBytes)
      stderr_tail_.erase(0, stderr_tail_.size() - kStderrTailBytes);
  }
}

void ChildProcess::close_stdin() {
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  stdin_fd_ = -1;
}

void ChildProcess::kill(int sig) {
  if (pid_ > 0) ::kill(pid_, sig);
}

bool ChildProcess::try_reap() {
  if (pid_ <= 0) return true;
  int wstatus = 0;
  const int r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == pid_) {
    exit_status_ = encode_wait_status(wstatus);
    pid_ = -1;
    return true;
  }
  if (r < 0 && errno != EINTR) {
    // ECHILD: someone else collected it; treat as gone.
    pid_ = -1;
    return true;
  }
  return false;
}

void ChildProcess::reap(int grace_ms) {
  if (pid_ <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  while (!try_reap()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid_, SIGKILL);
      int wstatus = 0;
      ::waitpid(pid_, &wstatus, 0);
      exit_status_ = encode_wait_status(wstatus);
      pid_ = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace streamlab::campaign
