// Coordinator <-> worker wire protocol for distributed campaigns.
//
// Workers are separate child processes fed trial assignments over their
// stdin and answering over their stdout; both directions carry the same
// length-prefixed frame format:
//
//   [ type : u8 ][ payload length : u32 little-endian ][ payload ... ]
//
// Frame types (payload shapes):
//   kHello      worker -> coordinator, once at startup. Payload is the
//               worker's 16-digit campaign config digest hex; the
//               coordinator rejects a worker whose digest differs from its
//               own (a worker built from different flags would silently
//               break byte-parity with the serial path).
//   kAssign     coordinator -> worker. Payload is the trial index (u64 LE).
//   kResult     worker -> coordinator. Payload is
//                 [ index : u64 LE ]
//                 [ line length : u32 LE ][ manifest line bytes ]
//                 [ postmortem length : u32 LE ][ postmortem bytes ]
//               The manifest line is the worker's own serialization — the
//               coordinator writes those bytes verbatim for completed
//               trials, which is what keeps the distributed manifest
//               byte-identical with the serial path.
//   kHeartbeat  worker -> coordinator, periodic liveness. Empty payload.
//   kShutdown   coordinator -> worker: finish up and exit 0. Empty payload.
//
// Anything else — unknown type, oversized length, short payload — marks
// the stream corrupt. A corrupt stream is indistinguishable from a worker
// writing garbage (a real failure mode, and an injectable one), so the
// coordinator treats it as a worker death: kill, reap, reassign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace streamlab::campaign {

enum class FrameType : std::uint8_t {
  kHello = 1,
  kAssign = 2,
  kResult = 3,
  kHeartbeat = 4,
  kShutdown = 5,
};

/// Hard ceiling on one frame's payload. A manifest line plus a bounded
/// post-mortem document is well under 1 MiB; anything claiming more is
/// garbage, not data.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Serializes one frame (header + payload) ready for write().
std::string encode_frame(FrameType type, const std::string& payload);

/// Result-frame payload codec.
struct ResultMsg {
  std::uint64_t index = 0;
  std::string manifest_line;  ///< worker-serialized, no trailing newline
  std::string postmortem;     ///< empty unless the trial quarantined
};
std::string encode_result(const ResultMsg& msg);
/// Returns false (without touching `out`) on a malformed payload.
bool decode_result(const std::string& payload, ResultMsg& out);

std::string encode_assign(std::uint64_t trial_index);
bool decode_assign(const std::string& payload, std::uint64_t& trial_index);

/// Incremental frame decoder: feed() arbitrary byte chunks, poll next().
/// Once corrupt() the reader stays corrupt and next() never yields again.
class FrameReader {
 public:
  /// Appends raw bytes from the pipe.
  void feed(const char* data, std::size_t len);

  /// Extracts the next complete frame, if one is buffered.
  bool next(Frame& out);

  /// Stream violated the framing rules (unknown type / oversized length).
  bool corrupt() const { return corrupt_; }

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace streamlab::campaign
