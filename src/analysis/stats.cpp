#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace streamlab {

SummaryStats SummaryStats::from(std::vector<double> values) {
  SummaryStats s;
  s.n = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t mid = values.size() / 2;
  s.median = values.size() % 2 == 1 ? values[mid] : (values[mid - 1] + values[mid]) / 2.0;

  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
    s.standard_error = s.stddev / std::sqrt(static_cast<double>(values.size()));
  }
  return s;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

std::vector<double> normalize_by_mean(const std::vector<double>& values) {
  if (values.empty()) return {};
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  if (mean == 0.0) return {};
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(v / mean);
  return out;
}

double ks_distance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    // Advance past ties on both sides together so equal values never
    // produce a spurious step difference.
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

}  // namespace streamlab
