// Buffering-phase detection on a bandwidth timeline.
//
// Section 3.F / Figure 11: RealPlayer opens with a sustained burst above the
// steady playout rate. The detector finds that initial high-rate phase and
// reports the buffering-rate : playout-rate ratio the paper plots.
#pragma once

#include <vector>

#include "util/time.hpp"

namespace streamlab {

struct BufferingAnalysis {
  bool has_buffering_phase = false;
  Duration buffering_duration;   ///< length of the initial burst
  double buffering_rate_kbps = 0.0;  ///< mean rate during the burst
  double steady_rate_kbps = 0.0;     ///< mean rate after the burst

  /// Buffering rate over playout rate; 1.0 when no burst was detected
  /// (MediaPlayer's profile, where buffering happens at the playout rate).
  double ratio() const {
    if (!has_buffering_phase || steady_rate_kbps <= 0.0) return 1.0;
    return buffering_rate_kbps / steady_rate_kbps;
  }
};

/// Detects the startup burst in a (window start seconds, Kbps) timeline.
///
/// Method: the steady rate is the median of the second half of the timeline
/// (clear of any startup effects); the buffering phase is the maximal
/// initial run of windows above `threshold` x steady. Runs shorter than
/// `min_windows` do not count (guards against a single noisy first window).
BufferingAnalysis analyze_buffering(const std::vector<std::pair<double, double>>& timeline,
                                    Duration window, double threshold = 1.25,
                                    int min_windows = 3);

}  // namespace streamlab
