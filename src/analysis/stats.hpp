// Summary statistics used throughout the figure builders.
#pragma once

#include <cstddef>
#include <vector>

namespace streamlab {

struct SummaryStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;       ///< sample standard deviation (n-1)
  double standard_error = 0.0;  ///< stddev / sqrt(n) — the error bars of Figs 14-15
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  static SummaryStats from(std::vector<double> values);
};

/// q-quantile (0..1) of a sample by linear interpolation; the input need not
/// be sorted.
double quantile(std::vector<double> values, double q);

/// Divides every value by the sample mean — the normalisation of Figures 7
/// and 9. Returns an empty vector when the mean is zero.
std::vector<double> normalize_by_mean(const std::vector<double>& values);

/// Two-sample Kolmogorov-Smirnov distance (sup |F1 - F2|); the tracegen
/// module uses it to validate synthetic flows against measured ones.
double ks_distance(std::vector<double> a, std::vector<double> b);

}  // namespace streamlab
