// Interarrival jitter estimation.
//
// The paper motivates its interarrival analysis with perceptual quality:
// "The difference in packet interarrival times, also known as jitter, can
// cause degradations to video perceptual quality that are as serious as
// packet loss [CT99]." This module provides the RFC 3550 (RTP) running
// jitter estimator — the standard smoothed metric streaming systems report —
// plus a simple batch variant over a flow trace.
#pragma once

#include <vector>

#include "analysis/flow.hpp"
#include "util/time.hpp"

namespace streamlab {

/// RFC 3550 §6.4.1 running estimator: J += (|D| - J) / 16, where D is the
/// difference between consecutive transit-time deltas. With a CBR sender
/// (known constant spacing) the interarrival deviation from the nominal
/// spacing is the transit-time delta.
class Rfc3550Jitter {
 public:
  /// `nominal_spacing` is the sender's packet interval; pass zero when
  /// unknown to estimate it from the running mean interarrival.
  explicit Rfc3550Jitter(Duration nominal_spacing = Duration::zero())
      : nominal_(nominal_spacing) {}

  /// Feeds the next packet arrival time.
  void on_arrival(SimTime when);

  /// Current smoothed jitter estimate.
  Duration jitter() const { return Duration::from_seconds(jitter_s_); }
  std::size_t samples() const { return samples_; }

 private:
  Duration nominal_;
  bool have_prev_ = false;
  SimTime prev_;
  double mean_gap_s_ = 0.0;  // running mean, used when nominal is unknown
  double jitter_s_ = 0.0;
  std::size_t samples_ = 0;
};

struct JitterSummary {
  Duration rfc3550;        ///< final smoothed estimate
  Duration mean_abs_dev;   ///< mean |gap - mean gap|
  double cv = 0.0;         ///< interarrival coefficient of variation
};

/// Batch jitter summary over a captured flow. For MediaPlayer flows pass
/// `groups_only=true` so fragment spacing does not masquerade as jitter
/// (the Figure 9 de-noising).
JitterSummary summarize_jitter(const FlowTrace& flow, bool groups_only = false);

}  // namespace streamlab
