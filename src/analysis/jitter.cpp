#include "analysis/jitter.hpp"

#include <cmath>

#include "analysis/stats.hpp"

namespace streamlab {

void Rfc3550Jitter::on_arrival(SimTime when) {
  if (!have_prev_) {
    have_prev_ = true;
    prev_ = when;
    return;
  }
  const double gap = (when - prev_).to_seconds();
  prev_ = when;
  ++samples_;

  double nominal = nominal_.to_seconds();
  if (nominal <= 0.0) {
    // Estimate the sender spacing as the running mean interarrival.
    mean_gap_s_ += (gap - mean_gap_s_) / static_cast<double>(samples_);
    nominal = mean_gap_s_;
  }
  const double d = std::abs(gap - nominal);
  jitter_s_ += (d - jitter_s_) / 16.0;
}

JitterSummary summarize_jitter(const FlowTrace& flow, bool groups_only) {
  JitterSummary out;
  Rfc3550Jitter running;
  for (const auto& p : flow.packets()) {
    if (groups_only && !p.first_of_group) continue;
    running.on_arrival(p.time);
  }
  out.rfc3550 = running.jitter();

  const auto gaps = flow.interarrivals(groups_only);
  if (gaps.empty()) return out;
  const auto stats = SummaryStats::from(gaps);
  double mad = 0.0;
  for (const double g : gaps) mad += std::abs(g - stats.mean);
  mad /= static_cast<double>(gaps.size());
  out.mean_abs_dev = Duration::from_seconds(mad);
  out.cv = stats.mean > 0.0 ? stats.stddev / stats.mean : 0.0;
  return out;
}

}  // namespace streamlab
