// Per-flow packet analysis: extracts one streaming flow from a dissected
// capture and derives the series behind Figures 4-9 — arrival sequences,
// packet sizes, interarrival times, and the IP-fragmentation census.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dissect/dissector.hpp"
#include "net/address.hpp"

namespace streamlab {

/// One packet of an extracted flow, in arrival order.
struct FlowPacket {
  SimTime time;
  std::uint32_t wire_length = 0;
  bool trailing_fragment = false;  ///< an IP fragment with offset > 0
  bool first_of_group = true;      ///< first packet of its IP datagram
  std::uint16_t ip_id = 0;
};

/// A unidirectional flow (server -> client) extracted from a capture.
class FlowTrace {
 public:
  /// Selects packets with the given source address, of UDP protocol; when
  /// `dst_port` is set, datagram-leading packets must match it (trailing
  /// fragments carry no UDP header and are matched by source + IP id
  /// continuity, exactly how one isolates a flow in Ethereal).
  static FlowTrace extract(const std::vector<DissectedPacket>& packets, Ipv4Address src,
                           std::optional<std::uint16_t> dst_port = std::nullopt);

  const std::vector<FlowPacket>& packets() const { return packets_; }
  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }

  /// Fraction of packets that are trailing IP fragments — the y-axis of
  /// Figure 5.
  double fragment_fraction() const;
  std::size_t fragment_count() const;

  /// Wire packet sizes in bytes, optionally excluding trailing fragments.
  std::vector<double> packet_sizes(bool include_fragments = true) const;

  /// Interarrival gaps in seconds. With `groups_only`, only datagram-leading
  /// packets are considered — the paper's de-noising for high-rate
  /// MediaPlayer flows (Figure 9: "only the first UDP packet in each packet
  /// group").
  std::vector<double> interarrivals(bool groups_only = false) const;

  /// (arrival time seconds, packet index) pairs — the axes of Figure 4.
  std::vector<std::pair<double, std::uint32_t>> arrival_sequence() const;

  /// Bytes received per window, as (window start seconds, Kbps) — Figure 10.
  std::vector<std::pair<double, double>> bandwidth_timeline(Duration window) const;

  /// Total flow bytes and duration.
  std::uint64_t total_bytes() const;
  Duration duration() const;
  /// Mean throughput across the whole flow, in Kbps.
  double mean_rate_kbps() const;

 private:
  std::vector<FlowPacket> packets_;
};

}  // namespace streamlab
