// Least-squares polynomial fitting — Figure 3 overlays second-order
// polynomial trend curves on the playback-vs-encoding scatter.
#pragma once

#include <vector>

namespace streamlab {

struct PolyFit {
  std::vector<double> coefficients;  ///< c0 + c1*x + c2*x^2 + ...
  double r_squared = 0.0;

  double eval(double x) const;

  /// Fits a polynomial of the given degree by normal equations with partial
  /// pivoting. Requires xs.size() == ys.size() and more points than
  /// coefficients; returns an empty fit otherwise.
  static PolyFit fit(const std::vector<double>& xs, const std::vector<double>& ys,
                     int degree);
};

}  // namespace streamlab
