#include "analysis/flow.hpp"

#include <algorithm>

namespace streamlab {

FlowTrace FlowTrace::extract(const std::vector<DissectedPacket>& packets, Ipv4Address src,
                             std::optional<std::uint16_t> dst_port) {
  FlowTrace out;
  for (const auto& p : packets) {
    const auto ip_src = p.field("ip.src");
    const auto proto = p.field("ip.proto");
    if (!ip_src || ip_src->number != static_cast<std::int64_t>(src.value())) continue;
    if (!proto || proto->number != 17) continue;

    const auto frag_offset = p.field("ip.frag_offset");
    const bool trailing = frag_offset && frag_offset->number > 0;
    if (!trailing && dst_port) {
      const auto port = p.field("udp.dstport");
      if (!port || port->number != *dst_port) continue;
    }
    // Trailing fragments are accepted on source+protocol alone: their IP id
    // ties them to the preceding first fragment of the same datagram.
    FlowPacket fp;
    fp.time = p.timestamp;
    fp.wire_length = static_cast<std::uint32_t>(p.frame_length);
    fp.trailing_fragment = trailing;
    fp.first_of_group = !trailing;
    if (auto id = p.field("ip.id")) fp.ip_id = static_cast<std::uint16_t>(id->number);
    out.packets_.push_back(fp);
  }
  return out;
}

std::size_t FlowTrace::fragment_count() const {
  return static_cast<std::size_t>(
      std::count_if(packets_.begin(), packets_.end(),
                    [](const FlowPacket& p) { return p.trailing_fragment; }));
}

double FlowTrace::fragment_fraction() const {
  if (packets_.empty()) return 0.0;
  return static_cast<double>(fragment_count()) / static_cast<double>(packets_.size());
}

std::vector<double> FlowTrace::packet_sizes(bool include_fragments) const {
  std::vector<double> out;
  out.reserve(packets_.size());
  for (const auto& p : packets_) {
    if (!include_fragments && p.trailing_fragment) continue;
    out.push_back(static_cast<double>(p.wire_length));
  }
  return out;
}

std::vector<double> FlowTrace::interarrivals(bool groups_only) const {
  std::vector<double> out;
  std::optional<SimTime> prev;
  for (const auto& p : packets_) {
    if (groups_only && !p.first_of_group) continue;
    if (prev) out.push_back((p.time - *prev).to_seconds());
    prev = p.time;
  }
  return out;
}

std::vector<std::pair<double, std::uint32_t>> FlowTrace::arrival_sequence() const {
  std::vector<std::pair<double, std::uint32_t>> out;
  out.reserve(packets_.size());
  std::uint32_t index = 0;
  for (const auto& p : packets_) out.emplace_back(p.time.to_seconds(), index++);
  return out;
}

std::vector<std::pair<double, double>> FlowTrace::bandwidth_timeline(Duration window) const {
  std::vector<std::pair<double, double>> out;
  if (packets_.empty() || window <= Duration::zero()) return out;
  const SimTime start = packets_.front().time;
  const double win_secs = window.to_seconds();

  std::size_t i = 0;
  for (SimTime w = start; i < packets_.size(); w += window) {
    const SimTime end = w + window;
    std::uint64_t bytes = 0;
    while (i < packets_.size() && packets_[i].time < end) {
      bytes += packets_[i].wire_length;
      ++i;
    }
    out.emplace_back((w - start).to_seconds(),
                     static_cast<double>(bytes) * 8.0 / win_secs / 1000.0);
  }
  return out;
}

std::uint64_t FlowTrace::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : packets_) total += p.wire_length;
  return total;
}

Duration FlowTrace::duration() const {
  if (packets_.size() < 2) return Duration::zero();
  return packets_.back().time - packets_.front().time;
}

double FlowTrace::mean_rate_kbps() const {
  const double secs = duration().to_seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(total_bytes()) * 8.0 / secs / 1000.0;
}

}  // namespace streamlab
