// Burstiness ("turbulence") metrics.
//
// The paper coins *turbulence* for "the size and distribution of packets
// over time". Beyond the marginal distributions (Figures 6-9) the standard
// quantifications of that shape are the index of dispersion for counts
// (IDC: Var/Mean of per-window packet counts — 1 for Poisson, ~0 for CBR,
// large for bursty flows) and the lag autocorrelation of the windowed rate
// series. These summarise in two numbers what the paper shows across four
// figures: MediaPlayer is far smoother than RealPlayer.
#pragma once

#include <vector>

#include "analysis/flow.hpp"

namespace streamlab {

struct BurstinessSummary {
  /// Index of dispersion for counts over the window series.
  double idc = 0.0;
  /// Lag-1 autocorrelation of the per-window byte rate.
  double rate_autocorrelation = 0.0;
  /// Peak-to-mean ratio of the windowed rate.
  double peak_to_mean = 0.0;
  std::size_t windows = 0;
};

/// Per-window packet counts for a flow.
std::vector<double> windowed_counts(const FlowTrace& flow, Duration window);

/// Index of dispersion for counts of a count series (Var/Mean); 0 when the
/// series is empty or has zero mean.
double index_of_dispersion(const std::vector<double>& counts);

/// Autocorrelation of a series at the given lag; 0 for degenerate input.
double autocorrelation(const std::vector<double>& series, std::size_t lag);

/// Full burstiness summary over a flow. The steady phase only can be
/// selected by passing `skip` to drop the startup-burst windows.
BurstinessSummary summarize_burstiness(const FlowTrace& flow,
                                       Duration window = Duration::seconds(1),
                                       std::size_t skip_windows = 0);

}  // namespace streamlab
