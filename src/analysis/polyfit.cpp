#include "analysis/polyfit.hpp"

#include <cmath>
#include <cstddef>

namespace streamlab {

double PolyFit::eval(double x) const {
  double y = 0.0;
  double xn = 1.0;
  for (double c : coefficients) {
    y += c * xn;
    xn *= x;
  }
  return y;
}

PolyFit PolyFit::fit(const std::vector<double>& xs, const std::vector<double>& ys,
                     int degree) {
  PolyFit out;
  const std::size_t n = xs.size();
  const std::size_t m = static_cast<std::size_t>(degree) + 1;
  if (degree < 0 || n != ys.size() || n < m) return out;

  // Normal equations: (X^T X) c = X^T y, with X the Vandermonde matrix.
  // Accumulate power sums S_k = sum x^k (k up to 2*degree) and T_k = sum
  // x^k * y (k up to degree).
  std::vector<double> s(2 * m - 1, 0.0), t(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double xp = 1.0;
    for (std::size_t k = 0; k < s.size(); ++k) {
      s[k] += xp;
      if (k < m) t[k] += xp * ys[i];
      xp *= xs[i];
    }
  }

  // Dense solve with partial pivoting on the (m x m) system.
  std::vector<std::vector<double>> a(m, std::vector<double>(m + 1, 0.0));
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) a[r][c] = s[r + c];
    a[r][m] = t[r];
  }
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12) return out;  // singular
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= m; ++c) a[r][c] -= f * a[col][c];
    }
  }
  out.coefficients.resize(m);
  for (std::size_t r = 0; r < m; ++r) out.coefficients[r] = a[r][m] / a[r][r];

  // R^2 against the mean model.
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - out.eval(xs[i]);
    ss_res += r * r;
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
  }
  out.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return out;
}

}  // namespace streamlab
