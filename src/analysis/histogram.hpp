// Histograms (PDF estimates) and empirical CDFs — the plot primitives of
// every distribution figure in the paper (Figures 1, 2, 6, 7, 8, 9).
#pragma once

#include <cstdint>
#include <vector>

namespace streamlab {

/// Fixed-width binned histogram. Density is normalised so the bin
/// *probabilities* sum to 1 (matching the paper's "Probability Density"
/// axes, which plot per-bin probability rather than true density).
class Histogram {
 public:
  Histogram(double bin_width, double origin = 0.0);

  void add(double value);
  void add_all(const std::vector<double>& values);

  struct Bin {
    double lower = 0.0;
    double center = 0.0;
    std::uint64_t count = 0;
    double probability = 0.0;  ///< count / total
  };

  /// Non-empty bins in ascending order (empty bins between them included so
  /// plots show gaps correctly).
  std::vector<Bin> bins() const;
  std::uint64_t total() const { return total_; }
  double bin_width() const { return width_; }

  /// The bin with the highest probability; zeroed Bin when empty.
  Bin mode() const;
  /// Probability mass within [lo, hi).
  double mass_in(double lo, double hi) const;

 private:
  std::int64_t index_of(double value) const;

  double width_;
  double origin_;
  std::uint64_t total_ = 0;
  // Sparse storage keyed by bin index.
  std::vector<std::pair<std::int64_t, std::uint64_t>> counts_;  // kept sorted
};

struct CdfPoint {
  double x = 0.0;
  double p = 0.0;
};

/// Empirical CDF as step points (x ascending, p in (0, 1]).
std::vector<CdfPoint> empirical_cdf(std::vector<double> values);

/// Samples a CDF at evenly spaced probability levels (for compact printing).
std::vector<CdfPoint> cdf_at_quantiles(const std::vector<double>& values, int points);

}  // namespace streamlab
