#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"

namespace streamlab {

Histogram::Histogram(double bin_width, double origin)
    : width_(bin_width > 0 ? bin_width : 1.0), origin_(origin) {}

std::int64_t Histogram::index_of(double value) const {
  return static_cast<std::int64_t>(std::floor((value - origin_) / width_));
}

void Histogram::add(double value) {
  const std::int64_t idx = index_of(value);
  auto it = std::lower_bound(counts_.begin(), counts_.end(), idx,
                             [](const auto& pair, std::int64_t i) { return pair.first < i; });
  if (it != counts_.end() && it->first == idx)
    ++it->second;
  else
    counts_.insert(it, {idx, 1});
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

std::vector<Histogram::Bin> Histogram::bins() const {
  std::vector<Bin> out;
  if (counts_.empty()) return out;
  const std::int64_t lo = counts_.front().first;
  const std::int64_t hi = counts_.back().first;
  std::size_t cursor = 0;
  for (std::int64_t i = lo; i <= hi; ++i) {
    Bin b;
    b.lower = origin_ + static_cast<double>(i) * width_;
    b.center = b.lower + width_ / 2.0;
    if (cursor < counts_.size() && counts_[cursor].first == i) {
      b.count = counts_[cursor].second;
      ++cursor;
    }
    b.probability = total_ == 0 ? 0.0
                                : static_cast<double>(b.count) / static_cast<double>(total_);
    out.push_back(b);
  }
  return out;
}

Histogram::Bin Histogram::mode() const {
  Bin best;
  for (const auto& b : bins())
    if (b.count > best.count) best = b;
  return best;
}

double Histogram::mass_in(double lo, double hi) const {
  double mass = 0.0;
  for (const auto& b : bins()) {
    if (b.lower >= lo && b.lower + width_ <= hi) mass += b.probability;
  }
  return mass;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Collapse runs of equal values into their final (highest) probability.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<CdfPoint> cdf_at_quantiles(const std::vector<double>& values, int points) {
  std::vector<CdfPoint> out;
  if (values.empty() || points < 2) return out;
  for (int i = 0; i < points; ++i) {
    const double p = static_cast<double>(i) / (points - 1);
    out.push_back({quantile(values, p), p});
  }
  return out;
}

}  // namespace streamlab
