#include "analysis/burstiness.hpp"

#include <algorithm>
#include <cmath>

namespace streamlab {

std::vector<double> windowed_counts(const FlowTrace& flow, Duration window) {
  std::vector<double> counts;
  if (flow.empty() || window <= Duration::zero()) return counts;
  const SimTime start = flow.packets().front().time;
  std::size_t i = 0;
  for (SimTime w = start; i < flow.packets().size(); w += window) {
    const SimTime end = w + window;
    double n = 0;
    while (i < flow.packets().size() && flow.packets()[i].time < end) {
      ++n;
      ++i;
    }
    counts.push_back(n);
  }
  return counts;
}

double index_of_dispersion(const std::vector<double>& counts) {
  if (counts.empty()) return 0.0;
  double mean = 0.0;
  for (const double c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts.size());
  return var / mean;
}

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  if (series.size() <= lag + 1) return 0.0;
  double mean = 0.0;
  for (const double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    den += (series[i] - mean) * (series[i] - mean);
    if (i + lag < series.size())
      num += (series[i] - mean) * (series[i + lag] - mean);
  }
  return den <= 0.0 ? 0.0 : num / den;
}

BurstinessSummary summarize_burstiness(const FlowTrace& flow, Duration window,
                                       std::size_t skip_windows) {
  BurstinessSummary out;
  auto counts = windowed_counts(flow, window);
  if (counts.size() > skip_windows)
    counts.erase(counts.begin(),
                 counts.begin() + static_cast<std::ptrdiff_t>(skip_windows));
  // Drop the final (usually partial) window to avoid an artificial dip.
  if (counts.size() > 1) counts.pop_back();
  out.windows = counts.size();
  if (counts.empty()) return out;

  out.idc = index_of_dispersion(counts);
  out.rate_autocorrelation = autocorrelation(counts, 1);

  double mean = 0.0, peak = 0.0;
  for (const double c : counts) {
    mean += c;
    peak = std::max(peak, c);
  }
  mean /= static_cast<double>(counts.size());
  out.peak_to_mean = mean <= 0.0 ? 0.0 : peak / mean;
  return out;
}

}  // namespace streamlab
