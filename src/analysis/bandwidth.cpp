#include "analysis/bandwidth.hpp"

#include <algorithm>

namespace streamlab {

BufferingAnalysis analyze_buffering(const std::vector<std::pair<double, double>>& timeline,
                                    Duration window, double threshold, int min_windows) {
  BufferingAnalysis out;
  if (timeline.size() < static_cast<std::size_t>(min_windows) * 2) return out;

  // Steady rate: median of the second half, excluding the final window
  // (usually partial).
  std::vector<double> tail;
  for (std::size_t i = timeline.size() / 2; i + 1 < timeline.size(); ++i)
    tail.push_back(timeline[i].second);
  if (tail.empty()) return out;
  std::sort(tail.begin(), tail.end());
  out.steady_rate_kbps = tail[tail.size() / 2];
  if (out.steady_rate_kbps <= 0.0) return out;

  // Initial run above threshold.
  std::size_t burst_end = 0;
  while (burst_end < timeline.size() &&
         timeline[burst_end].second > threshold * out.steady_rate_kbps) {
    ++burst_end;
  }
  if (burst_end < static_cast<std::size_t>(min_windows)) {
    // No burst: report steady only.
    return out;
  }

  double sum = 0.0;
  for (std::size_t i = 0; i < burst_end; ++i) sum += timeline[i].second;
  out.has_buffering_phase = true;
  out.buffering_rate_kbps = sum / static_cast<double>(burst_end);
  out.buffering_duration = Duration::from_seconds(
      static_cast<double>(burst_end) * window.to_seconds());
  return out;
}

}  // namespace streamlab
