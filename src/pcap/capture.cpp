#include "pcap/capture.hpp"

namespace streamlab {

void CaptureTrace::add_packet(SimTime when, MacAddress src_mac, MacAddress dst_mac,
                              const Ipv4Packet& packet) {
  Frame frame = frame_ipv4(src_mac, dst_mac, packet);
  CaptureRecord rec;
  rec.timestamp = when;
  rec.original_length = static_cast<std::uint32_t>(frame.size());
  auto bytes = frame.bytes();
  const std::size_t keep = std::min<std::size_t>(bytes.size(), snaplen_);
  rec.data.assign(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
  records_.push_back(std::move(rec));
}

std::uint64_t CaptureTrace::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : records_) total += r.original_length;
  return total;
}

Duration CaptureTrace::duration() const {
  if (records_.size() < 2) return Duration::zero();
  return records_.back().timestamp - records_.front().timestamp;
}

}  // namespace streamlab
