// The Ethereal stand-in: taps a simulated host's NIC and records every
// frame, inbound and outbound, with receive timestamps.
#pragma once

#include "pcap/capture.hpp"
#include "sim/host.hpp"

namespace streamlab {

/// Attaches to a host on construction and detaches on destruction. The
/// sniffer observes packets at the link layer — trailing IP fragments are
/// recorded individually, before reassembly, exactly as in the paper.
class Sniffer {
 public:
  struct Options {
    std::uint32_t snaplen = 65535;
    bool capture_inbound = true;
    bool capture_outbound = true;
  };

  explicit Sniffer(Host& host) : Sniffer(host, Options{}) {}
  Sniffer(Host& host, Options options);
  ~Sniffer();
  Sniffer(const Sniffer&) = delete;
  Sniffer& operator=(const Sniffer&) = delete;

  const CaptureTrace& trace() const { return trace_; }
  CaptureTrace take_trace() { return std::move(trace_); }
  std::size_t packets_captured() const { return trace_.size(); }

 private:
  Host& host_;
  Options options_;
  CaptureTrace trace_;
  MacAddress gateway_mac_;
};

}  // namespace streamlab
