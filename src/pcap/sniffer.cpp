#include "pcap/sniffer.hpp"

namespace streamlab {

Sniffer::Sniffer(Host& host, Options options)
    : host_(host),
      options_(options),
      trace_(options.snaplen),
      gateway_mac_(MacAddress::for_nic(0xFFFFFF)) {
  host_.set_tap([this](const Ipv4Packet& packet, TapDirection dir, SimTime when) {
    if (dir == TapDirection::kInbound && !options_.capture_inbound) return;
    if (dir == TapDirection::kOutbound && !options_.capture_outbound) return;
    // Reconstruct the Ethernet framing the host NIC would have seen: the
    // gateway's MAC on the far side, the host's own MAC on the near side.
    const MacAddress src = dir == TapDirection::kInbound ? gateway_mac_ : host_.mac();
    const MacAddress dst = dir == TapDirection::kInbound ? host_.mac() : gateway_mac_;
    trace_.add_packet(when, src, dst, packet);
  });
}

Sniffer::~Sniffer() { host_.set_tap({}); }

}  // namespace streamlab
