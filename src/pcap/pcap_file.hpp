// libpcap file format reader/writer, implemented from the format
// specification (no libpcap dependency). Supports the classic microsecond
// magic (0xa1b2c3d4) and the nanosecond variant (0xa1b23c4d), both byte
// orders on read, and always writes little-endian nanosecond files so no
// precision of the simulated clock is lost.
#pragma once

#include <iosfwd>
#include <string>

#include "pcap/capture.hpp"
#include "util/expected.hpp"

namespace streamlab {

inline constexpr std::uint32_t kPcapMagicMicros = 0xA1B2C3D4;
inline constexpr std::uint32_t kPcapMagicNanos = 0xA1B23C4D;
inline constexpr std::uint32_t kPcapLinkTypeEthernet = 1;

/// Serializes a trace to a stream / file. Returns false on I/O failure.
bool write_pcap(std::ostream& out, const CaptureTrace& trace);
bool write_pcap_file(const std::string& path, const CaptureTrace& trace);

/// Parses a pcap stream / file back into a trace. Timestamps are read
/// relative to the epoch in the file; since our writer stores simulated
/// time directly, a written-then-read trace round-trips exactly.
Expected<CaptureTrace> read_pcap(std::istream& in);
Expected<CaptureTrace> read_pcap_file(const std::string& path);

}  // namespace streamlab
