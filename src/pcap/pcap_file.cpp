#include "pcap/pcap_file.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/bytes.hpp"

namespace streamlab {
namespace {

struct HeaderFormat {
  bool swapped = false;   // file byte order != little-endian
  bool nanos = false;
};

}  // namespace

bool write_pcap(std::ostream& out, const CaptureTrace& trace) {
  ByteWriter w(24 + trace.size() * 64);
  w.u32le(kPcapMagicNanos);
  w.u16le(2);   // version major
  w.u16le(4);   // version minor
  w.u32le(0);   // thiszone
  w.u32le(0);   // sigfigs
  w.u32le(trace.snaplen());
  w.u32le(kPcapLinkTypeEthernet);

  for (const auto& rec : trace.records()) {
    const std::int64_t ns = rec.timestamp.ns();
    w.u32le(static_cast<std::uint32_t>(ns / 1'000'000'000));
    w.u32le(static_cast<std::uint32_t>(ns % 1'000'000'000));
    w.u32le(static_cast<std::uint32_t>(rec.data.size()));
    w.u32le(rec.original_length);
    w.bytes(rec.data);
  }
  const auto view = w.view();
  out.write(reinterpret_cast<const char*>(view.data()),
            static_cast<std::streamsize>(view.size()));
  return static_cast<bool>(out);
}

bool write_pcap_file(const std::string& path, const CaptureTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  return out && write_pcap(out, trace);
}

Expected<CaptureTrace> read_pcap(std::istream& in) {
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  ByteReader r(bytes);

  const std::uint32_t magic_le = r.u32le();
  HeaderFormat fmt;
  switch (magic_le) {
    case kPcapMagicMicros: fmt = {false, false}; break;
    case kPcapMagicNanos: fmt = {false, true}; break;
    case 0xD4C3B2A1: fmt = {true, false}; break;  // big-endian micros
    case 0x4D3CB2A1: fmt = {true, true}; break;   // big-endian nanos
    default:
      return Unexpected(std::string("not a pcap file (bad magic)"));
  }
  const auto u16 = [&] { return fmt.swapped ? static_cast<std::uint16_t>(__builtin_bswap16(r.u16le())) : r.u16le(); };
  const auto u32 = [&] { return fmt.swapped ? __builtin_bswap32(r.u32le()) : r.u32le(); };

  const std::uint16_t ver_major = u16();
  u16();  // version minor
  if (ver_major != 2) return Unexpected(std::string("unsupported pcap version"));
  u32();  // thiszone
  u32();  // sigfigs
  const std::uint32_t snaplen = u32();
  const std::uint32_t linktype = u32();
  if (!r.ok()) return Unexpected(std::string("truncated pcap global header"));
  if (linktype != kPcapLinkTypeEthernet)
    return Unexpected(std::string("unsupported link type"));

  CaptureTrace trace(snaplen);
  while (r.remaining() > 0) {
    const std::uint32_t ts_sec = u32();
    const std::uint32_t ts_frac = u32();
    const std::uint32_t incl_len = u32();
    const std::uint32_t orig_len = u32();
    if (!r.ok()) return Unexpected(std::string("truncated pcap record header"));
    if (incl_len > snaplen || incl_len > r.remaining())
      return Unexpected(std::string("pcap record length out of range"));
    auto data = r.bytes(incl_len);

    CaptureRecord rec;
    const std::int64_t frac_ns = fmt.nanos ? ts_frac : static_cast<std::int64_t>(ts_frac) * 1'000;
    rec.timestamp = SimTime(static_cast<std::int64_t>(ts_sec) * 1'000'000'000 + frac_ns);
    rec.original_length = orig_len;
    rec.data.assign(data.begin(), data.end());
    trace.add(std::move(rec));
  }
  return trace;
}

Expected<CaptureTrace> read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Unexpected("cannot open " + path);
  return read_pcap(in);
}

}  // namespace streamlab
