// Capture records and traces — the unit of data every analysis consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "util/time.hpp"

namespace streamlab {

/// One captured frame, as a sniffer saw it.
struct CaptureRecord {
  SimTime timestamp;
  std::uint32_t original_length = 0;  ///< wire length (may exceed stored bytes)
  std::vector<std::uint8_t> data;     ///< frame bytes, possibly truncated to snaplen
};

/// An ordered sequence of captured frames plus capture metadata.
class CaptureTrace {
 public:
  CaptureTrace() = default;
  explicit CaptureTrace(std::uint32_t snaplen) : snaplen_(snaplen) {}

  void add(CaptureRecord record) { records_.push_back(std::move(record)); }
  /// Convenience: frames an IPv4 packet and appends it, truncating to snaplen.
  void add_packet(SimTime when, MacAddress src_mac, MacAddress dst_mac,
                  const Ipv4Packet& packet);

  const std::vector<CaptureRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  std::uint32_t snaplen() const { return snaplen_; }

  /// Total captured wire bytes.
  std::uint64_t total_bytes() const;
  /// Capture duration (last timestamp - first), zero if < 2 records.
  Duration duration() const;

 private:
  std::uint32_t snaplen_ = 65535;
  std::vector<CaptureRecord> records_;
};

}  // namespace streamlab
