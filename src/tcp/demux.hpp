// Per-host TCP segment demultiplexer. The simulator's Host delivers every
// TCP segment to a single handler; the demux fans segments out to the
// connection objects by local port.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>

#include "net/headers.hpp"
#include "sim/host.hpp"

namespace streamlab {

class TcpDemux {
 public:
  using SegmentHandler = std::function<void(const TcpHeader&, Ipv4Address,
                                            std::span<const std::uint8_t>, SimTime)>;

  /// Installs itself as the host's TCP handler. One demux per host.
  explicit TcpDemux(Host& host);
  ~TcpDemux();
  TcpDemux(const TcpDemux&) = delete;
  TcpDemux& operator=(const TcpDemux&) = delete;

  /// Routes segments whose destination port matches. Replaces any previous
  /// binding on the port.
  void bind(std::uint16_t local_port, SegmentHandler handler);
  void unbind(std::uint16_t local_port);

  Host& host() { return host_; }
  std::uint64_t segments_demuxed() const { return demuxed_; }
  std::uint64_t segments_unclaimed() const { return unclaimed_; }

 private:
  Host& host_;
  std::map<std::uint16_t, SegmentHandler> ports_;
  std::uint64_t demuxed_ = 0;
  std::uint64_t unclaimed_ = 0;
};

}  // namespace streamlab
