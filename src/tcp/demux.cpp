#include "tcp/demux.hpp"

namespace streamlab {

TcpDemux::TcpDemux(Host& host) : host_(host) {
  host_.set_tcp_handler([this](const TcpHeader& tcp, Ipv4Address src,
                               std::span<const std::uint8_t> payload, SimTime now) {
    auto it = ports_.find(tcp.dst_port);
    if (it == ports_.end()) {
      ++unclaimed_;
      return;
    }
    ++demuxed_;
    it->second(tcp, src, payload, now);
  });
}

TcpDemux::~TcpDemux() { host_.set_tcp_handler({}); }

void TcpDemux::bind(std::uint16_t local_port, SegmentHandler handler) {
  ports_[local_port] = std::move(handler);
}

void TcpDemux::unbind(std::uint16_t local_port) { ports_.erase(local_port); }

}  // namespace streamlab
