// TCP bulk sender: a Reno-style one-way transfer with slow start,
// congestion avoidance, fast retransmit, go-back-N timeout recovery and
// Karn-clamped RTT estimation — enough congestion-control fidelity to act
// as the responsive counterpart in the paper's proposed TCP-friendliness
// experiments (Section VI).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tcp/demux.hpp"

namespace streamlab {

struct TcpSenderConfig {
  std::size_t mss = 1400;
  std::uint32_t initial_cwnd_segments = 2;
  Duration initial_rto = Duration::millis(1000);
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(60);
  int dupack_threshold = 3;
};

class TcpBulkSender {
 public:
  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t bytes_acked = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t timeouts = 0;
  };

  /// Prepares a transfer of `total_bytes` to `remote`. Call start() to
  /// begin the handshake.
  TcpBulkSender(TcpDemux& demux, std::uint16_t local_port, Endpoint remote,
                std::uint64_t total_bytes, TcpSenderConfig config = {});
  ~TcpBulkSender();

  void start();

  bool connected() const { return state_ >= State::kEstablished; }
  bool done() const { return state_ == State::kDone; }
  const Stats& stats() const { return stats_; }
  double cwnd_segments() const {
    return static_cast<double>(cwnd_) / static_cast<double>(config_.mss);
  }
  /// (seconds, cwnd in segments) sampled at every congestion event and ACK.
  const std::vector<std::pair<double, double>>& cwnd_trace() const { return cwnd_trace_; }
  /// Mean goodput over the connection lifetime, Kbps; 0 until done.
  double mean_throughput_kbps() const;
  std::optional<Duration> smoothed_rtt() const { return srtt_; }

 private:
  enum class State { kClosed, kSynSent, kEstablished, kFinSent, kDone };

  void on_segment(const TcpHeader& tcp, Ipv4Address src,
                  std::span<const std::uint8_t> payload, SimTime now);
  void on_new_ack(std::uint64_t acked_offset, SimTime now);
  void try_send(SimTime now);
  void send_segment(std::uint64_t offset, bool retransmission, SimTime now);
  void send_fin();
  void arm_rto();
  void on_rto();
  void record_cwnd(SimTime now);
  std::uint64_t flight() const { return snd_nxt_ - snd_una_; }

  TcpDemux& demux_;
  std::uint16_t port_;
  Endpoint remote_;
  std::uint64_t total_bytes_;
  TcpSenderConfig config_;

  State state_ = State::kClosed;
  std::uint32_t iss_ = 0x2000;
  std::uint64_t snd_una_ = 0;  ///< first unacked stream offset
  std::uint64_t snd_nxt_ = 0;  ///< next stream offset to send
  std::uint64_t cwnd_ = 0;     ///< bytes
  std::uint64_t ssthresh_ = 1 << 30;
  std::uint64_t rwnd_ = 65535;
  int dupacks_ = 0;

  // RTT estimation (one probe in flight; invalidated by retransmission).
  std::optional<std::uint64_t> rtt_probe_offset_;
  SimTime rtt_probe_sent_;
  std::optional<Duration> srtt_;
  Duration rttvar_ = Duration::zero();
  Duration rto_;

  EventHandle rto_timer_;
  std::optional<SimTime> started_at_;
  std::optional<SimTime> finished_at_;
  Stats stats_;
  std::vector<std::pair<double, double>> cwnd_trace_;
};

}  // namespace streamlab
