#include "tcp/receiver.hpp"

namespace streamlab {

TcpBulkReceiver::TcpBulkReceiver(TcpDemux& demux, std::uint16_t port)
    : demux_(demux), port_(port) {
  demux_.bind(port_, [this](const TcpHeader& tcp, Ipv4Address src,
                            std::span<const std::uint8_t> payload, SimTime now) {
    on_segment(tcp, src, payload, now);
  });
}

TcpBulkReceiver::~TcpBulkReceiver() { demux_.unbind(port_); }

void TcpBulkReceiver::on_segment(const TcpHeader& tcp, Ipv4Address src,
                                 std::span<const std::uint8_t> payload, SimTime) {
  ++stats_.segments_received;

  if (tcp.flag_syn && !peer_) {
    peer_ = Endpoint{src, tcp.src_port};
    irs_ = tcp.seq;
    TcpHeader synack;
    synack.src_port = port_;
    synack.dst_port = tcp.src_port;
    synack.flag_syn = true;
    synack.flag_ack = true;
    synack.seq = iss_;
    synack.ack = irs_ + 1;  // SYN consumes one sequence number
    synack.window = advertised_window();
    demux_.host().tcp_send(synack, src, {});
    ++stats_.acks_sent;
    return;
  }
  if (!peer_ || src != peer_->ip || tcp.src_port != peer_->port) return;

  if (!payload.empty()) {
    // Stream offset of this payload relative to the first data byte.
    const std::uint64_t offset = tcp.seq - (irs_ + 1);
    const std::uint64_t before = received_.total_covered();
    received_.insert(offset, offset + payload.size());
    if (received_.total_covered() == before) ++stats_.duplicate_segments;
    stats_.bytes_received = received_.contiguous_prefix();
  }
  if (tcp.flag_fin) fin_received_ = true;
  send_ack();
}

void TcpBulkReceiver::send_ack() {
  TcpHeader ack;
  ack.src_port = port_;
  ack.dst_port = peer_->port;
  ack.flag_ack = true;
  ack.seq = iss_ + 1;
  // Cumulative: next expected stream byte (+1 for the peer's SYN, +1 more
  // once the FIN arrived and all data is in).
  std::uint32_t ack_no =
      irs_ + 1 + static_cast<std::uint32_t>(received_.contiguous_prefix());
  if (fin_received_) ack_no += 1;
  ack.ack = ack_no;
  ack.window = advertised_window();
  demux_.host().tcp_send(ack, peer_->ip, {});
  ++stats_.acks_sent;
}

}  // namespace streamlab
