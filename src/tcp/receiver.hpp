// TCP bulk receiver: accepts one connection, acknowledges cumulatively
// (emitting duplicate ACKs on gaps, which drive the sender's fast
// retransmit), buffers out-of-order data, and completes on FIN.
#pragma once

#include <cstdint>
#include <optional>

#include "tcp/demux.hpp"
#include "util/interval_set.hpp"

namespace streamlab {

class TcpBulkReceiver {
 public:
  struct Stats {
    std::uint64_t segments_received = 0;
    std::uint64_t bytes_received = 0;     ///< in-order payload bytes delivered
    std::uint64_t duplicate_segments = 0; ///< fully redundant payloads
    std::uint64_t acks_sent = 0;
  };

  /// Listens on `port`; the first SYN establishes the connection.
  TcpBulkReceiver(TcpDemux& demux, std::uint16_t port);
  ~TcpBulkReceiver();

  bool connected() const { return peer_.has_value(); }
  bool finished() const { return fin_received_; }
  std::uint64_t bytes_received() const { return stats_.bytes_received; }
  const Stats& stats() const { return stats_; }
  std::uint16_t advertised_window() const { return 65535; }

 private:
  void on_segment(const TcpHeader& tcp, Ipv4Address src,
                  std::span<const std::uint8_t> payload, SimTime now);
  void send_ack();

  TcpDemux& demux_;
  std::uint16_t port_;
  std::optional<Endpoint> peer_;
  std::uint32_t irs_ = 0;        ///< initial receive sequence (peer's ISN)
  std::uint32_t iss_ = 0x1000;   ///< our ISN for the SYN|ACK
  IntervalSet received_;         ///< stream offsets (relative to irs_+1)
  bool fin_received_ = false;
  Stats stats_;
};

}  // namespace streamlab
