#include "tcp/sender.hpp"

#include <algorithm>
#include <vector>

namespace streamlab {

TcpBulkSender::TcpBulkSender(TcpDemux& demux, std::uint16_t local_port, Endpoint remote,
                             std::uint64_t total_bytes, TcpSenderConfig config)
    : demux_(demux),
      port_(local_port),
      remote_(remote),
      total_bytes_(total_bytes),
      config_(config),
      rto_(config.initial_rto) {
  cwnd_ = static_cast<std::uint64_t>(config_.initial_cwnd_segments) * config_.mss;
  demux_.bind(port_, [this](const TcpHeader& tcp, Ipv4Address src,
                            std::span<const std::uint8_t> payload, SimTime now) {
    on_segment(tcp, src, payload, now);
  });
}

TcpBulkSender::~TcpBulkSender() {
  rto_timer_.cancel();
  demux_.unbind(port_);
}

void TcpBulkSender::start() {
  if (state_ != State::kClosed) return;
  state_ = State::kSynSent;
  started_at_ = demux_.host().loop().now();
  TcpHeader syn;
  syn.src_port = port_;
  syn.dst_port = remote_.port;
  syn.flag_syn = true;
  syn.seq = iss_;
  demux_.host().tcp_send(syn, remote_.ip, {});
  ++stats_.segments_sent;
  arm_rto();
}

void TcpBulkSender::record_cwnd(SimTime now) {
  cwnd_trace_.emplace_back(now.to_seconds(), cwnd_segments());
}

void TcpBulkSender::on_segment(const TcpHeader& tcp, Ipv4Address src,
                               std::span<const std::uint8_t>, SimTime now) {
  if (src != remote_.ip || tcp.src_port != remote_.port || !tcp.flag_ack) return;
  rwnd_ = tcp.window;

  if (state_ == State::kSynSent) {
    if (!tcp.flag_syn || tcp.ack != iss_ + 1) return;
    state_ = State::kEstablished;
    rto_timer_.cancel();
    rto_ = config_.initial_rto;
    if (total_bytes_ == 0) {
      send_fin();
      return;
    }
    try_send(now);
    return;
  }

  if (state_ == State::kFinSent) {
    // FIN consumes the sequence number after the last data byte.
    if (tcp.ack >= iss_ + 2 + total_bytes_) {
      state_ = State::kDone;
      finished_at_ = now;
      rto_timer_.cancel();
    }
    return;
  }
  if (state_ != State::kEstablished) return;

  // Stream offset acknowledged (bytes of data, excluding SYN).
  const std::uint64_t acked = tcp.ack - (iss_ + 1);
  if (acked > snd_una_) {
    on_new_ack(acked, now);
  } else if (acked == snd_una_ && flight() > 0) {
    ++dupacks_;
    if (dupacks_ == config_.dupack_threshold) {
      // Fast retransmit (NewReno-lite: halve and resend the hole).
      ssthresh_ = std::max<std::uint64_t>(flight() / 2, 2 * config_.mss);
      cwnd_ = ssthresh_;
      ++stats_.fast_retransmits;
      send_segment(snd_una_, /*retransmission=*/true, now);
      record_cwnd(now);
    }
  }
}

void TcpBulkSender::on_new_ack(std::uint64_t acked_offset, SimTime now) {
  // RTT sample (Karn's rule: only when the probe was never retransmitted).
  if (rtt_probe_offset_ && acked_offset > *rtt_probe_offset_) {
    const Duration sample = now - rtt_probe_sent_;
    if (!srtt_) {
      srtt_ = sample;
      rttvar_ = Duration(sample.ns() / 2);
    } else {
      const Duration err = Duration(std::abs((sample - *srtt_).ns()));
      rttvar_ = Duration((3 * rttvar_.ns() + err.ns()) / 4);
      srtt_ = Duration((7 * srtt_->ns() + sample.ns()) / 8);
    }
    rto_ = std::clamp(Duration(srtt_->ns() + 4 * rttvar_.ns()), config_.min_rto,
                      config_.max_rto);
    rtt_probe_offset_.reset();
  }

  const std::uint64_t newly_acked = acked_offset - snd_una_;
  snd_una_ = acked_offset;
  stats_.bytes_acked = snd_una_;
  dupacks_ = 0;

  // Congestion window growth.
  if (cwnd_ < ssthresh_) {
    cwnd_ += std::min<std::uint64_t>(newly_acked, config_.mss);  // slow start
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += std::max<std::uint64_t>(1, config_.mss * config_.mss / cwnd_);
  }
  record_cwnd(now);

  if (snd_una_ >= total_bytes_) {
    rto_timer_.cancel();
    send_fin();
    return;
  }
  // Restart the timer for the remaining flight.
  rto_timer_.cancel();
  if (flight() > 0) arm_rto();
  try_send(now);
}

void TcpBulkSender::try_send(SimTime now) {
  const std::uint64_t window = std::min<std::uint64_t>(cwnd_, rwnd_);
  while (snd_nxt_ < total_bytes_ && flight() + config_.mss <= window) {
    send_segment(snd_nxt_, /*retransmission=*/false, now);
  }
}

void TcpBulkSender::send_segment(std::uint64_t offset, bool retransmission, SimTime now) {
  const std::size_t len = static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.mss, total_bytes_ - offset));
  TcpHeader seg;
  seg.src_port = port_;
  seg.dst_port = remote_.port;
  seg.flag_ack = true;
  seg.seq = iss_ + 1 + static_cast<std::uint32_t>(offset);
  seg.ack = 1;  // we carry no reverse data; peer ISN+1 is implied
  // Synthetic payload bytes.
  const std::vector<std::uint8_t> payload(len,
                                          static_cast<std::uint8_t>(offset & 0xFF));
  demux_.host().tcp_send(seg, remote_.ip, payload);
  ++stats_.segments_sent;
  if (retransmission) {
    ++stats_.retransmissions;
    // Karn: a retransmitted range invalidates the outstanding probe.
    rtt_probe_offset_.reset();
  } else {
    if (!rtt_probe_offset_) {
      rtt_probe_offset_ = offset;
      rtt_probe_sent_ = now;
    }
    if (offset == snd_nxt_) snd_nxt_ = offset + len;
  }
  if (!rto_timer_.pending()) arm_rto();
}

void TcpBulkSender::send_fin() {
  state_ = State::kFinSent;
  TcpHeader fin;
  fin.src_port = port_;
  fin.dst_port = remote_.port;
  fin.flag_fin = true;
  fin.flag_ack = true;
  fin.seq = iss_ + 1 + static_cast<std::uint32_t>(total_bytes_);
  fin.ack = 1;
  demux_.host().tcp_send(fin, remote_.ip, {});
  ++stats_.segments_sent;
  arm_rto();
}

void TcpBulkSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = demux_.host().loop().schedule_in(rto_, [this] { on_rto(); });
}

void TcpBulkSender::on_rto() {
  if (state_ == State::kDone) return;
  ++stats_.timeouts;
  const SimTime now = demux_.host().loop().now();

  if (state_ == State::kSynSent) {
    TcpHeader syn;
    syn.src_port = port_;
    syn.dst_port = remote_.port;
    syn.flag_syn = true;
    syn.seq = iss_;
    demux_.host().tcp_send(syn, remote_.ip, {});
    ++stats_.segments_sent;
    ++stats_.retransmissions;
  } else if (state_ == State::kFinSent) {
    --stats_.segments_sent;  // send_fin re-counts
    send_fin();
    ++stats_.retransmissions;
  } else {
    // Timeout recovery: multiplicative decrease, go-back-N from snd_una_.
    ssthresh_ = std::max<std::uint64_t>(flight() / 2, 2 * config_.mss);
    cwnd_ = config_.mss;
    dupacks_ = 0;
    snd_nxt_ = snd_una_;
    send_segment(snd_una_, /*retransmission=*/true, now);
    // Go-back-N: the retransmitted segment re-advances snd_nxt_.
    snd_nxt_ = std::max(snd_nxt_, snd_una_ + std::min<std::uint64_t>(
                                                 config_.mss, total_bytes_ - snd_una_));
    record_cwnd(now);
  }
  rto_ = std::min(Duration(rto_.ns() * 2), config_.max_rto);  // backoff
  arm_rto();
}

double TcpBulkSender::mean_throughput_kbps() const {
  if (!started_at_ || !finished_at_ || *finished_at_ <= *started_at_) return 0.0;
  const double secs = (*finished_at_ - *started_at_).to_seconds();
  return static_cast<double>(total_bytes_) * 8.0 / secs / 1000.0;
}

}  // namespace streamlab
