#include "obs/export.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>

#include "util/strings.hpp"

namespace streamlab::obs {
namespace {

// Sim nanoseconds -> trace-event microseconds (the unit Chrome/Perfetto
// expect in "ts").
std::string ts_us(SimTime t) {
  return fmt_double(static_cast<double>(t.ns()) / 1e3, 3);
}

std::string ts_seconds(SimTime t) { return fmt_double(t.to_seconds(), 6); }

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const Obs& obs, std::ostream& out) {
  const Tracer& tracer = obs.tracer();

  // Pre-pass: which tracks appear, so each gets a thread_name metadata
  // record (tid = track id + 1; tid 0 is reserved for counter events).
  std::set<std::uint16_t> tracks;
  tracer.for_each([&](const TraceRecord& r) {
    if (r.kind != RecordKind::kCounter) tracks.insert(r.track);
  });

  // traceRetained/traceDropped surface ring truncation: a wrapped ring would
  // otherwise read as a complete timeline of the run.
  out << "{\"displayTimeUnit\":\"ms\",\"traceRetained\":" << tracer.size()
      << ",\"traceDropped\":" << tracer.dropped() << ",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (const std::uint16_t track : tracks) {
    sep();
    const std::string& name = tracer.string(track);
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (track + 1)
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(name.empty() ? "main" : name) << "\"}}";
  }

  tracer.for_each([&](const TraceRecord& r) {
    sep();
    switch (r.kind) {
      case RecordKind::kInstant:
        out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << (r.track + 1) << ",\"ts\":"
            << ts_us(r.time) << ",\"s\":\"t\",\"name\":\""
            << json_escape(tracer.string(r.name)) << "\",\"args\":{\"value\":"
            << fmt_double(r.value, 6) << "}}";
        break;
      case RecordKind::kSpanBegin:
        out << "{\"ph\":\"B\",\"pid\":1,\"tid\":" << (r.track + 1) << ",\"ts\":"
            << ts_us(r.time) << ",\"name\":\"" << json_escape(tracer.string(r.name))
            << "\"}";
        break;
      case RecordKind::kSpanEnd:
        out << "{\"ph\":\"E\",\"pid\":1,\"tid\":" << (r.track + 1) << ",\"ts\":"
            << ts_us(r.time) << ",\"name\":\"" << json_escape(tracer.string(r.name))
            << "\"}";
        break;
      case RecordKind::kCounter:
        out << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << ts_us(r.time)
            << ",\"name\":\"" << json_escape(tracer.string(r.name))
            << "\",\"args\":{\"value\":" << fmt_double(r.value, 6) << "}}";
        break;
    }
  });
  out << "\n]}\n";
}

void write_ndjson(const Obs& obs, std::ostream& out) {
  const Tracer& tracer = obs.tracer();
  out << "{\"header\":\"streamlab-trace-v1\",\"records\":" << tracer.size()
      << ",\"dropped\":" << tracer.dropped() << "}\n";
  tracer.for_each([&](const TraceRecord& r) {
    out << "{\"t\":" << ts_seconds(r.time) << ",\"kind\":\"" << to_string(r.kind)
        << "\",\"name\":\"" << json_escape(tracer.string(r.name)) << "\"";
    if (r.kind != RecordKind::kCounter)
      out << ",\"track\":\"" << json_escape(tracer.string(r.track)) << "\"";
    if (r.span_id != 0) out << ",\"span\":" << r.span_id;
    out << ",\"value\":" << fmt_double(r.value, 6) << "}\n";
  });
}

void write_timeseries_csv(const Obs& obs, std::ostream& out) {
  const Tracer& tracer = obs.tracer();
  out << "time_s,metric,value\n";
  tracer.for_each([&](const TraceRecord& r) {
    if (r.kind != RecordKind::kCounter) return;
    out << ts_seconds(r.time) << "," << tracer.string(r.name) << ","
        << fmt_double(r.value, 6) << "\n";
  });
}

void write_metrics_csv(const Obs& obs, std::ostream& out) {
  out << "kind,name,arg,value\n";
  for (const auto& [name, value] : obs.registry().counters())
    out << "counter," << name << ",," << value << "\n";
  for (const auto& [name, value] : obs.registry().gauges())
    out << "gauge," << name << ",," << value << "\n";
  for (const auto& [name, data] : obs.registry().histograms()) {
    for (std::size_t i = 0; i + 1 < data->buckets.size(); ++i) {
      if (data->buckets[i] == 0) continue;
      out << "histogram_bucket," << name << ","
          << fmt_double(static_cast<double>(i) * data->bucket_width, 6) << ","
          << data->buckets[i] << "\n";
    }
    if (data->buckets.back() != 0)
      out << "histogram_bucket," << name << ",overflow," << data->buckets.back()
          << "\n";
    out << "histogram_total," << name << ",," << data->total << "\n";
    out << "histogram_sum," << name << ",," << fmt_double(data->sum, 6) << "\n";
  }
  out << "trace,records,," << obs.tracer().size() << "\n";
  out << "trace,dropped,," << obs.tracer().dropped() << "\n";
}

int export_trace(const Obs& obs, const std::string& directory) {
  std::filesystem::create_directories(directory);
  int written = 0;
  const auto write = [&](const std::string& name, auto writer) {
    std::ofstream out(directory + "/" + name);
    if (!out) return;
    writer(obs, out);
    if (out) ++written;
  };
  write("trace.json", write_chrome_trace);
  write("trace.ndjson", write_ndjson);
  write("timeseries.csv", write_timeseries_csv);
  write("metrics.csv", write_metrics_csv);
  return written;
}

}  // namespace streamlab::obs
