// Campaign telemetry: per-trial metric snapshots and their cross-trial fold.
//
// Lifecycle: each campaign trial runs with its own Obs; when the trial
// finishes, its Registry is collapsed into a TrialTelemetry — a compact,
// name-keyed record of scalar samples (→ QuantileSketch), integer tallies
// (→ LogHistogram) and summed counters. The record rides through
// TrialOutcome and the NDJSON resume manifest, and the coordinator folds it
// into a CampaignTelemetry in trial-index commit order. Because the
// aggregates merge exactly (see aggregate.hpp), the folded state — and its
// serialized bytes — are identical at any worker count, and a future
// distributed coordinator can merge() whole CampaignTelemetry blocks from
// remote workers under the same contract.
//
// Registry names are rolled up into stable metric *families* before the
// fold: per-instance name segments ("link.chain0-1.delivered",
// "player.wm.play_attempts") collapse to first + last segment
// ("link.delivered", "player.play_attempts") so campaigns aggregate across
// topologies with different instance labels.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"

namespace streamlab::obs {

/// One trial's metric snapshot. Cheap to copy, deterministic to serialize.
class TrialTelemetry {
 public:
  /// Scalar distribution sample (goodput, stall ms, ...): one value per
  /// trial, folded into a QuantileSketch across trials.
  void set_sample(std::string_view name, double value);
  /// Integer magnitude (events, packets lost): folded into a LogHistogram.
  void set_tally(std::string_view name, std::uint64_t value);
  /// Additive count: summed across trials.
  void add_counter(std::string_view name, std::uint64_t value);

  std::optional<double> sample(std::string_view name) const;
  std::optional<std::uint64_t> tally(std::string_view name) const;
  std::uint64_t counter(std::string_view name) const;

  const std::map<std::string, double, std::less<>>& samples() const { return samples_; }
  const std::map<std::string, std::uint64_t, std::less<>>& tallies() const { return tallies_; }
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const { return counters_; }
  bool empty() const { return samples_.empty() && tallies_.empty() && counters_.empty(); }

  /// "tt1|s:name=v,...|t:name=v,...|c:name=v,..." — single line, sorted
  /// names, no JSON metacharacters, so it embeds as a manifest string field.
  std::string serialize() const;
  static std::optional<TrialTelemetry> parse(std::string_view text);

  /// Collapses a trial Registry: counters summed per family (zero-valued
  /// counters dropped), histograms contribute `<family>` mean sample +
  /// `<family>.samples` counter. Gauges are point-in-time residue and are
  /// not aggregated.
  static TrialTelemetry from_registry(const Registry& registry);

  /// Rollup rule: names with three or more '.'-separated segments keep only
  /// the first and last segment; shorter names pass through.
  static std::string family(std::string_view name);

 private:
  std::map<std::string, double, std::less<>> samples_;
  std::map<std::string, std::uint64_t, std::less<>> tallies_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// The coordinator-side fold of many TrialTelemetry records.
class CampaignTelemetry {
 public:
  explicit CampaignTelemetry(double sketch_accuracy = 0.01) : accuracy_(sketch_accuracy) {}

  /// Folds one trial's snapshot. Called in trial-index commit order.
  void fold(const TrialTelemetry& trial);
  /// Coordinator-side health count (trials.completed, trials.quarantined).
  void add_counter(std::string_view name, std::uint64_t n = 1);
  /// Associative block merge for distributed coordination.
  void merge(const CampaignTelemetry& other);

  std::uint64_t trials_folded() const { return trials_; }
  std::uint64_t counter(std::string_view name) const;
  const QuantileSketch* sketch(std::string_view name) const;
  const LogHistogram* tally(std::string_view name) const;

  /// Full deterministic text block — the byte-identity witness: equal
  /// campaigns produce equal bytes regardless of worker count.
  std::string serialize() const;
  /// Human-readable distribution digest (p50/p95 per sketch), deterministic.
  std::string summary() const;

 private:
  double accuracy_;
  std::uint64_t trials_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, QuantileSketch, std::less<>> sketches_;
  std::map<std::string, LogHistogram, std::less<>> tallies_;
};

}  // namespace streamlab::obs
