#include "obs/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace streamlab::obs {
namespace {

std::string fmt_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_g6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_double(std::string_view text, double& out) {
  char buf[64];
  if (text.empty() || text.size() >= sizeof(buf)) return false;
  for (std::size_t i = 0; i < text.size(); ++i) buf[i] = text[i];
  buf[text.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + text.size();
}

/// Walks "name=value,..." entries of one serialized section.
template <typename Fn>
bool for_each_entry(std::string_view section, Fn&& fn) {
  while (!section.empty()) {
    const std::size_t comma = section.find(',');
    std::string_view entry = section.substr(0, comma);
    section = comma == std::string_view::npos ? std::string_view{} : section.substr(comma + 1);
    const std::size_t eq = entry.rfind('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    if (!fn(entry.substr(0, eq), entry.substr(eq + 1))) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// TrialTelemetry

void TrialTelemetry::set_sample(std::string_view name, double value) {
  samples_.insert_or_assign(std::string(name), value);
}

void TrialTelemetry::set_tally(std::string_view name, std::uint64_t value) {
  tallies_.insert_or_assign(std::string(name), value);
}

void TrialTelemetry::add_counter(std::string_view name, std::uint64_t value) {
  if (value == 0) return;
  counters_[std::string(name)] += value;
}

std::optional<double> TrialTelemetry::sample(std::string_view name) const {
  const auto it = samples_.find(name);
  return it == samples_.end() ? std::nullopt : std::optional<double>(it->second);
}

std::optional<std::uint64_t> TrialTelemetry::tally(std::string_view name) const {
  const auto it = tallies_.find(name);
  return it == tallies_.end() ? std::nullopt : std::optional<std::uint64_t>(it->second);
}

std::uint64_t TrialTelemetry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string TrialTelemetry::serialize() const {
  std::string out = "tt1|s:";
  bool first = true;
  for (const auto& [name, v] : samples_) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += '=';
    out += fmt_g17(v);
  }
  out += "|t:";
  first = true;
  for (const auto& [name, v] : tallies_) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += '=';
    out += std::to_string(v);
  }
  out += "|c:";
  first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += '=';
    out += std::to_string(v);
  }
  return out;
}

std::optional<TrialTelemetry> TrialTelemetry::parse(std::string_view text) {
  if (text.substr(0, 6) != "tt1|s:") return std::nullopt;
  text.remove_prefix(6);
  const std::size_t t_at = text.find("|t:");
  if (t_at == std::string_view::npos) return std::nullopt;
  const std::size_t c_at = text.find("|c:", t_at + 3);
  if (c_at == std::string_view::npos) return std::nullopt;

  TrialTelemetry out;
  const bool ok =
      for_each_entry(text.substr(0, t_at),
                     [&](std::string_view name, std::string_view value) {
                       double v = 0.0;
                       if (!parse_double(value, v)) return false;
                       out.set_sample(name, v);
                       return true;
                     }) &&
      for_each_entry(text.substr(t_at + 3, c_at - t_at - 3),
                     [&](std::string_view name, std::string_view value) {
                       std::uint64_t v = 0;
                       if (!parse_u64(value, v)) return false;
                       out.set_tally(name, v);
                       return true;
                     }) &&
      for_each_entry(text.substr(c_at + 3), [&](std::string_view name, std::string_view value) {
        std::uint64_t v = 0;
        if (!parse_u64(value, v)) return false;
        out.counters_[std::string(name)] = v;
        return true;
      });
  if (!ok) return std::nullopt;
  return out;
}

TrialTelemetry TrialTelemetry::from_registry(const Registry& registry) {
  TrialTelemetry out;
  registry.visit_counters([&out](const std::string& name, std::uint64_t value) {
    if (value == 0) return;  // add_counter drops zeros anyway; skip the rollup
    out.add_counter(family(name), value);
  });
  // Histograms in the same family (e.g. both players' repair_latency_ms)
  // combine sum/total before the per-trial mean is taken.
  std::map<std::string, std::pair<double, std::uint64_t>, std::less<>> hist;
  registry.visit_histograms([&hist](const std::string& name, const HistogramData& data) {
    if (data.total == 0) return;
    auto& acc = hist[family(name)];
    acc.first += data.sum;
    acc.second += data.total;
  });
  for (const auto& [fam, acc] : hist) {
    out.set_sample(fam, acc.first / static_cast<double>(acc.second));
    out.add_counter(fam + ".samples", acc.second);
  }
  return out;
}

std::string TrialTelemetry::family(std::string_view name) {
  const std::size_t first = name.find('.');
  if (first == std::string_view::npos) return std::string(name);
  const std::size_t last = name.rfind('.');
  if (last == first) return std::string(name);
  std::string out(name.substr(0, first));
  out += '.';
  out += name.substr(last + 1);
  return out;
}

// ---------------------------------------------------------------------------
// CampaignTelemetry

void CampaignTelemetry::fold(const TrialTelemetry& trial) {
  ++trials_;
  for (const auto& [name, v] : trial.samples()) {
    sketches_.try_emplace(name, QuantileSketch(accuracy_)).first->second.record(v);
  }
  for (const auto& [name, v] : trial.tallies()) {
    tallies_.try_emplace(name, LogHistogram()).first->second.record(v);
  }
  for (const auto& [name, v] : trial.counters()) counters_[name] += v;
}

void CampaignTelemetry::add_counter(std::string_view name, std::uint64_t n) {
  if (n == 0) return;
  counters_[std::string(name)] += n;
}

void CampaignTelemetry::merge(const CampaignTelemetry& other) {
  trials_ += other.trials_;
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, sketch] : other.sketches_) {
    const auto [it, inserted] = sketches_.try_emplace(name, sketch);
    if (!inserted) it->second.merge(sketch);
  }
  for (const auto& [name, hist] : other.tallies_) {
    const auto [it, inserted] = tallies_.try_emplace(name, hist);
    if (!inserted) it->second.merge(hist);
  }
}

std::uint64_t CampaignTelemetry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const QuantileSketch* CampaignTelemetry::sketch(std::string_view name) const {
  const auto it = sketches_.find(name);
  return it == sketches_.end() ? nullptr : &it->second;
}

const LogHistogram* CampaignTelemetry::tally(std::string_view name) const {
  const auto it = tallies_.find(name);
  return it == tallies_.end() ? nullptr : &it->second;
}

std::string CampaignTelemetry::serialize() const {
  std::string out = "telemetry-v1\ntrials " + std::to_string(trials_) + "\n";
  for (const auto& [name, v] : counters_) {
    out += "counter " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, sketch] : sketches_) {
    out += "sketch " + name + " " + sketch.serialize() + "\n";
  }
  for (const auto& [name, hist] : tallies_) {
    out += "tally " + name + " " + hist.serialize() + "\n";
  }
  return out;
}

std::string CampaignTelemetry::summary() const {
  std::string out;
  for (const auto& [name, sketch] : sketches_) {
    out += name + ": p50=" + fmt_g6(sketch.quantile(0.5)) + " p95=" + fmt_g6(sketch.quantile(0.95)) +
           " n=" + std::to_string(sketch.count()) + "\n";
  }
  for (const auto& [name, hist] : tallies_) {
    out += name + ": p50=" + fmt_g6(hist.quantile(0.5)) + " max=" + std::to_string(hist.max()) +
           " n=" + std::to_string(hist.count()) + "\n";
  }
  return out;
}

}  // namespace streamlab::obs
