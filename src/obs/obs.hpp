// Observability context: one Registry + one Tracer per experiment run.
//
// An Obs is attached to the run's EventLoop (Network::attach_observer wires
// a whole topology at once); every component that can reach the loop can
// then reach the run's metrics and trace. Nothing in the simulation owns an
// Obs — runs that don't care pass nullptr and pay a single null-pointer
// branch per instrumentation site (see bench_micro's BM_EventLoopObs*
// cases, and BENCH_OBS.json for the measured overhead).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace streamlab::obs {

/// Coarse event taxonomy for the loop's per-category callback counts.
/// Schedule sites tag their events; untagged events count as kGeneric.
enum class EventCategory : std::uint8_t {
  kGeneric = 0,
  kLink,     ///< serialization / propagation / delivery events
  kPlayout,  ///< frame decode deadlines and stall polls
  kControl,  ///< PLAY retries, watchdogs, receiver reports
  kFault,    ///< impairment apply/clear events
  kTimer,    ///< application batch & pacing timers
  kCount,
};

const char* to_string(EventCategory category);

class Obs {
 public:
  struct Config {
    bool metrics = true;
    bool tracing = true;
    std::size_t trace_capacity = std::size_t{1} << 18;
    /// Rate limit for trace counter samples (queue depths etc.).
    Duration sample_interval = Duration::millis(100);
  };

  Obs() : Obs(Config{}) {}
  explicit Obs(Config config);
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  bool tracing() const { return tracer_.enabled(); }

  /// Returns the context to its just-constructed state without discarding
  /// interned names, metric storage or handed-out handles. The campaign
  /// runner keeps one Obs per worker and resets it between trials — the
  /// per-trial cost becomes a few memset-sized loops instead of rebuilding
  /// every registry map and intern table from scratch.
  void reset_for_reuse() {
    registry_.reset_values();
    tracer_.reset_keep_interned();
  }

  /// EventLoop hook, called once per fired event: bumps the total and
  /// per-category counters and samples the live queue depth into the trace
  /// at the configured cadence.
  void on_loop_event(EventCategory category, std::size_t queue_depth, SimTime now) {
    events_fired_.add();
    fired_by_category_[static_cast<std::size_t>(category)].add();
    if (tracer_.enabled())
      tracer_.sample(queue_depth_name_, now, static_cast<double>(queue_depth));
  }

 private:
  Registry registry_;
  Tracer tracer_;
  Counter events_fired_;
  Counter fired_by_category_[static_cast<std::size_t>(EventCategory::kCount)];
  std::uint16_t queue_depth_name_ = 0;
};

}  // namespace streamlab::obs
