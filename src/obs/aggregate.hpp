// Mergeable aggregates: the campaign-scale counterpart of the fixed-bucket
// Histogram in metrics.hpp.
//
// A campaign folds one metric snapshot per trial at the coordinator, in
// trial-index commit order — the same determinism contract as the resume
// manifest. Everything here is therefore built from integer bucket counts
// only: merging two aggregates adds counts bucket-wise, which is exactly
// associative and commutative (no floating-point accumulation order can
// leak into the result), so the folded state is byte-identical at any
// worker count and under any merge tree a distributed coordinator may use.
//
// Two shapes:
//  - LogHistogram: dense log-linear buckets over uint64 values (HDR-style:
//    exact below 2^bits, then `2^bits` sub-buckets per octave, ~500 buckets
//    for the full 64-bit range). For wide-range integer magnitudes — events
//    per trial, packets lost, queue depths.
//  - QuantileSketch: sparse DDSketch-style buckets with a relative-accuracy
//    guarantee: quantile(q) is within `relative_accuracy` of the true value
//    (rank-preserving, per the gamma-indexed bucket bound). For continuous
//    metrics — goodput, stall milliseconds, recovery ratios.
//
// Both serialize to a compact deterministic text form (sorted buckets) that
// doubles as the byte-identity witness in tests and the wire format in the
// campaign manifest.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace streamlab::obs {

class LogHistogram {
 public:
  /// `sub_bucket_bits` log2 of the sub-buckets per octave; relative bucket
  /// width (hence worst-case quantile error) is 2^-bits.
  explicit LogHistogram(unsigned sub_bucket_bits = 3);

  void record(std::uint64_t value) { record_n(value, 1); }
  void record_n(std::uint64_t value, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded value; 0 when empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }
  unsigned sub_bucket_bits() const { return bits_; }

  /// Value at quantile q in [0,1] (bucket midpoint, clamped to [min,max]);
  /// 0 when empty.
  double quantile(double q) const;

  /// Adds `other`'s counts into this aggregate. Associative and commutative.
  /// Throws std::invalid_argument when the bucket geometries differ.
  void merge(const LogHistogram& other);

  /// "logh1;bits=B;n=N;sum=S;min=M;max=X;b=idx:count,..." — deterministic
  /// (buckets ascending, zero buckets omitted).
  std::string serialize() const;
  static std::optional<LogHistogram> parse(std::string_view text);

  static std::size_t bucket_index(std::uint64_t value, unsigned bits);
  /// Smallest value mapping to bucket `index`.
  static std::uint64_t bucket_floor(std::size_t index, unsigned bits);

 private:
  unsigned bits_;
  std::vector<std::uint64_t> counts_;  ///< grown lazily to the top bucket
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class QuantileSketch {
 public:
  /// quantile() is within `relative_accuracy` (alpha) of the true value.
  explicit QuantileSketch(double relative_accuracy = 0.01);

  void record(double value) { record_n(value, 1); }
  void record_n(double value, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double relative_accuracy() const { return alpha_; }

  /// Value at quantile q in [0,1]; 0 when empty. Values below the minimum
  /// trackable magnitude (1e-9) report as 0.
  double quantile(double q) const;

  /// Adds `other`'s bucket counts. Associative and commutative. Throws
  /// std::invalid_argument when the accuracies differ.
  void merge(const QuantileSketch& other);

  /// "qsk1;a=A;n=N;z=Z;b=key:count,..." — deterministic (keys ascending).
  std::string serialize() const;
  static std::optional<QuantileSketch> parse(std::string_view text);

 private:
  std::int32_t key_of(double value) const;
  double value_of(std::int32_t key) const;

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;  ///< values below the trackable minimum
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace streamlab::obs
