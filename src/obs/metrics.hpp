// Metrics registry: named counters, gauges and fixed-bucket histograms with
// handle-based updates.
//
// The registry exists so hot paths never pay for name lookup: a component
// registers its metrics once (a map lookup, cold) and receives a handle that
// is a bare pointer into storage with stable addresses. An update through a
// handle is one predictable branch plus one add — and when the registry is
// disabled (or the component was never given one) the handle's slot is null
// and the update is just the branch. Defining STREAMLAB_OBS_DISABLE removes
// even that at compile time.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace streamlab::obs {

#ifdef STREAMLAB_OBS_DISABLE
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

/// Monotonically increasing count. Default-constructed handles are inert.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) {
    if constexpr (kObsCompiledIn) {
      if (slot_ != nullptr) *slot_ += n;
    } else {
      (void)n;
    }
  }
  std::uint64_t value() const { return slot_ ? *slot_ : 0; }
  bool live() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Point-in-time signed level (queue depth, scaling level, window size).
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) {
    if constexpr (kObsCompiledIn) {
      if (slot_ != nullptr) *slot_ = v;
    } else {
      (void)v;
    }
  }
  void add(std::int64_t d) {
    if constexpr (kObsCompiledIn) {
      if (slot_ != nullptr) *slot_ += d;
    } else {
      (void)d;
    }
  }
  std::int64_t value() const { return slot_ ? *slot_ : 0; }
  bool live() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::int64_t* slot) : slot_(slot) {}
  std::int64_t* slot_ = nullptr;
};

/// Fixed-width-bucket histogram data. `buckets.back()` is the overflow
/// bucket; values below zero clamp into bucket 0.
struct HistogramData {
  double bucket_width = 1.0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t total = 0;
  double sum = 0.0;
};

class Histogram {
 public:
  Histogram() = default;

  void record(double v) {
    if constexpr (kObsCompiledIn) {
      if (data_ == nullptr) return;
      std::size_t idx = 0;
      if (v > 0.0) {
        const double scaled = v / data_->bucket_width;
        idx = scaled >= static_cast<double>(data_->buckets.size() - 1)
                  ? data_->buckets.size() - 1
                  : static_cast<std::size_t>(scaled);
      }
      ++data_->buckets[idx];
      ++data_->total;
      data_->sum += v;
    } else {
      (void)v;
    }
  }
  const HistogramData* data() const { return data_; }
  bool live() const { return data_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

/// Owns every metric of one run. Registering the same name twice returns a
/// handle onto the same storage, so independent components may share a
/// metric without coordination.
class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled && kObsCompiledIn) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bucket_count` regular buckets of `bucket_width` plus one overflow
  /// bucket. Re-registering an existing histogram keeps its original shape.
  Histogram histogram(std::string_view name, double bucket_width,
                      std::size_t bucket_count);

  // --- Snapshot accessors (export / tests; cold) ---
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, std::int64_t>> gauges() const;
  std::vector<std::pair<std::string, const HistogramData*>> histograms() const;

  // --- Copy-free visitors (per-trial snapshot path; names stay borrowed) ---
  template <typename Fn>
  void visit_counters(Fn&& fn) const {
    for (const auto& [name, idx] : counter_index_) fn(name, counter_values_[idx]);
  }
  template <typename Fn>
  void visit_histograms(Fn&& fn) const {
    for (const auto& [name, idx] : histogram_index_) fn(name, histogram_values_[idx]);
  }

  /// Zeroes every value while keeping names, storage and handed-out handles
  /// valid. Re-registering after a reset is a map hit, not an allocation —
  /// the campaign runner reuses one registry across trials so per-trial
  /// metric setup does not tax the hot loop.
  void reset_values();

 private:
  bool enabled_;
  // Values live in deques: push_back never moves existing elements, so the
  // raw pointers handed out in handles stay valid for the registry's life.
  std::map<std::string, std::size_t, std::less<>> counter_index_;
  std::deque<std::uint64_t> counter_values_;
  std::map<std::string, std::size_t, std::less<>> gauge_index_;
  std::deque<std::int64_t> gauge_values_;
  std::map<std::string, std::size_t, std::less<>> histogram_index_;
  std::deque<HistogramData> histogram_values_;
};

}  // namespace streamlab::obs
