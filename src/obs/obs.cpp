#include "obs/obs.hpp"

#include <string>

namespace streamlab::obs {

const char* to_string(EventCategory category) {
  switch (category) {
    case EventCategory::kGeneric: return "generic";
    case EventCategory::kLink: return "link";
    case EventCategory::kPlayout: return "playout";
    case EventCategory::kControl: return "control";
    case EventCategory::kFault: return "fault";
    case EventCategory::kTimer: return "timer";
    case EventCategory::kCount: break;
  }
  return "unknown";
}

Obs::Obs(Config config)
    : registry_(config.metrics),
      tracer_(Tracer::Config{config.tracing, config.trace_capacity,
                             config.sample_interval}) {
  events_fired_ = registry_.counter("loop.events_fired");
  for (std::size_t i = 0; i < static_cast<std::size_t>(EventCategory::kCount); ++i)
    fired_by_category_[i] = registry_.counter(
        std::string("loop.fired.") + to_string(static_cast<EventCategory>(i)));
  queue_depth_name_ = tracer_.intern("loop.queue_depth");
  tracer_.set_dropped_counter(registry_.counter("trace.records_dropped"));
}

}  // namespace streamlab::obs
