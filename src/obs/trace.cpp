#include "obs/trace.hpp"

#include <algorithm>
#include <limits>

namespace streamlab::obs {

const char* to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::kInstant: return "instant";
    case RecordKind::kSpanBegin: return "span-begin";
    case RecordKind::kSpanEnd: return "span-end";
    case RecordKind::kCounter: return "counter";
  }
  return "unknown";
}

Tracer::Tracer(Config config)
    : enabled_(config.enabled && kObsCompiledIn),
      capacity_(config.capacity > 0 ? config.capacity : 1),
      sample_interval_(config.sample_interval) {
  strings_.emplace_back();  // id 0 = empty string
  last_sample_.push_back(kNeverSampled);
}

std::uint16_t Tracer::intern(std::string_view s) {
  if (s.empty()) return 0;
  const auto it = intern_.find(s);
  if (it != intern_.end()) return it->second;
  if (strings_.size() >= std::numeric_limits<std::uint16_t>::max()) return 0;
  const auto id = static_cast<std::uint16_t>(strings_.size());
  strings_.emplace_back(s);
  last_sample_.push_back(kNeverSampled);
  intern_.emplace(std::string(s), id);
  return id;
}

void Tracer::reset_keep_interned() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  next_span_id_ = 1;
  open_spans_.clear();
  std::fill(last_sample_.begin(), last_sample_.end(), kNeverSampled);
}

void Tracer::push(const TraceRecord& rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  ring_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  dropped_counter_.add();
}

void Tracer::instant(std::uint16_t name, std::uint16_t track, SimTime now,
                     double value) {
  if (!enabled_) return;
  push(TraceRecord{now, RecordKind::kInstant, name, track, 0, value});
}

std::uint64_t Tracer::begin_span(std::uint16_t name, std::uint16_t track, SimTime now) {
  if (!enabled_) return 0;
  const std::uint64_t id = next_span_id_++;
  open_spans_.emplace(id, OpenSpan{name, track});
  push(TraceRecord{now, RecordKind::kSpanBegin, name, track, id, 0.0});
  return id;
}

void Tracer::end_span(std::uint64_t span_id, SimTime now) {
  if (!enabled_ || span_id == 0) return;
  const auto it = open_spans_.find(span_id);
  if (it == open_spans_.end()) return;
  push(TraceRecord{now, RecordKind::kSpanEnd, it->second.name, it->second.track,
                   span_id, 0.0});
  open_spans_.erase(it);
}

void Tracer::sample_admit(std::uint16_t name, SimTime now, double value) {
  last_sample_[name] = now;
  push(TraceRecord{now, RecordKind::kCounter, name, 0, 0, value});
}

void Tracer::sample_always(std::uint16_t name, SimTime now, double value) {
  if (!enabled_) return;
  last_sample_[name] = now;
  push(TraceRecord{now, RecordKind::kCounter, name, 0, 0, value});
}

void Tracer::for_each(const std::function<void(const TraceRecord&)>& fn) const {
  if (ring_.size() < capacity_) {
    for (const TraceRecord& r : ring_) fn(r);
    return;
  }
  // Full ring: head_ is the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    fn(ring_[(head_ + i) % capacity_]);
}

std::vector<TraceRecord> Tracer::last(std::size_t k) const {
  std::vector<TraceRecord> out;
  const std::size_t total = ring_.size();
  const std::size_t take = total < k ? total : k;
  out.reserve(take);
  std::size_t skip = total - take;
  for_each([&](const TraceRecord& r) {
    if (skip > 0) {
      --skip;
      return;
    }
    out.push_back(r);
  });
  return out;
}

}  // namespace streamlab::obs
