// Sim-time tracer: a bounded ring buffer of structured timeline records.
//
// Three record shapes cover the timelines the turbulence experiments need:
// instant events (a PLAY retry, a watchdog firing), duration spans (a fault
// episode, a rebuffer stall) and counter samples (queue occupancy, goodput).
// Records are 32 bytes — names and tracks are interned to 16-bit ids — and
// recording is an array write, so full tracing stays cheap enough to leave
// on for whole scenario runs. When the buffer fills, the oldest records are
// overwritten and counted in dropped(), keeping memory bounded on runs of
// any length. Export formats live in obs/export.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace streamlab::obs {

enum class RecordKind : std::uint8_t {
  kInstant,      ///< point event; `value` is a free argument
  kSpanBegin,    ///< start of a duration span (`span_id` pairs it)
  kSpanEnd,      ///< end of a duration span
  kCounter,      ///< sampled counter value at `time`
};

const char* to_string(RecordKind kind);

struct TraceRecord {
  SimTime time;
  RecordKind kind = RecordKind::kInstant;
  std::uint16_t name = 0;   ///< interned string id
  std::uint16_t track = 0;  ///< interned lane id (a "thread" in trace viewers)
  std::uint64_t span_id = 0;
  double value = 0.0;
};

class Tracer {
 public:
  struct Config {
    bool enabled = true;
    /// Ring capacity in records (32 B each). 1<<18 = 8 MiB.
    std::size_t capacity = std::size_t{1} << 18;
    /// Rate limit for sample(): at most one record per metric name per this
    /// much sim time. zero() records every sample.
    Duration sample_interval = Duration::millis(100);
  };

  Tracer() : Tracer(Config{}) {}
  explicit Tracer(Config config);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Interns a string, returning a stable id. Id 0 is the empty string.
  /// The table caps at 65535 entries; overflow falls back to id 0.
  std::uint16_t intern(std::string_view s);
  const std::string& string(std::uint16_t id) const { return strings_[id]; }

  void instant(std::uint16_t name, std::uint16_t track, SimTime now,
               double value = 0.0);
  /// Opens a span; returns its id (0 when tracing is off). Spans on one
  /// track must close in LIFO order for trace viewers to nest them.
  std::uint64_t begin_span(std::uint16_t name, std::uint16_t track, SimTime now);
  /// Closes the span. Unknown / already-closed ids are ignored.
  void end_span(std::uint64_t span_id, SimTime now);

  /// Rate-limited counter sample (per `Config::sample_interval`, keyed by
  /// name). Returns whether a record was written. The reject path is inline
  /// — it runs once per loop event and per link operation, so a function
  /// call per rejected sample would tax every uninstrumented-feeling run.
  bool sample(std::uint16_t name, SimTime now, double value) {
    if (!enabled_) return false;
    const SimTime last = last_sample_[name];
    if (last != kNeverSampled && now - last < sample_interval_) return false;
    sample_admit(name, now, value);
    return true;
  }
  /// Unconditional counter sample.
  void sample_always(std::uint16_t name, SimTime now, double value);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  /// Mirrors each overwrite into a registry counter (trace.records_dropped)
  /// so a wrapped ring is visible in metrics, not just in trace exports.
  void set_dropped_counter(Counter counter) { dropped_counter_ = counter; }

  /// Empties the ring and resets span ids, rate-limiter windows and the
  /// dropped count while keeping the intern table (ids stay stable, repeat
  /// interning is a map hit). A reused tracer starts each trial in the same
  /// state a fresh one would, so trial output stays byte-deterministic.
  void reset_keep_interned();

  /// Visits retained records oldest-first.
  void for_each(const std::function<void(const TraceRecord&)>& fn) const;
  /// The most recent `k` retained records, oldest-first — the flight
  /// recorder's tail read.
  std::vector<TraceRecord> last(std::size_t k) const;
  std::size_t string_count() const { return strings_.size(); }

 private:
  struct OpenSpan {
    std::uint16_t name;
    std::uint16_t track;
  };

  static constexpr SimTime kNeverSampled =
      SimTime(std::numeric_limits<std::int64_t>::min());

  void push(const TraceRecord& rec);
  /// Slow path of sample(): stamps the window and writes the record.
  void sample_admit(std::uint16_t name, SimTime now, double value);

  bool enabled_;
  std::size_t capacity_;
  Duration sample_interval_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< next overwrite position once full
  std::uint64_t dropped_ = 0;
  Counter dropped_counter_;
  std::uint64_t next_span_id_ = 1;
  std::map<std::uint64_t, OpenSpan> open_spans_;
  std::vector<std::string> strings_;
  std::map<std::string, std::uint16_t, std::less<>> intern_;
  std::vector<SimTime> last_sample_;  ///< per name id, for rate limiting
};

}  // namespace streamlab::obs
