#include "obs/metrics.hpp"

#include <algorithm>

namespace streamlab::obs {

Counter Registry::counter(std::string_view name) {
  if (!enabled_) return Counter{};
  auto it = counter_index_.find(name);
  if (it == counter_index_.end()) {
    it = counter_index_.emplace(std::string(name), counter_values_.size()).first;
    counter_values_.push_back(0);
  }
  return Counter(&counter_values_[it->second]);
}

Gauge Registry::gauge(std::string_view name) {
  if (!enabled_) return Gauge{};
  auto it = gauge_index_.find(name);
  if (it == gauge_index_.end()) {
    it = gauge_index_.emplace(std::string(name), gauge_values_.size()).first;
    gauge_values_.push_back(0);
  }
  return Gauge(&gauge_values_[it->second]);
}

Histogram Registry::histogram(std::string_view name, double bucket_width,
                              std::size_t bucket_count) {
  if (!enabled_) return Histogram{};
  auto it = histogram_index_.find(name);
  if (it == histogram_index_.end()) {
    it = histogram_index_.emplace(std::string(name), histogram_values_.size()).first;
    HistogramData data;
    data.bucket_width = bucket_width > 0.0 ? bucket_width : 1.0;
    data.buckets.assign(bucket_count + 1, 0);  // +1 overflow
    histogram_values_.push_back(std::move(data));
  }
  return Histogram(&histogram_values_[it->second]);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counter_index_.size());
  for (const auto& [name, idx] : counter_index_)
    out.emplace_back(name, counter_values_[idx]);
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::gauges() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauge_index_.size());
  for (const auto& [name, idx] : gauge_index_)
    out.emplace_back(name, gauge_values_[idx]);
  return out;
}

void Registry::reset_values() {
  for (auto& v : counter_values_) v = 0;
  for (auto& v : gauge_values_) v = 0;
  for (auto& h : histogram_values_) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.total = 0;
    h.sum = 0.0;
  }
}

std::vector<std::pair<std::string, const HistogramData*>> Registry::histograms() const {
  std::vector<std::pair<std::string, const HistogramData*>> out;
  out.reserve(histogram_index_.size());
  for (const auto& [name, idx] : histogram_index_)
    out.emplace_back(name, &histogram_values_[idx]);
  return out;
}

}  // namespace streamlab::obs
