// Trace and metrics export.
//
// Three formats, all streamed to std::ostream so multi-million-record
// traces never materialise as one string:
//  - Chrome trace-event JSON (load in ui.perfetto.dev or chrome://tracing):
//    spans as B/E pairs, instants as "i", counter samples as "C", with
//    thread-name metadata so tracks are labelled.
//  - NDJSON: one self-describing JSON object per record, for ad-hoc jq /
//    pandas processing.
//  - Time-series CSV (time_s,metric,value): every counter sample in time
//    order — the format the paper-figure tooling already consumes.
// export_trace() writes all of them plus a final metrics snapshot CSV into
// a directory, alongside the core/export files of the same run.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"

namespace streamlab::obs {

/// Chrome trace-event JSON ("traceEvents" array form). Timestamps are sim
/// microseconds. Spans still open at export time are emitted as begins
/// without ends, which viewers render as running to the end of the trace.
void write_chrome_trace(const Obs& obs, std::ostream& out);

/// One JSON object per line: a header line carrying retained/dropped record
/// counts, then {"t":<s>,"kind":...,"name":...,...} per record.
void write_ndjson(const Obs& obs, std::ostream& out);

/// Counter samples only, long form: time_s,metric,value (time-ordered).
void write_timeseries_csv(const Obs& obs, std::ostream& out);

/// Final registry snapshot: kind,name,arg,value rows for every counter,
/// gauge and histogram bucket.
void write_metrics_csv(const Obs& obs, std::ostream& out);

/// Writes trace.json, trace.ndjson, timeseries.csv and metrics.csv into
/// `directory` (created if needed). Returns the number of files written.
int export_trace(const Obs& obs, const std::string& directory);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

}  // namespace streamlab::obs
