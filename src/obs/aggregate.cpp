#include "obs/aggregate.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace streamlab::obs {
namespace {

// Serialization helpers shared by both aggregates. The formats are
// line-internal (';'-separated key=value fields, ','-separated bucket
// lists) so a whole aggregate embeds in one manifest JSON string.

bool take_field(std::string_view& text, std::string_view key, std::string_view& value) {
  if (text.substr(0, key.size()) != key) return false;
  std::string_view rest = text.substr(key.size());
  if (rest.empty() || rest.front() != '=') return false;
  rest.remove_prefix(1);
  const std::size_t end = rest.find(';');
  value = rest.substr(0, end);
  text = end == std::string_view::npos ? std::string_view{} : rest.substr(end + 1);
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_i32(std::string_view text, std::int32_t& out) {
  bool neg = false;
  if (!text.empty() && text.front() == '-') {
    neg = true;
    text.remove_prefix(1);
  }
  std::uint64_t v = 0;
  if (!parse_u64(text, v) || v > 0x7fffffffull) return false;
  out = neg ? -static_cast<std::int32_t>(v) : static_cast<std::int32_t>(v);
  return true;
}

bool parse_double(std::string_view text, double& out) {
  char buf[64];
  if (text.empty() || text.size() >= sizeof(buf)) return false;
  std::copy(text.begin(), text.end(), buf);
  buf[text.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + text.size();
}

std::string fmt_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogHistogram

LogHistogram::LogHistogram(unsigned sub_bucket_bits) : bits_(sub_bucket_bits) {
  if (bits_ == 0 || bits_ > 16) throw std::invalid_argument("LogHistogram: sub_bucket_bits out of range");
}

std::size_t LogHistogram::bucket_index(std::uint64_t value, unsigned bits) {
  const std::uint64_t sub = 1ull << bits;
  if (value < sub) return static_cast<std::size_t>(value);
  // Octave `e` holds [2^e, 2^(e+1)); its 2^bits sub-buckets are addressed by
  // the mantissa bits directly below the leading one.
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(value));
  const std::uint64_t mantissa = (value >> (e - bits)) & (sub - 1);
  return static_cast<std::size_t>(((static_cast<std::uint64_t>(e) - bits + 1) << bits) + mantissa);
}

std::uint64_t LogHistogram::bucket_floor(std::size_t index, unsigned bits) {
  const std::uint64_t sub = 1ull << bits;
  if (index < sub) return index;
  const std::uint64_t block = static_cast<std::uint64_t>(index) >> bits;
  const std::uint64_t mantissa = index & (sub - 1);
  const unsigned e = static_cast<unsigned>(block) + bits - 1;
  // One past the top octave (asked for the ceiling of the last bucket).
  if (e >= 64) return ~0ull;
  return (1ull << e) | (mantissa << (e - bits));
}

void LogHistogram::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  const std::size_t idx = bucket_index(value, bits_);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += n;
  sum_ += value * n;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t idx = 0; idx < counts_.size(); ++idx) {
    if (counts_[idx] == 0) continue;
    cum += counts_[idx];
    if (static_cast<double>(cum) > target) {
      const std::uint64_t lo = bucket_floor(idx, bits_);
      const std::uint64_t next_lo = bucket_floor(idx + 1, bits_);
      // Exact (unit-width) buckets report their value; wider buckets their
      // midpoint, in double space to dodge overflow in the top octave.
      const double mid = next_lo > lo + 1
                             ? (static_cast<double>(lo) + static_cast<double>(next_lo)) / 2.0
                             : static_cast<double>(lo);
      return std::clamp(mid, static_cast<double>(min_), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.bits_ != bits_) throw std::invalid_argument("LogHistogram::merge: bucket geometry mismatch");
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string LogHistogram::serialize() const {
  std::string out = "logh1;bits=" + std::to_string(bits_) + ";n=" + std::to_string(count_) +
                    ";sum=" + std::to_string(sum_) + ";min=" + std::to_string(min()) +
                    ";max=" + std::to_string(max_) + ";b=";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += std::to_string(i);
    out += ':';
    out += std::to_string(counts_[i]);
  }
  return out;
}

std::optional<LogHistogram> LogHistogram::parse(std::string_view text) {
  if (text.substr(0, 6) != "logh1;") return std::nullopt;
  text.remove_prefix(6);
  std::string_view bits, n, sum, min, max, buckets;
  if (!take_field(text, "bits", bits) || !take_field(text, "n", n) || !take_field(text, "sum", sum) ||
      !take_field(text, "min", min) || !take_field(text, "max", max) || !take_field(text, "b", buckets)) {
    return std::nullopt;
  }
  std::uint64_t bits_v = 0, n_v = 0, sum_v = 0, min_v = 0, max_v = 0;
  if (!parse_u64(bits, bits_v) || bits_v == 0 || bits_v > 16 || !parse_u64(n, n_v) || !parse_u64(sum, sum_v) ||
      !parse_u64(min, min_v) || !parse_u64(max, max_v)) {
    return std::nullopt;
  }
  LogHistogram h(static_cast<unsigned>(bits_v));
  std::uint64_t check = 0;
  while (!buckets.empty()) {
    const std::size_t comma = buckets.find(',');
    std::string_view entry = buckets.substr(0, comma);
    buckets = comma == std::string_view::npos ? std::string_view{} : buckets.substr(comma + 1);
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::uint64_t idx = 0, cnt = 0;
    if (!parse_u64(entry.substr(0, colon), idx) || !parse_u64(entry.substr(colon + 1), cnt) || cnt == 0 ||
        idx > (64ull << bits_v)) {
      return std::nullopt;
    }
    if (idx >= h.counts_.size()) h.counts_.resize(idx + 1, 0);
    h.counts_[static_cast<std::size_t>(idx)] += cnt;
    check += cnt;
  }
  if (check != n_v) return std::nullopt;
  h.count_ = n_v;
  h.sum_ = sum_v;
  h.min_ = min_v;
  h.max_ = max_v;
  return h;
}

// ---------------------------------------------------------------------------
// QuantileSketch

namespace {
constexpr double kMinTrackable = 1e-9;
}

QuantileSketch::QuantileSketch(double relative_accuracy) : alpha_(relative_accuracy) {
  if (!(alpha_ > 0.0) || !(alpha_ < 1.0)) throw std::invalid_argument("QuantileSketch: accuracy out of (0,1)");
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

std::int32_t QuantileSketch::key_of(double value) const {
  return static_cast<std::int32_t>(std::ceil(std::log(value) / log_gamma_));
}

double QuantileSketch::value_of(std::int32_t key) const {
  // Midpoint (in relative terms) of bucket (gamma^(k-1), gamma^k].
  return 2.0 * std::pow(gamma_, static_cast<double>(key)) / (gamma_ + 1.0);
}

void QuantileSketch::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  if (!(value > kMinTrackable)) {
    // Negative, NaN, and sub-resolution values all land in the zero bucket;
    // the sketch tracks magnitudes, and campaign metrics are non-negative.
    zero_count_ += n;
  } else {
    buckets_[key_of(value)] += n;
  }
  count_ += n;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = zero_count_;
  if (static_cast<double>(cum) > target) return 0.0;
  for (const auto& [key, cnt] : buckets_) {
    cum += cnt;
    if (static_cast<double>(cum) > target) return value_of(key);
  }
  return buckets_.empty() ? 0.0 : value_of(buckets_.rbegin()->first);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.alpha_ != alpha_) throw std::invalid_argument("QuantileSketch::merge: accuracy mismatch");
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  for (const auto& [key, cnt] : other.buckets_) buckets_[key] += cnt;
}

std::string QuantileSketch::serialize() const {
  std::string out = "qsk1;a=" + fmt_g17(alpha_) + ";n=" + std::to_string(count_) +
                    ";z=" + std::to_string(zero_count_) + ";b=";
  bool first = true;
  for (const auto& [key, cnt] : buckets_) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(key);
    out += ':';
    out += std::to_string(cnt);
  }
  return out;
}

std::optional<QuantileSketch> QuantileSketch::parse(std::string_view text) {
  if (text.substr(0, 5) != "qsk1;") return std::nullopt;
  text.remove_prefix(5);
  std::string_view a, n, z, buckets;
  if (!take_field(text, "a", a) || !take_field(text, "n", n) || !take_field(text, "z", z) ||
      !take_field(text, "b", buckets)) {
    return std::nullopt;
  }
  double alpha = 0.0;
  std::uint64_t n_v = 0, z_v = 0;
  if (!parse_double(a, alpha) || !(alpha > 0.0) || !(alpha < 1.0) || !parse_u64(n, n_v) || !parse_u64(z, z_v)) {
    return std::nullopt;
  }
  QuantileSketch s(alpha);
  std::uint64_t check = z_v;
  while (!buckets.empty()) {
    const std::size_t comma = buckets.find(',');
    std::string_view entry = buckets.substr(0, comma);
    buckets = comma == std::string_view::npos ? std::string_view{} : buckets.substr(comma + 1);
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::int32_t key = 0;
    std::uint64_t cnt = 0;
    if (!parse_i32(entry.substr(0, colon), key) || !parse_u64(entry.substr(colon + 1), cnt) || cnt == 0) {
      return std::nullopt;
    }
    s.buckets_[key] += cnt;
    check += cnt;
  }
  if (check != n_v) return std::nullopt;
  s.count_ = n_v;
  s.zero_count_ = z_v;
  return s;
}

}  // namespace streamlab::obs
