// Quarantine flight recorder: renders one trial's post-mortem as NDJSON.
//
// When a campaign quarantines a trial (audit violations, determinism
// divergence, budget exhaustion, or a thrown scenario), the worker has the
// only copy of the evidence — the trial's Obs ring, audit report and metric
// snapshot die with the trial state. render_postmortem() serializes that
// evidence into an NDJSON document the coordinator writes to a per-seed
// file next to the manifest, so a 10^5-trial campaign's failures are
// debuggable without re-running anything.
//
// Line shapes (every line is one JSON object tagged by "record"):
//   header    trial/seed/reason/config digest + trace retained/dropped
//   audit     check + violation totals and the one-line summary
//   violation one retained AuditViolation (invariant, sim time, detail)
//   metric    one raw registry counter/gauge (full per-instance names)
//   sample / tally / counter   the rolled-up TrialTelemetry snapshot
//   trace     one of the last-K Tracer records, oldest first
#pragma once

#include <cstdint>
#include <string>

#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "sim/audit.hpp"

namespace streamlab {

struct PostmortemContext {
  std::size_t trial_index = 0;
  std::uint64_t seed = 0;
  std::string reason;       ///< quarantine reason recorded in the manifest
  std::string config_hex;   ///< campaign config digest (hex64)
  std::uint64_t sim_events = 0;
  bool budget_exhausted = false;
  // Distributed-worker evidence (zero/empty for in-process trials). When
  // attempts > 0 the post-mortem gains a "worker" record distinguishing
  // "trial is bad" from "worker died": how many process attempts the trial
  // consumed, the last worker's wait status (exit code, or 128+signal),
  // and the tail of its stderr.
  std::uint32_t attempts = 0;
  int worker_exit_status = 0;
  std::string stderr_tail;
};

/// Renders the post-mortem document. `obs` and `telemetry` may be null
/// (telemetry disabled / trial threw before instrumentation); the header
/// and audit lines are always present. `last_k` bounds the trace tail.
std::string render_postmortem(const PostmortemContext& context,
                              const audit::AuditReport& report,
                              const obs::Obs* obs,
                              const obs::TrialTelemetry* telemetry,
                              std::size_t last_k);

}  // namespace streamlab
