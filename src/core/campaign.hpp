// Resilient campaign runner: many turbulence trials, one trustworthy study.
//
// A campaign runs N TurbulenceScenarioConfig trials (seed = base_seed + i)
// with per-trial sim-event and wall-clock budgets, a fresh invariant auditor
// and determinism probe per trial, and exception containment: a trial that
// throws — or whose audit finds violations — is *quarantined* (its seed and
// cause recorded) while every completed trial's stats are salvaged into the
// study aggregate. An NDJSON resume manifest records one line per finished
// trial (seed, config digest, status, audit summary, salvage fields), flushed
// as each trial ends, so an interrupted campaign restarts from the first
// incomplete trial without re-running — and a manifest written under a
// different configuration is rejected outright.
//
// --verify-determinism mode runs each trial twice with the same seed and
// compares the replay digests event-for-event, reporting the index of the
// first divergent event when the runs part ways (see audit::DeterminismProbe).
//
// Campaigns run their trials on a pool of `workers` threads. Trials share
// nothing — each owns a private EventLoop, Network, Rng, Auditor and
// DeterminismProbe, all created and destroyed on its worker thread — and the
// coordinator thread commits finished trials (manifest line, aggregate fold,
// quarantine count) strictly in trial-index order, so the manifest bytes,
// aggregate stats and quarantine records of a `workers=N` run are identical
// to a `workers=1` run of the same config. See DESIGN.md §10 for the
// isolation argument.
//
// The campaign_detail namespace at the bottom exposes the trial runner,
// manifest codec and ordered-commit sink to the distributed
// coordinator/worker layer (src/campaign/, DESIGN.md §14), which shards the
// same trials across child *processes* while preserving the byte-identical
// manifest contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/turbulence.hpp"
#include "obs/telemetry.hpp"

namespace streamlab {

struct CampaignProgress;

struct CampaignConfig {
  /// Scenario template. `seed`, `auditor` and `probe` are overwritten for
  /// each trial; the budgets (max_sim_events / max_wall_time) apply per
  /// trial. Leave `obs` unset for campaigns — one Obs context cannot span
  /// runs whose SimTime restarts at zero.
  TurbulenceScenarioConfig scenario;
  ClipInfo clip;
  std::size_t trials = 1;
  /// Trial i streams with seed base_seed + i.
  std::uint64_t base_seed = 1;
  /// NDJSON resume manifest path; empty = no manifest (and no resume).
  std::string manifest_path;
  /// Worker threads running trials concurrently. 0 = one per hardware
  /// thread; 1 = serial on the calling thread (the pre-parallel behaviour).
  /// Results are committed in trial-index order regardless, so the manifest
  /// and aggregate are byte-identical across worker counts. Not part of the
  /// config digest: a manifest written serially resumes under any `workers`.
  std::size_t workers = 0;
  /// Run each trial twice with the same seed and compare replay digests.
  bool verify_determinism = false;
  /// Test-only: offsets the verification run's seed so the divergence
  /// reporting path can be exercised deliberately. Leave 0.
  std::uint64_t verify_seed_skew = 0;
  /// Test-only fault hook, invoked with each trial's auditor after the run
  /// and before the trial is judged (see audit::Auditor::force_violation) —
  /// how tests plant exactly one violating trial in a healthy campaign.
  std::function<void(audit::Auditor&, std::size_t index, std::uint64_t seed)>
      fault_hook;

  // --- Telemetry plane (observability; none of it enters the config digest
  // or perturbs the simulation, so manifests resume across these knobs) ---

  /// Give each trial its own Obs (metrics registry + small trace ring),
  /// snapshot the registry into TrialOutcome::telemetry at trial end, and
  /// fold cross-trial distributions at the coordinator. Ignored (treated as
  /// false) when `scenario.obs` is set — an external Obs keeps the legacy
  /// single-run contract.
  bool collect_telemetry = true;
  /// Trace ring capacity for per-trial Obs — also the last-K tail dumped to
  /// a quarantine post-mortem. Small by design: the ring only exists to
  /// feed the flight recorder.
  std::size_t flight_recorder_records = 256;
  /// Where quarantine post-mortems are written: `<prefix><seed>.ndjson`.
  /// Empty derives "<manifest_path>.postmortem-" when a manifest is set,
  /// otherwise post-mortems are skipped.
  std::string postmortem_prefix;
  /// Invoke `progress_hook` after every this-many trial commits (and once
  /// at campaign end). 0 disables progress reporting.
  std::size_t progress_every = 0;
  /// Rate-limited progress/health reporter, called on the coordinator
  /// thread in commit order.
  std::function<void(const CampaignProgress&)> progress_hook;

  /// Cooperative cancellation (SIGINT/SIGTERM): when the pointed-at flag
  /// becomes true, no new trials are claimed, in-flight trials finish and
  /// commit (manifest line flushed, aggregate folded), and the campaign
  /// returns early with CampaignResult::interrupted set — so an interrupted
  /// study resumes from its manifest instead of losing completed trials.
  /// Null = never cancelled. The flag is only ever read; a signal handler
  /// may set it.
  const std::atomic<bool>* cancel = nullptr;
};

/// Snapshot handed to CampaignConfig::progress_hook. Wall-clock rates are
/// measured, not simulated — they vary run to run and never enter the
/// manifest or the telemetry fold.
struct CampaignProgress {
  std::size_t trials_total = 0;
  std::size_t trials_done = 0;  ///< committed so far (completed + quarantined)
  std::size_t completed = 0;
  std::size_t quarantined = 0;
  std::size_t resumed = 0;
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;  ///< committed non-resumed trials / wall time
  double eta_seconds = 0.0;     ///< remaining trials at the current rate
  /// Fraction of worker wall-capacity spent inside trials; 0 when unknown.
  double worker_utilization = 0.0;
  /// Live cross-trial fold; null when telemetry collection is off.
  const obs::CampaignTelemetry* telemetry = nullptr;
};

enum class TrialStatus : std::uint8_t { kCompleted, kQuarantined };
const char* to_string(TrialStatus status);

/// One trial's ledger entry — also the unit the resume manifest stores.
struct TrialOutcome {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  TrialStatus status = TrialStatus::kCompleted;
  std::string reason;        ///< quarantine cause; empty when completed
  std::uint64_t checks = 0;  ///< audit checks performed
  std::uint64_t violations = 0;
  std::uint64_t sim_events = 0;
  bool budget_exhausted = false;
  std::uint64_t digest = 0;  ///< replay digest folded at the client NIC
  /// Index of the first divergent event (verify-determinism mode only).
  std::optional<std::uint64_t> divergence;
  /// Restored from the resume manifest rather than run in this process.
  bool from_manifest = false;
  /// Full run metrics; absent when the trial threw before collection or was
  /// restored from a manifest (whose lines keep only the aggregate fields).
  std::optional<TurbulenceRunResult> result;

  // Salvage fields folded into the study aggregate (survive the manifest
  // round-trip, unlike `result`).
  std::uint64_t sessions = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t frames_rendered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rebuffer_events = 0;
  Duration stall_time;
  std::uint64_t reroutes = 0;        ///< route-repair withdraw transitions
  std::uint64_t route_restores = 0;  ///< route-repair restore transitions
  std::uint64_t failovers = 0;       ///< mirror failovers committed
  /// Stall time overlapping kRouterDown episode windows.
  Duration router_down_stall;
  // Loss-repair salvage (zero when the repair layer is disabled).
  std::uint64_t packets_recovered = 0;  ///< FEC + retransmission repairs
  std::uint64_t nacks_sent = 0;         ///< client NACK messages
  std::uint64_t retransmissions_sent = 0;  ///< server retx answered
  std::uint64_t parity_packets = 0;     ///< parity packets received
  // Multipath salvage (zero when striping is disabled).
  std::uint64_t path_switches = 0;    ///< healthy<->draining transitions
  std::uint64_t nack_suppressed = 0;  ///< NACKs deferred by reorder tolerance

  // Worker post-mortem evidence (distributed campaigns; see
  // src/campaign/distributed.hpp). Zero/empty for in-process trials, so a
  // flight-recorder reader can distinguish "trial is bad" (attempts==0 or
  // exit_status==0: the trial itself was judged) from "worker died"
  // (attempts>0 with a nonzero exit status: the process running it was
  // lost). Serialized into the manifest for quarantined records only —
  // completed lines stay byte-identical with the serial path regardless of
  // how many reassignments a trial survived.
  std::uint32_t attempts = 0;     ///< process-worker assignments consumed
  int worker_exit_status = 0;     ///< last worker's exit code, or 128+signal
  std::string stderr_tail;        ///< last bytes of the dead worker's stderr

  /// Metric snapshot folded into the campaign telemetry; survives the
  /// manifest round-trip. Absent when collection is off (or the manifest
  /// line predates telemetry).
  std::optional<obs::TrialTelemetry> telemetry;
  /// Rendered flight-recorder document (quarantined live trials only);
  /// written out by the coordinator, never stored in the manifest.
  std::string postmortem;
  /// Wall-clock nanoseconds the trial spent on its worker. Feeds the
  /// utilization figure in CampaignProgress only — never serialized
  /// (wall time is nondeterministic and would break manifest parity).
  std::uint64_t wall_ns = 0;
};

/// Study-level totals over every *completed* trial, live or restored.
struct CampaignAggregate {
  std::uint64_t trials = 0;
  std::uint64_t sessions = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t frames_rendered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rebuffer_events = 0;
  Duration stall_time;
  std::uint64_t reroutes = 0;
  std::uint64_t route_restores = 0;
  std::uint64_t failovers = 0;
  Duration router_down_stall;
  std::uint64_t packets_recovered = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t retransmissions_sent = 0;
  std::uint64_t parity_packets = 0;
  std::uint64_t path_switches = 0;
  std::uint64_t nack_suppressed = 0;

  void fold(const TrialOutcome& trial);
};

struct CampaignResult {
  std::vector<TrialOutcome> trials;
  CampaignAggregate aggregate;
  std::size_t completed = 0;
  std::size_t quarantined = 0;
  std::size_t resumed = 0;  ///< trials restored from the manifest
  /// Cross-trial distributions + health counters, folded in commit order;
  /// byte-identical (serialize()) at any worker count. Counts trials even
  /// when per-trial telemetry is disabled.
  obs::CampaignTelemetry telemetry;
  /// Flight-recorder files written this run, in trial order.
  std::vector<std::string> postmortem_paths;
  /// Cancelled via CampaignConfig::cancel before every trial committed.
  /// Whatever finished is flushed; re-running with the same manifest
  /// resumes from the first missing trial.
  bool interrupted = false;
  /// Torn trailing manifest lines tolerated during resume (0 or 1): a
  /// campaign killed mid-write leaves a truncated final NDJSON line, which
  /// is dropped with a warning and its trial re-run.
  std::size_t manifest_torn_lines = 0;

  // --- Distributed-execution health (filled by run_distributed_campaign;
  // all zero for in-process campaigns). Operational evidence only — none
  // of it enters the manifest for completed trials, so the determinism
  // contract is unaffected. ---
  std::size_t workers_lost = 0;      ///< worker processes that died/hung
  std::size_t worker_restarts = 0;   ///< replacement workers spawned
  std::size_t reassigned_trials = 0; ///< assignments redone on a new worker
  /// Total wall-clock ns between detecting a worker failure and committing
  /// the affected trial's reassigned result (mean = / reassigned_trials).
  std::uint64_t reassignment_latency_ns = 0;
  /// The whole fleet was lost and the remaining trials ran on the
  /// coordinator's in-process pool instead of aborting the study.
  bool degraded_to_in_process = false;

  bool ok() const { return quarantined == 0; }
  /// Seeds of every quarantined trial (the campaign's repro handles).
  std::vector<std::uint64_t> quarantined_seeds() const;
};

/// Digest of the campaign parameters under which trial results are
/// comparable; a resume manifest carrying a different digest is rejected.
std::uint64_t campaign_config_digest(const CampaignConfig& config);

/// Runs (or resumes) the campaign. Throws std::runtime_error when the
/// manifest at manifest_path was written under a different config digest or
/// cannot be parsed — or when `scenario.obs` is set and more than one trial
/// would run concurrently (an Obs is single-threaded and single-run; a
/// shared one across parallel trials would be a silent data race).
CampaignResult run_campaign(const CampaignConfig& config);

/// Shared internals of the campaign engine, exposed for the distributed
/// coordinator/worker split (src/campaign/). Everything here is the *same
/// code path* the in-process pool runs — that identity is what makes a
/// distributed campaign's manifest byte-identical to a serial run.
namespace campaign_detail {

/// Formats campaign_config_digest(config) as the 16-digit lower-case hex
/// string used in manifest lines and the worker hello handshake.
std::string config_hex(const CampaignConfig& config);

/// Serializes one trial outcome as its resume-manifest NDJSON line (no
/// trailing newline). Worker evidence fields (attempts, exit status,
/// stderr tail) are emitted for quarantined records only.
std::string manifest_line(const TrialOutcome& trial, const std::string& config_hex);

/// Parses one manifest line; throws std::runtime_error (tagged with
/// line_no) on malformed input or a config-digest mismatch. The returned
/// outcome has from_manifest=true.
TrialOutcome parse_manifest_line(const std::string& line, const std::string& config_hex,
                                 std::size_t line_no);

/// Runs trial `index` exactly as a pool worker would: fresh auditor +
/// determinism probe, quarantine judgment, salvage fold, telemetry
/// snapshot, post-mortem rendering. `scratch_obs` may be null (telemetry
/// off) or a reusable per-worker Obs shaped by trial_obs_config().
TrialOutcome run_trial(const CampaignConfig& config, std::size_t index,
                       const std::string& config_hex, obs::Obs* scratch_obs);

/// Shape of the reusable per-worker scratch Obs (trace ring sized for the
/// flight recorder).
obs::Obs::Config trial_obs_config(const CampaignConfig& config);

struct ManifestRead {
  std::map<std::size_t, TrialOutcome> restored;
  /// Torn trailing lines tolerated (0 or 1). A mid-write crash leaves a
  /// structurally truncated final line; it is dropped with a warning and
  /// the trial re-runs. Complete-but-wrong lines still throw.
  std::size_t torn_lines = 0;
};

/// Reads a resume manifest, tolerating a torn trailing NDJSON line. With
/// `repair_in_place` (the default) the torn bytes are truncated away — and
/// a missing final newline restored — so subsequent appends produce a
/// well-formed file. A missing file yields an empty result.
ManifestRead read_resume_manifest(const std::string& path, const std::string& config_hex,
                                  std::size_t max_trials, bool repair_in_place = true);

/// Ordered-commit sink shared by the in-process pool and the distributed
/// coordinator: opens the manifest for append, writes one line per fresh
/// outcome (flushed immediately), folds the aggregate + telemetry, writes
/// quarantine post-mortems, and drives the progress hook — all in strict
/// trial-index order. Feed it outcome 0, 1, 2, ... exactly once each.
class Committer {
 public:
  /// Throws when the manifest cannot be opened for append. `workers` is
  /// only reported through CampaignProgress.
  Committer(const CampaignConfig& config, std::string config_hex, std::size_t workers);

  /// Commits the next trial in index order. `wire_line` supplies literal
  /// manifest bytes to write instead of re-serializing `outcome` — the
  /// distributed coordinator passes the worker's own line through verbatim.
  /// Restored outcomes (from_manifest) fold without touching the manifest.
  void commit(TrialOutcome outcome, const std::string* wire_line = nullptr);

  std::size_t committed() const { return committed_; }
  /// Hands the accumulated result over; the committer is spent afterwards.
  CampaignResult finish();

 private:
  const CampaignConfig& config_;
  std::string config_hex_;
  std::size_t workers_;
  std::ofstream manifest_;
  std::string postmortem_prefix_;
  CampaignResult result_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t busy_ns_ = 0;
  std::size_t fresh_done_ = 0;
  std::size_t committed_ = 0;
};

}  // namespace campaign_detail

}  // namespace streamlab
