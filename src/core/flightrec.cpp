#include "core/flightrec.hpp"

#include <cstdio>

#include "obs/export.hpp"

namespace streamlab {
namespace {

std::string fmt_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string render_postmortem(const PostmortemContext& context,
                              const audit::AuditReport& report,
                              const obs::Obs* obs,
                              const obs::TrialTelemetry* telemetry,
                              std::size_t last_k) {
  using obs::json_escape;
  std::string out;

  const std::size_t retained = obs != nullptr ? obs->tracer().size() : 0;
  const std::uint64_t dropped = obs != nullptr ? obs->tracer().dropped() : 0;
  out += "{\"record\":\"header\",\"format\":\"streamlab-postmortem-v1\",\"trial\":" +
         std::to_string(context.trial_index) + ",\"seed\":" + std::to_string(context.seed) +
         ",\"reason\":\"" + json_escape(context.reason) + "\",\"config\":\"" +
         json_escape(context.config_hex) + "\",\"sim_events\":" + std::to_string(context.sim_events) +
         ",\"budget_exhausted\":" + (context.budget_exhausted ? "true" : "false") +
         ",\"trace_retained\":" + std::to_string(retained) +
         ",\"trace_dropped\":" + std::to_string(dropped) + "}\n";

  if (context.attempts > 0) {
    out += "{\"record\":\"worker\",\"attempts\":" + std::to_string(context.attempts) +
           ",\"exit_status\":" + std::to_string(context.worker_exit_status) +
           ",\"stderr_tail\":\"" + json_escape(context.stderr_tail) + "\"}\n";
  }

  out += "{\"record\":\"audit\",\"checks\":" + std::to_string(report.checks_performed) +
         ",\"violations\":" + std::to_string(report.total_violations) + ",\"summary\":\"" +
         json_escape(report.summary()) + "\"}\n";
  for (const audit::AuditViolation& v : report.violations) {
    out += "{\"record\":\"violation\",\"invariant\":\"";
    out += audit::to_string(v.invariant);
    out += "\",\"t\":" + fmt_g17(v.time.to_seconds()) + ",\"detail\":\"" + json_escape(v.detail) +
           "\",\"value\":" + fmt_g17(v.value) + ",\"limit\":" + fmt_g17(v.limit) + "}\n";
  }

  if (obs != nullptr) {
    for (const auto& [name, value] : obs->registry().counters()) {
      out += "{\"record\":\"metric\",\"kind\":\"counter\",\"name\":\"" + json_escape(name) +
             "\",\"value\":" + std::to_string(value) + "}\n";
    }
    for (const auto& [name, value] : obs->registry().gauges()) {
      out += "{\"record\":\"metric\",\"kind\":\"gauge\",\"name\":\"" + json_escape(name) +
             "\",\"value\":" + std::to_string(value) + "}\n";
    }
  }

  if (telemetry != nullptr) {
    for (const auto& [name, value] : telemetry->samples()) {
      out += "{\"record\":\"sample\",\"name\":\"" + json_escape(name) +
             "\",\"value\":" + fmt_g17(value) + "}\n";
    }
    for (const auto& [name, value] : telemetry->tallies()) {
      out += "{\"record\":\"tally\",\"name\":\"" + json_escape(name) +
             "\",\"value\":" + std::to_string(value) + "}\n";
    }
    for (const auto& [name, value] : telemetry->counters()) {
      out += "{\"record\":\"counter\",\"name\":\"" + json_escape(name) +
             "\",\"value\":" + std::to_string(value) + "}\n";
    }
  }

  if (obs != nullptr) {
    const obs::Tracer& tracer = obs->tracer();
    for (const obs::TraceRecord& r : tracer.last(last_k)) {
      out += "{\"record\":\"trace\",\"t\":" + fmt_g17(r.time.to_seconds()) + ",\"kind\":\"";
      out += obs::to_string(r.kind);
      out += "\",\"name\":\"" + json_escape(tracer.string(r.name)) + "\"";
      if (r.kind != obs::RecordKind::kCounter)
        out += ",\"track\":\"" + json_escape(tracer.string(r.track)) + "\"";
      if (r.span_id != 0) out += ",\"span\":" + std::to_string(r.span_id);
      out += ",\"value\":" + fmt_g17(r.value) + "}\n";
    }
  }

  return out;
}

}  // namespace streamlab
