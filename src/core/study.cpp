#include "core/study.hpp"

#include <algorithm>

namespace streamlab {

PathConfig path_for_data_set(int data_set, std::uint64_t seed) {
  PathConfig p;
  // Six paths spanning the paper's observed ranges: hop counts mostly 15-20
  // (Figure 2, full range 10-25) and RTTs with a ~40 ms median and a 160 ms
  // maximum (Figure 1). One-way propagation is half the target base RTT.
  struct PathShape {
    int hops;
    int one_way_ms;
    double bottleneck_mbps;
  };
  static constexpr PathShape kShapes[6] = {
      {16, 12, 10.0},  // set 1: nearby, clean path
      {15, 17, 10.0},  // set 2
      {18, 20, 10.0},  // set 3: the median path
      {19, 22, 8.0},   // set 4
      {21, 30, 6.0},   // set 5: slower regional path
      {24, 75, 4.0},   // set 6: distant server, the 160 ms RTT tail
  };
  const PathShape& shape = kShapes[std::clamp(data_set - 1, 0, 5)];
  p.hop_count = shape.hops;
  p.one_way_propagation = Duration::millis(shape.one_way_ms);
  p.bottleneck_bandwidth = BitRate::mbps(shape.bottleneck_mbps);
  p.jitter_stddev = Duration::micros(400);
  p.loss_probability = 0.0005;  // "near 0% loss ... a few packet losses"
  p.seed = seed ^ (static_cast<std::uint64_t>(data_set) * 0x9E3779B9ull);
  return p;
}

std::vector<const ClipRunResult*> StudyResults::clips() const {
  std::vector<const ClipRunResult*> out;
  for (const auto& run : runs) {
    out.push_back(&run.real);
    out.push_back(&run.media);
  }
  return out;
}

std::vector<const ClipRunResult*> StudyResults::clips_for(PlayerKind player) const {
  std::vector<const ClipRunResult*> out;
  for (const auto* c : clips())
    if (c->clip.player == player) out.push_back(c);
  return out;
}

StudyResults run_study_subset(const StudyConfig& config,
                              const std::vector<int>& data_sets) {
  StudyResults results;
  results.config = config;
  for (const auto& set : table1_catalog()) {
    if (std::find(data_sets.begin(), data_sets.end(), set.id) == data_sets.end())
      continue;
    for (const RateTier tier :
         {RateTier::kLow, RateTier::kHigh, RateTier::kVeryHigh}) {
      if (!set.pair(tier)) continue;
      ExperimentConfig ec;
      ec.path = path_for_data_set(set.id, config.seed);
      ec.seed = config.seed ^ (static_cast<std::uint64_t>(set.id) << 8) ^
                static_cast<std::uint64_t>(tier);
      ec.wm = config.wm;
      ec.rm = config.rm;
      ec.bandwidth_window = config.bandwidth_window;
      ec.keep_capture = config.keep_captures;
      results.runs.push_back(run_clip_pair(set, tier, ec));
    }
  }
  return results;
}

StudyResults run_full_study(const StudyConfig& config) {
  return run_study_subset(config, {1, 2, 3, 4, 5, 6});
}

}  // namespace streamlab
