// Aggregate (boundary) experiments — Section VI future work: "It would be
// interesting to examine traces at an Internet boundary, such as the egress
// to our University, or at least at several players. Such analysis might
// reveal interactions between the media flows that our single client
// studies did not illustrate."
//
// Several streaming sessions (a mix of RealPlayer and MediaPlayer clips)
// share one path and one client host; the sniffer at the client access link
// plays the role of the boundary monitor.
#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace streamlab {

struct AggregateConfig {
  /// Clip ids to stream concurrently (any mix of players/sets/tiers).
  std::vector<std::string> clip_ids = {"set1/R-h", "set1/M-h", "set5/R-l", "set5/M-l"};
  PathConfig path;
  std::uint64_t seed = 1;
  WmBehavior wm;
  RmBehavior rm;
  Duration bandwidth_window = Duration::seconds(2);
};

struct AggregateSessionSummary {
  ClipInfo clip;
  std::uint64_t packets = 0;
  double mean_rate_kbps = 0.0;
  double fragment_fraction = 0.0;
  double frame_rate = 0.0;
  double reception_quality = 0.0;
};

struct AggregateResult {
  std::vector<AggregateSessionSummary> sessions;
  /// Total inbound bandwidth at the boundary, (window start s, Kbps).
  std::vector<std::pair<double, double>> total_bandwidth_timeline;
  double aggregate_mean_kbps = 0.0;
  double aggregate_peak_kbps = 0.0;
  std::size_t total_packets = 0;
  /// Aggregate interarrival coefficient of variation — how the mixed flows
  /// smooth (or roughen) each other.
  double interarrival_cv = 0.0;
};

/// Streams every configured clip concurrently over one path and analyses
/// the combined boundary trace.
AggregateResult run_aggregate_experiment(const AggregateConfig& config);

}  // namespace streamlab
