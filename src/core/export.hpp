// CSV export of study results — the hand-off format for external plotting
// tools (the paper's figures were drawn in a spreadsheet; these files
// reproduce the series each figure plots, one file per figure).
#pragma once

#include <string>

#include "core/study.hpp"

namespace streamlab {

/// One row per clip: the master results table.
/// Columns: clip_id,player,tier,encoding_kbps,playback_kbps,frame_rate_fps,
/// fragment_pct,buffering_ratio,streaming_s,packets,lost,quality_pct
std::string study_results_csv(const StudyResults& study);

/// Figure series as CSV. `figure` selects which series:
///   "fig01" RTT samples; "fig02" hop counts; "fig03" playback-vs-encoding;
///   "fig05" fragmentation; "fig07" normalised sizes; "fig09" normalised
///   interarrivals; "fig11" buffering ratios; "fig14" frame rate vs encoding.
/// Unknown names return an empty string.
std::string figure_csv(const StudyResults& study, const std::string& figure);

/// Writes every known export into `directory` (created files:
/// study_results.csv and fig<NN>.csv). Returns the number of files written.
int export_study(const StudyResults& study, const std::string& directory);

}  // namespace streamlab
