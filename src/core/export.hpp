// CSV export of study results — the hand-off format for external plotting
// tools (the paper's figures were drawn in a spreadsheet; these files
// reproduce the series each figure plots, one file per figure).
//
// Each exporter comes in two forms: a streaming overload writing rows to a
// std::ostream (the primary implementation — export_* functions stream
// straight into their output files without building the table in memory)
// and a std::string convenience wrapper over it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "core/turbulence.hpp"

namespace streamlab {

/// One row per clip: the master results table.
/// Columns: clip_id,player,tier,encoding_kbps,playback_kbps,frame_rate_fps,
/// fragment_pct,buffering_ratio,streaming_s,packets,lost,quality_pct
void study_results_csv(const StudyResults& study, std::ostream& out);
std::string study_results_csv(const StudyResults& study);

/// Figure series as CSV. `figure` selects which series:
///   "fig01" RTT samples; "fig02" hop counts; "fig03" playback-vs-encoding;
///   "fig05" fragmentation; "fig07" normalised sizes; "fig09" normalised
///   interarrivals; "fig11" buffering ratios; "fig14" frame rate vs encoding.
/// Unknown names write nothing / return an empty string.
void figure_csv(const StudyResults& study, const std::string& figure, std::ostream& out);
std::string figure_csv(const StudyResults& study, const std::string& figure);

/// Writes every known export into `directory` (created files:
/// study_results.csv and fig<NN>.csv). Returns the number of files written.
int export_study(const StudyResults& study, const std::string& directory);

/// Turbulence scenario results, one row per player session per run.
/// Columns: scenario,clip_id,player,established,play_attempts,abandoned,
/// stream_dead,completed,time_to_recover_s,rebuffer_events,stall_s,
/// frames_rendered,frames_dropped,dropped_during,dropped_after,packets,
/// lost,duplicates,recovered,recovery_ratio,repair_latency_mean_ms,
/// repair_overhead,path_switches,primary_loss,detour_loss,
/// primary_goodput_kbps,detour_goodput_kbps,reorder_depth_p95,
/// nack_suppressed
void turbulence_csv(const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs,
                    std::ostream& out);
std::string turbulence_csv(const std::vector<std::pair<std::string, TurbulenceRunResult>>&
                               runs);

/// Episode ledger across runs. Columns: scenario,kind,label,start_s,
/// duration_s,applied,cleared,packets_dropped
void turbulence_episodes_csv(
    const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs,
    std::ostream& out);
std::string turbulence_episodes_csv(
    const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs);

/// Writes turbulence.csv and turbulence_episodes.csv into `directory`.
/// Returns the number of files written.
int export_turbulence(const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs,
                      const std::string& directory);

}  // namespace streamlab
