#include "core/aggregate.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"
#include "dissect/dissector.hpp"
#include "pcap/sniffer.hpp"
#include "players/server.hpp"
#include "trackers/tracker.hpp"

namespace streamlab {

AggregateResult run_aggregate_experiment(const AggregateConfig& config) {
  AggregateResult result;

  Network net(config.path);

  struct Session {
    ClipInfo clip;
    Host* server_host = nullptr;
    std::unique_ptr<StreamServer> server;
    std::unique_ptr<StreamClient> client;
    std::unique_ptr<PlayerTracker> tracker;
  };
  std::vector<Session> sessions;

  std::uint16_t next_client_port = 20000;
  Duration longest_clip = Duration::zero();
  for (const auto& id : config.clip_ids) {
    const auto clip = find_clip(id);
    if (!clip) continue;
    Session s;
    s.clip = *clip;
    s.server_host = &net.add_server("server-" + id);
    const EncodedClip encoded = encode_clip(*clip, config.seed);
    const bool is_media = clip->player == PlayerKind::kMediaPlayer;
    const std::uint16_t port = is_media ? kMediaServerPort : kRealServerPort;
    if (is_media)
      s.server = std::make_unique<WmServer>(*s.server_host, encoded, config.wm, port);
    else
      s.server = std::make_unique<RmServer>(*s.server_host, encoded, config.rm, port,
                                            config.seed ^ sessions.size());

    StreamClient::Config cc;
    cc.kind = clip->player;
    cc.wm = config.wm;
    cc.rm = config.rm;
    cc.local_port = next_client_port++;
    s.client = std::make_unique<StreamClient>(
        net.client(), s.server->clip(), Endpoint{s.server_host->address(), port}, cc);
    s.tracker = std::make_unique<PlayerTracker>(*s.client);
    longest_clip = std::max(longest_clip, clip->length);
    sessions.push_back(std::move(s));
  }

  Sniffer::Options sniff_opts;
  sniff_opts.snaplen = 96;
  sniff_opts.capture_outbound = false;
  Sniffer sniffer(net.client(), sniff_opts);

  for (auto& s : sessions) {
    s.client->start();
    s.tracker->start();
  }
  net.loop().run_until(net.loop().now() + longest_clip + Duration::seconds(90));

  const auto dissected = dissect_trace(sniffer.trace());

  // Per-session summaries via per-server flow extraction.
  for (auto& s : sessions) {
    const std::uint16_t client_port =
        static_cast<std::uint16_t>(20000 + (&s - sessions.data()));
    const FlowTrace flow =
        FlowTrace::extract(dissected, s.server_host->address(), client_port);
    AggregateSessionSummary summary;
    summary.clip = s.clip;
    summary.packets = flow.size();
    summary.mean_rate_kbps = flow.mean_rate_kbps();
    summary.fragment_fraction = flow.fragment_fraction();
    const auto report = s.tracker->report();
    summary.frame_rate = report.average_frame_rate;
    summary.reception_quality = report.reception_quality();
    result.sessions.push_back(summary);
  }

  // Boundary-level aggregate: every inbound packet regardless of flow.
  result.total_packets = dissected.size();
  std::vector<double> gaps;
  std::optional<SimTime> prev;
  std::optional<SimTime> first, last;
  std::uint64_t total_bytes = 0;
  for (const auto& p : dissected) {
    if (!first) first = p.timestamp;
    last = p.timestamp;
    total_bytes += p.frame_length;
    if (prev) gaps.push_back((p.timestamp - *prev).to_seconds());
    prev = p.timestamp;
  }
  if (first && last && *last > *first) {
    const double duration = (*last - *first).to_seconds();
    result.aggregate_mean_kbps = static_cast<double>(total_bytes) * 8.0 / duration / 1000.0;

    // Windowed timeline over the whole boundary trace.
    const double win = config.bandwidth_window.to_seconds();
    std::size_t i = 0;
    for (double w = 0.0; w < duration; w += win) {
      std::uint64_t bytes = 0;
      while (i < dissected.size() &&
             (dissected[i].timestamp - *first).to_seconds() < w + win) {
        bytes += dissected[i].frame_length;
        ++i;
      }
      const double kbps = static_cast<double>(bytes) * 8.0 / win / 1000.0;
      result.total_bandwidth_timeline.emplace_back(w, kbps);
      result.aggregate_peak_kbps = std::max(result.aggregate_peak_kbps, kbps);
    }
  }
  const auto gap_stats = SummaryStats::from(gaps);
  result.interarrival_cv =
      gap_stats.mean > 0.0 ? gap_stats.stddev / gap_stats.mean : 0.0;
  return result;
}

}  // namespace streamlab
