#include "core/campaign.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "core/flightrec.hpp"
#include "obs/obs.hpp"

namespace streamlab {
namespace {

// --- Config digest (FNV-1a over the parameters that shape trial results) ---

struct Digester {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

void fold_episode(Digester& d, const FaultEpisode& e) {
  d.u64(static_cast<std::uint64_t>(e.kind));
  d.i64(e.router_index);
  d.u64(e.detour ? 1 : 0);
  d.i64(e.start.ns());
  d.i64(e.duration.ns());
  d.i64(e.bandwidth.bits_per_second());
  d.i64(e.extra_delay.ns());
  d.f64(e.loss_probability);
  d.f64(e.gilbert.p_good_to_bad);
  d.f64(e.gilbert.p_bad_to_good);
  d.f64(e.gilbert.loss_good);
  d.f64(e.gilbert.loss_bad);
}

// --- NDJSON helpers (hand-rolled: the repo carries no JSON dependency) ---

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        out += (static_cast<unsigned char>(c) < 0x20) ? ' ' : c;
    }
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Value of `"key":` in a one-line JSON object: unescaped content for
/// strings, the raw token for numbers. nullopt when the key is absent.
std::optional<std::string> json_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return std::nullopt;
  if (line[pos] == '"') {
    std::string out;
    for (++pos; pos < line.size() && line[pos] != '"'; ++pos) {
      char c = line[pos];
      if (c == '\\' && pos + 1 < line.size()) {
        c = line[++pos];
        if (c == 'n') c = '\n';
        else if (c == 'r') c = '\r';
        else if (c == 't') c = '\t';
      }
      out += c;
    }
    return out;
  }
  const std::size_t end = line.find_first_of(",}", pos);
  if (end == std::string::npos) return std::nullopt;
  std::string out = line.substr(pos, end - pos);
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::uint64_t json_u64(const std::string& line, const std::string& key,
                       std::uint64_t fallback = 0) {
  const auto v = json_value(line, key);
  if (!v || v->empty()) return fallback;
  return std::stoull(*v);
}

std::int64_t json_i64(const std::string& line, const std::string& key,
                      std::int64_t fallback = 0) {
  const auto v = json_value(line, key);
  if (!v || v->empty()) return fallback;
  return std::stoll(*v);
}

}  // namespace

namespace campaign_detail {

std::string config_hex(const CampaignConfig& config) {
  return hex64(campaign_config_digest(config));
}

std::string manifest_line(const TrialOutcome& t, const std::string& config_hex) {
  std::string line = "{";
  const auto num = [&line](const char* key, std::uint64_t v) {
    line += "\"" + std::string(key) + "\":" + std::to_string(v) + ",";
  };
  num("trial", t.index);
  num("seed", t.seed);
  line += "\"config\":\"" + config_hex + "\",";
  line += "\"status\":\"" + std::string(to_string(t.status)) + "\",";
  line += "\"reason\":\"" + json_escape(t.reason) + "\",";
  num("checks", t.checks);
  num("violations", t.violations);
  num("sim_events", t.sim_events);
  num("budget_exhausted", t.budget_exhausted ? 1 : 0);
  line += "\"digest\":\"" + hex64(t.digest) + "\",";
  line += "\"divergence\":" +
          std::to_string(t.divergence ? static_cast<std::int64_t>(*t.divergence) : -1) +
          ",";
  num("sessions", t.sessions);
  num("sessions_completed", t.sessions_completed);
  num("sessions_failed", t.sessions_failed);
  num("frames_rendered", t.frames_rendered);
  num("frames_dropped", t.frames_dropped);
  num("packets_received", t.packets_received);
  num("packets_lost", t.packets_lost);
  num("rebuffers", t.rebuffer_events);
  num("reroutes", t.reroutes);
  num("route_restores", t.route_restores);
  num("failovers", t.failovers);
  num("packets_recovered", t.packets_recovered);
  num("nacks_sent", t.nacks_sent);
  num("retx_sent", t.retransmissions_sent);
  num("parity_packets", t.parity_packets);
  num("path_switches", t.path_switches);
  num("nacks_suppressed", t.nack_suppressed);
  line += "\"router_down_stall_ns\":" + std::to_string(t.router_down_stall.ns()) + ",";
  line += "\"stall_ns\":" + std::to_string(t.stall_time.ns());
  if (t.status == TrialStatus::kQuarantined) {
    // Worker post-mortem evidence rides quarantined records only: completed
    // lines must stay byte-identical with the serial path no matter how
    // many process-worker reassignments the trial survived.
    line += ",\"attempts\":" + std::to_string(t.attempts);
    line += ",\"worker_exit_status\":" + std::to_string(t.worker_exit_status);
    line += ",\"stderr_tail\":\"" + json_escape(t.stderr_tail) + "\"";
  }
  // Optional trailing field so manifests from pre-telemetry builds (and
  // collect_telemetry=false runs) parse identically.
  if (t.telemetry && !t.telemetry->empty())
    line += ",\"telemetry\":\"" + json_escape(t.telemetry->serialize()) + "\"";
  line += "}";
  return line;
}

TrialOutcome parse_manifest_line(const std::string& line, const std::string& config_hex,
                                 std::size_t line_no) {
  const auto fail = [line_no](const std::string& why) {
    throw std::runtime_error("resume manifest line " + std::to_string(line_no) + ": " +
                             why);
  };
  const auto config = json_value(line, "config");
  if (!config) fail("missing config digest");
  if (*config != config_hex)
    fail("config digest mismatch (manifest " + *config + ", campaign " + config_hex +
         "): refusing to mix trials from different configurations");
  const auto status = json_value(line, "status");
  if (!status) fail("missing status");

  TrialOutcome t;
  t.index = json_u64(line, "trial");
  t.seed = json_u64(line, "seed");
  if (*status == to_string(TrialStatus::kCompleted)) {
    t.status = TrialStatus::kCompleted;
  } else if (*status == to_string(TrialStatus::kQuarantined)) {
    t.status = TrialStatus::kQuarantined;
  } else {
    fail("unknown status '" + *status + "'");
  }
  t.reason = json_value(line, "reason").value_or("");
  t.checks = json_u64(line, "checks");
  t.violations = json_u64(line, "violations");
  t.sim_events = json_u64(line, "sim_events");
  t.budget_exhausted = json_u64(line, "budget_exhausted") != 0;
  if (const auto digest = json_value(line, "digest"); digest && !digest->empty())
    t.digest = std::stoull(*digest, nullptr, 16);
  if (const std::int64_t div = json_i64(line, "divergence", -1); div >= 0)
    t.divergence = static_cast<std::uint64_t>(div);
  t.from_manifest = true;
  t.sessions = json_u64(line, "sessions");
  t.sessions_completed = json_u64(line, "sessions_completed");
  t.sessions_failed = json_u64(line, "sessions_failed");
  t.frames_rendered = json_u64(line, "frames_rendered");
  t.frames_dropped = json_u64(line, "frames_dropped");
  t.packets_received = json_u64(line, "packets_received");
  t.packets_lost = json_u64(line, "packets_lost");
  t.rebuffer_events = json_u64(line, "rebuffers");
  t.reroutes = json_u64(line, "reroutes");
  t.route_restores = json_u64(line, "route_restores");
  t.failovers = json_u64(line, "failovers");
  t.packets_recovered = json_u64(line, "packets_recovered");
  t.nacks_sent = json_u64(line, "nacks_sent");
  t.retransmissions_sent = json_u64(line, "retx_sent");
  t.parity_packets = json_u64(line, "parity_packets");
  t.path_switches = json_u64(line, "path_switches");
  t.nack_suppressed = json_u64(line, "nacks_suppressed");
  t.router_down_stall = Duration::nanos(json_i64(line, "router_down_stall_ns"));
  t.stall_time = Duration::nanos(json_i64(line, "stall_ns"));
  if (t.status == TrialStatus::kQuarantined) {
    t.attempts = static_cast<std::uint32_t>(json_u64(line, "attempts"));
    t.worker_exit_status = static_cast<int>(json_i64(line, "worker_exit_status"));
    t.stderr_tail = json_value(line, "stderr_tail").value_or("");
  }
  if (const auto telemetry = json_value(line, "telemetry"); telemetry && !telemetry->empty()) {
    auto parsed = obs::TrialTelemetry::parse(*telemetry);
    if (!parsed) fail("unparseable telemetry snapshot");
    t.telemetry = std::move(*parsed);
  }
  return t;
}

}  // namespace campaign_detail

namespace {

// --- Trial execution ---

/// Copies the per-session metrics a manifest line can carry (and the
/// aggregate folds) out of the full run result.
void fill_salvage(TrialOutcome& t) {
  if (!t.result) return;
  const auto fold_session = [&t](const std::optional<SessionRecoveryMetrics>& m) {
    if (!m) return;
    ++t.sessions;
    if (m->completed) ++t.sessions_completed;
    if (m->session_failed()) ++t.sessions_failed;
    t.frames_rendered += m->frames_rendered;
    t.frames_dropped += m->frames_dropped;
    t.packets_received += m->packets_received;
    t.packets_lost += m->packets_lost;
    t.rebuffer_events += m->rebuffer_events;
    t.stall_time = t.stall_time + m->stall_time;
    t.failovers += m->failovers;
    t.router_down_stall = t.router_down_stall + m->stall_during_router_down;
    t.packets_recovered += m->packets_recovered;
    t.nacks_sent += m->nacks_sent;
    t.retransmissions_sent += m->retransmissions_sent;
    t.parity_packets += m->parity_packets;
    t.path_switches += m->path_switches;
    t.nack_suppressed += m->nack_suppressed;
  };
  fold_session(t.result->real);
  fold_session(t.result->media);
  t.reroutes = t.result->reroutes;
  t.route_restores = t.result->route_restores;
}

/// Derives the per-trial scalar samples/tallies the cross-trial
/// distributions track, then folds in the rolled-up registry snapshot.
obs::TrialTelemetry snapshot_trial(const TrialOutcome& t, const ClipInfo& clip,
                                   const obs::Obs* trial_obs) {
  obs::TrialTelemetry out;
  if (trial_obs != nullptr) out = obs::TrialTelemetry::from_registry(trial_obs->registry());
  if (t.result) {
    std::uint64_t wire_bytes = 0;
    double latency_sum = 0.0;
    std::size_t latency_sessions = 0;
    const auto scan = [&](const std::optional<SessionRecoveryMetrics>& m) {
      if (!m) return;
      wire_bytes += m->total_wire_bytes;
      if (m->packets_recovered > 0) {
        latency_sum += m->repair_latency_mean_ms;
        ++latency_sessions;
      }
    };
    scan(t.result->real);
    scan(t.result->media);
    if (clip.length.ns() > 0)
      out.set_sample("trial.goodput_kbps",
                     static_cast<double>(wire_bytes) * 8.0 / 1000.0 / clip.length.to_seconds());
    out.set_sample("trial.stall_ms", t.stall_time.to_millis());
    const std::uint64_t loss_denominator = t.packets_lost + t.packets_recovered;
    out.set_sample("trial.recovery_ratio",
                   loss_denominator > 0
                       ? static_cast<double>(t.packets_recovered) / static_cast<double>(loss_denominator)
                       : 0.0);
    if (latency_sessions > 0)
      out.set_sample("trial.repair_latency_ms", latency_sum / static_cast<double>(latency_sessions));
    out.set_tally("trial.sim_events", t.sim_events);
    out.set_tally("trial.packets_lost", t.packets_lost);
    out.set_tally("trial.rebuffers", t.rebuffer_events);
    out.set_tally("trial.reroutes", t.reroutes);
  }
  return out;
}

}  // namespace

namespace campaign_detail {

obs::Obs::Config trial_obs_config(const CampaignConfig& config) {
  obs::Obs::Config obs_config;
  obs_config.trace_capacity =
      config.flight_recorder_records > 0 ? config.flight_recorder_records : 1;
  return obs_config;
}

TrialOutcome run_trial(const CampaignConfig& config, std::size_t index,
                       const std::string& config_hex, obs::Obs* scratch_obs) {
  TrialOutcome t;
  t.index = index;
  t.seed = config.base_seed + index;
  const auto wall_start = std::chrono::steady_clock::now();

  audit::Auditor auditor;
  audit::DeterminismProbe probe;
  probe.enable_recording(config.verify_determinism);

  // Scratch Obs: metric snapshot source + flight-recorder tail. Each worker
  // owns one and resets it between trials, so registry maps and the intern
  // table are built once per worker, not once per trial — the reset restores
  // the exact just-constructed state, keeping trial output byte-identical to
  // a fresh Obs. Runs that pass their own scenario.obs keep the legacy
  // single-run contract.
  const bool collect = config.collect_telemetry &&
                       config.scenario.obs == nullptr && scratch_obs != nullptr;
  obs::Obs* trial_obs = collect ? scratch_obs : nullptr;
  if (collect) trial_obs->reset_for_reuse();

  TurbulenceScenarioConfig scenario = config.scenario;
  scenario.seed = t.seed;
  scenario.auditor = &auditor;
  scenario.probe = &probe;
  if (collect) scenario.obs = trial_obs;

  try {
    TurbulenceRunResult run = run_turbulence_clip(config.clip, scenario);
    t.sim_events = run.sim_events;
    t.budget_exhausted = run.budget_exhausted;
    t.result = std::move(run);
    t.digest = probe.digest();

    if (config.verify_determinism) {
      audit::Auditor replay_auditor;
      audit::DeterminismProbe replay_probe;
      replay_probe.enable_recording(true);
      TurbulenceScenarioConfig replay = scenario;
      replay.seed = t.seed + config.verify_seed_skew;
      replay.auditor = &replay_auditor;
      replay.probe = &replay_probe;
      // The replay must not pollute the primary run's Obs (rate-limiter
      // state, double-counted metrics); divergence detection needs only the
      // probes.
      replay.obs = nullptr;
      run_turbulence_clip(config.clip, replay);
      if (probe.digest() != replay_probe.digest() ||
          probe.events() != replay_probe.events())
        t.divergence = audit::first_divergence(probe, replay_probe)
                           .value_or(std::min(probe.events(), replay_probe.events()));
    }

    if (config.fault_hook) config.fault_hook(auditor, index, t.seed);
  } catch (const std::exception& e) {
    t.status = TrialStatus::kQuarantined;
    t.reason = std::string("exception: ") + e.what();
  } catch (...) {
    t.status = TrialStatus::kQuarantined;
    t.reason = "exception: unknown";
  }

  t.checks = auditor.report().checks_performed;
  t.violations = auditor.report().total_violations;
  if (t.status == TrialStatus::kCompleted) {
    if (!auditor.report().clean()) {
      t.status = TrialStatus::kQuarantined;
      t.reason = "audit: " + auditor.report().summary();
    } else if (t.divergence) {
      t.status = TrialStatus::kQuarantined;
      t.reason =
          "determinism: runs diverge at event #" + std::to_string(*t.divergence);
    }
  }
  if (t.status == TrialStatus::kCompleted) fill_salvage(t);

  if (collect) t.telemetry = snapshot_trial(t, config.clip, trial_obs);
  if (t.status == TrialStatus::kQuarantined) {
    // Render the flight-recorder document here, while the evidence (Obs
    // ring, audit report) is still alive; the coordinator only writes the
    // bytes to disk.
    PostmortemContext context;
    context.trial_index = t.index;
    context.seed = t.seed;
    context.reason = t.reason;
    context.config_hex = config_hex;
    context.sim_events = t.sim_events;
    context.budget_exhausted = t.budget_exhausted;
    t.postmortem = render_postmortem(context, auditor.report(), trial_obs,
                                     t.telemetry ? &*t.telemetry : nullptr,
                                     config.flight_recorder_records);
  }
  t.wall_ns = static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                             std::chrono::steady_clock::now() - wall_start)
                                             .count());
  return t;
}

ManifestRead read_resume_manifest(const std::string& path, const std::string& config_hex,
                                  std::size_t max_trials, bool repair_in_place) {
  ManifestRead out;
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return out;  // no manifest yet: nothing to resume
    content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  // `good_end` tracks the byte offset just past the last intact line, so a
  // torn tail can be truncated away before the campaign appends new lines.
  std::size_t pos = 0, line_no = 0, good_end = 0;
  bool torn = false, missing_final_newline = false;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const bool has_newline = nl != std::string::npos;
    const std::size_t end = has_newline ? nl : content.size();
    const std::size_t next = has_newline ? nl + 1 : content.size();
    std::string line = content.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_no;
    if (line.empty()) {
      good_end = next;
      pos = next;
      continue;
    }
    try {
      TrialOutcome t = parse_manifest_line(line, config_hex, line_no);
      if (t.index < max_trials) out.restored.insert_or_assign(t.index, std::move(t));
      good_end = next;
      missing_final_newline = !has_newline;
    } catch (const std::exception& e) {
      // A crash mid-`write(2)` leaves a structurally truncated final line:
      // no trailing newline, or a line that never reached its closing
      // brace. Tolerate exactly that shape — drop the bytes, warn, and let
      // the trial re-run. A *complete* final line that fails to parse (or
      // carries a foreign config digest) is still a hard error: that is
      // corruption or a different study, not a torn write.
      const bool structurally_torn = !has_newline || line.back() != '}';
      if (next >= content.size() && structurally_torn) {
        ++out.torn_lines;
        torn = true;
        std::fprintf(stderr,
                     "campaign: resume manifest %s line %zu is torn "
                     "(mid-write crash?); dropping it and re-running the trial: %s\n",
                     path.c_str(), line_no, e.what());
      } else {
        throw;
      }
    }
    pos = next;
  }

  if (repair_in_place) {
    if (torn) {
      // Cut the torn bytes so the append stream starts on a line boundary;
      // leaving them would glue the next manifest line onto the stump.
      std::error_code ec;
      std::filesystem::resize_file(path, good_end, ec);
      if (ec)
        throw std::runtime_error("cannot truncate torn resume manifest " + path + ": " +
                                 ec.message());
    } else if (missing_final_newline) {
      // Intact data, lost newline (killed between the two writes): restore
      // the separator so appended lines stay well-formed.
      std::ofstream fix(path, std::ios::app | std::ios::binary);
      fix << '\n';
    }
  }
  return out;
}

Committer::Committer(const CampaignConfig& config, std::string config_hex,
                     std::size_t workers)
    : config_(config),
      config_hex_(std::move(config_hex)),
      workers_(workers),
      start_(std::chrono::steady_clock::now()) {
  if (!config_.manifest_path.empty()) {
    manifest_.open(config_.manifest_path, std::ios::app);
    if (!manifest_)
      throw std::runtime_error("cannot open resume manifest for append: " +
                               config_.manifest_path);
  }
  postmortem_prefix_ = config_.postmortem_prefix;
  if (postmortem_prefix_.empty() && !config_.manifest_path.empty())
    postmortem_prefix_ = config_.manifest_path + ".postmortem-";
}

void Committer::commit(TrialOutcome outcome, const std::string* wire_line) {
  if (outcome.from_manifest) {
    ++result_.resumed;
  } else {
    if (manifest_.is_open()) {
      // One line per finished trial, flushed as soon as every *earlier*
      // trial's line is down: a campaign killed mid-run resumes from the
      // first trial with no line, and lines never appear out of order.
      manifest_ << (wire_line != nullptr ? *wire_line : manifest_line(outcome, config_hex_))
                << '\n'
                << std::flush;
    }
    busy_ns_ += outcome.wall_ns;
    ++fresh_done_;
  }
  if (outcome.status == TrialStatus::kCompleted) {
    ++result_.completed;
    result_.aggregate.fold(outcome);
    result_.telemetry.add_counter("trials.completed");
    // Distributions fold only completed trials — quarantined metrics are
    // evidence (flight recorder), not population data.
    if (outcome.telemetry) result_.telemetry.fold(*outcome.telemetry);
  } else {
    ++result_.quarantined;
    result_.telemetry.add_counter("trials.quarantined");
    if (!outcome.postmortem.empty() && !postmortem_prefix_.empty()) {
      const std::string path =
          postmortem_prefix_ + std::to_string(outcome.seed) + ".ndjson";
      if (std::ofstream out(path); out) {
        out << outcome.postmortem;
        if (out) result_.postmortem_paths.push_back(path);
      }
    }
  }
  result_.trials.push_back(std::move(outcome));
  ++committed_;

  const std::size_t done = committed_;
  if (config_.progress_hook && config_.progress_every > 0 &&
      (done % config_.progress_every == 0 || done == config_.trials)) {
    CampaignProgress p;
    p.trials_total = config_.trials;
    p.trials_done = done;
    p.completed = result_.completed;
    p.quarantined = result_.quarantined;
    p.resumed = result_.resumed;
    p.workers = workers_;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    p.wall_seconds = elapsed_ns / 1e9;
    if (fresh_done_ > 0 && elapsed_ns > 0.0) {
      p.trials_per_sec = static_cast<double>(fresh_done_) / p.wall_seconds;
      p.eta_seconds = static_cast<double>(config_.trials - done) / p.trials_per_sec;
      p.worker_utilization =
          static_cast<double>(busy_ns_) / (elapsed_ns * static_cast<double>(workers_));
      if (p.worker_utilization > 1.0) p.worker_utilization = 1.0;
    }
    p.telemetry = &result_.telemetry;
    config_.progress_hook(p);
  }
}

CampaignResult Committer::finish() { return std::move(result_); }

}  // namespace campaign_detail

const char* to_string(TrialStatus status) {
  return status == TrialStatus::kCompleted ? "completed" : "quarantined";
}

void CampaignAggregate::fold(const TrialOutcome& trial) {
  ++trials;
  sessions += trial.sessions;
  sessions_completed += trial.sessions_completed;
  sessions_failed += trial.sessions_failed;
  frames_rendered += trial.frames_rendered;
  frames_dropped += trial.frames_dropped;
  packets_received += trial.packets_received;
  packets_lost += trial.packets_lost;
  rebuffer_events += trial.rebuffer_events;
  stall_time = stall_time + trial.stall_time;
  reroutes += trial.reroutes;
  route_restores += trial.route_restores;
  failovers += trial.failovers;
  router_down_stall = router_down_stall + trial.router_down_stall;
  packets_recovered += trial.packets_recovered;
  nacks_sent += trial.nacks_sent;
  retransmissions_sent += trial.retransmissions_sent;
  parity_packets += trial.parity_packets;
  path_switches += trial.path_switches;
  nack_suppressed += trial.nack_suppressed;
}

std::vector<std::uint64_t> CampaignResult::quarantined_seeds() const {
  std::vector<std::uint64_t> seeds;
  for (const TrialOutcome& t : trials)
    if (t.status == TrialStatus::kQuarantined) seeds.push_back(t.seed);
  return seeds;
}

std::uint64_t campaign_config_digest(const CampaignConfig& config) {
  Digester d;
  const ClipInfo& clip = config.clip;
  d.i64(clip.data_set);
  d.u64(static_cast<std::uint64_t>(clip.content));
  d.u64(static_cast<std::uint64_t>(clip.player));
  d.u64(static_cast<std::uint64_t>(clip.tier));
  d.i64(clip.encoded_rate.bits_per_second());
  d.i64(clip.advertised_rate.bits_per_second());
  d.i64(clip.length.ns());

  const TurbulenceScenarioConfig& s = config.scenario;
  d.i64(s.path.hop_count);
  d.i64(s.path.access_bandwidth.bits_per_second());
  d.i64(s.path.backbone_bandwidth.bits_per_second());
  d.i64(s.path.bottleneck_bandwidth.bits_per_second());
  d.i64(s.path.one_way_propagation.ns());
  d.i64(s.path.jitter_stddev.ns());
  d.f64(s.path.loss_probability);
  d.u64(s.path.queue_limit_bytes);
  // Self-healing topology/control-plane knobs: trials run with a different
  // detour, repair policy or mirror setup are not comparable.
  d.u64(s.path.detour ? 1 : 0);
  if (s.path.detour) {
    d.i64(s.path.detour->span_first);
    d.i64(s.path.detour->span_last);
    d.i64(s.path.detour->hops);
    d.i64(s.path.detour->metric);
  }
  d.u64(s.repair ? 1 : 0);
  if (s.repair) {
    d.i64(s.repair->detection_delay.ns());
    d.i64(s.repair->hold_down.ns());
  }
  d.i64(s.repair_span_first);
  d.i64(s.repair_span_last);
  d.u64(s.mirror_server ? 1 : 0);
  d.i64(s.icmp_unreachable_threshold);
  // Loss-repair policy: trials with different FEC/NACK/pacer parameters
  // produce different wire traffic and are not comparable.
  d.i64(s.repair_layer.fec_k);
  d.i64(s.repair_layer.fec_stride);
  d.u64(s.repair_layer.nack ? 1 : 0);
  d.f64(s.repair_layer.nack_rtt_multiplier);
  d.i64(s.repair_layer.nack_min_delay.ns());
  d.i64(s.repair_layer.nack_max_delay.ns());
  d.i64(s.repair_layer.nack_max_retries);
  d.u64(s.repair_layer.retx_buffer_packets);
  d.f64(s.repair_layer.pacer_rate_fraction);
  d.u64(s.repair_layer.pacer_burst_bytes);
  d.i64(s.repair_layer.nack_reorder_tolerance);
  // Multipath striping policy: striped and single-path trials produce
  // different wire traffic, as do different weights or health thresholds.
  d.u64(s.multipath.enabled ? 1 : 0);
  if (s.multipath.enabled) {
    d.i64(s.multipath.primary_weight);
    d.i64(s.multipath.detour_weight);
    d.f64(s.multipath.loss_unhealthy);
    d.f64(s.multipath.loss_healthy);
    d.f64(s.multipath.ewma_alpha);
    d.i64(s.multipath.strike_limit);
    d.i64(s.multipath.report_interval.ns());
    d.i64(s.multipath.hold_down.ns());
    d.u64(s.multipath.join_buffer_packets);
    d.i64(s.multipath.join_hold.ns());
    d.i64(s.multipath.nack_reorder_tolerance);
  }
  d.u64(s.recovery.play_retry ? 1 : 0);
  d.i64(s.recovery.play_timeout.ns());
  d.f64(s.recovery.backoff);
  d.i64(s.recovery.max_play_attempts);
  d.i64(s.recovery.inactivity_timeout.ns());
  d.u64(s.rebuffering ? 1 : 0);
  d.i64(s.max_stall.ns());
  d.u64(s.episodes.size());
  for (const FaultEpisode& e : s.episodes) fold_episode(d, e);
  d.i64(s.extra_sim_time.ns());
  d.u64(s.max_sim_events);
  d.i64(s.max_wall_time.count());

  d.u64(config.trials);
  d.u64(config.base_seed);
  d.u64(config.verify_determinism ? 1 : 0);
  d.u64(config.verify_seed_skew);
  return d.h;
}

std::size_t resolve_workers(const CampaignConfig& config, std::size_t pending) {
  std::size_t n = config.workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;  // hardware_concurrency may be unknowable
  }
  if (n > pending) n = pending;
  return n == 0 ? 1 : n;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const std::string config_hex = hex64(campaign_config_digest(config));
  const auto is_cancelled = [&config] {
    return config.cancel != nullptr && config.cancel->load(std::memory_order_relaxed);
  };

  // Restore finished trials from an existing manifest (resume), tolerating
  // — and truncating away — a torn trailing line from a mid-write crash.
  campaign_detail::ManifestRead manifest_read;
  if (!config.manifest_path.empty())
    manifest_read = campaign_detail::read_resume_manifest(config.manifest_path,
                                                          config_hex, config.trials);
  std::map<std::size_t, TrialOutcome>& restored = manifest_read.restored;

  // Trials still to run, in index order (the claim order of the pool).
  std::vector<std::size_t> pending;
  pending.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i)
    if (!restored.contains(i)) pending.push_back(i);

  const std::size_t workers = resolve_workers(config, pending.size());
  // An Obs context is thread-confined and single-run; two concurrent trials
  // writing one registry/tracer would race. Campaigns were already told to
  // leave `obs` unset (SimTime restarts per trial) — under a parallel pool
  // that advice becomes a hard requirement, rejected up front.
  if (config.scenario.obs != nullptr && workers > 1)
    throw std::runtime_error(
        "campaign: scenario.obs cannot be shared across concurrent trials; "
        "run with workers=1 or leave obs unset");

  campaign_detail::Committer committer(config, config_hex, workers);

  // Worker pool. Each worker claims the next pending index, runs the trial
  // entirely on its own thread (run_trial contains every exception inside
  // the outcome), and parks the result in `finished`. The coordinator below
  // consumes outcomes strictly in index order, so everything order-sensitive
  // — manifest lines, aggregate folds, quarantine counts — is identical to a
  // serial run. With workers == 1 no thread is spawned at all.
  std::vector<std::optional<TrialOutcome>> finished(config.trials);
  std::mutex mu;
  std::condition_variable trial_done;
  std::atomic<std::size_t> next_claim{0};
  std::size_t workers_alive = 0;  // guarded by mu
  const bool want_scratch_obs =
      config.collect_telemetry && config.scenario.obs == nullptr;
  const auto worker_body = [&] {
    // One reusable Obs per worker thread: registry maps and the intern table
    // are built on the first trial, later trials only reset values.
    std::optional<obs::Obs> scratch;
    if (want_scratch_obs) scratch.emplace(campaign_detail::trial_obs_config(config));
    while (!is_cancelled()) {
      const std::size_t k = next_claim.fetch_add(1, std::memory_order_relaxed);
      if (k >= pending.size()) break;
      const std::size_t index = pending[k];
      TrialOutcome outcome = campaign_detail::run_trial(config, index, config_hex,
                                                        scratch ? &*scratch : nullptr);
      {
        std::lock_guard<std::mutex> lock(mu);
        finished[index] = std::move(outcome);
      }
      trial_done.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      --workers_alive;
    }
    // The coordinator's cancellation predicate watches workers_alive.
    trial_done.notify_all();
  };

  std::vector<std::thread> pool;
  if (workers > 1) {
    workers_alive = workers;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_body);
  }

  // The serial path runs trials on this thread; it gets the same reusable
  // scratch Obs a pool worker would.
  std::optional<obs::Obs> serial_scratch;
  if (workers <= 1 && want_scratch_obs)
    serial_scratch.emplace(campaign_detail::trial_obs_config(config));

  bool interrupted = false;
  for (std::size_t i = 0; i < config.trials; ++i) {
    if (auto it = restored.find(i); it != restored.end()) {
      committer.commit(std::move(it->second));
      continue;
    }
    TrialOutcome outcome;
    if (workers > 1) {
      std::unique_lock<std::mutex> lock(mu);
      // A cancelled pool stops claiming; once every worker has parked, a
      // trial with no outcome will never get one — that is where the
      // interrupted campaign's manifest ends. Everything that did finish
      // in contiguous order is still committed below.
      trial_done.wait(lock, [&] {
        return finished[i].has_value() || (is_cancelled() && workers_alive == 0);
      });
      if (!finished[i].has_value()) {
        interrupted = true;
        break;
      }
      outcome = std::move(*finished[i]);
      finished[i].reset();
    } else {
      if (is_cancelled()) {
        interrupted = true;
        break;
      }
      outcome = campaign_detail::run_trial(config, i, config_hex,
                                           serial_scratch ? &*serial_scratch : nullptr);
    }
    committer.commit(std::move(outcome));
  }

  for (std::thread& t : pool) t.join();
  CampaignResult result = committer.finish();
  result.interrupted = interrupted;
  result.manifest_torn_lines = manifest_read.torn_lines;
  return result;
}

}  // namespace streamlab
