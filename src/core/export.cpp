#include "core/export.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/figures.hpp"
#include "util/strings.hpp"

namespace streamlab {
namespace {

std::string player_tag(PlayerKind player) {
  return player == PlayerKind::kRealPlayer ? "real" : "media";
}

void values_csv(const char* header, const std::vector<double>& values, std::ostream& out) {
  out << header << "\n";
  for (const double v : values) out << fmt_double(v, 6) << "\n";
}

}  // namespace

void study_results_csv(const StudyResults& study, std::ostream& out) {
  out << "clip_id,player,tier,encoding_kbps,playback_kbps,frame_rate_fps,fragment_pct,"
         "buffering_ratio,streaming_s,packets,lost,quality_pct\n";
  for (const auto* c : study.clips()) {
    out << c->clip.id() << "," << player_tag(c->clip.player) << ","
        << to_string(c->clip.tier) << "," << fmt_double(c->clip.encoded_rate.to_kbps(), 1)
        << "," << fmt_double(c->tracker.average_playback_bandwidth.to_kbps(), 1) << ","
        << fmt_double(c->tracker.average_frame_rate, 2) << ","
        << fmt_double(100.0 * c->flow.fragment_fraction(), 2) << ","
        << fmt_double(c->buffering.ratio(), 3) << ","
        << fmt_double(c->server_streaming_duration.to_seconds(), 1) << ","
        << c->tracker.total_packets << "," << c->tracker.total_lost << ","
        << fmt_double(c->tracker.reception_quality(), 2) << "\n";
  }
}

std::string study_results_csv(const StudyResults& study) {
  std::ostringstream out;
  study_results_csv(study, out);
  return out.str();
}

void figure_csv(const StudyResults& study, const std::string& figure, std::ostream& out) {
  if (figure == "fig01") return values_csv("rtt_ms", figures::rtt_samples_ms(study), out);
  if (figure == "fig02") return values_csv("hops", figures::hop_counts(study), out);
  if (figure == "fig03") {
    out << "player,encoding_kbps,playback_kbps\n";
    for (const auto& p : figures::playback_vs_encoding(study))
      out << player_tag(p.player) << "," << fmt_double(p.encoding_kbps, 1) << ","
          << fmt_double(p.playback_kbps, 1) << "\n";
    return;
  }
  if (figure == "fig05") {
    out << "player,encoded_kbps,fragment_pct\n";
    for (const auto& p : figures::fragmentation_vs_rate(study))
      out << player_tag(p.player) << "," << fmt_double(p.encoded_kbps, 1) << ","
          << fmt_double(p.fragment_percent, 2) << "\n";
    return;
  }
  if (figure == "fig07") {
    out << "player,normalized_size\n";
    for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer})
      for (const double v : figures::normalized_packet_sizes(study, player))
        out << player_tag(player) << "," << fmt_double(v, 5) << "\n";
    return;
  }
  if (figure == "fig09") {
    out << "player,normalized_gap\n";
    for (const PlayerKind player : {PlayerKind::kRealPlayer, PlayerKind::kMediaPlayer})
      for (const double v : figures::normalized_interarrivals(study, player))
        out << player_tag(player) << "," << fmt_double(v, 5) << "\n";
    return;
  }
  if (figure == "fig11") {
    out << "encoding_kbps,buffering_ratio\n";
    for (const auto& p : figures::buffering_ratio_vs_rate(study))
      out << fmt_double(p.encoding_kbps, 1) << "," << fmt_double(p.ratio, 3) << "\n";
    return;
  }
  if (figure == "fig14") {
    out << "player,tier,encoding_kbps,fps\n";
    for (const auto& p : figures::framerate_vs_encoding(study))
      out << player_tag(p.player) << "," << to_string(p.tier) << ","
          << fmt_double(p.x, 1) << "," << fmt_double(p.fps, 2) << "\n";
    return;
  }
}

std::string figure_csv(const StudyResults& study, const std::string& figure) {
  std::ostringstream out;
  figure_csv(study, figure, out);
  return out.str();
}

int export_study(const StudyResults& study, const std::string& directory) {
  std::filesystem::create_directories(directory);
  int written = 0;
  const auto write = [&](const std::string& name, auto&& emit) {
    std::ofstream out(directory + "/" + name);
    emit(out);
    // An unknown figure emits nothing: drop the empty file rather than
    // leave a zero-byte artifact behind.
    if (out.tellp() == std::ofstream::pos_type(0)) {
      out.close();
      std::filesystem::remove(directory + "/" + name);
      return;
    }
    if (out) ++written;
  };
  write("study_results.csv", [&](std::ostream& o) { study_results_csv(study, o); });
  for (const char* fig : {"fig01", "fig02", "fig03", "fig05", "fig07", "fig09",
                          "fig11", "fig14"})
    write(std::string(fig) + ".csv",
          [&](std::ostream& o) { figure_csv(study, fig, o); });
  return written;
}

namespace {

void append_recovery_row(std::ostream& out, const std::string& scenario,
                         const SessionRecoveryMetrics& m) {
  out << scenario << "," << m.clip.id() << "," << player_tag(m.clip.player) << ","
      << (m.established ? 1 : 0) << "," << m.play_attempts << ","
      << (m.abandoned ? 1 : 0) << "," << (m.stream_dead ? 1 : 0) << ","
      << (m.completed ? 1 : 0) << ","
      << (m.time_to_recover ? fmt_double(m.time_to_recover->to_seconds(), 3)
                            : std::string())
      << "," << m.rebuffer_events << "," << fmt_double(m.stall_time.to_seconds(), 3)
      << "," << m.frames_rendered << "," << m.frames_dropped << ","
      << m.frames_dropped_during_episodes << "," << m.frames_dropped_after_episodes
      << "," << m.packets_received << "," << m.packets_lost << ","
      << m.duplicate_packets << "," << m.packets_recovered << ","
      << fmt_double(m.recovery_ratio(), 4) << ","
      << fmt_double(m.repair_latency_mean_ms, 3) << ","
      << fmt_double(m.repair_overhead(), 4) << "," << m.path_switches << ","
      << fmt_double(m.primary_loss_ratio(), 4) << ","
      << fmt_double(m.detour_loss_ratio(), 4) << ","
      << fmt_double(m.primary_goodput_kbps, 1) << ","
      << fmt_double(m.detour_goodput_kbps, 1) << "," << m.reorder_depth_p95
      << "," << m.nack_suppressed << "\n";
}

}  // namespace

void turbulence_csv(const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs,
                    std::ostream& out) {
  out << "scenario,clip_id,player,established,play_attempts,abandoned,stream_dead,"
         "completed,time_to_recover_s,rebuffer_events,stall_s,frames_rendered,"
         "frames_dropped,dropped_during,dropped_after,packets,lost,duplicates,"
         "recovered,recovery_ratio,repair_latency_mean_ms,repair_overhead,"
         "path_switches,primary_loss,detour_loss,primary_goodput_kbps,"
         "detour_goodput_kbps,reorder_depth_p95,nack_suppressed\n";
  for (const auto& [scenario, run] : runs) {
    if (run.real) append_recovery_row(out, scenario, *run.real);
    if (run.media) append_recovery_row(out, scenario, *run.media);
  }
}

std::string turbulence_csv(
    const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs) {
  std::ostringstream out;
  turbulence_csv(runs, out);
  return out.str();
}

void turbulence_episodes_csv(
    const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs,
    std::ostream& out) {
  out << "scenario,kind,label,start_s,duration_s,applied,cleared,packets_dropped\n";
  for (const auto& [scenario, run] : runs) {
    for (const auto& rec : run.episodes) {
      out << scenario << "," << to_string(rec.episode.kind) << "," << rec.episode.label
          << "," << fmt_double(rec.episode.start.to_seconds(), 3) << ","
          << fmt_double(rec.episode.duration.to_seconds(), 3) << ","
          << (rec.applied ? 1 : 0) << "," << (rec.cleared ? 1 : 0) << ","
          << rec.packets_dropped << "\n";
    }
  }
}

std::string turbulence_episodes_csv(
    const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs) {
  std::ostringstream out;
  turbulence_episodes_csv(runs, out);
  return out.str();
}

int export_turbulence(const std::vector<std::pair<std::string, TurbulenceRunResult>>& runs,
                      const std::string& directory) {
  std::filesystem::create_directories(directory);
  int written = 0;
  const auto write = [&](const std::string& name, auto&& emit) {
    std::ofstream out(directory + "/" + name);
    emit(out);
    if (out) ++written;
  };
  write("turbulence.csv", [&](std::ostream& o) { turbulence_csv(runs, o); });
  write("turbulence_episodes.csv",
        [&](std::ostream& o) { turbulence_episodes_csv(runs, o); });
  return written;
}

}  // namespace streamlab
