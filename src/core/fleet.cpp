#include "core/fleet.hpp"

#include <algorithm>
#include <vector>

#include "obs/obs.hpp"

namespace streamlab {
namespace {

// SplitMix64 finalizer — the per-packet hash behind jitter, loss draws and
// session start staggering. Pure function of its inputs, so the fleet's
// randomness replays exactly.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

// The whole fleet, SoA: parallel arrays indexed by session id. A session is
// ~26 bytes of table row — versus the several-hundred-byte object graph a
// full client/server pair costs — so 10⁶ sessions fit in ~26 MB.
struct FleetTable {
  std::vector<std::uint32_t> sent;
  std::vector<std::uint32_t> delivered;
  std::vector<std::uint32_t> lost;
  std::vector<std::int64_t> last_delivery_ns;
  std::vector<std::uint16_t> rebuffers;

  explicit FleetTable(std::size_t n)
      : sent(n, 0), delivered(n, 0), lost(n, 0), last_delivery_ns(n, -1),
        rebuffers(n, 0) {}

  std::size_t bytes() const {
    return sent.capacity() * sizeof(std::uint32_t) +
           delivered.capacity() * sizeof(std::uint32_t) +
           lost.capacity() * sizeof(std::uint32_t) +
           last_delivery_ns.capacity() * sizeof(std::int64_t) +
           rebuffers.capacity() * sizeof(std::uint16_t);
  }
};

class FleetRun {
 public:
  explicit FleetRun(const FleetConfig& config)
      : config_(config), loop_(config.scheduler), table_(config.sessions) {
    if (config_.auditor != nullptr) loop_.set_auditor(config_.auditor);
    payload_ = config_.wm.media_per_datagram(config_.media_rate);
    interval_ = config_.wm.send_interval(config_.media_rate, payload_);
    packets_per_session_ = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, config_.episode.ns() / std::max<std::int64_t>(
                                                             1, interval_.ns())));
    turbulence_end_ = SimTime(config_.turbulence_start.ns()) +
                      config_.turbulence_duration;
  }

  FleetResult run() {
    // Stagger starts across one pacing interval so the fleet does not beat
    // in lockstep (and so wheel buckets see realistic occupancy).
    for (std::uint32_t i = 0; i < table_.sent.size(); ++i) {
      const Duration start(static_cast<std::int64_t>(
          mix(config_.seed ^ (0xA5A5ULL << 32) ^ i) %
          static_cast<std::uint64_t>(std::max<std::int64_t>(1, interval_.ns()))));
      loop_.post_at(SimTime::zero() + start, [this, i] { send(i, 0); },
                    obs::EventCategory::kTimer);
    }
    loop_.run();

    FleetResult r;
    r.sessions = table_.sent.size();
    for (std::size_t i = 0; i < table_.sent.size(); ++i) {
      r.packets_sent += table_.sent[i];
      r.packets_delivered += table_.delivered[i];
      r.packets_lost += table_.lost[i];
      r.rebuffer_events += table_.rebuffers[i];
      if (table_.rebuffers[i] > 0) ++r.sessions_rebuffered;
    }
    r.events_executed = loop_.executed_events();
    r.digest = digest_;
    r.delivery_ratio = r.packets_sent == 0
                           ? 0.0
                           : static_cast<double>(r.packets_delivered) /
                                 static_cast<double>(r.packets_sent);
    r.sim_seconds = loop_.now().to_seconds();
    r.table_bytes = table_.bytes();
    r.bytes_per_session = r.sessions == 0 ? 0.0
                                          : static_cast<double>(r.table_bytes) /
                                                static_cast<double>(r.sessions);
    if (config_.auditor != nullptr) {
      // Fleet-wide packet conservation: every sent packet is accounted as
      // delivered or lost once the loop drains (nothing stays in flight).
      config_.auditor->check_conservation("fleet", r.packets_sent,
                                          r.packets_delivered, r.packets_lost,
                                          0, 0, loop_.now());
    }
    return r;
  }

 private:
  void send(std::uint32_t i, std::uint32_t seq) {
    ++table_.sent[i];
    const SimTime now = loop_.now();
    if (lose_packet(now)) {
      ++table_.lost[i];
    } else {
      const std::uint64_t h =
          mix(config_.seed ^ (static_cast<std::uint64_t>(i) << 32) ^ seq);
      const Duration jitter(static_cast<std::int64_t>(
          config_.jitter.ns() > 0
              ? static_cast<std::int64_t>(h % static_cast<std::uint64_t>(
                                                  config_.jitter.ns()))
              : 0));
      loop_.post_at(now + config_.one_way_delay + jitter,
                    [this, i, seq] { deliver(i, seq); },
                    obs::EventCategory::kLink);
    }
    if (seq + 1 < packets_per_session_) {
      loop_.post_in(interval_, [this, i, seq] { send(i, seq + 1); },
                    obs::EventCategory::kTimer);
    }
  }

  void deliver(std::uint32_t i, std::uint32_t seq) {
    const SimTime now = loop_.now();
    const std::int64_t last = table_.last_delivery_ns[i];
    if (last >= 0 && now.ns() - last > config_.rebuffer_gap.ns() &&
        table_.rebuffers[i] < UINT16_MAX) {
      ++table_.rebuffers[i];
    }
    table_.last_delivery_ns[i] = now.ns();
    ++table_.delivered[i];
    // Order-sensitive digest: any reordering or divergence across runs (or
    // scheduler backends) changes it.
    std::uint64_t entry =
        mix(static_cast<std::uint64_t>(now.ns()) ^
            (static_cast<std::uint64_t>(i) << 20) ^ seq);
    digest_ = mix(digest_ ^ entry);
    if (config_.probe != nullptr) {
      config_.probe->fold(now, static_cast<std::uint8_t>(obs::EventCategory::kLink),
                          static_cast<std::uint16_t>(i), seq);
    }
  }

  // Shared Gilbert–Elliott chain, stepped once per send in event-fire order.
  bool lose_packet(SimTime now) {
    const std::uint64_t h = mix(config_.seed ^ 0xC3C3C3C3ULL ^ chain_steps_++);
    const bool in_window = now.ns() >= config_.turbulence_start.ns() &&
                           now < turbulence_end_;
    if (!in_window) {
      bad_ = false;
      return unit(h) < config_.good_loss;
    }
    const double u = unit(h);
    // One draw drives both the state transition and the loss decision; the
    // two uses are decorrelated by re-mixing.
    if (bad_) {
      if (u < config_.p_bad_to_good) bad_ = false;
    } else {
      if (u < config_.p_good_to_bad) bad_ = true;
    }
    const double loss = bad_ ? config_.bad_loss : config_.good_loss;
    return unit(mix(h)) < loss;
  }

  const FleetConfig& config_;
  EventLoop loop_;
  FleetTable table_;
  std::size_t payload_ = 0;
  Duration interval_;
  std::uint32_t packets_per_session_ = 0;
  SimTime turbulence_end_;
  std::uint64_t chain_steps_ = 0;
  bool bad_ = false;
  std::uint64_t digest_ = 0x243F6A8885A308D3ULL;
};

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  FleetRun run(config);
  return run.run();
}

}  // namespace streamlab
