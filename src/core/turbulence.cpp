#include "core/turbulence.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "players/server.hpp"

namespace streamlab {
namespace {

struct FaultedSession {
  std::unique_ptr<StreamServer> server;
  std::unique_ptr<StreamServer> mirror;  ///< failover target, when configured
  std::unique_ptr<StreamClient> client;
};

std::unique_ptr<StreamServer> make_server(Host& host, const EncodedClip& encoded,
                                          std::uint16_t port, bool is_media,
                                          const TurbulenceScenarioConfig& config,
                                          std::uint64_t rm_seed) {
  if (is_media)
    return std::make_unique<WmServer>(host, encoded, config.wm, port);
  return std::make_unique<RmServer>(host, encoded, config.rm, port, rm_seed);
}

FaultedSession make_session(Network& net, Host& server_host, Host* mirror_host,
                            const ClipInfo& clip,
                            const TurbulenceScenarioConfig& config) {
  FaultedSession s;
  const EncodedClip encoded = encode_clip(clip, config.seed);
  const bool is_media = clip.player == PlayerKind::kMediaPlayer;
  const std::uint16_t server_port = is_media ? kMediaServerPort : kRealServerPort;

  s.server = make_server(server_host, encoded, server_port, is_media, config,
                         config.seed ^ 0x524D);
  if (config.repair_layer.enabled()) s.server->enable_repair(config.repair_layer);
  if (mirror_host != nullptr) {
    // The mirror serves the same clip on the same port from its own host; a
    // failover PLAY carrying a resume offset continues the stream there.
    s.mirror = make_server(*mirror_host, encoded, server_port, is_media, config,
                           config.seed ^ 0x6D69);
    if (config.repair_layer.enabled()) s.mirror->enable_repair(config.repair_layer);
  }

  StreamClient::Config cc;
  cc.kind = clip.player;
  cc.wm = config.wm;
  cc.rm = config.rm;
  cc.rebuffering = config.rebuffering;
  cc.max_stall = config.max_stall;
  cc.recovery = config.recovery;
  cc.repair = config.repair_layer;
  if (config.multipath.enabled && net.detour_hop_count() > 0) {
    // Striping needs a second path: alias addresses steer subflow 1 down
    // the detour branch without touching the primary routing. Only the
    // primary server stripes — a mirror epoch is already degraded, and the
    // client tears its multipath plane down at failover.
    const Network::MultipathEndpoints ep = net.enable_multipath(server_host);
    MultipathConfig mp = config.multipath;
    mp.client_alias = ep.client_alias;
    mp.server_alias = ep.server_alias;
    s.server->enable_multipath(mp);
    cc.multipath = mp;
    // Striping jitter would otherwise read as gaps; arm NACKs only after
    // the reorder-tolerance window proves a hole is real.
    if (cc.repair.nack && cc.repair.nack_reorder_tolerance == 0)
      cc.repair.nack_reorder_tolerance = mp.nack_reorder_tolerance;
  }
  if (mirror_host != nullptr) {
    cc.failover.mirrors.push_back(Endpoint{mirror_host->address(), server_port});
    cc.failover.icmp_unreachable_threshold = config.icmp_unreachable_threshold;
  }
  s.client = std::make_unique<StreamClient>(
      net.client(), s.server->clip(), Endpoint{server_host.address(), server_port}, cc);
  return s;
}

bool inside_any_episode(const std::vector<FaultEpisode>& episodes, SimTime t) {
  return std::any_of(episodes.begin(), episodes.end(),
                     [t](const FaultEpisode& e) { return e.covers(t); });
}

/// Mean and 95th percentile of the recovered packets' repair delays.
void fill_repair_latency(const std::vector<Duration>& latencies,
                         SessionRecoveryMetrics& m) {
  if (latencies.empty()) return;
  double sum_ms = 0.0;
  std::vector<double> ms;
  ms.reserve(latencies.size());
  for (const Duration d : latencies) {
    ms.push_back(d.to_millis());
    sum_ms += d.to_millis();
  }
  std::sort(ms.begin(), ms.end());
  m.repair_latency_mean_ms = sum_ms / static_cast<double>(ms.size());
  const std::size_t idx =
      std::min(ms.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(ms.size())));
  m.repair_latency_p95_ms = ms[idx];
}

SessionRecoveryMetrics collect(const ClipInfo& clip, const StreamClient& client,
                               const StreamServer* server, const StreamServer* mirror,
                               const std::vector<FaultEpisode>& episodes) {
  SessionRecoveryMetrics m;
  m.clip = clip;
  m.established = client.session_established();
  m.abandoned = client.session_abandoned();
  m.stream_dead = client.stream_dead();
  m.completed = client.playback_finished();
  m.play_attempts = client.play_attempts();
  m.rebuffer_events = client.rebuffer_events();
  m.stall_time = client.total_stall_time();
  m.frames_rendered = client.frames_rendered();
  m.frames_dropped = client.frames_dropped();
  m.packets_received = client.packets_received();
  m.packets_lost = client.packets_lost();
  m.duplicate_packets = client.duplicate_packets();
  m.failovers = client.failover_count();
  m.icmp_unreachables = client.icmp_unreachables();
  m.resume_offset = client.resume_offset();

  m.packets_recovered = client.packets_recovered();
  m.recovered_by_fec = client.recovered_by_fec();
  m.recovered_by_retx = client.recovered_by_retx();
  m.nacks_sent = client.nacks_sent();
  m.parity_packets = client.parity_packets_received();
  m.repair_wire_bytes = client.parity_wire_bytes() + client.retx_wire_bytes();
  m.total_wire_bytes = client.wire_bytes_received() + client.parity_wire_bytes();
  fill_repair_latency(client.repair_latencies(), m);
  for (const StreamServer* s : {server, mirror}) {
    if (s == nullptr) continue;
    m.retransmissions_sent += s->retransmissions_sent();
    m.retx_suppressed_pacer += s->retx_suppressed_pacer();
  }

  if (server != nullptr && server->multipath_enabled()) {
    m.path_switches = server->path_switches();
    m.multipath_degraded = server->multipath_degraded();
    m.primary_packets = client.subflow_packets_received(0);
    m.detour_packets = client.subflow_packets_received(1);
    m.primary_lost = client.subflow_packets_lost(0);
    m.detour_lost = client.subflow_packets_lost(1);
    m.reorder_depth_p95 = client.reorder_depth_p95();
    m.primary_stalls = client.subflow_stall_attributions(0);
    m.detour_stalls = client.subflow_stall_attributions(1);
    m.join_duplicates = client.join_duplicates_dropped();
    m.join_forced = client.join_forced_releases();
    // Per-path goodput over the nominal clip length: comparable across
    // runs of the same clip regardless of how long the tail dragged on.
    const double secs = clip.length.to_seconds();
    if (secs > 0.0) {
      m.primary_goodput_kbps =
          static_cast<double>(client.subflow_media_bytes(0)) * 8.0 / secs / 1000.0;
      m.detour_goodput_kbps =
          static_cast<double>(client.subflow_media_bytes(1)) * 8.0 / secs / 1000.0;
    }
  }
  m.nack_suppressed = client.nack_suppressed();

  // Attribute stall time to router failure: overlap each stall interval
  // with the merged kRouterDown windows.
  std::vector<std::pair<SimTime, SimTime>> down_windows;
  for (const FaultEpisode& e : episodes)
    if (e.kind == FaultKind::kRouterDown) down_windows.emplace_back(e.start, e.end());
  std::sort(down_windows.begin(), down_windows.end());
  std::vector<std::pair<SimTime, SimTime>> merged;
  for (const auto& w : down_windows) {
    if (!merged.empty() && w.first <= merged.back().second)
      merged.back().second = std::max(merged.back().second, w.second);
    else
      merged.push_back(w);
  }
  for (const auto& [stall_start, stall_end] : client.stall_intervals()) {
    for (const auto& [win_start, win_end] : merged) {
      const SimTime lo = std::max(stall_start, win_start);
      const SimTime hi = std::min(stall_end, win_end);
      if (hi > lo) m.stall_during_router_down += hi - lo;
    }
  }

  if (!episodes.empty()) {
    const FaultEpisode& first = *std::min_element(
        episodes.begin(), episodes.end(),
        [](const FaultEpisode& a, const FaultEpisode& b) { return a.start < b.start; });
    for (const PacketEvent& p : client.packets()) {
      if (p.network_time >= first.end()) {
        m.time_to_recover = p.network_time - first.end();
        break;
      }
    }
    const SimTime last_end =
        std::max_element(episodes.begin(), episodes.end(),
                         [](const FaultEpisode& a, const FaultEpisode& b) {
                           return a.end() < b.end();
                         })
            ->end();
    for (const FrameEvent& f : client.frame_events()) {
      if (f.rendered) continue;
      if (inside_any_episode(episodes, f.time)) {
        ++m.frames_dropped_during_episodes;
      } else if (f.time >= last_end) {
        ++m.frames_dropped_after_episodes;
      }
    }
  }
  return m;
}

SimTime run_deadline(EventLoop& loop, Duration clip_length,
                     const TurbulenceScenarioConfig& config) {
  SimTime deadline = loop.now() + clip_length + config.extra_sim_time;
  for (const FaultEpisode& e : config.episodes) {
    const SimTime after_episode = e.end() + config.extra_sim_time;
    if (after_episode > deadline) deadline = after_episode;
  }
  return deadline;
}

/// Attaches the optional auditor/probe instrumentation before any session
/// event is scheduled, so the audit and the replay digest cover the whole
/// timeline.
void attach_instrumentation(Network& net, const TurbulenceScenarioConfig& config) {
  if (config.obs != nullptr) net.attach_observer(*config.obs);
  if (config.auditor != nullptr) {
    net.attach_auditor(*config.auditor);
    if (config.obs != nullptr) config.auditor->attach_obs(*config.obs);
  }
  if (config.probe != nullptr) net.set_determinism_probe(config.probe);
}

/// Builds the optional route-repair control plane. The RouteRepair ctor
/// protects the detour span when the path has one; an explicit
/// repair_span_first/last protects a chain span as well (the no-detour
/// fast-fail setup).
std::unique_ptr<RouteRepair> make_repair(Network& net,
                                         const TurbulenceScenarioConfig& config) {
  if (!config.repair) return nullptr;
  auto repair = std::make_unique<RouteRepair>(net, *config.repair);
  if (config.repair_span_first >= 0 &&
      config.repair_span_last >= config.repair_span_first)
    repair->protect(config.repair_span_first, config.repair_span_last);
  if (config.obs != nullptr) repair->set_observer(*config.obs);
  return repair;
}

/// Runs the scenario timeline under the configured budgets: first to the
/// scripted horizon, then the bounded stall/recovery tail (every remaining
/// event source is bounded — per-frame stalls cap at max_stall, the watchdog
/// and batch timers stop once a session ends — so completion reflects
/// survival, not the deadline). Events fire in ~16k chunks with the
/// wall-clock budget checked between chunks.
void run_budgeted(EventLoop& loop, SimTime deadline,
                  const TurbulenceScenarioConfig& config, TurbulenceRunResult& result) {
  constexpr std::uint64_t kChunk = 16384;
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t event_budget =
      config.max_sim_events == 0 ? UINT64_MAX : config.max_sim_events;
  const auto over_wall = [&] {
    return config.max_wall_time.count() != 0 &&
           std::chrono::steady_clock::now() - wall_start >= config.max_wall_time;
  };

  bool draining_tail = false;
  while (true) {
    if (result.sim_events >= event_budget || over_wall()) {
      result.budget_exhausted = true;
      break;
    }
    const std::uint64_t chunk = std::min(kChunk, event_budget - result.sim_events);
    const std::uint64_t fired =
        draining_tail ? loop.run(chunk) : loop.run_until(deadline, chunk);
    result.sim_events += fired;
    if (fired < chunk) {
      if (draining_tail) break;  // queue empty: the run finished naturally
      draining_tail = true;      // horizon reached: drain the bounded tail
    }
  }
}

}  // namespace

TurbulenceRunResult run_turbulence_clip(const ClipInfo& clip,
                                        const TurbulenceScenarioConfig& config) {
  PathConfig path = config.path;
  path.seed = config.seed;
  Network net(path);
  attach_instrumentation(net, config);
  Host& server_host = net.add_server("server");
  Host* mirror_host = config.mirror_server ? &net.add_server("mirror") : nullptr;
  auto repair = make_repair(net, config);

  auto session = make_session(net, server_host, mirror_host, clip, config);

  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  for (const FaultEpisode& e : config.episodes) faults.add(e);
  faults.arm();

  session.client->start();
  TurbulenceRunResult result;
  run_budgeted(net.loop(), run_deadline(net.loop(), clip.length, config), config,
               result);
  // Close any episode whose obs span is still open at the horizon (a budget
  // truncation can stop the loop mid-episode) and run the trial-end ledgers.
  faults.finish();
  if (repair) repair->finish();
  if (config.auditor != nullptr) net.audit_finalize(*config.auditor);

  if (repair) {
    result.reroutes = repair->stats().reroutes;
    result.route_restores = repair->stats().restores;
  }
  auto metrics = collect(clip, *session.client, session.server.get(),
                         session.mirror.get(), config.episodes);
  (clip.player == PlayerKind::kMediaPlayer ? result.media : result.real) =
      std::move(metrics);
  result.episodes = faults.records();
  return result;
}

TurbulenceRunResult run_turbulence_pair(const ClipSet& set, RateTier tier,
                                        const TurbulenceScenarioConfig& config) {
  TurbulenceRunResult result;
  const auto pair = set.pair(tier);
  if (!pair) return result;
  const auto& [real_clip, media_clip] = *pair;

  PathConfig path = config.path;
  path.seed = config.seed;
  Network net(path);
  attach_instrumentation(net, config);
  Host& real_host = net.add_server("real-server");
  Host& media_host = net.add_server("media-server");
  auto repair = make_repair(net, config);

  auto real_session = make_session(net, real_host, nullptr, real_clip, config);
  auto media_session = make_session(net, media_host, nullptr, media_clip, config);

  // Both streams cross the bottleneck link, so one scheduler hits both —
  // the "same path, same turbulence" comparison the paper's simultaneous
  // runs were designed to guarantee.
  FaultScheduler faults(net.loop(), net.bottleneck_link(), net);
  for (const FaultEpisode& e : config.episodes) faults.add(e);
  faults.arm();

  real_session.client->start();
  media_session.client->start();
  const Duration longest = std::max(real_clip.length, media_clip.length);
  run_budgeted(net.loop(), run_deadline(net.loop(), longest, config), config, result);
  faults.finish();  // close spans left open by a mid-episode truncation
  if (repair) repair->finish();
  if (config.auditor != nullptr) net.audit_finalize(*config.auditor);

  if (repair) {
    result.reroutes = repair->stats().reroutes;
    result.route_restores = repair->stats().restores;
  }
  result.real = collect(real_clip, *real_session.client, real_session.server.get(),
                        nullptr, config.episodes);
  result.media = collect(media_clip, *media_session.client, media_session.server.get(),
                         nullptr, config.episodes);
  result.episodes = faults.records();
  return result;
}

}  // namespace streamlab
