// The experiment runner: reproduces the paper's measurement methodology for
// one clip pair — identical content in RealPlayer and MediaPlayer formats,
// streamed simultaneously from co-located servers over the same network
// path to one client, with a sniffer on the client NIC and a tracker on
// each player engine (Section 2).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "analysis/flow.hpp"
#include "media/catalog.hpp"
#include "pcap/capture.hpp"
#include "players/behavior.hpp"
#include "players/client.hpp"
#include "sim/network.hpp"
#include "sim/tools.hpp"
#include "trackers/report.hpp"

namespace streamlab {

struct ExperimentConfig {
  PathConfig path;                       ///< topology of this server's path
  std::uint64_t seed = 1;
  WmBehavior wm;
  RmBehavior rm;
  Duration bandwidth_window = Duration::seconds(2);  ///< Fig 10/11 timeline bin
  std::uint32_t snaplen = 96;            ///< headers-only capture (memory)
  bool keep_capture = false;             ///< retain raw frames for pcap export
  Duration extra_sim_time = Duration::seconds(90);   ///< run-off after clip length
};

/// Everything measured for one clip in one run.
struct ClipRunResult {
  ClipInfo clip;
  TrackerReport tracker;                 ///< application-layer statistics
  FlowTrace flow;                        ///< network-layer packet series
  BufferingAnalysis buffering;           ///< startup burst analysis
  std::vector<PacketEvent> app_packets;  ///< per-packet net/app timestamps (Fig 12)
  Duration server_streaming_duration;
  std::optional<CaptureTrace> capture;   ///< raw capture when keep_capture
};

/// A simultaneous R/M pair run plus the path characterisation around it.
struct PairRunResult {
  ClipRunResult real;
  ClipRunResult media;
  PingResult ping;
  TracerouteResult route;
};

/// Streams one clip over a fresh network; the building block of the study.
ClipRunResult run_single_clip(const ClipInfo& clip, const ExperimentConfig& config);

/// The paper's core procedure: both formats of one clip set at one tier,
/// streamed concurrently from two servers behind the same path.
PairRunResult run_clip_pair(const ClipSet& set, RateTier tier,
                            const ExperimentConfig& config);

}  // namespace streamlab
