// City-scale flyweight session fleet.
//
// One trial, N ∈ [10³, 10⁶] concurrent streaming sessions. Instead of the
// full per-session object graph (Network, Host, StreamServer, StreamClient —
// hundreds of bytes and several heap objects each), a fleet trial keeps every
// session in a struct-of-arrays table indexed by a 32-bit session id, and
// models the stream as the minimum that turbulence statistics need: CBR
// pacing from the WM behavior profile, a one-way delay with deterministic
// per-packet jitter, a shared Gilbert–Elliott burst-loss turbulence episode,
// and client-side delivery-gap rebuffer detection. Every timer is a
// handle-free EventLoop::post_* whose capture (a table pointer + index) fits
// EventFn's inline buffer — the steady state allocates nothing per event.
//
// Determinism: all randomness is hash-derived from (seed, session, seq) or
// stepped in event-fire order (the shared loss chain), so two runs with the
// same config produce identical digests — `run_fleet` is replay-verifiable
// exactly like the campaign trials (see --verify-determinism in
// turbulence_lab --fleet).
#pragma once

#include <cstddef>
#include <cstdint>

#include "players/behavior.hpp"
#include "sim/audit.hpp"
#include "sim/event_loop.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace streamlab {

struct FleetConfig {
  std::size_t sessions = 1000;
  std::uint64_t seed = 1;

  /// Stream shape: CBR pacing with the minimum-datagram floor, derived from
  /// the WM behavior profile (Figures 6/8 of the paper).
  WmBehavior wm;
  BitRate media_rate = BitRate::kbps(56);
  /// Per-session stream length (the trial's turbulence episode window).
  Duration episode = Duration::seconds(20);

  /// Network model: fixed one-way delay plus deterministic per-packet jitter
  /// in [0, jitter).
  Duration one_way_delay = Duration::millis(40);
  Duration jitter = Duration::millis(12);

  /// Shared turbulence window: a Gilbert–Elliott loss chain (stepped per
  /// packet in event-fire order) that all sessions stream through.
  Duration turbulence_start = Duration::seconds(5);
  Duration turbulence_duration = Duration::seconds(6);
  double good_loss = 0.001;
  double bad_loss = 0.30;
  double p_good_to_bad = 0.02;
  double p_bad_to_good = 0.25;

  /// A delivery gap above this mid-stream counts as a rebuffer event.
  Duration rebuffer_gap = Duration::millis(600);

  /// Scheduling backend for the fleet's loop.
  EventLoop::Scheduler scheduler = EventLoop::default_scheduler();

  /// Optional instrumentation (not owned). The auditor is attached to the
  /// loop (monotone-dispatch checks on every event under full audit) and
  /// receives a packet-conservation check at trial end; the probe folds one
  /// entry per delivered packet.
  audit::Auditor* auditor = nullptr;
  audit::DeterminismProbe* probe = nullptr;
};

struct FleetResult {
  std::size_t sessions = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rebuffer_events = 0;
  std::size_t sessions_rebuffered = 0;
  std::uint64_t events_executed = 0;
  /// Order-sensitive digest over every delivery; equal configs must produce
  /// equal digests (the fleet determinism contract).
  std::uint64_t digest = 0;
  double delivery_ratio = 0.0;
  double sim_seconds = 0.0;
  /// Resident SoA table footprint, total and per session.
  std::size_t table_bytes = 0;
  double bytes_per_session = 0.0;
};

FleetResult run_fleet(const FleetConfig& config);

}  // namespace streamlab
