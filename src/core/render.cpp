#include "core/render.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace streamlab::render {

std::string table(const std::vector<std::string>& columns,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(columns.size(), 0);
  for (std::size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out += pad_right(c < row.size() ? row[c] : "", widths[c]);
      out += c + 1 < widths.size() ? "  " : "";
    }
    out += '\n';
  };
  emit_row(columns);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  out += rule + '\n';
  for (const auto& row : rows) emit_row(row);
  return out;
}

std::string xy_plot(const std::vector<Series>& series, int width, int height) {
  double min_x = 0, max_x = 1, min_y = 0, max_y = 1;
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (!any) {
        min_x = max_x = x;
        min_y = max_y = y;
        any = true;
      }
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
  }
  if (!any) return "(no data)\n";
  if (max_x == min_x) max_x = min_x + 1;
  if (max_y == min_y) max_y = min_y + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const int col = static_cast<int>((x - min_x) / (max_x - min_x) * (width - 1) + 0.5);
      const int row = static_cast<int>((y - min_y) / (max_y - min_y) * (height - 1) + 0.5);
      auto& cell = grid[static_cast<std::size_t>(height - 1 - row)]
                       [static_cast<std::size_t>(col)];
      cell = cell == ' ' || cell == s.glyph ? s.glyph : '+';  // '+' marks overlap
    }
  }

  std::string out;
  for (const auto& line : grid) out += "|" + line + "\n";
  out += "+" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += " x: [" + fmt_double(min_x, 2) + ", " + fmt_double(max_x, 2) + "]  y: [" +
         fmt_double(min_y, 2) + ", " + fmt_double(max_y, 2) + "]\n";
  for (const auto& s : series)
    out += " " + std::string(1, s.glyph) + " = " + s.name + "\n";
  return out;
}

std::string pdf_listing(const streamlab::Histogram& histogram, const std::string& x_label) {
  std::string out = pad_right(x_label, 14) + pad_right("prob", 8) + "\n";
  double max_p = 0.0;
  for (const auto& b : histogram.bins()) max_p = std::max(max_p, b.probability);
  if (max_p == 0.0) return out + "(no data)\n";
  for (const auto& b : histogram.bins()) {
    if (b.count == 0) continue;
    out += pad_right(fmt_double(b.center, 1), 14) + pad_right(fmt_double(b.probability, 4), 8) +
           ascii_bar(b.probability / max_p, 40) + "\n";
  }
  return out;
}

std::string cdf_listing(const std::vector<double>& values, const std::string& x_label,
                        int points) {
  std::string out = pad_right(x_label, 14) + pad_right("cdf", 8) + "\n";
  for (const auto& [x, p] : cdf_at_quantiles(values, points)) {
    out += pad_right(fmt_double(x, 2), 14) + pad_right(fmt_double(p, 2), 8) +
           ascii_bar(p, 40) + "\n";
  }
  return out;
}

}  // namespace streamlab::render
